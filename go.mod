module liquidarch

go 1.24
