package liquidarch

import (
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// packageDoc parses the package in dir (tests excluded) and returns its
// package-level doc comment.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		return doc.New(pkg, dir, doc.AllDecls).Doc
	}
	t.Fatalf("%s: no non-test package found", dir)
	return ""
}

// TestEveryPackageHasDoc is the documentation gate: every internal
// package must carry a package comment ("Package <name> ...") and every
// command a command comment ("Command <name> ..."), so `go doc` is a
// usable map of the codebase. It fails with the offending directory, not
// just a count, to keep the fix obvious.
func TestEveryPackageHasDoc(t *testing.T) {
	check := func(root, prefix string) {
		dirs, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dirs {
			if !d.IsDir() {
				continue
			}
			dir := filepath.Join(root, d.Name())
			docText := packageDoc(t, dir)
			if docText == "" {
				t.Errorf("%s: missing package comment", dir)
				continue
			}
			want := prefix + " " + d.Name()
			if root == "cmd" {
				want = prefix // commands are package main; the name follows "Command"
			}
			if !strings.HasPrefix(docText, want) {
				t.Errorf("%s: package comment starts %q, want %q...", dir, firstLine(docText), want)
			}
			// A role statement, not a placeholder.
			if len(docText) < 80 {
				t.Errorf("%s: package comment is only %d bytes — state the package's role", dir, len(docText))
			}
		}
	}
	check("internal", "Package")
	check("cmd", "Command")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
