// Package liquidarch is a from-scratch Go reproduction of Padmanabhan,
// Cytron, Chamberlain and Lockwood, "Automatic Application-Specific
// Microarchitecture Reconfiguration" (IPPS 2006): automatic per-application
// tuning of a LEON2-like soft-core processor's microarchitecture by
// one-change-at-a-time cost measurement and constrained Binary Integer
// Nonlinear Programming.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the tools (autoarch, autoarchd, liquidctl,
// leonasm, paperrepro), examples/ the runnable scenarios, and
// bench_test.go the per-figure reproduction benchmarks.
package liquidarch

// Version identifies the reproduction release.
const Version = "1.0.0"
