// Per-figure reproduction benchmarks: each BenchmarkFigN regenerates the
// corresponding table of the paper's evaluation end to end (workload
// generation, simulation sweeps, model building, BINLP solving,
// validation), so `go test -bench=.` both times the harness and exercises
// every experiment. Micro-benchmarks cover the substrates, and the
// Ablation benchmarks quantify the design choices DESIGN.md calls out.
package liquidarch_test

import (
	"context"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/binlp"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/exhaustive"
	"liquidarch/internal/experiments"
	"liquidarch/internal/fabric"
	"liquidarch/internal/fpga"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// benchScale keeps the per-figure benchmarks on the default experiment
// scale; the shapes are scale-stable by design.
const benchScale = workload.Small

func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{Scale: benchScale})
}

// ---- One benchmark per paper table/figure ----

func BenchmarkFig1ParameterSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure1() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkSpaceSizeArgument(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.SpaceSize() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig2DcacheExhaustiveBLASTN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Figure2(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3DcacheOptimizerBLASTN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Figure3(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4DcacheOtherBenchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Figure4(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5RuntimeOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Figure5(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6BLASTNPerturbations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Figure6(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ResourceOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newRunner().Figure7(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate micro-benchmarks ----

// benchmarkSimulator measures raw simulation speed for one application.
// Instructions are accumulated across iterations (not last-run × b.N), so
// the Minstr/s metric stays correct even if per-run instruction counts
// ever diverge. Two untimed warm-up runs precede the timer: the first
// pays one-time engine construction (memory load, text predecode), the
// second runs on the pooled engine with its superblocks already compiled
// — so every timed iteration measures the same steady state and the
// run-to-run spread benchstat gates on comes from the machine, not from
// which iteration paid the warm-up.
func benchmarkSimulator(b *testing.B, app string) {
	bench, _ := progs.ByName(app)
	prog, err := bench.Assemble(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	for i := 0; i < 2; i++ {
		if _, err := platform.Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
	var instructions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := platform.Run(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		instructions += rep.Stats.Instructions
	}
	b.ReportMetric(float64(instructions)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkSimulatorBLASTN(b *testing.B) { benchmarkSimulator(b, "blastn") }
func BenchmarkSimulatorDRR(b *testing.B)    { benchmarkSimulator(b, "drr") }
func BenchmarkSimulatorFRAG(b *testing.B)   { benchmarkSimulator(b, "frag") }
func BenchmarkSimulatorArith(b *testing.B)  { benchmarkSimulator(b, "arith") }
func BenchmarkSimulatorMix(b *testing.B)    { benchmarkSimulator(b, "mix") }

// BenchmarkSimulatorIntervalOverhead prices interval profiling on the
// fast path: alternating BLASTN runs with and without 100k-instruction
// interval profiling. Each back-to-back pair yields one overhead delta
// (profiled minus plain, both sides equally exposed to the machine's
// noise at that moment); the reported estimate is the *median* pair
// delta over the fastest observed plain run. Independent minima — the
// previous estimator — could go negative whenever the profiled side got
// the luckier scheduling slot; a paired median cannot be dragged below
// zero by one lucky run, and a genuine regression shifts every pair, so
// the <5% gate measures the code, not the neighbours. The profiled runs
// pay only the per-taken-CTI signature increment plus one snapshot per
// interval.
func BenchmarkSimulatorIntervalOverhead(b *testing.B) {
	bench, _ := progs.ByName("blastn")
	prog, err := bench.Assemble(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	ivOpts := platform.Options{IntervalInstructions: 100_000}
	runOnce := func(opts platform.Options) time.Duration {
		start := time.Now()
		if _, err := platform.RunWith(prog, cfg, opts); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// Prewarm both engine-pool keys so neither side pays construction.
	runOnce(platform.Options{})
	runOnce(ivOpts)
	const pairsPerIter = 4
	var deltas []time.Duration
	minPlain := time.Duration(1 << 62)
	samplePairs := func(n int) {
		for k := 0; k < n; k++ {
			plain := runOnce(platform.Options{})
			profiled := runOnce(ivOpts)
			minPlain = min(minPlain, plain)
			deltas = append(deltas, profiled-plain)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samplePairs(pairsPerIter)
	}
	overhead := func() float64 {
		sorted := append([]time.Duration(nil), deltas...)
		slices.Sort(sorted)
		med := sorted[len(sorted)/2]
		if med < 0 {
			med = 0 // profiling cannot make runs faster; below zero is noise
		}
		return 100 * med.Seconds() / minPlain.Seconds()
	}
	// Converge before judging: when the estimate is over budget, the
	// median usually has not settled yet — take more pairs before calling
	// it a regression.
	for round := 0; overhead() > 5.0 && round < 3; round++ {
		samplePairs(pairsPerIter)
	}
	b.ReportMetric(overhead(), "overhead%")
	if o := overhead(); o > 5.0 {
		b.Fatalf("interval profiling overhead %.2f%% (median of %d paired deltas) exceeds the 5%% budget",
			o, len(deltas))
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(config.CacheConfig{Sets: 2, SetSizeKB: 4, LineWords: 8, Replacement: config.LRU})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint32(i*36) & 0xFFFF)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	cfg := config.Default()
	cfg.DCache.Sets = 2
	cfg.DCache.SetSizeKB = 16
	for i := 0; i < b.N; i++ {
		if _, err := fpga.Synthesize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleBLASTN(b *testing.B) {
	bench, _ := progs.ByName("blastn")
	src, err := bench.Source(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverFullSpace times the BINLP solve alone on a prebuilt
// 52-variable model (the step the paper reports Tomlab solving "in
// seconds").
func BenchmarkSolverFullSpace(b *testing.B) {
	bench, _ := progs.ByName("blastn")
	tuner := core.NewTuner(workload.Tiny)
	model, err := tuner.BuildModel(context.Background(), bench)
	if err != nil {
		b.Fatal(err)
	}
	problem := model.Formulate(core.RuntimeWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := binlp.Solve(problem, binlp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Proven {
			b.Fatal("not proven")
		}
	}
}

// BenchmarkSessionTune prices the serving stack's three temperatures for
// one full tuning request (model build + solve + validation), always
// through a session restarted per iteration so nothing hides in the
// in-memory model layer: cold (empty measurement store — every
// measurement simulates), warm-store (a populated store replays the ~21
// measurements from disk, the model still rebuilds), and warm-artifact
// (the durable model tier answers the whole model set in one read — the
// restarted-replica fast path, required to be >= 5x the cold latency).
func benchmarkSessionTune(b *testing.B, warmStore, warmArtifact bool) {
	ctx := context.Background()
	req := core.Request{App: "arith", Scale: workload.Tiny, Space: config.DcacheGeometrySpace()}
	cacheDir, modelDir := b.TempDir(), b.TempDir()

	// Untimed warm-up: one-time engine construction and superblock
	// compilation belong to the process, not to any temperature.
	warm := core.NewSession(core.SessionOptions{Provider: measure.NewCache(measure.Simulator{}, 256)})
	if _, err := warm.Tune(ctx, req); err != nil {
		b.Fatal(err)
	}
	if warmStore || warmArtifact {
		store, err := measure.NewStore(cacheDir)
		if err != nil {
			b.Fatal(err)
		}
		var ms *core.ModelStore
		if warmArtifact {
			if ms, err = core.NewModelStore(modelDir); err != nil {
				b.Fatal(err)
			}
		}
		sess := core.NewSession(core.SessionOptions{
			Provider:     measure.NewCache(measure.NewPersistent(measure.Simulator{}, store), 256),
			ModelStore:   ms,
			MeasureStore: store,
		})
		if _, err := sess.Tune(ctx, req); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if !warmStore && !warmArtifact {
			cacheDir = b.TempDir() // cold: a never-written store every iteration
		}
		store, err := measure.NewStore(cacheDir)
		if err != nil {
			b.Fatal(err)
		}
		var ms *core.ModelStore
		if warmArtifact {
			if ms, err = core.NewModelStore(modelDir); err != nil {
				b.Fatal(err)
			}
		}
		sess := core.NewSession(core.SessionOptions{
			Provider:   measure.NewCache(measure.NewPersistent(measure.Simulator{}, store), 256),
			ModelStore: ms,
		})
		b.StartTimer()
		if _, err := sess.Tune(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionTune(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchmarkSessionTune(b, false, false) })
	b.Run("warm-store", func(b *testing.B) { benchmarkSessionTune(b, true, false) })
	b.Run("warm-artifact", func(b *testing.B) { benchmarkSessionTune(b, false, true) })
}

// BenchmarkScheduleReplay prices the conformance loop: the incremental
// cost of -replay -online on a warm session, i.e. one schedule-replaying
// simulation plus one online-adaptive simulation on top of the (cached)
// phase tuning. The reported metric is the modeled-vs-replayed error the
// loop exists to measure.
func BenchmarkScheduleReplay(b *testing.B) {
	ctx := context.Background()
	req := core.Request{
		App:    "mix",
		Scale:  workload.Tiny,
		Space:  config.DcacheGeometrySpace(),
		Phases: &core.PhaseOptions{IntervalInstructions: 20_000},
		Replay: true,
		Online: true,
	}
	sess := core.NewSession(core.SessionOptions{Provider: measure.NewCache(measure.Simulator{}, 256)})
	if _, err := sess.Tune(ctx, req); err != nil {
		b.Fatal(err) // untimed warm-up: model build and superblock compilation
	}
	var errPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sess.Tune(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		errPct = rep.Replay.ErrorPct
	}
	b.ReportMetric(abs(errPct), "replayerr%")
}

// BenchmarkFabricDispatch prices one measurement RPC of the distributed
// fabric on the loopback: request marshalling (program image included),
// the HTTP round-trip, the worker-side fingerprint memo and cache hit,
// and report decoding. The worker's cache is warmed untimed, so the
// number is the fabric's per-measurement dispatch overhead — what a
// coordinator pays to ask a warm worker instead of simulating locally.
func BenchmarkFabricDispatch(b *testing.B) {
	bench, _ := progs.ByName("arith")
	prog, err := bench.Assemble(workload.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	worker := fabric.NewWorker(measure.NewCache(measure.Simulator{}, 64), 0)
	ts := httptest.NewServer(worker)
	defer ts.Close()
	reg := fabric.NewRegistry()
	if err := reg.Register(fabric.Registration{ID: "bench", URL: ts.URL}); err != nil {
		b.Fatal(err)
	}
	remote := fabric.NewRemote(reg, measure.Simulator{}, fabric.RemoteOptions{})

	ctx := context.Background()
	cfg := config.Default()
	if _, err := remote.Measure(ctx, prog, cfg, platform.Options{}); err != nil {
		b.Fatal(err) // untimed: pays the worker's one simulation
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.Measure(ctx, prog, cfg, platform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	if stats := remote.Stats(); stats.Fallbacks != 0 {
		b.Fatalf("%d dispatches fell back locally — the benchmark measured the simulator, not the fabric", stats.Fallbacks)
	}
}

// ---- Ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationLinearLUT compares the paper's linear-LUT simplification
// against the nonlinear form on the runtime-weighted recommendation,
// reporting both predictions' absolute error against actual synthesis.
func BenchmarkAblationLinearLUT(b *testing.B) {
	bench, _ := progs.ByName("blastn")
	tuner := core.NewTuner(benchScale)
	model, err := tuner.BuildModel(context.Background(), bench)
	if err != nil {
		b.Fatal(err)
	}
	var linErr, nlErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := tuner.RecommendFromModel(model, core.RuntimeWeights())
		if err != nil {
			b.Fatal(err)
		}
		actual := fpga.MustSynthesize(rec.Config)
		linErr = float64(rec.Predicted.LUTPctLinear - actual.LUTPercent())
		nlErr = float64(rec.Predicted.LUTPctNonlinear - actual.LUTPercent())
	}
	b.ReportMetric(abs(linErr), "linearLUTerr%")
	b.ReportMetric(abs(nlErr), "nonlinLUTerr%")
}

// BenchmarkAblationIndependence quantifies the parameter-independence
// assumption: predicted combined runtime gain (sum of solo deltas) vs the
// actual combined run, per application.
func BenchmarkAblationIndependence(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		gap = 0
		for _, app := range []string{"blastn", "drr", "frag", "arith"} {
			bench, _ := progs.ByName(app)
			tuner := core.NewTuner(benchScale)
			model, err := tuner.BuildModel(context.Background(), bench)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := tuner.RecommendFromModel(model, core.RuntimeWeights())
			if err != nil {
				b.Fatal(err)
			}
			val, err := tuner.Validate(context.Background(), bench, model, rec)
			if err != nil {
				b.Fatal(err)
			}
			g := abs(rec.Predicted.RuntimePct - val.RuntimePct)
			if g > gap {
				gap = g
			}
		}
	}
	b.ReportMetric(gap, "maxPredGap%")
}

// BenchmarkAblationSolverBruteForce compares branch-and-bound against
// exhaustive enumeration on the Section 5 dcache sub-space.
func BenchmarkAblationSolverBruteForce(b *testing.B) {
	bench, _ := progs.ByName("blastn")
	tuner := &core.Tuner{Space: config.DcacheGeometrySpace(), Scale: workload.Tiny}
	model, err := tuner.BuildModel(context.Background(), bench)
	if err != nil {
		b.Fatal(err)
	}
	problem := model.Formulate(core.RuntimeOnlyWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb, err := binlp.Solve(problem, binlp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		bf, err := binlp.BruteForce(problem)
		if err != nil {
			b.Fatal(err)
		}
		if abs(bb.Objective-bf.Objective) > 1e-9 {
			b.Fatalf("solver %f != brute force %f", bb.Objective, bf.Objective)
		}
	}
}

// BenchmarkExhaustiveDcacheSweep times the 19-configuration exhaustive
// baseline itself.
func BenchmarkExhaustiveDcacheSweep(b *testing.B) {
	bench, _ := progs.ByName("blastn")
	for i := 0; i < b.N; i++ {
		if _, err := exhaustive.DcacheGeometry(context.Background(), bench, benchScale, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
