package asm

import (
	"strings"
	"testing"

	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAt(t *testing.T, p *Program, i int) isa.Instr {
	t.Helper()
	in, err := isa.Decode(p.Text[i])
	if err != nil {
		t.Fatalf("decode word %d (%#08x): %v", i, p.Text[i], err)
	}
	return in
}

func TestSimpleInstructionForms(t *testing.T) {
	p := assemble(t, `
start:
        add     %g1, %g2, %g3
        add     %g1, 42, %g3
        sub     %o0, -5, %o1
        sll     %l0, 3, %l1
        umul    %i0, %i1, %i2
        ld      [%g1], %g2
        ld      [%g1+8], %g2
        ld      [%g1-4], %g2
        ld      [%g1+%g2], %g3
        st      %g2, [%g1+12]
        ldub    [%fp-1], %o0
        halt
`)
	checks := []isa.Instr{
		{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpAdd, Rd: 3, Rs1: 1, UseImm: true, Imm: 42},
		{Op: isa.OpSub, Rd: 9, Rs1: 8, UseImm: true, Imm: -5},
		{Op: isa.OpSll, Rd: 17, Rs1: 16, UseImm: true, Imm: 3},
		{Op: isa.OpUMul, Rd: 26, Rs1: 24, Rs2: 25},
		{Op: isa.OpLd, Rd: 2, Rs1: 1, UseImm: true, Imm: 0},
		{Op: isa.OpLd, Rd: 2, Rs1: 1, UseImm: true, Imm: 8},
		{Op: isa.OpLd, Rd: 2, Rs1: 1, UseImm: true, Imm: -4},
		{Op: isa.OpLd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpSt, Rd: 2, Rs1: 1, UseImm: true, Imm: 12},
		{Op: isa.OpLdUB, Rd: 8, Rs1: 30, UseImm: true, Imm: -1},
		{Op: isa.OpTicc, Cond: isa.CondA, UseImm: true, Imm: 0},
	}
	if len(p.Text) != len(checks) {
		t.Fatalf("text words = %d, want %d", len(p.Text), len(checks))
	}
	for i, want := range checks {
		if got := decodeAt(t, p, i); got != want {
			t.Errorf("instr %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestPseudoOps(t *testing.T) {
	p := assemble(t, `
        mov     7, %g1
        mov     %g2, %g3
        cmp     %g1, 10
        tst     %g4
        clr     %g5
        inc     %g6
        dec     2, %g7
        neg     %o0
        not     %o1, %o2
        ret
        retl
        nop
`)
	checks := []isa.Instr{
		{Op: isa.OpOr, Rd: 1, Rs1: 0, UseImm: true, Imm: 7},
		{Op: isa.OpOr, Rd: 3, Rs1: 0, Rs2: 2},
		{Op: isa.OpSubCC, Rd: 0, Rs1: 1, UseImm: true, Imm: 10},
		{Op: isa.OpOrCC, Rd: 0, Rs1: 0, Rs2: 4},
		{Op: isa.OpOr, Rd: 5, Rs1: 0, Rs2: 0},
		{Op: isa.OpAdd, Rd: 6, Rs1: 6, UseImm: true, Imm: 1},
		{Op: isa.OpSub, Rd: 7, Rs1: 7, UseImm: true, Imm: 2},
		{Op: isa.OpSub, Rd: 8, Rs1: 0, Rs2: 8},
		{Op: isa.OpXnor, Rd: 10, Rs1: 9, Rs2: 0},
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegI7, UseImm: true, Imm: 8},
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegO7, UseImm: true, Imm: 8},
		{Op: isa.OpSethi, Rd: 0, Imm: 0},
	}
	for i, want := range checks {
		if got := decodeAt(t, p, i); got != want {
			t.Errorf("instr %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestSetExpandsToSethiOr(t *testing.T) {
	p := assemble(t, `
        set     0x40001234, %g1
        set     5, %g2
`)
	if len(p.Text) != 4 {
		t.Fatalf("set must always expand to 2 words, text=%d", len(p.Text))
	}
	in0 := decodeAt(t, p, 0)
	in1 := decodeAt(t, p, 1)
	if in0.Op != isa.OpSethi || uint32(in0.Imm) != 0x40001234>>10 {
		t.Errorf("set hi part wrong: %+v", in0)
	}
	if in1.Op != isa.OpOr || in1.Rs1 != 1 || in1.Rd != 1 || uint32(in1.Imm) != 0x40001234&0x3FF {
		t.Errorf("set lo part wrong: %+v", in1)
	}
}

func TestBranchesAndTargets(t *testing.T) {
	p := assemble(t, `
start:  cmp     %g1, 0
        be      done
        nop
        ba,a    start
done:   halt
`)
	be := decodeAt(t, p, 1)
	if be.Op != isa.OpBicc || be.Cond != isa.CondE || be.Annul {
		t.Errorf("be: %+v", be)
	}
	if be.Disp != 3 { // from word 1 to word 4
		t.Errorf("be disp = %d, want 3", be.Disp)
	}
	ba := decodeAt(t, p, 3)
	if ba.Cond != isa.CondA || !ba.Annul || ba.Disp != -3 {
		t.Errorf("ba,a: %+v", ba)
	}
}

func TestCallAndSymbols(t *testing.T) {
	p := assemble(t, `
start:  call    f
        nop
        halt
f:      retl
        nop
`)
	call := decodeAt(t, p, 0)
	if call.Op != isa.OpCall || call.Disp != 3 {
		t.Errorf("call: %+v", call)
	}
	if got := p.Symbols["f"]; got != p.TextBase+12 {
		t.Errorf("symbol f = %#x, want %#x", got, p.TextBase+12)
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestDataDirectivesAndLayout(t *testing.T) {
	p := assemble(t, `
        .equ    MAGIC, 0xBEEF
        .text
start:  set     table, %g1
        halt
        .data
table:  .word   1, 2, MAGIC
half:   .half   0x1234, 0x5678
bytes:  .byte   1, 2, 3
        .align  4
aligned: .word  7
str:    .asciz  "hi\n"
buf:    .space  16
end_:   .word   end_
`)
	if p.DataBase%64 != 0 {
		t.Errorf("data base %#x not 64-byte aligned", p.DataBase)
	}
	if p.DataBase < p.TextBase+uint32(len(p.Text))*4 {
		t.Error("data overlaps text")
	}
	sym := func(name string) uint32 {
		v, ok := p.Symbols[name]
		if !ok {
			t.Fatalf("symbol %s missing", name)
		}
		return v
	}
	if sym("table") != p.DataBase {
		t.Errorf("table at %#x, want data base %#x", sym("table"), p.DataBase)
	}
	if sym("half") != p.DataBase+12 {
		t.Errorf("half at +%d, want +12", sym("half")-p.DataBase)
	}
	if sym("bytes") != p.DataBase+16 {
		t.Errorf("bytes at +%d", sym("bytes")-p.DataBase)
	}
	if sym("aligned")%4 != 0 || sym("aligned") != p.DataBase+20 {
		t.Errorf("aligned at +%d", sym("aligned")-p.DataBase)
	}
	// Word content, big-endian.
	if got := p.Data[8:12]; got[0] != 0 || got[1] != 0 || got[2] != 0xBE || got[3] != 0xEF {
		t.Errorf("MAGIC word = % x", got)
	}
	// Self-referential word: end_ contains its own address.
	endOff := sym("end_") - p.DataBase
	got := uint32(p.Data[endOff])<<24 | uint32(p.Data[endOff+1])<<16 |
		uint32(p.Data[endOff+2])<<8 | uint32(p.Data[endOff+3])
	if got != sym("end_") {
		t.Errorf("end_ = %#x, want %#x", got, sym("end_"))
	}
	// String content with terminator.
	strOff := sym("str") - p.DataBase
	if string(p.Data[strOff:strOff+3]) != "hi\n" || p.Data[strOff+3] != 0 {
		t.Errorf("asciz = % x", p.Data[strOff:strOff+4])
	}
}

func TestHiLoRelocations(t *testing.T) {
	p := assemble(t, `
        sethi   %hi(target), %g1
        or      %g1, %lo(target), %g1
        halt
        .data
        .space  100
target: .word   0
`)
	addr := p.Symbols["target"]
	hi := decodeAt(t, p, 0)
	lo := decodeAt(t, p, 1)
	if uint32(hi.Imm) != addr>>10 {
		t.Errorf("%%hi = %#x, want %#x", hi.Imm, addr>>10)
	}
	if uint32(lo.Imm) != addr&0x3FF {
		t.Errorf("%%lo = %#x, want %#x", lo.Imm, addr&0x3FF)
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := assemble(t, `
        .equ    BASE, 0x100
        .equ    SIZE, 32
        mov     BASE+SIZE, %g1
        mov     BASE-SIZE+4, %g2
        mov     -(SIZE), %g3
`)
	if in := decodeAt(t, p, 0); in.Imm != 0x120 {
		t.Errorf("BASE+SIZE = %d", in.Imm)
	}
	if in := decodeAt(t, p, 1); in.Imm != 0x100-32+4 {
		t.Errorf("BASE-SIZE+4 = %d", in.Imm)
	}
	if in := decodeAt(t, p, 2); in.Imm != -32 {
		t.Errorf("-(SIZE) = %d", in.Imm)
	}
}

func TestYRegisterForms(t *testing.T) {
	p := assemble(t, `
        wr      %g0, %y
        wr      %g1, 0, %y
        rd      %y, %g2
        mov     %g3, %y
        mov     %y, %g4
`)
	checks := []isa.Instr{
		{Op: isa.OpWrY, Rs1: 0, UseImm: true, Imm: 0},
		{Op: isa.OpWrY, Rs1: 1, UseImm: true, Imm: 0},
		{Op: isa.OpRdY, Rd: 2},
		{Op: isa.OpWrY, Rs1: 0, Rs2: 3},
		{Op: isa.OpRdY, Rd: 4},
	}
	for i, want := range checks {
		if got := decodeAt(t, p, i); got != want {
			t.Errorf("instr %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestSaveRestoreForms(t *testing.T) {
	p := assemble(t, `
        save    %sp, -96, %sp
        restore
        restore %o0, 0, %g1
`)
	checks := []isa.Instr{
		{Op: isa.OpSave, Rd: isa.RegSP, Rs1: isa.RegSP, UseImm: true, Imm: -96},
		{Op: isa.OpRestore},
		{Op: isa.OpRestore, Rd: 1, Rs1: 8, UseImm: true, Imm: 0},
	}
	for i, want := range checks {
		if got := decodeAt(t, p, i); got != want {
			t.Errorf("instr %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"dup label":           "x:\nx:\n  nop",
		"unknown instr":       "  frobnicate %g1",
		"unknown directive":   "  .bogus 1",
		"bad operand count":   "  add %g1, %g2",
		"undefined symbol":    "  mov nothere, %g1",
		"imm out of range":    "  add %g1, 9999, %g2",
		"branch bad target":   "  be 0x40000002",
		"data instr":          "  .data\n  add %g1, %g2, %g3",
		"word in text":        "  .text\n  .word 5",
		"space negative":      "  .data\n  .space -4",
		"align not power":     "  .data\n  .align 3",
		"equ dup":             "  .equ A, 1\n  .equ A, 2",
		"label equ collision": "A:\n  nop\n  .equ A, 2",
		"bad register":        "  add %q1, %g2, %g3",
		"wr to non-y":         "  wr %g1, %g2",
		"unterminated string": "  .data\n  .ascii \"abc",
		"stray characters":    "  add %g1, $, %g2",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error for:\n%s", name, src)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := assemble(t, `
! full line comment
        nop           ! trailing comment
        # hash comment
        nop
`)
	if len(p.Text) != 2 {
		t.Errorf("text = %d words, want 2", len(p.Text))
	}
}

func TestLoadIntoMemory(t *testing.T) {
	p := assemble(t, `
start:  set     value, %g1
        ld      [%g1], %g2
        halt
        .data
value:  .word   0xCAFED00D
`)
	m := mem.New(1 << 16)
	if err := p.Load(m); err != nil {
		t.Fatalf("Load: %v", err)
	}
	w, err := m.Read32(p.TextBase)
	if err != nil || w != p.Text[0] {
		t.Errorf("text word 0 in memory = %#x, %v", w, err)
	}
	v, err := m.Read32(p.Symbols["value"])
	if err != nil || v != 0xCAFED00D {
		t.Errorf("data word = %#x, %v", v, err)
	}
}

func TestEntryPointsAtStart(t *testing.T) {
	p := assemble(t, `
        nop
start:  nop
        halt
`)
	if p.Entry != p.TextBase+4 {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.TextBase+4)
	}
}

func TestCustomTextBase(t *testing.T) {
	p, err := AssembleWith("  nop\n  halt\n", Options{TextBase: mem.RAMBase + 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBase != mem.RAMBase+0x1000 {
		t.Errorf("text base = %#x", p.TextBase)
	}
	if _, err := AssembleWith("  nop\n", Options{TextBase: mem.RAMBase + 2}); err == nil {
		t.Error("unaligned text base should error")
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := Assemble("  nop\n  nop\n  frobnicate\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should cite line 3: %v", err)
	}
}

func TestBranchAnnulOnlyForBranches(t *testing.T) {
	// ",a" after a non-branch mnemonic must not parse as an annul flag.
	if _, err := Assemble("  add,a %g1, %g2, %g3\n"); err == nil {
		t.Error("',a' on add should be rejected")
	}
}

func TestAllBranchAliases(t *testing.T) {
	src := `
t0: ba t0
    nop
    bn t0
    nop
    be t0
    nop
    bz t0
    nop
    bne t0
    nop
    bnz t0
    nop
    bg t0
    nop
    ble t0
    nop
    bge t0
    nop
    bl t0
    nop
    bgu t0
    nop
    bleu t0
    nop
    bcc t0
    nop
    bgeu t0
    nop
    bcs t0
    nop
    blu t0
    nop
    bpos t0
    nop
    bneg t0
    nop
    bvc t0
    nop
    bvs t0
    nop
`
	p := assemble(t, src)
	conds := []isa.Cond{
		isa.CondA, isa.CondN, isa.CondE, isa.CondE, isa.CondNE, isa.CondNE,
		isa.CondG, isa.CondLE, isa.CondGE, isa.CondL, isa.CondGU, isa.CondLEU,
		isa.CondCC, isa.CondCC, isa.CondCS, isa.CondCS, isa.CondPos, isa.CondNeg,
		isa.CondVC, isa.CondVS,
	}
	for i, want := range conds {
		in := decodeAt(t, p, i*2)
		if in.Op != isa.OpBicc || in.Cond != want {
			t.Errorf("branch %d: %+v, want cond %v", i, in, want)
		}
	}
}

func TestTrapConditionVariants(t *testing.T) {
	p := assemble(t, "  ta 0\n  te 1\n  tne 2\n  tgu 3\n")
	conds := []isa.Cond{isa.CondA, isa.CondE, isa.CondNE, isa.CondGU}
	for i, want := range conds {
		in := decodeAt(t, p, i)
		if in.Op != isa.OpTicc || in.Cond != want || in.Imm != int32(i) {
			t.Errorf("trap %d: %+v", i, in)
		}
	}
}

func TestNegatedAndParenthesisedExpressions(t *testing.T) {
	p := assemble(t, `
        .equ    A, 10
        mov     -(A+2), %g1
        mov     (A)-(2+3), %g2
`)
	if in := decodeAt(t, p, 0); in.Imm != -12 {
		t.Errorf("-(A+2) = %d", in.Imm)
	}
	if in := decodeAt(t, p, 1); in.Imm != 5 {
		t.Errorf("(A)-(2+3) = %d", in.Imm)
	}
}

func TestCharLiterals(t *testing.T) {
	p := assemble(t, "  mov 'x', %g1\n  mov '\\n', %g2\n")
	if in := decodeAt(t, p, 0); in.Imm != 'x' {
		t.Errorf("'x' = %d", in.Imm)
	}
	if in := decodeAt(t, p, 1); in.Imm != '\n' {
		t.Errorf("'\\n' = %d", in.Imm)
	}
}

func TestMultipleLabelsOneAddress(t *testing.T) {
	p := assemble(t, "a: b: c: nop\n")
	for _, l := range []string{"a", "b", "c"} {
		if p.Symbols[l] != p.TextBase {
			t.Errorf("label %s = %#x, want %#x", l, p.Symbols[l], p.TextBase)
		}
	}
}

func TestDataAlignTo64(t *testing.T) {
	p := assemble(t, `
        .data
x:      .byte   1
        .align  64
y:      .word   2
`)
	if p.Symbols["y"]%64 != 0 {
		t.Errorf("y at %#x, not 64-aligned", p.Symbols["y"])
	}
}

func TestJmpAddressForms(t *testing.T) {
	p := assemble(t, `
        jmp     %g1
        jmp     %g1+8
        jmp     %g1+%g2
        jmpl    %g3-4, %o7
`)
	checks := []isa.Instr{
		{Op: isa.OpJmpl, Rd: 0, Rs1: 1, UseImm: true, Imm: 0},
		{Op: isa.OpJmpl, Rd: 0, Rs1: 1, UseImm: true, Imm: 8},
		{Op: isa.OpJmpl, Rd: 0, Rs1: 1, Rs2: 2},
		{Op: isa.OpJmpl, Rd: 15, Rs1: 3, UseImm: true, Imm: -4},
	}
	for i, want := range checks {
		if got := decodeAt(t, p, i); got != want {
			t.Errorf("jmp %d: %+v want %+v", i, got, want)
		}
	}
}
