package asm

import "fmt"

// evalExpr evaluates an integer expression over tokens:
//
//	expr := term (('+'|'-') term)*
//	term := number | ident | '-' term | '(' expr ')' | %hi(expr) | %lo(expr)
//
// lookup resolves identifiers (labels or .equ constants).
func evalExpr(toks []token, lookup func(string) (int64, bool)) (int64, error) {
	p := &exprParser{toks: toks, lookup: lookup}
	v, err := p.expr()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("unexpected %s in expression", p.toks[p.pos])
	}
	return v, nil
}

type exprParser struct {
	toks   []token
	pos    int
	lookup func(string) (int64, bool)
}

func (p *exprParser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *exprParser) expr() (int64, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokPunct || (t.s != "+" && t.s != "-") {
			return v, nil
		}
		p.pos++
		rhs, err := p.term()
		if err != nil {
			return 0, err
		}
		if t.s == "+" {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (p *exprParser) term() (int64, error) {
	t, ok := p.peek()
	if !ok {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	switch {
	case t.kind == tokNum:
		p.pos++
		return t.n, nil
	case t.kind == tokIdent:
		p.pos++
		v, found := p.lookup(t.s)
		if !found {
			return 0, fmt.Errorf("undefined symbol %q", t.s)
		}
		return v, nil
	case t.kind == tokPunct && t.s == "-":
		p.pos++
		v, err := p.term()
		if err != nil {
			return 0, err
		}
		return -v, nil
	case t.kind == tokPunct && t.s == "(":
		p.pos++
		v, err := p.expr()
		if err != nil {
			return 0, err
		}
		if err := p.expect(")"); err != nil {
			return 0, err
		}
		return v, nil
	case t.kind == tokPct && (t.s == "hi" || t.s == "lo"):
		p.pos++
		if err := p.expect("("); err != nil {
			return 0, err
		}
		v, err := p.expr()
		if err != nil {
			return 0, err
		}
		if err := p.expect(")"); err != nil {
			return 0, err
		}
		if t.s == "hi" {
			return int64(uint32(v) >> 10), nil
		}
		return int64(uint32(v) & 0x3FF), nil
	default:
		return 0, fmt.Errorf("unexpected %s in expression", t)
	}
}

func (p *exprParser) expect(punct string) error {
	t, ok := p.peek()
	if !ok || t.kind != tokPunct || t.s != punct {
		return fmt.Errorf("expected %q", punct)
	}
	p.pos++
	return nil
}
