package asm

import (
	"fmt"
	"strings"

	"liquidarch/internal/isa"
)

// aluOps maps three-operand ALU mnemonics to opcodes.
var aluOps = map[string]isa.Opcode{
	"add": isa.OpAdd, "addcc": isa.OpAddCC,
	"sub": isa.OpSub, "subcc": isa.OpSubCC,
	"and": isa.OpAnd, "andcc": isa.OpAndCC,
	"or": isa.OpOr, "orcc": isa.OpOrCC,
	"xor": isa.OpXor, "xorcc": isa.OpXorCC,
	"andn": isa.OpAndN, "orn": isa.OpOrN, "xnor": isa.OpXnor,
	"sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
	"umul": isa.OpUMul, "smul": isa.OpSMul,
	"umulcc": isa.OpUMulCC, "smulcc": isa.OpSMulCC,
	"udiv": isa.OpUDiv, "sdiv": isa.OpSDiv,
	"save": isa.OpSave, "restore": isa.OpRestore,
}

// loadOps and storeOps map memory mnemonics to opcodes.
var loadOps = map[string]isa.Opcode{
	"ld": isa.OpLd, "ldub": isa.OpLdUB, "ldsb": isa.OpLdSB,
	"lduh": isa.OpLdUH, "ldsh": isa.OpLdSH,
}
var storeOps = map[string]isa.Opcode{
	"st": isa.OpSt, "stb": isa.OpStB, "sth": isa.OpStH,
}

// branchConds maps branch mnemonics to conditions (with aliases).
var branchConds = map[string]isa.Cond{
	"ba": isa.CondA, "b": isa.CondA, "bn": isa.CondN,
	"be": isa.CondE, "bz": isa.CondE,
	"bne": isa.CondNE, "bnz": isa.CondNE,
	"bg": isa.CondG, "ble": isa.CondLE,
	"bge": isa.CondGE, "bl": isa.CondL,
	"bgu": isa.CondGU, "bleu": isa.CondLEU,
	"bcc": isa.CondCC, "bgeu": isa.CondCC,
	"bcs": isa.CondCS, "blu": isa.CondCS,
	"bpos": isa.CondPos, "bneg": isa.CondNeg,
	"bvc": isa.CondVC, "bvs": isa.CondVS,
}

// trapConds maps trap mnemonics to conditions.
var trapConds = map[string]isa.Cond{
	"ta": isa.CondA, "tn": isa.CondN, "te": isa.CondE, "tne": isa.CondNE,
	"tg": isa.CondG, "tle": isa.CondLE, "tge": isa.CondGE, "tl": isa.CondL,
	"tgu": isa.CondGU, "tleu": isa.CondLEU, "tcc": isa.CondCC, "tcs": isa.CondCS,
	"tpos": isa.CondPos, "tneg": isa.CondNeg, "tvc": isa.CondVC, "tvs": isa.CondVS,
}

// pseudo1 lists single-word pseudo/real mnemonics outside the tables.
var otherMnemonics = map[string]bool{
	"sethi": true, "call": true, "jmpl": true, "jmp": true,
	"ret": true, "retl": true, "nop": true, "halt": true,
	"mov": true, "cmp": true, "tst": true, "clr": true,
	"inc": true, "dec": true, "neg": true, "not": true,
	"rd": true, "wr": true,
}

func isBranchMnemonic(m string) bool {
	_, ok := branchConds[m]
	return ok
}

// instrWords returns the number of instruction words a mnemonic expands to.
func instrWords(m string) (uint32, bool) {
	if m == "set" {
		return 2, true
	}
	if _, ok := aluOps[m]; ok {
		return 1, true
	}
	if _, ok := loadOps[m]; ok {
		return 1, true
	}
	if _, ok := storeOps[m]; ok {
		return 1, true
	}
	if _, ok := branchConds[m]; ok {
		return 1, true
	}
	if _, ok := trapConds[m]; ok {
		return 1, true
	}
	if otherMnemonics[m] {
		return 1, true
	}
	return 0, false
}

// parseReg expects a single register token.
func parseReg(op []token) (uint8, error) {
	if len(op) != 1 || op[0].kind != tokPct {
		return 0, fmt.Errorf("expected register, got %q", tokensString(op))
	}
	return isa.ParseReg(op[0].s)
}

func isRegToken(op []token) bool {
	if len(op) != 1 || op[0].kind != tokPct {
		return false
	}
	_, err := isa.ParseReg(op[0].s)
	return err == nil
}

// parseRegOrImm resolves the reg-or-immediate second ALU operand.
func (a *assembler) parseRegOrImm(op []token) (rs2 uint8, imm int32, useImm bool, err error) {
	if isRegToken(op) {
		r, err := isa.ParseReg(op[0].s)
		return r, 0, false, err
	}
	v, err := a.evalSym(op)
	if err != nil {
		return 0, 0, false, err
	}
	return 0, int32(v), true, nil
}

// parseAddress parses `%reg`, `%reg + expr`, `%reg - expr` or
// `%reg + %reg` (no brackets).
func (a *assembler) parseAddress(op []token) (rs1, rs2 uint8, imm int32, useImm bool, err error) {
	if len(op) == 0 || op[0].kind != tokPct {
		return 0, 0, 0, false, fmt.Errorf("address must start with a register")
	}
	rs1, err = isa.ParseReg(op[0].s)
	if err != nil {
		return 0, 0, 0, false, err
	}
	rest := op[1:]
	if len(rest) == 0 {
		return rs1, 0, 0, true, nil // [%reg] == [%reg + 0]
	}
	if rest[0].kind != tokPunct || (rest[0].s != "+" && rest[0].s != "-") {
		return 0, 0, 0, false, fmt.Errorf("expected + or - in address")
	}
	if rest[0].s == "+" && isRegToken(rest[1:]) {
		rs2, err = isa.ParseReg(rest[1].s)
		return rs1, rs2, 0, false, err
	}
	v, err := a.evalSym(rest[1:])
	if err != nil {
		return 0, 0, 0, false, err
	}
	if rest[0].s == "-" {
		v = -v
	}
	return rs1, 0, int32(v), true, nil
}

// parseMem parses a bracketed memory operand.
func (a *assembler) parseMem(op []token) (rs1, rs2 uint8, imm int32, useImm bool, err error) {
	if len(op) < 3 || op[0].kind != tokPunct || op[0].s != "[" ||
		op[len(op)-1].kind != tokPunct || op[len(op)-1].s != "]" {
		return 0, 0, 0, false, fmt.Errorf("expected [address], got %q", tokensString(op))
	}
	return a.parseAddress(op[1 : len(op)-1])
}

func tokensString(toks []token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// emit assembles one item into the program image (pass 2).
func (a *assembler) emit(prog *Program, it *item) error {
	if strings.HasPrefix(it.mnemonic, ".") {
		return a.emitDirective(prog, it)
	}
	instrs, err := a.assembleInstr(it)
	if err != nil {
		return err
	}
	if uint32(len(instrs))*4 != it.size {
		return fmt.Errorf("internal: %s sized %d bytes but expanded to %d instructions", it.mnemonic, it.size, len(instrs))
	}
	for k, in := range instrs {
		w, err := isa.Encode(in)
		if err != nil {
			return fmt.Errorf("%s: %v", it.mnemonic, err)
		}
		prog.Text[int(it.offset/4)+k] = w
	}
	return nil
}

func (a *assembler) emitDirective(prog *Program, it *item) error {
	put8 := func(off uint32, v uint8) {
		prog.Data[off] = v
	}
	switch it.mnemonic {
	case ".word":
		for i, op := range it.operands {
			v, err := a.evalSym(op)
			if err != nil {
				return fmt.Errorf(".word: %v", err)
			}
			off := it.offset + uint32(i*4)
			u := uint32(v)
			put8(off, uint8(u>>24))
			put8(off+1, uint8(u>>16))
			put8(off+2, uint8(u>>8))
			put8(off+3, uint8(u))
		}
	case ".half":
		for i, op := range it.operands {
			v, err := a.evalSym(op)
			if err != nil {
				return fmt.Errorf(".half: %v", err)
			}
			off := it.offset + uint32(i*2)
			put8(off, uint8(uint32(v)>>8))
			put8(off+1, uint8(v))
		}
	case ".byte":
		for i, op := range it.operands {
			v, err := a.evalSym(op)
			if err != nil {
				return fmt.Errorf(".byte: %v", err)
			}
			put8(it.offset+uint32(i), uint8(v))
		}
	case ".ascii", ".asciz":
		s := it.operands[0][0].s
		for i := 0; i < len(s); i++ {
			put8(it.offset+uint32(i), s[i])
		}
		if it.mnemonic == ".asciz" {
			put8(it.offset+uint32(len(s)), 0)
		}
	case ".space", ".skip":
		// Zero-initialised by construction.
	case ".align":
		if it.section == secText {
			// Pad with NOPs.
			for k := uint32(0); k < it.size; k += 4 {
				prog.Text[(it.offset+k)/4] = isa.NopWord
			}
		}
	default:
		return fmt.Errorf("unknown directive %s", it.mnemonic)
	}
	return nil
}

// assembleInstr expands one mnemonic into concrete instructions.
func (a *assembler) assembleInstr(it *item) ([]isa.Instr, error) {
	pc := a.opts.TextBase + it.offset
	ops := it.operands
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operands, got %d", it.mnemonic, n, len(ops))
		}
		return nil
	}
	one := func(in isa.Instr) ([]isa.Instr, error) { return []isa.Instr{in}, nil }

	if op, ok := aluOps[it.mnemonic]; ok {
		// restore may be bare.
		if op == isa.OpRestore && len(ops) == 0 {
			return one(isa.Instr{Op: op, Rd: 0, Rs1: 0, Rs2: 0})
		}
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs2, imm, useImm, err := a.parseRegOrImm(ops[1])
		if err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[2])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})
	}

	if op, ok := loadOps[it.mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs1, rs2, imm, useImm, err := a.parseMem(ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})
	}

	if op, ok := storeOps[it.mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, rs2, imm, useImm, err := a.parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})
	}

	if cond, ok := branchConds[it.mnemonic]; ok {
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := a.evalSym(ops[0])
		if err != nil {
			return nil, err
		}
		delta := int64(target) - int64(pc)
		if delta%4 != 0 {
			return nil, fmt.Errorf("branch target %#x not word aligned", target)
		}
		return one(isa.Instr{Op: isa.OpBicc, Cond: cond, Annul: it.annul, Disp: int32(delta / 4)})
	}

	if cond, ok := trapConds[it.mnemonic]; ok {
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := a.evalSym(ops[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpTicc, Cond: cond, Rs1: 0, UseImm: true, Imm: int32(v)})
	}

	switch it.mnemonic {
	case "sethi":
		if err := need(2); err != nil {
			return nil, err
		}
		v, err := a.evalSym(ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSethi, Rd: rd, Imm: int32(v)})

	case "set":
		if err := need(2); err != nil {
			return nil, err
		}
		v, err := a.evalSym(ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		u := uint32(v)
		return []isa.Instr{
			{Op: isa.OpSethi, Rd: rd, Imm: int32(u >> 10)},
			{Op: isa.OpOr, Rd: rd, Rs1: rd, UseImm: true, Imm: int32(u & 0x3FF)},
		}, nil

	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := a.evalSym(ops[0])
		if err != nil {
			return nil, err
		}
		delta := int64(target) - int64(pc)
		if delta%4 != 0 {
			return nil, fmt.Errorf("call target %#x not word aligned", target)
		}
		return one(isa.Instr{Op: isa.OpCall, Disp: int32(delta / 4)})

	case "jmpl":
		if err := need(2); err != nil {
			return nil, err
		}
		rs1, rs2, imm, useImm, err := a.parseAddress(ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpJmpl, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})

	case "jmp":
		if err := need(1); err != nil {
			return nil, err
		}
		rs1, rs2, imm, useImm, err := a.parseAddress(ops[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpJmpl, Rd: 0, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})

	case "ret":
		if len(ops) != 0 {
			return nil, fmt.Errorf("ret takes no operands")
		}
		return one(isa.Instr{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegI7, UseImm: true, Imm: 8})

	case "retl":
		if len(ops) != 0 {
			return nil, fmt.Errorf("retl takes no operands")
		}
		return one(isa.Instr{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegO7, UseImm: true, Imm: 8})

	case "nop":
		return one(isa.Instr{Op: isa.OpSethi, Rd: 0, Imm: 0})

	case "halt":
		return one(isa.Instr{Op: isa.OpTicc, Cond: isa.CondA, Rs1: 0, UseImm: true, Imm: 0})

	case "mov":
		if err := need(2); err != nil {
			return nil, err
		}
		// mov to %y is a wr; mov from %y is a rd.
		if len(ops[1]) == 1 && ops[1][0].kind == tokPct && ops[1][0].s == "y" {
			rs2, imm, useImm, err := a.parseRegOrImm(ops[0])
			if err != nil {
				return nil, err
			}
			return one(isa.Instr{Op: isa.OpWrY, Rs1: 0, Rs2: rs2, Imm: imm, UseImm: useImm})
		}
		if len(ops[0]) == 1 && ops[0][0].kind == tokPct && ops[0][0].s == "y" {
			rd, err := parseReg(ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Instr{Op: isa.OpRdY, Rd: rd})
		}
		rs2, imm, useImm, err := a.parseRegOrImm(ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: 0, Rs2: rs2, Imm: imm, UseImm: useImm})

	case "cmp":
		if err := need(2); err != nil {
			return nil, err
		}
		rs1, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs2, imm, useImm, err := a.parseRegOrImm(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSubCC, Rd: 0, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})

	case "tst":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpOrCC, Rd: 0, Rs1: 0, Rs2: rs})

	case "clr":
		if err := need(1); err != nil {
			return nil, err
		}
		if len(ops[0]) > 0 && ops[0][0].kind == tokPunct && ops[0][0].s == "[" {
			rs1, rs2, imm, useImm, err := a.parseMem(ops[0])
			if err != nil {
				return nil, err
			}
			return one(isa.Instr{Op: isa.OpSt, Rd: 0, Rs1: rs1, Rs2: rs2, Imm: imm, UseImm: useImm})
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: 0, Rs2: 0})

	case "inc", "dec":
		if len(ops) != 1 && len(ops) != 2 {
			return nil, fmt.Errorf("%s needs 1 or 2 operands", it.mnemonic)
		}
		var amount int32 = 1
		regOp := ops[len(ops)-1]
		if len(ops) == 2 {
			v, err := a.evalSym(ops[0])
			if err != nil {
				return nil, err
			}
			amount = int32(v)
		}
		rd, err := parseReg(regOp)
		if err != nil {
			return nil, err
		}
		op := isa.OpAdd
		if it.mnemonic == "dec" {
			op = isa.OpSub
		}
		return one(isa.Instr{Op: op, Rd: rd, Rs1: rd, UseImm: true, Imm: amount})

	case "neg":
		if len(ops) != 1 && len(ops) != 2 {
			return nil, fmt.Errorf("neg needs 1 or 2 operands")
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rd := rs
		if len(ops) == 2 {
			if rd, err = parseReg(ops[1]); err != nil {
				return nil, err
			}
		}
		return one(isa.Instr{Op: isa.OpSub, Rd: rd, Rs1: 0, Rs2: rs})

	case "not":
		if len(ops) != 1 && len(ops) != 2 {
			return nil, fmt.Errorf("not needs 1 or 2 operands")
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rd := rs
		if len(ops) == 2 {
			if rd, err = parseReg(ops[1]); err != nil {
				return nil, err
			}
		}
		return one(isa.Instr{Op: isa.OpXnor, Rd: rd, Rs1: rs, Rs2: 0})

	case "rd":
		if err := need(2); err != nil {
			return nil, err
		}
		if len(ops[0]) != 1 || ops[0][0].kind != tokPct || ops[0][0].s != "y" {
			return nil, fmt.Errorf("rd reads %%y only")
		}
		rdReg, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpRdY, Rd: rdReg})

	case "wr":
		if len(ops) != 2 && len(ops) != 3 {
			return nil, fmt.Errorf("wr needs 2 or 3 operands")
		}
		last := ops[len(ops)-1]
		if len(last) != 1 || last[0].kind != tokPct || last[0].s != "y" {
			return nil, fmt.Errorf("wr writes %%y only")
		}
		rs1, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		in := isa.Instr{Op: isa.OpWrY, Rs1: rs1, UseImm: true, Imm: 0}
		if len(ops) == 3 {
			rs2, imm, useImm, err := a.parseRegOrImm(ops[1])
			if err != nil {
				return nil, err
			}
			in.Rs2, in.Imm, in.UseImm = rs2, imm, useImm
		}
		return one(in)
	}

	return nil, fmt.Errorf("unknown instruction %s", it.mnemonic)
}
