// Package asm is a two-pass assembler for the SPARC V8 subset of package
// isa. It supports the classic SPARC assembly dialect the paper's
// benchmarks (Section 2.5) would have been written in: sections (.text/.data), labels,
// data directives (.word/.half/.byte/.space/.align/.ascii/.asciz/.equ),
// %hi/%lo relocations, branch annul suffixes (",a"), and the standard
// pseudo-instructions (set, mov, cmp, tst, clr, inc, dec, neg, not, nop,
// ret, retl, jmp, b, halt).
//
// Delay slots are the programmer's responsibility, as on real SPARC.
package asm

import (
	"fmt"
	"strings"

	"liquidarch/internal/mem"
)

// Program is the result of assembling a source file.
type Program struct {
	// TextBase is the load address of the first instruction.
	TextBase uint32
	// Text holds the encoded instruction words.
	Text []uint32
	// DataBase is the load address of the data image (after text,
	// 64-byte aligned).
	DataBase uint32
	// Data is the initialised data image.
	Data []byte
	// Entry is the execution entry point: the `start` symbol if defined,
	// otherwise TextBase.
	Entry uint32
	// Symbols maps every label and .equ constant to its value.
	Symbols map[string]uint32
}

// TextWords returns the number of instruction words.
func (p *Program) TextWords() int { return len(p.Text) }

// Load writes the text and data images into memory.
func (p *Program) Load(m *mem.Memory) error {
	for i, w := range p.Text {
		if err := m.Write32(p.TextBase+uint32(i)*4, w); err != nil {
			return fmt.Errorf("asm: loading text word %d: %w", i, err)
		}
	}
	if len(p.Data) > 0 {
		if err := m.LoadImage(p.DataBase, p.Data); err != nil {
			return fmt.Errorf("asm: loading data image: %w", err)
		}
	}
	return nil
}

// Options configures assembly.
type Options struct {
	// TextBase is the load address of the text section; defaults to the
	// base of RAM.
	TextBase uint32
	// DataAlign aligns the start of the data section; defaults to 64.
	DataAlign uint32
}

// Assemble assembles src with default options.
func Assemble(src string) (*Program, error) {
	return AssembleWith(src, Options{})
}

const (
	secText = iota
	secData
)

// item is one instruction or data directive scheduled for pass 2.
type item struct {
	line     int
	section  int
	offset   uint32 // offset within its section
	mnemonic string
	annul    bool
	operands [][]token
	size     uint32
}

type assembler struct {
	opts     Options
	symbols  map[string]uint32
	equs     map[string]int64
	textOff  uint32
	dataOff  uint32
	items    []item
	dataBase uint32
}

// AssembleWith assembles src with explicit options.
func AssembleWith(src string, opts Options) (*Program, error) {
	if opts.TextBase == 0 {
		opts.TextBase = mem.RAMBase
	}
	if opts.TextBase%4 != 0 {
		return nil, fmt.Errorf("asm: text base %#x not word aligned", opts.TextBase)
	}
	if opts.DataAlign == 0 {
		opts.DataAlign = 64
	}
	a := &assembler{
		opts:    opts,
		symbols: make(map[string]uint32),
		equs:    make(map[string]int64),
	}
	// symbolSection remembers which section each label was defined in so
	// addresses can be fixed up once section bases are known.
	symSection := make(map[string]int)

	// ---- Pass 1: sizing, label collection ----
	lines := strings.Split(src, "\n")
	section := secText
	for ln, raw := range lines {
		lineNo := ln + 1
		toks, err := tokenize(raw)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", lineNo, err)
		}
		// Labels: ident ':' (repeatable).
		for len(toks) >= 2 && toks[0].kind == tokIdent && toks[1].kind == tokPunct && toks[1].s == ":" {
			name := toks[0].s
			if _, dup := a.symbols[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", lineNo, name)
			}
			if _, dup := a.equs[name]; dup {
				return nil, fmt.Errorf("asm: line %d: label %q collides with .equ", lineNo, name)
			}
			a.symbols[name] = a.offsetIn(section)
			symSection[name] = section
			toks = toks[2:]
		}
		if len(toks) == 0 {
			continue
		}
		if toks[0].kind != tokIdent {
			return nil, fmt.Errorf("asm: line %d: expected mnemonic or directive, got %s", lineNo, toks[0])
		}
		mnemonic := strings.ToLower(toks[0].s)
		rest := toks[1:]

		// Branch annul suffix: "be,a target".
		annul := false
		if len(rest) >= 2 && rest[0].kind == tokPunct && rest[0].s == "," &&
			rest[1].kind == tokIdent && strings.EqualFold(rest[1].s, "a") && isBranchMnemonic(mnemonic) {
			annul = true
			rest = rest[2:]
		}
		operands := splitOperands(rest)

		switch mnemonic {
		case ".text":
			section = secText
			continue
		case ".data":
			section = secData
			continue
		case ".global", ".globl":
			continue // labels are all visible; accepted for compatibility
		case ".equ":
			if len(operands) != 2 || len(operands[0]) != 1 || operands[0][0].kind != tokIdent {
				return nil, fmt.Errorf("asm: line %d: .equ needs `name, value`", lineNo)
			}
			v, err := a.evalConst(operands[1])
			if err != nil {
				return nil, fmt.Errorf("asm: line %d: .equ value: %v", lineNo, err)
			}
			name := operands[0][0].s
			if _, dup := a.equs[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate .equ %q", lineNo, name)
			}
			a.equs[name] = v
			continue
		}

		size, err := a.sizeOf(mnemonic, operands, section)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", lineNo, err)
		}
		a.items = append(a.items, item{
			line: lineNo, section: section, offset: a.offsetIn(section),
			mnemonic: mnemonic, annul: annul, operands: operands, size: size,
		})
		a.addSize(section, size)
	}

	if a.textOff%4 != 0 {
		return nil, fmt.Errorf("asm: text section size %d not a multiple of 4", a.textOff)
	}

	// Fix up symbol addresses now that section bases are known.
	align := a.opts.DataAlign
	a.dataBase = (a.opts.TextBase + a.textOff + align - 1) &^ (align - 1)
	for name, off := range a.symbols {
		if symSection[name] == secText {
			a.symbols[name] = a.opts.TextBase + off
		} else {
			a.symbols[name] = a.dataBase + off
		}
	}
	for name, v := range a.equs {
		if _, dup := a.symbols[name]; dup {
			return nil, fmt.Errorf("asm: .equ %q collides with a label", name)
		}
		a.symbols[name] = uint32(v)
	}

	// ---- Pass 2: emission ----
	prog := &Program{
		TextBase: a.opts.TextBase,
		Text:     make([]uint32, a.textOff/4),
		DataBase: a.dataBase,
		Data:     make([]byte, a.dataOff),
		Symbols:  a.symbols,
	}
	for i := range a.items {
		it := &a.items[i]
		if err := a.emit(prog, it); err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", it.line, err)
		}
	}
	prog.Entry = prog.TextBase
	if e, ok := a.symbols["start"]; ok {
		prog.Entry = e
	}
	return prog, nil
}

func (a *assembler) offsetIn(section int) uint32 {
	if section == secText {
		return a.textOff
	}
	return a.dataOff
}

func (a *assembler) addSize(section int, n uint32) {
	if section == secText {
		a.textOff += n
	} else {
		a.dataOff += n
	}
}

// sizeOf computes the byte size an item will occupy (pass 1).
func (a *assembler) sizeOf(mnemonic string, operands [][]token, section int) (uint32, error) {
	switch mnemonic {
	case ".word", ".half", ".byte", ".space", ".skip", ".ascii", ".asciz":
		if section == secText {
			return 0, fmt.Errorf("%s is only allowed in the data section", mnemonic)
		}
	}
	switch mnemonic {
	case ".word":
		return uint32(4 * max(1, len(operands))), nil
	case ".half":
		return uint32(2 * max(1, len(operands))), nil
	case ".byte":
		return uint32(max(1, len(operands))), nil
	case ".space", ".skip":
		if len(operands) < 1 {
			return 0, fmt.Errorf(".space needs a size")
		}
		v, err := a.evalConst(operands[0])
		if err != nil {
			return 0, fmt.Errorf(".space size: %v", err)
		}
		if v < 0 || v > 1<<24 {
			return 0, fmt.Errorf(".space size %d out of range", v)
		}
		return uint32(v), nil
	case ".align":
		if len(operands) != 1 {
			return 0, fmt.Errorf(".align needs an alignment")
		}
		v, err := a.evalConst(operands[0])
		if err != nil {
			return 0, err
		}
		if v <= 0 || v&(v-1) != 0 {
			return 0, fmt.Errorf(".align %d not a power of two", v)
		}
		off := a.offsetIn(section)
		pad := (uint32(v) - off%uint32(v)) % uint32(v)
		if section == secText && pad%4 != 0 {
			return 0, fmt.Errorf(".align %d in text not word-aligned", v)
		}
		return pad, nil
	case ".ascii", ".asciz":
		if len(operands) != 1 || len(operands[0]) != 1 || operands[0][0].kind != tokStr {
			return 0, fmt.Errorf("%s needs one string", mnemonic)
		}
		n := uint32(len(operands[0][0].s))
		if mnemonic == ".asciz" {
			n++
		}
		return n, nil
	}
	if strings.HasPrefix(mnemonic, ".") {
		return 0, fmt.Errorf("unknown directive %s", mnemonic)
	}
	if section != secText {
		return 0, fmt.Errorf("instruction %s in data section", mnemonic)
	}
	words, ok := instrWords(mnemonic)
	if !ok {
		return 0, fmt.Errorf("unknown instruction %s", mnemonic)
	}
	return words * 4, nil
}

// evalConst evaluates an expression using only .equ constants (pass 1).
func (a *assembler) evalConst(toks []token) (int64, error) {
	return evalExpr(toks, func(name string) (int64, bool) {
		v, ok := a.equs[name]
		return v, ok
	})
}

// evalSym evaluates an expression with the full symbol table (pass 2).
func (a *assembler) evalSym(toks []token) (int64, error) {
	return evalExpr(toks, func(name string) (int64, bool) {
		if v, ok := a.symbols[name]; ok {
			return int64(v), true
		}
		return 0, false
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
