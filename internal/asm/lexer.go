package asm

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tokIdent tokKind = iota // bare identifier or directive (.word)
	tokPct                  // %-prefixed name: register, %hi, %lo, %y
	tokNum                  // integer literal
	tokPunct                // single punctuation: , [ ] + - ( ) :
	tokStr                  // quoted string (for .ascii/.asciz)
)

type token struct {
	kind tokKind
	s    string
	n    int64
}

func (t token) String() string {
	switch t.kind {
	case tokNum:
		return strconv.FormatInt(t.n, 10)
	case tokPct:
		return "%" + t.s
	case tokStr:
		return strconv.Quote(t.s)
	default:
		return t.s
	}
}

// tokenize splits one source line into tokens. Comments start with '!' or
// '#' and run to end of line.
func tokenize(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == '!' || c == '#':
			return toks, nil // comment
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && line[j] != '"' {
				if line[j] == '\\' && j+1 < n {
					j++
					switch line[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '0':
						sb.WriteByte(0)
					case '\\', '"':
						sb.WriteByte(line[j])
					default:
						return nil, fmt.Errorf("unknown escape \\%c", line[j])
					}
				} else {
					sb.WriteByte(line[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, token{kind: tokStr, s: sb.String()})
			i = j + 1
		case c == '\'':
			// Character literal 'x' or '\n'.
			j := i + 1
			if j >= n {
				return nil, fmt.Errorf("unterminated character literal")
			}
			var v byte
			if line[j] == '\\' && j+1 < n {
				j++
				switch line[j] {
				case 'n':
					v = '\n'
				case 't':
					v = '\t'
				case '0':
					v = 0
				case '\\', '\'':
					v = line[j]
				default:
					return nil, fmt.Errorf("unknown escape \\%c", line[j])
				}
			} else {
				v = line[j]
			}
			j++
			if j >= n || line[j] != '\'' {
				return nil, fmt.Errorf("unterminated character literal")
			}
			toks = append(toks, token{kind: tokNum, n: int64(v)})
			i = j + 1
		case c == '%':
			j := i + 1
			for j < n && (isIdentChar(line[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("lone %% at column %d", i+1)
			}
			toks = append(toks, token{kind: tokPct, s: strings.ToLower(line[i+1 : j])})
			i = j
		case isDigit(c) || (c == '0' && i+1 < n):
			j := i
			base := 10
			if c == '0' && i+2 < n && (line[i+1] == 'x' || line[i+1] == 'X') {
				base = 16
				j = i + 2
				for j < n && isHexDigit(line[j]) {
					j++
				}
			} else {
				for j < n && isDigit(line[j]) {
					j++
				}
			}
			v, err := strconv.ParseInt(strings.TrimPrefix(strings.TrimPrefix(line[i:j], "0x"), "0X"), base, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q: %v", line[i:j], err)
			}
			toks = append(toks, token{kind: tokNum, n: v})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, s: line[i:j]})
			i = j
		case strings.ContainsRune(",[]+-():", rune(c)):
			toks = append(toks, token{kind: tokPunct, s: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q at column %d", c, i+1)
		}
	}
	return toks, nil
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }

// splitOperands divides tokens into comma-separated operand groups,
// respecting bracket and parenthesis nesting.
func splitOperands(toks []token) [][]token {
	var out [][]token
	depth := 0
	start := 0
	for i, t := range toks {
		if t.kind == tokPunct {
			switch t.s {
			case "[", "(":
				depth++
			case "]", ")":
				depth--
			case ",":
				if depth == 0 {
					out = append(out, toks[start:i])
					start = i + 1
				}
			}
		}
	}
	if start < len(toks) {
		out = append(out, toks[start:])
	} else if start > 0 && start == len(toks) {
		out = append(out, nil)
	}
	return out
}
