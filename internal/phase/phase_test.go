package phase_test

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// synthInterval builds an interval with the given signature and cycle
// cost.
func synthInterval(i int, cycles uint64, hot ...int) platform.Interval {
	sig := make([]uint32, platform.SignatureBuckets)
	for _, b := range hot {
		sig[b] = 100
	}
	return platform.Interval{
		Index:        i,
		Instructions: 1000,
		Stats:        profiler.Stats{Cycles: cycles, Instructions: 1000},
		Signature:    sig,
	}
}

// TestDetectClustering: intervals with matching signatures share a
// phase, distinct signatures found new phases in first-appearance order,
// and segments RLE the assignment.
func TestDetectClustering(t *testing.T) {
	ivs := []platform.Interval{
		synthInterval(0, 1500, 3),
		synthInterval(1, 1500, 3),
		synthInterval(2, 4000, 40),
		synthInterval(3, 4000, 40),
		synthInterval(4, 1500, 3),
	}
	tr := phase.Detect(ivs, 1000, phase.Options{})
	if tr.Phases != 2 {
		t.Fatalf("detected %d phases, want 2", tr.Phases)
	}
	if want := []int{0, 0, 1, 1, 0}; !reflect.DeepEqual(tr.Assignments, want) {
		t.Fatalf("assignments %v, want %v", tr.Assignments, want)
	}
	if len(tr.Segments) != 3 {
		t.Fatalf("got %d segments, want 3: %+v", len(tr.Segments), tr.Segments)
	}
	seg := tr.Segments[1]
	if seg.Phase != 1 || seg.Start != 2 || seg.End != 3 || seg.Cycles != 8000 || seg.Instructions != 2000 {
		t.Errorf("middle segment wrong: %+v", seg)
	}
	if tr.Switches() != 2 {
		t.Errorf("switches = %d, want 2", tr.Switches())
	}
}

// TestDetectThreshold: near-identical signatures merge under a loose
// threshold and split under a strict one.
func TestDetectThreshold(t *testing.T) {
	a := synthInterval(0, 1000, 3)
	b := synthInterval(1, 1000, 3)
	b.Signature[4] = 10 // ~9% of mass elsewhere: L1 distance ~0.18
	ivs := []platform.Interval{a, b}
	if tr := phase.Detect(ivs, 1000, phase.Options{Threshold: 0.5}); tr.Phases != 1 {
		t.Errorf("loose threshold split the phase: %d", tr.Phases)
	}
	if tr := phase.Detect(ivs, 1000, phase.Options{Threshold: 0.05}); tr.Phases != 2 {
		t.Errorf("strict threshold merged distinct intervals: %d", tr.Phases)
	}
}

// TestProfilesAggregate: per-phase sums over a second run's intervals
// line up with the assignment.
func TestProfilesAggregate(t *testing.T) {
	ivs := []platform.Interval{
		synthInterval(0, 1500, 3),
		synthInterval(1, 4000, 40),
		synthInterval(2, 1500, 3),
	}
	tr := phase.Detect(ivs, 1000, phase.Options{})
	// A "different configuration": same partition, different cycles.
	other := []platform.Interval{
		synthInterval(0, 1000, 3),
		synthInterval(1, 9000, 40),
		synthInterval(2, 1200, 3),
	}
	profs := tr.Profiles(other)
	if len(profs) != 2 {
		t.Fatalf("got %d profiles", len(profs))
	}
	if profs[0].Cycles != 2200 || profs[0].Intervals != 2 || profs[0].Instructions != 2000 {
		t.Errorf("phase 0 profile: %+v", profs[0])
	}
	if profs[1].Cycles != 9000 || profs[1].Intervals != 1 {
		t.Errorf("phase 1 profile: %+v", profs[1])
	}
	if profs[0].Stats.Cycles != 2200 {
		t.Errorf("aggregated stats cycles %d", profs[0].Stats.Cycles)
	}
}

// detectBenchmark profiles a real benchmark run and detects phases.
func detectBenchmark(t *testing.T, app string, interval uint64) (*phase.Trace, *platform.RunReport) {
	t.Helper()
	b, ok := progs.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	prog, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := platform.RunWith(prog, config.Default(), platform.Options{IntervalInstructions: interval})
	if err != nil {
		t.Fatal(err)
	}
	return phase.Detect(rep.Intervals, interval, phase.Options{}), rep
}

// TestTraceDeterministic is the phase-determinism gate: the same program
// at the same interval length yields a byte-identical Trace across
// repeated, concurrent detections (run under -race in CI).
func TestTraceDeterministic(t *testing.T) {
	for _, app := range progs.Names() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			tr0, _ := detectBenchmark(t, app, 10_000)
			want, err := json.Marshal(tr0)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tr, _ := detectBenchmark(t, app, 10_000)
					got, err := json.Marshal(tr)
					if err != nil {
						t.Error(err)
						return
					}
					if string(got) != string(want) {
						t.Errorf("trace not reproducible for %s", app)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestTraceCoversRun: every interval is assigned, segments tile the run,
// and per-phase cycles sum to the whole run.
func TestTraceCoversRun(t *testing.T) {
	tr, rep := detectBenchmark(t, "blastn", 5_000)
	if len(tr.Assignments) != len(rep.Intervals) {
		t.Fatalf("assignments %d != intervals %d", len(tr.Assignments), len(rep.Intervals))
	}
	next := 0
	for _, seg := range tr.Segments {
		if seg.Start != next {
			t.Fatalf("segment gap at %d: %+v", next, seg)
		}
		next = seg.End + 1
	}
	if next != len(rep.Intervals) {
		t.Fatalf("segments end at %d, want %d", next, len(rep.Intervals))
	}
	var total uint64
	for _, p := range tr.Profiles(rep.Intervals) {
		total += p.Cycles
	}
	if total != rep.Cycles() {
		t.Errorf("per-phase cycles %d != run cycles %d", total, rep.Cycles())
	}
}
