// Package phase detects execution phases from interval profiles: the
// related work's observation that "different phases of an application
// perform better on different architectures" applied to this
// reproduction's own measurement stack.
//
// The input is the platform's interval profile (platform.Interval): the
// run split at exact instruction-count boundaries, each interval
// carrying a block-signature vector — a coarse basic-block vector (BBV)
// counting taken-CTI targets per address bucket, in the SimPoint
// tradition. Detection normalizes each signature and clusters the
// intervals with a deterministic leader algorithm: the first interval
// founds phase 0; every subsequent interval joins the nearest existing
// phase whose representative (its founding interval's signature) lies
// within a fixed L1 threshold, or founds the next phase. Phase IDs are
// therefore stable first-appearance ranks, the whole procedure is
// byte-reproducible (no randomness, no data-dependent iteration order),
// and the same program profiled at the same interval length always
// yields the same Trace — the property the golden tests and the
// measurement cache both rest on.
//
// Because interval boundaries are instruction counts and the instruction
// stream is configuration-independent, a Trace detected on the base
// configuration indexes the intervals of *any* configuration's run of
// the same program: per-phase costs of a candidate configuration are
// read off by summing that run's interval deltas over the trace's
// assignment (Profiles), which is what lets one interval-profiled run
// per configuration serve every phase's cost model.
package phase

import (
	"liquidarch/internal/cache"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
)

// DefaultThreshold is the leader-clustering distance bound: intervals
// whose normalized signatures differ by less than this L1 distance
// (range 0..2) share a phase. 0.5 separates distinct loop nests while
// absorbing the small per-interval jitter of data-dependent branches.
const DefaultThreshold = 0.5

// Options tunes detection.
type Options struct {
	// Threshold overrides DefaultThreshold when > 0.
	Threshold float64
}

// Segment is a maximal run of consecutive intervals assigned to one
// phase.
type Segment struct {
	// Phase is the phase ID.
	Phase int `json:"phase"`
	// Start and End are the first and last interval indices, inclusive.
	Start int `json:"start"`
	End   int `json:"end"`
	// Instructions and Cycles aggregate the segment's intervals (cycles
	// on the profiled configuration).
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
}

// Trace is the detected phase structure of one program at one interval
// length.
type Trace struct {
	// IntervalInstructions is the profiling interval length the trace
	// was detected at (and must be re-measured at).
	IntervalInstructions uint64 `json:"interval_instructions"`
	// Threshold is the clustering distance bound used.
	Threshold float64 `json:"threshold"`
	// Phases is the number of distinct phases (IDs 0..Phases-1).
	Phases int `json:"phases"`
	// Assignments maps each interval index to its phase ID.
	Assignments []int `json:"assignments"`
	// Segments is the run-length encoding of Assignments, in order.
	Segments []Segment `json:"segments"`
	// Representatives holds, per phase, the raw block-signature vector
	// of the phase's medoid interval — the reference an online
	// classifier (NewClassifier) compares live signatures against. Raw
	// counts, not normalized: they serialize exactly, so a trace loaded
	// from a stored model artifact classifies identically to the freshly
	// detected one.
	Representatives [][]uint32 `json:"representatives,omitempty"`
}

// Detect clusters an interval profile into phases. The intervals must
// come from one run profiled at intervalLen.
//
// Detection is deterministic passes over deterministic input. The
// leader pass clusters intervals against founding signatures, which can
// oversplit two ways: a phase whose founding interval sits near the
// cluster boundary founds a near-duplicate of an existing phase, and
// the one interval straddling each true phase boundary (a mixture of
// its neighbours' signatures) founds a spurious singleton phase. The
// refinement therefore (1) computes each cluster's medoid — the member
// signature minimizing the total L1 distance to its cluster mates, ties
// broken by earliest interval — and merges clusters whose medoids lie
// within the same threshold, pairs in ascending phase-ID order, then
// (2) absorbs singleton clusters into the nearest supported phase by
// medoid distance (see mergePhases). Phase IDs are re-ranked by first
// appearance after each pass, preserving the stable-ID property, and
// every step is byte-reproducible.
func Detect(intervals []platform.Interval, intervalLen uint64, opts Options) *Trace {
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	t := &Trace{
		IntervalInstructions: intervalLen,
		Threshold:            threshold,
		Assignments:          make([]int, len(intervals)),
	}
	sigs := make([][]float64, len(intervals))
	var leaders [][]float64
	for i, iv := range intervals {
		sig := normalize(iv.Signature)
		sigs[i] = sig
		best, bestDist := -1, threshold
		for p, leader := range leaders {
			// Strict < keeps the earliest phase on ties — stable IDs.
			if d := l1(sig, leader); d < bestDist {
				best, bestDist = p, d
			}
		}
		if best < 0 {
			best = len(leaders)
			leaders = append(leaders, sig)
		}
		t.Assignments[i] = best
	}

	mergePhases(t.Assignments, sigs, len(leaders), threshold)
	t.Phases = 0
	for _, p := range t.Assignments {
		if p+1 > t.Phases {
			t.Phases = p + 1
		}
	}

	// Final-phase medoids become the trace's representatives: the
	// signature an online classifier matches live intervals against.
	// Computed over the final assignment (post merge and absorption), so
	// a stable phase's own intervals re-classify to it.
	if t.Phases > 0 {
		members := make([][]int, t.Phases)
		for i, p := range t.Assignments {
			members[p] = append(members[p], i)
		}
		t.Representatives = make([][]uint32, t.Phases)
		for p, m := range members {
			rep := intervals[medoid(m, sigs)].Signature
			t.Representatives[p] = append([]uint32(nil), rep...)
		}
	}

	for i, p := range t.Assignments {
		iv := intervals[i]
		if n := len(t.Segments); n > 0 && t.Segments[n-1].Phase == p {
			seg := &t.Segments[n-1]
			seg.End = i
			seg.Instructions += iv.Instructions
			seg.Cycles += iv.Stats.Cycles
			continue
		}
		t.Segments = append(t.Segments, Segment{
			Phase:        p,
			Start:        i,
			End:          i,
			Instructions: iv.Instructions,
			Cycles:       iv.Stats.Cycles,
		})
	}
	return t
}

// mergePhases is the deterministic medoid-merge refinement: clusters of
// the leader pass whose medoid signatures lie within threshold collapse
// into one phase. assignments is rewritten in place with phase IDs
// re-ranked by first appearance.
func mergePhases(assignments []int, sigs [][]float64, phases int, threshold float64) {
	if phases < 2 {
		return
	}

	// Medoid per cluster: the member minimizing the summed L1 distance
	// to its cluster mates; the earliest interval wins ties, so the
	// choice is independent of anything but the profile itself.
	members := make([][]int, phases)
	for i, p := range assignments {
		members[p] = append(members[p], i)
	}
	medoids := make([][]float64, phases)
	for p, m := range members {
		medoids[p] = sigs[medoid(m, sigs)]
	}

	// Union-find over the original medoids, pairs in ascending (i, j)
	// order; the lowest phase ID of a merged set is its root.
	parent := make([]int, phases)
	for p := range parent {
		parent[p] = p
	}
	var find func(int) int
	find = func(p int) int {
		if parent[p] != p {
			parent[p] = find(parent[p])
		}
		return parent[p]
	}
	for i := 0; i < phases; i++ {
		for j := i + 1; j < phases; j++ {
			if ri, rj := find(i), find(j); ri != rj && l1(medoids[i], medoids[j]) < threshold {
				if ri < rj {
					parent[rj] = ri
				} else {
					parent[ri] = rj
				}
			}
		}
	}

	// Re-rank the merged roots by first appearance in the run.
	relabel(assignments, find)

	// Boundary absorption: a cluster left with a single interval after
	// merging is usually the one interval straddling a true phase
	// boundary — a convex mixture of its neighbours' signatures, not a
	// phase of its own (at most one interval straddles each boundary, so
	// genuine phases at sane interval lengths have support). A mixture
	// m = αP + (1-α)Q sits within half the parents' distance of its
	// nearer parent, i.e. within 2·threshold even for maximally distant
	// parents under unit-L1 signatures — while a genuinely distinct
	// singleton phase sits farther. Fold each singleton within that
	// bound into the nearest supported phase by medoid distance, phases
	// in ascending ID order, ties to the lowest ID.
	merged := 0
	for _, p := range assignments {
		if p+1 > merged {
			merged = p + 1
		}
	}
	if merged < 2 {
		return
	}
	mMembers := make([][]int, merged)
	for i, p := range assignments {
		mMembers[p] = append(mMembers[p], i)
	}
	mMedoids := make([][]float64, merged)
	for p, m := range mMembers {
		mMedoids[p] = sigs[medoid(m, sigs)]
	}
	supported := func(p int) bool { return len(mMembers[p]) > 1 }
	anySupport := false
	for p := range mMembers {
		if supported(p) {
			anySupport = true
			break
		}
	}
	if !anySupport {
		return
	}
	target := make([]int, merged)
	for p := range target {
		target[p] = p
		if supported(p) {
			continue
		}
		best, bestDist := -1, 0.0
		for q := 0; q < merged; q++ {
			if !supported(q) {
				continue
			}
			if d := l1(mMedoids[p], mMedoids[q]); best < 0 || d < bestDist {
				best, bestDist = q, d
			}
		}
		if best >= 0 && bestDist < 2*threshold {
			target[p] = best
		}
	}
	relabel(assignments, func(p int) int { return target[p] })
}

// medoid returns the member index minimizing the summed L1 distance to
// its cluster mates; the earliest interval wins ties.
func medoid(members []int, sigs [][]float64) int {
	best, bestCost := members[0], -1.0
	for _, i := range members {
		cost := 0.0
		for _, j := range members {
			cost += l1(sigs[i], sigs[j])
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// relabel rewrites assignments through the phase map `to`, re-ranking
// the resulting IDs by first appearance in the run.
func relabel(assignments []int, to func(int) int) {
	rank := make(map[int]int)
	for i, p := range assignments {
		root := to(p)
		id, ok := rank[root]
		if !ok {
			id = len(rank)
			rank[root] = id
		}
		assignments[i] = id
	}
}

// normalize scales a signature to unit L1 mass. An all-zero signature
// (an interval with no taken CTIs) normalizes to the zero vector, which
// clusters with other CTI-free intervals at distance 0.
func normalize(sig []uint32) []float64 {
	out := make([]float64, len(sig))
	var sum float64
	for _, c := range sig {
		sum += float64(c)
	}
	if sum == 0 {
		return out
	}
	for i, c := range sig {
		out[i] = float64(c) / sum
	}
	return out
}

// l1 is the Manhattan distance between two equal-length vectors.
func l1(a, b []float64) float64 {
	var d float64
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// Profile aggregates one phase's cost on one configuration's run.
type Profile struct {
	// Phase is the phase ID.
	Phase int `json:"phase"`
	// Intervals counts the intervals assigned to the phase.
	Intervals int `json:"intervals"`
	// Instructions and Cycles are the phase totals on the profiled run.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// Stats, ICache and DCache are the aggregated profile deltas, the
	// inputs of the per-phase energy model.
	Stats  profiler.Stats `json:"-"`
	ICache cache.Stats    `json:"-"`
	DCache cache.Stats    `json:"-"`
}

// Profiles sums a run's intervals per phase under the trace's
// assignment. The run may be any configuration of the program the trace
// was detected on — interval boundaries are instruction counts, so the
// partition aligns across configurations. A run with fewer intervals
// than the trace (impossible for complete runs of the same program) is
// summed as far as it goes.
func (t *Trace) Profiles(intervals []platform.Interval) []Profile {
	out := make([]Profile, t.Phases)
	for p := range out {
		out[p].Phase = p
	}
	n := min(len(intervals), len(t.Assignments))
	for i := 0; i < n; i++ {
		agg := &out[t.Assignments[i]]
		iv := intervals[i]
		agg.Intervals++
		agg.Instructions += iv.Instructions
		agg.Cycles += iv.Stats.Cycles
		agg.Stats.Add(iv.Stats)
		agg.ICache.Add(iv.ICache)
		agg.DCache.Add(iv.DCache)
	}
	return out
}

// Switches counts the phase transitions between consecutive segments —
// the number of reconfigurations a per-phase schedule performs mid-run.
func (t *Trace) Switches() int {
	if len(t.Segments) == 0 {
		return 0
	}
	return len(t.Segments) - 1
}
