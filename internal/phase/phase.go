// Package phase detects execution phases from interval profiles: the
// related work's observation that "different phases of an application
// perform better on different architectures" applied to this
// reproduction's own measurement stack.
//
// The input is the platform's interval profile (platform.Interval): the
// run split at exact instruction-count boundaries, each interval
// carrying a block-signature vector — a coarse basic-block vector (BBV)
// counting taken-CTI targets per address bucket, in the SimPoint
// tradition. Detection normalizes each signature and clusters the
// intervals with a deterministic leader algorithm: the first interval
// founds phase 0; every subsequent interval joins the nearest existing
// phase whose representative (its founding interval's signature) lies
// within a fixed L1 threshold, or founds the next phase. Phase IDs are
// therefore stable first-appearance ranks, the whole procedure is
// byte-reproducible (no randomness, no data-dependent iteration order),
// and the same program profiled at the same interval length always
// yields the same Trace — the property the golden tests and the
// measurement cache both rest on.
//
// Because interval boundaries are instruction counts and the instruction
// stream is configuration-independent, a Trace detected on the base
// configuration indexes the intervals of *any* configuration's run of
// the same program: per-phase costs of a candidate configuration are
// read off by summing that run's interval deltas over the trace's
// assignment (Profiles), which is what lets one interval-profiled run
// per configuration serve every phase's cost model.
package phase

import (
	"liquidarch/internal/cache"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
)

// DefaultThreshold is the leader-clustering distance bound: intervals
// whose normalized signatures differ by less than this L1 distance
// (range 0..2) share a phase. 0.5 separates distinct loop nests while
// absorbing the small per-interval jitter of data-dependent branches.
const DefaultThreshold = 0.5

// Options tunes detection.
type Options struct {
	// Threshold overrides DefaultThreshold when > 0.
	Threshold float64
}

// Segment is a maximal run of consecutive intervals assigned to one
// phase.
type Segment struct {
	// Phase is the phase ID.
	Phase int `json:"phase"`
	// Start and End are the first and last interval indices, inclusive.
	Start int `json:"start"`
	End   int `json:"end"`
	// Instructions and Cycles aggregate the segment's intervals (cycles
	// on the profiled configuration).
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
}

// Trace is the detected phase structure of one program at one interval
// length.
type Trace struct {
	// IntervalInstructions is the profiling interval length the trace
	// was detected at (and must be re-measured at).
	IntervalInstructions uint64 `json:"interval_instructions"`
	// Threshold is the clustering distance bound used.
	Threshold float64 `json:"threshold"`
	// Phases is the number of distinct phases (IDs 0..Phases-1).
	Phases int `json:"phases"`
	// Assignments maps each interval index to its phase ID.
	Assignments []int `json:"assignments"`
	// Segments is the run-length encoding of Assignments, in order.
	Segments []Segment `json:"segments"`
}

// Detect clusters an interval profile into phases. The intervals must
// come from one run profiled at intervalLen.
func Detect(intervals []platform.Interval, intervalLen uint64, opts Options) *Trace {
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	t := &Trace{
		IntervalInstructions: intervalLen,
		Threshold:            threshold,
		Assignments:          make([]int, len(intervals)),
	}
	var leaders [][]float64
	for i, iv := range intervals {
		sig := normalize(iv.Signature)
		best, bestDist := -1, threshold
		for p, leader := range leaders {
			// Strict < keeps the earliest phase on ties — stable IDs.
			if d := l1(sig, leader); d < bestDist {
				best, bestDist = p, d
			}
		}
		if best < 0 {
			best = len(leaders)
			leaders = append(leaders, sig)
		}
		t.Assignments[i] = best
	}
	t.Phases = len(leaders)

	for i, p := range t.Assignments {
		iv := intervals[i]
		if n := len(t.Segments); n > 0 && t.Segments[n-1].Phase == p {
			seg := &t.Segments[n-1]
			seg.End = i
			seg.Instructions += iv.Instructions
			seg.Cycles += iv.Stats.Cycles
			continue
		}
		t.Segments = append(t.Segments, Segment{
			Phase:        p,
			Start:        i,
			End:          i,
			Instructions: iv.Instructions,
			Cycles:       iv.Stats.Cycles,
		})
	}
	return t
}

// normalize scales a signature to unit L1 mass. An all-zero signature
// (an interval with no taken CTIs) normalizes to the zero vector, which
// clusters with other CTI-free intervals at distance 0.
func normalize(sig []uint32) []float64 {
	out := make([]float64, len(sig))
	var sum float64
	for _, c := range sig {
		sum += float64(c)
	}
	if sum == 0 {
		return out
	}
	for i, c := range sig {
		out[i] = float64(c) / sum
	}
	return out
}

// l1 is the Manhattan distance between two equal-length vectors.
func l1(a, b []float64) float64 {
	var d float64
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// Profile aggregates one phase's cost on one configuration's run.
type Profile struct {
	// Phase is the phase ID.
	Phase int `json:"phase"`
	// Intervals counts the intervals assigned to the phase.
	Intervals int `json:"intervals"`
	// Instructions and Cycles are the phase totals on the profiled run.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// Stats, ICache and DCache are the aggregated profile deltas, the
	// inputs of the per-phase energy model.
	Stats  profiler.Stats `json:"-"`
	ICache cache.Stats    `json:"-"`
	DCache cache.Stats    `json:"-"`
}

// Profiles sums a run's intervals per phase under the trace's
// assignment. The run may be any configuration of the program the trace
// was detected on — interval boundaries are instruction counts, so the
// partition aligns across configurations. A run with fewer intervals
// than the trace (impossible for complete runs of the same program) is
// summed as far as it goes.
func (t *Trace) Profiles(intervals []platform.Interval) []Profile {
	out := make([]Profile, t.Phases)
	for p := range out {
		out[p].Phase = p
	}
	n := min(len(intervals), len(t.Assignments))
	for i := 0; i < n; i++ {
		agg := &out[t.Assignments[i]]
		iv := intervals[i]
		agg.Intervals++
		agg.Instructions += iv.Instructions
		agg.Cycles += iv.Stats.Cycles
		agg.Stats.Add(iv.Stats)
		agg.ICache.Add(iv.ICache)
		agg.DCache.Add(iv.DCache)
	}
	return out
}

// Switches counts the phase transitions between consecutive segments —
// the number of reconfigurations a per-phase schedule performs mid-run.
func (t *Trace) Switches() int {
	if len(t.Segments) == 0 {
		return 0
	}
	return len(t.Segments) - 1
}
