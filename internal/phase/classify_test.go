package phase_test

import (
	"encoding/json"
	"testing"

	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
)

// TestClassifierMatchesDetection: every interval of the detected trace
// must classify back to its own assigned phase — the stable-phase
// property the online-vs-schedule differential rests on.
func TestClassifierMatchesDetection(t *testing.T) {
	ivs := []platform.Interval{
		synthInterval(0, 100, 1), synthInterval(1, 100, 1), synthInterval(2, 100, 1),
		synthInterval(3, 200, 40), synthInterval(4, 200, 40),
		synthInterval(5, 100, 1), synthInterval(6, 100, 1),
		synthInterval(7, 200, 40), synthInterval(8, 200, 40),
	}
	trace := phase.Detect(ivs, 1000, phase.Options{})
	if trace.Phases < 2 {
		t.Fatalf("expected at least 2 phases, got %d", trace.Phases)
	}
	if len(trace.Representatives) != trace.Phases {
		t.Fatalf("trace carries %d representatives for %d phases", len(trace.Representatives), trace.Phases)
	}
	cls, err := trace.NewClassifier()
	if err != nil {
		t.Fatal(err)
	}
	for i, iv := range ivs {
		if got := cls.Classify(iv.Signature); got != trace.Assignments[i] {
			t.Errorf("interval %d classified to %d, detection assigned %d", i, got, trace.Assignments[i])
		}
	}
}

// TestClassifierUnknown: a signature far from every representative
// reports unclassified (-1) rather than forcing the nearest phase.
func TestClassifierUnknown(t *testing.T) {
	ivs := []platform.Interval{
		synthInterval(0, 100, 1), synthInterval(1, 100, 1),
	}
	trace := phase.Detect(ivs, 1000, phase.Options{})
	cls, err := trace.NewClassifier()
	if err != nil {
		t.Fatal(err)
	}
	novel := synthInterval(0, 100, 60).Signature
	if got := cls.Classify(novel); got != -1 {
		t.Errorf("novel signature classified to %d, want -1", got)
	}
}

// TestClassifierRoundTrip: a trace serialized and reloaded (the stored
// model artifact path) classifies identically — representatives are raw
// counts, so the JSON round trip is exact.
func TestClassifierRoundTrip(t *testing.T) {
	ivs := []platform.Interval{
		synthInterval(0, 100, 1), synthInterval(1, 100, 1),
		synthInterval(2, 200, 40), synthInterval(3, 200, 40),
	}
	trace := phase.Detect(ivs, 1000, phase.Options{})
	data, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	var loaded phase.Trace
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	orig, err := trace.NewClassifier()
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := loaded.NewClassifier()
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range ivs {
		if a, b := orig.Classify(iv.Signature), reloaded.Classify(iv.Signature); a != b {
			t.Errorf("round-tripped classifier diverged: %d vs %d", a, b)
		}
	}
}

// TestClassifierRequiresRepresentatives: traces from before
// representatives existed (older artifacts) fail construction cleanly.
func TestClassifierRequiresRepresentatives(t *testing.T) {
	trace := &phase.Trace{Phases: 2, Threshold: 0.5}
	if _, err := trace.NewClassifier(); err == nil {
		t.Fatal("NewClassifier accepted a trace without representatives")
	}
	if _, err := (&phase.Trace{}).NewClassifier(); err == nil {
		t.Fatal("NewClassifier accepted an empty trace")
	}
}
