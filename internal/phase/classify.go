package phase

import "fmt"

// Online classification: the closed-loop counterpart of Detect. A
// Classifier holds a trace's per-phase representative signatures in
// normalized form and assigns live interval signatures to phases with
// the same L1-distance rule detection used — so on a stable phase, an
// online run classifies each interval to the phase the offline trace
// assigned it, and the adaptive configuration sequence reproduces the
// precomputed schedule (the differential property the core package's
// tests lock in).

// Classifier assigns live block-signature vectors to a trace's phases.
// Build one with Trace.NewClassifier; a Classifier is immutable and
// safe for concurrent use.
type Classifier struct {
	threshold float64
	reps      [][]float64
}

// NewClassifier builds a classifier over the trace's representative
// signatures. It fails on traces detected before representatives were
// recorded (older stored artifacts) and on empty traces.
func (t *Trace) NewClassifier() (*Classifier, error) {
	if t.Phases == 0 {
		return nil, fmt.Errorf("phase: trace has no phases to classify against")
	}
	if len(t.Representatives) != t.Phases {
		return nil, fmt.Errorf("phase: trace carries %d representatives for %d phases",
			len(t.Representatives), t.Phases)
	}
	c := &Classifier{threshold: t.Threshold, reps: make([][]float64, t.Phases)}
	for p, rep := range t.Representatives {
		c.reps[p] = normalize(rep)
	}
	return c, nil
}

// Classify returns the phase whose representative lies nearest to sig
// in normalized L1 distance, or -1 when no representative lies within
// twice the detection threshold — the same acceptance bound Detect's
// boundary absorption uses, so the one mixed interval straddling a
// phase transition still classifies to a neighbouring phase while a
// genuinely novel signature (behaviour the trace never saw) reports
// unclassified and lets the caller keep the current configuration.
// Ties go to the lowest phase ID, mirroring detection's stable-ID rule.
func (c *Classifier) Classify(sig []uint32) int {
	s := normalize(sig)
	best, bestDist := -1, 0.0
	for p, rep := range c.reps {
		if len(rep) != len(s) {
			continue // foreign bucket count cannot be compared
		}
		if d := l1(s, rep); best < 0 || d < bestDist {
			best, bestDist = p, d
		}
	}
	if best >= 0 && bestDist < 2*c.threshold {
		return best
	}
	return -1
}

// Threshold returns the detection threshold the classifier inherited.
func (c *Classifier) Threshold() float64 { return c.threshold }
