// Package fpga models the synthesis of the soft-core processor onto the
// paper's Xilinx Virtex XCV2000E: given a microarchitecture configuration
// it reports the two resources the paper's cost function uses — lookup
// tables (LUTs) and BlockRAM (BRAM).
//
// The BRAM model is structural: the same tag/data/register-file arithmetic
// the real LEON BRAM allocator performs (4 kbit blocks, per-way data RAM,
// tag RAM sized by entry count x tag width with valid and LRU bits, a
// dual-copy register file). It reproduces the BRAM column of the paper's
// Figure 2 and the actual-synthesis BRAM of Figures 5 and 7 exactly (see
// the package tests).
//
// The LUT model is base-plus-deltas, calibrated against the LUT
// percentages the paper publishes (Figures 2, 6, 7). LUT variation is
// small (the paper's tables swing between 36% and 40%) and the device LUT
// constraint never binds, so additive calibration suffices; the paper's
// own combined-synthesis LUT numbers carry ±1% reporting noise, which an
// analytic model intentionally does not reproduce (see EXPERIMENTS.md).
package fpga

import (
	"fmt"
	"time"

	"liquidarch/internal/config"
)

// XCV2000E device capacity (paper Section 2.4).
const (
	DeviceLUTs = 38400
	DeviceBRAM = 160
	// BRAMBlockBits is the size of one BlockRAM on the Virtex-E.
	BRAMBlockBits = 4096
)

// SynthesisDuration is the wall-clock cost of one real build the paper
// reports ("on the order of 30 minutes"). The model computes resources
// analytically, but tools report this figure when pricing exhaustive
// exploration (the paper's 56-day estimate for 2,688 dcache builds).
const SynthesisDuration = 30 * time.Minute

// Resources is the outcome of synthesizing one configuration.
type Resources struct {
	LUTs int
	BRAM int
}

// LUTPercent returns LUT utilisation as the truncated integer percentage
// the paper's tables print.
func (r Resources) LUTPercent() int { return r.LUTs * 100 / DeviceLUTs }

// BRAMPercent returns BRAM utilisation as a truncated integer percentage.
func (r Resources) BRAMPercent() int { return r.BRAM * 100 / DeviceBRAM }

// FitsDevice reports whether the configuration fits the XCV2000E.
func (r Resources) FitsDevice() bool {
	return r.LUTs <= DeviceLUTs && r.BRAM <= DeviceBRAM
}

func (r Resources) String() string {
	return fmt.Sprintf("%d LUTs (%d%%), %d BRAM (%d%%)", r.LUTs, r.LUTPercent(), r.BRAM, r.BRAMPercent())
}

// miscBRAM is the BRAM used by everything outside the caches and the
// register file (DSU trace buffer, peripherals, scratch), calibrated so the
// default configuration lands on the paper's 82 blocks (51%).
const miscBRAM = 60

// baseLUTs is the default configuration's LUT count, as the paper reports
// it: 14,992 (39%).
const baseLUTs = 14992

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func log2int(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// lruBits returns the per-entry replacement-state bits of the tag RAM.
func lruBits(sets int, policy config.ReplacementPolicy) int {
	if sets == 1 {
		return 0
	}
	switch policy {
	case config.LRU, config.LRR:
		if sets == 2 {
			return 1
		}
		return 2
	default: // Random keeps no per-entry state, but LEON reserves the field
		if sets == 2 {
			return 1
		}
		return 2
	}
}

// CacheBRAM returns the BlockRAM consumed by one cache: per-way data RAM
// plus per-way tag RAM (tag bits = 32 - log2(set bytes), one valid bit per
// line word, plus replacement bits).
func CacheBRAM(c config.CacheConfig) int {
	setBytes := c.SetSizeKB * 1024
	dataBlocksPerWay := ceilDiv(setBytes*8, BRAMBlockBits)
	entries := setBytes / c.LineBytes()
	tagBits := (32 - log2int(setBytes)) + c.LineWords + lruBits(c.Sets, c.Replacement)
	tagBlocksPerWay := ceilDiv(entries*tagBits, BRAMBlockBits)
	return c.Sets * (dataBlocksPerWay + tagBlocksPerWay)
}

// RegfileBRAM returns the register-file BlockRAM: windows*16+8 registers of
// 32 bits, duplicated for the second read port.
func RegfileBRAM(windows int) int {
	regs := windows*16 + 8
	return 2 * ceilDiv(regs*32, BRAMBlockBits)
}

// LUT delta tables, relative to the default configuration (see package
// comment). Values are absolute LUTs.
var (
	dcacheSetKBLUTs = map[int]int{1: -20, 2: -20, 4: 0, 8: 10, 16: -20, 32: -30, 64: -30}
	icacheSetKBLUTs = map[int]int{1: -12, 2: -10, 4: 0, 8: 15, 16: -12, 32: -14, 64: -14}

	multiplierLUTs = map[config.MultiplierOption]int{
		config.MulNone:      -420,
		config.MulIterative: -250,
		config.Mul16x16:     0,
		config.Mul16x16Pipe: 60,
		config.Mul32x8:      -100,
		config.Mul32x16:     150,
		config.Mul32x32:     380,
	}
)

const (
	wayLUTs        = 40 // per extra way, each cache
	icacheLine4LUT = -30
	dcacheLine4LUT = -10
	lrrLUTs        = 30
	lruLUTs        = 60
	fastReadLUTs   = 80
	fastWriteLUTs  = 60
	fastJumpLUTs   = 40 // cost when enabled (default)
	iccHoldLUTs    = 10
	fastDecodeLUTs = 10
	loadDelay2LUTs = -12
	dividerLUTs    = 420 // radix-2 divider cost (default)
	windowLUTs     = 6   // per window beyond 8
	noInferLUTs    = 30  // explicit macros instead of inference
)

func cacheLUTDelta(c config.CacheConfig, isData bool) int {
	d := wayLUTs * (c.Sets - 1)
	if isData {
		d += dcacheSetKBLUTs[c.SetSizeKB]
		if c.LineWords == 4 {
			d += dcacheLine4LUT
		}
		if c.FastRead {
			d += fastReadLUTs
		}
		if c.FastWrite {
			d += fastWriteLUTs
		}
	} else {
		d += icacheSetKBLUTs[c.SetSizeKB]
		if c.LineWords == 4 {
			d += icacheLine4LUT
		}
	}
	switch c.Replacement {
	case config.LRR:
		d += lrrLUTs
	case config.LRU:
		d += lruLUTs
	}
	return d
}

// Synthesize computes the resource utilisation of a configuration. The
// configuration must validate; resources are reported even when they
// exceed the device (callers check FitsDevice, as the paper does when it
// excludes 64 KB caches).
func Synthesize(cfg config.Config) (Resources, error) {
	if err := cfg.Validate(); err != nil {
		return Resources{}, err
	}

	bram := miscBRAM +
		CacheBRAM(cfg.ICache) +
		CacheBRAM(cfg.DCache) +
		RegfileBRAM(cfg.IU.RegWindows)

	luts := baseLUTs
	luts += cacheLUTDelta(cfg.ICache, false)
	luts += cacheLUTDelta(cfg.DCache, true)
	if !cfg.IU.FastJump {
		luts -= fastJumpLUTs
	}
	if !cfg.IU.ICCHold {
		luts -= iccHoldLUTs
	}
	if !cfg.IU.FastDecode {
		luts -= fastDecodeLUTs
	}
	if cfg.IU.LoadDelay == 2 {
		luts += loadDelay2LUTs
	}
	if cfg.IU.Divider == config.DivNone {
		luts -= dividerLUTs
	}
	luts += multiplierLUTs[cfg.IU.Multiplier]
	luts += windowLUTs * (cfg.IU.RegWindows - 8)
	if !cfg.Synth.InferMultDiv {
		luts += noInferLUTs
	}

	return Resources{LUTs: luts, BRAM: bram}, nil
}

// MustSynthesize panics on an invalid configuration; for tests and tables
// over known-valid configurations.
func MustSynthesize(cfg config.Config) Resources {
	r, err := Synthesize(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Feasible reports whether the configuration both validates and fits the
// device.
func Feasible(cfg config.Config) bool {
	r, err := Synthesize(cfg)
	return err == nil && r.FitsDevice()
}

// ExhaustiveBuildTime prices building n configurations for real, the way
// the paper does when it argues exhaustive search is infeasible (2,688
// dcache configurations x 30 minutes = 56 days).
func ExhaustiveBuildTime(n int) time.Duration {
	return time.Duration(n) * SynthesisDuration
}
