package fpga

import (
	"testing"

	"liquidarch/internal/config"
)

func TestDefaultConfigurationMatchesPaper(t *testing.T) {
	// Paper Section 2.4: the default LEON uses 14,992 LUTs (39%) and 82
	// BRAM (51%).
	r := MustSynthesize(config.Default())
	if r.LUTs != 14992 {
		t.Errorf("default LUTs = %d, want 14992", r.LUTs)
	}
	if r.BRAM != 82 {
		t.Errorf("default BRAM = %d, want 82", r.BRAM)
	}
	if r.LUTPercent() != 39 {
		t.Errorf("default LUT%% = %d, want 39", r.LUTPercent())
	}
	if r.BRAMPercent() != 51 {
		t.Errorf("default BRAM%% = %d, want 51", r.BRAMPercent())
	}
}

// TestFigure2BRAMColumnExact pins the structural BRAM model to every row
// of the paper's Figure 2 (dcache sets x set size sweep for BLASTN, with
// everything else at defaults).
func TestFigure2BRAMColumnExact(t *testing.T) {
	rows := []struct {
		sets, setKB int
		wantBRAMPct int
	}{
		{1, 1, 47}, {1, 2, 48}, {1, 4, 51}, {1, 8, 56}, {1, 16, 68}, {1, 32, 90},
		{2, 1, 49}, {2, 2, 51}, {2, 4, 56}, {2, 8, 68}, {2, 16, 90},
		{3, 1, 51}, {3, 2, 55}, {3, 4, 62}, {3, 8, 79},
		{4, 1, 53}, {4, 2, 58}, {4, 4, 68}, {4, 8, 90},
	}
	for _, row := range rows {
		cfg := config.Default()
		cfg.DCache.Sets = row.sets
		cfg.DCache.SetSizeKB = row.setKB
		r := MustSynthesize(cfg)
		if got := r.BRAMPercent(); got != row.wantBRAMPct {
			t.Errorf("dcache %dx%dKB: BRAM%% = %d, paper says %d (blocks=%d)",
				row.sets, row.setKB, got, row.wantBRAMPct, r.BRAM)
		}
	}
}

// TestFigure2LUTColumnExact pins the LUT model to Figure 2's LUT column.
func TestFigure2LUTColumnExact(t *testing.T) {
	rows := []struct {
		sets, setKB int
		wantLUTPct  int
	}{
		{1, 1, 38}, {1, 2, 38}, {1, 4, 39}, {1, 8, 39}, {1, 16, 38}, {1, 32, 38},
		{2, 1, 39}, {2, 2, 39}, {2, 4, 39}, {2, 8, 39}, {2, 16, 39},
		{3, 1, 39}, {3, 2, 39}, {3, 4, 39}, {3, 8, 39},
		{4, 1, 39}, {4, 2, 39}, {4, 4, 39}, {4, 8, 39},
	}
	for _, row := range rows {
		cfg := config.Default()
		cfg.DCache.Sets = row.sets
		cfg.DCache.SetSizeKB = row.setKB
		r := MustSynthesize(cfg)
		if got := r.LUTPercent(); got != row.wantLUTPct {
			t.Errorf("dcache %dx%dKB: LUT%% = %d, paper says %d (luts=%d)",
				row.sets, row.setKB, got, row.wantLUTPct, r.LUTs)
		}
	}
}

// TestFigure6PerturbationCosts pins the single-parameter resource costs the
// paper lists for BLASTN's perturbations (Figure 6: LUT%, BRAM%).
func TestFigure6PerturbationCosts(t *testing.T) {
	rows := []struct {
		change            string
		wantLUT, wantBRAM int
	}{
		{"icachsetsz=2", 39, 48},
		{"icachlinesz=4", 38, 51},
		{"dcachsetsz=32", 38, 90},
		{"dcachlinesz=4", 39, 51},
		{"fastjump=false", 38, 51},
		{"icchold=false", 39, 51},
		{"divider=none", 37, 51},
		{"multiplier=m32x32", 40, 51},
	}
	for _, row := range rows {
		cfg := config.Default()
		if err := cfg.Set(row.change); err != nil {
			t.Fatalf("%s: %v", row.change, err)
		}
		r := MustSynthesize(cfg)
		if got := r.LUTPercent(); got != row.wantLUT {
			t.Errorf("%s: LUT%% = %d, paper says %d", row.change, got, row.wantLUT)
		}
		if got := r.BRAMPercent(); got != row.wantBRAM {
			t.Errorf("%s: BRAM%% = %d, paper says %d", row.change, got, row.wantBRAM)
		}
	}
}

// TestFigure5ActualSynthesisBRAM pins the combined-configuration BRAM of
// the paper's Figure 5 "actual synthesis" rows.
func TestFigure5ActualSynthesisBRAM(t *testing.T) {
	apply := func(changes ...string) config.Config {
		cfg := config.Default()
		for _, ch := range changes {
			if err := cfg.Set(ch); err != nil {
				t.Fatalf("%s: %v", ch, err)
			}
		}
		return cfg
	}
	// Note: the paper's BLAST column pairs LRU with a 1-way dcache, which
	// violates its own LRU constraint; we synthesize the row as printed
	// (the BRAM model charges the same replacement bits either way).
	blast := apply("icachsetsz=2", "icachlinesz=4", "dcachsetsz=32", "dcachlinesz=4",
		"fastjump=false", "icchold=false", "divider=none", "multiplier=m32x32")
	drr := apply("icachsetsz=2", "icachlinesz=4", "dcachsets=2", "dcachsetsz=16", "dcachlinesz=4",
		"dcachreplace=lrr", "fastjump=false", "icchold=false", "divider=none", "multiplier=m32x32")
	frag := apply("icachlinesz=4", "dcachsets=2", "dcachsetsz=16", "dcachlinesz=4",
		"dcachreplace=lru", "fastjump=false", "icchold=false", "divider=none", "multiplier=m32x32")
	arith := apply("icachlinesz=4", "dcachsetsz=1",
		"fastjump=false", "icchold=false", "multiplier=m32x32")

	cases := []struct {
		name     string
		cfg      config.Config
		wantBRAM int
	}{
		{"BLASTN", blast, 90},
		{"DRR", drr, 90},
		{"FRAG", frag, 93},
		{"Arith", arith, 48},
	}
	for _, c := range cases {
		r := MustSynthesize(c.cfg)
		if got := r.BRAMPercent(); got != c.wantBRAM {
			t.Errorf("%s: BRAM%% = %d, paper actual synthesis says %d (blocks=%d)",
				c.name, got, c.wantBRAM, r.BRAM)
		}
	}
}

// TestFigure7ActualSynthesisBRAM pins the resource-optimized BRAM values.
func TestFigure7ActualSynthesisBRAM(t *testing.T) {
	apply := func(changes ...string) config.Config {
		cfg := config.Default()
		for _, ch := range changes {
			if err := cfg.Set(ch); err != nil {
				t.Fatalf("%s: %v", ch, err)
			}
		}
		return cfg
	}
	blast := apply("icachsetsz=2", "icachlinesz=4", "dcachsetsz=2", "dcachlinesz=4",
		"fastjump=false", "icchold=false", "divider=none", "registers=28", "multiplier=iter")
	frag := apply("icachlinesz=4", "dcachsetsz=1", "dcachlinesz=4",
		"fastjump=false", "icchold=false", "divider=none", "multiplier=iter")
	arith := apply("icachsetsz=2", "icachlinesz=4", "dcachsetsz=2",
		"fastjump=false", "icchold=false", "registers=30", "multiplier=iter")

	cases := []struct {
		name     string
		cfg      config.Config
		wantBRAM int
	}{
		{"BLASTN", blast, 48},
		{"FRAG", frag, 48},
		{"Arith", arith, 48},
	}
	for _, c := range cases {
		r := MustSynthesize(c.cfg)
		if got := r.BRAMPercent(); got != c.wantBRAM {
			t.Errorf("%s: BRAM%% = %d, paper says %d (blocks=%d)", c.name, got, c.wantBRAM, r.BRAM)
		}
	}
}

// Test64KBCacheExceedsDevice reproduces the paper's Figure 1 note: a 64 KB
// cache needs 213 blocks, 33% more than the device's 160.
func Test64KBCacheExceedsDevice(t *testing.T) {
	cfg := config.Default()
	cfg.DCache.SetSizeKB = 64
	r := MustSynthesize(cfg)
	if r.FitsDevice() {
		t.Errorf("64KB dcache should not fit: %v", r)
	}
	if r.BRAM < 205 || r.BRAM > 220 {
		t.Errorf("64KB dcache BRAM = %d blocks, paper says ~213", r.BRAM)
	}
}

func TestRegfileScalesWithWindows(t *testing.T) {
	if RegfileBRAM(8) != 4 {
		t.Errorf("8-window regfile = %d blocks, want 4", RegfileBRAM(8))
	}
	if RegfileBRAM(32) <= RegfileBRAM(8) {
		t.Error("more windows must cost more BRAM")
	}
}

func TestBRAMMonotoneInCacheSize(t *testing.T) {
	prev := -1
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := config.Default()
		cfg.DCache.SetSizeKB = kb
		r := MustSynthesize(cfg)
		if r.BRAM <= prev {
			t.Errorf("BRAM not monotone at %dKB: %d <= %d", kb, r.BRAM, prev)
		}
		prev = r.BRAM
	}
}

func TestSynthesizeRejectsInvalid(t *testing.T) {
	cfg := config.Default()
	cfg.DCache.Sets = 9
	if _, err := Synthesize(cfg); err == nil {
		t.Error("invalid configuration should not synthesize")
	}
	if Feasible(cfg) {
		t.Error("invalid configuration should not be feasible")
	}
}

func TestExhaustiveBuildTimeMatchesPaperEstimate(t *testing.T) {
	// Paper Section 5: 2,688 dcache configurations "would take at least
	// 56 days to generate".
	d := ExhaustiveBuildTime(2688)
	days := d.Hours() / 24
	if days < 55 || days > 57 {
		t.Errorf("2688 builds = %.1f days, paper says 56", days)
	}
}

func TestFeasibleDefault(t *testing.T) {
	if !Feasible(config.Default()) {
		t.Error("default configuration must fit the device")
	}
}
