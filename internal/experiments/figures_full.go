package experiments

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
)

// fullApps is the paper's benchmark order.
var fullApps = []string{"blastn", "drr", "frag", "arith"}

var appLabels = map[string]string{
	"blastn": "BLAST", "drr": "DRR", "frag": "FRAG", "arith": "Arith",
}

// paramDisplay lists the Figure 5/7 parameter rows in paper order with a
// value extractor.
var paramDisplay = []struct {
	name  string
	value func(config.Config) string
}{
	{"icachsets", func(c config.Config) string { return fmt.Sprintf("%d", c.ICache.Sets) }},
	{"icachsetsz", func(c config.Config) string { return fmt.Sprintf("%d", c.ICache.SetSizeKB) }},
	{"icachlinesz", func(c config.Config) string { return fmt.Sprintf("%d", c.ICache.LineWords) }},
	{"icachreplace", func(c config.Config) string { return c.ICache.Replacement.String() }},
	{"dcachsets", func(c config.Config) string { return fmt.Sprintf("%d", c.DCache.Sets) }},
	{"dcachsetsz", func(c config.Config) string { return fmt.Sprintf("%d", c.DCache.SetSizeKB) }},
	{"dcachlinesz", func(c config.Config) string { return fmt.Sprintf("%d", c.DCache.LineWords) }},
	{"dcachreplace", func(c config.Config) string { return c.DCache.Replacement.String() }},
	{"fastread", func(c config.Config) string { return onOff(c.DCache.FastRead) }},
	{"fastwrite", func(c config.Config) string { return onOff(c.DCache.FastWrite) }},
	{"fastjump", func(c config.Config) string { return onOff(c.IU.FastJump) }},
	{"icchold", func(c config.Config) string { return onOff(c.IU.ICCHold) }},
	{"fastdecode", func(c config.Config) string { return onOff(c.IU.FastDecode) }},
	{"loaddelay", func(c config.Config) string { return fmt.Sprintf("%d", c.IU.LoadDelay) }},
	{"registers", func(c config.Config) string { return fmt.Sprintf("%d", c.IU.RegWindows) }},
	{"divider", func(c config.Config) string { return c.IU.Divider.String() }},
	{"multiplier", func(c config.Config) string { return c.IU.Multiplier.String() }},
	{"infermultdiv", func(c config.Config) string { return onOff(c.Synth.InferMultDiv) }},
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// appResult is one application's tuning outcome for Figures 5/7.
type appResult struct {
	app string
	m   *core.Model
	rec *core.Recommendation
	val *core.Validation
}

func (r *Runner) tuneAll(ctx context.Context, w core.Weights) ([]appResult, error) {
	out := make([]appResult, 0, len(fullApps))
	for _, app := range fullApps {
		rep, err := r.tune(ctx, app, "full", w)
		if err != nil {
			return nil, err
		}
		out = append(out, appResult{
			app: app,
			m:   rep.Artifacts.Model,
			rec: rep.Artifacts.Recommendation,
			val: rep.Artifacts.Validation,
		})
	}
	return out, nil
}

// weightTable renders the shared Figure 5 / Figure 7 layout.
func (r *Runner) weightTable(ctx context.Context, id, title string, w core.Weights) (*Table, error) {
	results, err := r.tuneAll(ctx, w)
	if err != nil {
		return nil, err
	}
	base := config.Default()
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"Param", "Base", "BLAST", "DRR", "FRAG", "Arith"},
	}

	// Parameter rows: only those some application reconfigures.
	for _, p := range paramDisplay {
		baseVal := p.value(base)
		cells := []string{p.name, baseVal}
		differs := false
		for _, res := range results {
			v := p.value(res.rec.Config)
			if v != baseVal {
				differs = true
			}
			cells = append(cells, v)
		}
		if differs {
			t.Rows = append(t.Rows, cells)
		}
	}

	t.AddSection("Base configuration")
	baseRow := []string{"runtime(sec)", "N/A"}
	for _, res := range results {
		baseRow = append(baseRow, seconds(res.m.BaseCycles))
	}
	t.Rows = append(t.Rows, baseRow)

	t.AddSection("Cost approximations by the optimizer")
	predRows := map[string]func(appResult) string{
		"runtime(sec)": func(r appResult) string { return secondsF(r.rec.Predicted.RuntimeCycles) },
		"LUTs%":        func(r appResult) string { return fmt.Sprintf("%d", r.rec.Predicted.LUTPctLinear) },
		"LUTs%-nonlin": func(r appResult) string { return fmt.Sprintf("%d", r.rec.Predicted.LUTPctNonlinear) },
		"BRAM%":        func(r appResult) string { return fmt.Sprintf("%d", r.rec.Predicted.BRAMPctNonlinear) },
		"BRAM%-lin":    func(r appResult) string { return fmt.Sprintf("%d", r.rec.Predicted.BRAMPctLinear) },
	}
	baseLUT := fmt.Sprintf("%d", results[0].m.BaseResources.LUTPercent())
	baseBRAM := fmt.Sprintf("%d", results[0].m.BaseResources.BRAMPercent())
	predBase := map[string]string{
		"runtime(sec)": "N/A",
		"LUTs%":        baseLUT, "LUTs%-nonlin": baseLUT,
		"BRAM%": baseBRAM, "BRAM%-lin": baseBRAM,
	}
	for _, name := range []string{"runtime(sec)", "LUTs%", "LUTs%-nonlin", "BRAM%", "BRAM%-lin"} {
		row := []string{name, predBase[name]}
		for _, res := range results {
			row = append(row, predRows[name](res))
		}
		t.Rows = append(t.Rows, row)
	}

	t.AddSection("Actual synthesis")
	actRows := map[string]func(appResult) string{
		"runtime(sec)": func(r appResult) string { return seconds(r.val.Cycles) },
		"LUTs%":        func(r appResult) string { return fmt.Sprintf("%d", r.val.Resources.LUTPercent()) },
		"BRAM%":        func(r appResult) string { return fmt.Sprintf("%d", r.val.Resources.BRAMPercent()) },
	}
	actBase := map[string]string{"runtime(sec)": "N/A", "LUTs%": baseLUT, "BRAM%": baseBRAM}
	for _, name := range []string{"runtime(sec)", "LUTs%", "BRAM%"} {
		row := []string{name, actBase[name]}
		for _, res := range results {
			row = append(row, actRows[name](res))
		}
		t.Rows = append(t.Rows, row)
	}

	for _, res := range results {
		actualPct := -res.val.RuntimePct
		predPct := -res.rec.Predicted.RuntimePct
		t.AddNote("%s: actual runtime change %s, optimizer estimate %s; chip cost (ΔLUT%%, ΔBRAM%%) actual (%+d,%+d) estimate (%+d,%+d)",
			appLabels[res.app], pct(-actualPct), pct(-predPct),
			res.val.Resources.LUTPercent()-res.m.BaseResources.LUTPercent(),
			res.val.Resources.BRAMPercent()-res.m.BaseResources.BRAMPercent(),
			res.rec.Predicted.LUTPctLinear-res.m.BaseResources.LUTPercent(),
			res.rec.Predicted.BRAMPctNonlinear-res.m.BaseResources.BRAMPercent())
	}
	return t, nil
}

// Figure5 regenerates the paper's Figure 5: application runtime
// optimization with w1=100, w2=1.
func (r *Runner) Figure5(ctx context.Context) (*Table, error) {
	t, err := r.weightTable(ctx, "figure5", "Application runtime optimization (w1=100, w2=1)", core.RuntimeWeights())
	if err != nil {
		return nil, err
	}
	results, err := r.tuneAll(ctx, core.RuntimeWeights()) // cached
	if err != nil {
		return nil, err
	}
	minGain, maxGain := 1e9, -1e9
	var over []float64
	for _, res := range results {
		gain := -res.val.RuntimePct
		if gain < minGain {
			minGain = gain
		}
		if gain > maxGain {
			maxGain = gain
		}
		over = append(over, (-res.rec.Predicted.RuntimePct)-gain)
	}
	t.AddNote("runtime decrease across the applications: %.2f%%-%.2f%% (paper: 6.15%%-19.39%%)", minGain, maxGain)
	minO, maxO := over[0], over[0]
	for _, o := range over {
		if o < minO {
			minO = o
		}
		if o > maxO {
			maxO = o
		}
	}
	t.AddNote("optimizer over/under-estimation of the gain: %.2f to %.2f percentage points (paper: 0-19.75)", minO, maxO)
	return t, nil
}

// Figure7 regenerates the paper's Figure 7: chip resource optimization
// with w1=1, w2=100.
func (r *Runner) Figure7(ctx context.Context) (*Table, error) {
	t, err := r.weightTable(ctx, "figure7", "Chip resource optimization (w1=1, w2=100)", core.ResourceWeights())
	if err != nil {
		return nil, err
	}
	results, err := r.tuneAll(ctx, core.ResourceWeights())
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddNote("%s: runtime change %s for (ΔLUT%%, ΔBRAM%%) = (%+d,%+d)",
			appLabels[res.app], pct(res.val.RuntimePct),
			res.val.Resources.LUTPercent()-res.m.BaseResources.LUTPercent(),
			res.val.Resources.BRAMPercent()-res.m.BaseResources.BRAMPercent())
	}
	return t, nil
}

// figure6PaperRows is the exact row set the paper prints (it omits the
// other 44 perturbations "due to space constraints"; we print them in a
// second section).
var figure6PaperRows = []string{
	"icachsetsz=2",
	"icachlinesz=4",
	"dcachsetsz=32",
	"dcachlinesz=4",
	"fastjump=false",
	"icchold=false",
	"divider=none",
	"multiplier=m32x32",
}

// Figure6 regenerates the paper's Figure 6: BLASTN's measured
// single-parameter perturbation costs.
func (r *Runner) Figure6(ctx context.Context) (*Table, error) {
	m, err := r.model(ctx, "blastn", "full")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "figure6",
		Title:   "BLASTN runtime optimization costs (single-parameter perturbations)",
		Headers: []string{"Param", "Runtime(sec)", "LUTs(%)", "BRAM(%)"},
	}
	inPaper := map[string]bool{}
	for _, name := range figure6PaperRows {
		inPaper[name] = true
		e, ok := m.EntryByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: figure6 row %s missing", name)
		}
		t.AddRow(name, seconds(e.Cycles),
			fmt.Sprintf("%d", e.Resources.LUTPercent()),
			fmt.Sprintf("%d", e.Resources.BRAMPercent()))
	}
	t.AddSection("Remaining measured perturbations (the paper omits these for space)")
	for _, e := range m.Entries {
		if inPaper[e.Var.Name] {
			continue
		}
		t.AddRow(e.Var.Name, seconds(e.Cycles),
			fmt.Sprintf("%d", e.Resources.LUTPercent()),
			fmt.Sprintf("%d", e.Resources.BRAMPercent()))
	}
	t.AddNote("base configuration: %s sec, %d%% LUTs, %d%% BRAM",
		seconds(m.BaseCycles), m.BaseResources.LUTPercent(), m.BaseResources.BRAMPercent())
	return t, nil
}
