// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 1-7 plus the Section 3 search-space argument) on the
// reproduction's substrate. Each harness returns a Table that renders in
// the layout of the corresponding figure; cmd/paperrepro prints them and
// the top-level benchmarks time them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated paper table/figure.
type Table struct {
	// ID is the experiment identifier, e.g. "figure2".
	ID string
	// Title mirrors the paper's caption.
	Title string
	// Headers label the columns.
	Headers []string
	// Rows hold the cell text. A row of a single empty cell renders as a
	// separator; a row whose first cell starts with "--" renders as a
	// section label.
	Rows [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddSection appends a section label row (the paper's mid-table captions
// like "Optimal runtime" or "Cost approximations by the optimizer").
func (t *Table) AddSection(label string) {
	t.Rows = append(t.Rows, []string{"--" + label})
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		if len(row) == 1 && strings.HasPrefix(row[0], "--") {
			continue
		}
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}

	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, c)
		}
		return strings.TrimRight(sb.String(), " ")
	}

	b.WriteString(strings.Repeat("=", total) + "\n")
	b.WriteString(line(t.Headers) + "\n")
	b.WriteString(strings.Repeat("-", total) + "\n")
	lastWasSep := true
	for _, row := range t.Rows {
		if len(row) == 1 && strings.HasPrefix(row[0], "--") {
			if !lastWasSep {
				b.WriteString(strings.Repeat("-", total) + "\n")
			}
			b.WriteString(strings.TrimPrefix(row[0], "--") + "\n")
			b.WriteString(strings.Repeat("-", total) + "\n")
			lastWasSep = true
			continue
		}
		b.WriteString(line(row) + "\n")
		lastWasSep = false
	}
	b.WriteString(strings.Repeat("=", total) + "\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// seconds renders a cycle count as seconds at the 25 MHz platform clock,
// with the paper's 2-3 significant decimals.
func seconds(cycles uint64) string {
	return fmt.Sprintf("%.4f", float64(cycles)/25e6)
}

func secondsF(v float64) string {
	return fmt.Sprintf("%.4f", v/25e6)
}

func pct(v float64) string {
	return fmt.Sprintf("%+.2f%%", v)
}
