package experiments

import (
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
)

// Figure1 regenerates the paper's Figure 1: the reconfigurable parameters
// with their value ranges and defaults.
func Figure1() *Table {
	t := &Table{
		ID:      "figure1",
		Title:   "LEON reconfigurable parameters",
		Headers: []string{"Parameter", "Values", "Default"},
	}
	t.AddSection("Instruction cache")
	t.AddRow("Sets", "1-4", "1")
	t.AddRow("Set size", "1,2,4,8,16,32,64KB", "4")
	t.AddRow("Line size", "4,8 words", "8")
	t.AddRow("Replacement", "Random, LRR, LRU", "Random")
	t.AddSection("Data cache")
	t.AddRow("Sets", "1-4", "1")
	t.AddRow("Set size", "1,2,4,8,16,32,64KB", "4")
	t.AddRow("Line size", "4,8 words", "8")
	t.AddRow("Replacement", "Random, LRR, LRU", "Random")
	t.AddRow("Fast read", "Enable/disable", "Disable")
	t.AddRow("Fast write", "Enable/disable", "Disable")
	t.AddSection("Integer Unit")
	t.AddRow("Fast jump", "Enable/disable", "Enable")
	t.AddRow("ICC hold", "Enable/disable", "Enable")
	t.AddRow("Fast decode", "Enable/disable", "Enable")
	t.AddRow("Load delay", "1,2 clock cycles", "1")
	t.AddRow("Reg. windows", "8, 16-32", "8")
	t.AddRow("Divider", "radix2, none", "radix2")
	t.AddRow("Multiplier", "none,iterative,m16x16,m16x16+pipe,m32x8,m32x16,m32x32", "m16x16")
	t.AddSection("Synthesis options")
	t.AddRow("Infer Mult/Div", "True/false", "True")

	cfg := config.Default()
	cfg.DCache.SetSizeKB = 64
	r := fpga.MustSynthesize(cfg)
	t.AddNote("64KB requires %d BRAM, i.e. %d%% more than the %d available",
		r.BRAM, 100*(r.BRAM-fpga.DeviceBRAM)/fpga.DeviceBRAM, fpga.DeviceBRAM)
	return t
}

// SpaceSize regenerates the paper's Section 3 scalability argument: the
// exhaustive configuration count against the linear number of
// single-change configurations the technique measures.
func SpaceSize() *Table {
	t := &Table{
		ID:      "space",
		Title:   "Search-space size: exhaustive vs one-change-at-a-time",
		Headers: []string{"Approach", "Configurations"},
	}
	t.AddRow("Exhaustive (reconstructed Figure 1 space)", fmt.Sprintf("%d", config.ExhaustiveCount()))
	t.AddRow("Exhaustive (as reported by the paper)", "3641573376")
	t.AddRow("One change at a time (this technique)", fmt.Sprintf("%d", config.FullSpace().Len()))
	t.AddNote("the paper's count is exactly 4x the product of the Figure 1 value counts (two binary parameters not itemised in the figure); the conclusion is unchanged")
	t.AddNote("parameter values itemised in Figure 1: %d (paper reports 79)", config.ParameterValueCount())
	t.AddNote("a real build takes ~%v; exhaustively building even the 2,688-configuration dcache space would take %.0f days",
		fpga.SynthesisDuration, fpga.ExhaustiveBuildTime(2688).Hours()/24)
	return t
}
