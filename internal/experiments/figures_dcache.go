package experiments

import (
	"context"
	"fmt"

	"liquidarch/internal/core"
	"liquidarch/internal/exhaustive"
	"liquidarch/internal/fpga"
	"liquidarch/internal/progs"
)

// Figure2 regenerates the paper's Figure 2: the exhaustive dcache
// sets × set-size study for BLASTN, with the optimal-by-sort footer.
func (r *Runner) Figure2(ctx context.Context) (*Table, error) {
	b, _ := progs.ByName("blastn")
	results, err := exhaustive.SweepWith(ctx, r.provider(), b, r.opts.Scale, exhaustive.DcacheGeometryConfigs(), r.opts.Workers)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "figure2",
		Title:   "BLASTN: exhaustive dcache sets,setsize",
		Headers: []string{"nsets", "Setsz(KB)", "Runtime(sec)", "LUTs(%)", "BRAM(%)"},
	}
	for _, res := range results {
		t.AddRow(
			fmt.Sprintf("%d", res.Config.DCache.Sets),
			fmt.Sprintf("%d", res.Config.DCache.SetSizeKB),
			seconds(res.Cycles),
			fmt.Sprintf("%d", res.Resources.LUTPercent()),
			fmt.Sprintf("%d", res.Resources.BRAMPercent()),
		)
	}
	best, err := exhaustive.BestByRuntime(results)
	if err != nil {
		return nil, err
	}
	t.AddSection("Optimal runtime")
	t.AddRow(
		fmt.Sprintf("%d", best.Config.DCache.Sets),
		fmt.Sprintf("%d", best.Config.DCache.SetSizeKB),
		seconds(best.Cycles),
		fmt.Sprintf("%d", best.Resources.LUTPercent()),
		fmt.Sprintf("%d", best.Resources.BRAMPercent()),
	)
	t.AddNote("%d of 24 sets x setsize combinations fit the device (64KB-class totals exceed %d BRAM)",
		len(results), fpga.DeviceBRAM)
	t.AddNote("the full 7-parameter dcache space has 2,688 combinations; building them for real would take %.0f days at %v per build",
		fpga.ExhaustiveBuildTime(2688).Hours()/24, fpga.SynthesisDuration)
	return t, nil
}

// Figure3 regenerates the paper's Figure 3: the configurations the
// optimizer actually evaluates for BLASTN's dcache geometry (its
// one-change-at-a-time model) and the solution it selects with w1=100,
// w2=0.
func (r *Runner) Figure3(ctx context.Context) (*Table, error) {
	rep, err := r.tune(ctx, "blastn", "dcache", core.RuntimeOnlyWeights())
	if err != nil {
		return nil, err
	}
	m := rep.Artifacts.Model
	t := &Table{
		ID:      "figure3",
		Title:   "BLASTN: optimizer dcache sets,setsize (w1=100, w2=0)",
		Headers: []string{"Sets", "Setsz(KB)", "Runtime(sec)", "LUTs(%)", "BRAM(%)"},
	}
	t.AddSection("Base configuration")
	t.AddRow("1", "4", seconds(m.BaseCycles),
		fmt.Sprintf("%d", m.BaseResources.LUTPercent()),
		fmt.Sprintf("%d", m.BaseResources.BRAMPercent()))

	t.AddSection("Configurations evaluated by the optimizer")
	// Paper order: the sets candidates (at 4KB), then the set sizes (at
	// 1 set) including the base in sequence.
	addEntry := func(name string, sets, setKB int) {
		e, ok := m.EntryByName(name)
		if !ok {
			return
		}
		t.AddRow(fmt.Sprintf("%d", sets), fmt.Sprintf("%d", setKB), seconds(e.Cycles),
			fmt.Sprintf("%d", e.Resources.LUTPercent()),
			fmt.Sprintf("%d", e.Resources.BRAMPercent()))
	}
	addEntry("dcachsets=2", 2, 4)
	addEntry("dcachsets=3", 3, 4)
	addEntry("dcachsets=4", 4, 4)
	addEntry("dcachsetsz=1", 1, 1)
	addEntry("dcachsetsz=2", 1, 2)
	t.AddRow("1", "4", seconds(m.BaseCycles),
		fmt.Sprintf("%d", m.BaseResources.LUTPercent()),
		fmt.Sprintf("%d", m.BaseResources.BRAMPercent()))
	addEntry("dcachsetsz=8", 1, 8)
	addEntry("dcachsetsz=16", 1, 16)
	addEntry("dcachsetsz=32", 1, 32)

	rec, val := rep.Artifacts.Recommendation, rep.Artifacts.Validation
	t.AddSection("Dcache optimization for BLASTN runtime")
	t.AddRow(
		fmt.Sprintf("%d", rec.Config.DCache.Sets),
		fmt.Sprintf("%d", rec.Config.DCache.SetSizeKB),
		seconds(val.Cycles),
		fmt.Sprintf("%d", val.Resources.LUTPercent()),
		fmt.Sprintf("%d", val.Resources.BRAMPercent()),
	)
	t.AddNote("model cost: %d configurations (1 base + %d single changes) vs 19 exhaustive builds; solver explored %d nodes",
		1+m.Space.Len(), m.Space.Len(), rec.SolverNodes)
	return t, nil
}

// Figure4 regenerates the paper's Figure 4: the dcache-geometry study for
// the other three benchmarks, exhaustive vs optimizer.
func (r *Runner) Figure4(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "figure4",
		Title:   "Dcache optimization for DRR, FRAG, Arith (w1=100, w2=0)",
		Headers: []string{"", "Sets", "Setsz(KB)", "Time(sec)", "LUT%", "BRAM%"},
	}
	for _, app := range []string{"drr", "frag", "arith"} {
		b, _ := progs.ByName(app)
		t.AddSection(fmt.Sprintf("CommBench %s", map[string]string{
			"drr": "DRR", "frag": "FRAG", "arith": "BYTE Arith"}[app]))

		results, err := exhaustive.SweepWith(ctx, r.provider(), b, r.opts.Scale, exhaustive.DcacheGeometryConfigs(), r.opts.Workers)
		if err != nil {
			return nil, err
		}
		best, err := exhaustive.BestByRuntime(results)
		if err != nil {
			return nil, err
		}
		rep, err := r.tune(ctx, app, "dcache", core.RuntimeOnlyWeights())
		if err != nil {
			return nil, err
		}
		m, rec, val := rep.Artifacts.Model, rep.Artifacts.Recommendation, rep.Artifacts.Validation
		t.AddRow("Exhaust",
			fmt.Sprintf("%d", best.Config.DCache.Sets),
			fmt.Sprintf("%d", best.Config.DCache.SetSizeKB),
			seconds(best.Cycles),
			fmt.Sprintf("%d", best.Resources.LUTPercent()),
			fmt.Sprintf("%d", best.Resources.BRAMPercent()))
		t.AddRow("Optimiz",
			fmt.Sprintf("%d", rec.Config.DCache.Sets),
			fmt.Sprintf("%d", rec.Config.DCache.SetSizeKB),
			seconds(val.Cycles),
			fmt.Sprintf("%d", val.Resources.LUTPercent()),
			fmt.Sprintf("%d", val.Resources.BRAMPercent()))
		if app == "arith" && val.Cycles == m.BaseCycles && best.Cycles == m.BaseCycles {
			t.AddNote("Arith: no effect, as the application is not data intensive (matches the paper)")
		}
		gap := 100 * (float64(val.Cycles) - float64(best.Cycles)) / float64(best.Cycles)
		t.AddNote("%s: optimizer within %.3f%% of the exhaustive optimum", app, gap)
	}
	return t, nil
}
