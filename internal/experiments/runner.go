package experiments

import (
	"context"
	"fmt"
	"sync"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Options configures the experiment harnesses.
type Options struct {
	// Scale selects the workload size (default Small; the paper's
	// percentages are scale-stable by design).
	Scale workload.Scale
	// Workers bounds parallel measurement runs (default NumCPU).
	Workers int
}

// Runner regenerates the paper's tables, caching the expensive
// perturbation models so Figures 3-7 share measurements, exactly as the
// paper reuses one model per application across weightings.
type Runner struct {
	opts Options

	mu     sync.Mutex
	models map[string]*core.Model
}

// NewRunner creates a runner; a zero Options value means Small scale.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts, models: make(map[string]*core.Model)}
}

// Scale returns the configured workload scale.
func (r *Runner) Scale() workload.Scale { return r.opts.Scale }

func (r *Runner) tuner(space *config.Space) *core.Tuner {
	return &core.Tuner{Space: space, Scale: r.opts.Scale, Workers: r.opts.Workers}
}

// model returns the cached perturbation model for app over the given
// space ("full" or "dcache").
func (r *Runner) model(ctx context.Context, app, spaceName string) (*core.Model, error) {
	key := app + "/" + spaceName
	r.mu.Lock()
	if m, ok := r.models[key]; ok {
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	b, ok := progs.ByName(app)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", app)
	}
	var space *config.Space
	switch spaceName {
	case "full":
		space = config.FullSpace()
	case "dcache":
		space = config.DcacheGeometrySpace()
	default:
		return nil, fmt.Errorf("experiments: unknown space %q", spaceName)
	}
	m, err := r.tuner(space).BuildModel(ctx, b)
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s model: %w", key, err)
	}
	r.mu.Lock()
	r.models[key] = m
	r.mu.Unlock()
	return m, nil
}

// ByID regenerates a table by its identifier ("figure1" .. "figure7",
// "space").
func (r *Runner) ByID(ctx context.Context, id string) (*Table, error) {
	switch id {
	case "figure1", "1":
		return Figure1(), nil
	case "space":
		return SpaceSize(), nil
	case "figure2", "2":
		return r.Figure2(ctx)
	case "figure3", "3":
		return r.Figure3(ctx)
	case "figure4", "4":
		return r.Figure4(ctx)
	case "figure5", "5":
		return r.Figure5(ctx)
	case "figure6", "6":
		return r.Figure6(ctx)
	case "figure7", "7":
		return r.Figure7(ctx)
	case "energy", "8":
		return r.Energy(ctx)
	case "interaction", "9":
		return r.Interaction(ctx)
	case "conformance", "check":
		return r.Conformance(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (use figure1..figure7, space or energy)", id)
	}
}

// IDs lists every regenerable experiment.
func IDs() []string {
	return []string{"figure1", "space", "figure2", "figure3", "figure4", "figure5", "figure6", "figure7", "energy", "interaction", "conformance"}
}
