package experiments

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/workload"
)

// Options configures the experiment harnesses.
type Options struct {
	// Scale selects the workload size (default Small; the paper's
	// percentages are scale-stable by design).
	Scale workload.Scale
	// Workers bounds parallel measurement runs (default NumCPU).
	Workers int
}

// Runner regenerates the paper's tables through one core.Session, whose
// shared model layer keeps the expensive perturbation models resident so
// Figures 3-7 share measurements — and repeated weightings share model
// builds — exactly as the paper reuses one model per application across
// weightings.
type Runner struct {
	opts    Options
	session *core.Session
}

// NewRunner creates a runner; a zero Options value means Small scale.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:    opts,
		session: core.NewSession(core.SessionOptions{Workers: opts.Workers}),
	}
}

// Scale returns the configured workload scale.
func (r *Runner) Scale() workload.Scale { return r.opts.Scale }

// provider exposes the session's measurement provider, so the exhaustive
// sweeps the figures run share the session's cache stack.
func (r *Runner) provider() measure.Provider { return r.session.Provider() }

// run sends one unified request — app over the named space — through
// the runner's session. The model behind it is built once per
// (app, space) and reused across every weighting and figure by the
// session's model layer.
func (r *Runner) run(ctx context.Context, app, spaceName string, req core.Request) (*core.Report, error) {
	space, err := config.SpaceByName(spaceName)
	if err != nil {
		return nil, fmt.Errorf("experiments: unknown space %q", spaceName)
	}
	req.App = app
	req.Scale = r.opts.Scale
	req.Space = space
	rep, err := r.session.Tune(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("experiments: tuning %s/%s: %w", app, spaceName, err)
	}
	return rep, nil
}

// tune solves and validates app over the named space under the given
// weights.
func (r *Runner) tune(ctx context.Context, app, spaceName string, w core.Weights) (*core.Report, error) {
	return r.run(ctx, app, spaceName, core.Request{Weights: w})
}

// model returns the perturbation model for app over the given space
// ("full" or "dcache"), resident in the session's model layer.
func (r *Runner) model(ctx context.Context, app, spaceName string) (*core.Model, error) {
	rep, err := r.run(ctx, app, spaceName, core.Request{SkipValidation: true})
	if err != nil {
		return nil, err
	}
	return rep.Artifacts.Model, nil
}

// ByID regenerates a table by its identifier ("figure1" .. "figure7",
// "space").
func (r *Runner) ByID(ctx context.Context, id string) (*Table, error) {
	switch id {
	case "figure1", "1":
		return Figure1(), nil
	case "space":
		return SpaceSize(), nil
	case "figure2", "2":
		return r.Figure2(ctx)
	case "figure3", "3":
		return r.Figure3(ctx)
	case "figure4", "4":
		return r.Figure4(ctx)
	case "figure5", "5":
		return r.Figure5(ctx)
	case "figure6", "6":
		return r.Figure6(ctx)
	case "figure7", "7":
		return r.Figure7(ctx)
	case "energy", "8":
		return r.Energy(ctx)
	case "interaction", "9":
		return r.Interaction(ctx)
	case "conformance", "check":
		return r.Conformance(ctx)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (use figure1..figure7, space or energy)", id)
	}
}

// IDs lists every regenerable experiment.
func IDs() []string {
	return []string{"figure1", "space", "figure2", "figure3", "figure4", "figure5", "figure6", "figure7", "energy", "interaction", "conformance"}
}
