package experiments

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/exhaustive"
	"liquidarch/internal/progs"
)

// interactionPairs are parameter pairs worth probing for non-additivity:
// both cache-internal interactions (geometry × line size × policy) and
// cross-subsystem ones (cache × multiplier), for every application.
var interactionPairs = [][2]string{
	{"dcachsetsz=32", "dcachlinesz=4"},
	{"dcachsets=2", "dcachsetsz=16"},
	{"dcachsetsz=32", "multiplier=m32x32"},
	{"icchold=false", "multiplier=m32x32"},
	{"icchold=false", "dcachsetsz=32"},
	{"dcachsets=4", "dcachlinesz=4"},
}

// Interaction regenerates the reproduction's independence-assumption audit
// (an extension; the paper asserts the assumption and validates it only
// end-to-end in Section 5). For each parameter pair it compares the
// additive prediction ρ(a)+ρ(b) against the measured runtime of the
// combined configuration — the interaction term is exactly the error the
// paper's model makes on that pair.
func (r *Runner) Interaction(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "interaction",
		Title:   "Parameter-independence audit: additive prediction vs measured pairs — extension beyond the paper",
		Headers: []string{"App", "Pair", "rho(a)%", "rho(b)%", "additive%", "measured%", "interaction"},
	}
	for _, app := range fullApps {
		b, _ := progs.ByName(app)
		m, err := r.model(ctx, app, "full")
		if err != nil {
			return nil, err
		}
		// Build the combined configurations and sweep them in one batch.
		var cfgs []config.Config
		type pairInfo struct {
			a, b       string
			rhoA, rhoB float64
		}
		var infos []pairInfo
		for _, pair := range interactionPairs {
			ea, okA := m.EntryByName(pair[0])
			eb, okB := m.EntryByName(pair[1])
			if !okA || !okB {
				return nil, fmt.Errorf("experiments: interaction pair %v not in model", pair)
			}
			cfg := config.Default()
			if err := cfg.Set(pair[0]); err != nil {
				return nil, err
			}
			if err := cfg.Set(pair[1]); err != nil {
				return nil, err
			}
			cfgs = append(cfgs, cfg)
			infos = append(infos, pairInfo{a: pair[0], b: pair[1], rhoA: ea.Rho, rhoB: eb.Rho})
		}
		results, err := exhaustive.SweepWith(ctx, r.provider(), b, r.opts.Scale, cfgs, r.opts.Workers)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			info := infos[i]
			additive := info.rhoA + info.rhoB
			measured := 100 * (float64(res.Cycles) - float64(m.BaseCycles)) / float64(m.BaseCycles)
			t.AddRow(
				appLabels[app],
				info.a+" + "+info.b,
				fmt.Sprintf("%+.2f", info.rhoA),
				fmt.Sprintf("%+.2f", info.rhoB),
				fmt.Sprintf("%+.2f", additive),
				fmt.Sprintf("%+.2f", measured),
				fmt.Sprintf("%+.2f", measured-additive),
			)
		}
	}
	t.AddNote("interaction = measured - additive; 0 means the paper's independence assumption is exact for that pair")
	t.AddNote("cache-geometry pairs interact (shared miss traffic); cross-subsystem pairs (multiplier x ICC) are near-additive")
	return t, nil
}
