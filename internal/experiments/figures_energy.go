package experiments

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
)

// Energy regenerates the reproduction's extension table: energy-dominant
// tuning (w3=100), the "power and energy optimizations" the paper lists as
// future work. Layout follows Figures 5/7.
func (r *Runner) Energy(ctx context.Context) (*Table, error) {
	results, err := r.tuneAll(ctx, core.EnergyWeights())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "energy",
		Title:   "Energy optimization (w1=1, w2=1, w3=100) — extension beyond the paper",
		Headers: []string{"Param", "Base", "BLAST", "DRR", "FRAG", "Arith"},
	}

	// Parameter rows (same filter as Figures 5/7).
	base := config.Default()
	for _, p := range paramDisplay {
		baseVal := p.value(base)
		cells := []string{p.name, baseVal}
		differs := false
		for _, res := range results {
			v := p.value(res.rec.Config)
			if v != baseVal {
				differs = true
			}
			cells = append(cells, v)
		}
		if differs {
			t.Rows = append(t.Rows, cells)
		}
	}

	addRow := func(name, baseCell string, cell func(appResult) string) {
		row := []string{name, baseCell}
		for _, res := range results {
			row = append(row, cell(res))
		}
		t.Rows = append(t.Rows, row)
	}

	t.AddSection("Base configuration")
	addRow("energy(mJ)", "N/A", func(r appResult) string {
		return fmt.Sprintf("%.3f", r.m.BaseEnergy.TotalJ()*1e3)
	})
	addRow("runtime(sec)", "N/A", func(r appResult) string {
		return seconds(r.m.BaseCycles)
	})

	t.AddSection("Optimized (actual build + run)")
	addRow("energy(mJ)", "N/A", func(r appResult) string {
		return fmt.Sprintf("%.3f", r.val.Energy.TotalJ()*1e3)
	})
	addRow("energy Δ%", "N/A", func(r appResult) string {
		return fmt.Sprintf("%+.2f", r.val.EnergyPct)
	})
	addRow("runtime(sec)", "N/A", func(r appResult) string {
		return seconds(r.val.Cycles)
	})
	addRow("BRAM%", fmt.Sprintf("%d", results[0].m.BaseResources.BRAMPercent()),
		func(r appResult) string { return fmt.Sprintf("%d", r.val.Resources.BRAMPercent()) })

	for _, res := range results {
		t.AddNote("%s: energy %s -> %s (%+.2f%%), runtime %+.2f%%",
			appLabels[res.app], res.m.BaseEnergy, res.val.Energy,
			res.val.EnergyPct, res.val.RuntimePct)
	}
	t.AddNote("this experiment is the paper's future-work extension; no paper table exists to compare against")
	return t, nil
}
