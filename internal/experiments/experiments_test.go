package experiments

import (
	"context"
	"strings"
	"testing"

	"liquidarch/internal/workload"
)

func tinyRunner() *Runner {
	return NewRunner(Options{Scale: workload.Tiny})
}

func TestFigure1Static(t *testing.T) {
	table := Figure1()
	s := table.String()
	for _, want := range []string{"Instruction cache", "Data cache", "Integer Unit", "m32x32", "radix2", "64KB requires"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure1 missing %q", want)
		}
	}
}

func TestSpaceSizeStatic(t *testing.T) {
	s := SpaceSize().String()
	for _, want := range []string{"910393344", "3641573376", "52", "56 days"} {
		if !strings.Contains(s, want) {
			t.Errorf("space table missing %q:\n%s", want, s)
		}
	}
}

func TestFigure2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := tinyRunner().Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 19 data rows + the optimal row.
	var dataRows int
	for _, row := range table.Rows {
		if len(row) > 1 {
			dataRows++
		}
	}
	if dataRows != 20 {
		t.Errorf("figure2 rows = %d, want 20 (19 feasible + optimal)", dataRows)
	}
	s := table.String()
	if !strings.Contains(s, "Optimal runtime") {
		t.Error("figure2 missing the optimal-runtime footer")
	}
	// The paper's BRAM column values must appear.
	for _, bram := range []string{"47", "48", "51", "56", "68", "90", "79", "62", "55", "53", "58", "49"} {
		if !strings.Contains(s, bram) {
			t.Errorf("figure2 missing BRAM value %s", bram)
		}
	}
}

func TestFigure3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := tinyRunner().Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"Base configuration", "Configurations evaluated", "Dcache optimization for BLASTN runtime"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure3 missing %q", want)
		}
	}
}

func TestFigure4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := tinyRunner().Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"CommBench DRR", "CommBench FRAG", "BYTE Arith", "Exhaust", "Optimiz", "not data intensive"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure4 missing %q", want)
		}
	}
}

func TestFigure5And7ShareModels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := tinyRunner()
	f5, err := r.Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if builds := r.session.ModelStats().Builds; builds != 4 {
		t.Errorf("figure5 should build 4 full models in the session layer, built %d", builds)
	}
	f7, err := r.Figure7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if builds := r.session.ModelStats().Builds; builds != 4 {
		t.Errorf("figure7 must reuse the session's models (still 4 builds), built %d", builds)
	}
	for _, want := range []string{"Cost approximations by the optimizer", "Actual synthesis", "runtime(sec)", "LUTs%-nonlin", "BRAM%-lin"} {
		if !strings.Contains(f5.String(), want) {
			t.Errorf("figure5 missing %q", want)
		}
		if !strings.Contains(f7.String(), want) {
			t.Errorf("figure7 missing %q", want)
		}
	}
	// Figure 5 optimizes runtime: every app's actual runtime must not
	// exceed base; the notes record the deltas.
	if !strings.Contains(f5.String(), "runtime decrease across the applications") {
		t.Error("figure5 missing the Section 6.1 summary note")
	}
}

func TestFigure6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := tinyRunner().Figure6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range figure6PaperRows {
		if !strings.Contains(s, want) {
			t.Errorf("figure6 missing paper row %q", want)
		}
	}
	if !strings.Contains(s, "Remaining measured perturbations") {
		t.Error("figure6 missing the extended section")
	}
	// All 52 variables plus the 8 paper rows should appear as rows.
	var rows int
	for _, row := range table.Rows {
		if len(row) > 1 {
			rows++
		}
	}
	if rows != 52 {
		t.Errorf("figure6 rows = %d, want 52", rows)
	}
}

func TestByIDAndIDs(t *testing.T) {
	r := tinyRunner()
	if _, err := r.ByID(context.Background(), "nope"); err == nil {
		t.Error("unknown id should error")
	}
	if _, err := r.ByID(context.Background(), "figure1"); err != nil {
		t.Error(err)
	}
	if _, err := r.ByID(context.Background(), "space"); err != nil {
		t.Error(err)
	}
	ids := IDs()
	if len(ids) != 11 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestEnergyExtensionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := tinyRunner().Energy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"energy(mJ)", "Optimized", "extension"} {
		if !strings.Contains(s, want) {
			t.Errorf("energy table missing %q", want)
		}
	}
}

func TestInteractionExtensionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := tinyRunner().Interaction(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	for _, want := range []string{"interaction", "additive", "measured", "dcachsetsz=32 + dcachlinesz=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("interaction table missing %q", want)
		}
	}
	// 6 pairs x 4 apps = 24 data rows.
	var rows int
	for _, row := range table.Rows {
		if len(row) > 1 {
			rows++
		}
	}
	if rows != 24 {
		t.Errorf("interaction rows = %d, want 24", rows)
	}
}

// TestConformanceAuditAllPass is the reproduction's own acceptance test:
// every check in the conformance audit must pass at the documented
// experiment scale (Small — Tiny workloads distort the relative gain
// ordering the audit checks).
func TestConformanceAuditAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	table, err := NewRunner(Options{Scale: workload.Small}).Conformance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if len(row) == 4 && row[3] == "DIVERGENT" {
			t.Errorf("conformance check %q diverged: paper=%q measured=%q", row[0], row[1], row[2])
		}
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID:      "t",
		Title:   "demo",
		Headers: []string{"a", "b"},
	}
	table.AddRow("1", "2")
	table.AddSection("mid")
	table.AddRow("3", "4")
	table.AddNote("note %d", 7)
	s := table.String()
	for _, want := range []string{"T — demo", "a", "mid", "note: note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
