package experiments

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/exhaustive"
	"liquidarch/internal/fpga"
	"liquidarch/internal/progs"
)

// Conformance audits the reproduction against the paper's published
// numbers: it regenerates the experiments and checks every comparable
// claim, printing a verdict per check. "exact" means the value matches
// the paper's cell; "shape" means the qualitative claim holds (direction,
// ordering, selection) where absolute values are workload-dependent by
// design; "DIVERGENT" flags a broken reproduction.
func (r *Runner) Conformance(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "conformance",
		Title:   "Conformance audit: reproduction vs the paper's published values",
		Headers: []string{"Check", "Paper", "Measured", "Verdict"},
	}
	verdict := func(ok bool, kind string) string {
		if ok {
			return kind
		}
		return "DIVERGENT"
	}

	// --- Base configuration resources (Section 2.4) ---
	base := fpga.MustSynthesize(config.Default())
	t.AddRow("base LUTs", "14992 (39%)",
		fmt.Sprintf("%d (%d%%)", base.LUTs, base.LUTPercent()),
		verdict(base.LUTs == 14992, "exact"))
	t.AddRow("base BRAM", "82 (51%)",
		fmt.Sprintf("%d (%d%%)", base.BRAM, base.BRAMPercent()),
		verdict(base.BRAM == 82, "exact"))

	// --- Figure 2: feasible set and BRAM column ---
	paperFig2BRAM := map[[2]int]int{
		{1, 1}: 47, {1, 2}: 48, {1, 4}: 51, {1, 8}: 56, {1, 16}: 68, {1, 32}: 90,
		{2, 1}: 49, {2, 2}: 51, {2, 4}: 56, {2, 8}: 68, {2, 16}: 90,
		{3, 1}: 51, {3, 2}: 55, {3, 4}: 62, {3, 8}: 79,
		{4, 1}: 53, {4, 2}: 58, {4, 4}: 68, {4, 8}: 90,
	}
	cfgs := exhaustive.DcacheGeometryConfigs()
	t.AddRow("fig2 feasible geometries", "19", fmt.Sprintf("%d", len(cfgs)),
		verdict(len(cfgs) == 19, "exact"))
	bramExact := true
	for _, cfg := range cfgs {
		key := [2]int{cfg.DCache.Sets, cfg.DCache.SetSizeKB}
		if fpga.MustSynthesize(cfg).BRAMPercent() != paperFig2BRAM[key] {
			bramExact = false
		}
	}
	t.AddRow("fig2 BRAM column (19 cells)", "47..90", "see figure2",
		verdict(bramExact, "exact"))

	// --- Figure 6: resource cells of the 8 published perturbations ---
	paperFig6 := map[string][2]int{ // LUT%, BRAM%
		"icachsetsz=2":      {39, 48},
		"icachlinesz=4":     {38, 51},
		"dcachsetsz=32":     {38, 90},
		"dcachlinesz=4":     {39, 51},
		"fastjump=false":    {38, 51},
		"icchold=false":     {39, 51},
		"divider=none":      {37, 51},
		"multiplier=m32x32": {40, 51},
	}
	fig6Exact := true
	for change, want := range paperFig6 {
		cfg := config.Default()
		if err := cfg.Set(change); err != nil {
			return nil, err
		}
		res := fpga.MustSynthesize(cfg)
		if res.LUTPercent() != want[0] || res.BRAMPercent() != want[1] {
			fig6Exact = false
		}
	}
	t.AddRow("fig6 resource cells (16 cells)", "as published", "see figure6",
		verdict(fig6Exact, "exact"))

	// --- Section 5 / Figures 3-4: near-optimality and Arith no-effect ---
	for _, app := range []string{"blastn", "drr", "frag", "arith"} {
		b, _ := progs.ByName(app)
		rep, err := r.tune(ctx, app, "dcache", core.RuntimeOnlyWeights())
		if err != nil {
			return nil, err
		}
		m, val := rep.Artifacts.Model, rep.Artifacts.Validation
		results, err := exhaustive.SweepWith(ctx, r.provider(), b, r.opts.Scale, exhaustive.DcacheGeometryConfigs(), r.opts.Workers)
		if err != nil {
			return nil, err
		}
		best, err := exhaustive.BestByRuntime(results)
		if err != nil {
			return nil, err
		}
		gap := 100 * (float64(val.Cycles) - float64(best.Cycles)) / float64(best.Cycles)
		t.AddRow(fmt.Sprintf("fig3/4 %s optimizer gap", app), "<= 0.02%",
			fmt.Sprintf("%.3f%%", gap), verdict(gap <= 0.5, "shape"))
		if app == "arith" {
			t.AddRow("fig4 Arith dcache no-effect", "no effect",
				fmt.Sprintf("gap to base %.3f%%", 100*(float64(val.Cycles)-float64(m.BaseCycles))/float64(m.BaseCycles)),
				verdict(val.Cycles == m.BaseCycles, "exact"))
		}
	}

	// --- Figure 5: selections and gains ---
	results, err := r.tuneAll(ctx, core.RuntimeWeights())
	if err != nil {
		return nil, err
	}
	allM32, allICC, allFJ := true, true, true
	dividerOK := true
	minGain, maxGain := 1e9, -1e9
	var drrGain, arithGain float64
	for _, res := range results {
		cfg := res.rec.Config
		if cfg.IU.Multiplier != config.Mul32x32 {
			allM32 = false
		}
		if cfg.IU.ICCHold {
			allICC = false
		}
		if cfg.IU.FastJump {
			allFJ = false
		}
		wantDiv := config.DivNone
		if res.app == "arith" {
			wantDiv = config.DivRadix2
		}
		if cfg.IU.Divider != wantDiv {
			dividerOK = false
		}
		gain := -res.val.RuntimePct
		if gain < minGain {
			minGain = gain
		}
		if gain > maxGain {
			maxGain = gain
		}
		switch res.app {
		case "drr":
			drrGain = gain
		case "arith":
			arithGain = gain
		}
	}
	t.AddRow("fig5 multiplier selection", "m32x32 for all 4", boolCell(allM32), verdict(allM32, "exact"))
	t.AddRow("fig5 ICC hold selection", "off for all 4", boolCell(allICC), verdict(allICC, "exact"))
	t.AddRow("fig5 fast jump selection", "off for all 4", boolCell(allFJ), verdict(allFJ, "exact"))
	t.AddRow("fig5 divider selection", "dropped except Arith", boolCell(dividerOK), verdict(dividerOK, "exact"))
	t.AddRow("fig5 gain band", "6.15%-19.39%",
		fmt.Sprintf("%.2f%%-%.2f%%", minGain, maxGain),
		verdict(minGain >= 3 && maxGain <= 35, "shape"))
	t.AddRow("fig5 DRR is the biggest winner", "19.39%",
		fmt.Sprintf("%.2f%% (max %.2f%%)", drrGain, maxGain),
		verdict(drrGain == maxGain, "shape"))
	t.AddRow("fig5 Arith gains least", "6.49%",
		fmt.Sprintf("%.2f%% (min %.2f%%)", arithGain, minGain),
		verdict(arithGain == minGain, "shape"))

	// --- Figure 7: resource weighting saves chip at runtime cost ---
	res7, err := r.tuneAll(ctx, core.ResourceWeights())
	if err != nil {
		return nil, err
	}
	savesChip, costsRuntime := true, false
	for _, res := range res7 {
		dl := res.val.Resources.LUTPercent() - res.m.BaseResources.LUTPercent()
		db := res.val.Resources.BRAMPercent() - res.m.BaseResources.BRAMPercent()
		if dl > 0 || db > 0 {
			savesChip = false
		}
		if res.val.RuntimePct > 5 {
			costsRuntime = true
		}
	}
	t.AddRow("fig7 chip savings for all 4", "(-2,-3) typical", boolCell(savesChip), verdict(savesChip, "shape"))
	t.AddRow("fig7 significant runtime loss exists", "up to 36.34%", boolCell(costsRuntime), verdict(costsRuntime, "shape"))

	t.AddNote("'exact' = the paper's cell value reproduced; 'shape' = the qualitative claim holds where absolute values are synthetic-workload dependent (see EXPERIMENTS.md)")
	return t, nil
}

func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
