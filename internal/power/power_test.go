package power

import (
	"strings"
	"testing"

	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/profiler"
)

func baseInputs() (profiler.Stats, cache.Stats, cache.Stats, fpga.Resources) {
	stats := profiler.Stats{
		Cycles:       1_000_000,
		Instructions: 700_000,
		Loads:        100_000,
		Stores:       50_000,
		Mults:        10_000,
	}
	ic := cache.Stats{ReadAccesses: 700_000, ReadMisses: 1_000, Fills: 1_000}
	dc := cache.Stats{ReadAccesses: 100_000, ReadMisses: 5_000, Fills: 5_000, WriteAccesses: 50_000}
	res := fpga.MustSynthesize(config.Default())
	return stats, ic, dc, res
}

func TestEstimatePositiveAndDecomposed(t *testing.T) {
	stats, ic, dc, res := baseInputs()
	e := Model(stats, ic, dc, res)
	if e.DynamicJ <= 0 || e.StaticJ <= 0 {
		t.Fatalf("estimate components must be positive: %+v", e)
	}
	if e.TotalJ() != e.DynamicJ+e.StaticJ {
		t.Error("total must be the sum of components")
	}
	if !strings.Contains(e.String(), "mJ") {
		t.Errorf("string rendering: %s", e)
	}
}

func TestMoreMissesCostMoreEnergy(t *testing.T) {
	stats, ic, dc, res := baseInputs()
	base := Model(stats, ic, dc, res)
	dc.Fills *= 10
	worse := Model(stats, ic, dc, res)
	if worse.TotalJ() <= base.TotalJ() {
		t.Errorf("10x line fills should cost energy: %f vs %f", worse.TotalJ(), base.TotalJ())
	}
}

func TestBiggerConfigurationCostsStaticPower(t *testing.T) {
	stats, ic, dc, res := baseInputs()
	base := Model(stats, ic, dc, res)
	big := config.Default()
	big.DCache.SetSizeKB = 32
	bigRes := fpga.MustSynthesize(big)
	withBig := Model(stats, ic, dc, bigRes)
	if withBig.StaticJ <= base.StaticJ {
		t.Errorf("32KB dcache should leak more: %f vs %f", withBig.StaticJ, base.StaticJ)
	}
}

func TestLongerRunsCostMoreStatic(t *testing.T) {
	stats, ic, dc, res := baseInputs()
	base := Model(stats, ic, dc, res)
	stats.Cycles *= 2
	longer := Model(stats, ic, dc, res)
	if longer.StaticJ <= base.StaticJ {
		t.Error("double the cycles should double static energy")
	}
}

func TestMultiplierStallsCostEnergy(t *testing.T) {
	stats, ic, dc, res := baseInputs()
	base := Model(stats, ic, dc, res)
	stats.MulStall = 300_000 // slow iterative multiplier
	stats.Cycles += 300_000
	slow := Model(stats, ic, dc, res)
	if slow.TotalJ() <= base.TotalJ() {
		t.Error("multiplier active cycles should cost energy")
	}
}

func TestDeltaPercent(t *testing.T) {
	a := Estimate{DynamicJ: 1.0, StaticJ: 1.0}
	b := Estimate{DynamicJ: 1.1, StaticJ: 1.1}
	if got := DeltaPercent(b, a); got < 9.99 || got > 10.01 {
		t.Errorf("delta = %f, want 10", got)
	}
	if got := DeltaPercent(a, a); got != 0 {
		t.Errorf("self delta = %f", got)
	}
}
