// Package power implements the energy extension the paper lists as future
// work ("As extensions to our model, we can include power and energy
// optimizations"). It estimates the energy one application run consumes on
// a given configuration from the cycle-accurate profile: an activity-based
// dynamic component (per-event charge for instruction issue, cache
// accesses and fills, BRAM reads, multiplier/divider active cycles, bus
// transfers) plus a static component proportional to the configured
// resources and the run's duration.
//
// The per-event energies are calibrated to plausible 180 nm-era FPGA
// magnitudes (the paper's XCV2000E); as with the resource model, the
// optimizer only consumes relative percentages, so the shape — bigger
// caches cost static power but save miss energy; slow multipliers burn
// active cycles — is what matters.
package power

import (
	"fmt"

	"liquidarch/internal/cache"
	"liquidarch/internal/fpga"
	"liquidarch/internal/profiler"
)

// Per-event dynamic energies, in nanojoules.
const (
	issueNJ    = 1.0 // base instruction issue
	icacheNJ   = 0.8 // icache read (per fetch)
	dcacheNJ   = 1.0 // dcache access
	lineFillNJ = 6.0 // per line fill (burst from SRAM)
	busWriteNJ = 4.0 // write-through store reaching memory
	mulCycleNJ = 2.5 // multiplier active cycle
	divCycleNJ = 2.0 // divider active cycle
	windowNJ   = 1.2 // per window-trap transfer cycle
	stallNJ    = 0.3 // pipeline stall cycle (clock tree + control)
)

// Static power coefficients.
const (
	baseStaticWatts    = 0.35   // clock tree, configuration fabric
	lutStaticWatts     = 8e-6   // per configured LUT
	bramStaticWatts    = 1.5e-3 // per BRAM block
	clockHz            = profiler.DefaultClockHz
	nanojoulesPerJoule = 1e9
)

// Estimate is the energy breakdown of one run.
type Estimate struct {
	// DynamicJ is the activity-based energy in joules.
	DynamicJ float64
	// StaticJ is duration × static power in joules.
	StaticJ float64
}

// TotalJ returns the total energy in joules.
func (e Estimate) TotalJ() float64 { return e.DynamicJ + e.StaticJ }

// String renders the estimate in millijoules.
func (e Estimate) String() string {
	return fmt.Sprintf("%.3f mJ (dynamic %.3f + static %.3f)",
		e.TotalJ()*1e3, e.DynamicJ*1e3, e.StaticJ*1e3)
}

// Model computes an energy estimate from a run profile, the cache event
// counters, and the synthesized resources.
func Model(stats profiler.Stats, icache, dcache cache.Stats, res fpga.Resources) Estimate {
	var nj float64
	nj += issueNJ * float64(stats.Instructions)
	nj += icacheNJ * float64(icache.ReadAccesses)
	nj += dcacheNJ * float64(dcache.ReadAccesses+dcache.WriteAccesses)
	nj += lineFillNJ * float64(icache.Fills+dcache.Fills)
	nj += busWriteNJ * float64(stats.Stores)
	nj += mulCycleNJ * float64(stats.MulStall+stats.Mults) // active cycles incl. issue
	nj += divCycleNJ * float64(stats.DivStall+stats.Divs)
	nj += windowNJ * float64(stats.WindowTrapStall)
	stalls := stats.StallTotal()
	nj += stallNJ * float64(stalls)

	staticWatts := baseStaticWatts +
		lutStaticWatts*float64(res.LUTs) +
		bramStaticWatts*float64(res.BRAM)
	seconds := float64(stats.Cycles) / clockHz

	return Estimate{
		DynamicJ: nj / nanojoulesPerJoule,
		StaticJ:  staticWatts * seconds,
	}
}

// DeltaPercent returns the percentage energy difference of e over base —
// the εᵢ coefficient the energy-aware objective uses.
func DeltaPercent(e, base Estimate) float64 {
	return 100 * (e.TotalJ() - base.TotalJ()) / base.TotalJ()
}
