// Package binlp solves the constrained Binary Integer Nonlinear Programs
// of the paper's Section 4: minimize a linear objective over binary
// decision variables subject to at-most-one group constraints, linear
// inequality constraints, and nonlinear constraints built from products of
// linear forms (the paper's cache sets x set-size resource terms).
//
// The solver is an exact branch-and-bound: it branches over groups,
// bounds the objective with per-group minima, and prunes infeasible
// subtrees with interval lower bounds on every constraint. It replaces the
// commercial Tomlab/MINLP solver the paper used; on the paper's 52-variable
// instances it proves optimality in well under a millisecond.
package binlp

import (
	"fmt"
	"math"
	"sort"
)

// LinearForm is Const + Σ Coeffs[i]*x[i].
type LinearForm struct {
	Coeffs map[int]float64
	Const  float64
}

// term is one (variable, coefficient) pair of a compiled form.
type term struct {
	i int
	c float64
}

// terms returns the coefficients in ascending variable order. Every
// summation in the package runs over this order, so identical problems
// produce bit-identical floating-point sums — and therefore identical
// prunes, node counts and solutions — regardless of map iteration order.
func (f LinearForm) terms() []term {
	ts := make([]term, 0, len(f.Coeffs))
	for i, c := range f.Coeffs {
		ts = append(ts, term{i, c})
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a].i < ts[b].i })
	return ts
}

// NewLinearForm creates an empty linear form.
func NewLinearForm() LinearForm {
	return LinearForm{Coeffs: make(map[int]float64)}
}

// Add accumulates a coefficient for variable i.
func (f *LinearForm) Add(i int, c float64) {
	if f.Coeffs == nil {
		f.Coeffs = make(map[int]float64)
	}
	f.Coeffs[i] += c
}

// Eval computes the form on a complete assignment, summing in ascending
// variable order for reproducibility.
func (f LinearForm) Eval(x []bool) float64 {
	return compileForm(f).eval(x)
}

// compiledForm is a LinearForm flattened to sorted term slices: the
// representation the solver's hot loops evaluate. Compiling once per
// Solve removes both the map-iteration nondeterminism and the per-node
// map overhead.
type compiledForm struct {
	terms []term
	konst float64
}

func compileForm(f LinearForm) compiledForm {
	return compiledForm{terms: f.terms(), konst: f.Const}
}

func (f compiledForm) eval(x []bool) float64 {
	v := f.konst
	for _, t := range f.terms {
		if x[t.i] {
			v += t.c
		}
	}
	return v
}

// interval returns the attainable [lo, hi] of the form given a partial
// assignment: decided variables contribute their value, undecided ones
// contribute their sign-appropriate extremes.
func (f compiledForm) interval(x, decided []bool) (lo, hi float64) {
	lo, hi = f.konst, f.konst
	for _, t := range f.terms {
		switch {
		case decided[t.i] && x[t.i]:
			lo += t.c
			hi += t.c
		case decided[t.i]:
			// contributes nothing
		case t.c < 0:
			lo += t.c
		default:
			hi += t.c
		}
	}
	return lo, hi
}

// ProductTerm is the nonlinear building block A(x) * B(x).
type ProductTerm struct {
	A, B LinearForm
}

// Constraint is Linear(x) + Σ ProductTerms(x) <= Bound.
type Constraint struct {
	Name     string
	Linear   LinearForm
	Products []ProductTerm
	Bound    float64
}

// Eval computes the left-hand side on a complete assignment.
func (c *Constraint) Eval(x []bool) float64 {
	return compileConstraint(c).eval(x)
}

// Satisfied reports whether the constraint holds on a complete assignment.
func (c *Constraint) Satisfied(x []bool) bool {
	return c.Eval(x) <= c.Bound+1e-9
}

// compiledConstraint is a Constraint with every form compiled.
type compiledConstraint struct {
	name     string
	linear   compiledForm
	products []struct{ a, b compiledForm }
	bound    float64
}

func compileConstraint(c *Constraint) *compiledConstraint {
	cc := &compiledConstraint{
		name:   c.Name,
		linear: compileForm(c.Linear),
		bound:  c.Bound,
	}
	for _, p := range c.Products {
		cc.products = append(cc.products,
			struct{ a, b compiledForm }{compileForm(p.A), compileForm(p.B)})
	}
	return cc
}

func (c *compiledConstraint) eval(x []bool) float64 {
	v := c.linear.eval(x)
	for _, p := range c.products {
		v += p.a.eval(x) * p.b.eval(x)
	}
	return v
}

func (c *compiledConstraint) satisfied(x []bool) bool {
	return c.eval(x) <= c.bound+1e-9
}

// lowerBound computes a valid lower bound of the left-hand side over all
// completions of the partial assignment, using interval arithmetic on each
// product term.
func (c *compiledConstraint) lowerBound(x, decided []bool) float64 {
	lo, _ := c.linear.interval(x, decided)
	v := lo
	for _, p := range c.products {
		alo, ahi := p.a.interval(x, decided)
		blo, bhi := p.b.interval(x, decided)
		v += math.Min(math.Min(alo*blo, alo*bhi), math.Min(ahi*blo, ahi*bhi))
	}
	return v
}

// Problem is a complete BINLP instance.
type Problem struct {
	// N is the number of binary variables.
	N int
	// Cost holds the objective coefficients (minimized).
	Cost []float64
	// Groups are at-most-one sets of variable indices. Variables not in
	// any group are free binaries. A variable may appear in one group
	// only.
	Groups [][]int
	// Constraints are the linear and nonlinear inequality constraints.
	Constraints []*Constraint
}

// Validate checks structural soundness.
func (p *Problem) Validate() error {
	if len(p.Cost) != p.N {
		return fmt.Errorf("binlp: %d costs for %d variables", len(p.Cost), p.N)
	}
	seen := make([]bool, p.N)
	for gi, g := range p.Groups {
		if len(g) == 0 {
			return fmt.Errorf("binlp: group %d is empty", gi)
		}
		for _, i := range g {
			if i < 0 || i >= p.N {
				return fmt.Errorf("binlp: group %d has variable %d out of range", gi, i)
			}
			if seen[i] {
				return fmt.Errorf("binlp: variable %d appears in two groups", i)
			}
			seen[i] = true
		}
	}
	return nil
}

// Solution is the solver's result.
type Solution struct {
	// X is the optimal assignment.
	X []bool
	// Objective is the achieved objective value.
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Proven is true when the search ran to completion (the solution is a
	// global optimum of the model), false when the node limit cut it off.
	Proven bool
}

// Options tunes the solver.
type Options struct {
	// MaxNodes caps the search (0 means the 10-million default).
	MaxNodes int
}

type solver struct {
	p        *Problem
	cons     []*compiledConstraint
	groups   [][]int // normalised: every variable in exactly one group
	minCost  []float64
	suffix   []float64 // suffix[k]: lower bound of groups k..end
	x        []bool
	decided  []bool
	nsel     int
	best     []bool
	bestObj  float64
	bestSel  int
	nodes    int
	maxNodes int
	complete bool
}

// Solve finds a minimum-cost feasible assignment. The all-zero assignment
// must be feasible (it is for the paper's formulation — the base
// configuration); if it is not, Solve returns an error.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &solver{
		p:        p,
		x:        make([]bool, p.N),
		decided:  make([]bool, p.N),
		maxNodes: opts.MaxNodes,
		complete: true,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 10_000_000
	}
	for _, c := range p.Constraints {
		s.cons = append(s.cons, compileConstraint(c))
	}

	// Normalise groups: ungrouped variables become singleton groups.
	inGroup := make([]bool, p.N)
	for _, g := range p.Groups {
		s.groups = append(s.groups, g)
		for _, i := range g {
			inGroup[i] = true
		}
	}
	for i := 0; i < p.N; i++ {
		if !inGroup[i] {
			s.groups = append(s.groups, []int{i})
		}
	}

	// Per-group objective lower bound: selecting nothing costs 0, so the
	// group bound is min(0, min cost).
	s.minCost = make([]float64, len(s.groups))
	for gi, g := range s.groups {
		m := 0.0
		for _, i := range g {
			if p.Cost[i] < m {
				m = p.Cost[i]
			}
		}
		s.minCost[gi] = m
	}
	// Branch on promising groups first: most negative potential.
	orderGroups(s.groups, s.minCost)
	s.suffix = make([]float64, len(s.groups)+1)
	for k := len(s.groups) - 1; k >= 0; k-- {
		s.suffix[k] = s.suffix[k+1] + s.minCost[k]
	}

	// Incumbent: the all-zero assignment.
	zero := make([]bool, p.N)
	for _, c := range s.cons {
		if !c.satisfied(zero) {
			return nil, fmt.Errorf("binlp: base assignment violates constraint %q", c.name)
		}
	}
	s.best = zero
	s.bestObj = 0
	s.bestSel = 0

	s.branch(0, 0)

	return &Solution{
		X:         s.best,
		Objective: s.bestObj,
		Nodes:     s.nodes,
		Proven:    s.complete,
	}, nil
}

// orderGroups sorts groups (and their bounds) by ascending bound, i.e.
// most promising first. Stable insertion keeps determinism.
func orderGroups(groups [][]int, minCost []float64) {
	for i := 1; i < len(groups); i++ {
		g, m := groups[i], minCost[i]
		j := i - 1
		for j >= 0 && minCost[j] > m {
			groups[j+1], minCost[j+1] = groups[j], minCost[j]
			j--
		}
		groups[j+1], minCost[j+1] = g, m
	}
}

func (s *solver) branch(gi int, partial float64) {
	if s.nodes >= s.maxNodes {
		s.complete = false
		return
	}
	s.nodes++

	// Objective bound (epsilon-relaxed so equal-objective assignments
	// with fewer selections are still reachable for the tie-break).
	if partial+s.suffix[gi] > s.bestObj+1e-12 {
		return
	}
	// Feasibility bounds.
	for _, c := range s.cons {
		if c.lowerBound(s.x, s.decided) > c.bound+1e-9 {
			return
		}
	}
	if gi == len(s.groups) {
		// Complete assignment; constraints were bounded above with all
		// variables decided, so it is feasible. Ties prefer fewer
		// selections (stay closer to the base configuration).
		better := partial < s.bestObj-1e-12 ||
			(partial < s.bestObj+1e-12 && s.nsel < s.bestSel)
		if better {
			s.bestObj = partial
			s.bestSel = s.nsel
			copy(s.best, s.x)
		}
		return
	}

	group := s.groups[gi]
	for _, i := range group {
		s.decided[i] = true
	}
	// Try each member, cheapest first for better incumbents.
	order := make([]int, len(group))
	copy(order, group)
	for a := 1; a < len(order); a++ {
		v := order[a]
		b := a - 1
		for b >= 0 && s.p.Cost[order[b]] > s.p.Cost[v] {
			order[b+1] = order[b]
			b--
		}
		order[b+1] = v
	}
	for _, i := range order {
		s.x[i] = true
		s.nsel++
		s.branch(gi+1, partial+s.p.Cost[i])
		s.nsel--
		s.x[i] = false
	}
	// The "select nothing" branch.
	s.branch(gi+1, partial)
	for _, i := range group {
		s.decided[i] = false
	}
}

// BruteForce enumerates every feasible assignment (for testing the solver
// on small instances). It returns the optimum and the number of complete
// assignments examined.
func BruteForce(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inGroup := make([]bool, p.N)
	var groups [][]int
	for _, g := range p.Groups {
		groups = append(groups, g)
		for _, i := range g {
			inGroup[i] = true
		}
	}
	for i := 0; i < p.N; i++ {
		if !inGroup[i] {
			groups = append(groups, []int{i})
		}
	}
	var cons []*compiledConstraint
	for _, c := range p.Constraints {
		cons = append(cons, compileConstraint(c))
	}
	x := make([]bool, p.N)
	best := make([]bool, p.N)
	bestObj := math.Inf(1)
	count := 0
	var rec func(gi int, obj float64)
	rec = func(gi int, obj float64) {
		if gi == len(groups) {
			count++
			for _, c := range cons {
				if !c.satisfied(x) {
					return
				}
			}
			if obj < bestObj {
				bestObj = obj
				copy(best, x)
			}
			return
		}
		rec(gi+1, obj) // none selected
		for _, i := range groups[gi] {
			x[i] = true
			rec(gi+1, obj+p.Cost[i])
			x[i] = false
		}
	}
	rec(0, 0)
	if math.IsInf(bestObj, 1) {
		return nil, fmt.Errorf("binlp: no feasible assignment")
	}
	return &Solution{X: best, Objective: bestObj, Nodes: count, Proven: true}, nil
}
