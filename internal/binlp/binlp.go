// Package binlp solves the constrained Binary Integer Nonlinear Programs
// of the paper's Section 4: minimize a linear objective over binary
// decision variables subject to at-most-one group constraints, linear
// inequality constraints, and nonlinear constraints built from products of
// linear forms (the paper's cache sets x set-size resource terms).
//
// The solver is an exact branch-and-bound: it branches over groups,
// bounds the objective with per-group minima, and prunes infeasible
// subtrees with interval lower bounds on every constraint. It replaces the
// commercial Tomlab/MINLP solver the paper used; on the paper's 52-variable
// instances it proves optimality in well under a millisecond.
package binlp

import (
	"fmt"
	"math"
)

// LinearForm is Const + Σ Coeffs[i]*x[i].
type LinearForm struct {
	Coeffs map[int]float64
	Const  float64
}

// NewLinearForm creates an empty linear form.
func NewLinearForm() LinearForm {
	return LinearForm{Coeffs: make(map[int]float64)}
}

// Add accumulates a coefficient for variable i.
func (f *LinearForm) Add(i int, c float64) {
	if f.Coeffs == nil {
		f.Coeffs = make(map[int]float64)
	}
	f.Coeffs[i] += c
}

// Eval computes the form on a complete assignment.
func (f LinearForm) Eval(x []bool) float64 {
	v := f.Const
	for i, c := range f.Coeffs {
		if x[i] {
			v += c
		}
	}
	return v
}

// interval returns the attainable [lo, hi] of the form given a partial
// assignment: decided variables contribute their value, undecided ones
// contribute their sign-appropriate extremes.
func (f LinearForm) interval(x, decided []bool) (lo, hi float64) {
	lo, hi = f.Const, f.Const
	for i, c := range f.Coeffs {
		switch {
		case decided[i] && x[i]:
			lo += c
			hi += c
		case decided[i]:
			// contributes nothing
		case c < 0:
			lo += c
		default:
			hi += c
		}
	}
	return lo, hi
}

// ProductTerm is the nonlinear building block A(x) * B(x).
type ProductTerm struct {
	A, B LinearForm
}

// Constraint is Linear(x) + Σ ProductTerms(x) <= Bound.
type Constraint struct {
	Name     string
	Linear   LinearForm
	Products []ProductTerm
	Bound    float64
}

// Eval computes the left-hand side on a complete assignment.
func (c *Constraint) Eval(x []bool) float64 {
	v := c.Linear.Eval(x)
	for _, p := range c.Products {
		v += p.A.Eval(x) * p.B.Eval(x)
	}
	return v
}

// Satisfied reports whether the constraint holds on a complete assignment.
func (c *Constraint) Satisfied(x []bool) bool {
	return c.Eval(x) <= c.Bound+1e-9
}

// lowerBound computes a valid lower bound of the left-hand side over all
// completions of the partial assignment, using interval arithmetic on each
// product term.
func (c *Constraint) lowerBound(x, decided []bool) float64 {
	lo, _ := c.Linear.interval(x, decided)
	v := lo
	for _, p := range c.Products {
		alo, ahi := p.A.interval(x, decided)
		blo, bhi := p.B.interval(x, decided)
		v += math.Min(math.Min(alo*blo, alo*bhi), math.Min(ahi*blo, ahi*bhi))
	}
	return v
}

// Problem is a complete BINLP instance.
type Problem struct {
	// N is the number of binary variables.
	N int
	// Cost holds the objective coefficients (minimized).
	Cost []float64
	// Groups are at-most-one sets of variable indices. Variables not in
	// any group are free binaries. A variable may appear in one group
	// only.
	Groups [][]int
	// Constraints are the linear and nonlinear inequality constraints.
	Constraints []*Constraint
}

// Validate checks structural soundness.
func (p *Problem) Validate() error {
	if len(p.Cost) != p.N {
		return fmt.Errorf("binlp: %d costs for %d variables", len(p.Cost), p.N)
	}
	seen := make([]bool, p.N)
	for gi, g := range p.Groups {
		if len(g) == 0 {
			return fmt.Errorf("binlp: group %d is empty", gi)
		}
		for _, i := range g {
			if i < 0 || i >= p.N {
				return fmt.Errorf("binlp: group %d has variable %d out of range", gi, i)
			}
			if seen[i] {
				return fmt.Errorf("binlp: variable %d appears in two groups", i)
			}
			seen[i] = true
		}
	}
	return nil
}

// Solution is the solver's result.
type Solution struct {
	// X is the optimal assignment.
	X []bool
	// Objective is the achieved objective value.
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Proven is true when the search ran to completion (the solution is a
	// global optimum of the model), false when the node limit cut it off.
	Proven bool
}

// Options tunes the solver.
type Options struct {
	// MaxNodes caps the search (0 means the 10-million default).
	MaxNodes int
}

type solver struct {
	p        *Problem
	groups   [][]int // normalised: every variable in exactly one group
	minCost  []float64
	suffix   []float64 // suffix[k]: lower bound of groups k..end
	x        []bool
	decided  []bool
	nsel     int
	best     []bool
	bestObj  float64
	bestSel  int
	nodes    int
	maxNodes int
	complete bool
}

// Solve finds a minimum-cost feasible assignment. The all-zero assignment
// must be feasible (it is for the paper's formulation — the base
// configuration); if it is not, Solve returns an error.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &solver{
		p:        p,
		x:        make([]bool, p.N),
		decided:  make([]bool, p.N),
		maxNodes: opts.MaxNodes,
		complete: true,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 10_000_000
	}

	// Normalise groups: ungrouped variables become singleton groups.
	inGroup := make([]bool, p.N)
	for _, g := range p.Groups {
		s.groups = append(s.groups, g)
		for _, i := range g {
			inGroup[i] = true
		}
	}
	for i := 0; i < p.N; i++ {
		if !inGroup[i] {
			s.groups = append(s.groups, []int{i})
		}
	}

	// Per-group objective lower bound: selecting nothing costs 0, so the
	// group bound is min(0, min cost).
	s.minCost = make([]float64, len(s.groups))
	for gi, g := range s.groups {
		m := 0.0
		for _, i := range g {
			if p.Cost[i] < m {
				m = p.Cost[i]
			}
		}
		s.minCost[gi] = m
	}
	// Branch on promising groups first: most negative potential.
	orderGroups(s.groups, s.minCost)
	s.suffix = make([]float64, len(s.groups)+1)
	for k := len(s.groups) - 1; k >= 0; k-- {
		s.suffix[k] = s.suffix[k+1] + s.minCost[k]
	}

	// Incumbent: the all-zero assignment.
	zero := make([]bool, p.N)
	for _, c := range p.Constraints {
		if !c.Satisfied(zero) {
			return nil, fmt.Errorf("binlp: base assignment violates constraint %q", c.Name)
		}
	}
	s.best = zero
	s.bestObj = 0
	s.bestSel = 0

	s.branch(0, 0)

	return &Solution{
		X:         s.best,
		Objective: s.bestObj,
		Nodes:     s.nodes,
		Proven:    s.complete,
	}, nil
}

// orderGroups sorts groups (and their bounds) by ascending bound, i.e.
// most promising first. Stable insertion keeps determinism.
func orderGroups(groups [][]int, minCost []float64) {
	for i := 1; i < len(groups); i++ {
		g, m := groups[i], minCost[i]
		j := i - 1
		for j >= 0 && minCost[j] > m {
			groups[j+1], minCost[j+1] = groups[j], minCost[j]
			j--
		}
		groups[j+1], minCost[j+1] = g, m
	}
}

func (s *solver) branch(gi int, partial float64) {
	if s.nodes >= s.maxNodes {
		s.complete = false
		return
	}
	s.nodes++

	// Objective bound (epsilon-relaxed so equal-objective assignments
	// with fewer selections are still reachable for the tie-break).
	if partial+s.suffix[gi] > s.bestObj+1e-12 {
		return
	}
	// Feasibility bounds.
	for _, c := range s.p.Constraints {
		if c.lowerBound(s.x, s.decided) > c.Bound+1e-9 {
			return
		}
	}
	if gi == len(s.groups) {
		// Complete assignment; constraints were bounded above with all
		// variables decided, so it is feasible. Ties prefer fewer
		// selections (stay closer to the base configuration).
		better := partial < s.bestObj-1e-12 ||
			(partial < s.bestObj+1e-12 && s.nsel < s.bestSel)
		if better {
			s.bestObj = partial
			s.bestSel = s.nsel
			copy(s.best, s.x)
		}
		return
	}

	group := s.groups[gi]
	for _, i := range group {
		s.decided[i] = true
	}
	// Try each member, cheapest first for better incumbents.
	order := make([]int, len(group))
	copy(order, group)
	for a := 1; a < len(order); a++ {
		v := order[a]
		b := a - 1
		for b >= 0 && s.p.Cost[order[b]] > s.p.Cost[v] {
			order[b+1] = order[b]
			b--
		}
		order[b+1] = v
	}
	for _, i := range order {
		s.x[i] = true
		s.nsel++
		s.branch(gi+1, partial+s.p.Cost[i])
		s.nsel--
		s.x[i] = false
	}
	// The "select nothing" branch.
	s.branch(gi+1, partial)
	for _, i := range group {
		s.decided[i] = false
	}
}

// BruteForce enumerates every feasible assignment (for testing the solver
// on small instances). It returns the optimum and the number of complete
// assignments examined.
func BruteForce(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inGroup := make([]bool, p.N)
	var groups [][]int
	for _, g := range p.Groups {
		groups = append(groups, g)
		for _, i := range g {
			inGroup[i] = true
		}
	}
	for i := 0; i < p.N; i++ {
		if !inGroup[i] {
			groups = append(groups, []int{i})
		}
	}
	x := make([]bool, p.N)
	best := make([]bool, p.N)
	bestObj := math.Inf(1)
	count := 0
	var rec func(gi int, obj float64)
	rec = func(gi int, obj float64) {
		if gi == len(groups) {
			count++
			for _, c := range p.Constraints {
				if !c.Satisfied(x) {
					return
				}
			}
			if obj < bestObj {
				bestObj = obj
				copy(best, x)
			}
			return
		}
		rec(gi+1, obj) // none selected
		for _, i := range groups[gi] {
			x[i] = true
			rec(gi+1, obj+p.Cost[i])
			x[i] = false
		}
	}
	rec(0, 0)
	if math.IsInf(bestObj, 1) {
		return nil, fmt.Errorf("binlp: no feasible assignment")
	}
	return &Solution{X: best, Objective: bestObj, Nodes: count, Proven: true}, nil
}
