package binlp

import (
	"math"
	"math/rand"
	"testing"
)

func linear(coeffs map[int]float64, bound float64, name string) *Constraint {
	return &Constraint{Name: name, Linear: LinearForm{Coeffs: coeffs}, Bound: bound}
}

func TestUnconstrainedPicksAllNegatives(t *testing.T) {
	p := &Problem{
		N:    4,
		Cost: []float64{-3, 2, -1, 0},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i, w := range want {
		if sol.X[i] != w {
			t.Errorf("x[%d] = %t, want %t", i, sol.X[i], w)
		}
	}
	if sol.Objective != -4 {
		t.Errorf("objective = %f, want -4", sol.Objective)
	}
	if !sol.Proven {
		t.Error("tiny problem should be proven optimal")
	}
}

func TestGroupAtMostOne(t *testing.T) {
	p := &Problem{
		N:      3,
		Cost:   []float64{-1, -5, -3},
		Groups: [][]int{{0, 1, 2}},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X[1] || sol.X[0] || sol.X[2] {
		t.Errorf("should pick only the cheapest group member: %v", sol.X)
	}
	if sol.Objective != -5 {
		t.Errorf("objective = %f", sol.Objective)
	}
}

func TestGroupPrefersNoneWhenAllPositive(t *testing.T) {
	p := &Problem{
		N:      2,
		Cost:   []float64{2, 3},
		Groups: [][]int{{0, 1}},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] || sol.X[1] {
		t.Errorf("all-positive group should select nothing: %v", sol.X)
	}
	if sol.Objective != 0 {
		t.Errorf("objective = %f", sol.Objective)
	}
}

func TestLinearConstraintKnapsack(t *testing.T) {
	// Pick at most 10 units of weight; items (value, weight):
	// x0 (-6, 7), x1 (-5, 5), x2 (-4, 5), x3 (-1, 1).
	p := &Problem{
		N:    4,
		Cost: []float64{-6, -5, -4, -1},
		Constraints: []*Constraint{
			linear(map[int]float64{0: 7, 1: 5, 2: 5, 3: 1}, 10, "weight"),
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: x1+x2 (value 9, weight 10) beats x0+x3 (7, 8).
	if !sol.X[1] || !sol.X[2] || sol.X[0] {
		t.Errorf("x = %v", sol.X)
	}
	if sol.Objective != -9 {
		t.Errorf("objective = %f, want -9", sol.Objective)
	}
}

func TestCouplingConstraint(t *testing.T) {
	// x0 is attractive but requires x1 (x0 - x1 <= 0), and x1 is costly
	// enough to flip the decision.
	p := &Problem{
		N:    2,
		Cost: []float64{-2, 3},
		Constraints: []*Constraint{
			linear(map[int]float64{0: 1, 1: -1}, 0, "requires"),
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] || sol.X[1] {
		t.Errorf("selecting x0 costs net +1; expected empty, got %v", sol.X)
	}

	// Make x0 worth it.
	p.Cost = []float64{-5, 3}
	sol, err = Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X[0] || !sol.X[1] {
		t.Errorf("x0 now worth its dependency: %v", sol.X)
	}
}

func TestNonlinearProductConstraint(t *testing.T) {
	// The paper's cache form: (1 + x0) * (4 + 8*x1) <= 9.
	// x1 alone: 1*12 = 12 > 9 infeasible. x0 alone: 2*4 = 8 ok.
	a := LinearForm{Coeffs: map[int]float64{0: 1}, Const: 1}
	b := LinearForm{Coeffs: map[int]float64{1: 8}, Const: 4}
	p := &Problem{
		N:    2,
		Cost: []float64{-1, -10},
		Constraints: []*Constraint{
			{Name: "bram", Products: []ProductTerm{{A: a, B: b}}, Bound: 9},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X[0] || sol.X[1] {
		t.Errorf("x1 must be excluded by the nonlinear constraint: %v", sol.X)
	}
}

func TestInfeasibleBaseErrors(t *testing.T) {
	p := &Problem{
		N:    1,
		Cost: []float64{-1},
		Constraints: []*Constraint{
			{Name: "broken", Linear: LinearForm{Const: 5}, Bound: 0},
		},
	}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("infeasible base assignment should error")
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{N: 2, Cost: []float64{1}},
		{N: 2, Cost: []float64{1, 2}, Groups: [][]int{{}}},
		{N: 2, Cost: []float64{1, 2}, Groups: [][]int{{0, 5}}},
		{N: 2, Cost: []float64{1, 2}, Groups: [][]int{{0}, {0}}},
	}
	for i, p := range bad {
		if _, err := Solve(p, Options{}); err == nil {
			t.Errorf("problem %d should fail validation", i)
		}
	}
}

func TestNodeLimitReportsUnproven(t *testing.T) {
	p := &Problem{N: 30, Cost: make([]float64, 30)}
	for i := range p.Cost {
		p.Cost[i] = -1
	}
	// A constraint that keeps the solver from proving instantly.
	coeffs := map[int]float64{}
	for i := 0; i < 30; i++ {
		coeffs[i] = 1
	}
	p.Constraints = []*Constraint{linear(coeffs, 15, "cap")}
	sol, err := Solve(p, Options{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Proven {
		t.Error("10-node budget cannot prove a 30-variable problem")
	}
}

// TestSolverMatchesBruteForce is the core property test: on random small
// instances, branch-and-bound and exhaustive enumeration agree on the
// optimal objective.
func TestSolverMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2006))
	for trial := 0; trial < 300; trial++ {
		n := 6 + r.Intn(5)
		p := &Problem{N: n, Cost: make([]float64, n)}
		for i := range p.Cost {
			p.Cost[i] = math.Round(r.Float64()*20-12) / 2
		}
		// One or two groups.
		i := 0
		for g := 0; g < 1+r.Intn(2) && i+2 <= n; g++ {
			size := 2 + r.Intn(2)
			if i+size > n {
				size = n - i
			}
			var grp []int
			for k := 0; k < size; k++ {
				grp = append(grp, i)
				i++
			}
			p.Groups = append(p.Groups, grp)
		}
		// A linear budget over everything.
		coeffs := map[int]float64{}
		for v := 0; v < n; v++ {
			coeffs[v] = math.Round(r.Float64() * 6)
		}
		p.Constraints = append(p.Constraints, linear(coeffs, float64(2+r.Intn(8)), "budget"))
		// A product constraint over two slices of variables, with mixed
		// signs in the second factor.
		a := LinearForm{Coeffs: map[int]float64{}, Const: 1}
		b := LinearForm{Coeffs: map[int]float64{}, Const: float64(r.Intn(3))}
		for v := 0; v < n/2; v++ {
			a.Coeffs[v] = float64(r.Intn(3))
		}
		for v := n / 2; v < n; v++ {
			b.Coeffs[v] = math.Round(r.Float64()*8 - 3)
		}
		p.Constraints = append(p.Constraints, &Constraint{
			Name: "prod", Products: []ProductTerm{{A: a, B: b}}, Bound: float64(3 + r.Intn(10)),
		})
		// Keep the base feasible: both constraints allow x=0 by
		// construction (non-negative bounds, product at x=0 is
		// 1*Const <= bound when Const <= bound).
		if b.Const > 3 {
			b.Const = 0
		}

		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		want, err := BruteForce(p)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("trial %d: solver %f != brute force %f\nproblem: %+v",
				trial, got.Objective, want.Objective, p)
		}
		if !got.Proven {
			t.Fatalf("trial %d: small instance should be proven", trial)
		}
		// The returned assignment must actually be feasible and achieve
		// the objective.
		obj := 0.0
		for i, on := range got.X {
			if on {
				obj += p.Cost[i]
			}
		}
		if math.Abs(obj-got.Objective) > 1e-9 {
			t.Fatalf("trial %d: reported objective %f but assignment costs %f", trial, got.Objective, obj)
		}
		for _, c := range p.Constraints {
			if !c.Satisfied(got.X) {
				t.Fatalf("trial %d: returned assignment violates %q", trial, c.Name)
			}
		}
	}
}

// TestSolveByteReproducible locks the determinism contract: the same
// problem, with its coefficient maps populated in different insertion
// orders (and therefore different map iteration orders), must explore the
// same number of nodes and produce bit-identical objectives. This is what
// lets the autoarch -json golden test compare solver_nodes byte for byte.
func TestSolveByteReproducible(t *testing.T) {
	build := func(perm []int) *Problem {
		n := 10
		p := &Problem{
			N:      n,
			Cost:   []float64{-3.5, 1, -2, 0.5, -1.5, 2, -0.25, 4, -5, 0.75},
			Groups: [][]int{{0, 1, 2}, {3, 4}},
		}
		budget := &Constraint{Name: "budget", Bound: 7}
		for _, v := range perm {
			budget.Linear.Add(v, float64((v*7)%5)+0.1)
		}
		a := NewLinearForm()
		b := LinearForm{Const: 1}
		for _, v := range perm {
			if v < n/2 {
				a.Add(v, float64(v%3))
			} else {
				b.Add(v, float64(v%4)-1.5)
			}
		}
		p.Constraints = append(p.Constraints, budget,
			&Constraint{Name: "prod", Products: []ProductTerm{{A: a, B: b}}, Bound: 6})
		return p
	}

	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		{4, 0, 9, 2, 7, 5, 1, 8, 3, 6},
	}
	var ref *Solution
	for pi, perm := range perms {
		for rep := 0; rep < 5; rep++ {
			sol, err := Solve(build(perm), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = sol
				continue
			}
			if sol.Nodes != ref.Nodes {
				t.Errorf("perm %d rep %d: %d nodes, want %d", pi, rep, sol.Nodes, ref.Nodes)
			}
			if math.Float64bits(sol.Objective) != math.Float64bits(ref.Objective) {
				t.Errorf("perm %d rep %d: objective %x, want %x",
					pi, rep, math.Float64bits(sol.Objective), math.Float64bits(ref.Objective))
			}
			for i := range sol.X {
				if sol.X[i] != ref.X[i] {
					t.Errorf("perm %d rep %d: assignment differs at %d", pi, rep, i)
					break
				}
			}
		}
	}
}

func TestConstraintEvalAndBounds(t *testing.T) {
	a := LinearForm{Coeffs: map[int]float64{0: 2, 1: -1}, Const: 1}
	b := LinearForm{Coeffs: map[int]float64{2: 3}, Const: 2}
	c := &Constraint{
		Linear:   LinearForm{Coeffs: map[int]float64{0: 1}},
		Products: []ProductTerm{{A: a, B: b}},
		Bound:    100,
	}
	x := []bool{true, false, true}
	// 1*1 + (1+2)*(2+3) = 1 + 15 = 16.
	if got := c.Eval(x); got != 16 {
		t.Errorf("Eval = %f, want 16", got)
	}
	// With nothing decided, the lower bound must not exceed any
	// achievable value.
	decided := []bool{false, false, false}
	lb := compileConstraint(c).lowerBound(make([]bool, 3), decided)
	for mask := 0; mask < 8; mask++ {
		y := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if v := c.Eval(y); lb > v+1e-9 {
			t.Errorf("lower bound %f exceeds achievable %f at %v", lb, v, y)
		}
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	p := &Problem{
		N:    1,
		Cost: []float64{-1},
		Constraints: []*Constraint{
			{Name: "broken", Linear: LinearForm{Const: 5}, Bound: 0},
		},
	}
	if _, err := BruteForce(p); err == nil {
		t.Error("infeasible problem should error in brute force")
	}
}
