package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCondHoldsTruthTable(t *testing.T) {
	// Exercise every condition against every ICC combination and check
	// against the SPARC V8 manual's boolean definitions.
	for n := 0; n < 16; n++ {
		icc := ICC{N: n&8 != 0, Z: n&4 != 0, V: n&2 != 0, C: n&1 != 0}
		checks := map[Cond]bool{
			CondN:   false,
			CondA:   true,
			CondE:   icc.Z,
			CondNE:  !icc.Z,
			CondL:   icc.N != icc.V,
			CondGE:  icc.N == icc.V,
			CondLE:  icc.Z || (icc.N != icc.V),
			CondG:   !icc.Z && (icc.N == icc.V),
			CondCS:  icc.C,
			CondCC:  !icc.C,
			CondLEU: icc.C || icc.Z,
			CondGU:  !icc.C && !icc.Z,
			CondNeg: icc.N,
			CondPos: !icc.N,
			CondVS:  icc.V,
			CondVC:  !icc.V,
		}
		for c, want := range checks {
			if got := c.Holds(icc); got != want {
				t.Errorf("cond %s with %+v = %t, want %t", c, icc, got, want)
			}
		}
	}
}

func TestCondNegateIsComplement(t *testing.T) {
	// Property: for every condition and every ICC state, c and c.Negate()
	// disagree.
	for c := Cond(0); c < 16; c++ {
		for n := 0; n < 16; n++ {
			icc := ICC{N: n&8 != 0, Z: n&4 != 0, V: n&2 != 0, C: n&1 != 0}
			if c.Holds(icc) == c.Negate().Holds(icc) {
				t.Fatalf("cond %s and its negation %s agree on %+v", c, c.Negate(), icc)
			}
		}
	}
}

// randomInstr generates a random valid instruction for round-trip testing.
func randomInstr(r *rand.Rand) Instr {
	aluOps := []Opcode{
		OpAdd, OpAddCC, OpSub, OpSubCC, OpAnd, OpAndCC, OpOr, OpOrCC,
		OpXor, OpXorCC, OpAndN, OpOrN, OpXnor, OpSll, OpSrl, OpSra,
		OpUMul, OpSMul, OpUMulCC, OpSMulCC, OpUDiv, OpSDiv,
		OpJmpl, OpSave, OpRestore, OpRdY, OpWrY,
	}
	memOps := []Opcode{OpLd, OpLdUB, OpLdSB, OpLdUH, OpLdSH, OpSt, OpStB, OpStH}

	switch r.Intn(5) {
	case 0: // ALU
		in := Instr{
			Op:  aluOps[r.Intn(len(aluOps))],
			Rd:  uint8(r.Intn(NumRegs)),
			Rs1: uint8(r.Intn(NumRegs)),
		}
		if r.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = int32(r.Intn(simm13Max-simm13Min+1) + simm13Min)
		} else {
			in.Rs2 = uint8(r.Intn(NumRegs))
		}
		return in
	case 1: // memory
		in := Instr{
			Op:  memOps[r.Intn(len(memOps))],
			Rd:  uint8(r.Intn(NumRegs)),
			Rs1: uint8(r.Intn(NumRegs)),
		}
		if r.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = int32(r.Intn(simm13Max-simm13Min+1) + simm13Min)
		} else {
			in.Rs2 = uint8(r.Intn(NumRegs))
		}
		return in
	case 2: // sethi
		return Instr{Op: OpSethi, Rd: uint8(r.Intn(NumRegs)), Imm: int32(r.Intn(imm22Max + 1))}
	case 3: // branch
		return Instr{
			Op:    OpBicc,
			Cond:  Cond(r.Intn(16)),
			Annul: r.Intn(2) == 0,
			Disp:  int32(r.Intn(disp22Max-disp22Min+1) + disp22Min),
		}
	default: // call
		return Instr{Op: OpCall, Disp: int32(r.Intn(1<<20) - 1<<19)}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		in := randomInstr(r)
		word, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out, err := Decode(word)
		if err != nil {
			t.Fatalf("decode %#08x (%+v): %v", word, in, err)
		}
		if out != in {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v\n word %#08x", in, out, word)
		}
	}
}

func TestDecodeEncodeRoundTripQuick(t *testing.T) {
	// Property: any word that decodes successfully re-encodes to itself
	// (modulo fields the subset ignores, which Decode must zero).
	f := func(word uint32) bool {
		in, err := Decode(word)
		if err != nil {
			return true // undecodable words are out of scope
		}
		// Mask the don't-care bits our decoder ignores before comparing:
		// the asi field (bits 5-12) of register-form format-3 words, the
		// reserved bit 29 of Ticc, and rd of WrY-class and Ticc forms is
		// meaningful, so only asi handling is lossy. Re-encode and
		// re-decode instead: the semantic struct must be stable.
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		if err != nil {
			return false
		}
		return in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestTiccEncoding(t *testing.T) {
	in := Instr{Op: OpTicc, Cond: CondA, UseImm: true, Imm: 0}
	w, err := Encode(in)
	if err != nil {
		t.Fatalf("encode ta 0: %v", err)
	}
	out, err := Decode(w)
	if err != nil {
		t.Fatalf("decode ta 0: %v", err)
	}
	if out.Op != OpTicc || out.Cond != CondA || !out.UseImm || out.Imm != 0 {
		t.Errorf("ta 0 round trip: %+v", out)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Instr{
		{Op: OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 5000},    // > simm13
		{Op: OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: -5000},   // < simm13
		{Op: OpSethi, Rd: 1, Imm: 1 << 23},                     // > imm22
		{Op: OpSethi, Rd: 1, Imm: -1},                          // negative imm22
		{Op: OpBicc, Cond: CondE, Disp: 1 << 22},               // > disp22
		{Op: OpCall, Disp: 1 << 30},                            // > disp30
		{Op: OpAdd, Rd: 40, Rs1: 1, Rs2: 2},                    // bad register
		{Op: OpInvalid},                                        // no encoding
		{Op: Opcode(999), Rd: 1, Rs1: 1, UseImm: true, Imm: 1}, // unknown
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("expected encode error for %+v", in)
		}
	}
}

func TestDecodeRejectsUnsupported(t *testing.T) {
	// op=00 with op2 other than branch/sethi (e.g. unimp = op2 0).
	if _, err := Decode(0x00000000); err == nil {
		t.Error("unimp should not decode")
	}
	// op=10 with an op3 outside the subset (e.g. 0x3F).
	if _, err := Decode(2<<30 | 0x3F<<19); err == nil {
		t.Error("unknown op3 should not decode")
	}
	// op=11 LDD (0x03) is outside the subset.
	if _, err := Decode(3<<30 | 0x03<<19); err == nil {
		t.Error("ldd should not decode")
	}
}

func TestNop(t *testing.T) {
	if !IsNop(NopWord) {
		t.Error("NopWord must satisfy IsNop")
	}
	in, err := Decode(NopWord)
	if err != nil {
		t.Fatalf("decode nop: %v", err)
	}
	if in.Op != OpSethi || in.Rd != RegG0 || in.Imm != 0 {
		t.Errorf("nop decodes to %+v", in)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint32
		bits uint
		want int32
	}{
		{0xFFF, 12, -1}, {0x1FFF, 13, -1}, {0x1000, 13, -4096},
		{0x0FFF, 13, 4095}, {0, 13, 0},
		{0x3FFFFF, 22, -1}, {0x200000, 22, -2097152}, {0x1FFFFF, 22, 2097151},
	}
	for _, c := range cases {
		if got := signExtend(c.v, c.bits); got != c.want {
			t.Errorf("signExtend(%#x, %d) = %d, want %d", c.v, c.bits, got, c.want)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpLd.IsLoad() || OpSt.IsLoad() || OpAdd.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpStB.IsStore() || OpLdUB.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpSubCC.SetsICC() || OpSub.SetsICC() || !OpUMulCC.SetsICC() {
		t.Error("SetsICC misclassifies")
	}
	if !OpUMul.IsMul() || !OpSMulCC.IsMul() || OpUDiv.IsMul() {
		t.Error("IsMul misclassifies")
	}
	if !OpSDiv.IsDiv() || OpSMul.IsDiv() {
		t.Error("IsDiv misclassifies")
	}
	for _, o := range []Opcode{OpBicc, OpCall, OpJmpl, OpTicc} {
		if !o.IsControlTransfer() {
			t.Errorf("%s should be a control transfer", o)
		}
	}
	if OpAdd.IsControlTransfer() || OpLd.IsControlTransfer() {
		t.Error("IsControlTransfer misclassifies")
	}
}

func TestOpcodeStringsNamed(t *testing.T) {
	for op := OpInvalid; op < numOpcodes; op++ {
		if _, ok := opcodeNames[op]; !ok {
			t.Errorf("opcode %d has no name", int(op))
		}
	}
}
