// Package isa defines the SPARC V8 instruction subset executed by the
// LEON2-like simulator (the paper's Section 2 platform is a LEON2, a
// SPARC V8 soft core): 32-bit instruction words in the three SPARC
// formats, a semantic opcode enumeration, integer condition codes,
// encoding, decoding, and disassembly.
//
// The subset covers everything the benchmark programs and the window
// overflow/underflow machinery need: the ALU (with and without condition
// codes), UMUL/SMUL/UDIV/SDIV, the Y register, loads and stores of word,
// half and byte width, SETHI, delayed branches with the annul bit, CALL,
// JMPL, SAVE/RESTORE and Ticc traps.
package isa

import "fmt"

// Number of architectural registers visible at once (8 globals + 24
// windowed).
const (
	NumRegs     = 32
	RegG0       = 0  // hardwired zero
	RegO7       = 15 // CALL writes its return address here
	RegSP       = 14 // %o6, stack pointer by convention
	RegFP       = 30 // %i6, frame pointer by convention
	RegI7       = 31 // return address of the caller's CALL
	WordBytes   = 4
	InstrBytes  = 4
	WindowShift = 16 // registers rotated per SAVE/RESTORE
)

// Opcode is the semantic operation of a decoded instruction.
type Opcode int

const (
	OpInvalid Opcode = iota

	// ALU register/immediate operations (format 3, op=10).
	OpAdd
	OpAddCC
	OpSub
	OpSubCC
	OpAnd
	OpAndCC
	OpOr
	OpOrCC
	OpXor
	OpXorCC
	OpAndN
	OpOrN
	OpXnor
	OpSll
	OpSrl
	OpSra
	OpUMul
	OpSMul
	OpUMulCC
	OpSMulCC
	OpUDiv
	OpSDiv

	// Y register access.
	OpRdY
	OpWrY

	// Memory (format 3, op=11).
	OpLd   // load word
	OpLdUB // load unsigned byte
	OpLdSB // load signed byte
	OpLdUH // load unsigned half
	OpLdSH // load signed half
	OpSt   // store word
	OpStB  // store byte
	OpStH  // store half

	// Control transfer.
	OpSethi
	OpBicc // conditional branch with annul bit
	OpCall
	OpJmpl
	OpSave
	OpRestore
	OpTicc // trap on condition (TA 0 halts the simulator)

	numOpcodes
)

var opcodeNames = map[Opcode]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpAddCC: "addcc",
	OpSub: "sub", OpSubCC: "subcc",
	OpAnd: "and", OpAndCC: "andcc",
	OpOr: "or", OpOrCC: "orcc",
	OpXor: "xor", OpXorCC: "xorcc",
	OpAndN: "andn", OpOrN: "orn", OpXnor: "xnor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpUMul: "umul", OpSMul: "smul",
	OpUMulCC: "umulcc", OpSMulCC: "smulcc",
	OpUDiv: "udiv", OpSDiv: "sdiv",
	OpRdY: "rd", OpWrY: "wr",
	OpLd: "ld", OpLdUB: "ldub", OpLdSB: "ldsb", OpLdUH: "lduh", OpLdSH: "ldsh",
	OpSt: "st", OpStB: "stb", OpStH: "sth",
	OpSethi: "sethi", OpBicc: "b", OpCall: "call", OpJmpl: "jmpl",
	OpSave: "save", OpRestore: "restore", OpTicc: "t",
}

func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// IsLoad reports whether the opcode reads data memory.
func (o Opcode) IsLoad() bool {
	switch o {
	case OpLd, OpLdUB, OpLdSB, OpLdUH, OpLdSH:
		return true
	}
	return false
}

// IsStore reports whether the opcode writes data memory.
func (o Opcode) IsStore() bool {
	switch o {
	case OpSt, OpStB, OpStH:
		return true
	}
	return false
}

// IsBranch reports whether the opcode is a conditional branch (Bicc).
func (o Opcode) IsBranch() bool { return o == OpBicc }

// IsControlTransfer reports whether the opcode can change control flow.
func (o Opcode) IsControlTransfer() bool {
	switch o {
	case OpBicc, OpCall, OpJmpl, OpTicc:
		return true
	}
	return false
}

// SetsICC reports whether the opcode writes the integer condition codes.
func (o Opcode) SetsICC() bool {
	switch o {
	case OpAddCC, OpSubCC, OpAndCC, OpOrCC, OpXorCC, OpUMulCC, OpSMulCC:
		return true
	}
	return false
}

// IsMul reports whether the opcode uses the hardware multiplier.
func (o Opcode) IsMul() bool {
	switch o {
	case OpUMul, OpSMul, OpUMulCC, OpSMulCC:
		return true
	}
	return false
}

// IsDiv reports whether the opcode uses the hardware divider.
func (o Opcode) IsDiv() bool { return o == OpUDiv || o == OpSDiv }

// Cond is a SPARC branch/trap condition (the 4-bit cond field of Bicc and
// Ticc).
type Cond uint8

const (
	CondN   Cond = 0x0 // never
	CondE   Cond = 0x1 // equal (Z)
	CondLE  Cond = 0x2 // less or equal (Z or (N xor V))
	CondL   Cond = 0x3 // less (N xor V)
	CondLEU Cond = 0x4 // less or equal unsigned (C or Z)
	CondCS  Cond = 0x5 // carry set / less unsigned
	CondNeg Cond = 0x6 // negative
	CondVS  Cond = 0x7 // overflow set
	CondA   Cond = 0x8 // always
	CondNE  Cond = 0x9 // not equal
	CondG   Cond = 0xA // greater
	CondGE  Cond = 0xB // greater or equal
	CondGU  Cond = 0xC // greater unsigned
	CondCC  Cond = 0xD // carry clear / greater or equal unsigned
	CondPos Cond = 0xE // positive
	CondVC  Cond = 0xF // overflow clear
)

var condNames = [16]string{
	"n", "e", "le", "l", "leu", "cs", "neg", "vs",
	"a", "ne", "g", "ge", "gu", "cc", "pos", "vc",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", int(c))
}

// ICC is the SPARC integer condition code register: negative, zero,
// overflow and carry.
type ICC struct {
	N, Z, V, C bool
}

// Holds evaluates the condition against the condition codes, per the
// SPARC V8 Bicc truth table.
func (c Cond) Holds(icc ICC) bool {
	switch c {
	case CondN:
		return false
	case CondE:
		return icc.Z
	case CondLE:
		return icc.Z || (icc.N != icc.V)
	case CondL:
		return icc.N != icc.V
	case CondLEU:
		return icc.C || icc.Z
	case CondCS:
		return icc.C
	case CondNeg:
		return icc.N
	case CondVS:
		return icc.V
	case CondA:
		return true
	case CondNE:
		return !icc.Z
	case CondG:
		return !(icc.Z || (icc.N != icc.V))
	case CondGE:
		return icc.N == icc.V
	case CondGU:
		return !(icc.C || icc.Z)
	case CondCC:
		return !icc.C
	case CondPos:
		return !icc.N
	case CondVC:
		return !icc.V
	default:
		return false
	}
}

// Negate returns the logically opposite condition.
func (c Cond) Negate() Cond { return c ^ 0x8 }

// Instr is a decoded instruction. Exactly one of the addressing forms is
// meaningful depending on Op:
//
//   - ALU/memory/JMPL/SAVE/RESTORE/Ticc: Rd, Rs1 and either Rs2 (UseImm
//     false) or Imm (UseImm true, sign-extended simm13).
//   - SETHI: Rd and Imm (the 22-bit immediate, NOT pre-shifted).
//   - Bicc: Cond, Annul and Disp (word displacement relative to the branch).
//   - CALL: Disp (word displacement).
type Instr struct {
	Op     Opcode
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Imm    int32
	UseImm bool
	Cond   Cond
	Annul  bool
	Disp   int32
}
