package isa

import "fmt"

// SPARC V8 op3 field values for format-3 instructions with op=10
// (arithmetic) and op=11 (memory).
const (
	op3Add     = 0x00
	op3And     = 0x01
	op3Or      = 0x02
	op3Xor     = 0x03
	op3Sub     = 0x04
	op3AndN    = 0x05
	op3OrN     = 0x06
	op3Xnor    = 0x07
	op3UMul    = 0x0A
	op3SMul    = 0x0B
	op3UDiv    = 0x0E
	op3SDiv    = 0x0F
	op3AddCC   = 0x10
	op3AndCC   = 0x11
	op3OrCC    = 0x12
	op3XorCC   = 0x13
	op3SubCC   = 0x14
	op3UMulCC  = 0x1A
	op3SMulCC  = 0x1B
	op3Sll     = 0x25
	op3Srl     = 0x26
	op3Sra     = 0x27
	op3RdY     = 0x28
	op3WrY     = 0x30
	op3Jmpl    = 0x38
	op3Ticc    = 0x3A
	op3Save    = 0x3C
	op3Restore = 0x3D

	op3Ld   = 0x00
	op3LdUB = 0x01
	op3LdUH = 0x02
	op3St   = 0x04
	op3StB  = 0x05
	op3StH  = 0x06
	op3LdSB = 0x09
	op3LdSH = 0x0A
)

var aluOp3 = map[Opcode]uint32{
	OpAdd: op3Add, OpAnd: op3And, OpOr: op3Or, OpXor: op3Xor,
	OpSub: op3Sub, OpAndN: op3AndN, OpOrN: op3OrN, OpXnor: op3Xnor,
	OpUMul: op3UMul, OpSMul: op3SMul, OpUDiv: op3UDiv, OpSDiv: op3SDiv,
	OpAddCC: op3AddCC, OpAndCC: op3AndCC, OpOrCC: op3OrCC, OpXorCC: op3XorCC,
	OpSubCC: op3SubCC, OpUMulCC: op3UMulCC, OpSMulCC: op3SMulCC,
	OpSll: op3Sll, OpSrl: op3Srl, OpSra: op3Sra,
	OpRdY: op3RdY, OpWrY: op3WrY,
	OpJmpl: op3Jmpl, OpTicc: op3Ticc, OpSave: op3Save, OpRestore: op3Restore,
}

var memOp3 = map[Opcode]uint32{
	OpLd: op3Ld, OpLdUB: op3LdUB, OpLdUH: op3LdUH,
	OpSt: op3St, OpStB: op3StB, OpStH: op3StH,
	OpLdSB: op3LdSB, OpLdSH: op3LdSH,
}

var op3ToALU = invert(aluOp3)
var op3ToMem = invert(memOp3)

func invert(m map[Opcode]uint32) map[uint32]Opcode {
	r := make(map[uint32]Opcode, len(m))
	for k, v := range m {
		r[v] = k
	}
	return r
}

const (
	simm13Max = 1<<12 - 1
	simm13Min = -(1 << 12)
	disp22Max = 1<<21 - 1
	disp22Min = -(1 << 21)
	disp30Max = 1<<29 - 1
	disp30Min = -(1 << 29)
	imm22Max  = 1<<22 - 1
)

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Encode produces the 32-bit SPARC instruction word for in.
func Encode(in Instr) (uint32, error) {
	switch in.Op {
	case OpCall:
		if in.Disp < disp30Min || in.Disp > disp30Max {
			return 0, fmt.Errorf("isa: call displacement %d out of disp30 range", in.Disp)
		}
		return 1<<30 | uint32(in.Disp)&0x3FFFFFFF, nil

	case OpSethi:
		if in.Imm < 0 || in.Imm > imm22Max {
			return 0, fmt.Errorf("isa: sethi immediate %d out of imm22 range", in.Imm)
		}
		return uint32(in.Rd)<<25 | 0x4<<22 | uint32(in.Imm), nil

	case OpBicc:
		if in.Disp < disp22Min || in.Disp > disp22Max {
			return 0, fmt.Errorf("isa: branch displacement %d out of disp22 range", in.Disp)
		}
		w := uint32(0x2)<<22 | uint32(in.Cond)<<25 | uint32(in.Disp)&0x3FFFFF
		if in.Annul {
			w |= 1 << 29
		}
		return w, nil
	}

	if in.Op == OpTicc {
		// Ticc carries its condition in the rd field.
		in.Rd = uint8(in.Cond)
		return encodeFormat3(2, op3Ticc, in)
	}
	if op3, ok := memOp3[in.Op]; ok {
		return encodeFormat3(3, op3, in)
	}
	if op3, ok := aluOp3[in.Op]; ok {
		return encodeFormat3(2, op3, in)
	}
	return 0, fmt.Errorf("isa: cannot encode opcode %s", in.Op)
}

func encodeFormat3(op, op3 uint32, in Instr) (uint32, error) {
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %s", in.Op)
	}
	w := op<<30 | uint32(in.Rd)<<25 | op3<<19 | uint32(in.Rs1)<<14
	if in.UseImm {
		if in.Imm < simm13Min || in.Imm > simm13Max {
			return 0, fmt.Errorf("isa: immediate %d out of simm13 range in %s", in.Imm, in.Op)
		}
		w |= 1<<13 | uint32(in.Imm)&0x1FFF
	} else {
		w |= uint32(in.Rs2)
	}
	return w, nil
}

// Decode interprets a 32-bit SPARC instruction word.
func Decode(word uint32) (Instr, error) {
	op := word >> 30
	switch op {
	case 0: // format 2: SETHI / Bicc
		op2 := word >> 22 & 0x7
		switch op2 {
		case 0x4: // SETHI
			return Instr{
				Op:  OpSethi,
				Rd:  uint8(word >> 25 & 0x1F),
				Imm: int32(word & 0x3FFFFF),
			}, nil
		case 0x2: // Bicc
			return Instr{
				Op:    OpBicc,
				Cond:  Cond(word >> 25 & 0xF),
				Annul: word>>29&1 == 1,
				Disp:  signExtend(word&0x3FFFFF, 22),
			}, nil
		}
		return Instr{}, fmt.Errorf("isa: unsupported format-2 op2 %#x in word %#08x", op2, word)

	case 1: // format 1: CALL
		return Instr{Op: OpCall, Disp: signExtend(word&0x3FFFFFFF, 30)}, nil

	case 2, 3: // format 3
		op3 := word >> 19 & 0x3F
		var opcode Opcode
		var ok bool
		if op == 2 {
			opcode, ok = op3ToALU[op3]
		} else {
			opcode, ok = op3ToMem[op3]
		}
		if !ok {
			return Instr{}, fmt.Errorf("isa: unsupported op3 %#x (op=%d) in word %#08x", op3, op, word)
		}
		in := Instr{
			Op:  opcode,
			Rd:  uint8(word >> 25 & 0x1F),
			Rs1: uint8(word >> 14 & 0x1F),
		}
		if opcode == OpTicc {
			in.Cond = Cond(word >> 25 & 0xF)
			in.Rd = 0
		}
		if word>>13&1 == 1 {
			in.UseImm = true
			in.Imm = signExtend(word&0x1FFF, 13)
		} else {
			in.Rs2 = uint8(word & 0x1F)
		}
		return in, nil
	}
	return Instr{}, fmt.Errorf("isa: unreachable op %d", op)
}

// NopWord is the canonical SPARC NOP encoding: sethi 0, %g0.
const NopWord uint32 = 0x01000000

// IsNop reports whether the word is the canonical NOP.
func IsNop(word uint32) bool { return word == NopWord }
