package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// regNames maps architectural register numbers to the conventional SPARC
// names: %g0-7 globals, %o0-7 outs, %l0-7 locals, %i0-7 ins.
var regNames = [NumRegs]string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

// RegName returns the conventional assembly name of register r.
func RegName(r uint8) string {
	if int(r) < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("%%r%d", r)
}

// ParseReg converts an assembly register name (with or without the leading
// %) into its architectural number. Accepted forms: g0-g7, o0-o7, l0-l7,
// i0-i7, r0-r31, sp, fp.
func ParseReg(name string) (uint8, error) {
	s := strings.ToLower(strings.TrimPrefix(name, "%"))
	switch s {
	case "sp":
		return RegSP, nil
	case "fp":
		return RegFP, nil
	}
	if len(s) < 2 {
		return 0, fmt.Errorf("isa: invalid register %q", name)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("isa: invalid register %q", name)
	}
	var base int
	switch s[0] {
	case 'g':
		base = 0
	case 'o':
		base = 8
	case 'l':
		base = 16
	case 'i':
		base = 24
	case 'r':
		if n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("isa: register %q out of range", name)
		}
		return uint8(n), nil
	default:
		return 0, fmt.Errorf("isa: invalid register %q", name)
	}
	if n < 0 || n > 7 {
		return 0, fmt.Errorf("isa: register %q out of range", name)
	}
	return uint8(base + n), nil
}
