package isa

import (
	"strings"
	"testing"
)

func TestParseRegRoundTrip(t *testing.T) {
	for r := uint8(0); r < NumRegs; r++ {
		name := RegName(r)
		got, err := ParseReg(name)
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", name, err)
		}
		if got != r {
			t.Errorf("ParseReg(%q) = %d, want %d", name, got, r)
		}
	}
}

func TestParseRegForms(t *testing.T) {
	cases := map[string]uint8{
		"%g0": 0, "g0": 0, "%G1": 1,
		"%o0": 8, "%o6": 14, "%sp": 14, "sp": 14,
		"%l0": 16, "%l7": 23,
		"%i0": 24, "%i6": 30, "%fp": 30, "%i7": 31,
		"%r0": 0, "%r31": 31, "r15": 15,
	}
	for name, want := range cases {
		got, err := ParseReg(name)
		if err != nil {
			t.Errorf("ParseReg(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseReg(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestParseRegErrors(t *testing.T) {
	for _, bad := range []string{"", "%", "%x3", "%g8", "%o9", "%r32", "%gg", "%g", "foo"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) should error", bad)
		}
	}
}

func TestDisassembleSpotChecks(t *testing.T) {
	cases := []struct {
		in   Instr
		pc   uint32
		want string
	}{
		{Instr{Op: OpAdd, Rd: 9, Rs1: 8, UseImm: true, Imm: 4}, 0, "add %o0, 4, %o1"},
		{Instr{Op: OpSubCC, Rd: 0, Rs1: 9, UseImm: true, Imm: 100}, 0, "cmp %o1, 100"},
		{Instr{Op: OpOr, Rd: 10, Rs1: 0, UseImm: true, Imm: 7}, 0, "mov 7, %o2"},
		{Instr{Op: OpOr, Rd: 10, Rs1: 0, Rs2: 0}, 0, "clr %o2"},
		{Instr{Op: OpLd, Rd: 9, Rs1: 16, UseImm: true, Imm: 8}, 0, "ld [%l0+8], %o1"},
		{Instr{Op: OpSt, Rd: 9, Rs1: 16, UseImm: true, Imm: 0}, 0, "st %o1, [%l0]"},
		{Instr{Op: OpBicc, Cond: CondNE, Disp: 4}, 0x100, "bne 0x110"},
		{Instr{Op: OpBicc, Cond: CondA, Annul: true, Disp: -1}, 0x100, "ba,a 0xfc"},
		{Instr{Op: OpCall, Disp: 16}, 0x1000, "call 0x1040"},
		{Instr{Op: OpJmpl, Rd: 0, Rs1: RegI7, UseImm: true, Imm: 8}, 0, "ret"},
		{Instr{Op: OpJmpl, Rd: 0, Rs1: RegO7, UseImm: true, Imm: 8}, 0, "retl"},
		{Instr{Op: OpTicc, Cond: CondA, UseImm: true, Imm: 0}, 0, "ta 0"},
		{Instr{Op: OpRdY, Rd: 1}, 0, "rd %y, %g1"},
		{Instr{Op: OpSethi, Rd: 0, Imm: 0}, 0, "nop"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in, c.pc); got != c.want {
			t.Errorf("Disassemble(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDisassembleWordFallback(t *testing.T) {
	got := DisassembleWord(0x00000000, 0)
	if !strings.HasPrefix(got, ".word") {
		t.Errorf("undecodable word should render as .word, got %q", got)
	}
}

func TestDisassembleRange(t *testing.T) {
	words := []uint32{NopWord, NopWord}
	out := DisassembleRange(words, 0x40000000)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], "40000000") || !strings.Contains(lines[1], "40000004") {
		t.Errorf("addresses wrong:\n%s", out)
	}
}
