package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a decoded instruction in SPARC assembly syntax.
// pc is the address of the instruction, used to resolve branch and call
// targets to absolute addresses.
func Disassemble(in Instr, pc uint32) string {
	op2 := func() string {
		if in.UseImm {
			return fmt.Sprintf("%d", in.Imm)
		}
		return RegName(in.Rs2)
	}
	addr := func() string {
		switch {
		case in.UseImm && in.Imm == 0:
			return fmt.Sprintf("[%s]", RegName(in.Rs1))
		case in.UseImm:
			return fmt.Sprintf("[%s%+d]", RegName(in.Rs1), in.Imm)
		case in.Rs2 == RegG0:
			return fmt.Sprintf("[%s]", RegName(in.Rs1))
		default:
			return fmt.Sprintf("[%s+%s]", RegName(in.Rs1), RegName(in.Rs2))
		}
	}

	switch {
	case in.Op == OpSethi:
		if in.Rd == RegG0 && in.Imm == 0 {
			return "nop"
		}
		return fmt.Sprintf("sethi %%hi(0x%x), %s", uint32(in.Imm)<<10, RegName(in.Rd))

	case in.Op == OpBicc:
		mn := "b" + in.Cond.String()
		if in.Cond == CondA {
			mn = "ba"
		}
		if in.Annul {
			mn += ",a"
		}
		return fmt.Sprintf("%s 0x%x", mn, pc+uint32(in.Disp)*InstrBytes)

	case in.Op == OpCall:
		return fmt.Sprintf("call 0x%x", pc+uint32(in.Disp)*InstrBytes)

	case in.Op == OpTicc:
		return fmt.Sprintf("t%s %s", in.Cond, op2())

	case in.Op == OpJmpl:
		if in.Rd == RegG0 {
			if in.Rs1 == RegI7 && in.UseImm && in.Imm == 8 {
				return "ret"
			}
			if in.Rs1 == RegO7 && in.UseImm && in.Imm == 8 {
				return "retl"
			}
			return fmt.Sprintf("jmp %s%+d", RegName(in.Rs1), in.Imm)
		}
		return fmt.Sprintf("jmpl %s%+d, %s", RegName(in.Rs1), in.Imm, RegName(in.Rd))

	case in.Op == OpRdY:
		return fmt.Sprintf("rd %%y, %s", RegName(in.Rd))

	case in.Op == OpWrY:
		return fmt.Sprintf("wr %s, %s, %%y", RegName(in.Rs1), op2())

	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %s", in.Op, addr(), RegName(in.Rd))

	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %s", in.Op, RegName(in.Rd), addr())

	default:
		// Generic three-operand ALU form, with common pseudo-op sugar.
		if in.Op == OpOr && in.Rs1 == RegG0 && !in.UseImm && in.Rs2 == RegG0 && in.Rd != RegG0 {
			return fmt.Sprintf("clr %s", RegName(in.Rd))
		}
		if in.Op == OpOr && in.Rs1 == RegG0 {
			return fmt.Sprintf("mov %s, %s", op2(), RegName(in.Rd))
		}
		if in.Op == OpSubCC && in.Rd == RegG0 {
			return fmt.Sprintf("cmp %s, %s", RegName(in.Rs1), op2())
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rs1), op2(), RegName(in.Rd))
	}
}

// DisassembleWord decodes and disassembles a raw instruction word,
// rendering undecodable words as .word directives.
func DisassembleWord(word, pc uint32) string {
	in, err := Decode(word)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", word)
	}
	return Disassemble(in, pc)
}

// DisassembleRange renders a sequence of instruction words starting at
// base, one per line with addresses.
func DisassembleRange(words []uint32, base uint32) string {
	var b strings.Builder
	for i, w := range words {
		pc := base + uint32(i)*InstrBytes
		fmt.Fprintf(&b, "%08x:  %08x  %s\n", pc, w, DisassembleWord(w, pc))
	}
	return b.String()
}
