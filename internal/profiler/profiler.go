// Package profiler is the reproduction's analogue of the Liquid
// Architecture platform's statistics module (paper Section 2.3, the
// source of every runtime measurement the technique consumes): a
// cycle-accurate, non-intrusive profile of an application run, with the
// stall budget broken down by cause.
package profiler

import (
	"fmt"
	"strings"
)

// DefaultClockHz is the processor clock the paper's board runs at; it is
// used only to convert cycles into the "seconds" the paper's tables print.
const DefaultClockHz = 25_000_000

// Stats is the profile of one run. Cycle counters are exact; the sum of
// the stall categories plus one cycle per instruction equals Cycles.
type Stats struct {
	Cycles       uint64
	Instructions uint64

	// Instruction mix.
	Loads, Stores    uint64
	Branches         uint64
	TakenBranches    uint64
	AnnulledSlots    uint64
	Calls, Jumps     uint64
	Mults, Divs      uint64
	Saves, Restores  uint64
	WindowOverflows  uint64
	WindowUnderflows uint64

	// Stall/latency budget, in cycles.
	ICacheStall     uint64
	DCacheStall     uint64
	WriteBufStall   uint64
	StoreCycles     uint64 // extra non-stall cycles of store instructions
	LoadCycles      uint64 // extra non-stall cycles of load instructions
	LoadInterlock   uint64
	ICCHoldStall    uint64
	BranchPenalty   uint64
	JumpPenalty     uint64
	MulStall        uint64
	DivStall        uint64
	WindowTrapStall uint64
	DecodeStall     uint64
	HaltCycles      uint64
}

// Sub returns the profile delta s - o, field by field. With o a snapshot
// taken earlier in the same run, the result is the profile of the
// stretch in between — the interval-profiling primitive.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:           s.Cycles - o.Cycles,
		Instructions:     s.Instructions - o.Instructions,
		Loads:            s.Loads - o.Loads,
		Stores:           s.Stores - o.Stores,
		Branches:         s.Branches - o.Branches,
		TakenBranches:    s.TakenBranches - o.TakenBranches,
		AnnulledSlots:    s.AnnulledSlots - o.AnnulledSlots,
		Calls:            s.Calls - o.Calls,
		Jumps:            s.Jumps - o.Jumps,
		Mults:            s.Mults - o.Mults,
		Divs:             s.Divs - o.Divs,
		Saves:            s.Saves - o.Saves,
		Restores:         s.Restores - o.Restores,
		WindowOverflows:  s.WindowOverflows - o.WindowOverflows,
		WindowUnderflows: s.WindowUnderflows - o.WindowUnderflows,
		ICacheStall:      s.ICacheStall - o.ICacheStall,
		DCacheStall:      s.DCacheStall - o.DCacheStall,
		WriteBufStall:    s.WriteBufStall - o.WriteBufStall,
		StoreCycles:      s.StoreCycles - o.StoreCycles,
		LoadCycles:       s.LoadCycles - o.LoadCycles,
		LoadInterlock:    s.LoadInterlock - o.LoadInterlock,
		ICCHoldStall:     s.ICCHoldStall - o.ICCHoldStall,
		BranchPenalty:    s.BranchPenalty - o.BranchPenalty,
		JumpPenalty:      s.JumpPenalty - o.JumpPenalty,
		MulStall:         s.MulStall - o.MulStall,
		DivStall:         s.DivStall - o.DivStall,
		WindowTrapStall:  s.WindowTrapStall - o.WindowTrapStall,
		DecodeStall:      s.DecodeStall - o.DecodeStall,
		HaltCycles:       s.HaltCycles - o.HaltCycles,
	}
}

// Add accumulates o into s, field by field — the inverse of Sub, used to
// aggregate interval profiles back into per-phase totals.
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.Instructions += o.Instructions
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Branches += o.Branches
	s.TakenBranches += o.TakenBranches
	s.AnnulledSlots += o.AnnulledSlots
	s.Calls += o.Calls
	s.Jumps += o.Jumps
	s.Mults += o.Mults
	s.Divs += o.Divs
	s.Saves += o.Saves
	s.Restores += o.Restores
	s.WindowOverflows += o.WindowOverflows
	s.WindowUnderflows += o.WindowUnderflows
	s.ICacheStall += o.ICacheStall
	s.DCacheStall += o.DCacheStall
	s.WriteBufStall += o.WriteBufStall
	s.StoreCycles += o.StoreCycles
	s.LoadCycles += o.LoadCycles
	s.LoadInterlock += o.LoadInterlock
	s.ICCHoldStall += o.ICCHoldStall
	s.BranchPenalty += o.BranchPenalty
	s.JumpPenalty += o.JumpPenalty
	s.MulStall += o.MulStall
	s.DivStall += o.DivStall
	s.WindowTrapStall += o.WindowTrapStall
	s.DecodeStall += o.DecodeStall
	s.HaltCycles += o.HaltCycles
}

// CPI returns cycles per instruction, or 0 for an empty profile.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Seconds converts the cycle count to seconds at the given clock; a
// non-positive clock selects DefaultClockHz.
func (s Stats) Seconds(clockHz float64) float64 {
	if clockHz <= 0 {
		clockHz = DefaultClockHz
	}
	return float64(s.Cycles) / clockHz
}

// StallTotal sums every stall/latency category.
func (s Stats) StallTotal() uint64 {
	return s.ICacheStall + s.DCacheStall + s.WriteBufStall + s.StoreCycles +
		s.LoadCycles + s.LoadInterlock + s.ICCHoldStall + s.BranchPenalty +
		s.JumpPenalty + s.MulStall + s.DivStall + s.WindowTrapStall +
		s.DecodeStall + s.HaltCycles
}

// ConsistencyError verifies the internal invariant that every cycle is
// either the base cycle of an instruction or attributed to exactly one
// stall category. It returns nil when the profile balances.
func (s Stats) ConsistencyError() error {
	want := s.Instructions + s.AnnulledSlots + s.StallTotal()
	if s.Cycles != want {
		return fmt.Errorf("profiler: %d cycles but %d attributed (%d instructions + %d annulled + %d stalls)",
			s.Cycles, want, s.Instructions, s.AnnulledSlots, s.StallTotal())
	}
	return nil
}

// String renders a human-readable profile report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles        %12d  (%.6f s @ 25 MHz)\n", s.Cycles, s.Seconds(0))
	fmt.Fprintf(&b, "instructions  %12d  (CPI %.3f)\n", s.Instructions, s.CPI())
	fmt.Fprintf(&b, "mix: loads %d stores %d branches %d (taken %d) calls %d jumps %d mults %d divs %d save/restore %d/%d\n",
		s.Loads, s.Stores, s.Branches, s.TakenBranches, s.Calls, s.Jumps, s.Mults, s.Divs, s.Saves, s.Restores)
	fmt.Fprintf(&b, "window traps: overflow %d underflow %d\n", s.WindowOverflows, s.WindowUnderflows)
	row := func(name string, v uint64) {
		if v == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-18s %12d  (%5.2f%%)\n", name, v, 100*float64(v)/float64(s.Cycles))
	}
	b.WriteString("stall budget:\n")
	row("icache", s.ICacheStall)
	row("dcache", s.DCacheStall)
	row("write buffer", s.WriteBufStall)
	row("load cycles", s.LoadCycles)
	row("store cycles", s.StoreCycles)
	row("load interlock", s.LoadInterlock)
	row("icc hold", s.ICCHoldStall)
	row("branch penalty", s.BranchPenalty)
	row("jump penalty", s.JumpPenalty)
	row("mul", s.MulStall)
	row("div", s.DivStall)
	row("window traps", s.WindowTrapStall)
	row("decode", s.DecodeStall)
	return b.String()
}
