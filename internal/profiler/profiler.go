// Package profiler is the reproduction's analogue of the Liquid
// Architecture platform's statistics module (paper Section 2.3, the
// source of every runtime measurement the technique consumes): a
// cycle-accurate, non-intrusive profile of an application run, with the
// stall budget broken down by cause.
package profiler

import (
	"fmt"
	"strings"
)

// DefaultClockHz is the processor clock the paper's board runs at; it is
// used only to convert cycles into the "seconds" the paper's tables print.
const DefaultClockHz = 25_000_000

// Stats is the profile of one run. Cycle counters are exact; the sum of
// the stall categories plus one cycle per instruction equals Cycles.
type Stats struct {
	Cycles       uint64
	Instructions uint64

	// Instruction mix.
	Loads, Stores    uint64
	Branches         uint64
	TakenBranches    uint64
	AnnulledSlots    uint64
	Calls, Jumps     uint64
	Mults, Divs      uint64
	Saves, Restores  uint64
	WindowOverflows  uint64
	WindowUnderflows uint64

	// Stall/latency budget, in cycles.
	ICacheStall     uint64
	DCacheStall     uint64
	WriteBufStall   uint64
	StoreCycles     uint64 // extra non-stall cycles of store instructions
	LoadCycles      uint64 // extra non-stall cycles of load instructions
	LoadInterlock   uint64
	ICCHoldStall    uint64
	BranchPenalty   uint64
	JumpPenalty     uint64
	MulStall        uint64
	DivStall        uint64
	WindowTrapStall uint64
	DecodeStall     uint64
	HaltCycles      uint64
}

// CPI returns cycles per instruction, or 0 for an empty profile.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Seconds converts the cycle count to seconds at the given clock; a
// non-positive clock selects DefaultClockHz.
func (s Stats) Seconds(clockHz float64) float64 {
	if clockHz <= 0 {
		clockHz = DefaultClockHz
	}
	return float64(s.Cycles) / clockHz
}

// StallTotal sums every stall/latency category.
func (s Stats) StallTotal() uint64 {
	return s.ICacheStall + s.DCacheStall + s.WriteBufStall + s.StoreCycles +
		s.LoadCycles + s.LoadInterlock + s.ICCHoldStall + s.BranchPenalty +
		s.JumpPenalty + s.MulStall + s.DivStall + s.WindowTrapStall +
		s.DecodeStall + s.HaltCycles
}

// ConsistencyError verifies the internal invariant that every cycle is
// either the base cycle of an instruction or attributed to exactly one
// stall category. It returns nil when the profile balances.
func (s Stats) ConsistencyError() error {
	want := s.Instructions + s.AnnulledSlots + s.StallTotal()
	if s.Cycles != want {
		return fmt.Errorf("profiler: %d cycles but %d attributed (%d instructions + %d annulled + %d stalls)",
			s.Cycles, want, s.Instructions, s.AnnulledSlots, s.StallTotal())
	}
	return nil
}

// String renders a human-readable profile report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles        %12d  (%.6f s @ 25 MHz)\n", s.Cycles, s.Seconds(0))
	fmt.Fprintf(&b, "instructions  %12d  (CPI %.3f)\n", s.Instructions, s.CPI())
	fmt.Fprintf(&b, "mix: loads %d stores %d branches %d (taken %d) calls %d jumps %d mults %d divs %d save/restore %d/%d\n",
		s.Loads, s.Stores, s.Branches, s.TakenBranches, s.Calls, s.Jumps, s.Mults, s.Divs, s.Saves, s.Restores)
	fmt.Fprintf(&b, "window traps: overflow %d underflow %d\n", s.WindowOverflows, s.WindowUnderflows)
	row := func(name string, v uint64) {
		if v == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-18s %12d  (%5.2f%%)\n", name, v, 100*float64(v)/float64(s.Cycles))
	}
	b.WriteString("stall budget:\n")
	row("icache", s.ICacheStall)
	row("dcache", s.DCacheStall)
	row("write buffer", s.WriteBufStall)
	row("load cycles", s.LoadCycles)
	row("store cycles", s.StoreCycles)
	row("load interlock", s.LoadInterlock)
	row("icc hold", s.ICCHoldStall)
	row("branch penalty", s.BranchPenalty)
	row("jump penalty", s.JumpPenalty)
	row("mul", s.MulStall)
	row("div", s.DivStall)
	row("window traps", s.WindowTrapStall)
	row("decode", s.DecodeStall)
	return b.String()
}
