package profiler

import (
	"strings"
	"testing"
)

func TestCPI(t *testing.T) {
	s := Stats{Cycles: 300, Instructions: 200}
	if got := s.CPI(); got != 1.5 {
		t.Errorf("CPI = %f", got)
	}
	if (Stats{}).CPI() != 0 {
		t.Error("empty profile CPI should be 0")
	}
}

func TestSeconds(t *testing.T) {
	s := Stats{Cycles: 25_000_000}
	if got := s.Seconds(0); got != 1.0 {
		t.Errorf("1 second at default clock, got %f", got)
	}
	if got := s.Seconds(50e6); got != 0.5 {
		t.Errorf("0.5 s at 50 MHz, got %f", got)
	}
}

func TestConsistency(t *testing.T) {
	ok := Stats{
		Cycles:        110,
		Instructions:  100,
		AnnulledSlots: 2,
		ICacheStall:   5,
		MulStall:      3,
	}
	if err := ok.ConsistencyError(); err != nil {
		t.Errorf("balanced profile flagged: %v", err)
	}
	bad := ok
	bad.Cycles = 200
	if err := bad.ConsistencyError(); err == nil {
		t.Error("imbalanced profile not flagged")
	}
}

func TestStallTotalSumsEverything(t *testing.T) {
	s := Stats{
		ICacheStall: 1, DCacheStall: 2, WriteBufStall: 3, StoreCycles: 4,
		LoadCycles: 5, LoadInterlock: 6, ICCHoldStall: 7, BranchPenalty: 8,
		JumpPenalty: 9, MulStall: 10, DivStall: 11, WindowTrapStall: 12,
		DecodeStall: 13, HaltCycles: 14,
	}
	if got := s.StallTotal(); got != 105 {
		t.Errorf("StallTotal = %d, want 105", got)
	}
}

func TestStringReport(t *testing.T) {
	s := Stats{
		Cycles: 1000, Instructions: 700,
		Loads: 100, Stores: 50, Branches: 80, TakenBranches: 60,
		Mults: 10, Divs: 5,
		ICacheStall: 100, DCacheStall: 80, MulStall: 30,
	}
	out := s.String()
	for _, want := range []string{"cycles", "CPI", "icache", "dcache", "mul", "stall budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Zero categories must be omitted.
	if strings.Contains(out, "window traps:") && strings.Contains(out, "  window traps") {
		t.Error("zero stall category printed in budget")
	}
}
