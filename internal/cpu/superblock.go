package cpu

// Superblock specialization (DESIGN.md §17).
//
// The fast loop (fast.go) still pays a per-dispatch tax for generality:
// the out-of-text check, the fallback check, the three-way dynamic
// load-use hazard probe, the per-instruction fetch-line check, the
// stat/cycle bookkeeping and the pc/npc updates run for every dispatched
// instruction even though the hot paths of the benchmark programs
// execute the same few basic blocks millions of times. Superblocks
// remove that tax for blocks proven hot at runtime:
//
//   - Discovery: every taken control transfer bumps a heat counter at
//     its target (branches, calls and register jumps — the same sites
//     that feed the block-signature profiler), and a block whose
//     sequential successor is not yet compiled bumps the successor's
//     counter, so hot regions grow chains forward. When a target's heat
//     crosses the compile threshold, the straight-line region starting
//     there is "compiled" into an sbBlock.
//   - A compiled block is a plan, not translated code: the interior ops
//     re-encoded as self-contained sbOp records (pre-copied immediate,
//     dispatch code and flags — no fastInstr load at run time), plus a
//     terminal descriptor when the block ends in a conditional branch
//     (plain or fused compare-and-branch). Everything statically
//     knowable is precomputed per block: the load-use interlock charges
//     (a block has no internal control flow, so whether op i reads the
//     register op i-1 loaded is a compile-time fact), the instruction
//     and event counts, the summed fixed cycle charges, and which ops
//     sit on instruction-cache line boundaries (block addresses are
//     static, so all interior fetches except the boundary crossings are
//     guaranteed same-line hits).
//   - Execution happens inside runFastInner on the loop's own locals:
//     one dispatch enters the block, a tight plan-driven loop retires
//     the interior ops paying only the dynamic costs (boundary cache
//     probes, data-cache probes, write-buffer timing), the batched
//     static charges are committed once per pass, the terminal branch
//     resolves with the existing exact branch semantics, and when the
//     successor block is compiled too, control chains straight into it
//     without returning to the generic dispatcher — a hot loop iterates
//     entirely inside the superblock executor.
//   - Deopt: anything the plan cannot represent exits back to the
//     generic loop at a clean instruction boundary. A store into the
//     text segment invalidates every compiled block at the end of the
//     current pass and disables further compilation for the core
//     (self-modifying code runs generically; the predecoded text is
//     shared by both engines, so the in-flight pass stays equivalent).
//
// Parity contract: compilation is timing-transparent. Executing via a
// superblock charges exactly the cycles, stats and cache events the
// generic loop would charge, with the same externally observable order —
// enforced by the engine-equivalence and differential fuzz suites.
// Whether (and when) a block compiles may therefore differ between runs
// without affecting any reported result; only wall-clock speed changes.

// DefaultSuperblockThreshold is the taken-branch heat at which a target
// block is compiled. Hot loops cross it within their first few dozen
// iterations; code executed a handful of times never compiles.
const DefaultSuperblockThreshold = 32

// sbMaxOps caps a block's interior length. Blocks end at control
// transfers long before this in practice; the cap bounds the worst-case
// instruction overshoot a sampling boundary must allow for.
const sbMaxOps = 64

// sbOp flag bits.
const (
	// sbOpImm selects the pre-copied immediate as the second operand.
	sbOpImm uint8 = 1 << 0
	// sbOpInterlock marks an op that statically incurs the load-use
	// interlock (its predecessor in the block loads a register it
	// reads). The charge is folded into the block's static totals; the
	// flag remains for the fault-path reconstruction walk.
	sbOpInterlock uint8 = 1 << 1
	// sbOpProbe marks an op whose fetch needs the dynamic cache check:
	// the block head (the previous fetch is unknown) and every op that
	// starts a new icache line. All other interior fetches are
	// statically guaranteed same-line hits and are credited in bulk.
	sbOpProbe uint8 = 1 << 2
)

// sbBlock.sbf bits: static fetch-line facts around the terminal. "t" is
// the terminal's address.
const (
	// sbfT0: the block has no interior ops, so the fetch preceding the
	// terminal is the caller's — the terminal fetch needs the fully
	// dynamic line compare.
	sbfT0 uint8 = 1 << 0
	// sbfCrossT: the terminal fetch (at t) crosses a line from the last
	// interior op (t-4). Meaningful only when sbfT0 is clear.
	sbfCrossT uint8 = 1 << 1
	// sbfCross1: a fetch at t+4 (fused branch half, or the plain
	// terminal's delay/annulled slot) crosses a line from t.
	sbfCross1 uint8 = 1 << 2
	// sbfCross2: a fetch at t+8 (the fused terminal's delay/annulled
	// slot) crosses a line from t+4.
	sbfCross2 uint8 = 1 << 3
)

// sbOp is one pre-resolved interior instruction of a compiled block.
// Even the packed register-file indices are resolved in (ri): they are
// window-dependent, so patchFastRI re-resolves every compiled plan when
// SAVE/RESTORE moves the window pointer — which can only happen at
// fallback ops outside any block.
type sbOp struct {
	ri     uint32 // packed register-file indices for the current window
	imm    uint32 // pre-copied immediate operand
	prefix uint32 // static cycle charges of ops[0..this] inclusive (write-buffer timing)
	code   uint8  // dispatch code (copied from fastInstr)
	flags  uint8
	_      [2]uint8
}

// sbBlock is one compiled superblock.
type sbBlock struct {
	// ops are the interior instructions in order. The terminal CTI, when
	// present, is not in ops.
	ops []sbOp
	// head is the text index of ops[0], anchoring ri re-resolution on
	// window rotation.
	head uint32
	// tIdx is the fast-array index of the terminal branch (fBicc or a
	// fused compare-and-branch), or -1 when the block ends at a
	// non-superblockable op instead.
	tIdx int32
	// Terminal descriptor, copied out of the predecoded instruction at
	// compile time so the executor never touches fast/fastRI for it
	// (tRI is re-resolved on window rotation like the interior ops).
	tRI       uint32
	tImm      uint32
	tTarget   uint32
	tCondMask uint16
	tCode     uint8
	tFlags    uint8
	// sbf holds the static fetch-line facts around the terminal (sbf*
	// bits): block addresses are fixed, so whether each of the terminal,
	// branch-half, annulled and delay-slot fetches crosses an icache
	// line is known at compile time.
	sbf uint8
	// slot is the pre-resolved inlined delay slot (valid when
	// tFlags&fgSlotALU is set).
	slot sbOp
	// succT/succF cache the compiled successor for the branch-taken and
	// sequential fall-through edges: 0 unresolved, -1 pinned "never"
	// (successor head rejected or out of text), else a 1-based handle
	// into sbBlocks. Sound because the compiled set only grows until a
	// wholesale invalidation drops every block (and the caches in them).
	succT int32
	succF int32
	// maxInstrs is the worst-case retired-instruction count of one pass
	// through the block (interior + branch halves + inlined delay slot);
	// the executor only enters when this many instructions still fit
	// below the run's stop target, so boundaries stay exact.
	maxInstrs uint32
	// Static per-pass totals, committed in one batch after the interior
	// loop: event counts for the profile batch and the summed fixed
	// cycle charges (loads +1, stores +2, multiply latency, load-use
	// interlocks).
	nLoads      uint32
	nStores     uint32
	nMults      uint32
	nInterlocks uint32
	icStatic    uint32 // interior fetches that are statically same-line hits
	staticExtra uint64
	// lastSetsCC records that the final interior op sets the condition
	// codes: the batch commit then restores iccSetAt exactness (the
	// terminal's ICC-hold check and any post-exit consumer see the same
	// value the generic loop would produce). Earlier interior setters
	// need no bookkeeping: a hold check can only directly follow them
	// inside the block, where there is no branch.
	lastSetsCC bool
	// tInterlock statically charges the load-use interlock at the
	// terminal (a fused compare reading the register the last interior
	// op loaded).
	tInterlock bool
	// exitHazardRd, when nonzero, is the rd of a last-position load in a
	// terminal-less block: the generic loop's hazard scoreboard must be
	// armed on exit exactly as if the load had been dispatched there.
	exitHazardRd uint8
}

// SuperblockStats counts superblock activity on a core. The counters are
// cumulative over the core's lifetime (they survive Reset, like the
// compiled blocks themselves) and are diagnostics only — they never feed
// the profile.
type SuperblockStats struct {
	// Compiled counts blocks compiled.
	Compiled uint64
	// Hits counts block executions (chained blocks count individually).
	Hits uint64
	// Deopts counts declined or abandoned block entries: a compiled head
	// reached in a delay-slot context, or a self-modifying store that
	// invalidated the compiled set.
	Deopts uint64
}

// EnableSuperblocks turns on superblock specialization with the given
// compile threshold (taken-branch heat); threshold <= 0 disables it and
// discards any compiled state. Must be called after LoadText. Compiled
// blocks and heat survive Reset, so pooled engines keep their compiled
// set across runs — sound because compilation is timing-transparent.
func (c *Core) EnableSuperblocks(threshold int) {
	if threshold <= 0 || len(c.fast) == 0 {
		c.sbHeat, c.sbIndex, c.sbBlocks = nil, nil, nil
		c.sbThreshold = 0
		return
	}
	c.sbThreshold = uint32(threshold)
	if len(c.sbHeat) != len(c.fast) {
		c.sbHeat = make([]uint32, len(c.fast))
		c.sbIndex = make([]int32, len(c.fast))
		c.sbBlocks = nil
	}
}

// SuperblocksEnabled reports whether superblock specialization is on.
func (c *Core) SuperblocksEnabled() bool { return c.sbHeat != nil }

// SuperblockStats returns the cumulative superblock counters.
func (c *Core) SuperblockStats() SuperblockStats { return c.sbStats }

// sbInvalidate drops every compiled block and disables discovery — the
// self-modifying-store deopt. The program keeps running on the generic
// fast loop (whose semantics never depended on the compiled set).
func (c *Core) sbInvalidate() {
	c.sbHeat, c.sbIndex, c.sbBlocks = nil, nil, nil
	c.sbThreshold = 0
}

// sbReads reports whether instruction f hazard-reads architectural
// register r, mirroring the generic loop's dynamic check. Within one
// register window the arch-number comparison and the scoreboard-index
// comparison agree exactly (the hazard view is injective per window), so
// the static form is equivalent — and stays valid across window
// rotations, which can only happen at fallback ops outside any block.
func sbReads(f *fastInstr, r uint8) bool {
	return (f.flags&fgReadsRs1 != 0 && f.rs1 == r) ||
		(f.flags&fgReadsRs2 != 0 && f.rs2 == r) ||
		(f.flags&fgReadsRd != 0 && f.rd == r)
}

// sbCompilable reports whether a dispatch code may sit in a block
// interior: simple ALU, loads, multiplies and stores. Divides (whose
// zero-divisor trap would need mid-block unwinding of the batched
// charges for a *architecturally reachable* fault), Y-register moves,
// CTIs and fallbacks end the walk.
func sbCompilable(code uint8) bool {
	return (code >= fAdd && code <= fRunnableMax) ||
		(code >= fUMul && code <= fSMulCC) ||
		(code >= fSt && code <= fStH)
}

// sbSetsCC reports whether an interior dispatch code writes the
// condition codes.
func sbSetsCC(code uint8) bool {
	switch code {
	case fAddCC, fSubCC, fAndCC, fOrCC, fXorCC, fUMulCC, fSMulCC:
		return true
	}
	return false
}

// compileSB compiles the straight-line region starting at headIdx. Called
// when the head's heat crosses the threshold; idempotent per head.
func (c *Core) compileSB(headIdx uint32) {
	if c.sbIndex == nil || int(headIdx) >= len(c.sbIndex) || c.sbIndex[headIdx] != 0 {
		return
	}
	var (
		blk        sbBlock
		lastLoadRd uint8 // rd of the previous op when it was a load, else 0
		prevLine   = (c.textBase + headIdx*4) >> c.icLineShift
	)
	blk.tIdx = -1
	blk.head = headIdx
	i := headIdx
	for int(i) < len(c.fast) && len(blk.ops) < sbMaxOps {
		f := &c.fast[i]
		code := f.code
		if code == fBicc || (code >= fAddCCBicc && code <= fXorCCBicc) {
			blk.tIdx = int32(i)
			blk.tInterlock = lastLoadRd != 0 && sbReads(f, lastLoadRd)
			break
		}
		if !sbCompilable(code) {
			break
		}
		op := sbOp{ri: c.fastRI[i], imm: f.imm, code: code}
		if f.flags&fgUseImm != 0 {
			op.flags |= sbOpImm
		}
		if len(blk.ops) == 0 {
			op.flags |= sbOpProbe
		} else if line := (c.textBase + i*4) >> c.icLineShift; line != prevLine {
			op.flags |= sbOpProbe
			prevLine = line
		} else {
			blk.icStatic++
		}
		if lastLoadRd != 0 && sbReads(f, lastLoadRd) {
			op.flags |= sbOpInterlock
			blk.nInterlocks++
			blk.staticExtra += c.loadInterlock
		}
		lastLoadRd = 0
		switch {
		case code >= fLd && code <= fLdSH:
			blk.nLoads++
			blk.staticExtra++
			if f.rd != 0 {
				lastLoadRd = f.rd
			}
		case code >= fSt && code <= fStH:
			blk.nStores++
			blk.staticExtra += 2
		case code >= fUMul && code <= fSMulCC:
			blk.nMults++
			blk.staticExtra += c.mulExtra
		}
		op.prefix = uint32(blk.staticExtra)
		blk.lastSetsCC = sbSetsCC(code)
		blk.ops = append(blk.ops, op)
		i++
	}
	if blk.tIdx < 0 && len(blk.ops) < 2 {
		// Nothing worth specializing (a lone op, or a head sitting right
		// on a call/jump/fallback). Mark rejected so the walk never
		// re-runs for this head.
		c.sbIndex[headIdx] = -1
		return
	}
	blk.maxInstrs = uint32(len(blk.ops))
	if blk.tIdx >= 0 {
		tf := &c.fast[blk.tIdx]
		if tf.code == fBicc {
			blk.maxInstrs += 2 // branch + possibly inlined delay slot
		} else {
			blk.maxInstrs += 3 // fused ALU half + branch half + possibly inlined slot
		}
		blk.tCode, blk.tFlags, blk.tCondMask = tf.code, tf.flags, tf.condMask
		blk.tImm, blk.tTarget = tf.imm, tf.target
		blk.tRI = c.fastRI[blk.tIdx]
		tAddr := c.textBase + uint32(blk.tIdx)*4
		sh := c.icLineShift
		if len(blk.ops) == 0 {
			blk.sbf |= sbfT0
		} else if tAddr>>sh != (tAddr-4)>>sh {
			blk.sbf |= sbfCrossT
		}
		if (tAddr+4)>>sh != tAddr>>sh {
			blk.sbf |= sbfCross1
		}
		if (tAddr+8)>>sh != (tAddr+4)>>sh {
			blk.sbf |= sbfCross2
		}
		if tf.flags&fgSlotALU != 0 {
			si := blk.tIdx + 1
			if tf.code != fBicc {
				si = blk.tIdx + 2
			}
			sf := &c.fast[si]
			blk.slot = sbOp{ri: c.fastRI[si], imm: sf.imm, code: sf.code}
			if sf.flags&fgUseImm != 0 {
				blk.slot.flags |= sbOpImm
			}
		}
	}
	if blk.tIdx < 0 && lastLoadRd != 0 {
		blk.exitHazardRd = lastLoadRd
	}
	c.sbBlocks = append(c.sbBlocks, blk)
	c.sbIndex[headIdx] = int32(len(c.sbBlocks))
	c.sbStats.Compiled++
}

// sbPartial reconstructs the batched static charges of blk.ops[0..k]
// (inclusive) for the rare mid-block abort paths (a load/store fault):
// the executor defers these to a single end-of-pass commit, so an abort
// replays the walk to leave instruction, event and cycle counters
// exactly where the generic loop would have them at the faulting op.
// lastCC is the op offset of the last condition-code setter in the
// prefix, or -1.
func (c *Core) sbPartial(blk *sbBlock, k int) (instr, loads, stores, mults, interlocks, icHits, extra uint64, lastCC int) {
	instr = uint64(k + 1)
	lastCC = -1
	for j := 0; j <= k; j++ {
		op := &blk.ops[j]
		if op.flags&sbOpInterlock != 0 {
			interlocks++
			extra += c.loadInterlock
		}
		if j > 0 && op.flags&sbOpProbe == 0 {
			icHits++
		}
		switch {
		case op.code >= fLd && op.code <= fLdSH:
			loads++
			extra++
		case op.code >= fSt && op.code <= fStH:
			stores++
			extra += 2
		case op.code >= fUMul && op.code <= fSMulCC:
			mults++
			extra += c.mulExtra
		}
		if sbSetsCC(op.code) {
			lastCC = j
		}
	}
	return
}

// sbAbort commits the deferred batched charges of blk.ops[0..k] when a
// mid-block fault exits the run: the executor's accumulators catch up to
// exactly where the generic loop would be at the faulting op. Returns
// the updated (instrs, extra, iccSetAt).
func (c *Core) sbAbort(blk *sbBlock, k int, instrs, extra, iccSetAt uint64, fb *fastBatch) (uint64, uint64, uint64) {
	li, ll, ls, lm, lk, lh, lx, lcc := c.sbPartial(blk, k)
	fb.loads += ll
	fb.stores += ls
	fb.mults += lm
	fb.interlocks += lk
	fb.icHits += lh
	if lcc >= 0 {
		iccSetAt = instrs + uint64(lcc) + 1
	}
	return instrs + li, extra + lx, iccSetAt
}
