package cpu

import (
	"fmt"

	"liquidarch/internal/isa"
)

// Register-window mechanics. SAVE rotates the current window pointer down,
// RESTORE rotates it up; adjacent windows share registers (the caller's
// outs are the callee's ins). One window's worth of the file is always kept
// free, so at most RegWindows-1 frames are resident; exceeding that on SAVE
// raises a window-overflow trap that spills the oldest resident window's
// 16 local+in registers to its stack frame, and returning past the last
// resident frame on RESTORE raises an underflow trap that fills them back.
//
// The traps are microcoded in the simulator: a fixed overhead plus 16 word
// transfers priced through the data cache and write buffer, all charged to
// the WindowTrapStall category.

// windowLocalsIns returns the physical indices (within the windowed part
// of the register file) of window w's locals (8 registers at w*16+8)
// followed by its ins (8 registers at (w+1)*16+0..7 mod size).
func (c *Core) windowLocalsIns(w int) []int {
	n := c.nwin
	idx := make([]int, 16)
	for j := 0; j < 8; j++ {
		idx[j] = (w*16 + 8 + j) % n
	}
	for j := 0; j < 8; j++ {
		idx[8+j] = ((w+1)*16 + j) % n
	}
	return idx
}

// trapStore performs one spill store through the memory system, charging
// all its cycles to the window-trap category.
func (c *Core) trapStore(addr uint32, v uint32) error {
	var cycles uint64 = 1
	if addr < deviceBase {
		c.dcache.Write(addr)
		cycles += c.wbuf.Store(c.stats.Cycles + cycles)
	}
	c.stats.WindowTrapStall += cycles
	c.stats.Cycles += cycles
	return c.memory.Write32(addr, v)
}

// trapLoad performs one fill load through the memory system, charging all
// its cycles to the window-trap category.
func (c *Core) trapLoad(addr uint32) (uint32, error) {
	var cycles uint64 = 1
	if addr < deviceBase {
		if !c.dcache.Read(addr) {
			cycles += c.dmissPenalty
		}
	}
	c.stats.WindowTrapStall += cycles
	c.stats.Cycles += cycles
	return c.memory.Read32(addr)
}

func (c *Core) execSave(in *isa.Instr) error {
	c.stats.Saves++
	nwin := c.windowCount()
	a, b := c.getReg(in.Rs1), c.operand2(in)

	if c.resid == nwin-1 {
		// Window overflow: spill the oldest resident window.
		c.stats.WindowOverflows++
		c.stats.WindowTrapStall += windowTrapOverhead
		c.stats.Cycles += windowTrapOverhead
		oldest := (c.cwp + c.resid - 1) % nwin
		sp := c.regfile[8+(oldest*16+6)%c.nwin] // the window's %sp (%o6)
		if sp&3 != 0 {
			return fmt.Errorf("cpu: window overflow with misaligned %%sp %#08x", sp)
		}
		for j, phys := range c.windowLocalsIns(oldest) {
			if err := c.trapStore(sp+uint32(j)*4, c.regfile[8+phys]); err != nil {
				return fmt.Errorf("cpu: window overflow spill: %w", err)
			}
		}
	} else {
		c.resid++
	}
	c.cwp = (c.cwp - 1 + nwin) % nwin
	c.rebuildViews()
	c.setReg(in.Rd, a+b)
	return nil
}

func (c *Core) execRestore(in *isa.Instr) error {
	c.stats.Restores++
	nwin := c.windowCount()
	a, b := c.getReg(in.Rs1), c.operand2(in)
	target := (c.cwp + 1) % nwin

	if c.resid == 1 {
		// Window underflow: refill the caller's window from its frame.
		// The caller's %sp is the current window's %fp (shared register).
		c.stats.WindowUnderflows++
		c.stats.WindowTrapStall += windowTrapOverhead
		c.stats.Cycles += windowTrapOverhead
		fp := c.getReg(isa.RegFP)
		if fp&3 != 0 {
			return fmt.Errorf("cpu: window underflow with misaligned %%fp %#08x", fp)
		}
		for j, phys := range c.windowLocalsIns(target) {
			v, err := c.trapLoad(fp + uint32(j)*4)
			if err != nil {
				return fmt.Errorf("cpu: window underflow fill: %w", err)
			}
			c.regfile[8+phys] = v
		}
	} else {
		c.resid--
	}
	c.cwp = target
	c.rebuildViews()
	c.setReg(in.Rd, a+b)
	return nil
}
