package cpu

import (
	"liquidarch/internal/cache"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
)

// CoreState is a complete mid-run snapshot of a core's mutable state —
// architectural registers, window/hazard/ICC bookkeeping, the profile,
// and the full cache and write-buffer timing state. Together with a
// mem.MemoryState it is an exact resume point: a core of the same
// configuration restored from it retires the identical instruction and
// cycle stream the snapshotted core would have from that point on. The
// platform captures one per interval boundary to fan interval segments
// across workers (DESIGN.md §17).
//
// Diagnostic-only state is deliberately excluded: superblock heat and
// compiled blocks (timing-transparent by contract), the block-signature
// accumulator (zero at interval boundaries, where TakeBlockVector just
// drained it), and trace writers (tracing disables checkpointing).
type CoreState struct {
	regs          []uint32
	cwp           int
	resid         int
	y             uint32
	icc           isa.ICC
	pc, npc       uint32
	loadHazardReg int
	iccJustSet    bool
	stats         profiler.Stats
	halted        bool
	exit          uint32
	icache        cache.State
	dcache        cache.State
	wbuf          mem.WriteBufferState
}

// SaveState captures the core's mutable state into s, reusing s's
// buffers when they fit so steady-state checkpointing allocates nothing.
func (c *Core) SaveState(s *CoreState) {
	s.regs = append(s.regs[:0], c.regfile[:8+c.nwin+1]...)
	s.cwp = c.cwp
	s.resid = c.resid
	s.y = c.y
	s.icc = c.icc
	s.pc, s.npc = c.pc, c.npc
	s.loadHazardReg = c.loadHazardReg
	s.iccJustSet = c.iccJustSet
	s.stats = c.stats
	s.halted = c.halted
	s.exit = c.exit
	c.icache.SaveState(&s.icache)
	c.dcache.SaveState(&s.dcache)
	s.wbuf = c.wbuf.SaveState()
}

// RestoreState restores a snapshot taken from a core of the same
// configuration and text; the attached memory must be restored
// separately (mem.MemoryState). Checkpoint snapshots are never halted,
// so a restored core resumes at the snapshot's pc; restoring a
// snapshot of a finished run carries the halt state and exit code over
// (how the platform folds a parallel run's final segment back into its
// primary engine).
func (c *Core) RestoreState(s *CoreState) {
	copy(c.regfile[:len(s.regs)], s.regs)
	c.cwp = s.cwp
	c.resid = s.resid
	c.rebuildViews()
	if c.fastRI != nil && c.fastCwp != c.cwp {
		c.patchFastRI()
	}
	c.y = s.y
	c.icc = s.icc
	c.pc, c.npc = s.pc, s.npc
	c.loadHazardReg = s.loadHazardReg
	c.iccJustSet = s.iccJustSet
	c.stats = s.stats
	c.icache.RestoreState(&s.icache)
	c.dcache.RestoreState(&s.dcache)
	c.wbuf.RestoreState(s.wbuf)
	c.halted = s.halted
	c.exit = s.exit
	clear(c.bbv)
}
