package cpu

import (
	"fmt"
)

// Mid-run reconfiguration support: AdoptArchState moves a running
// program from one core to a differently-configured core over the same
// memory, the primitive behind the platform's schedule replay
// (DESIGN.md §19). Only architectural state transfers — registers,
// window residency, PC chain, condition codes, hazard bookkeeping, the
// cumulative profile and the halt latch. Cache and write-buffer state
// deliberately does not: its shape is configuration-dependent (a
// reconfigured cache comes up cold on real fabric too), and the
// reconfiguration's cost is modeled separately by the schedule's
// SwitchPenaltyCycles, not by charging individual transfers here.

// AdoptArchState makes c take over execution from src: after the call,
// c resumes at src's program counter with src's architectural register
// state and cumulative profile, so the instruction stream c retires is
// the exact continuation of src's. Both cores must share the same
// attached memory and loaded text.
//
// When the two configurations have the same register-window count the
// windowed file transfers verbatim. Across different window counts the
// resident frames cannot map index-for-index, so src's non-current
// resident windows are first flushed to their stack frames — the same
// 16-word locals+ins spill a window-overflow trap performs, oldest
// window first, and the same flush a real SPARC OS does on a context
// switch — and c starts with exactly one resident window (the current
// one, copied architecturally). Later RESTOREs refill the flushed
// frames through the ordinary underflow path. The flush writes memory
// directly without charging cycles: the whole reconfiguration is priced
// by the schedule's switch penalty, and double-charging the spills here
// would make replayed cycles depend on where in the call stack a switch
// lands.
func (c *Core) AdoptArchState(src *Core) error {
	if c == src {
		return nil
	}
	if c.memory != src.memory {
		return fmt.Errorf("cpu: AdoptArchState requires both cores on the same memory")
	}
	if c.textBase != src.textBase || len(c.text) != len(src.text) {
		return fmt.Errorf("cpu: AdoptArchState requires both cores on the same text")
	}

	if c.nwin == src.nwin {
		copy(c.regfile[:8+c.nwin+1], src.regfile[:8+src.nwin+1])
		c.cwp = src.cwp
		c.resid = src.resid
		c.loadHazardReg = src.loadHazardReg
	} else {
		if err := src.flushInactiveWindows(); err != nil {
			return err
		}
		for i := 0; i <= 8+c.nwin; i++ {
			c.regfile[i] = 0
		}
		c.cwp = 0
		c.resid = 1
		c.rebuildViews()
		for r := 1; r < 8; r++ {
			c.regfile[r] = src.regfile[r]
		}
		for r := uint8(8); r < 32; r++ {
			c.setReg(r, src.getReg(r))
		}
		c.loadHazardReg = remapHazard(src, c)
	}

	c.y = src.y
	c.icc = src.icc
	c.pc, c.npc = src.pc, src.npc
	c.iccJustSet = src.iccJustSet
	c.stats = src.stats
	c.halted = src.halted
	c.exit = src.exit

	c.rebuildViews()
	if c.fastRI != nil && c.fastCwp != c.cwp {
		c.patchFastRI()
	}
	clear(c.bbv)
	return nil
}

// flushInactiveWindows spills every resident window except the current
// one to its stack frame — window w's 16 locals+ins to the 64-byte save
// area at w's own %sp — oldest window first, the order consecutive
// overflow traps would have spilled them in. The stores go straight to
// memory (no cache traffic, no cycles): the caller prices the whole
// reconfiguration through the schedule's switch penalty.
func (c *Core) flushInactiveWindows() error {
	nwin := c.windowCount()
	for k := c.resid - 1; k >= 1; k-- {
		w := (c.cwp + k) % nwin
		sp := c.regfile[8+(w*16+6)%c.nwin] // the window's %sp (%o6)
		if sp&3 != 0 {
			return fmt.Errorf("cpu: window flush with misaligned %%sp %#08x", sp)
		}
		for j, phys := range c.windowLocalsIns(w) {
			if err := c.memory.Write32(sp+uint32(j)*4, c.regfile[8+phys]); err != nil {
				return fmt.Errorf("cpu: window flush: %w", err)
			}
		}
	}
	return nil
}

// remapHazard translates src's load-hazard scoreboard entry into dst's
// register file. Negative values (no hazard, or a global register's
// fixed code) carry over unchanged; a windowed physical index is mapped
// through the architectural register it denotes in src's current
// window. A hazard register not visible in the current window cannot
// occur at an instruction boundary (loads target the current window),
// but if it did the conservative answer is "no hazard": the interlock
// is timing bookkeeping, never a value dependency.
func remapHazard(src, dst *Core) int {
	h := src.loadHazardReg
	if h < 0 {
		return h
	}
	for r := 8; r < 32; r++ {
		if int(src.viewHz[r]) == h {
			return int(dst.viewHz[r])
		}
	}
	return noHazard
}
