package cpu_test

import (
	"math/rand"
	"strings"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
)

const textBase = mem.RAMBase

// buildCore assembles a program of decoded instructions into memory and
// returns a core ready to run it.
func buildCore(t *testing.T, cfg config.Config, prog []isa.Instr) *cpu.Core {
	t.Helper()
	m := mem.New(1 << 20)
	for i, in := range prog {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode instr %d (%+v): %v", i, in, err)
		}
		if err := m.Write32(textBase+uint32(i)*4, w); err != nil {
			t.Fatalf("write instr %d: %v", i, err)
		}
	}
	c, err := cpu.New(cfg, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.LoadText(textBase, len(prog)); err != nil {
		t.Fatalf("LoadText: %v", err)
	}
	c.Reset(textBase)
	return c
}

func run(t *testing.T, c *cpu.Core) {
	t.Helper()
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v (pc=%#x)", err, c.PC())
	}
	if err := c.Stats().ConsistencyError(); err != nil {
		t.Fatalf("profile imbalance: %v", err)
	}
}

// Shorthand instruction constructors.
func movImm(rd uint8, v int32) isa.Instr {
	return isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: 0, UseImm: true, Imm: v}
}
func alu(op isa.Opcode, rd, rs1, rs2 uint8) isa.Instr {
	return isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}
func aluImm(op isa.Opcode, rd, rs1 uint8, imm int32) isa.Instr {
	return isa.Instr{Op: op, Rd: rd, Rs1: rs1, UseImm: true, Imm: imm}
}
func nop() isa.Instr { return isa.Instr{Op: isa.OpSethi, Rd: 0, Imm: 0} }
func halt() isa.Instr {
	return isa.Instr{Op: isa.OpTicc, Cond: isa.CondA, UseImm: true, Imm: 0}
}

// set32 materialises a full 32-bit constant with sethi+or.
func set32(rd uint8, v uint32) []isa.Instr {
	return []isa.Instr{
		{Op: isa.OpSethi, Rd: rd, Imm: int32(v >> 10)},
		aluImm(isa.OpOr, rd, rd, int32(v&0x3FF)),
	}
}

func TestALUBasics(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, 100),                 // %g1 = 100
		aluImm(isa.OpAdd, 2, 1, 23),    // %g2 = 123
		alu(isa.OpSub, 3, 2, 1),        // %g3 = 23
		aluImm(isa.OpSll, 4, 1, 3),     // %g4 = 800
		aluImm(isa.OpSrl, 5, 4, 2),     // %g5 = 200
		aluImm(isa.OpXor, 6, 1, 0x55),  // %g6 = 100^0x55
		aluImm(isa.OpAndN, 7, 1, 0x0F), // %g7 = 100 &^ 15 = 96
		movImm(8, 77),                  // %o0 = exit code 77
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	checks := map[uint8]uint32{1: 100, 2: 123, 3: 23, 4: 800, 5: 200, 6: 100 ^ 0x55, 7: 96}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("reg %s = %d, want %d", isa.RegName(r), got, want)
		}
	}
	if !c.Halted() || c.ExitCode() != 77 {
		t.Errorf("halted=%t exit=%d", c.Halted(), c.ExitCode())
	}
}

func TestSraAndNegativeValues(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, -64),
		aluImm(isa.OpSra, 2, 1, 2), // -16
		aluImm(isa.OpSrl, 3, 1, 28),
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if got := int32(c.Reg(2)); got != -16 {
		t.Errorf("sra: %d, want -16", got)
	}
	if got := c.Reg(3); got != 0xF {
		t.Errorf("srl of negative: %#x, want 0xf", got)
	}
}

// TestICCAgainstReference checks addcc/subcc condition codes against a
// 64-bit arithmetic reference over random operands.
func TestICCAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		a, b := r.Uint32(), r.Uint32()
		for _, sub := range []bool{false, true} {
			op := isa.OpAddCC
			if sub {
				op = isa.OpSubCC
			}
			prog := []isa.Instr{
				// Build full 32-bit constants with sethi+or.
				{Op: isa.OpSethi, Rd: 1, Imm: int32(a >> 10)},
				aluImm(isa.OpOr, 1, 1, int32(a&0x3FF)),
				{Op: isa.OpSethi, Rd: 2, Imm: int32(b >> 10)},
				aluImm(isa.OpOr, 2, 2, int32(b&0x3FF)),
				alu(op, 3, 1, 2),
				halt(),
			}
			c := buildCore(t, config.Default(), prog)
			run(t, c)

			var res uint32
			var wantV, wantC bool
			if sub {
				res = a - b
				wantV = ((a^b)&(a^res))>>31 != 0
				wantC = b > a
			} else {
				res = a + b
				wantV = (^(a^b)&(a^res))>>31 != 0
				wantC = uint64(a)+uint64(b) > 0xFFFFFFFF
			}
			icc := c.ICC()
			if c.Reg(3) != res {
				t.Fatalf("op=%v a=%#x b=%#x result %#x want %#x", op, a, b, c.Reg(3), res)
			}
			if icc.N != (int32(res) < 0) || icc.Z != (res == 0) || icc.V != wantV || icc.C != wantC {
				t.Fatalf("op=%v a=%#x b=%#x icc=%+v want N=%t Z=%t V=%t C=%t",
					op, a, b, icc, int32(res) < 0, res == 0, wantV, wantC)
			}
		}
	}
}

func TestMulDivSemantics(t *testing.T) {
	var prog []isa.Instr
	prog = append(prog, set32(1, 100000)...)
	prog = append(prog, set32(2, 70000)...)
	prog = append(prog, []isa.Instr{
		alu(isa.OpUMul, 3, 1, 2), // 7e9: low in %g3, high in %y
		{Op: isa.OpRdY, Rd: 4},
		movImm(5, -7),
		alu(isa.OpSMul, 6, 5, 1), // -700000
		{Op: isa.OpWrY, Rs1: 0, UseImm: true, Imm: 0},
		movImm(7, 1000),
		aluImm(isa.OpUDiv, 8, 7, 6), // %o0 = 1000 / 6 = 166
		halt(),
	}...)
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	p := uint64(100000) * uint64(70000)
	if got := c.Reg(3); got != uint32(p) {
		t.Errorf("umul low = %#x, want %#x", got, uint32(p))
	}
	if got := c.Reg(4); got != uint32(p>>32) {
		t.Errorf("umul high (Y) = %#x, want %#x", got, uint32(p>>32))
	}
	if got := int32(c.Reg(6)); got != -700000 {
		t.Errorf("smul = %d, want -700000", got)
	}
	if got := c.Reg(8); got != 166 {
		t.Errorf("udiv = %d, want 166", got)
	}
}

func TestSDivNegativeAndClamp(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpWrY, Rs1: 0, UseImm: true, Imm: -1}, // Y = sign extension of a negative dividend
		movImm(1, -100),
		aluImm(isa.OpSDiv, 2, 1, 7), // -14
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if got := int32(c.Reg(2)); got != -14 {
		t.Errorf("sdiv(-100,7) = %d, want -14", got)
	}
}

func TestDivByZeroErrors(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, 5),
		aluImm(isa.OpUDiv, 2, 1, 0),
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division-by-zero error, got %v", err)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	data := int32(0xF00) // offset from textBase used as scratch, within RAM and simm13
	prog := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)}, // %g1 = textBase
		aluImm(isa.OpAdd, 1, 1, data),                        // %g1 = scratch
		{Op: isa.OpSethi, Rd: 2, Imm: int32(0x89ABCDEF>>10) & 0x3FFFFF},
		aluImm(isa.OpOr, 2, 2, int32(0x89ABCDEF&0x3FF)),
		{Op: isa.OpSt, Rd: 2, Rs1: 1, UseImm: true, Imm: 0},
		{Op: isa.OpLd, Rd: 3, Rs1: 1, UseImm: true, Imm: 0},
		{Op: isa.OpLdUB, Rd: 4, Rs1: 1, UseImm: true, Imm: 0}, // big-endian: 0x89
		{Op: isa.OpLdSB, Rd: 5, Rs1: 1, UseImm: true, Imm: 0}, // sign-extended
		{Op: isa.OpLdUH, Rd: 6, Rs1: 1, UseImm: true, Imm: 2}, // 0xCDEF
		{Op: isa.OpLdSH, Rd: 7, Rs1: 1, UseImm: true, Imm: 2},
		{Op: isa.OpStB, Rd: 2, Rs1: 1, UseImm: true, Imm: 4}, // low byte 0xEF
		{Op: isa.OpLdUB, Rd: 8, Rs1: 1, UseImm: true, Imm: 4},
		{Op: isa.OpStH, Rd: 2, Rs1: 1, UseImm: true, Imm: 6}, // low half 0xCDEF
		{Op: isa.OpLdUH, Rd: 9, Rs1: 1, UseImm: true, Imm: 6},
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if got := c.Reg(3); got != 0x89ABCDEF {
		t.Errorf("ld = %#x", got)
	}
	if got := c.Reg(4); got != 0x89 {
		t.Errorf("ldub = %#x, want 0x89", got)
	}
	if got := int32(c.Reg(5)); got != -119 { // sign-extended 0x89
		t.Errorf("ldsb = %d, want -119", got)
	}
	if got := c.Reg(6); got != 0xCDEF {
		t.Errorf("lduh = %#x", got)
	}
	if got := int32(c.Reg(7)); got != -12817 { // sign-extended 0xCDEF
		t.Errorf("ldsh = %d", got)
	}
	if got := c.Reg(8); got != 0xEF {
		t.Errorf("stb/ldub = %#x", got)
	}
	if got := c.Reg(9); got != 0xCDEF {
		t.Errorf("sth/lduh = %#x", got)
	}
}

func TestBranchTakenAndDelaySlot(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, 1),
		aluImm(isa.OpSubCC, 0, 1, 1),               // cmp %g1,1 -> Z
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 3}, // be +3 (to idx 5)
		movImm(2, 42),                              // delay slot: executes
		movImm(3, 99),                              // skipped
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.Reg(2) != 42 {
		t.Error("delay slot of taken branch must execute")
	}
	if c.Reg(3) != 0 {
		t.Error("branch target skipped the fall-through instruction")
	}
}

func TestBranchUntakenFallsThrough(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, 1),
		aluImm(isa.OpSubCC, 0, 1, 2), // cmp %g1,2 -> not equal
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 3},
		movImm(2, 42), // delay slot executes
		movImm(3, 99), // fall-through executes
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.Reg(2) != 42 || c.Reg(3) != 99 {
		t.Errorf("untaken branch flow wrong: g2=%d g3=%d", c.Reg(2), c.Reg(3))
	}
}

func TestAnnulledDelaySlotUntaken(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, 1),
		aluImm(isa.OpSubCC, 0, 1, 2), // not equal
		{Op: isa.OpBicc, Cond: isa.CondE, Annul: true, Disp: 3},
		movImm(2, 42), // annulled: must NOT execute
		movImm(3, 99),
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.Reg(2) != 0 {
		t.Error("untaken annulled delay slot executed")
	}
	if c.Reg(3) != 99 {
		t.Error("execution did not continue after annulled slot")
	}
	if c.Stats().AnnulledSlots != 1 {
		t.Errorf("annulled slots = %d, want 1", c.Stats().AnnulledSlots)
	}
}

func TestAnnulledDelaySlotTakenConditional(t *testing.T) {
	// Taken conditional with annul bit: delay slot still executes.
	prog := []isa.Instr{
		movImm(1, 1),
		aluImm(isa.OpSubCC, 0, 1, 1), // equal
		{Op: isa.OpBicc, Cond: isa.CondE, Annul: true, Disp: 3},
		movImm(2, 42), // executes (taken conditional ignores annul)
		movImm(3, 99), // skipped
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.Reg(2) != 42 {
		t.Error("taken annulled conditional must still execute its delay slot")
	}
	if c.Reg(3) != 0 {
		t.Error("branch did not skip")
	}
}

func TestBaAnnulSkipsSlot(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Disp: 3}, // ba,a +3
		movImm(2, 42), // annulled
		nop(),
		movImm(3, 99), // target
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.Reg(2) != 0 {
		t.Error("ba,a delay slot executed")
	}
	if c.Reg(3) != 99 {
		t.Error("ba,a did not reach target")
	}
}

func TestCallAndReturn(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpCall, Disp: 4}, // call idx 4
		nop(),                     // delay slot
		movImm(3, 7),              // executed after return
		halt(),
		// callee at idx 4:
		movImm(2, 55),
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegO7, UseImm: true, Imm: 8}, // retl
		nop(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.Reg(2) != 55 || c.Reg(3) != 7 {
		t.Errorf("call/return flow wrong: g2=%d g3=%d", c.Reg(2), c.Reg(3))
	}
	if c.Stats().Calls != 1 || c.Stats().Jumps != 1 {
		t.Errorf("stats calls=%d jumps=%d", c.Stats().Calls, c.Stats().Jumps)
	}
}

func TestSaveRestoreWindowSharing(t *testing.T) {
	prog := []isa.Instr{
		movImm(8, 111), // %o0 = 111
		{Op: isa.OpSave, Rd: isa.RegSP, Rs1: isa.RegSP, UseImm: true, Imm: -96},
		// After save, the caller's %o0 is our %i0 (r24).
		aluImm(isa.OpAdd, 8, 24, 1),                              // %o0 = %i0+1 = 112
		{Op: isa.OpRestore, Rd: 1, Rs1: 8, UseImm: true, Imm: 0}, // %g1 = callee %o0; back to caller window
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if got := c.Reg(1); got != 112 {
		t.Errorf("restore result = %d, want 112 (callee saw caller's out as in)", got)
	}
	if got := c.Reg(8); got != 111 {
		t.Errorf("caller %%o0 = %d, want 111 (restored window)", got)
	}
}

// TestDeepRecursionSpillsAndFills drives call depth far past the register
// file capacity and checks that locals survive via overflow/underflow traps.
func TestDeepRecursionSpillsAndFills(t *testing.T) {
	const depth = 29 // depth+1=30 saves: many spills at 8 windows, none at 32
	// Program: recursive descent; each level stores its depth in %l0 and
	// checks it on the way back.
	//   entry: mov depth, %o0; call down; nop; halt
	//   down:  save %sp,-96,%sp
	//          mov %i0, %l0               ; remember my value
	//          cmp %i0, 0; be base; nop
	//          sub %i0, 1, %o0
	//          call down; nop
	//   base:  ; check %l0 == %i0, trap 1 (error) if not
	//          cmp %l0, %i0; be ok; nop
	//          t 1 (unhandled -> error)
	//   ok:    ret; restore %g0,%g0,%g0
	prog := []isa.Instr{
		movImm(8, depth),          // %o0 = depth
		{Op: isa.OpCall, Disp: 3}, // call down (idx 3)
		nop(),
		halt(), // unreachable? no: after outermost return, pc lands here? call writes o7=pc(idx1); retl -> idx1+8 = idx3 -> halt. But down returns with ret (i7). The outer call's o7 = idx 1, so callee's ret (jmpl i7+8) -> idx 3: halt. Good.
		// down (idx 4... careful: call disp must point here)
	}
	// Fix call target: "down" starts at index 4 (after halt at 3). CALL at
	// idx 1 with disp 3 -> idx 4. Adjust:
	prog[1].Disp = 3
	down := []isa.Instr{
		{Op: isa.OpSave, Rd: isa.RegSP, Rs1: isa.RegSP, UseImm: true, Imm: -96},
		alu(isa.OpOr, 16, 0, 24),                   // mov %i0, %l0
		aluImm(isa.OpSubCC, 0, 24, 0),              // cmp %i0, 0
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 4}, // be base (idx +4)
		nop(),
		aluImm(isa.OpSub, 8, 24, 1), // %o0 = %i0-1
		{Op: isa.OpCall, Disp: -6},  // call down (back to save)
		nop(),
		// base: check %l0 == %i0
		alu(isa.OpSubCC, 0, 16, 24),
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 3}, // be ok
		nop(),
		{Op: isa.OpTicc, Cond: isa.CondA, UseImm: true, Imm: 1}, // error trap
		// ok: ret; restore
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegI7, UseImm: true, Imm: 8},
		{Op: isa.OpRestore, Rd: 0, Rs1: 0, Rs2: 0},
	}
	prog = append(prog, down...)
	for _, windows := range []int{8, 16, 32} {
		cfg := config.Default()
		cfg.IU.RegWindows = windows
		c := buildCore(t, cfg, prog)
		run(t, c)
		st := c.Stats()
		if windows == 8 && st.WindowOverflows == 0 {
			t.Errorf("depth %d with 8 windows should overflow, got %d", depth, st.WindowOverflows)
		}
		if st.WindowOverflows != st.WindowUnderflows {
			t.Errorf("windows=%d: overflows %d != underflows %d", windows, st.WindowOverflows, st.WindowUnderflows)
		}
		if windows == 32 && st.WindowOverflows != 0 {
			t.Errorf("depth %d fits in 32 windows, got %d overflows", depth, st.WindowOverflows)
		}
	}
}

// TestMoreWindowsReduceTrapCycles is the paper's register-window
// sensitivity: deep call chains run faster with more windows.
func TestMoreWindowsReduceTrapCycles(t *testing.T) {
	cycles := func(windows int) uint64 {
		cfg := config.Default()
		cfg.IU.RegWindows = windows
		c := buildCore(t, cfg, recursionProgram(25))
		run(t, c)
		return c.Stats().Cycles
	}
	c8, c32 := cycles(8), cycles(32)
	if c32 >= c8 {
		t.Errorf("32 windows (%d cycles) should beat 8 windows (%d) on deep recursion", c32, c8)
	}
}

func recursionProgram(depth int32) []isa.Instr {
	prog := []isa.Instr{
		movImm(8, depth),
		{Op: isa.OpCall, Disp: 3},
		nop(),
		halt(),
	}
	down := []isa.Instr{
		{Op: isa.OpSave, Rd: isa.RegSP, Rs1: isa.RegSP, UseImm: true, Imm: -96},
		aluImm(isa.OpSubCC, 0, 24, 0),
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 4},
		nop(),
		aluImm(isa.OpSub, 8, 24, 1),
		{Op: isa.OpCall, Disp: -5},
		nop(),
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegI7, UseImm: true, Imm: 8},
		{Op: isa.OpRestore, Rd: 0, Rs1: 0, Rs2: 0},
	}
	return append(prog, down...)
}

func TestRunInstructionLimit(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpBicc, Cond: isa.CondA, Disp: 0}, // ba . (infinite loop)
		nop(),
	}
	c := buildCore(t, config.Default(), prog)
	if err := c.Run(1000); err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("want instruction-limit error, got %v", err)
	}
}

func TestPCOutsideTextErrors(t *testing.T) {
	prog := []isa.Instr{nop(), nop()} // runs off the end
	c := buildCore(t, config.Default(), prog)
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("want outside-text error, got %v", err)
	}
}

func TestUnhandledTrapErrors(t *testing.T) {
	prog := []isa.Instr{{Op: isa.OpTicc, Cond: isa.CondA, UseImm: true, Imm: 5}}
	c := buildCore(t, config.Default(), prog)
	if err := c.Run(10); err == nil || !strings.Contains(err.Error(), "trap 5") {
		t.Errorf("want trap error, got %v", err)
	}
}

func TestMisalignedJmplErrors(t *testing.T) {
	prog := []isa.Instr{
		movImm(1, 2),
		{Op: isa.OpJmpl, Rd: 0, Rs1: 1, UseImm: true, Imm: 0},
		nop(),
	}
	c := buildCore(t, config.Default(), prog)
	if err := c.Run(10); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("want misaligned error, got %v", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	c := buildCore(t, config.Default(), []isa.Instr{halt()})
	run(t, c)
	if err := c.Step(); err != cpu.ErrHalted {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() uint64 {
		c := buildCore(t, config.Default(), recursionProgram(20))
		run(t, c)
		return c.Stats().Cycles
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("two identical runs differ: %d vs %d cycles", a, b)
	}
}

// TestWindowSpillWritesToStackFrame verifies the overflow trap stores the
// spilled window's locals and ins to that window's own stack save area,
// SPARC ABI layout: locals at [%sp], ins at [%sp+32].
func TestWindowSpillWritesToStackFrame(t *testing.T) {
	// 8 windows hold 7 resident frames: the 7th save spills the main
	// window, the 8th spills the first marked frame. Each frame stores a
	// recognisable value in %l0 before descending.
	var prog []isa.Instr
	for depth := 0; depth < 8; depth++ {
		prog = append(prog,
			isa.Instr{Op: isa.OpSave, Rd: isa.RegSP, Rs1: isa.RegSP, UseImm: true, Imm: -96},
			movImm(16, int32(0x100+depth)), // %l0 = marker
		)
	}
	prog = append(prog, halt())
	cfg := config.Default() // 8 windows
	c := buildCore(t, cfg, prog)
	run(t, c)
	st := c.Stats()
	if st.WindowOverflows != 2 {
		t.Fatalf("overflows = %d, want 2 (main window, then frame 0)", st.WindowOverflows)
	}
	// The second spill evicts the outermost marked frame (depth 0). Its
	// %sp was set by its own save: initialSP - 96. Its %l0 marker (0x100)
	// must land at [its_sp + 0] per the SPARC save-area layout.
	initialSP := mem.RAMBase + uint32(1<<20) - 64 // buildCore uses 1 MiB RAM
	frame0SP := initialSP - 96
	v, err := c.Memory().Read32(frame0SP)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x100 {
		t.Errorf("spilled %%l0 at [%#x] = %#x, want 0x100", frame0SP, v)
	}
}

// TestWindowFillRestoresSpilledValues drives past capacity and back,
// checking every frame's marker survives the spill/fill round trip.
func TestWindowFillRestoresSpilledValues(t *testing.T) {
	const depth = 12 // > 7 resident frames on 8 windows
	var prog []isa.Instr
	for d := 0; d < depth; d++ {
		prog = append(prog,
			isa.Instr{Op: isa.OpSave, Rd: isa.RegSP, Rs1: isa.RegSP, UseImm: true, Imm: -96},
			movImm(16, int32(0x200+d)),
		)
	}
	// Unwind, verifying %l0 at each level: cmp %l0, marker; trap 1 if not.
	for d := depth - 1; d >= 0; d-- {
		prog = append(prog,
			aluImm(isa.OpSubCC, 0, 16, int32(0x200+d)),
			isa.Instr{Op: isa.OpBicc, Cond: isa.CondE, Disp: 3},
			nop(),
			isa.Instr{Op: isa.OpTicc, Cond: isa.CondA, UseImm: true, Imm: 1}, // mismatch
			isa.Instr{Op: isa.OpRestore},
		)
	}
	prog = append(prog, halt())
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	st := c.Stats()
	if st.WindowOverflows == 0 || st.WindowUnderflows == 0 {
		t.Fatalf("expected spills and fills: %d/%d", st.WindowOverflows, st.WindowUnderflows)
	}
}
