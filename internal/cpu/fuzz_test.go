package cpu_test

import (
	"fmt"

	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/isa"
)

// fuzzScratch is the data region fuzz-generated loads and stores hit:
// past the text segment, inside buildCore's 1 MiB RAM.
const fuzzScratch = textBase + 0x8000

// fuzzGadget decodes 4 fuzz bytes into a fixed-length instruction gadget.
// Every gadget is exactly 4 instructions, so branch displacements are
// static and always land on the next gadget boundary — arbitrary fuzz
// input can only produce valid, halting programs.
func fuzzGadget(b0, b1, b2, b3 byte) []isa.Instr {
	// Destinations stay in %o0..%i7 (8..31): %g6 holds the scratch base,
	// %g7 the loop counter, and the gadgets must clobber neither.
	rd := 8 + b1%24
	rs1 := b2 % 32
	imm := int32(b3)
	aluOps := []isa.Opcode{
		isa.OpAdd, isa.OpAddCC, isa.OpSub, isa.OpSubCC,
		isa.OpAnd, isa.OpAndCC, isa.OpOr, isa.OpOrCC,
		isa.OpXor, isa.OpXorCC, isa.OpAndN, isa.OpOrN, isa.OpXnor,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpUMul, isa.OpSMul,
	}
	pad := func(g ...isa.Instr) []isa.Instr {
		for len(g) < 4 {
			g = append(g, nop())
		}
		return g
	}
	switch b0 % 8 {
	case 0: // register-register ALU
		op := aluOps[int(b3)%len(aluOps)]
		return pad(alu(op, rd, rs1, b3%32))
	case 1: // register-immediate ALU
		op := aluOps[int(b2)%len(aluOps)]
		return pad(aluImm(op, rd, rs1, imm-128))
	case 2: // sethi
		return pad(isa.Instr{Op: isa.OpSethi, Rd: rd, Imm: int32(b2)<<8 | int32(b3)})
	case 3: // load (width from b2, offset aligned to the width)
		switch b2 % 3 {
		case 0:
			return pad(isa.Instr{Op: isa.OpLd, Rd: rd, Rs1: 6, UseImm: true, Imm: imm &^ 3})
		case 1:
			return pad(isa.Instr{Op: isa.OpLdUH, Rd: rd, Rs1: 6, UseImm: true, Imm: imm &^ 1})
		default:
			return pad(isa.Instr{Op: isa.OpLdSB, Rd: rd, Rs1: 6, UseImm: true, Imm: imm})
		}
	case 4: // store
		switch b2 % 3 {
		case 0:
			return pad(isa.Instr{Op: isa.OpSt, Rd: rd, Rs1: 6, UseImm: true, Imm: imm &^ 3})
		case 1:
			return pad(isa.Instr{Op: isa.OpStH, Rd: rd, Rs1: 6, UseImm: true, Imm: imm &^ 1})
		default:
			return pad(isa.Instr{Op: isa.OpStB, Rd: rd, Rs1: 6, UseImm: true, Imm: imm})
		}
	case 5: // load then immediately use the result (load interlock)
		return pad(
			isa.Instr{Op: isa.OpLd, Rd: rd, Rs1: 6, UseImm: true, Imm: imm &^ 3},
			alu(isa.OpAdd, rd, rd, rd))
	case 6: // compare and forward branch over one gadget slot
		return []isa.Instr{
			aluImm(isa.OpSubCC, 0, rs1, imm-128),
			{Op: isa.OpBicc, Cond: isa.Cond(b2 % 16), Annul: b2&16 != 0, Disp: 3},
			alu(aluOps[int(b3)%len(aluOps)], rd, rd, rs1), // delay slot, fusable ALU
			nop(), // branch target: next gadget
		}
	default: // Y-register round trip
		return pad(
			isa.Instr{Op: isa.OpWrY, Rs1: rs1, UseImm: true, Imm: imm},
			isa.Instr{Op: isa.OpRdY, Rd: rd})
	}
}

// fuzzProgram wraps the decoded gadgets in a counted loop so every hot
// path repeats enough to cross the superblock threshold, then halts.
func fuzzProgram(data []byte) []isa.Instr {
	prog := set32(6, fuzzScratch)                    // %g6 = scratch base
	prog = append(prog, aluImm(isa.OpAdd, 7, 0, 24)) // %g7 = trip count
	// Seed a few registers so gadget dataflow has material to chew on.
	for i := uint8(8); i < 12; i++ {
		prog = append(prog, isa.Instr{Op: isa.OpSethi, Rd: i, Imm: int32(i) * 0x1234})
	}
	loopHead := len(prog)
	for i := 0; i+4 <= len(data) && i < 32*4; i += 4 {
		prog = append(prog, fuzzGadget(data[i], data[i+1], data[i+2], data[i+3])...)
	}
	prog = append(prog,
		aluImm(isa.OpSubCC, 7, 7, 1), // %g7--
		isa.Instr{Op: isa.OpBicc, Cond: isa.CondNE, // bne loopHead
			Disp: int32(loopHead) - int32(len(prog)+1)},
		nop(), // delay slot
		halt())
	return prog
}

// fuzzResult is everything the three execution paths must agree on.
type fuzzResult struct {
	stats  string
	icc    isa.ICC
	y      uint32
	regs   [32]uint32
	sbHits uint64
}

func fuzzRun(t *testing.T, prog []isa.Instr, mode string) fuzzResult {
	t.Helper()
	c := buildCore(t, config.Default(), prog)
	switch mode {
	case "step":
		for !c.Halted() {
			if err := c.Step(); err != nil {
				t.Fatalf("step: %v (pc=%#x)", err, c.PC())
			}
		}
	case "fast":
		if err := c.Run(1 << 22); err != nil {
			t.Fatalf("fast run: %v (pc=%#x)", err, c.PC())
		}
	case "superblock":
		c.EnableSuperblocks(2)
		if err := c.Run(1 << 22); err != nil {
			t.Fatalf("superblock run: %v (pc=%#x)", err, c.PC())
		}
	}
	var res fuzzResult
	res.stats = statsString(c)
	res.icc = c.ICC()
	res.y = c.Y()
	for r := uint8(0); r < 32; r++ {
		res.regs[r] = c.Reg(r)
	}
	res.sbHits = c.SuperblockStats().Hits
	return res
}

// statsString flattens every counter the paths must agree on into one
// comparable, readable string.
func statsString(c *cpu.Core) string {
	return fmt.Sprintf("stats=%+v icache=%+v dcache=%+v",
		c.Stats(), c.ICacheStats(), c.DCacheStats())
}

// FuzzSuperblockDifferential feeds arbitrary bytes through the gadget
// decoder and demands the Step interpreter, the generic fast loop and the
// superblock executor agree on every architectural register, the
// condition codes, Y, and every cycle and cache counter. The loop harness
// guarantees the superblock compiler actually engages (threshold 2, 24
// trips), so the fuzzer explores block shapes — interior faults, line
// crossings, annulled slots, interlocks — no hand-written case list
// would.
func FuzzSuperblockDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 24, 5, 6, 7, 12, 9, 10, 11})
	f.Add([]byte{20, 0, 17, 200, 24, 13, 16, 40, 8, 7, 31, 9, 16, 22, 5, 250})
	f.Add([]byte{24, 24, 24, 24, 24, 24, 24, 24})                      // branch storm
	f.Add([]byte{12, 1, 0, 4, 16, 2, 0, 8, 12, 3, 1, 16, 20, 4, 2, 0}) // memory traffic
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		step := fuzzRun(t, prog, "step")
		fast := fuzzRun(t, prog, "fast")
		sb := fuzzRun(t, prog, "superblock")
		if fast.stats != step.stats || fast.icc != step.icc || fast.y != step.y || fast.regs != step.regs {
			t.Fatalf("fast loop diverged from Step:\nstep: %+v\nfast: %+v", step, fast)
		}
		if sb.stats != step.stats || sb.icc != step.icc || sb.y != step.y || sb.regs != step.regs {
			t.Fatalf("superblock executor diverged from Step:\nstep: %+v\nsb:   %+v", step, sb)
		}
	})
}
