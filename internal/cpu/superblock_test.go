package cpu_test

import (
	"reflect"
	"testing"

	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// sbRunResult captures everything a superblock run must reproduce exactly.
type sbRunResult struct {
	stats    profiler.Stats
	icache   cache.Stats
	dcache   cache.Stats
	exit     uint32
	checksum uint32
	console  string
	halted   bool
	bbv      []uint32
	sb       cpu.SuperblockStats
}

// sbRun executes prog to completion (or through chunked RunFor calls when
// chunk > 0, stressing entry declines at stop boundaries) with the given
// superblock threshold (0 = disabled).
func sbRun(t *testing.T, prog interface {
	Load(*mem.Memory) error
}, textBase uint32, textWords int, entry uint32, cfg config.Config, threshold int, chunk uint64) sbRunResult {
	t.Helper()
	m := mem.New(mem.DefaultRAMBytes)
	if err := prog.Load(m); err != nil {
		t.Fatalf("load: %v", err)
	}
	core, err := cpu.New(cfg, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := core.LoadText(textBase, textWords); err != nil {
		t.Fatalf("LoadText: %v", err)
	}
	core.EnableBlockVector(64, 4)
	core.EnableSuperblocks(threshold)
	core.Reset(entry)
	var bbv []uint32
	if chunk == 0 {
		if err := core.Run(1 << 32); err != nil {
			t.Fatalf("Run: %v (pc=%#x)", err, core.PC())
		}
		bbv = append([]uint32(nil), core.TakeBlockVector()...)
	} else {
		for !core.Halted() {
			if _, err := core.RunFor(chunk); err != nil {
				t.Fatalf("RunFor: %v (pc=%#x)", err, core.PC())
			}
			bbv = append(bbv, core.TakeBlockVector()...)
		}
	}
	return sbRunResult{
		stats:    core.Stats(),
		icache:   core.ICacheStats(),
		dcache:   core.DCacheStats(),
		exit:     core.ExitCode(),
		checksum: core.Reg(9),
		console:  core.Memory().Console(),
		halted:   core.Halted(),
		bbv:      bbv,
		sb:       core.SuperblockStats(),
	}
}

// TestSuperblockEquivalence proves superblock execution cycle-exact
// against the generic fast loop on every benchmark × configuration, both
// run to completion and through odd-sized RunFor chunks (which force the
// executor to decline entry near stop boundaries and let the generic loop
// finish blocks op by op). A threshold of 4 compiles far more blocks than
// the production default, maximising superblock coverage.
func TestSuperblockEquivalence(t *testing.T) {
	const scale = workload.Tiny
	anyHits := false
	for _, b := range progs.All() {
		prog, err := b.Assemble(scale)
		if err != nil {
			t.Fatalf("%s: assemble: %v", b.Name, err)
		}
		for name, cfg := range equivConfigs() {
			for _, chunk := range []uint64{0, 7_777} {
				mode := "full"
				if chunk > 0 {
					mode = "chunked"
				}
				t.Run(b.Name+"/"+name+"/"+mode, func(t *testing.T) {
					ref := sbRun(t, prog, prog.TextBase, prog.TextWords(), prog.Entry, cfg, 0, chunk)
					got := sbRun(t, prog, prog.TextBase, prog.TextWords(), prog.Entry, cfg, 4, chunk)
					if got.stats != ref.stats {
						t.Errorf("stats diverge:\nsb:  %+v\nref: %+v", got.stats, ref.stats)
					}
					if got.icache != ref.icache {
						t.Errorf("icache stats diverge: sb %+v ref %+v", got.icache, ref.icache)
					}
					if got.dcache != ref.dcache {
						t.Errorf("dcache stats diverge: sb %+v ref %+v", got.dcache, ref.dcache)
					}
					if got.exit != ref.exit || got.checksum != ref.checksum ||
						got.console != ref.console || got.halted != ref.halted {
						t.Errorf("architectural state diverges: sb %+v ref %+v", got, ref)
					}
					if !reflect.DeepEqual(got.bbv, ref.bbv) {
						t.Errorf("block signature vectors diverge:\nsb:  %v\nref: %v", got.bbv, ref.bbv)
					}
					if got.sb.Hits > 0 {
						anyHits = true
					}
				})
			}
		}
	}
	if !anyHits {
		t.Error("no benchmark executed a single superblock — the specializer is dead code")
	}
}

// TestSuperblockSelfModifyingDeopt pins the self-modifying-store deopt: a
// hot loop that eventually stores into the text segment must invalidate
// every compiled block, keep running on the generic loop, and still match
// a superblock-free run exactly.
func TestSuperblockSelfModifyingDeopt(t *testing.T) {
	// %g1 counts down from 200; every iteration stores %g1 to a scratch
	// slot and %g0 over the dead landing pad at the end of the text
	// segment (never fetched, so predecoded execution is unaffected and
	// the runs stay comparable). Once the loop head compiles, the first
	// superblock pass hits the text store mid-block and must deopt.
	prog := []isa.Instr{
		aluImm(isa.OpAdd, 1, 0, 200), // %g1 = 200
	}
	prog = append(prog, set32(2, textBase+64*4)...)   // %g2 = &pad (in text)
	prog = append(prog, set32(3, textBase+0x4000)...) // %g3 = &scratch (past text)
	prog = append(prog,
		// loop:
		aluImm(isa.OpSubCC, 1, 1, 1),                          // %g1-- (sets icc)
		isa.Instr{Op: isa.OpSt, Rd: 1, Rs1: 3, UseImm: true},  // st %g1, [%g3]
		isa.Instr{Op: isa.OpSt, Rd: 0, Rs1: 2, UseImm: true},  // st %g0, [%g2] — into text!
		aluImm(isa.OpSubCC, 0, 1, 0),                          // cmp %g1, 0
		isa.Instr{Op: isa.OpBicc, Cond: isa.CondNE, Disp: -4}, // bne loop
		nop(), //   (delay)
		halt(),
	)
	for len(prog) < 64 {
		prog = append(prog, nop())
	}
	prog = append(prog, nop()) // the pad the store hits

	ref := buildCore(t, config.Default(), prog)
	if err := ref.Run(1 << 20); err != nil {
		t.Fatalf("reference: %v (pc=%#x)", err, ref.PC())
	}

	sb := buildCore(t, config.Default(), prog)
	sb.EnableSuperblocks(4)
	if err := sb.Run(1 << 20); err != nil {
		t.Fatalf("superblock run: %v (pc=%#x)", err, sb.PC())
	}

	if got, want := sb.Stats(), ref.Stats(); got != want {
		t.Errorf("stats diverge:\nsb:  %+v\nref: %+v", got, want)
	}
	st := sb.SuperblockStats()
	if st.Compiled == 0 {
		t.Errorf("expected the hot loop to compile at least one block, got %+v", st)
	}
	if st.Deopts == 0 {
		t.Errorf("expected the text store to count a deopt, got %+v", st)
	}
	if sb.SuperblocksEnabled() {
		t.Error("superblocks still enabled after a self-modifying store")
	}
}

// TestSuperblockDisable pins the knob semantics: a non-positive threshold
// disables specialization and discards state.
func TestSuperblockDisable(t *testing.T) {
	prog := []isa.Instr{halt()}
	c := buildCore(t, config.Default(), prog)
	c.EnableSuperblocks(8)
	if !c.SuperblocksEnabled() {
		t.Fatal("EnableSuperblocks(8) left superblocks off")
	}
	c.EnableSuperblocks(-1)
	if c.SuperblocksEnabled() {
		t.Fatal("EnableSuperblocks(-1) left superblocks on")
	}
}
