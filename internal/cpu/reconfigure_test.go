package cpu_test

import (
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
)

// windowChainProg builds a program exercising the register-window
// machinery: descend depth SAVEs writing a fresh local in each window,
// then climb back up accumulating every window's local into %g1 and
// halt with the digest in %o1. Each window writes its local before
// reading it, so the final digest is architecture-defined regardless of
// where overflow traps (or a mid-run reconfiguration flush) landed.
func windowChainProg(depth int) []isa.Instr {
	var prog []isa.Instr
	prog = append(prog, movImm(17, 1)) // %l1 of the base window
	for d := 1; d <= depth; d++ {
		prog = append(prog,
			aluImm(isa.OpSave, isa.RegSP, isa.RegSP, -96),
			movImm(17, int32(d+2)),
		)
	}
	for d := 1; d <= depth; d++ {
		prog = append(prog,
			alu(isa.OpAdd, 1, 1, 17),
			aluImm(isa.OpRestore, 0, 0, 0),
		)
	}
	prog = append(prog,
		alu(isa.OpAdd, 1, 1, 17), // base window's local, refilled on climb
		alu(isa.OpOr, 9, 1, 0),   // digest in %o1
		movImm(8, 0),             // exit code 0
		halt(),
	)
	return prog
}

// buildShared builds a core for cfg over an existing loaded memory.
func buildShared(t *testing.T, cfg config.Config, m *mem.Memory, words int) *cpu.Core {
	t.Helper()
	c, err := cpu.New(cfg, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.LoadText(textBase, words); err != nil {
		t.Fatalf("LoadText: %v", err)
	}
	return c
}

// loadProg writes a program into a fresh memory.
func loadProg(t *testing.T, prog []isa.Instr) *mem.Memory {
	t.Helper()
	m := mem.New(1 << 20)
	for i, in := range prog {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode instr %d: %v", i, in)
		}
		if err := m.Write32(textBase+uint32(i)*4, w); err != nil {
			t.Fatalf("write instr %d: %v", i, err)
		}
	}
	return m
}

// TestAdoptArchState switches a deep save/restore chain between
// configurations with different register-window counts at various
// instruction boundaries: the architectural outcome (digest, exit code,
// instruction count) must match the uninterrupted runs on either
// configuration, because the instruction stream is
// configuration-independent.
func TestAdoptArchState(t *testing.T) {
	const depth = 10 // overflows the 8-window file, not the 16-window one
	prog := windowChainProg(depth)

	cfgA := config.Default() // 8 windows
	cfgB := config.Default()
	cfgB.IU.RegWindows = 16
	cfgB.DCache.LineWords = 8

	ref := func(cfg config.Config) (digest uint32, instrs uint64) {
		c := buildCore(t, cfg, prog)
		run(t, c)
		return c.Reg(9), c.Stats().Instructions
	}
	wantDigest, wantInstrs := ref(cfgA)
	if d, n := ref(cfgB); d != wantDigest || n != wantInstrs {
		t.Fatalf("pure runs disagree: cfgA (%#x, %d) vs cfgB (%#x, %d)", wantDigest, wantInstrs, d, n)
	}

	// Switch at every boundary inside the chain, both directions.
	for _, dir := range []struct {
		name     string
		from, to config.Config
	}{
		{"8to16", cfgA, cfgB},
		{"16to8", cfgB, cfgA},
		{"8to8", cfgA, cfgA},
	} {
		for cut := uint64(1); cut < wantInstrs; cut += 3 {
			m := loadProg(t, prog)
			src := buildShared(t, dir.from, m, len(prog))
			src.Reset(textBase)
			halted, err := src.RunFor(cut)
			if err != nil {
				t.Fatalf("%s cut %d: RunFor: %v", dir.name, cut, err)
			}
			if halted {
				break
			}
			dst := buildShared(t, dir.to, m, len(prog))
			if err := dst.AdoptArchState(src); err != nil {
				t.Fatalf("%s cut %d: AdoptArchState: %v", dir.name, cut, err)
			}
			if got := dst.Stats().Instructions; got != cut {
				t.Fatalf("%s cut %d: adopted instruction count %d", dir.name, cut, got)
			}
			if err := dst.Run(1_000_000); err != nil {
				t.Fatalf("%s cut %d: Run after adopt: %v", dir.name, cut, err)
			}
			if err := dst.Stats().ConsistencyError(); err != nil {
				t.Fatalf("%s cut %d: profile imbalance: %v", dir.name, cut, err)
			}
			if got := dst.Reg(9); got != wantDigest {
				t.Errorf("%s cut %d: digest %#x, want %#x", dir.name, cut, got, wantDigest)
			}
			if got := dst.Stats().Instructions; got != wantInstrs {
				t.Errorf("%s cut %d: instructions %d, want %d", dir.name, cut, got, wantInstrs)
			}
			if got := dst.ExitCode(); got != 0 {
				t.Errorf("%s cut %d: exit code %d", dir.name, cut, got)
			}
		}
	}
}

// TestAdoptArchStateErrors locks the preconditions: distinct memories
// and mismatched text are rejected.
func TestAdoptArchStateErrors(t *testing.T) {
	prog := windowChainProg(2)
	a := buildCore(t, config.Default(), prog)
	b := buildCore(t, config.Default(), prog) // its own memory
	if err := b.AdoptArchState(a); err == nil {
		t.Fatal("AdoptArchState across memories succeeded")
	}
}
