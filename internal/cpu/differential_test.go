package cpu_test

import (
	"math/rand"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"

	"liquidarch/internal/cache"
	"liquidarch/internal/cpu"
)

// evalState is an independent, minimal evaluator of the ALU subset used to
// differentially test the CPU: it implements the SPARC semantics directly
// from the manual, sharing no code with package cpu.
type evalState struct {
	regs [32]uint32
	y    uint32
	icc  isa.ICC
}

func (s *evalState) get(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return s.regs[r]
}

func (s *evalState) set(r uint8, v uint32) {
	if r != 0 {
		s.regs[r] = v
	}
}

func (s *evalState) op2(in isa.Instr) uint32 {
	if in.UseImm {
		return uint32(in.Imm)
	}
	return s.get(in.Rs2)
}

func (s *evalState) exec(in isa.Instr) {
	a, b := s.get(in.Rs1), s.op2(in)
	switch in.Op {
	case isa.OpAdd, isa.OpAddCC:
		r := a + b
		s.set(in.Rd, r)
		if in.Op == isa.OpAddCC {
			s.icc = isa.ICC{
				N: int32(r) < 0, Z: r == 0,
				V: int64(int32(a))+int64(int32(b)) != int64(int32(r)),
				C: uint64(a)+uint64(b) > 0xFFFFFFFF,
			}
		}
	case isa.OpSub, isa.OpSubCC:
		r := a - b
		s.set(in.Rd, r)
		if in.Op == isa.OpSubCC {
			s.icc = isa.ICC{
				N: int32(r) < 0, Z: r == 0,
				V: int64(int32(a))-int64(int32(b)) != int64(int32(r)),
				C: b > a,
			}
		}
	case isa.OpAnd, isa.OpAndCC:
		r := a & b
		s.set(in.Rd, r)
		if in.Op == isa.OpAndCC {
			s.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
		}
	case isa.OpOr, isa.OpOrCC:
		r := a | b
		s.set(in.Rd, r)
		if in.Op == isa.OpOrCC {
			s.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
		}
	case isa.OpXor, isa.OpXorCC:
		r := a ^ b
		s.set(in.Rd, r)
		if in.Op == isa.OpXorCC {
			s.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
		}
	case isa.OpAndN:
		s.set(in.Rd, a&^b)
	case isa.OpOrN:
		s.set(in.Rd, a|^b)
	case isa.OpXnor:
		s.set(in.Rd, ^(a ^ b))
	case isa.OpSll:
		s.set(in.Rd, a<<(b&31))
	case isa.OpSrl:
		s.set(in.Rd, a>>(b&31))
	case isa.OpSra:
		s.set(in.Rd, uint32(int32(a)>>(b&31)))
	case isa.OpUMul:
		p := uint64(a) * uint64(b)
		s.y = uint32(p >> 32)
		s.set(in.Rd, uint32(p))
	case isa.OpSMul:
		p := int64(int32(a)) * int64(int32(b))
		s.y = uint32(uint64(p) >> 32)
		s.set(in.Rd, uint32(p))
	case isa.OpUDiv:
		dividend := uint64(s.y)<<32 | uint64(a)
		q := dividend / uint64(b)
		if q > 0xFFFFFFFF {
			q = 0xFFFFFFFF
		}
		s.set(in.Rd, uint32(q))
	case isa.OpSethi:
		s.set(in.Rd, uint32(in.Imm)<<10)
	case isa.OpRdY:
		s.set(in.Rd, s.y)
	case isa.OpWrY:
		s.y = a ^ b
	}
}

// randomALUInstr draws a random straight-line instruction. Division is
// only generated with a guaranteed nonzero immediate divisor and zero Y.
func randomALUInstr(r *rand.Rand) isa.Instr {
	ops := []isa.Opcode{
		isa.OpAdd, isa.OpAddCC, isa.OpSub, isa.OpSubCC,
		isa.OpAnd, isa.OpAndCC, isa.OpOr, isa.OpOrCC,
		isa.OpXor, isa.OpXorCC, isa.OpAndN, isa.OpOrN, isa.OpXnor,
		isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpUMul, isa.OpSMul, isa.OpSethi, isa.OpRdY, isa.OpWrY,
	}
	op := ops[r.Intn(len(ops))]
	in := isa.Instr{
		Op:  op,
		Rd:  uint8(r.Intn(32)),
		Rs1: uint8(r.Intn(32)),
	}
	switch op {
	case isa.OpSethi:
		in.Imm = int32(r.Intn(1 << 22))
		in.Rs1 = 0
	case isa.OpRdY:
		in.Rs1 = 0
	default:
		if r.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = int32(r.Intn(8192) - 4096)
		} else {
			in.Rs2 = uint8(r.Intn(32))
		}
	}
	return in
}

// TestDifferentialALU runs random straight-line programs on the CPU and
// the independent evaluator and compares every register, Y and the
// condition codes.
func TestDifferentialALU(t *testing.T) {
	r := rand.New(rand.NewSource(20060410))
	for trial := 0; trial < 200; trial++ {
		n := 20 + r.Intn(60)
		prog := make([]isa.Instr, 0, n+2)
		// Seed some registers with interesting values.
		for i := uint8(1); i < 8; i++ {
			prog = append(prog, isa.Instr{Op: isa.OpSethi, Rd: i, Imm: int32(r.Intn(1 << 22))})
			prog = append(prog, aluImm(isa.OpXor, i, i, int32(r.Intn(1024))))
		}
		for len(prog) < n {
			prog = append(prog, randomALUInstr(r))
		}
		prog = append(prog, halt())

		c := buildCore(t, config.Default(), prog)
		ref := &evalState{}
		// Reset initialised %sp; mirror the full starting state so value
		// propagation through random programs stays comparable.
		ref.regs[isa.RegSP] = c.Reg(isa.RegSP)
		for _, in := range prog[:len(prog)-1] {
			ref.exec(in)
		}
		if err := c.Run(10000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		for reg := uint8(0); reg < 32; reg++ {
			if got, want := c.Reg(reg), ref.get(reg); got != want {
				t.Fatalf("trial %d: reg %s = %#x, evaluator says %#x",
					trial, isa.RegName(reg), got, want)
			}
		}
		if c.Y() != ref.y {
			t.Fatalf("trial %d: Y = %#x, want %#x", trial, c.Y(), ref.y)
		}
		if c.ICC() != ref.icc {
			t.Fatalf("trial %d: ICC = %+v, want %+v", trial, c.ICC(), ref.icc)
		}
	}
}

// TestDifferentialDivision exercises UDIV with controlled operands
// (nonzero divisors, explicit Y) against the evaluator.
func TestDifferentialDivision(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 100; trial++ {
		divisor := int32(1 + r.Intn(4000))
		hi := int32(r.Intn(2)) // small Y so quotients may or may not clamp
		prog := []isa.Instr{
			{Op: isa.OpSethi, Rd: 1, Imm: int32(r.Intn(1 << 22))},
			aluImm(isa.OpOr, 1, 1, int32(r.Intn(1024))),
			{Op: isa.OpWrY, Rs1: 0, UseImm: true, Imm: hi},
			aluImm(isa.OpUDiv, 2, 1, divisor),
			halt(),
		}
		c := buildCore(t, config.Default(), prog)
		ref := &evalState{}
		for _, in := range prog[:len(prog)-1] {
			ref.exec(in)
		}
		if err := c.Run(100); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := c.Reg(2), ref.get(2); got != want {
			t.Fatalf("trial %d: udiv = %#x, evaluator %#x (divisor %d, hi %d)",
				trial, got, want, divisor, hi)
		}
	}
}

// ---- Engine-equivalence suite ----
//
// The fast path (runFast, fast.go) must be cycle-exact against the
// reference Step interpreter: identical total cycles, identical per-class
// stall counters, identical cache event counters, and identical
// architectural results. This suite runs every benchmark program in
// internal/progs through both paths across a representative configuration
// set, for full runs and sampled (truncated) runs.

// equivConfigs returns the configuration set the engines are compared on.
func equivConfigs() map[string]config.Config {
	cfgs := map[string]config.Config{}

	cfgs["base"] = config.Default()

	// 4-way LRU caches: exercises the multi-way lookup, LRU aging, and
	// disables the dcache known-line probe skip.
	c := config.Default()
	c.ICache.Sets = 4
	c.ICache.SetSizeKB = 2
	c.ICache.Replacement = config.LRU
	c.DCache.Sets = 4
	c.DCache.SetSizeKB = 2
	c.DCache.Replacement = config.LRU
	cfgs["4wayLRU"] = c

	// Small caches with 4-word lines and 2-way LRR: exercises the miss
	// paths hard, the LRR pointer, and the shorter burst penalty.
	c = config.Default()
	c.ICache.SetSizeKB = 1
	c.ICache.LineWords = 4
	c.DCache.Sets = 2
	c.DCache.SetSizeKB = 1
	c.DCache.LineWords = 4
	c.DCache.Replacement = config.LRR
	cfgs["smallLRR"] = c

	// 2-way random replacement: exercises the xorshift victim stream,
	// which must replay identically on reused engines.
	c = config.Default()
	c.ICache.Sets = 2
	c.DCache.Sets = 2
	cfgs["2wayRnd"] = c

	// Integer-unit variations: software mul/div, slow jump/decode, no
	// ICC hold, 2-cycle load interlock, 16 register windows.
	c = config.Default()
	c.IU.FastJump = false
	c.IU.FastDecode = false
	c.IU.ICCHold = false
	c.IU.LoadDelay = 2
	c.IU.RegWindows = 16
	c.IU.Multiplier = config.MulNone
	c.IU.Divider = config.DivNone
	cfgs["slowIU"] = c

	return cfgs
}

// referenceRun executes prog on cfg with the Step interpreter only.
func referenceRun(t *testing.T, prog interface {
	Load(*mem.Memory) error
}, textBase uint32, textWords int, entry uint32, cfg config.Config, sample uint64) (profiler.Stats, cache.Stats, cache.Stats, uint32, uint32, string, bool) {
	t.Helper()
	m := mem.New(mem.DefaultRAMBytes)
	if err := prog.Load(m); err != nil {
		t.Fatalf("load: %v", err)
	}
	core, err := cpu.New(cfg, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := core.LoadText(textBase, textWords); err != nil {
		t.Fatalf("LoadText: %v", err)
	}
	core.Reset(entry)
	for !core.Halted() && (sample == 0 || core.Stats().Instructions < sample) {
		if err := core.Step(); err != nil {
			t.Fatalf("Step: %v (pc=%#x)", err, core.PC())
		}
	}
	return core.Stats(), core.ICacheStats(), core.DCacheStats(),
		core.ExitCode(), core.Reg(9), core.Memory().Console(), core.Halted()
}

// TestEngineEquivalence proves the fast path cycle-exact against the
// reference interpreter on every benchmark × configuration × run mode.
func TestEngineEquivalence(t *testing.T) {
	const scale = workload.Tiny
	for _, b := range progs.All() {
		prog, err := b.Assemble(scale)
		if err != nil {
			t.Fatalf("%s: assemble: %v", b.Name, err)
		}
		for name, cfg := range equivConfigs() {
			for _, sample := range []uint64{0, 20_000} {
				mode := "full"
				if sample > 0 {
					mode = "sampled"
				}
				t.Run(b.Name+"/"+name+"/"+mode, func(t *testing.T) {
					refStats, refIC, refDC, refExit, refSum, refConsole, refHalted :=
						referenceRun(t, prog, prog.TextBase, prog.TextWords(), prog.Entry, cfg, sample)

					rep, err := platform.RunWith(prog, cfg, platform.Options{SampleInstructions: sample})
					if err != nil {
						t.Fatalf("fast path: %v", err)
					}

					if rep.Stats != refStats {
						t.Errorf("stats diverge:\nfast: %+v\nref:  %+v", rep.Stats, refStats)
					}
					if rep.ICache != refIC {
						t.Errorf("icache stats diverge: fast %+v ref %+v", rep.ICache, refIC)
					}
					if rep.DCache != refDC {
						t.Errorf("dcache stats diverge: fast %+v ref %+v", rep.DCache, refDC)
					}
					if rep.ExitCode != refExit {
						t.Errorf("exit code %d != %d", rep.ExitCode, refExit)
					}
					if rep.Checksum != refSum {
						t.Errorf("checksum %#x != %#x", rep.Checksum, refSum)
					}
					if rep.Console != refConsole {
						t.Errorf("console %q != %q", rep.Console, refConsole)
					}
					if rep.Sampled == refHalted && sample > 0 {
						t.Errorf("sampled flag %v inconsistent with reference halted %v", rep.Sampled, refHalted)
					}
					if err := rep.Stats.ConsistencyError(); err != nil {
						t.Errorf("profile imbalance: %v", err)
					}
					if sample == 0 {
						if want := b.Golden(scale); rep.Checksum != want {
							t.Errorf("checksum %#x != golden %#x", rep.Checksum, want)
						}
					}
				})
			}
		}
	}
}

// TestEngineReuseDeterminism runs the same program twice through the
// pooled platform engines: the second run reuses the first run's core and
// memory via Reset + snapshot restore and must be bit-identical.
func TestEngineReuseDeterminism(t *testing.T) {
	b, _ := progs.ByName("drr")
	prog, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.DCache.Sets = 2 // random replacement: the RNG must reseed per run
	first, err := platform.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := platform.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats != second.Stats || first.ICache != second.ICache ||
		first.DCache != second.DCache || first.Checksum != second.Checksum ||
		first.Console != second.Console {
		t.Errorf("reused engine diverges:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestDCTICoupleDelaySlot pins the fast path's handling of a branch that
// itself executes as another CTI's delay slot (a DCTI couple): the
// branch's architectural delay slot is then the instruction at npc — the
// first CTI's target — not the instruction that follows the branch in
// memory, so the inline-slot fusion must not fire. Regression test for a
// bug where the fused delay slot read fast[idx+1] regardless of context.
func TestDCTICoupleDelaySlot(t *testing.T) {
	prog := []isa.Instr{
		aluImm(isa.OpSubCC, 0, 0, 0),                            // cmp %g0, %g0 (sets Z)
		{Op: isa.OpCall, Disp: 4},                               // call target (delay slot: the be)
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 4},              // be done — executes as the call's delay slot
		aluImm(isa.OpAdd, 9, 9, 100),                            // wrong: %o1 += 100 (follows the be in memory)
		aluImm(isa.OpAdd, 9, 9, 1),                              // target: %o1 += 1 — the be's architectural slot
		{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Disp: 1}, // done: ba,a .+1 (landing pad)
		halt(),
	}
	// Reference: pure Step execution.
	ref := buildCore(t, config.Default(), prog)
	for !ref.Halted() {
		if err := ref.Step(); err != nil {
			t.Fatalf("reference: %v (pc=%#x)", err, ref.PC())
		}
	}
	// Fast path: Run.
	fastc := buildCore(t, config.Default(), prog)
	if err := fastc.Run(1000); err != nil {
		t.Fatalf("fast: %v (pc=%#x)", err, fastc.PC())
	}
	if got, want := fastc.Reg(9), ref.Reg(9); got != want {
		t.Fatalf("%%o1 = %d on the fast path, %d on the reference", got, want)
	}
	if got, want := fastc.Stats(), ref.Stats(); got != want {
		t.Fatalf("stats diverge:\nfast: %+v\nref:  %+v", got, want)
	}
}
