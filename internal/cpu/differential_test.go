package cpu_test

import (
	"math/rand"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/isa"
)

// evalState is an independent, minimal evaluator of the ALU subset used to
// differentially test the CPU: it implements the SPARC semantics directly
// from the manual, sharing no code with package cpu.
type evalState struct {
	regs [32]uint32
	y    uint32
	icc  isa.ICC
}

func (s *evalState) get(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return s.regs[r]
}

func (s *evalState) set(r uint8, v uint32) {
	if r != 0 {
		s.regs[r] = v
	}
}

func (s *evalState) op2(in isa.Instr) uint32 {
	if in.UseImm {
		return uint32(in.Imm)
	}
	return s.get(in.Rs2)
}

func (s *evalState) exec(in isa.Instr) {
	a, b := s.get(in.Rs1), s.op2(in)
	switch in.Op {
	case isa.OpAdd, isa.OpAddCC:
		r := a + b
		s.set(in.Rd, r)
		if in.Op == isa.OpAddCC {
			s.icc = isa.ICC{
				N: int32(r) < 0, Z: r == 0,
				V: int64(int32(a))+int64(int32(b)) != int64(int32(r)),
				C: uint64(a)+uint64(b) > 0xFFFFFFFF,
			}
		}
	case isa.OpSub, isa.OpSubCC:
		r := a - b
		s.set(in.Rd, r)
		if in.Op == isa.OpSubCC {
			s.icc = isa.ICC{
				N: int32(r) < 0, Z: r == 0,
				V: int64(int32(a))-int64(int32(b)) != int64(int32(r)),
				C: b > a,
			}
		}
	case isa.OpAnd, isa.OpAndCC:
		r := a & b
		s.set(in.Rd, r)
		if in.Op == isa.OpAndCC {
			s.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
		}
	case isa.OpOr, isa.OpOrCC:
		r := a | b
		s.set(in.Rd, r)
		if in.Op == isa.OpOrCC {
			s.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
		}
	case isa.OpXor, isa.OpXorCC:
		r := a ^ b
		s.set(in.Rd, r)
		if in.Op == isa.OpXorCC {
			s.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
		}
	case isa.OpAndN:
		s.set(in.Rd, a&^b)
	case isa.OpOrN:
		s.set(in.Rd, a|^b)
	case isa.OpXnor:
		s.set(in.Rd, ^(a ^ b))
	case isa.OpSll:
		s.set(in.Rd, a<<(b&31))
	case isa.OpSrl:
		s.set(in.Rd, a>>(b&31))
	case isa.OpSra:
		s.set(in.Rd, uint32(int32(a)>>(b&31)))
	case isa.OpUMul:
		p := uint64(a) * uint64(b)
		s.y = uint32(p >> 32)
		s.set(in.Rd, uint32(p))
	case isa.OpSMul:
		p := int64(int32(a)) * int64(int32(b))
		s.y = uint32(uint64(p) >> 32)
		s.set(in.Rd, uint32(p))
	case isa.OpUDiv:
		dividend := uint64(s.y)<<32 | uint64(a)
		q := dividend / uint64(b)
		if q > 0xFFFFFFFF {
			q = 0xFFFFFFFF
		}
		s.set(in.Rd, uint32(q))
	case isa.OpSethi:
		s.set(in.Rd, uint32(in.Imm)<<10)
	case isa.OpRdY:
		s.set(in.Rd, s.y)
	case isa.OpWrY:
		s.y = a ^ b
	}
}

// randomALUInstr draws a random straight-line instruction. Division is
// only generated with a guaranteed nonzero immediate divisor and zero Y.
func randomALUInstr(r *rand.Rand) isa.Instr {
	ops := []isa.Opcode{
		isa.OpAdd, isa.OpAddCC, isa.OpSub, isa.OpSubCC,
		isa.OpAnd, isa.OpAndCC, isa.OpOr, isa.OpOrCC,
		isa.OpXor, isa.OpXorCC, isa.OpAndN, isa.OpOrN, isa.OpXnor,
		isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpUMul, isa.OpSMul, isa.OpSethi, isa.OpRdY, isa.OpWrY,
	}
	op := ops[r.Intn(len(ops))]
	in := isa.Instr{
		Op:  op,
		Rd:  uint8(r.Intn(32)),
		Rs1: uint8(r.Intn(32)),
	}
	switch op {
	case isa.OpSethi:
		in.Imm = int32(r.Intn(1 << 22))
		in.Rs1 = 0
	case isa.OpRdY:
		in.Rs1 = 0
	default:
		if r.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = int32(r.Intn(8192) - 4096)
		} else {
			in.Rs2 = uint8(r.Intn(32))
		}
	}
	return in
}

// TestDifferentialALU runs random straight-line programs on the CPU and
// the independent evaluator and compares every register, Y and the
// condition codes.
func TestDifferentialALU(t *testing.T) {
	r := rand.New(rand.NewSource(20060410))
	for trial := 0; trial < 200; trial++ {
		n := 20 + r.Intn(60)
		prog := make([]isa.Instr, 0, n+2)
		// Seed some registers with interesting values.
		for i := uint8(1); i < 8; i++ {
			prog = append(prog, isa.Instr{Op: isa.OpSethi, Rd: i, Imm: int32(r.Intn(1 << 22))})
			prog = append(prog, aluImm(isa.OpXor, i, i, int32(r.Intn(1024))))
		}
		for len(prog) < n {
			prog = append(prog, randomALUInstr(r))
		}
		prog = append(prog, halt())

		c := buildCore(t, config.Default(), prog)
		ref := &evalState{}
		// Reset initialised %sp; mirror the full starting state so value
		// propagation through random programs stays comparable.
		ref.regs[isa.RegSP] = c.Reg(isa.RegSP)
		for _, in := range prog[:len(prog)-1] {
			ref.exec(in)
		}
		if err := c.Run(10000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		for reg := uint8(0); reg < 32; reg++ {
			if got, want := c.Reg(reg), ref.get(reg); got != want {
				t.Fatalf("trial %d: reg %s = %#x, evaluator says %#x",
					trial, isa.RegName(reg), got, want)
			}
		}
		if c.Y() != ref.y {
			t.Fatalf("trial %d: Y = %#x, want %#x", trial, c.Y(), ref.y)
		}
		if c.ICC() != ref.icc {
			t.Fatalf("trial %d: ICC = %+v, want %+v", trial, c.ICC(), ref.icc)
		}
	}
}

// TestDifferentialDivision exercises UDIV with controlled operands
// (nonzero divisors, explicit Y) against the evaluator.
func TestDifferentialDivision(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 100; trial++ {
		divisor := int32(1 + r.Intn(4000))
		hi := int32(r.Intn(2)) // small Y so quotients may or may not clamp
		prog := []isa.Instr{
			{Op: isa.OpSethi, Rd: 1, Imm: int32(r.Intn(1 << 22))},
			aluImm(isa.OpOr, 1, 1, int32(r.Intn(1024))),
			{Op: isa.OpWrY, Rs1: 0, UseImm: true, Imm: hi},
			aluImm(isa.OpUDiv, 2, 1, divisor),
			halt(),
		}
		c := buildCore(t, config.Default(), prog)
		ref := &evalState{}
		for _, in := range prog[:len(prog)-1] {
			ref.exec(in)
		}
		if err := c.Run(100); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := c.Reg(2), ref.get(2); got != want {
			t.Fatalf("trial %d: udiv = %#x, evaluator %#x (divisor %d, hi %d)",
				trial, got, want, divisor, hi)
		}
	}
}
