// Package cpu implements the LEON2-like integer unit: a functional SPARC V8
// subset interpreter with a cycle-accurate-style timing model whose
// sensitivities follow the reconfigurable parameters of the paper's
// Figure 1 (caches, ICC hold, fast jump/decode, load delay, register
// windows, multiplier and divider options).
//
// The timing semantics are documented in DESIGN.md §6. Every cycle the
// model charges is attributed to a profiler category, and the profile
// balances exactly (profiler.Stats.ConsistencyError).
package cpu

import (
	"fmt"
	"io"

	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
)

// Core is one LEON2-like processor instance bound to a memory.
type Core struct {
	cfg    config.Config
	memory *mem.Memory
	icache *cache.Cache
	dcache *cache.Cache
	wbuf   *mem.WriteBuffer
	timing mem.Timing

	// Architectural state.
	globals [8]uint32
	window  []uint32 // nwindows*16 circular windowed registers
	cwp     int
	resid   int // live consecutive windows, 1..nwindows-1
	y       uint32
	icc     isa.ICC
	pc, npc uint32

	// Predecoded text segment.
	text     []isa.Instr
	textBase uint32

	// Hazard bookkeeping.
	loadHazardReg int  // physical register index of a just-loaded value, -1 if none
	iccJustSet    bool // previous instruction set the condition codes

	// Precomputed latencies.
	mulExtra      uint64
	divExtra      uint64
	imissPenalty  uint64
	dmissPenalty  uint64
	jumpExtra     uint64 // extra cycles for JMPL without fast jump
	decodeExtra   uint64 // extra cycles per taken CTI without fast decode
	loadInterlock uint64

	stats  profiler.Stats
	halted bool
	exit   uint32

	traceW     io.Writer
	traceLimit uint64
}

// Latency tables for the multiplier and divider options (cycles per
// operation, including the issue cycle).
var mulLatency = map[config.MultiplierOption]uint64{
	config.MulNone:      44, // software emulation, microcoded
	config.MulIterative: 35,
	config.Mul16x16:     4,
	config.Mul16x16Pipe: 2,
	config.Mul32x8:      4,
	config.Mul32x16:     2,
	config.Mul32x32:     1,
}

var divLatency = map[config.DividerOption]uint64{
	config.DivNone:   120, // software emulation, microcoded
	config.DivRadix2: 35,
}

// Window trap cost model: fixed overhead plus 16 word transfers that go
// through the data cache / write buffer.
const windowTrapOverhead = 8

// New builds a core for the given configuration. The configuration must
// validate.
func New(cfg config.Config, memory *mem.Memory) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ic, err := cache.New(cfg.ICache)
	if err != nil {
		return nil, fmt.Errorf("cpu: icache: %w", err)
	}
	dc, err := cache.New(cfg.DCache)
	if err != nil {
		return nil, fmt.Errorf("cpu: dcache: %w", err)
	}
	timing := mem.DefaultTiming()
	c := &Core{
		cfg:           cfg,
		memory:        memory,
		icache:        ic,
		dcache:        dc,
		wbuf:          mem.NewWriteBuffer(timing),
		timing:        timing,
		window:        make([]uint32, cfg.IU.RegWindows*16),
		resid:         1,
		loadHazardReg: noHazard,
		mulExtra:      mulLatency[cfg.IU.Multiplier] - 1,
		divExtra:      divLatency[cfg.IU.Divider] - 1,
		imissPenalty:  uint64(timing.BurstReadCycles(cfg.ICache.LineWords)),
		dmissPenalty:  uint64(timing.BurstReadCycles(cfg.DCache.LineWords)),
		loadInterlock: uint64(cfg.IU.LoadDelay),
	}
	if !cfg.IU.FastJump {
		c.jumpExtra = 1
	}
	if !cfg.IU.FastDecode {
		c.decodeExtra = 1
	}
	return c, nil
}

// Config returns the configuration the core was built with.
func (c *Core) Config() config.Config { return c.cfg }

// Memory returns the attached memory.
func (c *Core) Memory() *mem.Memory { return c.memory }

// Stats returns the profile accumulated so far.
func (c *Core) Stats() profiler.Stats { return c.stats }

// ICacheStats and DCacheStats expose the cache event counters.
func (c *Core) ICacheStats() cache.Stats { return c.icache.Stats() }
func (c *Core) DCacheStats() cache.Stats { return c.dcache.Stats() }

// Halted reports whether the program has executed the halt trap.
func (c *Core) Halted() bool { return c.halted }

// ExitCode returns %o0 at the halt trap.
func (c *Core) ExitCode() uint32 { return c.exit }

// PC returns the current program counter.
func (c *Core) PC() uint32 { return c.pc }

// LoadText predecodes the text segment (already resident in memory) so
// execution can index instructions directly. Programs are not
// self-modifying; stores into the text range do not re-decode.
func (c *Core) LoadText(base uint32, words int) error {
	if base%4 != 0 {
		return fmt.Errorf("cpu: text base %#x not word aligned", base)
	}
	text := make([]isa.Instr, words)
	for i := 0; i < words; i++ {
		w, err := c.memory.Read32(base + uint32(i)*4)
		if err != nil {
			return fmt.Errorf("cpu: reading text word %d: %w", i, err)
		}
		in, err := isa.Decode(w)
		if err != nil {
			// Tolerate undecodable words (e.g. literal pools): they only
			// fault if control flow reaches them.
			in = isa.Instr{Op: isa.OpInvalid}
		}
		text[i] = in
	}
	c.text = text
	c.textBase = base
	return nil
}

// Reset rewinds architectural state and the profile, sets the entry point,
// and initialises the stack pointer to the top of RAM.
func (c *Core) Reset(entry uint32) {
	c.globals = [8]uint32{}
	for i := range c.window {
		c.window[i] = 0
	}
	c.cwp = 0
	c.resid = 1
	c.y = 0
	c.icc = isa.ICC{}
	c.pc = entry
	c.npc = entry + 4
	c.loadHazardReg = noHazard
	c.iccJustSet = false
	c.stats = profiler.Stats{}
	c.halted = false
	c.exit = 0
	c.icache.Flush()
	c.dcache.Flush()
	c.wbuf.Reset()
	// ABI: %sp at top of RAM, 64-byte save area reserved.
	c.setReg(isa.RegSP, mem.RAMBase+uint32(c.memory.Size())-64)
}

// windowCount returns the configured number of register windows.
func (c *Core) windowCount() int { return c.cfg.IU.RegWindows }

// physIndex maps an architectural register in the current window to its
// physical index in c.window (windowed registers only; r >= 8).
func (c *Core) physIndex(r uint8) int {
	n := len(c.window)
	switch {
	case r < 16: // outs
		return (c.cwp*16 + int(r) - 8) % n
	case r < 24: // locals
		return (c.cwp*16 + 8 + int(r) - 16) % n
	default: // ins
		return (c.cwp*16 + 16 + int(r) - 24) % n
	}
}

// getReg reads architectural register r; %g0 is hardwired to zero.
func (c *Core) getReg(r uint8) uint32 {
	if r < 8 {
		if r == 0 {
			return 0
		}
		return c.globals[r]
	}
	return c.window[c.physIndex(r)]
}

// setReg writes architectural register r; writes to %g0 are discarded.
func (c *Core) setReg(r uint8, v uint32) {
	if r < 8 {
		if r != 0 {
			c.globals[r] = v
		}
		return
	}
	c.window[c.physIndex(r)] = v
}

// Reg exposes register values for tests and the platform's result
// extraction.
func (c *Core) Reg(r uint8) uint32 { return c.getReg(r) }

// SetReg pokes a register; used by tests and loaders.
func (c *Core) SetReg(r uint8, v uint32) { c.setReg(r, v) }

// SetTrace enables an execution trace: the first limit instructions are
// disassembled to w as they execute. Pass nil to disable.
func (c *Core) SetTrace(w io.Writer, limit uint64) {
	c.traceW = w
	c.traceLimit = limit
}

// ICC exposes the integer condition codes (read-only, for tests).
func (c *Core) ICC() isa.ICC { return c.icc }

// Y exposes the Y register (read-only, for tests).
func (c *Core) Y() uint32 { return c.y }
