// Package cpu implements the LEON2-like integer unit: a functional SPARC V8
// subset interpreter with a cycle-accurate-style timing model whose
// sensitivities follow the reconfigurable parameters of the paper's
// Figure 1 (caches, ICC hold, fast jump/decode, load delay, register
// windows, multiplier and divider options).
//
// The timing semantics are documented in DESIGN.md §6. Every cycle the
// model charges is attributed to a profiler category, and the profile
// balances exactly (profiler.Stats.ConsistencyError).
package cpu

import (
	"fmt"
	"io"

	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
)

// Core is one LEON2-like processor instance bound to a memory.
type Core struct {
	cfg    config.Config
	memory *mem.Memory
	icache *cache.Cache
	dcache *cache.Cache
	wbuf   *mem.WriteBuffer
	timing mem.Timing

	// Architectural state. The register file is one flat slice: the 8
	// globals at [0:8], the nwindows*16 circular windowed registers at
	// [8:8+nwin], and a write sink for %g0 in the final slot. The view
	// tables map an architectural register number to its regfile index
	// for the current window; they are rebuilt only when cwp changes
	// (SAVE/RESTORE/Reset), which makes every register access in the hot
	// loop a branch-free double index. Reads of %g0 map to regfile[0],
	// which is never written because writes to %g0 map to the sink.
	// regfile is a fixed 1024-slot array so the fast path's 10-bit
	// masked indices are provably in range (no bounds checks); only the
	// first 8+nwin+1 slots are used.
	regfile [1024]uint32
	viewR   [32]int32 // architectural reg -> regfile index, reads
	viewW   [32]int32 // same for writes (%g0 diverts to the sink)
	viewHz  [32]int32 // hazard scoreboard index (globals negative)
	nwin    int       // windowed register count, RegWindows*16
	fastCwp int       // window pointer fastRI is resolved for
	cwp     int
	resid   int // live consecutive windows, 1..nwindows-1
	y       uint32
	icc     isa.ICC
	pc, npc uint32

	// Predecoded text segment. text is the architectural decode used by
	// the reference Step path; fast is the flattened fast-path form with
	// pre-extended immediates, absolute CTI targets and per-op dispatch
	// flags (see fast.go).
	text     []isa.Instr
	fast     []fastInstr
	fastRI   []uint32 // per-instruction packed register-file indices (patchFastRI)
	textBase uint32

	// Hazard bookkeeping.
	loadHazardReg int  // physical register index of a just-loaded value, -1 if none
	iccJustSet    bool // previous instruction set the condition codes

	// Precomputed latencies.
	mulExtra      uint64
	divExtra      uint64
	imissPenalty  uint64
	dmissPenalty  uint64
	jumpExtra     uint64 // extra cycles for JMPL without fast jump
	decodeExtra   uint64 // extra cycles per taken CTI without fast decode
	loadInterlock uint64
	iccHold       bool   // cfg.IU.ICCHold, hoisted for the fast loop
	icLineShift   uint32 // log2 of the icache line bytes, for fetch batching
	dcLineShift   uint32 // log2 of the dcache line bytes
	dcLineSkip    bool   // known-resident-line probe skip is sound (non-LRU)

	stats  profiler.Stats
	halted bool
	exit   uint32

	// Block-signature vector (interval profiling support). When non-nil,
	// every taken control transfer increments the bucket its target
	// address falls in — a coarse basic-block vector in the SimPoint
	// sense, cheap enough to leave on for a whole run: one predictable
	// branch per taken CTI when disabled, one array increment when
	// enabled. len(bbv) is a power of two; bbvShift sets the bucket
	// granularity in address bits.
	bbv      []uint32
	bbvShift uint32

	// Superblock specialization (superblock.go). sbHeat counts taken
	// branches per target text index; when an entry crosses sbThreshold
	// the region is compiled into sbBlocks and sbIndex maps its head to
	// the block (1-based handle; -1 marks a rejected head). All nil/zero
	// when disabled. The compiled set survives Reset: compilation is
	// timing-transparent, so reuse across runs cannot change results.
	sbHeat      []uint32
	sbIndex     []int32
	sbBlocks    []sbBlock
	sbThreshold uint32
	sbStats     SuperblockStats

	traceW     io.Writer
	traceLimit uint64
}

// Latency tables for the multiplier and divider options (cycles per
// operation, including the issue cycle).
var mulLatency = map[config.MultiplierOption]uint64{
	config.MulNone:      44, // software emulation, microcoded
	config.MulIterative: 35,
	config.Mul16x16:     4,
	config.Mul16x16Pipe: 2,
	config.Mul32x8:      4,
	config.Mul32x16:     2,
	config.Mul32x32:     1,
}

var divLatency = map[config.DividerOption]uint64{
	config.DivNone:   120, // software emulation, microcoded
	config.DivRadix2: 35,
}

// Window trap cost model: fixed overhead plus 16 word transfers that go
// through the data cache / write buffer.
const windowTrapOverhead = 8

// New builds a core for the given configuration. The configuration must
// validate.
func New(cfg config.Config, memory *mem.Memory) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ic, err := cache.New(cfg.ICache)
	if err != nil {
		return nil, fmt.Errorf("cpu: icache: %w", err)
	}
	dc, err := cache.New(cfg.DCache)
	if err != nil {
		return nil, fmt.Errorf("cpu: dcache: %w", err)
	}
	timing := mem.DefaultTiming()
	c := &Core{
		cfg:           cfg,
		memory:        memory,
		icache:        ic,
		dcache:        dc,
		wbuf:          mem.NewWriteBuffer(timing),
		timing:        timing,
		nwin:          cfg.IU.RegWindows * 16,
		resid:         1,
		loadHazardReg: noHazard,
		mulExtra:      mulLatency[cfg.IU.Multiplier] - 1,
		divExtra:      divLatency[cfg.IU.Divider] - 1,
		imissPenalty:  uint64(timing.BurstReadCycles(cfg.ICache.LineWords)),
		dmissPenalty:  uint64(timing.BurstReadCycles(cfg.DCache.LineWords)),
		loadInterlock: uint64(cfg.IU.LoadDelay),
		iccHold:       cfg.IU.ICCHold,
		icLineShift:   ic.LineShift(),
		dcLineShift:   dc.LineShift(),
		// Skipping a probe of the line probed last is only sound when a
		// hit has no replacement side effects: under LRU a hit re-ages
		// the way, so interleaved writes to the set could change later
		// victim choices. 1-way caches have no replacement state at all.
		dcLineSkip: cfg.DCache.Sets == 1 || cfg.DCache.Replacement != config.LRU,
	}
	if !cfg.IU.FastJump {
		c.jumpExtra = 1
	}
	if !cfg.IU.FastDecode {
		c.decodeExtra = 1
	}
	c.rebuildViews()
	return c, nil
}

// Config returns the configuration the core was built with.
func (c *Core) Config() config.Config { return c.cfg }

// Memory returns the attached memory.
func (c *Core) Memory() *mem.Memory { return c.memory }

// Stats returns the profile accumulated so far.
func (c *Core) Stats() profiler.Stats { return c.stats }

// ICacheStats and DCacheStats expose the cache event counters.
func (c *Core) ICacheStats() cache.Stats { return c.icache.Stats() }
func (c *Core) DCacheStats() cache.Stats { return c.dcache.Stats() }

// Halted reports whether the program has executed the halt trap.
func (c *Core) Halted() bool { return c.halted }

// ExitCode returns %o0 at the halt trap.
func (c *Core) ExitCode() uint32 { return c.exit }

// PC returns the current program counter.
func (c *Core) PC() uint32 { return c.pc }

// LoadText predecodes the text segment (already resident in memory) so
// execution can index instructions directly. Programs are not
// self-modifying; stores into the text range do not re-decode.
//
// Each word is decoded twice: into the architectural isa.Instr form used
// by the reference Step path, and into the flattened fastInstr form
// (pre-extended immediates, absolute branch targets, hazard flags) used
// by the trace-free runFast loop.
func (c *Core) LoadText(base uint32, words int) error {
	if base%4 != 0 {
		return fmt.Errorf("cpu: text base %#x not word aligned", base)
	}
	text := make([]isa.Instr, words)
	fast := make([]fastInstr, words)
	for i := 0; i < words; i++ {
		w, err := c.memory.Read32(base + uint32(i)*4)
		if err != nil {
			return fmt.Errorf("cpu: reading text word %d: %w", i, err)
		}
		in, err := isa.Decode(w)
		if err != nil {
			// Tolerate undecodable words (e.g. literal pools): they only
			// fault if control flow reaches them.
			in = isa.Instr{Op: isa.OpInvalid}
		}
		text[i] = in
		fast[i] = predecode(in, base+uint32(i)*4)
	}
	fusePairs(fast)
	c.text = text
	c.fast = fast
	c.textBase = base
	c.fastRI = make([]uint32, words)
	c.patchFastRI()
	if c.sbThreshold > 0 {
		// New text invalidates any compiled superblocks; re-arm discovery
		// for the new region.
		c.sbHeat = nil
		c.EnableSuperblocks(int(c.sbThreshold))
	}
	return nil
}

// Reset rewinds architectural state and the profile, sets the entry point,
// and initialises the stack pointer to the top of RAM.
func (c *Core) Reset(entry uint32) {
	for i := 0; i <= 8+c.nwin; i++ {
		c.regfile[i] = 0
	}
	c.cwp = 0
	c.resid = 1
	c.rebuildViews()
	if c.fastRI != nil && c.fastCwp != 0 {
		c.patchFastRI()
	}
	c.y = 0
	c.icc = isa.ICC{}
	c.pc = entry
	c.npc = entry + 4
	c.loadHazardReg = noHazard
	c.iccJustSet = false
	c.stats = profiler.Stats{}
	c.halted = false
	c.exit = 0
	// Full cache reset (not just a flush): a core reused across runs must
	// replay the replacement RNG and report per-run cache counters exactly
	// like a freshly built one.
	c.icache.Reset()
	c.dcache.Reset()
	c.wbuf.Reset()
	clear(c.bbv)
	// ABI: %sp at top of RAM, 64-byte save area reserved.
	c.setReg(isa.RegSP, mem.RAMBase+uint32(c.memory.Size())-64)
}

// windowCount returns the configured number of register windows.
func (c *Core) windowCount() int { return c.cfg.IU.RegWindows }

// physIndex maps an architectural register in the current window to its
// physical index within the windowed part of the register file (windowed
// registers only; r >= 8). Outs, locals and ins all collapse to
// cwp*16 + (r-8) modulo the windowed count, and since cwp*16+(r-8) <
// 2*nwin the modulo reduces to one conditional subtraction — no integer
// division on the hot path.
func (c *Core) physIndex(r uint8) int {
	i := c.cwp*16 + int(r) - 8
	if i >= c.nwin {
		i -= c.nwin
	}
	return i
}

// rebuildViews recomputes the register view tables for the current
// window. Called whenever cwp changes (Reset, SAVE, RESTORE); between
// rotations every register access is two dependent loads with no
// branches.
func (c *Core) rebuildViews() {
	sink := int32(8 + c.nwin) // one past the windowed registers
	for r := 0; r < 8; r++ {
		c.viewR[r] = int32(r)
		c.viewW[r] = int32(r)
		c.viewHz[r] = int32(-r - 1)
	}
	c.viewW[0] = sink // %g0 writes are discarded
	for r := 8; r < 32; r++ {
		phys := c.physIndex(uint8(r))
		c.viewR[r] = int32(8 + phys)
		c.viewW[r] = int32(8 + phys)
		c.viewHz[r] = int32(phys)
	}
}

// getReg reads architectural register r; %g0 is hardwired to zero
// (regfile[0] is never written: %g0 writes land in the sink slot).
func (c *Core) getReg(r uint8) uint32 {
	return c.regfile[c.viewR[r&31]]
}

// setReg writes architectural register r; writes to %g0 are discarded.
func (c *Core) setReg(r uint8, v uint32) {
	c.regfile[c.viewW[r&31]] = v
}

// Reg exposes register values for tests and the platform's result
// extraction.
func (c *Core) Reg(r uint8) uint32 { return c.getReg(r) }

// SetReg pokes a register; used by tests and loaders.
func (c *Core) SetReg(r uint8, v uint32) { c.setReg(r, v) }

// SetTrace enables an execution trace: the first limit instructions are
// disassembled to w as they execute. Pass nil to disable.
func (c *Core) SetTrace(w io.Writer, limit uint64) {
	c.traceW = w
	c.traceLimit = limit
}

// EnableBlockVector turns on block-signature collection: every taken
// control transfer (branch, call, register jump) increments the bucket
// its target address maps to, bucket = target>>shift modulo buckets.
// buckets must be a power of two. Enabling is idempotent; the vector
// survives Reset (zeroed, not discarded) so pooled engines keep
// collecting across runs.
func (c *Core) EnableBlockVector(buckets int, shift uint32) {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic(fmt.Sprintf("cpu: block vector buckets %d not a power of two", buckets))
	}
	if len(c.bbv) != buckets {
		c.bbv = make([]uint32, buckets)
	}
	c.bbvShift = shift
}

// TakeBlockVector returns a copy of the accumulated block-signature
// vector and zeroes the accumulator — the per-interval snapshot
// primitive. Returns nil when collection is disabled.
func (c *Core) TakeBlockVector() []uint32 {
	if c.bbv == nil {
		return nil
	}
	out := make([]uint32, len(c.bbv))
	copy(out, c.bbv)
	clear(c.bbv)
	return out
}

// noteBlock records a taken control transfer to target in the block
// vector; the reference Step path's counterpart of the fast loop's
// inlined increments.
func (c *Core) noteBlock(target uint32) {
	if c.bbv != nil {
		c.bbv[target>>c.bbvShift&uint32(len(c.bbv)-1)]++
	}
}

// ICC exposes the integer condition codes (read-only, for tests).
func (c *Core) ICC() isa.ICC { return c.icc }

// Y exposes the Y register (read-only, for tests).
func (c *Core) Y() uint32 { return c.y }
