package cpu

import (
	"fmt"

	"liquidarch/internal/isa"
)

// ErrHalted is returned by Step after the program has halted.
var ErrHalted = fmt.Errorf("cpu: program has halted")

// deviceBase marks the start of the uncached device address space (the APB
// UART lives there); accesses above it bypass the data cache.
const deviceBase uint32 = 0x80000000

// haltTrap is the software trap number that stops the simulator ("ta 0").
const haltTrap = 0

// hazardIndex maps an architectural register to a unique scoreboard index:
// globals occupy the negative space so they never collide with physical
// windowed registers. The mapping is precomputed per window rotation in
// the viewHz table.
func (c *Core) hazardIndex(r uint8) int {
	return int(c.viewHz[r&31])
}

// readsReg reports whether instruction in reads the register with hazard
// index idx in the current window.
func (c *Core) readsReg(in *isa.Instr, idx int) bool {
	switch in.Op {
	case isa.OpSethi, isa.OpBicc, isa.OpCall, isa.OpRdY:
		return false
	}
	if c.hazardIndex(in.Rs1) == idx {
		return true
	}
	if !in.UseImm && c.hazardIndex(in.Rs2) == idx {
		return true
	}
	// Stores read their data register rd.
	if in.Op.IsStore() && c.hazardIndex(in.Rd) == idx {
		return true
	}
	return false
}

// operand2 resolves the second ALU operand (register or sign-extended
// immediate).
func (c *Core) operand2(in *isa.Instr) uint32 {
	if in.UseImm {
		return uint32(in.Imm)
	}
	return c.getReg(in.Rs2)
}

// fetch charges the instruction fetch at addr through the icache.
func (c *Core) fetch(addr uint32) {
	if !c.icache.Read(addr) {
		c.stats.ICacheStall += c.imissPenalty
		c.stats.Cycles += c.imissPenalty
	}
}

// annulSlot consumes the (annulled) delay slot at addr: it is fetched and
// occupies a pipeline slot but does not execute.
func (c *Core) annulSlot(addr uint32) {
	c.fetch(addr)
	c.stats.Cycles++
	c.stats.AnnulledSlots++
	c.loadHazardReg = noHazard
	c.iccJustSet = false
}

// takenCTI charges the penalties common to every taken control transfer.
func (c *Core) takenCTI() {
	c.stats.BranchPenalty++
	c.stats.Cycles++
	if c.decodeExtra != 0 {
		c.stats.DecodeStall += c.decodeExtra
		c.stats.Cycles += c.decodeExtra
	}
}

// Step executes one instruction (plus any annulled delay slot it skips).
func (c *Core) Step() error {
	if c.halted {
		return ErrHalted
	}
	if c.pc&3 != 0 {
		return fmt.Errorf("cpu: misaligned pc %#08x", c.pc)
	}
	idx := (c.pc - c.textBase) >> 2
	if uint64(idx) >= uint64(len(c.text)) {
		return fmt.Errorf("cpu: pc %#08x outside text [%#08x,%#08x)",
			c.pc, c.textBase, c.textBase+uint32(len(c.text))*4)
	}
	in := &c.text[idx]

	c.fetch(c.pc)
	c.stats.Cycles++
	c.stats.Instructions++
	if c.traceW != nil && c.stats.Instructions <= c.traceLimit {
		fmt.Fprintf(c.traceW, "%10d  %08x:  %s\n", c.stats.Cycles, c.pc, isa.Disassemble(*in, c.pc))
	}

	// Load-use interlock: the previous instruction was a load whose
	// destination this instruction reads.
	if c.loadHazardReg != noHazard && c.readsReg(in, c.loadHazardReg) {
		c.stats.LoadInterlock += c.loadInterlock
		c.stats.Cycles += c.loadInterlock
	}
	hadICC := c.iccJustSet
	c.loadHazardReg = noHazard
	c.iccJustSet = false

	// Default sequential flow.
	nextPC, nextNPC := c.npc, c.npc+4

	switch in.Op {
	case isa.OpAdd, isa.OpAddCC:
		a, b := c.getReg(in.Rs1), c.operand2(in)
		r := a + b
		c.setReg(in.Rd, r)
		if in.Op == isa.OpAddCC {
			c.icc = isa.ICC{
				N: int32(r) < 0,
				Z: r == 0,
				V: (^(a^b)&(a^r))>>31 != 0,
				C: r < a,
			}
			c.iccJustSet = true
		}

	case isa.OpSub, isa.OpSubCC:
		a, b := c.getReg(in.Rs1), c.operand2(in)
		r := a - b
		c.setReg(in.Rd, r)
		if in.Op == isa.OpSubCC {
			c.icc = isa.ICC{
				N: int32(r) < 0,
				Z: r == 0,
				V: ((a^b)&(a^r))>>31 != 0,
				C: b > a,
			}
			c.iccJustSet = true
		}

	case isa.OpAnd, isa.OpAndCC:
		r := c.getReg(in.Rs1) & c.operand2(in)
		c.setReg(in.Rd, r)
		if in.Op == isa.OpAndCC {
			c.setLogicICC(r)
		}

	case isa.OpOr, isa.OpOrCC:
		r := c.getReg(in.Rs1) | c.operand2(in)
		c.setReg(in.Rd, r)
		if in.Op == isa.OpOrCC {
			c.setLogicICC(r)
		}

	case isa.OpXor, isa.OpXorCC:
		r := c.getReg(in.Rs1) ^ c.operand2(in)
		c.setReg(in.Rd, r)
		if in.Op == isa.OpXorCC {
			c.setLogicICC(r)
		}

	case isa.OpAndN:
		c.setReg(in.Rd, c.getReg(in.Rs1)&^c.operand2(in))
	case isa.OpOrN:
		c.setReg(in.Rd, c.getReg(in.Rs1)|^c.operand2(in))
	case isa.OpXnor:
		c.setReg(in.Rd, ^(c.getReg(in.Rs1) ^ c.operand2(in)))

	case isa.OpSll:
		c.setReg(in.Rd, c.getReg(in.Rs1)<<(c.operand2(in)&31))
	case isa.OpSrl:
		c.setReg(in.Rd, c.getReg(in.Rs1)>>(c.operand2(in)&31))
	case isa.OpSra:
		c.setReg(in.Rd, uint32(int32(c.getReg(in.Rs1))>>(c.operand2(in)&31)))

	case isa.OpUMul, isa.OpUMulCC:
		p := uint64(c.getReg(in.Rs1)) * uint64(c.operand2(in))
		c.y = uint32(p >> 32)
		r := uint32(p)
		c.setReg(in.Rd, r)
		if in.Op == isa.OpUMulCC {
			c.setLogicICC(r)
		}
		c.stats.Mults++
		c.stats.MulStall += c.mulExtra
		c.stats.Cycles += c.mulExtra

	case isa.OpSMul, isa.OpSMulCC:
		p := int64(int32(c.getReg(in.Rs1))) * int64(int32(c.operand2(in)))
		c.y = uint32(uint64(p) >> 32)
		r := uint32(p)
		c.setReg(in.Rd, r)
		if in.Op == isa.OpSMulCC {
			c.setLogicICC(r)
		}
		c.stats.Mults++
		c.stats.MulStall += c.mulExtra
		c.stats.Cycles += c.mulExtra

	case isa.OpUDiv:
		divisor := c.operand2(in)
		if divisor == 0 {
			return fmt.Errorf("cpu: division by zero at %#08x", c.pc)
		}
		dividend := uint64(c.y)<<32 | uint64(c.getReg(in.Rs1))
		q := dividend / uint64(divisor)
		if q > 0xFFFFFFFF {
			q = 0xFFFFFFFF // SPARC overflow clamp
		}
		c.setReg(in.Rd, uint32(q))
		c.stats.Divs++
		c.stats.DivStall += c.divExtra
		c.stats.Cycles += c.divExtra

	case isa.OpSDiv:
		divisor := int64(int32(c.operand2(in)))
		if divisor == 0 {
			return fmt.Errorf("cpu: division by zero at %#08x", c.pc)
		}
		dividend := int64(uint64(c.y)<<32 | uint64(c.getReg(in.Rs1)))
		q := dividend / divisor
		if q > 0x7FFFFFFF {
			q = 0x7FFFFFFF
		} else if q < -0x80000000 {
			q = -0x80000000
		}
		c.setReg(in.Rd, uint32(int32(q)))
		c.stats.Divs++
		c.stats.DivStall += c.divExtra
		c.stats.Cycles += c.divExtra

	case isa.OpRdY:
		c.setReg(in.Rd, c.y)
	case isa.OpWrY:
		c.y = c.getReg(in.Rs1) ^ c.operand2(in)

	case isa.OpSethi:
		c.setReg(in.Rd, uint32(in.Imm)<<10)

	case isa.OpLd, isa.OpLdUB, isa.OpLdSB, isa.OpLdUH, isa.OpLdSH:
		if err := c.execLoad(in); err != nil {
			return fmt.Errorf("%w at %#08x", err, c.pc)
		}

	case isa.OpSt, isa.OpStB, isa.OpStH:
		if err := c.execStore(in); err != nil {
			return fmt.Errorf("%w at %#08x", err, c.pc)
		}

	case isa.OpBicc:
		c.stats.Branches++
		if hadICC && c.cfg.IU.ICCHold {
			c.stats.ICCHoldStall++
			c.stats.Cycles++
		}
		target := c.pc + uint32(in.Disp)*4
		taken := in.Cond.Holds(c.icc)
		switch {
		case taken && in.Cond == isa.CondA && in.Annul:
			// ba,a: delay slot annulled even though taken.
			c.stats.TakenBranches++
			c.takenCTI()
			c.noteBlock(target)
			c.annulSlot(c.npc)
			nextPC, nextNPC = target, target+4
		case taken:
			c.stats.TakenBranches++
			c.takenCTI()
			c.noteBlock(target)
			nextPC, nextNPC = c.npc, target
		case in.Annul:
			// Untaken with annul: skip the delay slot.
			c.annulSlot(c.npc)
			nextPC, nextNPC = c.npc+4, c.npc+8
		}

	case isa.OpCall:
		c.stats.Calls++
		c.setReg(isa.RegO7, c.pc)
		c.takenCTI()
		target := c.pc + uint32(in.Disp)*4
		c.noteBlock(target)
		nextPC, nextNPC = c.npc, target

	case isa.OpJmpl:
		c.stats.Jumps++
		target := c.getReg(in.Rs1) + c.operand2(in)
		if target&3 != 0 {
			return fmt.Errorf("cpu: jmpl to misaligned %#08x at %#08x", target, c.pc)
		}
		c.setReg(in.Rd, c.pc)
		c.takenCTI()
		c.noteBlock(target)
		if c.jumpExtra != 0 {
			c.stats.JumpPenalty += c.jumpExtra
			c.stats.Cycles += c.jumpExtra
		}
		nextPC, nextNPC = c.npc, target

	case isa.OpSave:
		if err := c.execSave(in); err != nil {
			return fmt.Errorf("%w at %#08x", err, c.pc)
		}

	case isa.OpRestore:
		if err := c.execRestore(in); err != nil {
			return fmt.Errorf("%w at %#08x", err, c.pc)
		}

	case isa.OpTicc:
		if in.Cond.Holds(c.icc) {
			trap := (c.getReg(in.Rs1) + c.operand2(in)) & 0x7F
			if trap == haltTrap {
				c.halted = true
				c.exit = c.getReg(8) // %o0
				c.pc, c.npc = nextPC, nextNPC
				return nil
			}
			return fmt.Errorf("cpu: unhandled software trap %d at %#08x", trap, c.pc)
		}

	default:
		return fmt.Errorf("cpu: unimplemented opcode %s at %#08x", in.Op, c.pc)
	}

	c.pc, c.npc = nextPC, nextNPC
	return nil
}

const noHazard = -1 << 20

func (c *Core) setLogicICC(r uint32) {
	c.icc = isa.ICC{N: int32(r) < 0, Z: r == 0}
	c.iccJustSet = true
}

func (c *Core) execLoad(in *isa.Instr) error {
	addr := c.getReg(in.Rs1) + c.operand2(in)
	c.stats.Loads++
	c.stats.LoadCycles++
	c.stats.Cycles++
	if addr < deviceBase {
		if !c.dcache.Read(addr) {
			c.stats.DCacheStall += c.dmissPenalty
			c.stats.Cycles += c.dmissPenalty
		}
	}
	var v uint32
	switch in.Op {
	case isa.OpLd:
		w, err := c.memory.Read32(addr)
		if err != nil {
			return err
		}
		v = w
	case isa.OpLdUB:
		b, err := c.memory.Read8(addr)
		if err != nil {
			return err
		}
		v = uint32(b)
	case isa.OpLdSB:
		b, err := c.memory.Read8(addr)
		if err != nil {
			return err
		}
		v = uint32(int32(int8(b)))
	case isa.OpLdUH:
		h, err := c.memory.Read16(addr)
		if err != nil {
			return err
		}
		v = uint32(h)
	case isa.OpLdSH:
		h, err := c.memory.Read16(addr)
		if err != nil {
			return err
		}
		v = uint32(int32(int16(h)))
	}
	c.setReg(in.Rd, v)
	if in.Rd != 0 {
		c.loadHazardReg = c.hazardIndex(in.Rd)
	}
	return nil
}

func (c *Core) execStore(in *isa.Instr) error {
	addr := c.getReg(in.Rs1) + c.operand2(in)
	v := c.getReg(in.Rd)
	c.stats.Stores++
	c.stats.StoreCycles += 2
	c.stats.Cycles += 2
	if addr < deviceBase {
		c.dcache.Write(addr)
		stall := c.wbuf.Store(c.stats.Cycles)
		c.stats.WriteBufStall += stall
		c.stats.Cycles += stall
	}
	switch in.Op {
	case isa.OpSt:
		return c.memory.Write32(addr, v)
	case isa.OpStB:
		return c.memory.Write8(addr, uint8(v))
	case isa.OpStH:
		return c.memory.Write16(addr, uint16(v))
	}
	return nil
}

// Run executes until the program halts or maxInstr instructions retire.
// Hitting the limit without halting is an error (runaway program).
// Trace-free runs take the fast path (fast.go); traced runs single-step.
func (c *Core) Run(maxInstr uint64) error {
	if err := c.runTo(c.stats.Instructions + maxInstr); err != nil {
		return err
	}
	if !c.halted {
		return fmt.Errorf("cpu: instruction limit %d reached at pc %#08x", maxInstr, c.pc)
	}
	return nil
}

// RunFor executes until the program halts or n instructions retire,
// whichever comes first — the truncated-run primitive behind the
// runtime-sampling extension. It reports whether the program halted.
func (c *Core) RunFor(n uint64) (halted bool, err error) {
	if err := c.runTo(c.stats.Instructions + n); err != nil {
		return false, err
	}
	return c.halted, nil
}
