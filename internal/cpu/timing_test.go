package cpu_test

import (
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/isa"
)

// runCycles builds, runs and returns total cycles for prog under cfg.
func runCycles(t *testing.T, cfg config.Config, prog []isa.Instr) uint64 {
	t.Helper()
	c := buildCore(t, cfg, prog)
	run(t, c)
	return c.Stats().Cycles
}

// straightLine returns n-1 ALU instructions followed by halt.
func straightLine(n int) []isa.Instr {
	prog := make([]isa.Instr, 0, n)
	for i := 0; i < n-1; i++ {
		prog = append(prog, aluImm(isa.OpAdd, 1, 1, 1))
	}
	return append(prog, halt())
}

func TestStraightLineExactCycles(t *testing.T) {
	// 16 single-cycle instructions from a cold icache with 8-word lines:
	// 2 line fills of 3+8=11 cycles each, plus 16 base cycles.
	got := runCycles(t, config.Default(), straightLine(16))
	if want := uint64(16 + 2*11); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
}

func TestICacheLineSizeTiming(t *testing.T) {
	// 4-word lines: twice the fills at 3+4=7 cycles each.
	cfg := config.Default()
	cfg.ICache.LineWords = 4
	got := runCycles(t, cfg, straightLine(16))
	if want := uint64(16 + 4*7); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
}

func TestMultiplierLatencies(t *testing.T) {
	// N muls: each option charges its documented latency.
	const nMul = 32
	prog := []isa.Instr{movImm(1, 7), movImm(2, 9)}
	for i := 0; i < nMul; i++ {
		prog = append(prog, alu(isa.OpUMul, 3, 1, 2))
	}
	prog = append(prog, halt())

	base := config.Default() // m16x16: 4 cycles
	cycles := map[config.MultiplierOption]uint64{}
	for _, m := range []config.MultiplierOption{
		config.MulNone, config.MulIterative, config.Mul16x16,
		config.Mul16x16Pipe, config.Mul32x8, config.Mul32x16, config.Mul32x32,
	} {
		cfg := base
		cfg.IU.Multiplier = m
		cycles[m] = runCycles(t, cfg, prog)
	}
	// Exact pairwise deltas: latencies 44/35/4/2/4/2/1.
	deltas := map[config.MultiplierOption]uint64{
		config.MulNone:      44,
		config.MulIterative: 35,
		config.Mul16x16:     4,
		config.Mul16x16Pipe: 2,
		config.Mul32x8:      4,
		config.Mul32x16:     2,
		config.Mul32x32:     1,
	}
	ref := cycles[config.Mul32x32] - nMul*deltas[config.Mul32x32]
	for m, lat := range deltas {
		if got := cycles[m] - nMul*lat; got != ref {
			t.Errorf("multiplier %v: non-multiplier cycles %d, want %d (total %d)", m, got, ref, cycles[m])
		}
	}
	if cycles[config.Mul32x32] >= cycles[config.Mul16x16] {
		t.Error("m32x32 must beat m16x16")
	}
}

func TestDividerLatencies(t *testing.T) {
	const nDiv = 16
	prog := []isa.Instr{
		{Op: isa.OpWrY, Rs1: 0, UseImm: true, Imm: 0},
		movImm(1, 1000),
	}
	for i := 0; i < nDiv; i++ {
		prog = append(prog, aluImm(isa.OpUDiv, 2, 1, 7))
	}
	prog = append(prog, halt())

	radix2 := config.Default()
	none := config.Default()
	none.IU.Divider = config.DivNone
	cR, cN := runCycles(t, radix2, prog), runCycles(t, none, prog)
	if want := uint64(nDiv * (120 - 35)); cN-cR != want {
		t.Errorf("divider none-radix2 delta = %d, want %d", cN-cR, want)
	}
}

func TestICCHoldTiming(t *testing.T) {
	// A branch immediately after its compare pays 1 cycle with ICC hold;
	// separating them with a nop removes the penalty.
	tight := []isa.Instr{
		movImm(1, 1),
		aluImm(isa.OpSubCC, 0, 1, 2),
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 2},
		nop(),
		halt(),
	}
	spaced := []isa.Instr{
		movImm(1, 1),
		aluImm(isa.OpSubCC, 0, 1, 2),
		nop(),
		{Op: isa.OpBicc, Cond: isa.CondE, Disp: 2},
		nop(),
		halt(),
	}
	on := config.Default()
	off := config.Default()
	off.IU.ICCHold = false

	tOn, tOff := runCycles(t, on, tight), runCycles(t, off, tight)
	if tOn != tOff+1 {
		t.Errorf("ICC hold should cost exactly 1 cycle on a tight compare+branch: on=%d off=%d", tOn, tOff)
	}
	sOn, sOff := runCycles(t, on, spaced), runCycles(t, off, spaced)
	// The extra nop must be the only difference when spaced.
	if sOn != sOff {
		t.Errorf("spaced compare+branch should not pay ICC hold: on=%d off=%d", sOn, sOff)
	}
}

func TestFastJumpTiming(t *testing.T) {
	// JMPL costs one extra cycle without fast jump; CALL is unaffected.
	prog := []isa.Instr{
		{Op: isa.OpCall, Disp: 3},
		nop(),
		halt(),
		// callee:
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegO7, UseImm: true, Imm: 8},
		nop(),
	}
	fast := config.Default()
	slow := config.Default()
	slow.IU.FastJump = false
	cf, cs := runCycles(t, fast, prog), runCycles(t, slow, prog)
	if cs != cf+1 {
		t.Errorf("no-fastjump should cost exactly 1 cycle per jmpl: fast=%d slow=%d", cf, cs)
	}
}

func TestFastDecodeTiming(t *testing.T) {
	// Each taken control transfer costs one extra cycle without fast
	// decode. Program has 2 taken CTIs (call + retl).
	prog := []isa.Instr{
		{Op: isa.OpCall, Disp: 3},
		nop(),
		halt(),
		{Op: isa.OpJmpl, Rd: 0, Rs1: isa.RegO7, UseImm: true, Imm: 8},
		nop(),
	}
	on := config.Default()
	off := config.Default()
	off.IU.FastDecode = false
	cOn, cOff := runCycles(t, on, prog), runCycles(t, off, prog)
	if cOff != cOn+2 {
		t.Errorf("no-fastdecode should cost 1 cycle per taken CTI (2 here): on=%d off=%d", cOn, cOff)
	}
}

func TestLoadDelayTiming(t *testing.T) {
	scratch := int32(0xF00)
	dependent := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)},
		aluImm(isa.OpAdd, 1, 1, scratch),
		{Op: isa.OpLd, Rd: 2, Rs1: 1, UseImm: true, Imm: 0},
		aluImm(isa.OpAdd, 3, 2, 1), // immediately uses loaded value
		halt(),
	}
	independent := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)},
		aluImm(isa.OpAdd, 1, 1, scratch),
		{Op: isa.OpLd, Rd: 2, Rs1: 1, UseImm: true, Imm: 0},
		aluImm(isa.OpAdd, 3, 1, 1), // does not use loaded value
		halt(),
	}
	ld1 := config.Default()
	ld2 := config.Default()
	ld2.IU.LoadDelay = 2

	d1, i1 := runCycles(t, ld1, dependent), runCycles(t, ld1, independent)
	if d1 != i1+1 {
		t.Errorf("load-use with delay 1 should cost 1 cycle: dep=%d indep=%d", d1, i1)
	}
	d2, i2 := runCycles(t, ld2, dependent), runCycles(t, ld2, independent)
	if d2 != i2+2 {
		t.Errorf("load-use with delay 2 should cost 2 cycles: dep=%d indep=%d", d2, i2)
	}
}

func TestDCacheMissPenaltyExact(t *testing.T) {
	scratch := int32(0xF00)
	prog := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)},
		aluImm(isa.OpAdd, 1, 1, scratch),
		{Op: isa.OpLd, Rd: 2, Rs1: 1, UseImm: true, Imm: 0}, // miss
		{Op: isa.OpLd, Rd: 3, Rs1: 1, UseImm: true, Imm: 4}, // hit, same line
		halt(),
	}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	st := c.Stats()
	if st.DCacheStall != 11 {
		t.Errorf("one 8-word line fill should stall 11 cycles, got %d", st.DCacheStall)
	}
	if ds := c.DCacheStats(); ds.ReadMisses != 1 || ds.ReadAccesses != 2 {
		t.Errorf("dcache stats = %+v", ds)
	}
}

func TestWriteBufferStallOnStoreBurst(t *testing.T) {
	// Back-to-back stores outpace the 4-cycle drain and must stall;
	// spaced stores must not.
	burst := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)},
		aluImm(isa.OpAdd, 1, 1, 0xF00),
	}
	for i := 0; i < 8; i++ {
		burst = append(burst, isa.Instr{Op: isa.OpSt, Rd: 2, Rs1: 1, UseImm: true, Imm: int32(i * 4)})
	}
	burst = append(burst, halt())
	c := buildCore(t, config.Default(), burst)
	run(t, c)
	if c.Stats().WriteBufStall == 0 {
		t.Error("store burst should stall on the write buffer")
	}

	spaced := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)},
		aluImm(isa.OpAdd, 1, 1, 0xF00),
	}
	for i := 0; i < 8; i++ {
		spaced = append(spaced, isa.Instr{Op: isa.OpSt, Rd: 2, Rs1: 1, UseImm: true, Imm: int32(i * 4)})
		for j := 0; j < 4; j++ {
			spaced = append(spaced, aluImm(isa.OpAdd, 3, 3, 1))
		}
	}
	spaced = append(spaced, halt())
	c2 := buildCore(t, config.Default(), spaced)
	run(t, c2)
	if c2.Stats().WriteBufStall != 0 {
		t.Errorf("spaced stores should not stall, got %d", c2.Stats().WriteBufStall)
	}
}

func TestFastReadWriteAreCycleNeutral(t *testing.T) {
	// Per DESIGN.md §6 these improve FPGA timing slack, not cycles.
	prog := []isa.Instr{
		{Op: isa.OpSethi, Rd: 1, Imm: int32(textBase >> 10)},
		aluImm(isa.OpAdd, 1, 1, 0xF00),
		{Op: isa.OpSt, Rd: 2, Rs1: 1, UseImm: true, Imm: 0},
		{Op: isa.OpLd, Rd: 3, Rs1: 1, UseImm: true, Imm: 0},
		halt(),
	}
	base := runCycles(t, config.Default(), prog)
	cfg := config.Default()
	cfg.DCache.FastRead = true
	cfg.DCache.FastWrite = true
	if got := runCycles(t, cfg, prog); got != base {
		t.Errorf("fast read/write changed cycles: %d vs %d", got, base)
	}
}

func TestProfileBalancesOnMixedProgram(t *testing.T) {
	c := buildCore(t, config.Default(), recursionProgram(25))
	run(t, c)
	if err := c.Stats().ConsistencyError(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WindowTrapStall == 0 {
		t.Error("deep recursion on 8 windows should charge window-trap cycles")
	}
	if st.Instructions == 0 || st.Cycles <= st.Instructions {
		t.Errorf("implausible profile: %+v", st)
	}
}

func TestHaltExitCode(t *testing.T) {
	prog := []isa.Instr{movImm(8, 5), halt()}
	c := buildCore(t, config.Default(), prog)
	run(t, c)
	if c.ExitCode() != 5 {
		t.Errorf("exit = %d, want 5", c.ExitCode())
	}
}

var _ = cpu.ErrHalted // keep the import referenced even if tests change
