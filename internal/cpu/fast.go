package cpu

import (
	"fmt"

	"liquidarch/internal/isa"
	"liquidarch/internal/mem"
)

// Fast-path execution engine (DESIGN.md §8).
//
// runFast is a trace-free inner interpreter loop that executes the same
// timing semantics as Step, cycle for cycle and counter for counter, but
// restructured for speed:
//
//   - it dispatches on a flattened 16-byte predecoded form (fastInstr)
//     with pre-extended immediates, absolute branch targets, a
//     condition-code truth table and per-op hazard flags, so the hot loop
//     does no sign extension, no displacement arithmetic and no
//     opcode-class predicates;
//   - the trace check, the misaligned-pc check and the out-of-text check
//     are hoisted or collapsed into one unsigned compare per iteration;
//   - every piece of loop-carried state (pc, npc, cycle and instruction
//     counts, the load-hazard scoreboard, the icc-just-set flag, the
//     packed condition codes) lives in locals, and the instruction-mix
//     counters accumulate in a batch that is flushed to profiler.Stats
//     only on exit or around a fallback;
//   - back-to-back accesses to the cache line probed last are credited in
//     bulk (cache.AddReadHits/AddWriteHits) instead of re-probing the tag
//     store: a line probed by the previous access is still resident, so
//     the access is a guaranteed hit, and on the configurations where the
//     skip is enabled a hit has no replacement side effects;
//   - the rare opcodes (SAVE, RESTORE, Ticc, invalid) fall back to the
//     reference Step for that one instruction, so the tricky window-trap
//     and halt semantics exist in exactly one place.
//
// Equivalence with Step is enforced by the engine-equivalence suite in
// differential_test.go: every benchmark × a representative configuration
// set must produce identical profiles, cache counters, exit codes and
// checksums on both paths.

// Fast-path dispatch codes. CC-setting ALU variants get their own code so
// the hot loop never re-tests the opcode to decide whether to write the
// condition codes.
const (
	fFallback uint8 = iota // SAVE, RESTORE, Ticc, invalid: execute via Step
	fAdd
	fAddCC
	fSub
	fSubCC
	fAnd
	fAndCC
	fOr
	fOrCC
	fXor
	fXorCC
	fAndN
	fOrN
	fXnor
	fSll
	fSrl
	fSra
	fSethi
	fLd
	fLdUB
	fLdSB
	fLdUH
	fLdSH
	fUMul
	fUMulCC
	fSMul
	fSMulCC
	fUDiv
	fSDiv
	fRdY
	fWrY
	fSt
	fStB
	fStH
	fBicc
	fCall
	fJmpl
	// Fused compare-and-branch pairs: a CC-setting ALU op immediately
	// followed by a Bicc collapses into one dispatch (predecoded by
	// fusePairs). The fastInstr carries the ALU op's registers/immediate
	// and the branch's condition mask, annul flags and target — the two
	// halves use disjoint fields. The fused case falls back to plain
	// ALU-only execution when entered as a delay slot (npc != pc+4) or on
	// a sampling boundary; the instruction after it keeps its plain Bicc
	// decode for branches that land on it directly.
	fAddCCBicc
	fSubCCBicc
	fAndCCBicc
	fOrCCBicc
	fXorCCBicc

	// fRunMax bounds the contiguous range [fAdd, fRunMax] of simple ALU
	// ops eligible as branch delay slots and inside straight-line runs:
	// register/immediate ALU (with or without condition codes) and SETHI —
	// no memory access, no control transfer, no Y register, no fallback.
	fRunMax = fSethi
	// fRunnableMax additionally admits loads to straight-line runs
	// ([fAdd, fRunnableMax] is ALU plus the five load forms). A load may
	// only sit inside a run when its successor does not read the loaded
	// register (checked statically by fusePairs), so the load-use
	// interlock cannot fire mid-run. Ops in this range reuse condMask as
	// the run length.
	fRunnableMax = fLdSH
)

// fastInstr flag bits.
const (
	fgUseImm uint8 = 1 << iota
	fgAnnul
	fgBAAnnul // Bicc with cond=always and the annul bit ("ba,a")
	// Hazard flags: whether the load-use interlock check must consider
	// rs1, rs2 and (for stores) rd. They mirror Step's readsReg exactly,
	// including its quirk of checking rs2 on ops that ignore it.
	fgReadsRs1
	fgReadsRs2
	fgReadsRd
	// fgSlotALU marks a Bicc (or fused compare-and-branch) whose delay
	// slot holds a simple ALU op the loop may execute inline (fusePairs).
	fgSlotALU
)

// fastInstr is the flattened fast-path form of one decoded instruction.
// It is exactly 16 bytes so indexing is a shift and two lines of the
// array hold eight instructions.
type fastInstr struct {
	code  uint8
	rd    uint8
	rs1   uint8
	rs2   uint8
	flags uint8
	// condMask: for Bicc (and fused compare-and-branch), bit i is set iff
	// the branch condition holds for packed ICC i. For simple ALU ops the
	// field is reused as the straight-line run length: the number of
	// consecutive simple ALU ops starting here (>= 1), which the main
	// loop retires in a single dispatch iteration.
	condMask uint16
	imm      uint32 // pre-extended immediate; SETHI stores imm<<10
	target   uint32 // absolute Bicc/CALL target address
}

// packICC packs the condition codes into a 4-bit index (N|Z|V|C).
func packICC(icc isa.ICC) uint8 {
	var i uint8
	if icc.N {
		i |= 8
	}
	if icc.Z {
		i |= 4
	}
	if icc.V {
		i |= 2
	}
	if icc.C {
		i |= 1
	}
	return i
}

// unpackICC expands a packed 4-bit index back into the ICC struct.
func unpackICC(i uint8) isa.ICC {
	return isa.ICC{N: i&8 != 0, Z: i&4 != 0, V: i&2 != 0, C: i&1 != 0}
}

// condTable precomputes cond.Holds over all 16 packed ICC values.
func condTable(cond isa.Cond) uint16 {
	var mask uint16
	for i := 0; i < 16; i++ {
		icc := isa.ICC{N: i&8 != 0, Z: i&4 != 0, V: i&2 != 0, C: i&1 != 0}
		if cond.Holds(icc) {
			mask |= 1 << i
		}
	}
	return mask
}

// fastCode maps an architectural opcode to its fast-path dispatch code.
// OpInvalid, OpSave, OpRestore and OpTicc map to fFallback: the window
// traps and the halt trap keep their single implementation in Step.
func fastCode(op isa.Opcode) uint8 {
	switch op {
	case isa.OpAdd:
		return fAdd
	case isa.OpAddCC:
		return fAddCC
	case isa.OpSub:
		return fSub
	case isa.OpSubCC:
		return fSubCC
	case isa.OpAnd:
		return fAnd
	case isa.OpAndCC:
		return fAndCC
	case isa.OpOr:
		return fOr
	case isa.OpOrCC:
		return fOrCC
	case isa.OpXor:
		return fXor
	case isa.OpXorCC:
		return fXorCC
	case isa.OpAndN:
		return fAndN
	case isa.OpOrN:
		return fOrN
	case isa.OpXnor:
		return fXnor
	case isa.OpSll:
		return fSll
	case isa.OpSrl:
		return fSrl
	case isa.OpSra:
		return fSra
	case isa.OpUMul:
		return fUMul
	case isa.OpUMulCC:
		return fUMulCC
	case isa.OpSMul:
		return fSMul
	case isa.OpSMulCC:
		return fSMulCC
	case isa.OpUDiv:
		return fUDiv
	case isa.OpSDiv:
		return fSDiv
	case isa.OpRdY:
		return fRdY
	case isa.OpWrY:
		return fWrY
	case isa.OpSethi:
		return fSethi
	case isa.OpLd:
		return fLd
	case isa.OpLdUB:
		return fLdUB
	case isa.OpLdSB:
		return fLdSB
	case isa.OpLdUH:
		return fLdUH
	case isa.OpLdSH:
		return fLdSH
	case isa.OpSt:
		return fSt
	case isa.OpStB:
		return fStB
	case isa.OpStH:
		return fStH
	case isa.OpBicc:
		return fBicc
	case isa.OpCall:
		return fCall
	case isa.OpJmpl:
		return fJmpl
	}
	return fFallback
}

// predecode flattens one architectural instruction at address pc.
func predecode(in isa.Instr, pc uint32) fastInstr {
	f := fastInstr{
		code: fastCode(in.Op),
		rd:   in.Rd,
		rs1:  in.Rs1,
		rs2:  in.Rs2,
		imm:  uint32(in.Imm),
	}
	if in.UseImm {
		f.flags |= fgUseImm
	}
	if in.Annul {
		f.flags |= fgAnnul
	}
	switch in.Op {
	case isa.OpSethi:
		f.imm = uint32(in.Imm) << 10
	case isa.OpBicc:
		f.target = pc + uint32(in.Disp)*4
		f.condMask = condTable(in.Cond)
		if in.Cond == isa.CondA && in.Annul {
			f.flags |= fgBAAnnul
		}
	case isa.OpCall:
		f.target = pc + uint32(in.Disp)*4
	}
	// Hazard flags, mirroring readsReg: SETHI, Bicc, CALL and RDY read no
	// integer registers at all; everything else reads rs1, reads rs2 when
	// the operand is not an immediate, and stores additionally read rd.
	switch in.Op {
	case isa.OpSethi, isa.OpBicc, isa.OpCall, isa.OpRdY:
	default:
		f.flags |= fgReadsRs1
		if !in.UseImm {
			f.flags |= fgReadsRs2
		}
	}
	if in.Op.IsStore() {
		f.flags |= fgReadsRd
	}
	return f
}

// fusableSlot reports whether a dispatch code is a simple ALU op the
// branch cases may execute inline as a delay slot: register/immediate
// ALU (with or without condition codes) and SETHI — no memory access, no
// control transfer, no Y register, no fallback.
func fusableSlot(code uint8) bool {
	return code >= fAdd && code <= fRunMax
}

// fusePairs rewrites each CC-setting ALU op that immediately precedes a
// conditional branch into a fused compare-and-branch macro-op. The
// follower keeps its plain decode so control flow can still land on it.
// A second pass marks branches whose delay slot is a fusable ALU op
// (fgSlotALU), so the branch dispatch can execute the slot inline too.
func fusePairs(fast []fastInstr) {
	for i := 0; i+1 < len(fast); i++ {
		br := &fast[i+1]
		if br.code != fBicc {
			continue
		}
		var fused uint8
		switch fast[i].code {
		case fAddCC:
			fused = fAddCCBicc
		case fSubCC:
			fused = fSubCCBicc
		case fAndCC:
			fused = fAndCCBicc
		case fOrCC:
			fused = fOrCCBicc
		case fXorCC:
			fused = fXorCCBicc
		default:
			continue
		}
		f := &fast[i]
		f.code = fused
		f.condMask = br.condMask
		f.target = br.target
		// ALU ops never carry annul bits, so the branch's are free to merge.
		f.flags |= br.flags & (fgAnnul | fgBAAnnul)
	}
	for i := range fast {
		var slot int
		switch fast[i].code {
		case fBicc:
			slot = i + 1
		case fAddCCBicc, fSubCCBicc, fAndCCBicc, fOrCCBicc, fXorCCBicc:
			slot = i + 2
		default:
			continue
		}
		if slot < len(fast) && fusableSlot(fast[slot].code) {
			fast[i].flags |= fgSlotALU
		}
	}
	// Straight-line run lengths, computed backwards: an ALU or load op
	// stores in condMask how many consecutive run-eligible ops start at
	// it (itself included); the main loop retires a whole run per
	// dispatch. A run extends past op i when (a) its successor is ALU or
	// a load, and (b) if op i is a load, the successor does not read the
	// loaded register — condition (b) is exactly "the load-use interlock
	// cannot fire", so runs need no per-op hazard machinery. CTIs,
	// stores, mul/div, Y accesses and fallbacks end runs.
	for i := len(fast) - 1; i >= 0; i-- {
		f := &fast[i]
		if f.code < fAdd || f.code > fRunnableMax {
			continue
		}
		run := uint16(1)
		if i+1 < len(fast) && fast[i+1].code >= fAdd && fast[i+1].code <= fRunnableMax && canExtendPast(f, &fast[i+1]) {
			if next := fast[i+1].condMask; next < 255 {
				run = next + 1
			} else {
				run = 255
			}
		}
		f.condMask = run
	}
}

// canExtendPast reports whether a run may continue from op f to its
// successor: always for ALU ops; for loads, only when the successor does
// not hazard-read the loaded register (so no interlock is skipped).
func canExtendPast(f, next *fastInstr) bool {
	if f.code < fLd || f.code > fLdSH || f.rd == 0 {
		return true
	}
	rd := f.rd
	if next.flags&fgReadsRs1 != 0 && next.rs1 == rd {
		return false
	}
	if next.flags&fgReadsRs2 != 0 && next.rs2 == rd {
		return false
	}
	if next.flags&fgReadsRd != 0 && next.rd == rd {
		return false
	}
	return true
}

// Packed register-file indices: each instruction's three operands resolve
// (for the current window) to regfile slots that fit in 10 bits each, so
// one uint32 per instruction carries all of them. riRs1/riRs2 read
// rs1/rs2; riRd writes rd except for stores, where it reads rd (%g0 then
// resolves to the zero slot, not the write sink). Masking with riMask
// keeps every access provably inside the 1024-slot register file, so the
// hot loop does register moves with zero bounds checks and no view-table
// indirection.
const riMask = 1023

// setRF writes through the packed rd index (the %g0 sink is baked in, so
// no zero check is needed; the mask keeps the access bounds-check-free).
func setRF(rf *[1024]uint32, ri uint32, v uint32) {
	rf[ri&riMask] = v
}

func packRI(rs1, rs2, rd int32) uint32 {
	return uint32(rs1)<<20 | uint32(rs2)<<10 | uint32(rd)
}

// patchFastRI resolves every predecoded instruction's register numbers
// against the current window's view tables. Called after LoadText and
// again (lazily, from runFast) when SAVE/RESTORE moved the window
// pointer; the paper's benchmarks never rotate windows, so in practice
// it runs once per program load.
func (c *Core) patchFastRI() {
	for i := range c.fast {
		f := &c.fast[i]
		rd := c.viewW[f.rd&31]
		if f.code >= fSt && f.code <= fStH {
			rd = c.viewR[f.rd&31] // stores read rd
		}
		c.fastRI[i] = packRI(c.viewR[f.rs1&31], c.viewR[f.rs2&31], rd)
	}
	// Compiled superblock plans cache resolved indices too; re-resolve
	// them for the new window (their text positions are static).
	for bi := range c.sbBlocks {
		blk := &c.sbBlocks[bi]
		for k := range blk.ops {
			blk.ops[k].ri = c.fastRI[blk.head+uint32(k)]
		}
		if blk.tIdx >= 0 {
			blk.tRI = c.fastRI[blk.tIdx]
			if blk.tFlags&fgSlotALU != 0 {
				si := blk.tIdx + 1
				if blk.tCode != fBicc {
					si = blk.tIdx + 2
				}
				blk.slot.ri = c.fastRI[si]
			}
		}
	}
	c.fastCwp = c.cwp
}

// noLine is the "no cache line known" sentinel. Real line numbers are
// addr>>lineShift with lineShift >= 4, so they never reach it.
const noLine = ^uint32(0)

// fastBatch accumulates the instruction-mix and stall counters of a
// runFast stretch; flush folds them into profiler.Stats in one shot.
type fastBatch struct {
	loads, stores          uint64
	branches, taken        uint64
	annulled               uint64
	calls, jumps           uint64
	mults, divs            uint64
	interlocks, iccHolds   uint64
	wbStall                uint64
	icHits, dcHits, dwHits uint64 // known-hit cache probes, skipped or inline
	icMisses, dcMisses     uint64 // inline direct-mapped read misses (filled)
	dwMisses               uint64 // inline direct-mapped write misses
}

// flush folds the batch into the core's profile and cache counters and
// zeroes it.
func (b *fastBatch) flush(c *Core) {
	s := &c.stats
	s.Loads += b.loads
	s.LoadCycles += b.loads
	s.Stores += b.stores
	s.StoreCycles += 2 * b.stores
	s.Branches += b.branches
	s.TakenBranches += b.taken
	s.AnnulledSlots += b.annulled
	s.Calls += b.calls
	s.Jumps += b.jumps
	s.Mults += b.mults
	s.MulStall += b.mults * c.mulExtra
	s.Divs += b.divs
	s.DivStall += b.divs * c.divExtra
	s.LoadInterlock += b.interlocks * c.loadInterlock
	s.ICCHoldStall += b.iccHolds
	takenCTIs := b.taken + b.calls + b.jumps // every taken CTI pays the branch/decode penalty
	s.BranchPenalty += takenCTIs
	s.DecodeStall += takenCTIs * c.decodeExtra
	s.JumpPenalty += b.jumps * c.jumpExtra
	s.WriteBufStall += b.wbStall
	if b.icHits > 0 {
		c.icache.AddReadHits(b.icHits)
	}
	if b.icMisses > 0 {
		c.icache.AddDirectReadMisses(b.icMisses)
		s.ICacheStall += b.icMisses * c.imissPenalty
	}
	if b.dcHits > 0 {
		c.dcache.AddReadHits(b.dcHits)
	}
	if b.dcMisses > 0 {
		c.dcache.AddDirectReadMisses(b.dcMisses)
		s.DCacheStall += b.dcMisses * c.dmissPenalty
	}
	if b.dwHits > 0 {
		c.dcache.AddWriteHits(b.dwHits)
	}
	if b.dwMisses > 0 {
		c.dcache.AddDirectWriteMisses(b.dwMisses)
	}
	*b = fastBatch{}
}

// runTo executes until the program halts or the total retired instruction
// count reaches target. Tracing runs take the reference Step loop so the
// disassembly hook stays out of the fast path entirely.
func (c *Core) runTo(target uint64) error {
	if c.traceW != nil {
		for !c.halted && c.stats.Instructions < target {
			if err := c.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	return c.runFast(target)
}

// runFast drives the trace-free fast loop. runFastInner executes the
// predecoded common opcodes until it halts, reaches target, errors, or
// meets a rare opcode; rare opcodes are executed here on the reference
// Step path and the inner loop resumes. The icache batching anchor (the
// line fetched last) survives the round trip; the dcache anchor does not,
// because window traps fill dcache lines.
func (c *Core) runFast(target uint64) error {
	fetchLine := noLine
	for {
		stepNext, err := c.runFastInner(target, fetchLine)
		if err != nil || !stepNext {
			return err
		}
		pc := c.pc
		if err := c.Step(); err != nil {
			return err
		}
		if c.cwp != c.fastCwp {
			// SAVE/RESTORE rotated the window: re-resolve the packed
			// register indices for the new view.
			c.patchFastRI()
		}
		// Step fetched at pc (fallback opcodes never annul a slot), so its
		// line is the resumed loop's batching anchor.
		fetchLine = pc >> c.icLineShift
	}
}

// runFastInner is the fast execution loop body. It returns stepNext=true
// when it stopped at an instruction that must be executed via Step (rare
// opcode, out-of-text pc, misalignment). All batched state is flushed
// back into the core before returning, whatever the exit path; cycle-exact
// equivalence with Step is the invariant every change here must preserve.
func (c *Core) runFastInner(target uint64, fetchLine uint32) (stepNext bool, retErr error) {
	var (
		fast    = c.fast
		pc, npc = c.pc, c.npc
		instrs  = c.stats.Instructions
		// Cycles are derived, not counted: every instruction costs one
		// base cycle, so Cycles = cyclesBase + (instrs - instrsBase) +
		// extra, where extra accumulates only stall/latency cycles. This
		// keeps one increment per instruction out of the loop.
		cyclesBase = c.stats.Cycles
		instrsBase = c.stats.Instructions
		extra      = uint64(0)
		hazard     = c.loadHazardReg
		// iccSetAt is the instruction count at which the condition codes
		// were last set; "the previous instruction set the codes" (the
		// ICC-hold trigger) is iccSetAt+1 == instrs. The sentinel can
		// never match: instrs is nonzero at every dispatch.
		iccSetAt = ^uint64(0)
		iccIdx   = packICC(c.icc)
		icShift  = c.icLineShift
		dcShift  = c.dcLineShift
		dcSkip   = c.dcLineSkip
		ram      = c.memory.RAM()
		textBase = c.textBase
		imissPen = c.imissPenalty
		// Block-signature collection (interval profiling): nil when
		// disabled, in which case the per-taken-CTI nil check is one
		// predictable branch.
		bbv      = c.bbv
		bbvShift = c.bbvShift
		bbvMask  = uint32(len(c.bbv) - 1)
		rf       = &c.regfile
		fastRI   = c.fastRI
		dcLine   = noLine // dcache line known resident from the last probe
		fb       fastBatch
		// Superblock dispatch state (superblock.go): nil when
		// specialization is off, making the per-dispatch check one
		// predictable branch. sbHits/sbDeopts batch the diagnostic
		// counters the way fb batches the profile.
		sbIdx    = c.sbIndex
		sbHeat   = c.sbHeat
		sbThresh = c.sbThreshold
		sbHits   = uint64(0)
		sbDeopts = uint64(0)
		// Write watermarks for the direct RAM stores below; folded into
		// the memory's dirty range on exit (mem.Widen).
		wlo = uint64(len(ram))
		whi = uint64(0)
	)
	if c.iccJustSet {
		iccSetAt = instrs
	}
	// Direct-mapped tag stores for inline probing (nil for multi-way).
	icTags, _, icTagShift, icMask, _ := c.icache.Direct()
	dcTags, _, dcTagShift, dcMask, dcDirect := c.dcache.Direct()

	// The halt trap is a fallback opcode, so c.halted can only flip inside
	// Step between inner-loop invocations: checking it once here keeps the
	// per-instruction loop condition to a single compare.
	if c.halted {
		return false, nil
	}
	if pc&3 != 0 {
		// Misaligned entry pc: Step produces the exact error. Alignment is
		// an induction invariant inside the loop — branch and call targets
		// are pc-relative word displacements and JMPL targets are checked —
		// so it is only tested here.
		return true, nil
	}

loop:
	for instrs < target {
		idx := uint64(pc-textBase) >> 2
		if idx >= uint64(len(fast)) {
			// Out of text: let Step produce its exact error.
			stepNext = true
			break loop
		}
		f := &fast[idx]
		if f.code == fFallback {
			stepNext = true
			break loop
		}

		// Superblock dispatch: a compiled head reached in sequential
		// context executes its whole plan (and chains into compiled
		// successors) without returning to the generic dispatch below.
		// Entry requires the block's worst-case instruction count to fit
		// under target so sampling/interval boundaries stay exact; near a
		// boundary the generic loop finishes the block op by op.
		if sbIdx != nil {
			if s := sbIdx[idx]; s > 0 {
				blk := &c.sbBlocks[s-1]
				if npc != pc+4 {
					// DCTI couple: the head is executing as another CTI's
					// delay slot; the plan assumes sequential flow. Deopt.
					sbDeopts++
				} else if instrs+uint64(blk.maxInstrs) <= target {
					spc := pc
					sbDead := false
					// A hazard left by the previously dispatched load is
					// checked once against the block's first instruction —
					// exactly the generic loop's probe; interior load-use
					// charges are static (sbInterlock bits). On every
					// chained entry the hazard is clear by construction.
					if hazard != noHazard {
						if (f.flags&fgReadsRs1 != 0 && c.hazardIndex(f.rs1) == hazard) ||
							(f.flags&fgReadsRs2 != 0 && c.hazardIndex(f.rs2) == hazard) ||
							(f.flags&fgReadsRd != 0 && c.hazardIndex(f.rd) == hazard) {
							fb.interlocks++
							extra += c.loadInterlock
						}
						hazard = noHazard
					}
				chain:
					for {
						sbHits++
						ops := blk.ops
						for k := 0; k < len(ops); k++ {
							op := ops[k]
							if op.flags&sbOpProbe != 0 {
								// Block head or a static icache line boundary:
								// the only interior fetches whose hit/miss is
								// dynamic. Every other fetch is a same-line hit
								// credited in the batched commit below.
								opc := spc + uint32(k)*4
								if line := opc >> icShift; line == fetchLine {
									fb.icHits++
								} else {
									if icTags != nil {
										if icTags[line&icMask] == opc>>icTagShift {
											fb.icHits++
										} else {
											icTags[line&icMask] = opc >> icTagShift
											fb.icMisses++
											extra += imissPen
										}
									} else if !c.icache.Read(opc) {
										c.stats.ICacheStall += imissPen
										extra += imissPen
									}
									fetchLine = line
								}
							}
							ri := op.ri
							switch op.code {
							case fAdd:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]+b)
							case fAddCC:
								a, b := rf[ri>>20&riMask], op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								r := a + b
								setRF(rf, ri, r)
								iccIdx = iccIndex(int32(r) < 0, r == 0, (^(a^b)&(a^r))>>31 != 0, r < a)
							case fSub:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]-b)
							case fSubCC:
								a, b := rf[ri>>20&riMask], op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								r := a - b
								setRF(rf, ri, r)
								iccIdx = iccIndex(int32(r) < 0, r == 0, ((a^b)&(a^r))>>31 != 0, b > a)
							case fAnd:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]&b)
							case fAndCC:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								r := rf[ri>>20&riMask] & b
								setRF(rf, ri, r)
								iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
							case fOr:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]|b)
							case fOrCC:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								r := rf[ri>>20&riMask] | b
								setRF(rf, ri, r)
								iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
							case fXor:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]^b)
							case fXorCC:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								r := rf[ri>>20&riMask] ^ b
								setRF(rf, ri, r)
								iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
							case fAndN:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]&^b)
							case fOrN:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]|^b)
							case fXnor:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, ^(rf[ri>>20&riMask] ^ b))
							case fSll:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]<<(b&31))
							case fSrl:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, rf[ri>>20&riMask]>>(b&31))
							case fSra:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								setRF(rf, ri, uint32(int32(rf[ri>>20&riMask])>>(b&31)))
							case fSethi:
								setRF(rf, ri, op.imm)
							case fUMul, fUMulCC:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								p := uint64(rf[ri>>20&riMask]) * uint64(b)
								c.y = uint32(p >> 32)
								r := uint32(p)
								setRF(rf, ri, r)
								if op.code == fUMulCC {
									iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
								}
							case fSMul, fSMulCC:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								p := int64(int32(rf[ri>>20&riMask])) * int64(int32(b))
								c.y = uint32(uint64(p) >> 32)
								r := uint32(p)
								setRF(rf, ri, r)
								if op.code == fSMulCC {
									iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
								}
							case fLd, fLdUB, fLdSB, fLdUH, fLdSH:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								addr := rf[ri>>20&riMask] + b
								if addr < deviceBase {
									if line := addr >> dcShift; dcSkip && line == dcLine {
										fb.dcHits++
									} else {
										if dcDirect {
											if dcTags[line&dcMask] == addr>>dcTagShift {
												fb.dcHits++
											} else {
												dcTags[line&dcMask] = addr >> dcTagShift
												fb.dcMisses++
												extra += c.dmissPenalty
											}
										} else if !c.dcache.Read(addr) {
											c.stats.DCacheStall += c.dmissPenalty
											extra += c.dmissPenalty
										}
										dcLine = line
									}
								}
								var v uint32
								off := uint64(addr) - uint64(mem.RAMBase)
								switch op.code {
								case fLd:
									if off+4 <= uint64(len(ram)) && addr&3 == 0 {
										v = uint32(ram[off])<<24 | uint32(ram[off+1])<<16 |
											uint32(ram[off+2])<<8 | uint32(ram[off+3])
									} else {
										w, err := c.memory.Read32(addr)
										if err != nil {
											instrs, extra, iccSetAt = c.sbAbort(blk, k, instrs, extra, iccSetAt, &fb)
											fpc := spc + uint32(k)*4
											pc, npc = fpc, fpc+4
											retErr = fmt.Errorf("%w at %#08x", err, fpc)
											break loop
										}
										v = w
									}
								case fLdUB, fLdSB:
									if off < uint64(len(ram)) {
										v = uint32(ram[off])
									} else {
										by, err := c.memory.Read8(addr)
										if err != nil {
											instrs, extra, iccSetAt = c.sbAbort(blk, k, instrs, extra, iccSetAt, &fb)
											fpc := spc + uint32(k)*4
											pc, npc = fpc, fpc+4
											retErr = fmt.Errorf("%w at %#08x", err, fpc)
											break loop
										}
										v = uint32(by)
									}
									if op.code == fLdSB {
										v = uint32(int32(int8(v)))
									}
								case fLdUH, fLdSH:
									if off+2 <= uint64(len(ram)) && addr&1 == 0 {
										v = uint32(ram[off])<<8 | uint32(ram[off+1])
									} else {
										h, err := c.memory.Read16(addr)
										if err != nil {
											instrs, extra, iccSetAt = c.sbAbort(blk, k, instrs, extra, iccSetAt, &fb)
											fpc := spc + uint32(k)*4
											pc, npc = fpc, fpc+4
											retErr = fmt.Errorf("%w at %#08x", err, fpc)
											break loop
										}
										v = uint32(h)
									}
									if op.code == fLdSH {
										v = uint32(int32(int16(v)))
									}
								}
								setRF(rf, ri, v)
								// No dynamic hazard arming: every in-block
								// consumer is charged statically, the
								// terminal's read is tInterlock, and a
								// terminal-less block arms exitHazardRd.
							case fSt, fStB, fStH:
								b := op.imm
								if op.flags&sbOpImm == 0 {
									b = rf[ri>>10&riMask]
								}
								addr := rf[ri>>20&riMask] + b
								v := rf[ri&riMask]
								if addr < deviceBase {
									if line := addr >> dcShift; dcSkip && line == dcLine {
										fb.dwHits++
									} else if dcDirect {
										if dcTags[line&dcMask] == addr>>dcTagShift {
											fb.dwHits++
											dcLine = line
										} else {
											fb.dwMisses++
										}
									} else {
										c.dcache.Write(addr)
									}
									// The batched charges of ops[0..k] haven't
									// landed in instrs/extra yet; op.prefix and
									// the op offset reconstruct the exact issue
									// cycle the generic loop would use.
									stall := c.wbuf.Store(cyclesBase + (instrs - instrsBase) + uint64(k+1) + extra + uint64(op.prefix))
									fb.wbStall += stall
									extra += stall
								}
								off := uint64(addr) - uint64(mem.RAMBase)
								switch op.code {
								case fSt:
									if off+4 <= uint64(len(ram)) && addr&3 == 0 {
										if off < wlo {
											wlo = off
										}
										if off+4 > whi {
											whi = off + 4
										}
										ram[off] = byte(v >> 24)
										ram[off+1] = byte(v >> 16)
										ram[off+2] = byte(v >> 8)
										ram[off+3] = byte(v)
									} else if err := c.memory.Write32(addr, v); err != nil {
										instrs, extra, iccSetAt = c.sbAbort(blk, k, instrs, extra, iccSetAt, &fb)
										fpc := spc + uint32(k)*4
										pc, npc = fpc, fpc+4
										retErr = fmt.Errorf("%w at %#08x", err, fpc)
										break loop
									}
								case fStB:
									if off < uint64(len(ram)) {
										if off < wlo {
											wlo = off
										}
										if off+1 > whi {
											whi = off + 1
										}
										ram[off] = uint8(v)
									} else if err := c.memory.Write8(addr, uint8(v)); err != nil {
										instrs, extra, iccSetAt = c.sbAbort(blk, k, instrs, extra, iccSetAt, &fb)
										fpc := spc + uint32(k)*4
										pc, npc = fpc, fpc+4
										retErr = fmt.Errorf("%w at %#08x", err, fpc)
										break loop
									}
								case fStH:
									if off+2 <= uint64(len(ram)) && addr&1 == 0 {
										if off < wlo {
											wlo = off
										}
										if off+2 > whi {
											whi = off + 2
										}
										ram[off] = byte(v >> 8)
										ram[off+1] = byte(v)
									} else if err := c.memory.Write16(addr, uint16(v)); err != nil {
										instrs, extra, iccSetAt = c.sbAbort(blk, k, instrs, extra, iccSetAt, &fb)
										fpc := spc + uint32(k)*4
										pc, npc = fpc, fpc+4
										retErr = fmt.Errorf("%w at %#08x", err, fpc)
										break loop
									}
								}
								if addr-textBase < uint32(len(fast))*4 {
									// Self-modifying store: finish the pass on
									// the already-read plan (the generic loop
									// would execute the same stale predecode),
									// then invalidate below.
									sbDead = true
								}
							}
						}
						// Commit the pass's static charges in one batch:
						// instruction count, fixed cycle charges (load/store/
						// multiply latency, interlocks) and the event counts,
						// including every statically-known icache line hit.
						instrs += uint64(len(ops))
						extra += blk.staticExtra
						fb.loads += uint64(blk.nLoads)
						fb.stores += uint64(blk.nStores)
						fb.mults += uint64(blk.nMults)
						fb.interlocks += uint64(blk.nInterlocks)
						fb.icHits += uint64(blk.icStatic)
						if blk.lastSetsCC {
							iccSetAt = instrs
						}
						spc += uint32(len(ops)) * 4
						if sbDead {
							// The pass stored into the text segment: drop every
							// compiled block and stop compiling; the rest of
							// the run executes on the generic loop.
							c.sbInvalidate()
							sbIdx, sbHeat = nil, nil
							sbDeopts++
							sbDead = false
						}
						if blk.tIdx < 0 {
							// Block ends at a non-superblockable op: exit to
							// the generic dispatch at a clean boundary,
							// arming the hazard a last-position load left.
							if blk.exitHazardRd != 0 {
								hazard = c.hazardIndex(blk.exitHazardRd)
							}
							if len(ops) == sbMaxOps && sbHeat != nil {
								// Length-capped block: its sequential
								// continuation is just as hot — heat it so the
								// region compiles as a follow-on block.
								if t := uint64(spc-textBase) >> 2; t < uint64(len(sbHeat)) && sbIdx[t] == 0 {
									sbHeat[t]++
									if sbHeat[t] == sbThresh {
										c.compileSB(uint32(t))
									}
								}
							}
							pc, npc = spc, spc+4
							continue loop
						}

						// Terminal branch at spc, sequential by construction
						// (architectural npc == spc+4); its fields were copied
						// into the plan at compile time, and the line
						// crossings of every fetch around it are static (sbf
						// bits) — only crossing fetches probe the cache, the
						// rest credit hits directly. The code mirrors the
						// generic fBicc / fused compare-and-branch cases.
						if blk.sbf&sbfT0 != 0 {
							// Empty interior: the preceding fetch is the
							// caller's, so this one compares dynamically.
							if line := spc >> icShift; line == fetchLine {
								fb.icHits++
							} else {
								if icTags != nil {
									if icTags[line&icMask] == spc>>icTagShift {
										fb.icHits++
									} else {
										icTags[line&icMask] = spc >> icTagShift
										fb.icMisses++
										extra += imissPen
									}
								} else if !c.icache.Read(spc) {
									c.stats.ICacheStall += imissPen
									extra += imissPen
								}
								fetchLine = line
							}
						} else if blk.sbf&sbfCrossT != 0 {
							line := spc >> icShift
							if icTags != nil {
								if icTags[line&icMask] == spc>>icTagShift {
									fb.icHits++
								} else {
									icTags[line&icMask] = spc >> icTagShift
									fb.icMisses++
									extra += imissPen
								}
							} else if !c.icache.Read(spc) {
								c.stats.ICacheStall += imissPen
								extra += imissPen
							}
							fetchLine = line
						} else {
							fb.icHits++
						}
						instrs++
						if blk.tInterlock {
							fb.interlocks++
							extra += c.loadInterlock
						}
						tnpc := spc + 4
						var nextPC, nextNPC uint32
						slotRuns := false
						slotCross := false
						var succPtr *int32
						if blk.tCode == fBicc {
							fb.branches++
							if iccSetAt+1 == instrs && c.iccHold {
								fb.iccHolds++
								extra++
							}
							taken := blk.tCondMask>>iccIdx&1 != 0
							switch {
							case taken && blk.tFlags&fgBAAnnul != 0:
								fb.taken++
								extra += 1 + c.decodeExtra
								if bbv != nil {
									bbv[blk.tTarget>>bbvShift&bbvMask]++
								}
								if blk.sbf&sbfCross1 != 0 {
									if !c.icache.Read(tnpc) {
										c.stats.ICacheStall += imissPen
										extra += imissPen
									}
									fetchLine = tnpc >> icShift
								} else {
									fb.icHits++
								}
								extra++
								fb.annulled++
								nextPC, nextNPC = blk.tTarget, blk.tTarget+4
								succPtr = &blk.succT
							case taken:
								fb.taken++
								extra += 1 + c.decodeExtra
								if bbv != nil {
									bbv[blk.tTarget>>bbvShift&bbvMask]++
								}
								nextPC, nextNPC = tnpc, blk.tTarget
								slotRuns = true
								slotCross = blk.sbf&sbfCross1 != 0
								succPtr = &blk.succT
							case blk.tFlags&fgAnnul != 0:
								if blk.sbf&sbfCross1 != 0 {
									if !c.icache.Read(tnpc) {
										c.stats.ICacheStall += imissPen
										extra += imissPen
									}
									fetchLine = tnpc >> icShift
								} else {
									fb.icHits++
								}
								extra++
								fb.annulled++
								nextPC, nextNPC = tnpc+4, tnpc+8
								succPtr = &blk.succF
							default:
								nextPC, nextNPC = tnpc, tnpc+4
								slotRuns = true
								slotCross = blk.sbf&sbfCross1 != 0
								succPtr = &blk.succF
							}
						} else {
							// Fused compare-and-branch. ALU half at spc; the
							// entry bound guarantees instrs < target for the
							// branch half, and flow is sequential, so the
							// generic case's delay-slot/boundary demotion
							// cannot trigger here.
							tri := blk.tRI
							a, b := rf[tri>>20&riMask], blk.tImm
							if blk.tFlags&fgUseImm == 0 {
								b = rf[tri>>10&riMask]
							}
							var r uint32
							switch blk.tCode {
							case fAddCCBicc:
								r = a + b
								iccIdx = iccIndex(int32(r) < 0, r == 0, (^(a^b)&(a^r))>>31 != 0, r < a)
							case fSubCCBicc:
								r = a - b
								iccIdx = iccIndex(int32(r) < 0, r == 0, ((a^b)&(a^r))>>31 != 0, b > a)
							case fAndCCBicc:
								r = a & b
								iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
							case fOrCCBicc:
								r = a | b
								iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
							case fXorCCBicc:
								r = a ^ b
								iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
							}
							setRF(rf, tri, r)
							iccSetAt = instrs
							pc2 := tnpc
							if blk.sbf&sbfCross1 != 0 {
								if !c.icache.Read(pc2) {
									c.stats.ICacheStall += imissPen
									extra += imissPen
								}
								fetchLine = pc2 >> icShift
							} else {
								fb.icHits++
							}
							instrs++
							fb.branches++
							if c.iccHold {
								fb.iccHolds++
								extra++
							}
							taken := blk.tCondMask>>iccIdx&1 != 0
							npc2 := pc2 + 4
							switch {
							case taken && blk.tFlags&fgBAAnnul != 0:
								fb.taken++
								extra += 1 + c.decodeExtra
								if bbv != nil {
									bbv[blk.tTarget>>bbvShift&bbvMask]++
								}
								if blk.sbf&sbfCross2 != 0 {
									if !c.icache.Read(npc2) {
										c.stats.ICacheStall += imissPen
										extra += imissPen
									}
									fetchLine = npc2 >> icShift
								} else {
									fb.icHits++
								}
								extra++
								fb.annulled++
								nextPC, nextNPC = blk.tTarget, blk.tTarget+4
								succPtr = &blk.succT
							case taken:
								fb.taken++
								extra += 1 + c.decodeExtra
								if bbv != nil {
									bbv[blk.tTarget>>bbvShift&bbvMask]++
								}
								nextPC, nextNPC = npc2, blk.tTarget
								slotRuns = true
								slotCross = blk.sbf&sbfCross2 != 0
								succPtr = &blk.succT
							case blk.tFlags&fgAnnul != 0:
								if blk.sbf&sbfCross2 != 0 {
									if !c.icache.Read(npc2) {
										c.stats.ICacheStall += imissPen
										extra += imissPen
									}
									fetchLine = npc2 >> icShift
								} else {
									fb.icHits++
								}
								extra++
								fb.annulled++
								nextPC, nextNPC = npc2+4, npc2+8
								succPtr = &blk.succF
							default:
								nextPC, nextNPC = npc2, npc2+4
								slotRuns = true
								slotCross = blk.sbf&sbfCross2 != 0
								succPtr = &blk.succF
							}
						}
						if slotRuns {
							if blk.tFlags&fgSlotALU == 0 {
								// The slot is not a fusable ALU op: exit and
								// let the generic loop execute it with full
								// DCTI semantics. nextPC is the slot, so the
								// successor caches don't apply.
								succPtr = nil
							} else {
								// Inlined delay slot, pre-resolved in the
								// plan, exactly as the generic loop runs it.
								if slotCross {
									sspc := nextPC
									line := sspc >> icShift
									if icTags != nil {
										if icTags[line&icMask] == sspc>>icTagShift {
											fb.icHits++
										} else {
											icTags[line&icMask] = sspc >> icTagShift
											fb.icMisses++
											extra += imissPen
										}
									} else if !c.icache.Read(sspc) {
										c.stats.ICacheStall += imissPen
										extra += imissPen
									}
									fetchLine = line
								} else {
									fb.icHits++
								}
								instrs++
								sl := blk.slot
								sa, sb := rf[sl.ri>>20&riMask], sl.imm
								if sl.flags&sbOpImm == 0 {
									sb = rf[sl.ri>>10&riMask]
								}
								var sr uint32
								cc := false
								switch sl.code {
								case fAdd:
									sr = sa + sb
								case fAddCC:
									sr = sa + sb
									iccIdx = iccIndex(int32(sr) < 0, sr == 0, (^(sa^sb)&(sa^sr))>>31 != 0, sr < sa)
									cc = true
								case fSub:
									sr = sa - sb
								case fSubCC:
									sr = sa - sb
									iccIdx = iccIndex(int32(sr) < 0, sr == 0, ((sa^sb)&(sa^sr))>>31 != 0, sb > sa)
									cc = true
								case fAnd:
									sr = sa & sb
								case fAndCC:
									sr = sa & sb
									iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
									cc = true
								case fOr:
									sr = sa | sb
								case fOrCC:
									sr = sa | sb
									iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
									cc = true
								case fXor:
									sr = sa ^ sb
								case fXorCC:
									sr = sa ^ sb
									iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
									cc = true
								case fAndN:
									sr = sa &^ sb
								case fOrN:
									sr = sa | ^sb
								case fXnor:
									sr = ^(sa ^ sb)
								case fSll:
									sr = sa << (sb & 31)
								case fSrl:
									sr = sa >> (sb & 31)
								case fSra:
									sr = uint32(int32(sa) >> (sb & 31))
								case fSethi:
									sr = sl.imm
								}
								setRF(rf, sl.ri, sr)
								if cc {
									iccSetAt = instrs
								}
								nextPC, nextNPC = nextNPC, nextNPC+4
							}
						}

						// Chain: when flow continues sequentially at a
						// compiled head with room below the target, stay in
						// the executor — a hot loop whose back edge lands on
						// its own head never leaves this for-loop. The
						// successor for the edge just taken is cached in the
						// block, so the steady state needs no index or heat
						// lookups; an unresolved edge heats its target until
						// it compiles (or is pinned unreachable).
						if succPtr != nil && sbIdx != nil {
							s2 := *succPtr
							if s2 == 0 {
								if t := uint64(nextPC-textBase) >> 2; t < uint64(len(sbIdx)) {
									if h := sbIdx[t]; h > 0 {
										*succPtr, s2 = h, h
									} else if h == 0 {
										sbHeat[t]++
										if sbHeat[t] == sbThresh {
											c.compileSB(uint32(t))
											if h = sbIdx[t]; h > 0 {
												*succPtr, s2 = h, h
											}
										}
									} else {
										*succPtr = -1
									}
								} else {
									*succPtr = -1
								}
							}
							if s2 > 0 {
								nblk := &c.sbBlocks[s2-1]
								if instrs+uint64(nblk.maxInstrs) <= target {
									blk, spc = nblk, nextPC
									continue chain
								}
							}
						} else if nextNPC == nextPC+4 {
							if nIdx := uint64(nextPC-textBase) >> 2; nIdx < uint64(len(sbIdx)) {
								if s2 := sbIdx[nIdx]; s2 > 0 {
									nblk := &c.sbBlocks[s2-1]
									if instrs+uint64(nblk.maxInstrs) <= target {
										blk, spc = nblk, nextPC
										continue chain
									}
								} else if s2 == 0 {
									// Sequential continuation not compiled
									// yet: heat it, so hot regions grow block
									// chains forward past their branches.
									sbHeat[nIdx]++
									if sbHeat[nIdx] == sbThresh {
										c.compileSB(uint32(nIdx))
									}
								}
							}
						}
						pc, npc = nextPC, nextNPC
						continue loop
					}
				}
			}
		}
		ri := fastRI[idx]

		// Fetch. A fetch from the line probed last is a guaranteed hit
		// with no replacement side effects; credit it without touching
		// the tag store. Direct-mapped probes are inlined: one load and
		// compare against the raw tag store, counters batched.
		if line := pc >> icShift; line == fetchLine {
			fb.icHits++
		} else {
			if icTags != nil {
				if icTags[line&icMask] == pc>>icTagShift {
					fb.icHits++
				} else {
					icTags[line&icMask] = pc >> icTagShift
					fb.icMisses++
					extra += imissPen
				}
			} else if !c.icache.Read(pc) {
				c.stats.ICacheStall += imissPen
				extra += imissPen
			}
			fetchLine = line
		}
		instrs++

		// Load-use interlock.
		if hazard != noHazard {
			if (f.flags&fgReadsRs1 != 0 && c.hazardIndex(f.rs1) == hazard) ||
				(f.flags&fgReadsRs2 != 0 && c.hazardIndex(f.rs2) == hazard) ||
				(f.flags&fgReadsRd != 0 && c.hazardIndex(f.rd) == hazard) {
				fb.interlocks++
				extra += c.loadInterlock
			}
			hazard = noHazard
		}

		nextPC, nextNPC := npc, npc+4
		slotIdx := uint64(0) // when nonzero, a branch delay slot to run inline

		switch f.code {
		case fAdd:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]+b)
		case fAddCC:
			a, b := rf[ri>>20&riMask], f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			r := a + b
			setRF(rf, ri, r)
			iccIdx = iccIndex(int32(r) < 0, r == 0, (^(a^b)&(a^r))>>31 != 0, r < a)
			iccSetAt = instrs

		case fSub:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]-b)
		case fSubCC:
			a, b := rf[ri>>20&riMask], f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			r := a - b
			setRF(rf, ri, r)
			iccIdx = iccIndex(int32(r) < 0, r == 0, ((a^b)&(a^r))>>31 != 0, b > a)
			iccSetAt = instrs

		case fAnd:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]&b)
		case fAndCC:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			r := rf[ri>>20&riMask] & b
			setRF(rf, ri, r)
			iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
			iccSetAt = instrs
		case fOr:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]|b)
		case fOrCC:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			r := rf[ri>>20&riMask] | b
			setRF(rf, ri, r)
			iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
			iccSetAt = instrs
		case fXor:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]^b)
		case fXorCC:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			r := rf[ri>>20&riMask] ^ b
			setRF(rf, ri, r)
			iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
			iccSetAt = instrs
		case fAndN:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]&^b)
		case fOrN:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]|^b)
		case fXnor:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, ^(rf[ri>>20&riMask] ^ b))

		case fSll:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]<<(b&31))
		case fSrl:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, rf[ri>>20&riMask]>>(b&31))
		case fSra:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			setRF(rf, ri, uint32(int32(rf[ri>>20&riMask])>>(b&31)))

		case fUMul, fUMulCC:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			p := uint64(rf[ri>>20&riMask]) * uint64(b)
			c.y = uint32(p >> 32)
			r := uint32(p)
			setRF(rf, ri, r)
			if f.code == fUMulCC {
				iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
				iccSetAt = instrs
			}
			fb.mults++
			extra += c.mulExtra

		case fSMul, fSMulCC:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			p := int64(int32(rf[ri>>20&riMask])) * int64(int32(b))
			c.y = uint32(uint64(p) >> 32)
			r := uint32(p)
			setRF(rf, ri, r)
			if f.code == fSMulCC {
				iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
				iccSetAt = instrs
			}
			fb.mults++
			extra += c.mulExtra

		case fUDiv:
			divisor := f.imm
			if f.flags&fgUseImm == 0 {
				divisor = rf[ri>>10&riMask]
			}
			if divisor == 0 {
				retErr = fmt.Errorf("cpu: division by zero at %#08x", pc)
				break loop
			}
			dividend := uint64(c.y)<<32 | uint64(rf[ri>>20&riMask])
			q := dividend / uint64(divisor)
			if q > 0xFFFFFFFF {
				q = 0xFFFFFFFF // SPARC overflow clamp
			}
			setRF(rf, ri, uint32(q))
			fb.divs++
			extra += c.divExtra

		case fSDiv:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			divisor := int64(int32(b))
			if divisor == 0 {
				retErr = fmt.Errorf("cpu: division by zero at %#08x", pc)
				break loop
			}
			dividend := int64(uint64(c.y)<<32 | uint64(rf[ri>>20&riMask]))
			q := dividend / divisor
			if q > 0x7FFFFFFF {
				q = 0x7FFFFFFF
			} else if q < -0x80000000 {
				q = -0x80000000
			}
			setRF(rf, ri, uint32(int32(q)))
			fb.divs++
			extra += c.divExtra

		case fRdY:
			setRF(rf, ri, c.y)
		case fWrY:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			c.y = rf[ri>>20&riMask] ^ b
		case fSethi:
			setRF(rf, ri, f.imm)

		case fLd, fLdUB, fLdSB, fLdUH, fLdSH:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			addr := rf[ri>>20&riMask] + b
			fb.loads++
			extra++
			if addr < deviceBase {
				if line := addr >> dcShift; dcSkip && line == dcLine {
					fb.dcHits++
				} else {
					if dcDirect {
						if dcTags[line&dcMask] == addr>>dcTagShift {
							fb.dcHits++
						} else {
							dcTags[line&dcMask] = addr >> dcTagShift
							fb.dcMisses++
							extra += c.dmissPenalty
						}
					} else if !c.dcache.Read(addr) {
						c.stats.DCacheStall += c.dmissPenalty
						extra += c.dmissPenalty
					}
					dcLine = line // resident either way after a read
				}
			}
			// In-RAM aligned accesses read the backing store directly;
			// everything else (UART status, faults, misalignment) takes
			// the memory methods so the error semantics stay identical.
			var v uint32
			off := uint64(addr) - uint64(mem.RAMBase)
			switch f.code {
			case fLd:
				if off+4 <= uint64(len(ram)) && addr&3 == 0 {
					v = uint32(ram[off])<<24 | uint32(ram[off+1])<<16 |
						uint32(ram[off+2])<<8 | uint32(ram[off+3])
				} else {
					w, err := c.memory.Read32(addr)
					if err != nil {
						retErr = fmt.Errorf("%w at %#08x", err, pc)
						break loop
					}
					v = w
				}
			case fLdUB, fLdSB:
				if off < uint64(len(ram)) {
					v = uint32(ram[off])
				} else {
					by, err := c.memory.Read8(addr)
					if err != nil {
						retErr = fmt.Errorf("%w at %#08x", err, pc)
						break loop
					}
					v = uint32(by)
				}
				if f.code == fLdSB {
					v = uint32(int32(int8(v)))
				}
			case fLdUH, fLdSH:
				if off+2 <= uint64(len(ram)) && addr&1 == 0 {
					v = uint32(ram[off])<<8 | uint32(ram[off+1])
				} else {
					h, err := c.memory.Read16(addr)
					if err != nil {
						retErr = fmt.Errorf("%w at %#08x", err, pc)
						break loop
					}
					v = uint32(h)
				}
				if f.code == fLdSH {
					v = uint32(int32(int16(v)))
				}
			}
			setRF(rf, ri, v)
			if f.rd != 0 {
				hazard = c.hazardIndex(f.rd)
			}

		case fSt, fStB, fStH:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			addr := rf[ri>>20&riMask] + b
			v := rf[ri&riMask]
			fb.stores++
			extra += 2
			if addr < deviceBase {
				// A store to the line known resident is a write hit with
				// no state change (write-through, no-allocate; the skip is
				// disabled under LRU where hits age the ways). Other
				// stores probe; a write miss does not fill, so the
				// resident anchor is unaffected either way.
				if line := addr >> dcShift; dcSkip && line == dcLine {
					fb.dwHits++
				} else if dcDirect {
					if dcTags[line&dcMask] == addr>>dcTagShift {
						fb.dwHits++
						dcLine = line // a write hit proves residency too
					} else {
						fb.dwMisses++
					}
				} else {
					c.dcache.Write(addr)
				}
				stall := c.wbuf.Store(cyclesBase + (instrs - instrsBase) + extra)
				fb.wbStall += stall
				extra += stall
			}
			off := uint64(addr) - uint64(mem.RAMBase)
			switch f.code {
			case fSt:
				if off+4 <= uint64(len(ram)) && addr&3 == 0 {
					if off < wlo {
						wlo = off
					}
					if off+4 > whi {
						whi = off + 4
					}
					ram[off] = byte(v >> 24)
					ram[off+1] = byte(v >> 16)
					ram[off+2] = byte(v >> 8)
					ram[off+3] = byte(v)
				} else if err := c.memory.Write32(addr, v); err != nil {
					retErr = fmt.Errorf("%w at %#08x", err, pc)
					break loop
				}
			case fStB:
				if off < uint64(len(ram)) {
					if off < wlo {
						wlo = off
					}
					if off+1 > whi {
						whi = off + 1
					}
					ram[off] = uint8(v)
				} else if err := c.memory.Write8(addr, uint8(v)); err != nil {
					retErr = fmt.Errorf("%w at %#08x", err, pc)
					break loop
				}
			case fStH:
				if off+2 <= uint64(len(ram)) && addr&1 == 0 {
					if off < wlo {
						wlo = off
					}
					if off+2 > whi {
						whi = off + 2
					}
					ram[off] = byte(v >> 8)
					ram[off+1] = byte(v)
				} else if err := c.memory.Write16(addr, uint16(v)); err != nil {
					retErr = fmt.Errorf("%w at %#08x", err, pc)
					break loop
				}
			}

		case fBicc:
			fb.branches++
			if iccSetAt+1 == instrs && c.iccHold {
				fb.iccHolds++
				extra++
			}
			taken := f.condMask>>iccIdx&1 != 0
			slotRuns := false
			switch {
			case taken && f.flags&fgBAAnnul != 0:
				// ba,a: delay slot annulled even though taken.
				fb.taken++
				extra += 1 + c.decodeExtra
				if bbv != nil {
					bbv[f.target>>bbvShift&bbvMask]++
				}
				if sbHeat != nil {
					if t := uint64(f.target-textBase) >> 2; t < uint64(len(sbHeat)) {
						sbHeat[t]++
						if sbHeat[t] == sbThresh {
							c.compileSB(uint32(t))
						}
					}
				}
				// Annulled slot at npc: fetched, occupies a slot, no effect.
				if line := npc >> icShift; line == fetchLine {
					fb.icHits++
				} else {
					if !c.icache.Read(npc) {
						c.stats.ICacheStall += imissPen
						extra += imissPen
					}
					fetchLine = line
				}
				extra++
				fb.annulled++
				hazard = noHazard
				nextPC, nextNPC = f.target, f.target+4
			case taken:
				fb.taken++
				extra += 1 + c.decodeExtra
				if bbv != nil {
					bbv[f.target>>bbvShift&bbvMask]++
				}
				if sbHeat != nil {
					if t := uint64(f.target-textBase) >> 2; t < uint64(len(sbHeat)) {
						sbHeat[t]++
						if sbHeat[t] == sbThresh {
							c.compileSB(uint32(t))
						}
					}
				}
				nextPC, nextNPC = npc, f.target
				slotRuns = true
			case f.flags&fgAnnul != 0:
				// Untaken with annul: skip the delay slot.
				if line := npc >> icShift; line == fetchLine {
					fb.icHits++
				} else {
					if !c.icache.Read(npc) {
						c.stats.ICacheStall += imissPen
						extra += imissPen
					}
					fetchLine = line
				}
				extra++
				fb.annulled++
				hazard = noHazard
				nextPC, nextNPC = npc+4, npc+8
			default:
				// Untaken without annul: the "slot" is simply the next
				// sequential instruction, equally safe to run inline.
				slotRuns = true
			}
			if slotRuns && f.flags&fgSlotALU != 0 && npc == pc+4 {
				// Inline the delay slot only in sequential context: a Bicc
				// executing as another CTI's delay slot (a DCTI couple)
				// has its architectural slot at npc, not at idx+1.
				slotIdx = idx + 1
			}

		case fCall:
			fb.calls++
			c.setReg(isa.RegO7, pc)
			extra += 1 + c.decodeExtra
			if bbv != nil {
				bbv[f.target>>bbvShift&bbvMask]++
			}
			if sbHeat != nil {
				if t := uint64(f.target-textBase) >> 2; t < uint64(len(sbHeat)) {
					sbHeat[t]++
					if sbHeat[t] == sbThresh {
						c.compileSB(uint32(t))
					}
				}
			}
			nextPC, nextNPC = npc, f.target

		case fJmpl:
			b := f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			jt := rf[ri>>20&riMask] + b
			if jt&3 != 0 {
				retErr = fmt.Errorf("cpu: jmpl to misaligned %#08x at %#08x", jt, pc)
				break loop
			}
			fb.jumps++
			setRF(rf, ri, pc)
			extra += 1 + c.decodeExtra + c.jumpExtra
			if bbv != nil {
				bbv[jt>>bbvShift&bbvMask]++
			}
			if sbHeat != nil {
				if t := uint64(jt-textBase) >> 2; t < uint64(len(sbHeat)) {
					sbHeat[t]++
					if sbHeat[t] == sbThresh {
						c.compileSB(uint32(t))
					}
				}
			}
			nextPC, nextNPC = npc, jt

		case fAddCCBicc, fSubCCBicc, fAndCCBicc, fOrCCBicc, fXorCCBicc:
			// Fused compare-and-branch. First the ALU half at pc.
			a, b := rf[ri>>20&riMask], f.imm
			if f.flags&fgUseImm == 0 {
				b = rf[ri>>10&riMask]
			}
			var r uint32
			switch f.code {
			case fAddCCBicc:
				r = a + b
				iccIdx = iccIndex(int32(r) < 0, r == 0, (^(a^b)&(a^r))>>31 != 0, r < a)
			case fSubCCBicc:
				r = a - b
				iccIdx = iccIndex(int32(r) < 0, r == 0, ((a^b)&(a^r))>>31 != 0, b > a)
			case fAndCCBicc:
				r = a & b
				iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
			case fOrCCBicc:
				r = a | b
				iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
			case fXorCCBicc:
				r = a ^ b
				iccIdx = iccIndex(int32(r) < 0, r == 0, false, false)
			}
			setRF(rf, ri, r)
			iccSetAt = instrs
			if npc != pc+4 || instrs >= target {
				// Executing as a delay slot (control continues at npc, not
				// at the branch) or stopping on a sampling boundary: run
				// the ALU half only; the follower keeps its plain decode.
				break
			}
			// Branch half at pc2 = pc+4 == npc, with npc2 = pc+8. The
			// branch reads no registers, so no interlock is possible, and
			// hadICC is true by construction.
			pc2 := npc
			if line := pc2 >> icShift; line == fetchLine {
				fb.icHits++
			} else {
				if !c.icache.Read(pc2) {
					c.stats.ICacheStall += imissPen
					extra += imissPen
				}
				fetchLine = line
			}
			instrs++
			fb.branches++
			if c.iccHold {
				fb.iccHolds++
				extra++
			}
			taken := f.condMask>>iccIdx&1 != 0
			npc2 := pc2 + 4
			slotRuns := false
			switch {
			case taken && f.flags&fgBAAnnul != 0:
				fb.taken++
				extra += 1 + c.decodeExtra
				if bbv != nil {
					bbv[f.target>>bbvShift&bbvMask]++
				}
				if sbHeat != nil {
					if t := uint64(f.target-textBase) >> 2; t < uint64(len(sbHeat)) {
						sbHeat[t]++
						if sbHeat[t] == sbThresh {
							c.compileSB(uint32(t))
						}
					}
				}
				if line := npc2 >> icShift; line == fetchLine {
					fb.icHits++
				} else {
					if !c.icache.Read(npc2) {
						c.stats.ICacheStall += imissPen
						extra += imissPen
					}
					fetchLine = line
				}
				extra++
				fb.annulled++
				nextPC, nextNPC = f.target, f.target+4
			case taken:
				fb.taken++
				extra += 1 + c.decodeExtra
				if bbv != nil {
					bbv[f.target>>bbvShift&bbvMask]++
				}
				if sbHeat != nil {
					if t := uint64(f.target-textBase) >> 2; t < uint64(len(sbHeat)) {
						sbHeat[t]++
						if sbHeat[t] == sbThresh {
							c.compileSB(uint32(t))
						}
					}
				}
				nextPC, nextNPC = npc2, f.target
				slotRuns = true
			case f.flags&fgAnnul != 0:
				if line := npc2 >> icShift; line == fetchLine {
					fb.icHits++
				} else {
					if !c.icache.Read(npc2) {
						c.stats.ICacheStall += imissPen
						extra += imissPen
					}
					fetchLine = line
				}
				extra++
				fb.annulled++
				nextPC, nextNPC = npc2+4, npc2+8
			default:
				nextPC, nextNPC = npc2, npc2+4
				slotRuns = true
			}
			if slotRuns && f.flags&fgSlotALU != 0 && npc == pc+4 {
				slotIdx = idx + 2
			}
		}

		if slotIdx != 0 && instrs < target {
			// Execute the delay slot inline: a fusable ALU op at
			// slotIdx, read from its own predecoded entry. It runs at
			// address nextPC with the branch outcome already decided,
			// then flow advances one slot: both taken and untaken
			// outcomes collapse to (nextNPC, nextNPC+4).
			sl := &fast[slotIdx]
			sri := fastRI[slotIdx]
			spc := nextPC
			if line := spc >> icShift; line == fetchLine {
				fb.icHits++
			} else {
				if icTags != nil {
					if icTags[line&icMask] == spc>>icTagShift {
						fb.icHits++
					} else {
						icTags[line&icMask] = spc >> icTagShift
						fb.icMisses++
						extra += imissPen
					}
				} else if !c.icache.Read(spc) {
					c.stats.ICacheStall += imissPen
					extra += imissPen
				}
				fetchLine = line
			}
			instrs++
			sa, sb := rf[sri>>20&riMask], sl.imm
			if sl.flags&fgUseImm == 0 {
				sb = rf[sri>>10&riMask]
			}
			var sr uint32
			cc := false
			switch sl.code {
			case fAdd:
				sr = sa + sb
			case fAddCC:
				sr = sa + sb
				iccIdx = iccIndex(int32(sr) < 0, sr == 0, (^(sa^sb)&(sa^sr))>>31 != 0, sr < sa)
				cc = true
			case fSub:
				sr = sa - sb
			case fSubCC:
				sr = sa - sb
				iccIdx = iccIndex(int32(sr) < 0, sr == 0, ((sa^sb)&(sa^sr))>>31 != 0, sb > sa)
				cc = true
			case fAnd:
				sr = sa & sb
			case fAndCC:
				sr = sa & sb
				iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
				cc = true
			case fOr:
				sr = sa | sb
			case fOrCC:
				sr = sa | sb
				iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
				cc = true
			case fXor:
				sr = sa ^ sb
			case fXorCC:
				sr = sa ^ sb
				iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
				cc = true
			case fAndN:
				sr = sa &^ sb
			case fOrN:
				sr = sa | ^sb
			case fXnor:
				sr = ^(sa ^ sb)
			case fSll:
				sr = sa << (sb & 31)
			case fSrl:
				sr = sa >> (sb & 31)
			case fSra:
				sr = uint32(int32(sa) >> (sb & 31))
			case fSethi:
				sr = sl.imm
			}
			setRF(rf, sri, sr)
			if cc {
				iccSetAt = instrs
			}
			nextPC, nextNPC = nextNPC, nextNPC+4
		}

		if n := uint64(f.condMask); f.code <= fRunnableMax && n > 1 && npc == pc+4 && instrs+n-1 <= target {
			// Straight-line run: retire the remaining n-1 ops of the run
			// in place. Within a run, an op on the same icache line as
			// its predecessor is a guaranteed hit (the predecessor just
			// fetched that line), so only the predecoded line-start ops
			// probe. Runs hold only ALU ops and hazard-safe loads (the
			// successor of an in-run load never reads its register, by
			// construction), so there is no interlock bookkeeping per op:
			// a pending hazard from the dispatched op expires on the
			// first consumed op, and only a load in last position arms a
			// new one.
			hazard = noHazard
			// Fetch accounting is hoisted to run granularity: the run
			// spans lines firstLine..lastLine, the entry op already
			// probed firstLine, each later line is probed once here, and
			// every other fetch is a guaranteed same-line hit. Probes
			// commute with the ALU/load work (disjoint state), so doing
			// them up front is exact for completed runs; only a run
			// aborted by a memory fault (which kills the whole
			// simulation) observes probes ahead of the faulting op.
			firstLine := pc >> icShift
			lastLine := (pc + uint32(n-1)*4) >> icShift
			fb.icHits += n - 1 - uint64(lastLine-firstLine)
			for line := firstLine + 1; line <= lastLine; line++ {
				if icTags != nil {
					if icTags[line&icMask] == line>>(icTagShift-icShift) {
						fb.icHits++
					} else {
						icTags[line&icMask] = line >> (icTagShift - icShift)
						fb.icMisses++
						extra += imissPen
					}
				} else if !c.icache.Read(line << icShift) {
					c.stats.ICacheStall += imissPen
					extra += imissPen
				}
			}
			fetchLine = lastLine
			instrsRun := instrs
			instrs += n - 1
			for k := uint64(1); k < n; k++ {
				sl := &fast[idx+k]
				sri := fastRI[idx+k]
				sa, sb := rf[sri>>20&riMask], sl.imm
				if sl.flags&fgUseImm == 0 {
					sb = rf[sri>>10&riMask]
				}
				var sr uint32
				switch sl.code {
				case fAdd:
					sr = sa + sb
				case fAddCC:
					sr = sa + sb
					iccIdx = iccIndex(int32(sr) < 0, sr == 0, (^(sa^sb)&(sa^sr))>>31 != 0, sr < sa)
					iccSetAt = instrsRun + k
				case fSub:
					sr = sa - sb
				case fSubCC:
					sr = sa - sb
					iccIdx = iccIndex(int32(sr) < 0, sr == 0, ((sa^sb)&(sa^sr))>>31 != 0, sb > sa)
					iccSetAt = instrsRun + k
				case fAnd:
					sr = sa & sb
				case fAndCC:
					sr = sa & sb
					iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
					iccSetAt = instrsRun + k
				case fOr:
					sr = sa | sb
				case fOrCC:
					sr = sa | sb
					iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
					iccSetAt = instrsRun + k
				case fXor:
					sr = sa ^ sb
				case fXorCC:
					sr = sa ^ sb
					iccIdx = iccIndex(int32(sr) < 0, sr == 0, false, false)
					iccSetAt = instrsRun + k
				case fAndN:
					sr = sa &^ sb
				case fOrN:
					sr = sa | ^sb
				case fXnor:
					sr = ^(sa ^ sb)
				case fSll:
					sr = sa << (sb & 31)
				case fSrl:
					sr = sa >> (sb & 31)
				case fSra:
					sr = uint32(int32(sa) >> (sb & 31))
				case fSethi:
					sr = sl.imm
				case fLd, fLdUB, fLdSB, fLdUH, fLdSH:
					addr := sa + sb
					fb.loads++
					extra++
					if addr < deviceBase {
						if line := addr >> dcShift; dcSkip && line == dcLine {
							fb.dcHits++
						} else {
							if dcDirect {
								if dcTags[line&dcMask] == addr>>dcTagShift {
									fb.dcHits++
								} else {
									dcTags[line&dcMask] = addr >> dcTagShift
									fb.dcMisses++
									extra += c.dmissPenalty
								}
							} else if !c.dcache.Read(addr) {
								c.stats.DCacheStall += c.dmissPenalty
								extra += c.dmissPenalty
							}
							dcLine = line
						}
					}
					off := uint64(addr) - uint64(mem.RAMBase)
					switch sl.code {
					case fLd:
						if off+4 <= uint64(len(ram)) && addr&3 == 0 {
							sr = uint32(ram[off])<<24 | uint32(ram[off+1])<<16 |
								uint32(ram[off+2])<<8 | uint32(ram[off+3])
						} else {
							w, err := c.memory.Read32(addr)
							if err != nil {
								instrs = instrsRun + k
								pc, npc = pc+uint32(k)*4, pc+uint32(k)*4+4
								retErr = fmt.Errorf("%w at %#08x", err, pc)
								break loop
							}
							sr = w
						}
					case fLdUB, fLdSB:
						if off < uint64(len(ram)) {
							sr = uint32(ram[off])
						} else {
							by, err := c.memory.Read8(addr)
							if err != nil {
								instrs = instrsRun + k
								pc, npc = pc+uint32(k)*4, pc+uint32(k)*4+4
								retErr = fmt.Errorf("%w at %#08x", err, pc)
								break loop
							}
							sr = uint32(by)
						}
						if sl.code == fLdSB {
							sr = uint32(int32(int8(sr)))
						}
					case fLdUH, fLdSH:
						if off+2 <= uint64(len(ram)) && addr&1 == 0 {
							sr = uint32(ram[off])<<8 | uint32(ram[off+1])
						} else {
							h, err := c.memory.Read16(addr)
							if err != nil {
								instrs = instrsRun + k
								pc, npc = pc+uint32(k)*4, pc+uint32(k)*4+4
								retErr = fmt.Errorf("%w at %#08x", err, pc)
								break loop
							}
							sr = uint32(h)
						}
						if sl.code == fLdSH {
							sr = uint32(int32(int16(sr)))
						}
					}
					if k == n-1 && sl.rd != 0 {
						// Only a last-position load leaves a live hazard
						// for the next dispatched instruction.
						hazard = c.hazardIndex(sl.rd)
					}
				}
				setRF(rf, sri, sr)
			}
			lastPC := pc + uint32(n-1)*4
			nextPC, nextNPC = lastPC+4, lastPC+8
		}

		pc, npc = nextPC, nextNPC
	}

	// Single exit: write the batched hot-loop state back into the core so
	// the reference path (Step), error reporting and the profile observe
	// it, whatever path led here.
	c.pc, c.npc = pc, npc
	c.stats.Cycles = cyclesBase + (instrs - instrsBase) + extra
	c.stats.Instructions = instrs
	c.loadHazardReg = hazard
	c.iccJustSet = iccSetAt == instrs
	c.icc = unpackICC(iccIdx)
	if whi > wlo {
		c.memory.Widen(int(wlo), int(whi))
	}
	fb.flush(c)
	c.sbStats.Hits += sbHits
	c.sbStats.Deopts += sbDeopts
	return stepNext, retErr
}

// iccIndex packs four condition-code bits into the 4-bit table index used
// against fastInstr.condMask. The four independent conditional assignments
// compile to flag materialisations, not branches.
func iccIndex(n, z, v, cbit bool) uint8 {
	var bn, bz, bv, bc uint8
	if n {
		bn = 8
	}
	if z {
		bz = 4
	}
	if v {
		bv = 2
	}
	if cbit {
		bc = 1
	}
	return bn | bz | bv | bc
}
