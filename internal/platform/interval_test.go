package platform_test

import (
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// intervalRun executes app at Tiny scale with the given options.
func intervalRun(t *testing.T, app string, opts platform.Options) *platform.RunReport {
	t.Helper()
	b, ok := progs.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	prog, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := platform.RunWith(prog, config.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestIntervalsSumToWholeRun: interval profiling must not perturb the
// simulation — the whole-run report equals a plain run's, and the
// interval deltas sum back to it exactly, counter for counter.
func TestIntervalsSumToWholeRun(t *testing.T) {
	for _, app := range progs.Names() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			plain := intervalRun(t, app, platform.Options{})
			rep := intervalRun(t, app, platform.Options{IntervalInstructions: 10_000})
			if rep.Cycles() != plain.Cycles() || rep.Stats != plain.Stats {
				t.Errorf("interval run diverged: %d cycles vs %d", rep.Cycles(), plain.Cycles())
			}
			if rep.Checksum != plain.Checksum || rep.ExitCode != plain.ExitCode {
				t.Errorf("results diverged: checksum %#x vs %#x", rep.Checksum, plain.Checksum)
			}
			if len(rep.Intervals) == 0 {
				t.Fatal("no intervals collected")
			}
			var sum platform.Interval
			var sigTotal uint64
			for i, iv := range rep.Intervals {
				if iv.Index != i {
					t.Errorf("interval %d has index %d", i, iv.Index)
				}
				if i < len(rep.Intervals)-1 && iv.Instructions != 10_000 {
					t.Errorf("interval %d is %d instructions, want 10000", i, iv.Instructions)
				}
				sum.Instructions += iv.Instructions
				sum.Stats.Add(iv.Stats)
				sum.ICache.Add(iv.ICache)
				sum.DCache.Add(iv.DCache)
				if len(iv.Signature) != platform.SignatureBuckets {
					t.Fatalf("interval %d signature has %d buckets", i, len(iv.Signature))
				}
				for _, c := range iv.Signature {
					sigTotal += uint64(c)
				}
			}
			if sum.Stats != rep.Stats {
				t.Errorf("interval stats do not sum to the whole run:\n%+v\nvs\n%+v", sum.Stats, rep.Stats)
			}
			if sum.ICache != rep.ICache || sum.DCache != rep.DCache {
				t.Error("interval cache counters do not sum to the whole run")
			}
			// Every taken CTI lands in some bucket.
			wantSig := rep.Stats.TakenBranches + rep.Stats.Calls + rep.Stats.Jumps
			if sigTotal != wantSig {
				t.Errorf("signature total %d, want taken+calls+jumps = %d", sigTotal, wantSig)
			}
		})
	}
}

// TestIntervalsStepEquivalence: the reference Step path (forced by a
// trace writer) must produce byte-identical intervals to the fast path —
// the signature increments live in two implementations.
func TestIntervalsStepEquivalence(t *testing.T) {
	fast := intervalRun(t, "arith", platform.Options{IntervalInstructions: 5_000})
	slow := intervalRun(t, "arith", platform.Options{
		IntervalInstructions: 5_000,
		TraceWriter:          io.Discard,
	})
	if !reflect.DeepEqual(fast.Intervals, slow.Intervals) {
		t.Error("fast-path intervals differ from Step-path intervals")
	}
}

// TestIntervalsDeterministic: two runs produce byte-identical interval
// slices (serialization included — this is what golden phase traces rest
// on).
func TestIntervalsDeterministic(t *testing.T) {
	a := intervalRun(t, "blastn", platform.Options{IntervalInstructions: 7_500})
	b := intervalRun(t, "blastn", platform.Options{IntervalInstructions: 7_500})
	ja, err := json.Marshal(a.Intervals)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Intervals)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("interval profiles are not reproducible")
	}
}

// TestIntervalsRespectInstructionLimit: an oversized (even overflowing)
// interval length must not defeat the runaway-run guard — the abort at
// MaxInstructions fires exactly as on the non-interval path.
func TestIntervalsRespectInstructionLimit(t *testing.T) {
	b, _ := progs.ByName("blastn")
	prog, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	_, err = platform.RunWith(prog, config.Default(), platform.Options{
		IntervalInstructions: ^uint64(0),
		MaxInstructions:      10_000,
	})
	if err == nil {
		t.Fatal("runaway guard should abort the run")
	}
}

// TestIntervalsWithSampling: interval profiling under a sample limit
// stops exactly at the limit and flags the run sampled.
func TestIntervalsWithSampling(t *testing.T) {
	rep := intervalRun(t, "blastn", platform.Options{
		IntervalInstructions: 4_000,
		SampleInstructions:   10_000,
	})
	if !rep.Sampled {
		t.Error("run should be sampled")
	}
	if rep.Stats.Instructions != 10_000 {
		t.Errorf("sampled run retired %d instructions, want 10000", rep.Stats.Instructions)
	}
	if n := len(rep.Intervals); n != 3 {
		t.Errorf("got %d intervals, want 3 (4000+4000+2000)", n)
	}
	if last := rep.Intervals[len(rep.Intervals)-1]; last.Instructions != 2_000 {
		t.Errorf("final interval is %d instructions, want 2000", last.Instructions)
	}
}
