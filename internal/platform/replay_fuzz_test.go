package platform_test

import (
	"fmt"
	"strings"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

// Fuzzing the reconfigure-at-boundary path, in the style of the cpu
// package's FuzzSuperblockDifferential: arbitrary fuzz bytes become a
// valid halting program (a counted loop over arithmetic, memory traffic
// and a save/restore call chain of fuzzed depth) plus a fuzzed switch
// schedule over a palette of valid configurations. Whatever the bytes,
// three invariants must hold: the whole-run stats equal the
// concatenation of the per-segment stats, the architectural results
// match a plain single-configuration run (the instruction stream is
// configuration-independent), and the replay is deterministic.

// fuzzReplayProgram renders a halting program from four fuzz bytes:
// loop trip count, arithmetic constants, and the depth of a save/
// restore call chain executed every iteration. Depth reaches past
// seven so the 8-window configurations take overflow/underflow traps
// while the 16-window ones do not — the hardest state for a mid-run
// switch to carry across. Every window register is written before it
// is read, so the digest is architecture-defined on any window count.
func fuzzReplayProgram(a, b, c, d byte) (*asm.Program, error) {
	trips := 8 + int(a)%24
	depth := 1 + int(b)%9
	k1 := 1 + uint32(c)
	k2 := uint32(d) | 1 // odd, nonzero: safe divisor

	var sb strings.Builder
	fmt.Fprintf(&sb, `
        .text
start:
        set     0x40080000, %%g6     ! scratch word, 512 KB into RAM
        clr     %%g1                 ! digest
        mov     %d, %%g7             ! trip count
loop:
        add     %%g1, %d, %%g1
        xor     %%g1, %d, %%g1
        umul    %%g1, %d, %%o5
        add     %%g1, %%o5, %%g1
        wr      %%g0, %%y
        udiv    %%g1, %d, %%o5
        xor     %%g1, %%o5, %%g1
        st      %%g1, [%%g6 + 0]
        ld      [%%g6 + 0], %%o4
        add     %%g1, %%o4, %%g1
        call    sub1
        nop
        subcc   %%g7, 1, %%g7
        bne     loop
        nop
        clr     %%o0
        mov     %%g1, %%o1
        halt
`, trips, k1, k2, k1|1, k2)
	for lvl := 1; lvl <= depth; lvl++ {
		fmt.Fprintf(&sb, "sub%d:\n        save    %%sp, -96, %%sp\n", lvl)
		fmt.Fprintf(&sb, "        mov     %d, %%l1\n", lvl*3+int(k1)%7)
		fmt.Fprintf(&sb, "        xor     %%g1, %%l1, %%g1\n")
		if lvl < depth {
			fmt.Fprintf(&sb, "        call    sub%d\n        nop\n", lvl+1)
			// Read the local back after the nested chain returns: on a
			// small window file it was spilled and refilled meanwhile.
			fmt.Fprintf(&sb, "        add     %%g1, %%l1, %%g1\n")
		}
		fmt.Fprintf(&sb, "        ret\n        restore\n")
	}
	return asm.Assemble(sb.String())
}

// fuzzConfigPalette is the set of valid configurations fuzzed schedules
// draw from; entry 0 is the base.
func fuzzConfigPalette(t *testing.T) []config.Config {
	t.Helper()
	base := config.Default()
	win16 := base
	win16.IU.RegWindows = 16
	dline := base
	dline.DCache.LineWords = 8
	iu := base
	iu.IU.FastJump = !base.IU.FastJump
	iu.IU.ICCHold = !base.IU.ICCHold
	mixed := win16
	mixed.DCache.LineWords = 8
	mixed.IU.LoadDelay = 2
	palette := []config.Config{base, win16, dline, iu, mixed}
	for i, cfg := range palette {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("palette entry %d invalid: %v", i, err)
		}
	}
	return palette
}

func FuzzReplayDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{7, 8, 3, 9, 1, 2})
	f.Add([]byte{200, 6, 255, 254, 42, 99})
	f.Add([]byte{13, 3, 17, 5, 0xAB, 0xCD, 0x12, 0x34})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		prog, err := fuzzReplayProgram(data[0], data[1], data[2], data[3])
		if err != nil {
			t.Fatalf("fuzz program failed to assemble: %v", err)
		}
		palette := fuzzConfigPalette(t)

		// Bytes 4.. drive the schedule: each byte is (config, interval
		// count) for one step; the last step runs to completion.
		var steps []platform.ReplayStep
		for _, sb := range data[4:] {
			steps = append(steps, platform.ReplayStep{
				Config:    palette[int(sb)%len(palette)],
				Intervals: 1 + int(sb>>4)%4,
			})
			if len(steps) == 8 {
				break
			}
		}
		steps[len(steps)-1].Intervals = -1
		opts := platform.Options{IntervalInstructions: 300, MaxInstructions: 2_000_000}

		rep, err := platform.ReplaySchedule(prog, steps, opts)
		if err != nil {
			t.Fatalf("ReplaySchedule: %v", err)
		}

		// Concatenation: the per-segment decomposition must tile the
		// whole-run totals exactly.
		st, ic, dc := sumSegments(rep)
		if st != rep.Stats || ic != rep.ICache || dc != rep.DCache {
			t.Fatalf("segment sums diverge from whole-run totals:\nsum   %+v\ntotal %+v", st, rep.Stats)
		}
		if err := rep.Stats.ConsistencyError(); err != nil {
			t.Fatalf("replay profile imbalance: %v", err)
		}

		// Architectural equivalence: any single-configuration run of the
		// same program retires the same stream and digest.
		plain, err := platform.RunWith(prog, palette[0], opts)
		if err != nil {
			t.Fatalf("plain run: %v", err)
		}
		if rep.Stats.Instructions != plain.Stats.Instructions {
			t.Fatalf("replay retired %d instructions, plain run %d", rep.Stats.Instructions, plain.Stats.Instructions)
		}
		if rep.ExitCode != plain.ExitCode || rep.Checksum != plain.Checksum {
			t.Fatalf("replay changed architectural results: exit %d/%d digest %#x/%#x",
				rep.ExitCode, plain.ExitCode, rep.Checksum, plain.Checksum)
		}

		// Determinism: an identical replay reproduces every field.
		again, err := platform.ReplaySchedule(prog, steps, opts)
		if err != nil {
			t.Fatalf("ReplaySchedule (second): %v", err)
		}
		if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", rep) {
			t.Fatalf("replay not deterministic")
		}
	})
}
