package platform

// Parallel interval simulation (DESIGN.md §17). Simulation is inherently
// serial — every cycle depends on the full microarchitectural history —
// so a single run cannot be split. But the measurement workloads
// (52-config model builds, phase tunes, daemon jobs) repeat *identical*
// interval-profiled runs, and those can: the first, serial execution of
// a run checkpoints the complete engine state (registers, caches, write
// buffer, dirty RAM, console) at interval boundaries; an identical
// re-run then fans disjoint interval segments across workers, each
// resuming from a checkpoint, and concatenates the per-segment interval
// snapshots. Because a checkpoint is exact, every segment retires the
// same instruction and cycle stream the serial run would — the merged
// RunReport is byte-identical to serial execution, which the
// parallel-equivalence suite enforces.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"liquidarch/internal/cpu"
	"liquidarch/internal/mem"
)

// Checkpoint budgets: capture thins itself (dropping every other
// checkpoint and doubling its stride) whenever the set would exceed
// either bound, so long runs keep a bounded, roughly even spread.
const (
	maxCheckpoints     = 64
	maxCheckpointBytes = 128 << 20
)

// checkpoint is one resumable interval boundary.
type checkpoint struct {
	idx  int // intervals completed when the snapshot was taken
	core cpu.CoreState
	mem  mem.MemoryState
}

// ckCapture tracks checkpoint capture during a serial interval run.
type ckCapture struct {
	stride int
	bytes  int
}

// startCapture arms checkpoint capture for this run, or returns nil when
// capture is pointless (serial tuning, traced run) or already complete.
func (e *Engine) startCapture() *ckCapture {
	if e.ckDone || e.opts.IntraRunWorkers <= 1 || e.opts.TraceWriter != nil {
		return nil
	}
	e.cks = e.cks[:0]
	return &ckCapture{stride: 1}
}

// note captures a checkpoint at an interval boundary (done intervals
// complete, run still live) when the boundary falls on the current
// stride.
func (c *ckCapture) note(e *Engine, done int) {
	if done == 0 || done%c.stride != 0 {
		return
	}
	var ck checkpoint
	ck.idx = done
	e.core.SaveState(&ck.core)
	e.m.SaveState(&ck.mem)
	c.bytes += ck.mem.Bytes()
	e.cks = append(e.cks, ck)
	if len(e.cks) <= maxCheckpoints && c.bytes <= maxCheckpointBytes {
		return
	}
	// Thin: keep every other checkpoint and double the stride. The
	// invariant cks[i].idx == (i+1)*stride holds before and after, so
	// capture stays evenly spread no matter how long the run gets.
	kept := e.cks[:0]
	for i := range e.cks {
		if i%2 == 1 {
			kept = append(kept, e.cks[i])
		}
	}
	for i := len(kept); i < len(e.cks); i++ {
		e.cks[i] = checkpoint{} // release the dropped snapshots
	}
	e.cks = kept
	c.stride *= 2
	c.bytes = 0
	for i := range e.cks {
		c.bytes += e.cks[i].mem.Bytes()
	}
}

// finishCapture marks the checkpoint set complete at the end of a
// successful serial run of total intervals.
func (e *Engine) finishCapture(c *ckCapture, total int) {
	if c == nil {
		return
	}
	e.nIntervals = total
	e.ckDone = len(e.cks) > 0
	if !e.ckDone {
		e.cks = nil
	}
}

// discardCapture drops a partial checkpoint set after a failed run.
func (e *Engine) discardCapture(c *ckCapture) {
	if c == nil {
		return
	}
	e.cks = nil
	e.ckDone = false
}

// canRunParallel reports whether this run can take the checkpointed
// parallel path.
func (e *Engine) canRunParallel() bool {
	return e.ckDone && len(e.cks) > 0 && e.opts.IntraRunWorkers > 1 &&
		e.opts.TraceWriter == nil
}

// segEngine is a worker's private core+memory pair for segment replay.
// Clones are cached on the engine, so repeated parallel runs reuse them.
type segEngine struct {
	m    *mem.Memory
	core *cpu.Core
}

func (e *Engine) newSegEngine() (*segEngine, error) {
	m := mem.New(e.opts.RAMBytes)
	if err := e.prog.Load(m); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	m.Snapshot()
	core, err := cpu.New(e.cfg, m)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := core.LoadText(e.prog.TextBase, e.prog.TextWords()); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	core.EnableSuperblocks(e.opts.SuperblockThreshold)
	core.EnableBlockVector(SignatureBuckets, signatureShift)
	return &segEngine{m: m, core: core}, nil
}

// runIntervalsParallel replays an already-checkpointed run as disjoint
// interval segments across up to IntraRunWorkers goroutines and merges
// the results. The caller (Engine.Run) has already restored memory and
// reset the primary core, which executes segment 0 from the top of the
// program; every other segment resumes a cached clone from a checkpoint.
func (e *Engine) runIntervalsParallel() ([]Interval, bool, error) {
	// Plan: cut the checkpoint list into contiguous spans of roughly
	// nIntervals/W intervals. starts[0] == nil is segment 0 (from reset);
	// segment s runs counts[s] intervals (-1: to the end of the run).
	w := e.opts.IntraRunWorkers
	per := (e.nIntervals + w - 1) / w
	if per < 1 {
		per = 1
	}
	starts := []*checkpoint{nil}
	next := per
	for i := range e.cks {
		if len(starts) >= w {
			break
		}
		if e.cks[i].idx >= next {
			starts = append(starts, &e.cks[i])
			next = e.cks[i].idx + per
		}
	}
	n := len(starts)
	if n == 1 {
		return e.runIntervals()
	}
	counts := make([]int, n)
	for s := range counts {
		startIdx := 0
		if starts[s] != nil {
			startIdx = starts[s].idx
		}
		if s+1 < n {
			counts[s] = starts[s+1].idx - startIdx
		} else {
			counts[s] = -1
		}
	}
	for len(e.clones) < n-1 {
		se, err := e.newSegEngine()
		if err != nil {
			return nil, false, err
		}
		e.clones = append(e.clones, se)
	}

	type segResult struct {
		intervals []Interval
		sampled   bool
		err       error
	}
	results := make([]segResult, n)
	// Utilization accounting for the daemon's counters: per-segment replay
	// time sums into busy, the whole fan-out into wall, so busy/wall is
	// the concurrency the fan-out actually achieved.
	wallStart := time.Now()
	var busyNs atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			segStart := time.Now()
			core := e.core
			if s == 0 {
				core.EnableBlockVector(SignatureBuckets, signatureShift)
			} else {
				se := e.clones[s-1]
				se.m.RestoreState(&starts[s].mem)
				se.core.RestoreState(&starts[s].core)
				core = se.core
			}
			iv, sampled, err := runIntervalSegment(core, e.opts, counts[s])
			results[s] = segResult{iv, sampled, err}
			busyNs.Add(uint64(time.Since(segStart)))
		}(s)
	}
	wg.Wait()
	ctrParSegments.Add(uint64(n))
	ctrParBusyNs.Add(busyNs.Load())
	ctrParWallNs.Add(uint64(time.Since(wallStart)))

	var intervals []Interval
	for s := range results {
		if results[s].err != nil {
			return nil, false, results[s].err
		}
		intervals = append(intervals, results[s].intervals...)
	}
	for i := range intervals {
		intervals[i].Index = i
	}
	// Fold the final segment's end-of-run state into the primary engine:
	// its absolute counters, registers, RAM and console ARE the whole
	// run's (each segment resumed exact state, so the last one ends
	// exactly where a serial run would). Run then extracts the report
	// from the primary core/memory as usual.
	last := e.clones[n-2]
	var fin checkpoint
	last.core.SaveState(&fin.core)
	last.m.SaveState(&fin.mem)
	e.core.RestoreState(&fin.core)
	e.m.RestoreState(&fin.mem)
	ctrParRuns.Add(1)
	return intervals, results[n-1].sampled, nil
}

// runIntervalSegment drives one segment of an interval-profiled run:
// the serial boundary loop, stopping after count intervals (count < 0:
// run to the halt trap or the sample limit). The core's counters are
// absolute (restored from the checkpoint), so the sample and runaway
// clamps behave exactly as in the serial run.
func runIntervalSegment(core *cpu.Core, opts Options, count int) ([]Interval, bool, error) {
	every := opts.IntervalInstructions
	sample := opts.SampleInstructions
	prev := core.Stats()
	prevIC, prevDC := core.ICacheStats(), core.DCacheStats()
	var intervals []Interval
	for {
		done := prev.Instructions
		step := every
		if sample > 0 && step > sample-done {
			step = sample - done
		}
		if step > opts.MaxInstructions-done {
			step = opts.MaxInstructions - done
		}
		halted, err := core.RunFor(step)
		if err != nil {
			return nil, false, fmt.Errorf("platform: %w", err)
		}
		st, ic, dc := core.Stats(), core.ICacheStats(), core.DCacheStats()
		if st.Instructions > prev.Instructions {
			intervals = append(intervals, Interval{
				Index:        len(intervals),
				Instructions: st.Instructions - prev.Instructions,
				Stats:        st.Sub(prev),
				ICache:       ic.Sub(prevIC),
				DCache:       dc.Sub(prevDC),
				Signature:    core.TakeBlockVector(),
			})
		}
		prev, prevIC, prevDC = st, ic, dc
		if halted {
			return intervals, false, nil
		}
		if sample > 0 && st.Instructions >= sample {
			return intervals, true, nil
		}
		if st.Instructions >= opts.MaxInstructions {
			return nil, false, fmt.Errorf("platform: instruction limit %d reached at pc %#08x",
				opts.MaxInstructions, core.PC())
		}
		if count >= 0 && len(intervals) >= count {
			return intervals, false, nil
		}
	}
}
