package platform

import (
	"sync/atomic"

	"liquidarch/internal/cpu"
)

// Process-wide tuning defaults and diagnostic counters. Options inherit
// the defaults when their tuning fields are zero, so one SetDefaultTuning
// call (a CLI flag, a daemon option) retunes every subsequent run without
// threading knobs through each call site. The counters aggregate
// superblock and parallel-interval activity across all engines for the
// daemon's /v1/metrics endpoint; none of them feed any report.
var (
	defaultSBThreshold atomic.Int64
	defaultWorkers     atomic.Int64

	ctrSBCompiled atomic.Uint64
	ctrSBHits     atomic.Uint64
	ctrSBDeopts   atomic.Uint64
	ctrParRuns    atomic.Uint64

	ctrParSegments atomic.Uint64
	ctrParBusyNs   atomic.Uint64
	ctrParWallNs   atomic.Uint64

	ctrReplayRuns     atomic.Uint64
	ctrReplaySwitches atomic.Uint64
	ctrOnlineRuns     atomic.Uint64
	ctrOnlineSwitches atomic.Uint64
)

func init() {
	defaultSBThreshold.Store(cpu.DefaultSuperblockThreshold)
	defaultWorkers.Store(1)
}

// SetDefaultTuning sets the process-wide execution-tuning defaults.
// superblockThreshold <= 0 disables superblock specialization by default;
// a positive value compiles hot blocks at that taken-branch heat.
// intraRunWorkers <= 1 keeps interval-profiled runs serial by default; a
// larger value lets identical re-runs fan checkpointed interval segments
// across that many goroutines. Neither knob changes any reported result —
// only wall-clock speed (DESIGN.md §17).
func SetDefaultTuning(superblockThreshold, intraRunWorkers int) {
	if superblockThreshold < 0 {
		superblockThreshold = 0
	}
	defaultSBThreshold.Store(int64(superblockThreshold))
	if intraRunWorkers < 1 {
		intraRunWorkers = 1
	}
	defaultWorkers.Store(int64(intraRunWorkers))
}

// TuningCounters is a point-in-time snapshot of the process-wide
// execution-tuning activity, for the daemon's metrics endpoint.
type TuningCounters struct {
	// SuperblockCompiled, SuperblockHits and SuperblockDeopts aggregate
	// the per-core superblock counters over every run this process
	// executed.
	SuperblockCompiled uint64 `json:"superblock_compiled"`
	SuperblockHits     uint64 `json:"superblock_hits"`
	SuperblockDeopts   uint64 `json:"superblock_deopts"`
	// ParallelRuns counts interval-profiled runs that executed as a
	// checkpointed parallel re-run; ParallelWorkers is the current
	// process-default worker bound.
	ParallelRuns    uint64 `json:"parallel_runs"`
	ParallelWorkers int    `json:"parallel_workers"`
	// ParallelSegments counts the interval segments those runs fanned
	// out; ParallelBusyNs sums the segments' replay time and
	// ParallelWallNs the runs' wall-clock time, so BusyNs/WallNs is the
	// average worker concurrency the fan-out actually achieved.
	ParallelSegments uint64 `json:"parallel_segments"`
	ParallelBusyNs   uint64 `json:"parallel_busy_ns"`
	ParallelWallNs   uint64 `json:"parallel_wall_ns"`
	// ParallelConcurrency is ParallelBusyNs/ParallelWallNs — the
	// effective worker count — and SuperblockHitRatePct is
	// Hits/(Hits+Deopts) as a percentage: the share of specialized-plan
	// entries that ran to completion. Both are derived on snapshot.
	ParallelConcurrency  float64 `json:"parallel_concurrency"`
	SuperblockHitRatePct float64 `json:"superblock_hit_rate_pct"`
	// ReplayRuns and ReplaySwitches count schedule-replay simulations
	// (ReplaySchedule) and the mid-run reconfigurations they performed;
	// OnlineRuns and OnlineSwitches the same for closed-loop online runs
	// (ReplayOnline). Like every tuning counter these never feed a
	// report — replay results come from the simulated program alone.
	ReplayRuns     uint64 `json:"replay_runs"`
	ReplaySwitches uint64 `json:"replay_switches"`
	OnlineRuns     uint64 `json:"online_runs"`
	OnlineSwitches uint64 `json:"online_switches"`
}

// Counters returns the current tuning-counter snapshot.
func Counters() TuningCounters {
	c := TuningCounters{
		SuperblockCompiled: ctrSBCompiled.Load(),
		SuperblockHits:     ctrSBHits.Load(),
		SuperblockDeopts:   ctrSBDeopts.Load(),
		ParallelRuns:       ctrParRuns.Load(),
		ParallelWorkers:    int(defaultWorkers.Load()),
		ParallelSegments:   ctrParSegments.Load(),
		ParallelBusyNs:     ctrParBusyNs.Load(),
		ParallelWallNs:     ctrParWallNs.Load(),
		ReplayRuns:         ctrReplayRuns.Load(),
		ReplaySwitches:     ctrReplaySwitches.Load(),
		OnlineRuns:         ctrOnlineRuns.Load(),
		OnlineSwitches:     ctrOnlineSwitches.Load(),
	}
	if c.ParallelWallNs > 0 {
		c.ParallelConcurrency = float64(c.ParallelBusyNs) / float64(c.ParallelWallNs)
	}
	if total := c.SuperblockHits + c.SuperblockDeopts; total > 0 {
		c.SuperblockHitRatePct = 100 * float64(c.SuperblockHits) / float64(total)
	}
	return c
}

// foldSuperblockCounters folds the delta since the engine's last run into
// the process-wide counters.
func (e *Engine) foldSuperblockCounters() {
	sb := e.core.SuperblockStats()
	if sb == e.lastSB {
		return
	}
	ctrSBCompiled.Add(sb.Compiled - e.lastSB.Compiled)
	ctrSBHits.Add(sb.Hits - e.lastSB.Hits)
	ctrSBDeopts.Add(sb.Deopts - e.lastSB.Deopts)
	e.lastSB = sb
}
