package platform_test

import (
	"strings"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

const helloSource = `
        .equ    UART, 0x80000100
start:  set     UART, %l0
        set     msg, %l1
loop:   ldub    [%l1], %o0
        cmp     %o0, 0
        be      done
        nop
        st      %o0, [%l0]
        ba      loop
        add     %l1, 1, %l1
done:   clr     %o0
        mov     42, %o1
        halt
        .data
msg:    .asciz  "hello, liquid architecture\n"
`

func TestRunSourceHelloWorld(t *testing.T) {
	rep, err := platform.RunSource(helloSource, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Console != "hello, liquid architecture\n" {
		t.Errorf("console = %q", rep.Console)
	}
	if rep.ExitCode != 0 || rep.Checksum != 42 {
		t.Errorf("exit=%d checksum=%d", rep.ExitCode, rep.Checksum)
	}
	if rep.Cycles() == 0 || rep.Seconds() <= 0 {
		t.Error("missing cycle accounting")
	}
	if err := rep.Stats.ConsistencyError(); err != nil {
		t.Error(err)
	}
}

func TestRunSourceAssemblyError(t *testing.T) {
	if _, err := platform.RunSource("  bogus %g1\n", config.Default()); err == nil {
		t.Error("assembly error should propagate")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := config.Default()
	cfg.DCache.Sets = 7
	if _, err := platform.RunSource("  halt\n", cfg); err == nil {
		t.Error("invalid configuration should error")
	}
}

func TestRunWithInstructionLimit(t *testing.T) {
	src := "loop: ba loop\n  nop\n"
	_, err := platform.RunWith(mustAssemble(t, src), config.Default(), platform.Options{MaxInstructions: 500})
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("want instruction-limit error, got %v", err)
	}
}

func TestRunWithSmallRAM(t *testing.T) {
	rep, err := platform.RunWith(mustAssemble(t, "  clr %o0\n  mov 7, %o1\n  halt\n"),
		config.Default(), platform.Options{RAMBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checksum != 7 {
		t.Errorf("checksum = %d", rep.Checksum)
	}
}

func TestCacheStatsExposed(t *testing.T) {
	src := `
start:  set     buf, %l0
        ld      [%l0], %g1
        ld      [%l0+4], %g2
        clr     %o0
        halt
        .data
buf:    .word   1, 2
`
	rep, err := platform.RunSource(src, config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DCache.ReadAccesses != 2 || rep.DCache.ReadMisses != 1 {
		t.Errorf("dcache stats = %+v", rep.DCache)
	}
	if rep.ICache.ReadAccesses == 0 {
		t.Error("icache accesses missing")
	}
}

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecutionTrace(t *testing.T) {
	var buf strings.Builder
	prog := mustAssemble(t, "  mov 1, %g1\n  mov 2, %g2\n  clr %o0\n  halt\n")
	_, err := platform.RunWith(prog, config.Default(), platform.Options{
		TraceWriter: &buf,
		TraceLimit:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("trace should stop at 3 instructions, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "mov 1, %g1") {
		t.Errorf("trace line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[0], "40000000") {
		t.Errorf("trace missing address: %q", lines[0])
	}
}

func TestSampledRunReports(t *testing.T) {
	src := `
start:  set 100000, %g1
loop:   subcc %g1, 1, %g1
        bne loop
        nop
        clr %o0
        halt
`
	prog := mustAssemble(t, src)
	rep, err := platform.RunWith(prog, config.Default(), platform.Options{SampleInstructions: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sampled {
		t.Error("truncated run should report Sampled")
	}
	if rep.Stats.Instructions != 500 {
		t.Errorf("sampled instructions = %d, want 500", rep.Stats.Instructions)
	}
	// A short program finishing inside the sample is not Sampled.
	quick := mustAssemble(t, "  clr %o0\n  halt\n")
	rep2, err := platform.RunWith(quick, config.Default(), platform.Options{SampleInstructions: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Sampled {
		t.Error("completed run must not report Sampled")
	}
}
