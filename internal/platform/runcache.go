package platform

import (
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
)

// Process-wide measurement cache (DESIGN.md §10). The measurement
// harnesses — model building, the exhaustive sweeps, validation, every
// figure — repeatedly simulate the same (program, configuration) pairs.
// The simulator is deterministic, so those runs are pure: CachedRunWith
// runs each distinct key once and hands out copies of the report.
//
// The key is (program identity, timing-relevant configuration, RAM size,
// instruction limit, sample length):
//
//   - Program identity is the *asm.Program pointer. progs.Benchmark
//     memoizes Assemble per (benchmark, scale), so one pointer is one
//     (application, workload scale) — see the package progs invariant.
//   - config.TimingKey strips the parameters that cannot change simulated
//     timing (dcache fast read/write, InferMultDiv), so e.g. the base run
//     is shared with the fastread-only perturbation.
//
// Traced runs bypass the cache: their purpose is the side effect.
type runKey struct {
	prog   *asm.Program
	cfg    config.Config
	ram    int
	maxI   uint64
	sample uint64
}

type runEntry struct {
	once sync.Once
	rep  *RunReport
	err  error
}

var runCache sync.Map // runKey -> *runEntry

// CachedRun executes prog on cfg with default options through the
// process-wide measurement cache.
func CachedRun(prog *asm.Program, cfg config.Config) (*RunReport, error) {
	return CachedRunWith(prog, cfg, Options{})
}

// CachedRunWith executes prog on cfg through the process-wide measurement
// cache: the first caller of a given key simulates (concurrent callers of
// the same key wait on it — singleflight), later callers get a copy of
// the cached report with their requested Config stamped in.
func CachedRunWith(prog *asm.Program, cfg config.Config, opts Options) (*RunReport, error) {
	if opts.TraceWriter != nil {
		return RunWith(prog, cfg, opts)
	}
	opts = opts.normalized()
	key := runKey{
		prog:   prog,
		cfg:    cfg.TimingKey(),
		ram:    opts.RAMBytes,
		maxI:   opts.MaxInstructions,
		sample: opts.SampleInstructions,
	}
	v, _ := runCache.LoadOrStore(key, &runEntry{})
	ent := v.(*runEntry)
	ent.once.Do(func() {
		ent.rep, ent.err = RunWith(prog, cfg, opts)
	})
	if ent.err != nil {
		return nil, ent.err
	}
	rep := *ent.rep
	rep.Config = cfg // the caller's configuration, not the cached run's
	return &rep, nil
}
