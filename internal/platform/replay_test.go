package platform_test

import (
	"encoding/json"
	"sync"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// assembleApp returns one assembled instance of a registry benchmark.
func assembleApp(t *testing.T, app string, scale workload.Scale) *asm.Program {
	t.Helper()
	b, ok := progs.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	prog, err := b.Assemble(scale)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// sumSegments folds a replay report's per-segment deltas back together.
func sumSegments(rep *platform.ReplayReport) (profiler.Stats, cache.Stats, cache.Stats) {
	var st profiler.Stats
	var ic, dc cache.Stats
	for _, seg := range rep.Segments {
		st.Add(seg.Stats)
		ic.Add(seg.ICache)
		dc.Add(seg.DCache)
	}
	return st, ic, dc
}

// checkSegmentSums asserts the concatenation property: the whole-run
// stats equal the field-wise sum of the per-segment deltas, and the
// segments tile the interval range without gaps.
func checkSegmentSums(t *testing.T, rep *platform.ReplayReport) {
	t.Helper()
	st, ic, dc := sumSegments(rep)
	if st != rep.Stats {
		t.Errorf("segment stats sum %+v != whole-run stats %+v", st, rep.Stats)
	}
	if ic != rep.ICache || dc != rep.DCache {
		t.Errorf("segment cache sums diverge from whole-run totals")
	}
	next := 0
	for _, seg := range rep.Segments {
		if seg.Start != next || seg.End < seg.Start {
			t.Fatalf("segment %d spans [%d,%d], expected start %d", seg.Index, seg.Start, seg.End, next)
		}
		next = seg.End + 1
	}
	if next != rep.Intervals {
		t.Errorf("segments cover %d intervals, report says %d", next, rep.Intervals)
	}
}

// TestReplaySameConfigEquivalence: a replay whose every step names the
// same configuration performs no reconfiguration, so its outcome must
// be byte-identical to a plain interval-profiled run — the anchor that
// pins replay stepping to the production interval loop.
func TestReplaySameConfigEquivalence(t *testing.T) {
	prog := assembleApp(t, "arith", workload.Tiny)
	cfg := config.Default()
	opts := platform.Options{IntervalInstructions: 5_000}
	plain, err := platform.RunWith(prog, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range [][]platform.ReplayStep{
		{{Config: cfg, Intervals: -1}},
		{{Config: cfg, Intervals: 2}, {Config: cfg, Intervals: 1}, {Config: cfg, Intervals: -1}},
	} {
		rep, err := platform.ReplaySchedule(prog, steps, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Switches != 0 {
			t.Errorf("same-config replay performed %d switches", rep.Switches)
		}
		if rep.Stats != plain.Stats || rep.ICache != plain.ICache || rep.DCache != plain.DCache {
			t.Errorf("same-config replay diverged from plain run:\nreplay %+v\nplain  %+v", rep.Stats, plain.Stats)
		}
		if rep.ExitCode != plain.ExitCode || rep.Checksum != plain.Checksum || rep.Console != plain.Console {
			t.Errorf("same-config replay architectural results diverged")
		}
		if rep.Intervals != len(plain.Intervals) {
			t.Errorf("replay saw %d intervals, plain run %d", rep.Intervals, len(plain.Intervals))
		}
		if len(steps) > 1 && len(rep.Segments) != len(steps) {
			t.Errorf("expected %d segments (one per step), got %d", len(steps), len(rep.Segments))
		}
		checkSegmentSums(t, rep)
	}
}

// TestReplayCrossConfig reconfigures mid-run — register windows and
// dcache geometry both change — and checks the invariants that survive
// a reconfiguration: the architectural results and instruction count
// match any single-configuration run, and the per-segment decomposition
// tiles the totals exactly.
func TestReplayCrossConfig(t *testing.T) {
	prog := assembleApp(t, "mix", workload.Tiny)
	cfgA := config.Default()
	cfgB := config.Default()
	cfgB.IU.RegWindows = 16
	cfgB.DCache.LineWords = 8
	if err := cfgB.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := platform.Options{IntervalInstructions: 20_000}
	plain, err := platform.RunWith(prog, cfgA, opts)
	if err != nil {
		t.Fatal(err)
	}
	steps := []platform.ReplayStep{
		{Config: cfgA, Intervals: 2},
		{Config: cfgB, Intervals: 3},
		{Config: cfgA, Intervals: -1},
	}
	rep, err := platform.ReplaySchedule(prog, steps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switches != 2 {
		t.Errorf("expected 2 switches, got %d", rep.Switches)
	}
	if rep.Stats.Instructions != plain.Stats.Instructions {
		t.Errorf("replay retired %d instructions, plain run %d", rep.Stats.Instructions, plain.Stats.Instructions)
	}
	if rep.ExitCode != plain.ExitCode || rep.Checksum != plain.Checksum || rep.Console != plain.Console {
		t.Errorf("reconfigured replay changed architectural results: exit %d/%d checksum %#x/%#x",
			rep.ExitCode, plain.ExitCode, rep.Checksum, plain.Checksum)
	}
	if err := rep.Stats.ConsistencyError(); err != nil {
		t.Errorf("replay profile imbalance: %v", err)
	}
	checkSegmentSums(t, rep)
}

// TestReplayDeterminism: repeated replays — including concurrent ones,
// which the race detector supervises in the CI race job — must produce
// byte-identical ReplayReport JSON.
func TestReplayDeterminism(t *testing.T) {
	prog := assembleApp(t, "mix", workload.Tiny)
	cfgB := config.Default()
	cfgB.IU.RegWindows = 16
	steps := []platform.ReplayStep{
		{Config: config.Default(), Intervals: 3},
		{Config: cfgB, Intervals: -1},
	}
	opts := platform.Options{IntervalInstructions: 20_000}
	run := func() []byte {
		rep, err := platform.ReplaySchedule(prog, steps, opts)
		if err != nil {
			t.Error(err)
			return nil
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Error(err)
			return nil
		}
		return data
	}
	want := run()
	var wg sync.WaitGroup
	got := make([][]byte, 4)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if string(g) != string(want) {
			t.Errorf("replay %d not byte-identical to the first", i)
		}
	}
}

// TestReplayOnline drives the closed-loop entry point with a scripted
// decision function: a constant decision must match the plain run
// exactly, and a decision that changes its mind must reconfigure at
// precisely the boundary it decided at.
func TestReplayOnline(t *testing.T) {
	prog := assembleApp(t, "arith", workload.Tiny)
	cfg := config.Default()
	opts := platform.Options{IntervalInstructions: 5_000}
	plain, err := platform.RunWith(prog, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	constant := func(int, platform.Interval) config.Config { return cfg }
	rep, err := platform.ReplayOnline(prog, cfg, constant, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switches != 0 || rep.Stats != plain.Stats || rep.Checksum != plain.Checksum {
		t.Errorf("constant online run diverged from plain run")
	}

	cfgB := config.Default()
	cfgB.IU.RegWindows = 16
	var decisions []int
	flip := func(i int, iv platform.Interval) config.Config {
		if len(iv.Signature) != platform.SignatureBuckets {
			t.Errorf("interval %d signature has %d buckets", i, len(iv.Signature))
		}
		decisions = append(decisions, i)
		if i >= 1 {
			return cfgB
		}
		return cfg
	}
	rep, err = platform.ReplayOnline(prog, cfg, flip, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Switches != 1 {
		t.Errorf("expected exactly 1 online switch, got %d", rep.Switches)
	}
	if len(rep.Segments) != 2 || rep.Segments[1].Start != 2 || !rep.Segments[1].Switched {
		t.Errorf("online switch did not land at interval 2: %+v", rep.Segments)
	}
	if rep.Stats.Instructions != plain.Stats.Instructions || rep.Checksum != plain.Checksum {
		t.Errorf("online run changed architectural results")
	}
	if want := rep.Intervals - 1; len(decisions) != want {
		t.Errorf("decision function consulted %d times, want %d (every live boundary)", len(decisions), want)
	}
	checkSegmentSums(t, rep)
}

// TestReplayValidation locks the argument contract: empty schedules,
// zero-interval steps, non-final unbounded steps and a missing interval
// length are rejected.
func TestReplayValidation(t *testing.T) {
	prog := assembleApp(t, "arith", workload.Tiny)
	cfg := config.Default()
	opts := platform.Options{IntervalInstructions: 5_000}
	cases := []struct {
		name  string
		steps []platform.ReplayStep
		opts  platform.Options
	}{
		{"empty", nil, opts},
		{"zero step", []platform.ReplayStep{{Config: cfg, Intervals: 0}}, opts},
		{"non-final unbounded", []platform.ReplayStep{{Config: cfg, Intervals: -1}, {Config: cfg, Intervals: 1}}, opts},
		{"no interval length", []platform.ReplayStep{{Config: cfg, Intervals: -1}}, platform.Options{}},
	}
	for _, tc := range cases {
		if _, err := platform.ReplaySchedule(prog, tc.steps, tc.opts); err == nil {
			t.Errorf("%s: ReplaySchedule accepted invalid input", tc.name)
		}
	}
}
