// Package platform is the reproduction of the Liquid Architecture
// platform: it instantiates the LEON2-like processor with a chosen
// microarchitecture configuration, loads an application, executes it
// directly (no OS), and returns the cycle-accurate profile that the paper's
// hardware statistics module would report.
package platform

import (
	"fmt"
	"io"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
)

// DefaultMaxInstructions bounds a single run; the scaled-down workloads
// stay far below it.
const DefaultMaxInstructions = 2_000_000_000

// Options configures a run.
type Options struct {
	// RAMBytes sizes main memory (default 8 MiB).
	RAMBytes int
	// MaxInstructions aborts runaway programs (default 2e9).
	MaxInstructions uint64
	// SampleInstructions, when nonzero, stops the run cleanly after that
	// many instructions instead of waiting for the halt trap — the
	// paper's future-work "runtime sampling" for long applications. The
	// report's Sampled flag records a truncated run; exit code and
	// checksum are only meaningful for completed runs.
	SampleInstructions uint64
	// TraceWriter, when non-nil, receives a disassembled execution trace
	// of the first TraceLimit instructions.
	TraceWriter io.Writer
	// TraceLimit bounds the trace length (default 0 = no trace).
	TraceLimit uint64
}

// RunReport is the outcome of executing an application on a configuration.
type RunReport struct {
	// Config is the microarchitecture the application ran on.
	Config config.Config
	// Stats is the cycle-accurate profile.
	Stats profiler.Stats
	// ICache and DCache are the cache event counters.
	ICache, DCache cache.Stats
	// ExitCode is %o0 at the halt trap (0 = success by convention).
	ExitCode uint32
	// Checksum is %o1 at the halt trap; benchmark programs leave their
	// result digest there for golden-model validation.
	Checksum uint32
	// Console is everything the program wrote to the UART.
	Console string
	// Sampled is true when the run was truncated by
	// Options.SampleInstructions before the program halted.
	Sampled bool
}

// Cycles returns the total cycle count.
func (r *RunReport) Cycles() uint64 { return r.Stats.Cycles }

// Seconds converts cycles to seconds at the platform's 25 MHz clock.
func (r *RunReport) Seconds() float64 { return r.Stats.Seconds(0) }

// Run executes an assembled program on the given configuration with
// default options.
func Run(prog *asm.Program, cfg config.Config) (*RunReport, error) {
	return RunWith(prog, cfg, Options{})
}

// RunWith executes an assembled program with explicit options.
func RunWith(prog *asm.Program, cfg config.Config, opts Options) (*RunReport, error) {
	if opts.RAMBytes == 0 {
		opts.RAMBytes = mem.DefaultRAMBytes
	}
	if opts.MaxInstructions == 0 {
		opts.MaxInstructions = DefaultMaxInstructions
	}
	m := mem.New(opts.RAMBytes)
	if err := prog.Load(m); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	core, err := cpu.New(cfg, m)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := core.LoadText(prog.TextBase, prog.TextWords()); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	core.Reset(prog.Entry)
	if opts.TraceWriter != nil {
		core.SetTrace(opts.TraceWriter, opts.TraceLimit)
	}
	sampled := false
	if opts.SampleInstructions > 0 {
		halted, err := core.RunFor(opts.SampleInstructions)
		if err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		sampled = !halted
	} else if err := core.Run(opts.MaxInstructions); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return &RunReport{
		Config:   cfg,
		Stats:    core.Stats(),
		ICache:   core.ICacheStats(),
		DCache:   core.DCacheStats(),
		ExitCode: core.ExitCode(),
		Checksum: core.Reg(9), // %o1
		Console:  m.Console(),
		Sampled:  sampled,
	}, nil
}

// RunSource assembles and executes source text in one step.
func RunSource(src string, cfg config.Config) (*RunReport, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return Run(prog, cfg)
}
