// Package platform is the reproduction of the Liquid Architecture
// platform: it instantiates the LEON2-like processor with a chosen
// microarchitecture configuration, loads an application, executes it
// directly (no OS), and returns the cycle-accurate profile that the paper's
// hardware statistics module would report.
//
// Runs are zero-alloc-steady: an Engine owns a core and a RAM whose
// post-load contents are snapshotted once, and every Run restores the
// snapshot and resets the core instead of allocating a fresh 8 MiB image
// and re-loading the program. Run/RunWith draw engines from a process-wide
// pool keyed by (program, configuration, options), so hot measurement
// loops reuse the same core and memory end to end (DESIGN.md §9).
package platform

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
)

// DefaultMaxInstructions bounds a single run; the scaled-down workloads
// stay far below it.
const DefaultMaxInstructions = 2_000_000_000

// Options configures a run.
type Options struct {
	// RAMBytes sizes main memory (default 8 MiB).
	RAMBytes int
	// MaxInstructions aborts runaway programs (default 2e9).
	MaxInstructions uint64
	// SampleInstructions, when nonzero, stops the run cleanly after that
	// many instructions instead of waiting for the halt trap — the
	// paper's future-work "runtime sampling" for long applications. The
	// report's Sampled flag records a truncated run; exit code and
	// checksum are only meaningful for completed runs.
	SampleInstructions uint64
	// IntervalInstructions, when nonzero, turns on interval profiling:
	// the run is split at exact instruction-count boundaries of this
	// length and the report carries one Interval snapshot (stat deltas
	// plus a block-signature vector) per stretch. Because boundaries are
	// instruction counts and the instruction stream is
	// configuration-independent, intervals of the same program align
	// one-to-one across configurations — the property per-phase tuning
	// rests on. Combines with SampleInstructions (profiling stops at the
	// sample limit).
	IntervalInstructions uint64
	// TraceWriter, when non-nil, receives a disassembled execution trace
	// of the first TraceLimit instructions.
	TraceWriter io.Writer
	// TraceLimit bounds the trace length (default 0 = no trace).
	TraceLimit uint64
	// SuperblockThreshold tunes superblock specialization in the core
	// (DESIGN.md §17): 0 inherits the process default (on, at
	// cpu.DefaultSuperblockThreshold, unless SetDefaultTuning changed it),
	// a negative value disables specialization for this run, and a
	// positive value compiles hot blocks at that taken-branch heat. The
	// knob changes wall-clock speed only — every reported number is
	// byte-identical either way — so package measure excludes it from
	// result cache keys.
	SuperblockThreshold int
	// IntraRunWorkers bounds the goroutines an interval-profiled run may
	// fan checkpointed interval segments across when the same run repeats
	// (DESIGN.md §17): 0 inherits the process default, 1 or a negative
	// value forces serial execution. Like SuperblockThreshold it cannot
	// change any reported result, only wall-clock speed, and is excluded
	// from measurement cache keys.
	IntraRunWorkers int
}

// Normalized fills in the option defaults. Callers that derive cache keys
// from Options (package measure) normalize first so explicit defaults and
// zero values collide on the same key.
func (o Options) Normalized() Options {
	if o.RAMBytes == 0 {
		o.RAMBytes = mem.DefaultRAMBytes
	}
	if o.MaxInstructions == 0 {
		o.MaxInstructions = DefaultMaxInstructions
	}
	// Resolve the tuning sentinels to concrete values (0 = process
	// default, negative = off/serial) so pool keys built from normalized
	// options attribute engines to the execution mode they actually run.
	switch {
	case o.SuperblockThreshold == 0:
		o.SuperblockThreshold = int(defaultSBThreshold.Load())
	case o.SuperblockThreshold < 0:
		o.SuperblockThreshold = 0
	}
	switch {
	case o.IntraRunWorkers == 0:
		o.IntraRunWorkers = int(defaultWorkers.Load())
	case o.IntraRunWorkers < 1:
		o.IntraRunWorkers = 1
	}
	return o
}

// SignatureBuckets is the length of an interval's block-signature
// vector: taken-CTI targets are folded into this many buckets. 64 is
// coarse enough to stay cheap and fine enough to separate the loop
// nests of the benchmark programs (whose text segments are a few KB).
const SignatureBuckets = 64

// signatureShift groups CTI targets into 16-byte (4-instruction) blocks
// before bucketing, so adjacent branch targets inside one small loop
// share a bucket instead of striping across the vector.
const signatureShift = 4

// Interval is one interval-profiling snapshot: the profile delta of an
// exact IntervalInstructions-long stretch of the run (the final interval
// may be shorter), plus the block-signature vector accumulated over it.
type Interval struct {
	// Index is the interval's position in the run, from 0.
	Index int `json:"index"`
	// Instructions is the stretch length (== the configured interval
	// length except for the final interval).
	Instructions uint64 `json:"instructions"`
	// Stats is the profile delta over the stretch; Stats.Cycles is the
	// stretch's cycle cost.
	Stats profiler.Stats `json:"stats"`
	// ICache and DCache are the cache event deltas over the stretch.
	ICache cache.Stats `json:"icache"`
	DCache cache.Stats `json:"dcache"`
	// Signature counts taken control transfers per target bucket — a
	// coarse basic-block vector characterizing where execution spent the
	// stretch.
	Signature []uint32 `json:"signature"`
}

// RunReport is the outcome of executing an application on a configuration.
type RunReport struct {
	// Config is the microarchitecture the application ran on.
	Config config.Config
	// Stats is the cycle-accurate profile.
	Stats profiler.Stats
	// ICache and DCache are the cache event counters.
	ICache, DCache cache.Stats
	// ExitCode is %o0 at the halt trap (0 = success by convention).
	ExitCode uint32
	// Checksum is %o1 at the halt trap; benchmark programs leave their
	// result digest there for golden-model validation.
	Checksum uint32
	// Console is everything the program wrote to the UART.
	Console string
	// Sampled is true when the run was truncated by
	// Options.SampleInstructions before the program halted.
	Sampled bool
	// Intervals carries the interval-profiling snapshots when
	// Options.IntervalInstructions was set; nil otherwise. The whole-run
	// Stats/ICache/DCache equal the field-wise sum of the intervals.
	Intervals []Interval `json:"intervals,omitempty"`
}

// Cycles returns the total cycle count.
func (r *RunReport) Cycles() uint64 { return r.Stats.Cycles }

// Seconds converts cycles to seconds at the platform's 25 MHz clock.
func (r *RunReport) Seconds() float64 { return r.Stats.Seconds(0) }

// Engine binds one assembled program to one configured core and memory
// for repeated runs. The memory is loaded once and snapshotted; each Run
// restores the snapshot (a straight memcpy of the pristine image) and
// resets the core, so steady-state runs allocate nothing but the report.
type Engine struct {
	prog *asm.Program
	cfg  config.Config
	opts Options
	m    *mem.Memory
	core *cpu.Core
	used bool
	// lastSB is the core's superblock-counter watermark at the end of the
	// previous run; Run folds the delta into the process-wide counters.
	lastSB cpu.SuperblockStats
	// cks holds the interval checkpoints captured by this engine's first
	// interval-profiled run (parallel.go); ckDone marks the set complete,
	// arming the parallel path for identical re-runs. nIntervals is that
	// run's interval count (the segment-balancing denominator) and clones
	// are the cached per-worker core+memory pairs.
	cks        []checkpoint
	ckDone     bool
	nIntervals int
	clones     []*segEngine
}

// NewEngine builds an engine for repeated runs of prog on cfg.
func NewEngine(prog *asm.Program, cfg config.Config, opts Options) (*Engine, error) {
	opts = opts.Normalized()
	m := mem.New(opts.RAMBytes)
	return newEngineOn(m, prog, cfg, opts, true)
}

// newEngineOn wires a core around an existing memory. load says whether
// the program image still has to be written (false for a pooled memory,
// which is already loaded and snapshotted).
func newEngineOn(m *mem.Memory, prog *asm.Program, cfg config.Config, opts Options, load bool) (*Engine, error) {
	if load {
		if err := prog.Load(m); err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		m.Snapshot()
	}
	core, err := cpu.New(cfg, m)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := core.LoadText(prog.TextBase, prog.TextWords()); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	core.EnableSuperblocks(opts.SuperblockThreshold)
	return &Engine{prog: prog, cfg: cfg, opts: opts, m: m, core: core}, nil
}

// Run executes the program once and returns its report.
func (e *Engine) Run() (*RunReport, error) {
	if e.used {
		e.m.RestoreSnapshot()
	}
	e.used = true
	core := e.core
	core.Reset(e.prog.Entry)
	if e.opts.TraceWriter != nil {
		core.SetTrace(e.opts.TraceWriter, e.opts.TraceLimit)
	}
	var (
		sampled   bool
		intervals []Interval
	)
	switch {
	case e.opts.IntervalInstructions > 0:
		var err error
		if e.canRunParallel() {
			intervals, sampled, err = e.runIntervalsParallel()
		} else {
			intervals, sampled, err = e.runIntervals()
		}
		if err != nil {
			return nil, err
		}
	case e.opts.SampleInstructions > 0:
		halted, err := core.RunFor(e.opts.SampleInstructions)
		if err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		sampled = !halted
	default:
		if err := core.Run(e.opts.MaxInstructions); err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
	}
	e.foldSuperblockCounters()
	return &RunReport{
		Config:    e.cfg,
		Stats:     core.Stats(),
		ICache:    core.ICacheStats(),
		DCache:    core.DCacheStats(),
		ExitCode:  core.ExitCode(),
		Checksum:  core.Reg(9), // %o1
		Console:   e.m.Console(),
		Sampled:   sampled,
		Intervals: intervals,
	}, nil
}

// runIntervals drives the run in IntervalInstructions-sized steps,
// snapshotting the profile delta and the block-signature vector at every
// boundary. Boundaries are exact instruction counts (core.RunFor stops
// precisely at its target), so the same program produces the same
// interval partition on every configuration. The loop adds no work to
// the simulator's inner loop beyond the per-taken-CTI signature
// increment — each step is a plain fast-path run to a nearer target.
func (e *Engine) runIntervals() (intervals []Interval, sampled bool, err error) {
	core := e.core
	core.EnableBlockVector(SignatureBuckets, signatureShift)
	every := e.opts.IntervalInstructions
	sample := e.opts.SampleInstructions
	// When this engine is tuned for intra-run parallelism, the first
	// serial run checkpoints the engine state at interval boundaries so
	// identical re-runs can fan segments across workers (parallel.go).
	capture := e.startCapture()
	var prev profiler.Stats
	var prevIC, prevDC cache.Stats
	for {
		done := prev.Instructions
		// Clamp each step to every remaining bound: the sample limit and
		// the runaway guard. Without the MaxInstructions clamp a huge (or
		// overflowing) interval length would run unboundedly — the
		// non-interval path aborts at the limit, so must this one.
		step := every
		if sample > 0 && step > sample-done {
			step = sample - done
		}
		if step > e.opts.MaxInstructions-done {
			step = e.opts.MaxInstructions - done
		}
		halted, err := core.RunFor(step)
		if err != nil {
			e.discardCapture(capture)
			return nil, false, fmt.Errorf("platform: %w", err)
		}
		st, ic, dc := core.Stats(), core.ICacheStats(), core.DCacheStats()
		if st.Instructions > prev.Instructions {
			intervals = append(intervals, Interval{
				Index:        len(intervals),
				Instructions: st.Instructions - prev.Instructions,
				Stats:        st.Sub(prev),
				ICache:       ic.Sub(prevIC),
				DCache:       dc.Sub(prevDC),
				Signature:    core.TakeBlockVector(),
			})
		}
		prev, prevIC, prevDC = st, ic, dc
		if halted {
			e.finishCapture(capture, len(intervals))
			return intervals, false, nil
		}
		if sample > 0 && st.Instructions >= sample {
			e.finishCapture(capture, len(intervals))
			return intervals, true, nil
		}
		if st.Instructions >= e.opts.MaxInstructions {
			e.discardCapture(capture)
			return nil, false, fmt.Errorf("platform: instruction limit %d reached at pc %#08x",
				e.opts.MaxInstructions, core.PC())
		}
		if capture != nil {
			capture.note(e, len(intervals))
		}
	}
}

// Engine/memory pools. Engines are reused for repeated identical
// (program, configuration, options) runs — the zero-alloc steady state of
// measurement loops. Loaded-and-snapshotted memories are reused across
// configurations of the same program, because the 8 MiB image is
// configuration-independent; rebuilding a core around a pooled memory
// costs only the (small) cache tag stores and the text predecode.
type engineKey struct {
	prog     *asm.Program
	cfg      config.Config
	ram      int
	maxI     uint64
	sample   uint64
	interval uint64
	// sb and workers are the resolved tuning knobs. They cannot change
	// results, but a pooled engine carries compiled superblocks and
	// interval checkpoints, so mixing modes under one key would misattribute
	// the wall-clock cost each mode is being measured against.
	sb      int
	workers int
}

type memKey struct {
	prog *asm.Program
	ram  int
}

// DefaultEnginePoolSize and DefaultMemoryPoolSize are the pool bounds a
// fresh process starts with; SetPoolLimits retunes them for a specific
// deployment (e.g. the autoarchd daemon sizing pools to its worker count).
const DefaultEnginePoolSize = 8

func DefaultMemoryPoolSize() int { return max(8, runtime.NumCPU()) }

var pool = struct {
	sync.Mutex
	engines    map[engineKey][]*Engine
	nEng       int
	mems       map[memKey][]*mem.Memory
	nMem       int
	maxEngines int
	maxMems    int
}{
	engines:    make(map[engineKey][]*Engine),
	mems:       make(map[memKey][]*mem.Memory),
	maxEngines: DefaultEnginePoolSize,
	maxMems:    DefaultMemoryPoolSize(),
}

// SetPoolLimits bounds the engine and loaded-memory pools. Nonpositive
// values keep the corresponding current limit. Shrinking releases the
// excess pooled objects immediately.
func SetPoolLimits(engines, memories int) {
	pool.Lock()
	defer pool.Unlock()
	if engines > 0 {
		pool.maxEngines = engines
	}
	if memories > 0 {
		pool.maxMems = memories
	}
	trimPoolLocked()
}

// trimPoolLocked drops pooled objects until both pools are within their
// limits.
func trimPoolLocked() {
	for k, es := range pool.engines {
		for pool.nEng > pool.maxEngines && len(es) > 0 {
			es = es[:len(es)-1]
			pool.nEng--
		}
		if len(es) == 0 {
			delete(pool.engines, k)
		} else {
			pool.engines[k] = es
		}
	}
	for k, ms := range pool.mems {
		for pool.nMem > pool.maxMems && len(ms) > 0 {
			ms = ms[:len(ms)-1]
			pool.nMem--
		}
		if len(ms) == 0 {
			delete(pool.mems, k)
		} else {
			pool.mems[k] = ms
		}
	}
}

// PoolStats is a point-in-time snapshot of the engine/memory pools, for
// the daemon's metrics endpoint.
type PoolStats struct {
	// Engines and Memories are the pooled object counts; the limits are
	// the caps SetPoolLimits configured.
	Engines     int `json:"engines"`
	EngineLimit int `json:"engine_limit"`
	Memories    int `json:"memories"`
	MemoryLimit int `json:"memory_limit"`
}

// PoolSnapshot returns the current pool occupancy and limits.
func PoolSnapshot() PoolStats {
	pool.Lock()
	defer pool.Unlock()
	return PoolStats{
		Engines:     pool.nEng,
		EngineLimit: pool.maxEngines,
		Memories:    pool.nMem,
		MemoryLimit: pool.maxMems,
	}
}

func acquireEngine(prog *asm.Program, cfg config.Config, opts Options) (*Engine, error) {
	ek := engineKey{prog: prog, cfg: cfg, ram: opts.RAMBytes, maxI: opts.MaxInstructions,
		sample: opts.SampleInstructions, interval: opts.IntervalInstructions,
		sb: opts.SuperblockThreshold, workers: opts.IntraRunWorkers}
	mk := memKey{prog: prog, ram: opts.RAMBytes}
	pool.Lock()
	if es := pool.engines[ek]; len(es) > 0 {
		e := es[len(es)-1]
		pool.engines[ek] = es[:len(es)-1]
		pool.nEng--
		pool.Unlock()
		return e, nil
	}
	var m *mem.Memory
	if ms := pool.mems[mk]; len(ms) > 0 {
		m = ms[len(ms)-1]
		pool.mems[mk] = ms[:len(ms)-1]
		pool.nMem--
	}
	pool.Unlock()
	if m != nil {
		m.RestoreSnapshot()
		return newEngineOn(m, prog, cfg, opts, false)
	}
	return NewEngine(prog, cfg, opts)
}

func releaseEngine(e *Engine) {
	ek := engineKey{prog: e.prog, cfg: e.cfg, ram: e.opts.RAMBytes, maxI: e.opts.MaxInstructions,
		sample: e.opts.SampleInstructions, interval: e.opts.IntervalInstructions,
		sb: e.opts.SuperblockThreshold, workers: e.opts.IntraRunWorkers}
	pool.Lock()
	defer pool.Unlock()
	if pool.nEng < pool.maxEngines {
		pool.engines[ek] = append(pool.engines[ek], e)
		pool.nEng++
		return
	}
	// Engine pool full: keep the expensive part (the loaded 8 MiB memory
	// plus its snapshot) if there is room, drop the rest.
	if pool.nMem < pool.maxMems {
		mk := memKey{prog: e.prog, ram: e.opts.RAMBytes}
		pool.mems[mk] = append(pool.mems[mk], e.m)
		pool.nMem++
	}
}

// Run executes an assembled program on the given configuration with
// default options.
func Run(prog *asm.Program, cfg config.Config) (*RunReport, error) {
	return RunWith(prog, cfg, Options{})
}

// RunWith executes an assembled program with explicit options. Trace-free
// runs draw their engine from the process-wide pool.
func RunWith(prog *asm.Program, cfg config.Config, opts Options) (*RunReport, error) {
	opts = opts.Normalized()
	if opts.TraceWriter != nil {
		e, err := NewEngine(prog, cfg, opts)
		if err != nil {
			return nil, err
		}
		return e.Run()
	}
	e, err := acquireEngine(prog, cfg, opts)
	if err != nil {
		return nil, err
	}
	rep, err := e.Run()
	releaseEngine(e)
	return rep, err
}

// RunSource assembles and executes source text in one step.
func RunSource(src string, cfg config.Config) (*RunReport, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return Run(prog, cfg)
}
