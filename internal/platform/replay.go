// Schedule replay and online adaptation: one simulation whose platform
// configuration is reshaped at interval boundaries (DESIGN.md §19).
// ReplaySchedule executes a precomputed configuration schedule — the
// per-phase plan a tuning run laid over the trace — and ReplayOnline
// closes the loop: a caller-supplied decision function watches each
// completed interval's block-signature vector and picks the next
// configuration live, with no schedule at all.
//
// A reconfiguration hands the running program to a freshly built core
// on the same memory via cpu.AdoptArchState: architectural state
// carries over exactly, caches and the write buffer come up cold (a
// reconfigured cache on real fabric holds no valid lines either), and
// no cycles are charged for the switch itself — the reconfiguration
// penalty is an explicit model (the schedule's SwitchPenaltyCycles),
// accounted by the caller, not buried in the simulation. A boundary
// whose configuration does not change is a pure bookkeeping cut: the
// same core keeps running, so a replay whose every step names the same
// configuration is byte-identical to a plain interval-profiled run.
package platform

import (
	"fmt"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/cpu"
	"liquidarch/internal/mem"
	"liquidarch/internal/profiler"
)

// ReplayStep is one stretch of a replay schedule: run Intervals
// profiling intervals under Config. The final step may set Intervals to
// a negative value, meaning "to completion" (or to the sample limit).
type ReplayStep struct {
	// Config is the configuration the stretch runs under.
	Config config.Config
	// Intervals is the stretch length in profiling intervals; negative
	// (final step only) runs to completion.
	Intervals int
}

// ReplaySegment aggregates one schedule step's actual cost: the
// profile delta, cache events and interval span it covered. Cache
// counters restart from zero at each reconfiguration (the new core's
// caches come up cold); within an unswitched boundary they continue.
type ReplaySegment struct {
	// Index is the segment's position, from 0.
	Index int `json:"index"`
	// Start and End are the first and last interval indices covered,
	// inclusive.
	Start int `json:"start"`
	End   int `json:"end"`
	// Config is the configuration the segment ran under.
	Config config.Config `json:"config"`
	// Instructions is the segment length; Stats the profile delta
	// (Stats.Cycles is the segment's actual cycle cost).
	Instructions uint64         `json:"instructions"`
	Stats        profiler.Stats `json:"stats"`
	// ICache and DCache are the cache event deltas over the segment.
	ICache cache.Stats `json:"icache"`
	DCache cache.Stats `json:"dcache"`
	// Switched is true when entering this segment reconfigured the
	// platform (its configuration differs from the previous segment's).
	Switched bool `json:"switched,omitempty"`
}

// ReplayReport is the outcome of a reconfiguring run.
type ReplayReport struct {
	// Segments are the per-stretch actual costs, in execution order.
	Segments []ReplaySegment `json:"segments"`
	// Switches counts the mid-run reconfigurations performed (segments
	// entered with a configuration change).
	Switches int `json:"switches"`
	// Stats is the whole-run cumulative profile — the architectural
	// instruction stream is configuration-independent, so
	// Stats.Instructions matches any single-configuration run of the
	// program; Stats.Cycles is the replay's actual simulated cost,
	// excluding the modeled reconfiguration penalty (the caller's
	// switch-cost model adds it).
	Stats profiler.Stats `json:"stats"`
	// ICache and DCache sum the per-segment cache deltas.
	ICache cache.Stats `json:"icache"`
	DCache cache.Stats `json:"dcache"`
	// ExitCode and Checksum are %o0 and %o1 at the halt trap,
	// meaningful for completed runs only.
	ExitCode uint32 `json:"exit_code"`
	Checksum uint32 `json:"checksum"`
	// Console is everything the program wrote to the UART.
	Console string `json:"console,omitempty"`
	// Sampled is true when the run was truncated by
	// Options.SampleInstructions before the program halted.
	Sampled bool `json:"sampled,omitempty"`
	// IntervalInstructions is the profiling interval length the replay
	// ran at; Intervals the total interval count.
	IntervalInstructions uint64 `json:"interval_instructions"`
	Intervals            int    `json:"intervals"`
}

// nextFn is consulted at every live interval boundary with the
// just-completed interval; it returns the configuration for the next
// stretch and whether a new report segment starts at this boundary even
// if the configuration is unchanged (schedule steps cut segments so
// their actual costs stay separable; online mode cuts only on change).
type nextFn func(i int, iv Interval) (config.Config, bool)

// ReplaySchedule executes prog once, reshaping the configuration at the
// schedule's step boundaries. Every step but the last must cover a
// positive number of intervals; a negative count on the last step runs
// to completion. Options follow RunWith semantics; IntervalInstructions
// must be set (it defines the boundary grid — a tuning trace's replay
// passes the length the trace was detected at).
func ReplaySchedule(prog *asm.Program, steps []ReplayStep, opts Options) (*ReplayReport, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("platform: replay schedule is empty")
	}
	for i, s := range steps {
		if s.Intervals == 0 || (s.Intervals < 0 && i != len(steps)-1) {
			return nil, fmt.Errorf("platform: replay step %d covers %d intervals", i, s.Intervals)
		}
	}
	cur := 0
	end := steps[0].Intervals // first interval index beyond the current step; <0 = unbounded
	next := func(i int, _ Interval) (config.Config, bool) {
		if end >= 0 && i+1 >= end && cur+1 < len(steps) {
			cur++
			if steps[cur].Intervals < 0 {
				end = -1
			} else {
				end += steps[cur].Intervals
			}
			return steps[cur].Config, true
		}
		return steps[cur].Config, false
	}
	rep, err := replayRun(prog, steps[0].Config, next, opts)
	if err != nil {
		return nil, err
	}
	ctrReplayRuns.Add(1)
	ctrReplaySwitches.Add(uint64(rep.Switches))
	return rep, nil
}

// ReplayOnline executes prog once in closed-loop mode: after each
// completed interval, decide receives the interval (index, profile
// delta and block-signature vector) and returns the configuration for
// the next stretch — typically by classifying the signature against a
// phase trace's representatives (phase.Classifier). The run starts on
// first; a decision equal to the current configuration keeps the core
// running untouched.
func ReplayOnline(prog *asm.Program, first config.Config, decide func(i int, iv Interval) config.Config, opts Options) (*ReplayReport, error) {
	next := func(i int, iv Interval) (config.Config, bool) {
		return decide(i, iv), false
	}
	rep, err := replayRun(prog, first, next, opts)
	if err != nil {
		return nil, err
	}
	ctrOnlineRuns.Add(1)
	ctrOnlineSwitches.Add(uint64(rep.Switches))
	return rep, nil
}

// newReplayCore builds a core for cfg over the already-loaded memory,
// with signature collection on — the replay counterpart of newEngineOn.
func newReplayCore(prog *asm.Program, cfg config.Config, opts Options, m *mem.Memory) (*cpu.Core, error) {
	core, err := cpu.New(cfg, m)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := core.LoadText(prog.TextBase, prog.TextWords()); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	core.EnableSuperblocks(opts.SuperblockThreshold)
	core.EnableBlockVector(SignatureBuckets, signatureShift)
	return core, nil
}

// foldCoreSuperblocks folds a replay core's whole superblock activity
// into the process-wide counters (replay cores are fresh, so the delta
// is the total).
func foldCoreSuperblocks(core *cpu.Core) {
	sb := core.SuperblockStats()
	ctrSBCompiled.Add(sb.Compiled)
	ctrSBHits.Add(sb.Hits)
	ctrSBDeopts.Add(sb.Deopts)
}

// replayRun is the shared reconfiguring-run loop. It mirrors
// Engine.runIntervals' stepping exactly — the same boundary grid, the
// same sample and runaway clamps — and consults next at every live
// boundary. Replay runs build a fresh memory per call (no pooling: a
// mid-run reconfiguration leaves the core mid-program, which a pooled
// engine's reset contract does not cover).
func replayRun(prog *asm.Program, first config.Config, next nextFn, opts Options) (*ReplayReport, error) {
	opts = opts.Normalized()
	if opts.IntervalInstructions == 0 {
		return nil, fmt.Errorf("platform: replay requires IntervalInstructions")
	}
	m := mem.New(opts.RAMBytes)
	if err := prog.Load(m); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	core, err := newReplayCore(prog, first, opts, m)
	if err != nil {
		return nil, err
	}
	core.Reset(prog.Entry)

	rep := &ReplayReport{IntervalInstructions: opts.IntervalInstructions}
	every := opts.IntervalInstructions
	sample := opts.SampleInstructions
	curCfg := first
	seg := ReplaySegment{Config: first}
	segEmpty := true
	var prev profiler.Stats        // absolute profile at the last boundary
	var prevIC, prevDC cache.Stats // current core's counters at the last boundary

	closeSegment := func() {
		if segEmpty {
			return
		}
		rep.ICache.Add(seg.ICache)
		rep.DCache.Add(seg.DCache)
		rep.Segments = append(rep.Segments, seg)
	}
	finish := func(sampled bool) *ReplayReport {
		closeSegment()
		foldCoreSuperblocks(core)
		rep.Stats = core.Stats()
		rep.ExitCode = core.ExitCode()
		rep.Checksum = core.Reg(9) // %o1
		rep.Console = m.Console()
		rep.Sampled = sampled
		return rep
	}

	for {
		done := prev.Instructions
		step := every
		if sample > 0 && step > sample-done {
			step = sample - done
		}
		if step > opts.MaxInstructions-done {
			step = opts.MaxInstructions - done
		}
		halted, err := core.RunFor(step)
		if err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		st, ic, dc := core.Stats(), core.ICacheStats(), core.DCacheStats()
		var iv Interval
		live := st.Instructions > prev.Instructions
		if live {
			iv = Interval{
				Index:        rep.Intervals,
				Instructions: st.Instructions - prev.Instructions,
				Stats:        st.Sub(prev),
				ICache:       ic.Sub(prevIC),
				DCache:       dc.Sub(prevDC),
				Signature:    core.TakeBlockVector(),
			}
			rep.Intervals++
			if segEmpty {
				seg.Start = iv.Index
				segEmpty = false
			}
			seg.End = iv.Index
			seg.Instructions += iv.Instructions
			seg.Stats.Add(iv.Stats)
			seg.ICache.Add(iv.ICache)
			seg.DCache.Add(iv.DCache)
			prev, prevIC, prevDC = st, ic, dc
		}
		if halted {
			return finish(false), nil
		}
		if sample > 0 && st.Instructions >= sample {
			return finish(true), nil
		}
		if st.Instructions >= opts.MaxInstructions {
			return nil, fmt.Errorf("platform: instruction limit %d reached at pc %#08x",
				opts.MaxInstructions, core.PC())
		}
		if !live {
			continue
		}
		cfg, cut := next(iv.Index, iv)
		if cfg != curCfg {
			closeSegment()
			foldCoreSuperblocks(core)
			nc, err := newReplayCore(prog, cfg, opts, m)
			if err != nil {
				return nil, err
			}
			if err := nc.AdoptArchState(core); err != nil {
				return nil, fmt.Errorf("platform: %w", err)
			}
			core = nc
			curCfg = cfg
			prevIC, prevDC = cache.Stats{}, cache.Stats{}
			seg = ReplaySegment{Index: len(rep.Segments), Config: cfg, Switched: true}
			segEmpty = true
			rep.Switches++
		} else if cut {
			closeSegment()
			seg = ReplaySegment{Index: len(rep.Segments), Config: cfg}
			segEmpty = true
		}
	}
}
