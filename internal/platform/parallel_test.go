package platform_test

import (
	"reflect"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// parallelProg assembles one program instance: the engine pool keys on
// program identity, so both runs of a pair must share the same *Program
// for the second to inherit the first's checkpoints.
func parallelProg(t *testing.T, app string) *asm.Program {
	t.Helper()
	// The default engine pool (8) may already be full of other tests'
	// engines; checkpoints live on the pooled engine, so give it room or
	// every capture run's engine gets evicted on release.
	platform.SetPoolLimits(32, 0)
	b, ok := progs.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	prog, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runPair executes the same options twice against one pooled engine: the
// first run is the serial capture pass, the second takes the parallel
// path when checkpoints exist. It returns both reports and whether the
// second run actually executed in parallel (per the process counters).
func runPair(t *testing.T, prog *asm.Program, opts platform.Options) (first, second *platform.RunReport, parallel bool) {
	t.Helper()
	first, err := platform.RunWith(prog, config.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	before := platform.Counters().ParallelRuns
	second, err = platform.RunWith(prog, config.Default(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return first, second, platform.Counters().ParallelRuns > before
}

// TestParallelIntervalEquivalence: an interval-profiled run replayed as
// checkpointed parallel segments must produce a report byte-identical to
// the serial run — same stats, cycles, intervals, console, checksum.
// The serial reference uses IntraRunWorkers=1 (a distinct engine, no
// capture); the worker pair shares one engine so its second run takes
// the parallel path.
func TestParallelIntervalEquivalence(t *testing.T) {
	for _, app := range []string{"blastn", "arith"} {
		app := app
		t.Run(app, func(t *testing.T) {
			prog := parallelProg(t, app)
			serialOpts := platform.Options{IntervalInstructions: 5_000, IntraRunWorkers: 1}
			parOpts := platform.Options{IntervalInstructions: 5_000, IntraRunWorkers: 4}
			serial, err := platform.RunWith(prog, config.Default(), serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			// The pooled engine can be evicted between the capture run and
			// the replay under pool pressure; retry the pair until the
			// parallel path actually executes. Equivalence must hold on
			// every attempt regardless of which path ran.
			var parallel bool
			for attempt := 0; attempt < 5 && !parallel; attempt++ {
				var first, second *platform.RunReport
				first, second, parallel = runPair(t, prog, parOpts)
				if !reflect.DeepEqual(serial, first) {
					t.Fatalf("capture run diverged from serial reference:\nserial %+v\ncapture %+v", serial, first)
				}
				if !reflect.DeepEqual(serial, second) {
					t.Fatalf("replay (parallel=%v) diverged from serial reference:\nserial %+v\nreplay %+v", parallel, serial, second)
				}
			}
			if !parallel {
				t.Fatal("parallel path never executed; engine pool kept evicting checkpoints")
			}
		})
	}
}

// TestParallelIntervalSampledEquivalence covers the truncated-run shape:
// a sample limit ends the run mid-program, so the last parallel segment
// must stop at exactly the same boundary the serial run does.
func TestParallelIntervalSampledEquivalence(t *testing.T) {
	prog := parallelProg(t, "blastn")
	serialOpts := platform.Options{
		IntervalInstructions: 2_000, SampleInstructions: 20_000, IntraRunWorkers: 1}
	parOpts := platform.Options{
		IntervalInstructions: 2_000, SampleInstructions: 20_000, IntraRunWorkers: 3}
	serial, err := platform.RunWith(prog, config.Default(), serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Sampled {
		t.Fatal("sample limit did not truncate the run; pick a smaller limit")
	}
	var parallel bool
	for attempt := 0; attempt < 5 && !parallel; attempt++ {
		var second *platform.RunReport
		_, second, parallel = runPair(t, prog, parOpts)
		if !reflect.DeepEqual(serial, second) {
			t.Fatalf("sampled replay (parallel=%v) diverged:\nserial %+v\nreplay %+v", parallel, serial, second)
		}
	}
	if !parallel {
		t.Fatal("parallel path never executed for the sampled shape")
	}
}
