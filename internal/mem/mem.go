// Package mem models the memory system behind the caches of the
// LEON2-like platform of the paper's Section 2: a flat big-endian RAM on
// an AHB-style burst bus, a single-entry write buffer (LEON's data cache
// is write-through), and the APB UART data register used as a console.
package mem

import "fmt"

// Physical memory map, following the LEON2 convention.
const (
	// RAMBase is the base address of main memory.
	RAMBase uint32 = 0x40000000
	// DefaultRAMBytes is the default main memory size.
	DefaultRAMBytes = 8 << 20
	// UARTData is the APB UART transmit-data register; stores to it are
	// captured as console output.
	UARTData uint32 = 0x80000100
	// UARTStatus is the APB UART status register; always reads "transmit
	// ready".
	UARTStatus uint32 = 0x80000104
	// uartStatusReady has the transmitter-ready bits set.
	uartStatusReady uint32 = 0x00000006
)

// Timing holds the bus/memory latency parameters used to price cache
// misses and write-buffer drains, in processor cycles.
type Timing struct {
	// LeadCycles is the latency before the first word of a burst arrives.
	LeadCycles int
	// WordCycles is the cost of each burst word after the first access
	// starts streaming.
	WordCycles int
	// WriteCycles is the time for the write buffer to retire one store.
	WriteCycles int
}

// DefaultTiming returns the calibrated SRAM timing of the platform.
func DefaultTiming() Timing {
	return Timing{LeadCycles: 3, WordCycles: 1, WriteCycles: 4}
}

// BurstReadCycles prices a line fill of the given number of words.
func (t Timing) BurstReadCycles(words int) int {
	return t.LeadCycles + words*t.WordCycles
}

// Memory is the flat RAM plus memory-mapped console. SPARC is big-endian;
// all multi-byte accesses are big-endian.
type Memory struct {
	data     []byte
	console  []byte
	pristine []byte // post-load image recorded by Snapshot, nil before
	// Write watermarks since the last Snapshot/RestoreSnapshot: the dirty
	// range is data[wlo:whi] (empty when wlo >= whi). They let a restore
	// copy only what a run actually wrote instead of the whole RAM.
	wlo, whi int
}

// New allocates a memory of the given size in bytes (rounded up to a
// multiple of 4).
func New(size int) *Memory {
	if size <= 0 {
		size = DefaultRAMBytes
	}
	size = (size + 3) &^ 3
	return &Memory{data: make([]byte, size), wlo: size}
}

// Size returns the RAM size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// RAM exposes the backing store directly (big-endian byte order, offset 0
// is RAMBase). The CPU's fast path uses it to service in-RAM aligned
// accesses without the per-access error plumbing; anything outside the
// slice (devices, faults) must go through the Read*/Write* methods.
func (m *Memory) RAM() []byte { return m.data }

// Console returns everything written to the UART data register so far.
func (m *Memory) Console() string { return string(m.console) }

// ResetConsole discards captured console output.
func (m *Memory) ResetConsole() { m.console = m.console[:0] }

// Snapshot records the current RAM contents as the pristine image a later
// RestoreSnapshot rewinds to, and arms the write watermarks. The platform
// snapshots once, right after program load, so repeated runs restore the
// loaded state by straight copy instead of re-allocating and re-loading
// an image.
func (m *Memory) Snapshot() {
	if m.pristine == nil {
		m.pristine = make([]byte, len(m.data))
	}
	copy(m.pristine, m.data)
	m.wlo, m.whi = len(m.data), 0
}

// Widen extends the dirty-range watermarks to cover [lo, hi). The CPU's
// fast path batches its direct RAM stores and reports them here on exit.
func (m *Memory) Widen(lo, hi int) {
	if lo < m.wlo {
		m.wlo = lo
	}
	if hi > m.whi {
		m.whi = hi
	}
}

// RestoreSnapshot rewinds RAM to the snapshotted image (a no-op without a
// prior Snapshot) and discards console output. Only the dirty range is
// copied back.
func (m *Memory) RestoreSnapshot() {
	if m.pristine != nil && m.whi > m.wlo {
		copy(m.data[m.wlo:m.whi], m.pristine[m.wlo:m.whi])
	}
	m.wlo, m.whi = len(m.data), 0
	m.console = m.console[:0]
}

// InRAM reports whether [addr, addr+n) lies entirely in RAM.
func (m *Memory) InRAM(addr uint32, n int) bool {
	off := int64(addr) - int64(RAMBase)
	return off >= 0 && off+int64(n) <= int64(len(m.data))
}

func (m *Memory) offset(addr uint32, n int) (int, error) {
	if !m.InRAM(addr, n) {
		return 0, fmt.Errorf("mem: access of %d bytes at %#08x outside RAM [%#08x,%#08x)",
			n, addr, RAMBase, RAMBase+uint32(len(m.data)))
	}
	return int(addr - RAMBase), nil
}

// Read32 loads a big-endian word. addr must be 4-byte aligned and in RAM,
// except for the UART status register.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	if addr == UARTStatus {
		return uartStatusReady, nil
	}
	if addr&3 != 0 {
		return 0, fmt.Errorf("mem: misaligned word read at %#08x", addr)
	}
	off, err := m.offset(addr, 4)
	if err != nil {
		return 0, err
	}
	d := m.data[off : off+4 : off+4]
	return uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3]), nil
}

// Read16 loads a big-endian halfword. addr must be 2-byte aligned.
func (m *Memory) Read16(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, fmt.Errorf("mem: misaligned halfword read at %#08x", addr)
	}
	off, err := m.offset(addr, 2)
	if err != nil {
		return 0, err
	}
	return uint16(m.data[off])<<8 | uint16(m.data[off+1]), nil
}

// Read8 loads a byte.
func (m *Memory) Read8(addr uint32) (uint8, error) {
	off, err := m.offset(addr, 1)
	if err != nil {
		return 0, err
	}
	return m.data[off], nil
}

// Write32 stores a big-endian word. Stores to the UART data register are
// captured as console output (low byte).
func (m *Memory) Write32(addr uint32, v uint32) error {
	if addr == UARTData {
		m.console = append(m.console, byte(v))
		return nil
	}
	if addr&3 != 0 {
		return fmt.Errorf("mem: misaligned word write at %#08x", addr)
	}
	off, err := m.offset(addr, 4)
	if err != nil {
		return err
	}
	m.Widen(off, off+4)
	d := m.data[off : off+4 : off+4]
	d[0], d[1], d[2], d[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return nil
}

// Write16 stores a big-endian halfword.
func (m *Memory) Write16(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return fmt.Errorf("mem: misaligned halfword write at %#08x", addr)
	}
	off, err := m.offset(addr, 2)
	if err != nil {
		return err
	}
	m.Widen(off, off+2)
	m.data[off] = byte(v >> 8)
	m.data[off+1] = byte(v)
	return nil
}

// Write8 stores a byte. Stores to the UART data register are captured as
// console output.
func (m *Memory) Write8(addr uint32, v uint8) error {
	if addr >= UARTData && addr < UARTData+4 {
		m.console = append(m.console, v)
		return nil
	}
	off, err := m.offset(addr, 1)
	if err != nil {
		return err
	}
	m.Widen(off, off+1)
	m.data[off] = v
	return nil
}

// LoadImage copies a byte image into RAM starting at addr.
func (m *Memory) LoadImage(addr uint32, image []byte) error {
	off, err := m.offset(addr, len(image))
	if err != nil {
		return err
	}
	m.Widen(off, off+len(image))
	copy(m.data[off:], image)
	return nil
}

// WriteBuffer models LEON's single-entry store buffer: a store that
// arrives while the previous one is still draining stalls the pipeline
// until the buffer frees.
type WriteBuffer struct {
	timing Timing
	freeAt uint64
	stalls uint64
	stores uint64
}

// NewWriteBuffer creates a write buffer with the given drain timing.
func NewWriteBuffer(t Timing) *WriteBuffer {
	return &WriteBuffer{timing: t}
}

// Store records a store issued at cycle now and returns the stall cycles
// the pipeline incurs waiting for the buffer.
func (w *WriteBuffer) Store(now uint64) (stall uint64) {
	w.stores++
	if now < w.freeAt {
		stall = w.freeAt - now
		w.stalls += stall
		now = w.freeAt
	}
	w.freeAt = now + uint64(w.timing.WriteCycles)
	return stall
}

// Stalls returns the total stall cycles charged so far.
func (w *WriteBuffer) Stalls() uint64 { return w.stalls }

// Stores returns the number of stores the buffer has accepted.
func (w *WriteBuffer) Stores() uint64 { return w.stores }

// Reset clears the buffer state and counters.
func (w *WriteBuffer) Reset() { w.freeAt, w.stalls, w.stores = 0, 0, 0 }

// MemoryState is a mid-run snapshot of memory relative to the pristine
// image: the dirty byte range and the console output so far. Restoring
// onto a memory holding the same pristine image reproduces the exact RAM
// contents without copying the regions the run never wrote.
type MemoryState struct {
	lo      int
	data    []byte
	console []byte
}

// Bytes reports the snapshot's payload size, for checkpoint budgeting.
func (s *MemoryState) Bytes() int { return len(s.data) + len(s.console) }

// SaveState captures the dirty range and console, reusing s's buffers
// when they fit. Requires a prior Snapshot (the platform always
// snapshots right after program load).
func (m *Memory) SaveState(s *MemoryState) {
	s.lo = m.wlo
	if m.whi > m.wlo {
		s.data = append(s.data[:0], m.data[m.wlo:m.whi]...)
	} else {
		s.data = s.data[:0]
	}
	s.console = append(s.console[:0], m.console...)
}

// RestoreState rewinds to the pristine image and replays the snapshot's
// dirty range and console. The watermarks are re-armed to the restored
// dirty range so a later RestoreSnapshot still rewinds everything.
func (m *Memory) RestoreState(s *MemoryState) {
	m.RestoreSnapshot()
	if len(s.data) > 0 {
		copy(m.data[s.lo:], s.data)
		m.Widen(s.lo, s.lo+len(s.data))
	}
	m.console = append(m.console[:0], s.console...)
}

// WriteBufferState snapshots a write buffer for interval checkpointing.
type WriteBufferState struct {
	FreeAt uint64
	Stalls uint64
	Stores uint64
}

// SaveState captures the buffer's state.
func (w *WriteBuffer) SaveState() WriteBufferState {
	return WriteBufferState{FreeAt: w.freeAt, Stalls: w.stalls, Stores: w.stores}
}

// RestoreState restores a snapshot taken by SaveState.
func (w *WriteBuffer) RestoreState(s WriteBufferState) {
	w.freeAt, w.stalls, w.stores = s.FreeAt, s.Stalls, s.Stores
}
