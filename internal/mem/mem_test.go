package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip32(t *testing.T) {
	m := New(1 << 16)
	f := func(off uint16, v uint32) bool {
		addr := RAMBase + uint32(off)&^3
		if err := m.Write32(addr, v); err != nil {
			return false
		}
		got, err := m.Read32(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadWriteRoundTrip16And8(t *testing.T) {
	m := New(1 << 12)
	if err := m.Write16(RAMBase+2, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	v16, err := m.Read16(RAMBase + 2)
	if err != nil || v16 != 0xBEEF {
		t.Errorf("Read16 = %#x, %v", v16, err)
	}
	if err := m.Write8(RAMBase+5, 0xA7); err != nil {
		t.Fatal(err)
	}
	v8, err := m.Read8(RAMBase + 5)
	if err != nil || v8 != 0xA7 {
		t.Errorf("Read8 = %#x, %v", v8, err)
	}
}

func TestBigEndianLayout(t *testing.T) {
	m := New(1 << 12)
	if err := m.Write32(RAMBase, 0x11223344); err != nil {
		t.Fatal(err)
	}
	wantBytes := []uint8{0x11, 0x22, 0x33, 0x44}
	for i, want := range wantBytes {
		got, err := m.Read8(RAMBase + uint32(i))
		if err != nil || got != want {
			t.Errorf("byte %d = %#x (%v), want %#x", i, got, err, want)
		}
	}
	h, err := m.Read16(RAMBase)
	if err != nil || h != 0x1122 {
		t.Errorf("high half = %#x, want 0x1122", h)
	}
}

func TestMisalignedAccessErrors(t *testing.T) {
	m := New(1 << 12)
	if _, err := m.Read32(RAMBase + 2); err == nil {
		t.Error("misaligned word read should error")
	}
	if err := m.Write32(RAMBase+1, 0); err == nil {
		t.Error("misaligned word write should error")
	}
	if _, err := m.Read16(RAMBase + 1); err == nil {
		t.Error("misaligned half read should error")
	}
	if err := m.Write16(RAMBase+3, 0); err == nil {
		t.Error("misaligned half write should error")
	}
}

func TestOutOfRangeAccessErrors(t *testing.T) {
	m := New(1 << 12)
	for _, addr := range []uint32{0, RAMBase - 4, RAMBase + 1<<12, 0xFFFFFFFC} {
		if _, err := m.Read32(addr); err == nil {
			t.Errorf("read at %#x should error", addr)
		}
		if err := m.Write8(addr, 0); err == nil && addr != UARTData {
			t.Errorf("write at %#x should error", addr)
		}
	}
	// Last valid word must work; one past must not.
	last := RAMBase + 1<<12 - 4
	if err := m.Write32(last, 1); err != nil {
		t.Errorf("write at last word: %v", err)
	}
}

func TestUARTConsole(t *testing.T) {
	m := New(1 << 12)
	for _, ch := range []byte("hi\n") {
		if err := m.Write32(UARTData, uint32(ch)); err != nil {
			t.Fatalf("uart store: %v", err)
		}
	}
	if err := m.Write8(UARTData+3, '!'); err != nil {
		t.Fatalf("uart byte store: %v", err)
	}
	if got := m.Console(); got != "hi\n!" {
		t.Errorf("console = %q", got)
	}
	status, err := m.Read32(UARTStatus)
	if err != nil || status&uartStatusReady == 0 {
		t.Errorf("uart status = %#x, %v", status, err)
	}
	m.ResetConsole()
	if m.Console() != "" {
		t.Error("ResetConsole did not clear output")
	}
}

func TestLoadImage(t *testing.T) {
	m := New(1 << 12)
	img := []byte{1, 2, 3, 4, 5}
	if err := m.LoadImage(RAMBase+8, img); err != nil {
		t.Fatal(err)
	}
	for i, want := range img {
		got, err := m.Read8(RAMBase + 8 + uint32(i))
		if err != nil || got != want {
			t.Errorf("image byte %d = %d, want %d", i, got, want)
		}
	}
	if err := m.LoadImage(RAMBase+1<<12-2, img); err == nil {
		t.Error("image overflowing RAM should error")
	}
}

func TestSizeRounding(t *testing.T) {
	if got := New(1001).Size(); got != 1004 {
		t.Errorf("size = %d, want 1004", got)
	}
	if got := New(0).Size(); got != DefaultRAMBytes {
		t.Errorf("default size = %d", got)
	}
}

func TestBurstReadCycles(t *testing.T) {
	tm := Timing{LeadCycles: 3, WordCycles: 1, WriteCycles: 4}
	if got := tm.BurstReadCycles(8); got != 11 {
		t.Errorf("8-word burst = %d cycles, want 11", got)
	}
	if got := tm.BurstReadCycles(4); got != 7 {
		t.Errorf("4-word burst = %d cycles, want 7", got)
	}
}

func TestWriteBufferNoStallWhenIdle(t *testing.T) {
	wb := NewWriteBuffer(DefaultTiming())
	if stall := wb.Store(100); stall != 0 {
		t.Errorf("idle buffer should not stall, got %d", stall)
	}
	if wb.Stores() != 1 {
		t.Errorf("stores = %d", wb.Stores())
	}
}

func TestWriteBufferBackToBackStalls(t *testing.T) {
	wb := NewWriteBuffer(Timing{WriteCycles: 4})
	wb.Store(10) // drains at 14
	if stall := wb.Store(11); stall != 3 {
		t.Errorf("second store should stall 3, got %d", stall)
	}
	// Third store issued at 12 waits for drain at 14+4=18.
	if stall := wb.Store(12); stall != 6 {
		t.Errorf("third store should stall 6, got %d", stall)
	}
	if wb.Stalls() != 9 {
		t.Errorf("total stalls = %d, want 9", wb.Stalls())
	}
}

func TestWriteBufferSpacedStoresFree(t *testing.T) {
	wb := NewWriteBuffer(Timing{WriteCycles: 4})
	for now := uint64(0); now < 100; now += 10 {
		if stall := wb.Store(now); stall != 0 {
			t.Fatalf("spaced store at %d stalled %d", now, stall)
		}
	}
}

func TestWriteBufferReset(t *testing.T) {
	wb := NewWriteBuffer(Timing{WriteCycles: 4})
	wb.Store(0)
	wb.Store(1)
	wb.Reset()
	if wb.Stalls() != 0 || wb.Stores() != 0 {
		t.Error("reset did not clear counters")
	}
	if stall := wb.Store(0); stall != 0 {
		t.Error("reset buffer should accept a store at cycle 0 without stall")
	}
}
