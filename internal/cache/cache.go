// Package cache implements the configurable first-level caches of the
// LEON2-like processor: 1-4 ways ("sets" in LEON terminology), 1-64 KB per
// way, 4- or 8-word lines, and random / LRR / LRU replacement.
//
// The cache is a timing model: data lives in the flat RAM (package mem) and
// the cache tracks only tags, so coherence holds by construction. The data
// cache is write-through with no write-allocate, matching LEON2.
package cache

import (
	"fmt"

	"liquidarch/internal/config"
)

// Stats counts cache events.
type Stats struct {
	ReadAccesses  uint64
	ReadMisses    uint64
	WriteAccesses uint64
	WriteMisses   uint64
	Fills         uint64
}

// ReadHits returns the number of read accesses that hit.
func (s Stats) ReadHits() uint64 { return s.ReadAccesses - s.ReadMisses }

// MissRate returns the read miss ratio, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.ReadAccesses == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.ReadAccesses)
}

// Cache is one set-associative timing cache.
type Cache struct {
	ways      int
	lineBytes uint32
	numLines  uint32 // lines per way
	lineShift uint32
	policy    config.ReplacementPolicy

	// tags[way*numLines+line] with valid bit folded in (tagValid flag).
	tags  []uint32
	valid []bool
	// age[way*numLines+line] for LRU: higher is more recent.
	age []uint32
	// rrPtr[line] for LRR: next way to replace.
	rrPtr []uint8
	clock uint32
	rng   uint32
	stats Stats
}

func log2u32(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// New builds a cache from the LEON cache configuration.
func New(cfg config.CacheConfig) (*Cache, error) {
	if cfg.Sets < 1 || cfg.Sets > 4 {
		return nil, fmt.Errorf("cache: %d ways out of range", cfg.Sets)
	}
	lineBytes := uint32(cfg.LineWords * 4)
	if cfg.LineWords != 4 && cfg.LineWords != 8 {
		return nil, fmt.Errorf("cache: %d-word lines unsupported", cfg.LineWords)
	}
	setBytes := uint32(cfg.SetSizeKB) * 1024
	if setBytes == 0 || setBytes%lineBytes != 0 {
		return nil, fmt.Errorf("cache: set size %dKB invalid", cfg.SetSizeKB)
	}
	numLines := setBytes / lineBytes
	if numLines&(numLines-1) != 0 {
		return nil, fmt.Errorf("cache: %d lines per way not a power of two", numLines)
	}
	c := &Cache{
		ways:      cfg.Sets,
		lineBytes: lineBytes,
		numLines:  numLines,
		lineShift: log2u32(lineBytes),
		policy:    cfg.Replacement,
		tags:      make([]uint32, cfg.Sets*int(numLines)),
		valid:     make([]bool, cfg.Sets*int(numLines)),
		age:       make([]uint32, cfg.Sets*int(numLines)),
		rrPtr:     make([]uint8, numLines),
		rng:       0x2545F491,
	}
	return c, nil
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line length in bytes.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }

// LinesPerWay returns the number of lines in each way.
func (c *Cache) LinesPerWay() int { return int(c.numLines) }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Flush invalidates every line and clears replacement state (counters are
// preserved).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
	}
	for i := range c.rrPtr {
		c.rrPtr[i] = 0
	}
	c.clock = 0
}

func (c *Cache) index(addr uint32) (line, tag uint32) {
	line = (addr >> c.lineShift) & (c.numLines - 1)
	tag = (addr >> c.lineShift) / c.numLines
	return line, tag
}

// lookup returns the way holding addr, or -1.
func (c *Cache) lookup(line, tag uint32) int {
	for w := 0; w < c.ways; w++ {
		i := uint32(w)*c.numLines + line
		if c.valid[i] && c.tags[i] == tag {
			return w
		}
	}
	return -1
}

func (c *Cache) touch(way int, line uint32) {
	if c.policy == config.LRU && c.ways > 1 {
		c.clock++
		c.age[uint32(way)*c.numLines+line] = c.clock
	}
}

func (c *Cache) victim(line uint32) int {
	if c.ways == 1 {
		return 0
	}
	// Prefer an invalid way.
	for w := 0; w < c.ways; w++ {
		if !c.valid[uint32(w)*c.numLines+line] {
			return w
		}
	}
	switch c.policy {
	case config.LRU:
		best, bestAge := 0, c.age[line]
		for w := 1; w < c.ways; w++ {
			if a := c.age[uint32(w)*c.numLines+line]; a < bestAge {
				best, bestAge = w, a
			}
		}
		return best
	case config.LRR:
		w := int(c.rrPtr[line])
		c.rrPtr[line] = uint8((w + 1) % c.ways)
		return w
	default: // Random
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 17
		c.rng ^= c.rng << 5
		return int(c.rng % uint32(c.ways))
	}
}

// Read performs a read access for addr and reports whether it hit. On a
// miss the line is filled.
func (c *Cache) Read(addr uint32) (hit bool) {
	c.stats.ReadAccesses++
	line, tag := c.index(addr)
	if w := c.lookup(line, tag); w >= 0 {
		c.touch(w, line)
		return true
	}
	c.stats.ReadMisses++
	w := c.victim(line)
	i := uint32(w)*c.numLines + line
	c.tags[i] = tag
	c.valid[i] = true
	c.stats.Fills++
	c.touch(w, line)
	return false
}

// Write performs a write access (write-through, no-allocate) and reports
// whether it hit. Misses do not fill.
func (c *Cache) Write(addr uint32) (hit bool) {
	c.stats.WriteAccesses++
	line, tag := c.index(addr)
	if w := c.lookup(line, tag); w >= 0 {
		c.touch(w, line)
		return true
	}
	c.stats.WriteMisses++
	return false
}

// Contains reports whether addr is currently cached (no statistics or
// replacement side effects).
func (c *Cache) Contains(addr uint32) bool {
	line, tag := c.index(addr)
	return c.lookup(line, tag) >= 0
}
