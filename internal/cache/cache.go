// Package cache implements the configurable first-level caches of the
// LEON2-like processor — the richest knobs of the paper's Figure 1
// decision space: 1-4 ways ("sets" in LEON terminology), 1-64 KB per
// way, 4- or 8-word lines, and random / LRR / LRU replacement.
//
// The cache is a timing model: data lives in the flat RAM (package mem) and
// the cache tracks only tags, so coherence holds by construction. The data
// cache is write-through with no write-allocate, matching LEON2.
//
// The tag store folds the valid bit into a sentinel tag value (DESIGN.md §7):
// no reachable address produces invalidTag, so a hit check is a single load
// and compare. The 1-way (direct-mapped) case — the LEON default for both
// caches — takes a dedicated single-probe fast path with no way loop.
package cache

import (
	"fmt"

	"liquidarch/internal/config"
)

// Stats counts cache events.
type Stats struct {
	ReadAccesses  uint64
	ReadMisses    uint64
	WriteAccesses uint64
	WriteMisses   uint64
	Fills         uint64
}

// ReadHits returns the number of read accesses that hit.
func (s Stats) ReadHits() uint64 { return s.ReadAccesses - s.ReadMisses }

// Sub returns the counter delta s - o (o an earlier snapshot of the same
// cache), for interval profiling.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ReadAccesses:  s.ReadAccesses - o.ReadAccesses,
		ReadMisses:    s.ReadMisses - o.ReadMisses,
		WriteAccesses: s.WriteAccesses - o.WriteAccesses,
		WriteMisses:   s.WriteMisses - o.WriteMisses,
		Fills:         s.Fills - o.Fills,
	}
}

// Add accumulates o into s — the aggregation inverse of Sub.
func (s *Stats) Add(o Stats) {
	s.ReadAccesses += o.ReadAccesses
	s.ReadMisses += o.ReadMisses
	s.WriteAccesses += o.WriteAccesses
	s.WriteMisses += o.WriteMisses
	s.Fills += o.Fills
}

// MissRate returns the read miss ratio, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.ReadAccesses == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.ReadAccesses)
}

// invalidTag marks an empty line. Tags are addr >> tagShift with
// tagShift >= 6, so no 32-bit address can produce it.
const invalidTag uint32 = ^uint32(0)

// Cache is one set-associative timing cache.
type Cache struct {
	ways      int
	lineBytes uint32
	numLines  uint32 // lines per way
	lineShift uint32
	tagShift  uint32 // lineShift + log2(numLines)
	policy    config.ReplacementPolicy

	// tags[way*numLines+line]; invalidTag folds in the valid bit.
	tags []uint32
	// age[way*numLines+line] for LRU: higher is more recent.
	age []uint32
	// rrPtr[line] for LRR: next way to replace.
	rrPtr []uint8
	clock uint32
	rng   uint32
	stats Stats
}

// rngSeed is the reset state of the xorshift random-replacement generator.
const rngSeed uint32 = 0x2545F491

func log2u32(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// New builds a cache from the LEON cache configuration.
func New(cfg config.CacheConfig) (*Cache, error) {
	if cfg.Sets < 1 || cfg.Sets > 4 {
		return nil, fmt.Errorf("cache: %d ways out of range", cfg.Sets)
	}
	lineBytes := uint32(cfg.LineWords * 4)
	if cfg.LineWords != 4 && cfg.LineWords != 8 {
		return nil, fmt.Errorf("cache: %d-word lines unsupported", cfg.LineWords)
	}
	setBytes := uint32(cfg.SetSizeKB) * 1024
	if setBytes == 0 || setBytes%lineBytes != 0 {
		return nil, fmt.Errorf("cache: set size %dKB invalid", cfg.SetSizeKB)
	}
	numLines := setBytes / lineBytes
	if numLines&(numLines-1) != 0 {
		return nil, fmt.Errorf("cache: %d lines per way not a power of two", numLines)
	}
	c := &Cache{
		ways:      cfg.Sets,
		lineBytes: lineBytes,
		numLines:  numLines,
		lineShift: log2u32(lineBytes),
		tagShift:  log2u32(lineBytes) + log2u32(numLines),
		policy:    cfg.Replacement,
		tags:      make([]uint32, cfg.Sets*int(numLines)),
		age:       make([]uint32, cfg.Sets*int(numLines)),
		rrPtr:     make([]uint8, numLines),
		rng:       rngSeed,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c, nil
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line length in bytes.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }

// LineShift returns log2 of the line length in bytes; addresses with equal
// addr>>LineShift() fall on the same line (and therefore the same set and
// tag), which the CPU's fast fetch loop exploits.
func (c *Cache) LineShift() uint32 { return c.lineShift }

// LinesPerWay returns the number of lines in each way.
func (c *Cache) LinesPerWay() int { return int(c.numLines) }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// AddReadHits credits n read accesses that are known hits without probing
// the tag store. The CPU's fast fetch path uses it for back-to-back fetches
// from the line it just accessed: such an access is a guaranteed hit and
// cannot change any replacement decision (the line is already the most
// recent in its set, and the random/LRR state only advances on misses), so
// only the counters need updating.
func (c *Cache) AddReadHits(n uint64) { c.stats.ReadAccesses += n }

// AddWriteHits credits n write accesses that are known hits without
// probing the tag store (the write-through no-allocate data cache changes
// no state on a write hit outside LRU aging; the CPU only uses this when
// the skip is sound).
func (c *Cache) AddWriteHits(n uint64) { c.stats.WriteAccesses += n }

// AddDirectReadMisses credits n read misses whose fills were applied
// directly to the tag store returned by Direct (every direct-mapped read
// miss fills).
func (c *Cache) AddDirectReadMisses(n uint64) {
	c.stats.ReadAccesses += n
	c.stats.ReadMisses += n
	c.stats.Fills += n
}

// AddDirectWriteMisses credits n write misses observed against the tag
// store returned by Direct (write misses do not fill).
func (c *Cache) AddDirectWriteMisses(n uint64) {
	c.stats.WriteAccesses += n
	c.stats.WriteMisses += n
}

// Direct exposes the raw tag store of a direct-mapped cache so the CPU's
// fast path can probe and fill inline: a hit is
// tags[(addr>>lineShift)&mask] == addr>>tagShift, and a read-miss fill
// stores the tag back. ok is false for multi-way caches, which keep their
// replacement bookkeeping behind Read/Write. Counters for inline probes
// are credited in bulk via AddReadHits/AddDirectReadMisses/
// AddWriteHits/AddDirectWriteMisses.
func (c *Cache) Direct() (tags []uint32, lineShift, tagShift, mask uint32, ok bool) {
	if c.ways != 1 {
		return nil, 0, 0, 0, false
	}
	return c.tags, c.lineShift, c.tagShift, c.numLines - 1, true
}

// Flush invalidates every line and clears replacement state (counters are
// preserved).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.age[i] = 0
	}
	for i := range c.rrPtr {
		c.rrPtr[i] = 0
	}
	c.clock = 0
}

// Reset restores the cache to its as-built state: flushed, zero counters,
// and the replacement RNG reseeded. Reusing a core across runs requires
// Reset (not just Flush) so a reused cache makes bit-identical replacement
// decisions to a freshly constructed one.
func (c *Cache) Reset() {
	c.Flush()
	c.rng = rngSeed
	c.stats = Stats{}
}

func (c *Cache) index(addr uint32) (line, tag uint32) {
	line = (addr >> c.lineShift) & (c.numLines - 1)
	tag = addr >> c.tagShift
	return line, tag
}

// lookup returns the way holding addr, or -1.
func (c *Cache) lookup(line, tag uint32) int {
	for w := 0; w < c.ways; w++ {
		if c.tags[uint32(w)*c.numLines+line] == tag {
			return w
		}
	}
	return -1
}

func (c *Cache) touch(way int, line uint32) {
	if c.policy == config.LRU && c.ways > 1 {
		c.clock++
		c.age[uint32(way)*c.numLines+line] = c.clock
	}
}

func (c *Cache) victim(line uint32) int {
	if c.ways == 1 {
		return 0
	}
	// Prefer an invalid way.
	for w := 0; w < c.ways; w++ {
		if c.tags[uint32(w)*c.numLines+line] == invalidTag {
			return w
		}
	}
	switch c.policy {
	case config.LRU:
		best, bestAge := 0, c.age[line]
		for w := 1; w < c.ways; w++ {
			if a := c.age[uint32(w)*c.numLines+line]; a < bestAge {
				best, bestAge = w, a
			}
		}
		return best
	case config.LRR:
		w := int(c.rrPtr[line])
		c.rrPtr[line] = uint8((w + 1) % c.ways)
		return w
	default: // Random
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 17
		c.rng ^= c.rng << 5
		return int(c.rng % uint32(c.ways))
	}
}

// Read performs a read access for addr and reports whether it hit. On a
// miss the line is filled.
func (c *Cache) Read(addr uint32) (hit bool) {
	c.stats.ReadAccesses++
	if c.ways == 1 {
		// Direct-mapped fast path: one load + compare, no way loop, no
		// replacement state.
		i := (addr >> c.lineShift) & (c.numLines - 1)
		tag := addr >> c.tagShift
		if c.tags[i] == tag {
			return true
		}
		c.stats.ReadMisses++
		c.tags[i] = tag
		c.stats.Fills++
		return false
	}
	line, tag := c.index(addr)
	if w := c.lookup(line, tag); w >= 0 {
		c.touch(w, line)
		return true
	}
	c.stats.ReadMisses++
	w := c.victim(line)
	c.tags[uint32(w)*c.numLines+line] = tag
	c.stats.Fills++
	c.touch(w, line)
	return false
}

// Write performs a write access (write-through, no-allocate) and reports
// whether it hit. Misses do not fill.
func (c *Cache) Write(addr uint32) (hit bool) {
	c.stats.WriteAccesses++
	if c.ways == 1 {
		i := (addr >> c.lineShift) & (c.numLines - 1)
		if c.tags[i] == addr>>c.tagShift {
			return true
		}
		c.stats.WriteMisses++
		return false
	}
	line, tag := c.index(addr)
	if w := c.lookup(line, tag); w >= 0 {
		c.touch(w, line)
		return true
	}
	c.stats.WriteMisses++
	return false
}

// Contains reports whether addr is currently cached (no statistics or
// replacement side effects).
func (c *Cache) Contains(addr uint32) bool {
	line, tag := c.index(addr)
	return c.lookup(line, tag) >= 0
}

// State is a deep snapshot of a cache's complete mutable state — tags,
// replacement bookkeeping, RNG and counters — for interval checkpointing
// (DESIGN.md §17). A cache restored from a State replays the exact hit,
// victim and counter sequence the snapshotted cache would have produced.
type State struct {
	tags  []uint32
	age   []uint32
	rrPtr []uint8
	clock uint32
	rng   uint32
	stats Stats
}

// SaveState captures the cache's mutable state, reusing s's buffers when
// they fit so steady-state checkpointing allocates nothing.
func (c *Cache) SaveState(s *State) {
	s.tags = append(s.tags[:0], c.tags...)
	s.age = append(s.age[:0], c.age...)
	s.rrPtr = append(s.rrPtr[:0], c.rrPtr...)
	s.clock = c.clock
	s.rng = c.rng
	s.stats = c.stats
}

// RestoreState restores a snapshot taken from a cache of identical
// geometry (same configuration — the only way package platform uses it).
func (c *Cache) RestoreState(s *State) {
	copy(c.tags, s.tags)
	copy(c.age, s.age)
	copy(c.rrPtr, s.rrPtr)
	c.clock = s.clock
	c.rng = s.rng
	c.stats = s.stats
}
