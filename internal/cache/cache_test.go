package cache

import (
	"math/rand"
	"testing"

	"liquidarch/internal/config"
)

func mustNew(t *testing.T, cfg config.CacheConfig) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 2, SetSizeKB: 4, LineWords: 8, Replacement: config.LRU})
	if c.Ways() != 2 {
		t.Errorf("ways = %d", c.Ways())
	}
	if c.LineBytes() != 32 {
		t.Errorf("line bytes = %d", c.LineBytes())
	}
	if c.LinesPerWay() != 128 {
		t.Errorf("lines per way = %d", c.LinesPerWay())
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []config.CacheConfig{
		{Sets: 0, SetSizeKB: 4, LineWords: 8},
		{Sets: 5, SetSizeKB: 4, LineWords: 8},
		{Sets: 1, SetSizeKB: 4, LineWords: 6},
		{Sets: 1, SetSizeKB: 0, LineWords: 8},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) should error", cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: 1, LineWords: 8, Replacement: config.Random})
	if c.Read(0x1000) {
		t.Error("cold read should miss")
	}
	if !c.Read(0x1000) {
		t.Error("second read should hit")
	}
	if !c.Read(0x101C) {
		t.Error("same-line read should hit")
	}
	if c.Read(0x1020) {
		t.Error("next line should miss")
	}
	s := c.Stats()
	if s.ReadAccesses != 4 || s.ReadMisses != 2 || s.ReadHits() != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 1 KB direct-mapped, 32-byte lines: addresses 1 KB apart collide.
	c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: 1, LineWords: 8, Replacement: config.Random})
	c.Read(0x0000)
	c.Read(0x0400) // evicts 0x0000
	if c.Contains(0x0000) {
		t.Error("conflicting line should have been evicted")
	}
	if !c.Contains(0x0400) {
		t.Error("new line should be resident")
	}
	if c.Read(0x0000) {
		t.Error("evicted line should miss")
	}
}

func TestTwoWayAvoidsConflict(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 2, SetSizeKB: 1, LineWords: 8, Replacement: config.LRU})
	c.Read(0x0000)
	c.Read(0x0400)
	if !c.Read(0x0000) || !c.Read(0x0400) {
		t.Error("two conflicting lines should both fit in a 2-way cache")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 2, SetSizeKB: 1, LineWords: 8, Replacement: config.LRU})
	c.Read(0x0000) // way A
	c.Read(0x0400) // way B
	c.Read(0x0000) // touch A: B is now LRU
	c.Read(0x0800) // evicts B
	if !c.Contains(0x0000) {
		t.Error("recently used line evicted by LRU")
	}
	if c.Contains(0x0400) {
		t.Error("LRU line survived")
	}
}

func TestLRRReplacementCycles(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 2, SetSizeKB: 1, LineWords: 8, Replacement: config.LRR})
	c.Read(0x0000) // fills way 0 (invalid preferred)
	c.Read(0x0400) // fills way 1
	c.Read(0x0800) // LRR pointer at way 0: evicts 0x0000
	if c.Contains(0x0000) {
		t.Error("LRR should have evicted the first-filled way")
	}
	c.Read(0x0C00) // pointer advanced: evicts way 1 (0x0400)
	if c.Contains(0x0400) {
		t.Error("LRR should cycle to the next way")
	}
	if !c.Contains(0x0800) || !c.Contains(0x0C00) {
		t.Error("latest lines should be resident")
	}
}

func TestRandomReplacementStaysLegal(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 4, SetSizeKB: 1, LineWords: 4, Replacement: config.Random})
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		c.Read(uint32(r.Intn(1<<16)) &^ 3)
	}
	// After the storm, a freshly-filled line must be resident.
	c.Read(0xABC0)
	if !c.Contains(0xABC0) {
		t.Error("just-filled line missing")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: 1, LineWords: 8, Replacement: config.Random})
	if c.Write(0x2000) {
		t.Error("write to empty cache should miss")
	}
	if c.Contains(0x2000) {
		t.Error("write miss must not allocate")
	}
	c.Read(0x2000)
	if !c.Write(0x2000) {
		t.Error("write to resident line should hit")
	}
	s := c.Stats()
	if s.WriteAccesses != 2 || s.WriteMisses != 1 {
		t.Errorf("write stats = %+v", s)
	}
}

func TestFlushInvalidatesEverything(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 2, SetSizeKB: 1, LineWords: 8, Replacement: config.LRU})
	for a := uint32(0); a < 2048; a += 32 {
		c.Read(a)
	}
	c.Flush()
	for a := uint32(0); a < 2048; a += 32 {
		if c.Contains(a) {
			t.Fatalf("address %#x survived flush", a)
		}
	}
}

// TestWorkingSetCapacityEffect is the invariant the whole paper leans on: a
// working set that thrashes a small cache fits in a bigger one.
func TestWorkingSetCapacityEffect(t *testing.T) {
	run := func(setKB int) float64 {
		c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: setKB, LineWords: 8, Replacement: config.Random})
		// 8 KB working set, scanned repeatedly.
		for pass := 0; pass < 8; pass++ {
			for a := uint32(0); a < 8*1024; a += 4 {
				c.Read(a)
			}
		}
		return c.Stats().MissRate()
	}
	small, large := run(4), run(16)
	if small <= large {
		t.Errorf("4KB miss rate %.4f should exceed 16KB miss rate %.4f", small, large)
	}
	// The only misses in the large cache should be the cold first pass:
	// 256 line fills over 8 passes x 2048 reads = 1/64.
	if large > 1.0/64+1e-9 {
		t.Errorf("16KB cache should capture an 8KB working set after warmup, miss rate %.4f", large)
	}
}

// TestLineSizeTradeoff: sequential scans favour long lines; strided access
// with poor spatial locality favours short lines (fewer fetched words is a
// timing property, but miss *counts* halve with 8-word lines on sequential
// scans).
func TestLineSizeTradeoff(t *testing.T) {
	misses := func(lineWords int) uint64 {
		c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: 4, LineWords: lineWords, Replacement: config.Random})
		for a := uint32(0); a < 64*1024; a += 4 {
			c.Read(a)
		}
		return c.Stats().ReadMisses
	}
	m4, m8 := misses(4), misses(8)
	if m4 != 2*m8 {
		t.Errorf("sequential scan: 4-word lines should miss exactly twice as often (got %d vs %d)", m4, m8)
	}
}

func TestAssociativityReducesConflictMisses(t *testing.T) {
	// Two streams 4 KB apart thrash a 4 KB direct-mapped cache but
	// coexist in 2-way.
	run := func(sets int, repl config.ReplacementPolicy) uint64 {
		c := mustNew(t, config.CacheConfig{Sets: sets, SetSizeKB: 4, LineWords: 8, Replacement: repl})
		for i := 0; i < 4096; i += 4 {
			c.Read(uint32(i))
			c.Read(uint32(i + 4096))
		}
		return c.Stats().ReadMisses
	}
	direct := run(1, config.Random)
	twoWay := run(2, config.LRU)
	if twoWay >= direct {
		t.Errorf("2-way LRU (%d misses) should beat direct-mapped (%d) on a ping-pong conflict pattern", twoWay, direct)
	}
}

func TestStatsMissRateZeroWhenIdle(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: 1, LineWords: 4, Replacement: config.Random})
	if c.Stats().MissRate() != 0 {
		t.Error("idle cache miss rate should be 0")
	}
}

// TestTagDisambiguation guards against tag-aliasing bugs: two addresses
// mapping to the same line with different tags must not be confused.
func TestTagDisambiguation(t *testing.T) {
	c := mustNew(t, config.CacheConfig{Sets: 1, SetSizeKB: 1, LineWords: 4, Replacement: config.Random})
	c.Read(0x00010000)
	if c.Contains(0x00020000) || c.Contains(0x00000000) {
		t.Error("distinct tags reported resident")
	}
	if !c.Contains(0x00010004) {
		t.Error("same line should be resident")
	}
}
