// Package workload provides the deterministic synthetic inputs that stand
// in for the paper's benchmark data (Section 2.5: genomic sequences for
// BLASTN, packet traces for the CommBench kernels). The same linear congruential generator
// is implemented in SPARC assembly inside each benchmark and here in Go, so
// golden models can replay a benchmark's data stream bit-for-bit.
package workload

// LCG constants (classic glibc-style parameters, 31-bit state). The
// assembly implementation is:
//
//	umul %state, A, %state
//	add  %state, C, %state
//	and  %state, MASK, %state
const (
	LCGMultiplier uint32 = 1103515245
	LCGIncrement  uint32 = 12345
	LCGMask       uint32 = 0x7FFFFFFF
)

// LCG is the shared pseudo-random generator.
type LCG struct {
	state uint32
}

// NewLCG seeds a generator. The seed is masked to 31 bits, matching the
// assembly implementation.
func NewLCG(seed uint32) *LCG {
	return &LCG{state: seed & LCGMask}
}

// Next advances the generator and returns the new 31-bit state — exactly
// the value the assembly sequence leaves in the state register.
func (l *LCG) Next() uint32 {
	l.state = (l.state*LCGMultiplier + LCGIncrement) & LCGMask
	return l.state
}

// State returns the current state without advancing.
func (l *LCG) State() uint32 { return l.state }

// Scale selects the workload size. The paper runs full-length workloads
// (10 s - 9 min at 25 MHz); the reproduction's default is Small, which
// preserves the loop-dominated percentage behaviour at a fraction of the
// simulation cost. See DESIGN.md §2.
type Scale int

const (
	// Tiny is for unit tests: sub-millisecond simulations.
	Tiny Scale = iota
	// Small is the default experiment scale (roughly 1-20 M cycles).
	Small
	// Medium is for higher-fidelity experiment runs.
	Medium
	// Paper approximates the paper's full workload sizes.
	Paper
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	default:
		return "unknown"
	}
}

// ParseScale converts a name into a Scale.
func ParseScale(name string) (Scale, bool) {
	switch name {
	case "tiny":
		return Tiny, true
	case "small":
		return Small, true
	case "medium":
		return Medium, true
	case "paper":
		return Paper, true
	}
	return Tiny, false
}

// DNABases generates n bases (values 0-3) the same way the BLASTN
// program's generator loop does: one LCG step per base, using bits 16..17.
func DNABases(seed uint32, n int) []uint8 {
	g := NewLCG(seed)
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(g.Next() >> 16 & 3)
	}
	return out
}

// PacketSizes generates n packet lengths in [64, 1087] the same way the
// CommBench programs' generator loops do: one LCG step per packet, ten bits
// starting at bit 8 plus the 64-byte minimum (Ethernet-like size range,
// computed without division so the assembly needs no divider).
func PacketSizes(seed uint32, n int) []uint32 {
	g := NewLCG(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = 64 + (g.Next()>>8)&0x3FF
	}
	return out
}
