package workload

import (
	"testing"
	"testing/quick"
)

func TestLCGMatchesSpec(t *testing.T) {
	g := NewLCG(12345)
	// First values of x' = (x*1103515245 + 12345) & 0x7FFFFFFF.
	x := uint32(12345)
	for i := 0; i < 1000; i++ {
		x = (x*LCGMultiplier + LCGIncrement) & LCGMask
		if got := g.Next(); got != x {
			t.Fatalf("step %d: %d, want %d", i, got, x)
		}
	}
}

func TestLCGSeedMasked(t *testing.T) {
	a := NewLCG(5)
	b := NewLCG(5 | 0x80000000) // high bit must be ignored
	if a.Next() != b.Next() {
		t.Error("seed should be masked to 31 bits")
	}
}

func TestLCGStateStaysIn31Bits(t *testing.T) {
	f := func(seed uint32) bool {
		g := NewLCG(seed)
		for i := 0; i < 100; i++ {
			if g.Next() > LCGMask {
				return false
			}
		}
		return g.State() == g.State() // State must not advance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDNABasesRangeAndDeterminism(t *testing.T) {
	a := DNABases(42, 500)
	b := DNABases(42, 500)
	for i := range a {
		if a[i] > 3 {
			t.Fatalf("base %d out of range: %d", i, a[i])
		}
		if a[i] != b[i] {
			t.Fatal("DNABases not deterministic")
		}
	}
	// All four bases should occur in 500 draws.
	var seen [4]bool
	for _, base := range a {
		seen[base] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("base %d never generated", v)
		}
	}
}

func TestPacketSizesRange(t *testing.T) {
	sizes := PacketSizes(7, 2000)
	for i, s := range sizes {
		if s < 64 || s > 64+0x3FF {
			t.Fatalf("packet %d size %d outside [64,1087]", i, s)
		}
	}
}

func TestScaleParseAndString(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Medium, Paper} {
		got, ok := ParseScale(s.String())
		if !ok || got != s {
			t.Errorf("round trip failed for %s", s)
		}
	}
	if _, ok := ParseScale("huge"); ok {
		t.Error("unknown scale should not parse")
	}
	if Scale(99).String() != "unknown" {
		t.Error("out-of-range scale should stringify as unknown")
	}
}
