package progs

import "liquidarch/internal/workload"

// FRAG reproduces the paper's Benchmark III: the CommBench IP packet
// fragmentation kernel. Input packets live in a ring of pre-filled slots;
// each packet is split into 576-byte fragments, and for every fragment the
// 20-byte header is checksummed (16-bit ones-complement, adjusted with the
// packet id and fragment offset) and the payload is copied word-by-word to
// the output buffer. The input ring's reuse distance drives the data-cache
// sensitivity; the copy loop drives write-buffer traffic.
var FRAG = register(&Benchmark{
	Name:        "frag",
	Description: "CommBench IP fragmentation with header checksums (copy-heavy)",
	source:      fragSource,
	params:      fragParams,
	golden:      fragGolden,
})

type fragConfig struct {
	npkt, poolPkts, slotBytes, seed uint32
}

func fragConfigFor(scale workload.Scale) fragConfig {
	switch scale {
	case workload.Tiny:
		return fragConfig{npkt: 80, poolPkts: 4, slotBytes: 2048, seed: 4242}
	case workload.Small:
		return fragConfig{npkt: 1400, poolPkts: 8, slotBytes: 2048, seed: 4242}
	case workload.Medium:
		return fragConfig{npkt: 7000, poolPkts: 8, slotBytes: 2048, seed: 4242}
	default: // Paper
		return fragConfig{npkt: 90000, poolPkts: 8, slotBytes: 2048, seed: 4242}
	}
}

func fragParams(scale workload.Scale) map[string]uint32 {
	c := fragConfigFor(scale)
	return map[string]uint32{
		"NPKT":      c.npkt,
		"POOLMASK":  c.poolPkts - 1,
		"SLOTSHIFT": log2u(c.slotBytes),
		"SEED":      c.seed,
		"POOLBYTES": c.poolPkts * c.slotBytes,
		"POOLWORDS": c.poolPkts * c.slotBytes / 4,
	}
}

// fragGolden mirrors the assembly exactly, operating on the same
// word-granular view of the input ring.
func fragGolden(scale workload.Scale) uint32 {
	c := fragConfigFor(scale)
	g := workload.NewLCG(c.seed)

	poolWords := c.poolPkts * c.slotBytes / 4
	pool := make([]uint32, poolWords)
	for i := range pool {
		pool[i] = g.Next()
	}
	// lduh from a big-endian word array: offset 0 is the high half.
	half := func(byteOff uint32) uint32 {
		w := pool[byteOff>>2]
		if byteOff&2 == 0 {
			return w >> 16
		}
		return w & 0xFFFF
	}

	var csum uint32
	for p := uint32(0); p < c.npkt; p++ {
		slot := (p & (c.poolPkts - 1)) << log2u(c.slotBytes) // byte offset of the slot
		pktLen := 1024 + (g.Next()>>7)&0x3FF
		remaining := pktLen
		off := uint32(0)
		for {
			fragLen := uint32(576)
			if remaining <= 576 {
				fragLen = remaining
			}
			// Header checksum: 10 halfwords at the slot start, plus the
			// packet id and the fragment offset, folded to 16 bits and
			// complemented.
			var sum uint32
			for h := uint32(0); h < 10; h++ {
				sum += half(slot + 2*h)
			}
			sum += p
			sum += off
			sum = (sum & 0xFFFF) + sum>>16
			sum = (sum & 0xFFFF) + sum>>16
			sum ^= 0xFFFF
			csum += sum
			// Payload copy, word at a time, digesting each word.
			n := (fragLen + 3) >> 2
			src := (slot + off) >> 2
			for k := uint32(0); k < n; k++ {
				csum ^= pool[src+k]
			}
			off += fragLen
			remaining -= fragLen
			if remaining == 0 {
				break
			}
		}
	}
	return csum
}

const fragSource = `
! CommBench FRAG: IP packet fragmentation.
! Packets are drawn from a ring of input slots; each is split into
! 576-byte fragments. Per fragment: 16-bit ones-complement header checksum
! over 10 halfwords (+id +offset, folded, complemented) and a word-by-word
! payload copy into the output buffer. Digest in %o1 at halt.

        .equ    LCG_A, 1103515245
        .equ    LCG_C, 12345
        .equ    LCG_MASK, 0x7FFFFFFF

        .text
start:
        set     LCG_A, %g1
        set     LCG_MASK, %g2
        set     LCG_C, %g7
        set     @SEED@, %l7
        set     inpool, %g3
        set     outbuf, %g4
        set     0xFFFF, %g5

! ---- pre-fill the input ring ----
        mov     %g3, %o2
        set     @POOLWORDS@, %o3
pfill:
        umul    %l7, %g1, %l7
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        st      %l7, [%o2]
        add     %o2, 4, %o2
        subcc   %o3, 1, %o3
        bne     pfill
        nop

! ---- fragment NPKT packets ----
        set     @NPKT@, %i0
        clr     %l0                  ! packet id p
        clr     %l3                  ! csum
pkt:
        and     %l0, @POOLMASK@, %o0
        sll     %o0, @SLOTSHIFT@, %o0
        add     %g3, %o0, %l4        ! slot address
        umul    %l7, %g1, %l7        ! packet length from the LCG
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        srl     %l7, 7, %l1
        and     %l1, 0x3FF, %l1
        set     1024, %o0
        add     %l1, %o0, %l1        ! remaining = 1024..2047
        clr     %l2                  ! off
frag:
        set     576, %l5             ! fragLen = min(576, remaining)
        cmp     %l1, %l5
        bgu     fragsz
        nop
        mov     %l1, %l5
fragsz:
! header checksum: 10 halfwords at the slot start
        clr     %o4
        mov     %l4, %o0
        mov     10, %o2
hsum:
        lduh    [%o0], %o3
        add     %o0, 2, %o0
        subcc   %o2, 1, %o2
        bne     hsum
        add     %o4, %o3, %o4        ! delay slot: accumulate
        add     %o4, %l0, %o4        ! + packet id
        add     %o4, %l2, %o4        ! + fragment offset
        srl     %o4, 16, %o5
        and     %o4, %g5, %o4
        add     %o4, %o5, %o4
        srl     %o4, 16, %o5
        and     %o4, %g5, %o4
        add     %o4, %o5, %o4
        xor     %o4, %g5, %o4        ! ones complement
        add     %l3, %o4, %l3        ! csum += header checksum
! copy the payload words to the output buffer
        add     %l4, %l2, %o0        ! src = slot + off
        mov     %g4, %o1             ! dst = outbuf
        add     %l5, 3, %o2
        srl     %o2, 2, %o2          ! word count
copy:
        ld      [%o0], %o3
        st      %o3, [%o1]
        xor     %l3, %o3, %l3
        add     %o0, 4, %o0
        subcc   %o2, 1, %o2
        bne     copy
        add     %o1, 4, %o1          ! delay slot: advance dst
! advance to the next fragment
        add     %l2, %l5, %l2        ! off += fragLen
        subcc   %l1, %l5, %l1        ! remaining -= fragLen
        bne     frag
        nop
! next packet
        add     %l0, 1, %l0
        cmp     %l0, %i0
        bl      pkt
        nop

        clr     %o0
        mov     %l3, %o1
        halt

        .data
inpool: .space  @POOLBYTES@
outbuf: .space  640
`
