package progs_test

import (
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// TestGoldenChecksums is the central validation of the benchmark suite:
// every assembly program, run on the simulated processor, must produce
// exactly the digest its Go golden model computes.
func TestGoldenChecksums(t *testing.T) {
	for _, b := range progs.All() {
		for _, scale := range []workload.Scale{workload.Tiny, workload.Small} {
			b, scale := b, scale
			t.Run(b.Name+"/"+scale.String(), func(t *testing.T) {
				if testing.Short() && scale == workload.Small {
					t.Skip("short mode")
				}
				t.Parallel()
				prog, err := b.Assemble(scale)
				if err != nil {
					t.Fatalf("assemble: %v", err)
				}
				rep, err := platform.Run(prog, config.Default())
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if rep.ExitCode != 0 {
					t.Fatalf("exit code = %d", rep.ExitCode)
				}
				want := b.Golden(scale)
				if rep.Checksum != want {
					t.Fatalf("checksum = %#x, golden model says %#x", rep.Checksum, want)
				}
				if err := rep.Stats.ConsistencyError(); err != nil {
					t.Errorf("profile imbalance: %v", err)
				}
			})
		}
	}
}

// TestChecksumStableAcrossConfigurations: the microarchitecture changes
// timing, never results. This is the paper's implicit correctness
// assumption — every configuration must compute the same answer.
func TestChecksumStableAcrossConfigurations(t *testing.T) {
	configs := []func(*config.Config){
		func(c *config.Config) { c.DCache.SetSizeKB = 1 },
		func(c *config.Config) { c.DCache.Sets = 4; c.DCache.SetSizeKB = 8; c.DCache.Replacement = config.LRU },
		func(c *config.Config) { c.DCache.Sets = 2; c.DCache.Replacement = config.LRR; c.DCache.LineWords = 4 },
		func(c *config.Config) { c.ICache.SetSizeKB = 1; c.ICache.LineWords = 4 },
		func(c *config.Config) { c.IU.Multiplier = config.MulIterative; c.IU.Divider = config.DivNone },
		func(c *config.Config) { c.IU.Multiplier = config.Mul32x32 },
		func(c *config.Config) { c.IU.ICCHold = false; c.IU.FastJump = false; c.IU.FastDecode = false },
		func(c *config.Config) { c.IU.LoadDelay = 2; c.IU.RegWindows = 32 },
	}
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := b.Assemble(workload.Tiny)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			want := b.Golden(workload.Tiny)
			for i, mutate := range configs {
				cfg := config.Default()
				mutate(&cfg)
				rep, err := platform.Run(prog, cfg)
				if err != nil {
					t.Fatalf("config %d: %v", i, err)
				}
				if rep.Checksum != want {
					t.Errorf("config %d (%v): checksum %#x, want %#x", i, cfg.DiffBase(), rep.Checksum, want)
				}
			}
		})
	}
}

// TestWorkloadSensitivities verifies each benchmark has the memory/compute
// character the paper describes (Section 2.5).
func TestWorkloadSensitivities(t *testing.T) {
	t.Parallel()
	cycles := func(t *testing.T, name string, mutate func(*config.Config)) uint64 {
		t.Helper()
		b, ok := progs.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		prog, err := b.Assemble(workload.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default()
		if mutate != nil {
			mutate(&cfg)
		}
		rep, err := platform.Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles()
	}

	t.Run("arith is not data intensive", func(t *testing.T) {
		base := cycles(t, "arith", nil)
		big := cycles(t, "arith", func(c *config.Config) { c.DCache.SetSizeKB = 32 })
		if base != big {
			t.Errorf("arith cycles changed with dcache size: %d vs %d (paper Figure 4: no effect)", base, big)
		}
	})
	t.Run("arith needs the divider", func(t *testing.T) {
		base := cycles(t, "arith", nil)
		nodiv := cycles(t, "arith", func(c *config.Config) { c.IU.Divider = config.DivNone })
		if nodiv <= base {
			t.Errorf("arith without a divider should be much slower: %d vs %d", nodiv, base)
		}
	})
	t.Run("blastn gains from m32x32", func(t *testing.T) {
		base := cycles(t, "blastn", nil)
		fast := cycles(t, "blastn", func(c *config.Config) { c.IU.Multiplier = config.Mul32x32 })
		if fast >= base {
			t.Errorf("m32x32 should speed up blastn: %d vs %d", fast, base)
		}
	})
	t.Run("drr gains from m32x32", func(t *testing.T) {
		base := cycles(t, "drr", nil)
		fast := cycles(t, "drr", func(c *config.Config) { c.IU.Multiplier = config.Mul32x32 })
		if fast >= base {
			t.Errorf("m32x32 should speed up drr: %d vs %d", fast, base)
		}
	})
	t.Run("blastn and drr do not divide", func(t *testing.T) {
		for _, name := range []string{"blastn", "drr", "frag"} {
			base := cycles(t, name, nil)
			nodiv := cycles(t, name, func(c *config.Config) { c.IU.Divider = config.DivNone })
			if base != nodiv {
				t.Errorf("%s should not use the divider: %d vs %d", name, base, nodiv)
			}
		}
	})
	t.Run("icc hold off helps", func(t *testing.T) {
		for _, name := range []string{"blastn", "arith"} {
			base := cycles(t, name, nil)
			off := cycles(t, name, func(c *config.Config) { c.IU.ICCHold = false })
			if off >= base {
				t.Errorf("%s: disabling ICC hold should help: %d vs %d", name, off, base)
			}
		}
	})
}

// TestDCacheSensitivityAtScale needs the Small working sets; it checks the
// capacity crossover the paper's Figure 2/4 dcache study rests on.
func TestDCacheSensitivityAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	run := func(t *testing.T, name string, setKB int) uint64 {
		t.Helper()
		b, _ := progs.ByName(name)
		prog, err := b.Assemble(workload.Small)
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.Default()
		cfg.DCache.SetSizeKB = setKB
		rep, err := platform.Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles()
	}
	for _, name := range []string{"blastn", "drr", "frag"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			small, large := run(t, name, 4), run(t, name, 32)
			if large >= small {
				t.Errorf("%s: 32KB dcache (%d cycles) should beat 4KB (%d)", name, large, small)
			}
		})
	}
}

func TestSourceSubstitution(t *testing.T) {
	for _, b := range progs.All() {
		src, err := b.Source(workload.Tiny)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if len(src) == 0 {
			t.Errorf("%s: empty source", b.Name)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := progs.Names()
	want := []string{"blastn", "drr", "frag", "arith", "mix"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
	if _, ok := progs.ByName("BLASTN"); !ok {
		t.Error("ByName should be case-insensitive")
	}
	if _, ok := progs.ByName("nope"); ok {
		t.Error("ByName should miss unknown benchmarks")
	}
}

func TestAssembleCaching(t *testing.T) {
	b, _ := progs.ByName("arith")
	p1, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Assemble(workload.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Assemble should cache per scale")
	}
}
