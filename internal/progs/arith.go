package progs

import "liquidarch/internal/workload"

// Arith reproduces the paper's Benchmark IV: the BYTE-style arithmetic
// kernel — addition, multiplication and division in a tight register-only
// loop. It is deliberately not memory intensive (the paper's Figure 4
// shows the data cache has no effect on it), so its runtime is governed by
// the multiplier and divider options.
var Arith = register(&Benchmark{
	Name:        "arith",
	Description: "BYTE arithmetic kernel: add/multiply/divide, register-only",
	source:      arithSource,
	params:      arithParams,
	golden:      arithGolden,
})

type arithConfig struct {
	iters uint32
}

func arithConfigFor(scale workload.Scale) arithConfig {
	switch scale {
	case workload.Tiny:
		return arithConfig{iters: 2000}
	case workload.Small:
		return arithConfig{iters: 100_000}
	case workload.Medium:
		return arithConfig{iters: 500_000}
	default: // Paper
		return arithConfig{iters: 15_000_000}
	}
}

func arithParams(scale workload.Scale) map[string]uint32 {
	return map[string]uint32{"ITERS": arithConfigFor(scale).iters}
}

// arithGolden mirrors the assembly exactly.
func arithGolden(scale workload.Scale) uint32 {
	c := arithConfigFor(scale)
	b := uint32(7)
	cc := uint32(13)
	a := uint32(5)
	d := uint32(0x12345)
	e := uint32(9)
	var csum uint32
	for n := c.iters; n != 0; n-- {
		a += b * cc
		d += a
		q := d / e
		csum ^= q
		csum += b
		b = (b + 3) & 255
		b |= 1
		e = (e + 7) & 63
		e |= 5
		d = q
	}
	return csum
}

const arithSource = `
! BYTE Arith: arithmetic throughput kernel.
! Register-only loop of multiply, accumulate and divide; operand registers
! are perturbed each iteration (kept odd/nonzero) so no operation folds to
! a constant. Digest in %o1 at halt.

        .text
start:
        mov     7, %l0               ! b
        mov     13, %l1              ! c
        mov     5, %l2               ! a
        set     0x12345, %l3         ! d
        mov     9, %l4               ! e
        clr     %l5                  ! csum
        set     @ITERS@, %i1
loop:
        umul    %l0, %l1, %o0        ! b*c
        add     %l2, %o0, %l2        ! a += b*c
        add     %l3, %l2, %l3        ! d += a
        wr      %g0, %y              ! clear Y for the 32-bit divide
        udiv    %l3, %l4, %o1        ! q = d / e
        xor     %l5, %o1, %l5        ! csum ^= q
        add     %l5, %l0, %l5        ! csum += b
        add     %l0, 3, %l0          ! perturb b
        and     %l0, 255, %l0
        or      %l0, 1, %l0
        add     %l4, 7, %l4          ! perturb e
        and     %l4, 63, %l4
        or      %l4, 5, %l4
        mov     %o1, %l3             ! d = q
        subcc   %i1, 1, %i1
        bne     loop
        nop

        clr     %o0
        mov     %l5, %o1
        halt
`
