package progs

import "liquidarch/internal/workload"

// Mix is a deliberately phase-structured kernel added for the per-phase
// tuning study: three back-to-back loop nests with conflicting
// microarchitectural demands, so no single configuration is optimal for
// the whole run.
//
//  1. fill  — sequential stores of LCG words over a large buffer
//     (write-buffer bound, dcache-neutral: write-through, no allocate);
//  2. scan  — sequential word loads over the same buffer (streaming:
//     long cache lines amortize the fill lead time, so 8-word lines —
//     the default — beat 4-word lines);
//  3. probe — pseudo-random word loads over the buffer (at the larger
//     scales the buffer dwarfs every cache, so nearly every probe
//     misses and *short* 4-word lines win: each miss pays the line
//     fill).
//
// The scan and probe phases therefore want opposite values of the same
// at-most-one decision group (dcache line size), which is exactly the
// situation where one reconfiguration mid-run beats any single
// configuration — the workload examples/phase_tuning demonstrates.
var Mix = register(&Benchmark{
	Name:        "mix",
	Description: "phase-structured memory kernel: fill, sequential stream, random probes",
	source:      mixSource,
	params:      mixParams,
	golden:      mixGolden,
})

type mixConfig struct {
	bufBytes uint32 // power of two
	passes   uint32 // sequential scan passes
	probes   uint32 // random probes
	seed     uint32
}

func mixConfigFor(scale workload.Scale) mixConfig {
	switch scale {
	case workload.Tiny:
		return mixConfig{bufBytes: 32768, passes: 1, probes: 4000, seed: 20260727}
	case workload.Small:
		return mixConfig{bufBytes: 524288, passes: 2, probes: 200_000, seed: 20260727}
	case workload.Medium:
		return mixConfig{bufBytes: 524288, passes: 6, probes: 600_000, seed: 20260727}
	default: // Paper
		return mixConfig{bufBytes: 524288, passes: 40, probes: 4_000_000, seed: 20260727}
	}
}

func mixParams(scale workload.Scale) map[string]uint32 {
	c := mixConfigFor(scale)
	return map[string]uint32{
		"BUF_BYTES": c.bufBytes,
		"WORDS":     c.bufBytes / 4,
		"SPASSES":   c.passes,
		"PROBES":    c.probes,
		"OFFMASK":   (c.bufBytes - 1) &^ 3,
		"SEED":      c.seed,
	}
}

// mixGolden mirrors the assembly exactly: same LCG stream, same offsets,
// same accumulation order.
func mixGolden(scale workload.Scale) uint32 {
	c := mixConfigFor(scale)
	g := workload.NewLCG(c.seed)
	words := c.bufBytes / 4
	buf := make([]uint32, words)
	for i := range buf {
		buf[i] = g.Next()
	}
	var csum uint32
	for p := uint32(0); p < c.passes; p++ {
		for i := range buf {
			csum ^= buf[i]
		}
	}
	offMask := (c.bufBytes - 1) &^ 3
	for j := uint32(0); j < c.probes; j++ {
		off := (g.Next() >> 5) & offMask
		csum += buf[off/4]
		csum ^= off
	}
	return csum
}

const mixSource = `
! Mix: phase-structured memory kernel (fill -> scan -> probe).
! The buffer is filled with LCG words, streamed sequentially SPASSES
! times, then probed at pseudo-random word offsets PROBES times.
! Digest in %o1 at halt.

        .equ    LCG_A, 1103515245
        .equ    LCG_C, 12345
        .equ    LCG_MASK, 0x7FFFFFFF

        .text
start:
        set     LCG_A, %g1
        set     LCG_MASK, %g2
        set     LCG_C, %g7
        set     @SEED@, %l7          ! LCG state
        set     buf, %l5
        clr     %l6                  ! csum

! ---- phase 1: sequential fill (stores) ----
        set     @WORDS@, %o3
        mov     %l5, %o2
fill:
        umul    %l7, %g1, %l7
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        st      %l7, [%o2]
        add     %o2, 4, %o2
        subcc   %o3, 1, %o3
        bne     fill
        nop

! ---- phase 2: sequential scan (streaming loads) ----
        set     @SPASSES@, %o4
spass:
        mov     %l5, %o2
        set     @WORDS@, %o3
scan:
        ld      [%o2], %o0
        xor     %l6, %o0, %l6
        add     %o2, 4, %o2
        subcc   %o3, 1, %o3
        bne     scan
        nop
        subcc   %o4, 1, %o4
        bne     spass
        nop

! ---- phase 3: random probes ----
        set     @PROBES@, %o4
        set     @OFFMASK@, %o5
probe:
        umul    %l7, %g1, %l7
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        srl     %l7, 5, %o1
        and     %o1, %o5, %o1        ! word-aligned offset into buf
        ld      [%l5+%o1], %o0
        add     %l6, %o0, %l6
        xor     %l6, %o1, %l6
        subcc   %o4, 1, %o4
        bne     probe
        nop

        clr     %o0
        mov     %l6, %o1
        halt

        .data
buf:    .space  @BUF_BYTES@
`
