// Package progs contains the paper's four benchmark applications
// implemented in SPARC V8 assembly for direct execution on the simulated
// LEON2 (no operating system, no stdio — exactly as the paper describes),
// together with behaviour-equivalent Go golden models used to validate the
// assembly bit-for-bit.
//
// Benchmarks (paper Section 2.5):
//
//   - BLASTN — seed-and-extend DNA word matching (computation and
//     memory-access intensive)
//   - DRR — CommBench deficit round robin fair scheduler (computation
//     intensive, multiply-heavy)
//   - FRAG — CommBench IP packet fragmentation with header checksums
//   - Arith — BYTE arithmetic kernel (add/multiply/divide, not memory
//     intensive)
//
// Every program finishes with %o0 = 0 and its result digest in %o1; the
// golden model computes the same digest in Go over the same LCG input
// stream (package workload).
package progs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/workload"
)

// Benchmark is one application: parameterised assembly source plus its
// golden model.
type Benchmark struct {
	// Name is the short identifier: blastn, drr, frag, arith, mix.
	Name string
	// Description is a one-line summary for tool output.
	Description string

	source string
	params func(workload.Scale) map[string]uint32
	golden func(workload.Scale) uint32

	mu    sync.Mutex
	cache map[workload.Scale]*asm.Program
}

// Source returns the assembly text for the given scale, with all @PARAM@
// placeholders substituted.
func (b *Benchmark) Source(scale workload.Scale) (string, error) {
	src := b.source
	for name, value := range b.params(scale) {
		src = strings.ReplaceAll(src, "@"+name+"@", fmt.Sprintf("%d", value))
	}
	if i := strings.Index(src, "@"); i >= 0 {
		end := i + 20
		if end > len(src) {
			end = len(src)
		}
		return "", fmt.Errorf("progs: %s: unsubstituted parameter near %q", b.Name, src[i:end])
	}
	return src, nil
}

// Assemble returns the assembled program for the given scale, cached.
func (b *Benchmark) Assemble(scale workload.Scale) (*asm.Program, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.cache[scale]; ok {
		return p, nil
	}
	src, err := b.Source(scale)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("progs: assembling %s: %w", b.Name, err)
	}
	if b.cache == nil {
		b.cache = make(map[workload.Scale]*asm.Program)
	}
	b.cache[scale] = p
	return p, nil
}

// Golden computes the expected checksum (%o1 at halt) for the given scale
// using the Go reference implementation.
func (b *Benchmark) Golden(scale workload.Scale) uint32 { return b.golden(scale) }

// registry of all benchmarks, populated by the per-benchmark files.
var registry = map[string]*Benchmark{}

func register(b *Benchmark) *Benchmark {
	registry[b.Name] = b
	return b
}

// ByName looks a benchmark up by its short name.
func ByName(name string) (*Benchmark, bool) {
	b, ok := registry[strings.ToLower(name)]
	return b, ok
}

// All returns the benchmarks in the paper's order — BLASTN, DRR, FRAG,
// Arith — followed by the reproduction's additions (mix).
func All() []*Benchmark {
	order := map[string]int{"blastn": 0, "drr": 1, "frag": 2, "arith": 3, "mix": 4}
	out := make([]*Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i].Name] < order[out[j].Name] })
	return out
}

// Names returns the benchmark names in paper order.
func Names() []string {
	var names []string
	for _, b := range All() {
		names = append(names, b.Name)
	}
	return names
}
