package progs

import "liquidarch/internal/workload"

// DRR reproduces the paper's Benchmark II: the CommBench deficit round
// robin fair scheduler. 32 flows hold circular queues of packet lengths;
// each round a flow's deficit grows by the quantum and head packets are
// served while they fit, the freed slot being refilled with a new
// LCG-generated packet. Serving a packet also prices its transmission
// (multiply) and digests its 64-byte record from a large record ring —
// the ring's reuse distance is what makes DRR reward a large data cache,
// and the two multiplies per packet are what make it reward the m32x32
// multiplier, matching the paper's Figure 5 selections.
var DRR = register(&Benchmark{
	Name:        "drr",
	Description: "CommBench deficit round robin scheduler (compute, multiply-heavy)",
	source:      drrSource,
	params:      drrParams,
	golden:      drrGolden,
})

type drrConfig struct {
	nflows, qcap, npkt, quantum, poolRecs, seed uint32
}

func drrConfigFor(scale workload.Scale) drrConfig {
	switch scale {
	case workload.Tiny:
		return drrConfig{nflows: 8, qcap: 16, npkt: 2000, quantum: 1500, poolRecs: 64, seed: 777}
	case workload.Small:
		return drrConfig{nflows: 32, qcap: 128, npkt: 50000, quantum: 1500, poolRecs: 384, seed: 777}
	case workload.Medium:
		return drrConfig{nflows: 32, qcap: 128, npkt: 250000, quantum: 1500, poolRecs: 384, seed: 777}
	default: // Paper
		return drrConfig{nflows: 32, qcap: 128, npkt: 3_200_000, quantum: 1500, poolRecs: 384, seed: 777}
	}
}

func log2u(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func drrParams(scale workload.Scale) map[string]uint32 {
	c := drrConfigFor(scale)
	return map[string]uint32{
		"NFLOWS":     c.nflows,
		"FLOWMASK":   c.nflows - 1,
		"QCAP":       c.qcap,
		"QMASK":      c.qcap - 1,
		"QSHIFTB":    log2u(c.qcap * 4), // f -> byte offset of its queue
		"NPKT":       c.npkt,
		"QUANTUM":    c.quantum,
		"POOLRECS":   c.poolRecs,
		"SEED":       c.seed,
		"QUEUEBYTES": c.nflows * c.qcap * 4,
		"FLOWBYTES":  c.nflows * 16,
		"POOLBYTES":  c.poolRecs * 64,
		"QWORDS":     c.nflows * c.qcap,
		"POOLWORDS":  c.poolRecs * 16,
	}
}

// drrGolden mirrors the assembly exactly.
func drrGolden(scale workload.Scale) uint32 {
	c := drrConfigFor(scale)
	g := workload.NewLCG(c.seed)

	queues := make([]uint32, c.nflows*c.qcap)
	for i := range queues {
		queues[i] = 64 + (g.Next()>>8)&0x3FF
	}
	pool := make([]uint32, c.poolRecs*16)
	for i := range pool {
		pool[i] = g.Next()
	}
	deficit := make([]uint32, c.nflows)
	head := make([]uint32, c.nflows)

	var csum uint32
	served := uint32(0)
	poolIdx := uint32(0)
	f := uint32(0)
	for {
		d := deficit[f] + c.quantum
		for {
			h := head[f]
			size := queues[f*c.qcap+h]
			if size > d {
				break
			}
			d -= size
			served++
			csum += size
			queues[f*c.qcap+h] = 64 + (g.Next()>>8)&0x3FF
			head[f] = (h + 1) & (c.qcap - 1)
			csum += size * 13 // transmission cost
			for k := uint32(0); k < 16; k++ {
				csum ^= pool[poolIdx*16+k]
			}
			poolIdx++
			if poolIdx == c.poolRecs {
				poolIdx = 0
			}
			if served >= c.npkt {
				return csum
			}
		}
		deficit[f] = d
		f = (f + 1) & (c.nflows - 1)
	}
}

const drrSource = `
! CommBench DRR: deficit round robin packet scheduler.
! NFLOWS circular queues of packet lengths, QUANTUM added per visit, head
! packets served while they fit the deficit. Serving a packet refills the
! slot from the LCG, prices transmission (umul) and digests the packet's
! 64-byte record from the record ring. Digest in %o1 at halt.

        .equ    LCG_A, 1103515245
        .equ    LCG_C, 12345
        .equ    LCG_MASK, 0x7FFFFFFF

        .text
start:
        set     LCG_A, %g1
        set     LCG_MASK, %g2
        set     LCG_C, %g7
        set     @SEED@, %l7
        set     flows, %g3
        set     queues, %g4
        set     pool, %g5

! ---- fill every queue with initial packet lengths ----
        mov     %g4, %o2
        set     @QWORDS@, %o3
qfill:
        umul    %l7, %g1, %l7
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        srl     %l7, 8, %o0
        and     %o0, 0x3FF, %o0
        add     %o0, 64, %o0
        st      %o0, [%o2]
        add     %o2, 4, %o2
        subcc   %o3, 1, %o3
        bne     qfill
        nop

! ---- fill the record ring ----
        mov     %g5, %o2
        set     @POOLWORDS@, %o3
pfill:
        umul    %l7, %g1, %l7
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        st      %l7, [%o2]
        add     %o2, 4, %o2
        subcc   %o3, 1, %o3
        bne     pfill
        nop

! ---- scheduler main loop ----
        set     @NPKT@, %i0
        set     @QUANTUM@, %i1
        set     @QMASK@, %i2
        set     @POOLRECS@, %i3
        set     @FLOWMASK@, %i4
        clr     %l0                  ! flow index
        clr     %l1                  ! packets served
        clr     %l2                  ! csum
        clr     %l3                  ! record ring index
round:
        sll     %l0, 4, %o0
        add     %g3, %o0, %l5        ! flow struct
        ld      [%l5], %l4           ! deficit
        sll     %l0, @QSHIFTB@, %o0
        add     %g4, %o0, %l6        ! this flow's queue base
        add     %l4, %i1, %l4        ! deficit += quantum
serve:
        ld      [%l5+4], %o1         ! head index
        sll     %o1, 2, %o2
        add     %l6, %o2, %o2        ! &queue[head]
        ld      [%o2], %o3           ! head packet size
        cmp     %o3, %l4
        bgu     flowdone             ! does not fit the deficit
        nop
        sub     %l4, %o3, %l4
        add     %l1, 1, %l1          ! served++
        add     %l2, %o3, %l2        ! csum += size
! refill the freed slot with a new packet
        umul    %l7, %g1, %l7
        add     %l7, %g7, %l7
        and     %l7, %g2, %l7
        srl     %l7, 8, %o4
        and     %o4, 0x3FF, %o4
        add     %o4, 64, %o4
        st      %o4, [%o2]
        add     %o1, 1, %o1
        and     %o1, %i2, %o1
        st      %o1, [%l5+4]         ! head = (head+1) & QMASK
! transmission cost
        umul    %o3, 13, %o5
        add     %l2, %o5, %l2
! digest the packet record (64 bytes, sequential)
        sll     %l3, 6, %o5
        add     %g5, %o5, %o5
        ld      [%o5], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+4], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+8], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+12], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+16], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+20], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+24], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+28], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+32], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+36], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+40], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+44], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+48], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+52], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+56], %g6
        xor     %l2, %g6, %l2
        ld      [%o5+60], %g6
        xor     %l2, %g6, %l2
        add     %l3, 1, %l3
        cmp     %l3, %i3
        bne     poolok
        nop
        clr     %l3
poolok:
        cmp     %l1, %i0
        bl      serve                ! more packets to serve on this flow
        nop
        ba      done
        nop
flowdone:
        st      %l4, [%l5]           ! save the deficit
        add     %l0, 1, %l0
        and     %l0, %i4, %l0
        ba      round
        nop
done:
        clr     %o0
        mov     %l2, %o1
        halt

        .data
flows:  .space  @FLOWBYTES@
queues: .space  @QUEUEBYTES@
pool:   .space  @POOLBYTES@
`
