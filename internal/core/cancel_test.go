package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/workload"
)

// cancellingProvider cancels the run's context after a fixed number of
// measurements, simulating a caller pulling the plug mid-build.
type cancellingProvider struct {
	inner  measure.Provider
	cancel context.CancelFunc
	after  int64
	seen   atomic.Int64
}

func (p *cancellingProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if p.seen.Add(1) > p.after {
		p.cancel()
	}
	return p.inner.Measure(ctx, prog, cfg, opts)
}

func TestBuildModelAbortsOnCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tuner := tinyTuner(config.FullSpace())
	// A fresh (uncached) provider ensures the cancelled context is what
	// the measurement path observes, not a cache hit.
	tuner.Provider = measure.NewCache(measure.Simulator{}, 8)
	_, err := tuner.BuildModel(ctx, mustBenchmark(t, "blastn"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildModel with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestBuildModelAbortsPromptlyMidBuild(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tuner := &core.Tuner{Space: config.FullSpace(), Scale: workload.Tiny, Workers: 2}
	tuner.Provider = &cancellingProvider{
		inner:  measure.NewCache(measure.Simulator{}, 64),
		cancel: cancel,
		after:  3,
	}
	start := time.Now()
	_, err := tuner.BuildModel(ctx, mustBenchmark(t, "arith"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildModel cancelled mid-build: err = %v, want context.Canceled", err)
	}
	// "Promptly" = a handful of in-flight tiny runs at most, not the
	// remaining ~49 of the 52-variable space.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled BuildModel took %v", elapsed)
	}
}
