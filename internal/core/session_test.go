package core_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// countedSimulator counts the simulations that actually execute (below
// every cache layer).
type countedSimulator struct {
	calls atomic.Int64
}

func (c *countedSimulator) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	c.calls.Add(1)
	return measure.Simulator{}.Measure(ctx, prog, cfg, opts)
}

func newCountedSession(t *testing.T) (*core.Session, *countedSimulator) {
	t.Helper()
	sim := &countedSimulator{}
	sess := core.NewSession(core.SessionOptions{Provider: measure.NewCache(sim, 512)})
	return sess, sim
}

// TestSessionSharesModelAcrossWeights is the shared-model-layer
// acceptance test: a second request for the same app and space under
// different weights must perform zero new simulations and zero model
// builds — one build, N solves.
func TestSessionSharesModelAcrossWeights(t *testing.T) {
	sess, sim := newCountedSession(t)
	req := core.Request{App: "arith", Scale: workload.Tiny, Space: config.DcacheGeometrySpace()}

	req.Weights = core.RuntimeWeights()
	first, err := sess.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	simsAfterFirst := sim.calls.Load()
	if st := sess.ModelStats(); st.Builds != 1 || st.Misses != 1 {
		t.Fatalf("after first tune: %+v, want 1 build / 1 miss", st)
	}

	req.Weights = core.ResourceWeights()
	second, err := sess.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.calls.Load() - simsAfterFirst; d != 0 {
		t.Errorf("second weighting ran %d new simulations, want 0", d)
	}
	st := sess.ModelStats()
	if st.Builds != 1 {
		t.Errorf("second weighting rebuilt the model: %d builds", st.Builds)
	}
	if st.Hits != 1 {
		t.Errorf("model layer hits = %d, want 1", st.Hits)
	}
	if first.Weights == second.Weights {
		t.Error("reports should carry their own weights")
	}
	if first.Base != second.Base {
		t.Error("same model must yield the same base cost point")
	}
}

// TestSessionSingleflightsConcurrentBuilds: concurrent Tune calls with
// the same model identity must coalesce onto one build.
func TestSessionSingleflightsConcurrentBuilds(t *testing.T) {
	sess, _ := newCountedSession(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sess.Tune(context.Background(), core.Request{
				App:   "arith",
				Scale: workload.Tiny,
				Space: config.DcacheGeometrySpace(),
				// Different weights per caller: same model key, distinct
				// solves.
				Weights: core.Weights{W1: 100, W2: float64(i)},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tune %d: %v", i, err)
		}
	}
	st := sess.ModelStats()
	if st.Builds != 1 {
		t.Errorf("concurrent tunes performed %d builds, want 1 (stats %+v)", st.Builds, st)
	}
	if st.Hits+st.Misses != n {
		t.Errorf("model layer saw %d lookups, want %d", st.Hits+st.Misses, n)
	}
}

// TestSessionPhaseRunsShareModels: phase runs of one app share the
// phase model set across weightings too.
func TestSessionPhaseRunsShareModels(t *testing.T) {
	sess, sim := newCountedSession(t)
	req := core.Request{
		App:    "arith",
		Scale:  workload.Tiny,
		Space:  config.DcacheGeometrySpace(),
		Phases: &core.PhaseOptions{IntervalInstructions: 10_000},
	}
	if _, err := sess.Tune(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	sims := sim.calls.Load()
	req.Weights = core.ResourceWeights()
	rep, err := sess.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.calls.Load() - sims; d != 0 {
		t.Errorf("second phase weighting ran %d new simulations, want 0", d)
	}
	if st := sess.ModelStats(); st.Builds != 1 || st.Hits != 1 {
		t.Errorf("phase model set not shared: %+v", st)
	}
	if rep.Phases == nil || rep.Validation != nil {
		t.Error("phase report shape wrong")
	}
}

// TestSessionObserverProgress: the observer sees monotonic progress
// ending at total, and a model-layer hit accounts the whole build's
// measurements at once.
func TestSessionObserverProgress(t *testing.T) {
	sess, _ := newCountedSession(t)
	space := config.DcacheGeometrySpace()
	wantTotal := 1 + space.Len() + 1

	var mu sync.Mutex
	var dones []int
	var totals []int
	obs := core.ObserverFunc(func(done, total int) {
		mu.Lock()
		dones = append(dones, done)
		totals = append(totals, total)
		mu.Unlock()
	})
	req := core.Request{App: "arith", Scale: workload.Tiny, Space: space, Observer: obs}
	if _, err := sess.Tune(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	max := 0
	for _, d := range dones {
		if d > max {
			max = d
		}
	}
	for _, tot := range totals {
		if tot != wantTotal {
			t.Fatalf("observer total %d, want %d", tot, wantTotal)
		}
	}
	mu.Unlock()
	if max != wantTotal {
		t.Errorf("final progress %d of %d", max, wantTotal)
	}

	// Warm run: the model comes from the layer; progress must still
	// reach total (build jump + validation).
	mu.Lock()
	dones = dones[:0]
	mu.Unlock()
	if _, err := sess.Tune(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	max = 0
	for _, d := range dones {
		if d > max {
			max = d
		}
	}
	mu.Unlock()
	if max != wantTotal {
		t.Errorf("warm-run progress %d of %d", max, wantTotal)
	}
}

// TestSessionRequestValidation covers the request-resolution errors and
// defaults.
func TestSessionRequestValidation(t *testing.T) {
	sess := core.NewSession(core.SessionOptions{})
	if _, err := sess.Tune(context.Background(), core.Request{App: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown app") {
		t.Errorf("unknown app error = %v", err)
	}
	if _, err := sess.Tune(context.Background(), core.Request{
		App:    "arith",
		Model:  &core.Model{},
		Phases: &core.PhaseOptions{},
	}); err == nil || !strings.Contains(err.Error(), "phase") {
		t.Errorf("model+phases error = %v", err)
	}
}

// TestSessionPrebuiltModel: a request carrying a loaded model skips
// measuring and solves it directly (the CLI's -load-model path).
func TestSessionPrebuiltModel(t *testing.T) {
	sess, sim := newCountedSession(t)
	b, _ := progs.ByName("arith")
	tuner := &core.Tuner{Space: config.DcacheGeometrySpace(), Scale: workload.Tiny, Provider: sess.Provider()}
	model, err := tuner.BuildModel(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	sims := sim.calls.Load()

	rep, err := sess.Tune(context.Background(), core.Request{
		App:   "arith",
		Scale: workload.Tiny,
		Model: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := sess.ModelStats(); st.Builds != 0 || st.Misses != 0 {
		t.Errorf("pre-built model touched the model layer: %+v", st)
	}
	if d := sim.calls.Load() - sims; d != 0 {
		t.Errorf("pre-built model ran %d new simulations (validation should replay the cache)", d)
	}
	if rep.Validation == nil || rep.Artifacts.Model != model {
		t.Error("report not assembled from the pre-built model")
	}
}
