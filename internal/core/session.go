package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"liquidarch/internal/binlp"
	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/measure"
	"liquidarch/internal/obs"
	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Session is the unified tuning service: one Request→Report pipeline
// behind a single entry point, Tune. A Session owns the measurement
// provider, the worker-pool defaults and a shared model layer — a
// bounded, singleflighted cache of built perturbation models — so N
// weightings or phase runs of the same application perform exactly one
// model build (the ~52 measurements) and N cheap BINLP solves. The
// autoarch CLI, the autoarchd daemon, the experiment harnesses and the
// examples all construct their Requests against one long-lived Session.
//
// A Session is safe for concurrent use; concurrent Tune calls for the
// same (program, space, scale, interval) join one model build.
type Session struct {
	provider     measure.Provider
	workers      int
	solver       binlp.Options
	models       *modelCache
	store        *ModelStore
	measureStore *measure.Store
	autoWorkers  bool
}

// SessionOptions configures a Session. The zero value is usable: the
// process-wide shared measurement cache, NumCPU measurement workers,
// default solver settings and a DefaultModelCacheEntries-bounded model
// layer.
type SessionOptions struct {
	// Provider supplies the measurements; nil means the process-wide
	// shared bounded cache over the simulator (measure.Default()). A
	// serving system injects its own stack here so concurrent tuning
	// jobs share one cache.
	Provider measure.Provider
	// Workers bounds the parallel measurement runs of each request that
	// does not set its own (default NumCPU).
	Workers int
	// SolverOptions tunes the BINLP solver.
	SolverOptions binlp.Options
	// ModelCacheEntries bounds the shared model layer (<= 0 means
	// DefaultModelCacheEntries).
	ModelCacheEntries int
	// ModelStore, when set, makes the model layer durable: every
	// successfully built model set is spilled to an on-disk artifact, and
	// a model-cache miss tries the store before rebuilding — a restarted
	// or sibling replica skips both the ~52 measurement reads and the
	// rebuild. Corrupt or mismatched artifacts read as misses; failed
	// builds are never spilled.
	ModelStore *ModelStore
	// MeasureStore, when set alongside ModelStore, receives a set
	// manifest (measure.Store.SaveSet) for every spilled model set,
	// naming the measurement entries the build consumed — the store's GC
	// then evicts a build's entries as one cohesive unit instead of
	// breaking warm sets one file at a time.
	MeasureStore *measure.Store
	// AutoWorkers picks each request's measurement parallelism split —
	// concurrent runs × intra-run replay workers — from a one-shot
	// calibration of the host (measure.AutoPlan). It applies only when
	// neither the request nor Workers names an explicit value.
	AutoWorkers bool
}

// DefaultModelCacheEntries bounds a session's model layer when
// SessionOptions does not say otherwise. A model set is a few kilobytes
// (52 entries plus per-phase copies), so the default keeps every
// workload a long-lived daemon plausibly serves resident.
const DefaultModelCacheEntries = 128

// NewSession builds a session over the given options.
func NewSession(opts SessionOptions) *Session {
	p := opts.Provider
	if p == nil {
		p = measure.Default()
	}
	return &Session{
		provider:     p,
		workers:      opts.Workers,
		solver:       opts.SolverOptions,
		models:       newModelCache(opts.ModelCacheEntries),
		store:        opts.ModelStore,
		measureStore: opts.MeasureStore,
		autoWorkers:  opts.AutoWorkers,
	}
}

// Provider returns the session's measurement provider, so sibling
// measurement fan-outs (exhaustive sweeps, custom validations) share
// the session's cache stack.
func (s *Session) Provider() measure.Provider { return s.provider }

// ModelStats returns a snapshot of the shared model layer's counters,
// including the durable tier's disk traffic when a ModelStore is wired.
func (s *Session) ModelStats() ModelCacheStats {
	st := s.models.stats()
	if s.store != nil {
		st.DiskHits = s.store.hits.Load()
		st.DiskMisses = s.store.misses.Load()
		st.Spills = s.store.spills.Load()
	}
	return st
}

// Tune runs one tuning request end to end and assembles its Report:
// resolve the request, obtain the model(s) — from the shared model
// layer when an equivalent build already ran, measuring through the
// session's provider otherwise — solve the BINLP under the request's
// weights, and validate (plain runs) or weigh the reconfiguration
// schedule (phase runs). Cancelling ctx aborts the run promptly with
// the context's error.
func (s *Session) Tune(ctx context.Context, req Request) (*Report, error) {
	b, space, w, err := req.resolve()
	if err != nil {
		return nil, err
	}
	phased := req.Phases != nil
	// The "tune" root span. When no tracer rides the context (the
	// default), every span below is a nil no-op and the pipeline runs
	// allocation-free through the obs layer.
	ctx, tuneSpan := obs.Start(ctx, "tune")
	if tuneSpan != nil {
		tuneSpan.Set(
			obs.String("app", req.App),
			obs.String("scale", req.Scale.String()),
			obs.Int("space_vars", int64(space.Len())),
			obs.Bool("phases", phased))
	}
	defer tuneSpan.End()
	var popts PhaseOptions
	if phased {
		popts = req.Phases.normalized()
	}

	workers := req.workers(s.workers)
	intraRun := 0
	if s.autoWorkers && workers == 0 {
		// Neither the request nor the session named a split: plan it from
		// the calibrated host parallelism and this request's sweep width.
		plan := measure.AutoPlan(1 + space.Len())
		workers, intraRun = plan.SweepWorkers, plan.IntraRunWorkers
	}
	prog := &progressCounter{obs: req.Observer, total: tuneTotal(space, req)}
	tuner := &Tuner{
		Space: space,
		Scale: req.Scale,
		// The per-measurement hook fires on cache and store hits too —
		// the layers below answered them, the request still consumed them.
		Provider:           measure.Observed{Inner: s.provider, OnMeasure: prog.step},
		Workers:            workers,
		IntraRunWorkers:    intraRun,
		SolverOptions:      s.solver,
		SampleInstructions: req.SampleInstructions,
	}

	// The "model" stage span covers obtaining the model set however it
	// is answered; its "source" attribute says which tier did (pre-built
	// | shared | disk | build).
	mctx, modelSpan := obs.Start(ctx, "model")
	var set *modelSet
	if req.Model != nil {
		set = &modelSet{models: []*Model{req.Model}, baseRes: req.Model.BaseResources}
		modelSpan.Set(obs.String("source", "pre-built"))
		modelSpan.End()
	} else {
		program, err := b.Assemble(req.Scale)
		if err != nil {
			modelSpan.End()
			return nil, err
		}
		key := modelKey{
			prog:   measure.Fingerprint(program),
			space:  space.Fingerprint(),
			scale:  req.Scale,
			sample: req.SampleInstructions,
		}
		if phased {
			key.interval = popts.IntervalInstructions
			key.threshold = popts.threshold()
		}
		var shared bool
		var fromDisk atomic.Bool
		set, shared, err = s.models.get(mctx, key, func() (*modelSet, bool, error) {
			// Disk before rebuild: a completed build spilled by an earlier
			// incarnation (or a sibling replica) answers the miss without
			// a single measurement — and without counting as a build.
			if s.store != nil {
				if ds, ok := s.store.load(key); ok {
					fromDisk.Store(true)
					return ds, false, nil
				}
			}
			bt := *tuner
			var rec *measure.KeyRecorder
			if s.store != nil && s.measureStore != nil {
				// Record the measurement keys the build consumes (cache
				// hits included) so the spill can name its cohesive set.
				// Validation runs happen outside this closure and stay out.
				rec = measure.NewKeyRecorder(bt.Provider)
				bt.Provider = rec
			}
			var built *modelSet
			if phased {
				ps, perr := buildPhaseSet(mctx, &bt, b, popts)
				if perr != nil {
					return nil, false, perr
				}
				built = ps
			} else {
				m, merr := bt.BuildModel(mctx, b)
				if merr != nil {
					return nil, false, merr
				}
				built = &modelSet{models: []*Model{m}, baseRes: m.BaseResources}
			}
			if s.store != nil {
				// Spill best-effort: a full disk must not fail the tune.
				if serr := s.store.save(key, built); serr == nil && rec != nil {
					_ = s.measureStore.SaveSet(key.artifactID(), rec.Keys())
				}
			}
			return built, true, nil
		})
		if modelSpan != nil {
			switch {
			case err != nil:
				modelSpan.Set(obs.Bool("error", true))
			case shared:
				modelSpan.Set(obs.String("source", "shared"))
			case fromDisk.Load():
				modelSpan.Set(obs.String("source", "disk"))
			default:
				modelSpan.Set(obs.String("source", "build"))
			}
			if err == nil {
				modelSpan.Set(obs.Int("models", int64(len(set.models))))
			}
		}
		modelSpan.End()
		if err != nil {
			return nil, err
		}
		if shared || fromDisk.Load() {
			// The build's measurements were already performed (by an
			// earlier request, a concurrent one we joined, or a finished
			// incarnation whose artifact we loaded): account them to this
			// request's progress in one step.
			prog.jump(1 + space.Len())
		}
	}

	if phased {
		_, solveSpan := obs.Start(ctx, "solve")
		solveSpan.Set(obs.Int("solves", int64(len(set.models))))
		rep, err := phaseReport(set, b, w, popts, tuner)
		solveSpan.End()
		if err != nil {
			return nil, err
		}
		// Replay and online adaptation run after the report is complete:
		// they consume the decision (schedule + per-phase recommendations)
		// and simulate directly, never through the measurement provider,
		// so the model cache and measurement store above are untouched.
		if req.Replay {
			rctx, replaySpan := obs.Start(ctx, "replay")
			err := attachReplay(rctx, rep, b, req, popts)
			replaySpan.End()
			if err != nil {
				return nil, err
			}
		}
		if req.Online {
			octx, onlineSpan := obs.Start(ctx, "online")
			err := attachOnline(octx, rep, b, req, popts)
			onlineSpan.End()
			if err != nil {
				return nil, err
			}
		}
		return rep, nil
	}

	model := set.models[0]
	_, solveSpan := obs.Start(ctx, "solve")
	rec, err := tuner.RecommendFromModel(model, w)
	if solveSpan != nil {
		if err == nil {
			solveSpan.Set(obs.Int("nodes", int64(rec.SolverNodes)), obs.Bool("proven", rec.Proven))
		}
		solveSpan.End()
	}
	if err != nil {
		return nil, err
	}
	var val *Validation
	if !req.SkipValidation {
		vctx, valSpan := obs.Start(ctx, "validate")
		val, err = tuner.Validate(vctx, b, model, rec)
		valSpan.End()
		if err != nil {
			return nil, err
		}
	}
	return NewTuneReport(model, rec, val, req.IncludeModel), nil
}

// TuneBatch runs a batch of requests through the session sequentially
// and returns their reports in order. The point of batching at the
// session level is the shared model layer: requests differing only in
// weights hit the model built by the first one, so an N-weighting batch
// performs one model build (the ~52 measurements) and N solves. Any
// item failing fails the batch — partial batches would silently
// misalign the caller's request↔report pairing.
func (s *Session) TuneBatch(ctx context.Context, reqs []Request) ([]*Report, error) {
	ctx, span := obs.Start(ctx, "batch")
	if span != nil {
		span.Set(obs.Int("items", int64(len(reqs))))
		defer span.End()
	}
	out := make([]*Report, len(reqs))
	for i, req := range reqs {
		rep, err := s.Tune(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("core: batch item %d (%s): %w", i, req.App, err)
		}
		out[i] = rep
	}
	return out, nil
}

// workers resolves the request's measurement parallelism against the
// session default.
func (r Request) workers(sessionDefault int) int {
	if r.Workers > 0 {
		return r.Workers
	}
	return sessionDefault
}

// tuneTotal is the expected measurement count of a request — the Total
// of its progress: the base run plus one per decision variable, plus
// the validation run for plain runs. A pre-built model needs no
// measurements beyond its validation.
func tuneTotal(space *config.Space, req Request) int {
	validations := 0
	if req.Phases == nil && !req.SkipValidation {
		validations = 1
	}
	if req.Model != nil {
		return validations
	}
	return 1 + space.Len() + validations
}

// progressCounter tracks a request's completed measurements and
// forwards them to its observer.
type progressCounter struct {
	obs   Observer
	total int
	done  atomic.Int64
}

// step accounts one completed measurement.
func (p *progressCounter) step() {
	d := int(p.done.Add(1))
	if p.obs != nil {
		p.obs.TuneProgress(d, p.total)
	}
}

// jump raises the completed count to at least n (model-layer hits
// satisfy a whole build's worth of measurements at once).
func (p *progressCounter) jump(n int) {
	for {
		cur := p.done.Load()
		if cur >= int64(n) {
			return
		}
		if p.done.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	if p.obs != nil {
		p.obs.TuneProgress(n, p.total)
	}
}

// modelKey identifies a built model set in the shared model layer. Two
// requests with equal keys measure identical single-change
// configurations and therefore build identical models — the program
// image (SHA-256), decision space (fingerprint), workload scale, sample
// truncation and, for phase runs, the interval length and detection
// threshold all participate; the objective weights deliberately do not
// (models are weight-independent, which is the whole point of sharing).
type modelKey struct {
	prog      string
	space     string
	scale     workload.Scale
	sample    uint64
	interval  uint64
	threshold float64
}

// modelSet is one cached build: the whole-program model, and for phase
// runs the per-phase models plus the detection artifacts the report
// needs (models[1+p] is phase p's).
type modelSet struct {
	done chan struct{}
	err  error

	models       []*Model
	baseRes      fpga.Resources
	trace        *phase.Trace
	baseProfiles []phase.Profile
}

// ModelCacheStats is a point-in-time snapshot of a session's model
// layer.
type ModelCacheStats struct {
	// Hits counts requests answered by a resident (or in-flight) model
	// set; Misses the requests that had to initiate a build.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Builds counts the model builds that actually completed — with N
	// weightings of one application, Builds stays at 1 while Hits grows.
	// A model set loaded from the durable tier does NOT count as a build.
	Builds uint64 `json:"builds"`
	// Entries is the current resident set count, Capacity the bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// DiskHits counts model sets answered by the durable tier's on-disk
	// artifacts, DiskMisses the lookups that fell through to a build, and
	// Spills the completed builds written out. All zero when the session
	// has no ModelStore.
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskMisses uint64 `json:"disk_misses,omitempty"`
	Spills     uint64 `json:"spills,omitempty"`
}

// modelCache is the shared model layer: a bounded, singleflighted LRU
// of built model sets, mirroring measure.Cache one level up the stack.
// The first request of a given key builds through the session's tuner;
// concurrent same-key requests wait for that one build; later requests
// get the resident set. Failed builds are not cached, and a waiter
// whose flight owner was cancelled retries with its own live context.
type modelCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List                 // front = most recently used
	entries map[modelKey]*list.Element // value: *modelEntry
	hits    uint64
	misses  uint64
	builds  uint64
}

// modelEntry is one cache slot: the key rides along so eviction can
// unmap in O(1).
type modelEntry struct {
	key modelKey
	set *modelSet
}

func newModelCache(capacity int) *modelCache {
	if capacity <= 0 {
		capacity = DefaultModelCacheEntries
	}
	return &modelCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[modelKey]*list.Element),
	}
}

func (c *modelCache) stats() ModelCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ModelCacheStats{
		Hits:     c.hits,
		Misses:   c.misses,
		Builds:   c.builds,
		Entries:  c.ll.Len(),
		Capacity: c.cap,
	}
}

// get returns the model set for key, building it with build on a miss.
// shared is true when the set came from the cache (resident or joined
// in-flight) — i.e. this caller performed no measurements. build
// additionally reports whether it actually performed a build (false
// when it answered from the durable tier), which is what keeps Builds
// an honest count of measurement work.
func (c *modelCache) get(ctx context.Context, key modelKey, build func() (*modelSet, bool, error)) (set *modelSet, shared bool, err error) {
	for {
		set, shared, err, retry := c.getOnce(ctx, key, build)
		if retry && ctx.Err() == nil {
			continue
		}
		return set, shared, err
	}
}

// getOnce performs one lookup-or-build round. retry is true when the
// caller waited on another caller's flight that failed with that
// owner's context error.
func (c *modelCache) getOnce(ctx context.Context, key modelKey, build func() (*modelSet, bool, error)) (set *modelSet, shared bool, err error, retry bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		ent := el.Value.(*modelEntry).set
		c.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, false, ctx.Err(), false
		}
		if ent.err != nil {
			retry := errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)
			return nil, false, ent.err, retry
		}
		return ent, true, nil, false
	}
	c.misses++
	ent := &modelSet{done: make(chan struct{})}
	c.entries[key] = c.ll.PushFront(&modelEntry{key: key, set: ent})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		delete(c.entries, c.ll.Remove(el).(*modelEntry).key)
	}
	c.mu.Unlock()

	built, didBuild, err := build()
	if err == nil {
		ent.models = built.models
		ent.baseRes = built.baseRes
		ent.trace = built.trace
		ent.baseProfiles = built.baseProfiles
	} else {
		ent.err = err
		// Do not memoize failures: drop the key so the next request
		// retries (the entry may already have been evicted — fine).
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value.(*modelEntry).set == ent {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	if err == nil && didBuild {
		c.mu.Lock()
		c.builds++
		c.mu.Unlock()
	}
	close(ent.done)
	if err != nil {
		return nil, false, err, false
	}
	return ent, false, nil, false
}

// buildPhaseSet performs the measurement half of a phase-aware run:
// profile the base run in intervals, detect phases, and build the
// whole-program model plus one model per phase from one
// interval-profiled run per configuration. The result is
// weight-independent, which is what makes it cacheable in the shared
// model layer.
func buildPhaseSet(ctx context.Context, t *Tuner, b *progs.Benchmark, opts PhaseOptions) (*modelSet, error) {
	prog, err := b.Assemble(t.Scale)
	if err != nil {
		return nil, err
	}
	baseRes, err := fpga.Synthesize(config.Default())
	if err != nil {
		return nil, err
	}
	runOpts := platform.Options{
		SampleInstructions:   t.SampleInstructions,
		IntervalInstructions: opts.IntervalInstructions,
		IntraRunWorkers:      t.IntraRunWorkers,
	}
	baseRep, err := t.provider().Measure(ctx, prog, config.Default(), runOpts)
	if err != nil {
		return nil, fmt.Errorf("core: base measurement: %w", err)
	}
	if !baseRep.Sampled && baseRep.ExitCode != 0 {
		return nil, fmt.Errorf("core: %s exited with code %d", b.Name, baseRep.ExitCode)
	}
	_, detectSpan := obs.Start(ctx, "phase.detect")
	trace := phase.Detect(baseRep.Intervals, opts.IntervalInstructions, phase.Options{Threshold: opts.Threshold})
	if detectSpan != nil {
		detectSpan.Set(
			obs.Int("phases", int64(trace.Phases)),
			obs.Int("segments", int64(len(trace.Segments))))
		detectSpan.End()
	}
	base := resolveObservation(baseRep, baseRes, trace)

	models, err := t.buildPhaseModels(ctx, b, opts.IntervalInstructions, trace, base)
	if err != nil {
		return nil, err
	}
	return &modelSet{
		models:       models,
		baseRes:      baseRes,
		trace:        trace,
		baseProfiles: trace.Profiles(baseRep.Intervals),
	}, nil
}

// phaseReport performs the decision half of a phase-aware run: solve
// the whole-program model and every per-phase model under the request's
// weights, lay the per-phase schedule over the trace — charging each
// transition for the configuration parameters it actually changes — and
// weigh it against the whole-program recommendation.
func phaseReport(set *modelSet, b *progs.Benchmark, w Weights, opts PhaseOptions, tuner *Tuner) (*Report, error) {
	trace := set.trace
	space := set.models[0].Space
	wholeRec, err := tuner.RecommendFromModel(set.models[0], w)
	if err != nil {
		return nil, err
	}

	block := &PhaseBlock{
		IntervalInstructions: opts.IntervalInstructions,
		SwitchPenaltyCycles:  opts.SwitchPenaltyCycles,
		Trace:                trace,
	}
	recs := make([]*Recommendation, trace.Phases)
	var perPhase float64
	for p := 0; p < trace.Phases; p++ {
		rec, err := tuner.RecommendFromModel(set.models[1+p], w)
		if err != nil {
			return nil, fmt.Errorf("core: solving phase %d: %w", p, err)
		}
		recs[p] = rec
		prof := set.baseProfiles[p]
		block.Recommendations = append(block.Recommendations, PhaseRecommendation{
			Phase:          p,
			Intervals:      prof.Intervals,
			Instructions:   prof.Instructions,
			BaseCycles:     prof.Cycles,
			Recommendation: recommendationReport(rec),
		})
		perPhase += rec.Predicted.RuntimeCycles
	}

	prevPhase := -1
	for i, seg := range trace.Segments {
		entry := ScheduleEntry{
			Phase:  seg.Phase,
			Start:  seg.Start,
			End:    seg.End,
			Config: recs[seg.Phase].Config.String(),
		}
		if i > 0 {
			changed := changedParams(space, recs[prevPhase].Selection, recs[seg.Phase].Selection)
			if changed > 0 {
				entry.Switch = true
				entry.ChangedVars = changed
				entry.SwitchCostCycles = switchCost(opts.SwitchPenaltyCycles, changed)
				block.Switches++
				block.SwitchCostCycles += entry.SwitchCostCycles
			}
		}
		block.Schedule = append(block.Schedule, entry)
		prevPhase = seg.Phase
	}

	block.PerPhaseCycles = perPhase + float64(block.SwitchCostCycles)
	block.WholeProgramCycles = wholeRec.Predicted.RuntimeCycles
	block.PerPhaseWins = block.PerPhaseCycles < block.WholeProgramCycles
	if block.WholeProgramCycles > 0 {
		block.SavingsPct = 100 * (block.WholeProgramCycles - block.PerPhaseCycles) / block.WholeProgramCycles
	}

	return &Report{
		App:            b.Name,
		Scale:          set.models[0].Scale.String(),
		SpaceVars:      space.Len(),
		Weights:        w,
		Base:           baseCostPoint(set.models[0].BaseCycles, set.baseRes),
		Recommendation: recommendationReport(wholeRec),
		Phases:         block,
		Artifacts: &Artifacts{
			Model:                set.models[0],
			Recommendation:       wholeRec,
			PhaseModels:          set.models[1:],
			PhaseRecommendations: recs,
		},
	}, nil
}

// switchCost prices one reconfiguration transition: penalty is the
// cycle cost of a full reshape (every parameter group rewritten), and a
// transition rewriting changed of the configuration's
// config.ParameterGroups() groups is charged that share of it, rounded
// to the nearest cycle — partial reconfiguration rewrites less fabric
// and costs proportionally less.
func switchCost(penalty uint64, changed int) uint64 {
	groups := uint64(config.ParameterGroups())
	return (penalty*uint64(changed) + groups/2) / groups
}

// changedParams counts the configuration parameters whose value differs
// between two selections over the same space: for every at-most-one
// group, the selected member (or "keep base") must match, else that
// parameter is rewritten at the reconfiguration boundary. This is the
// per-transition granularity the schedule's partial-reconfiguration
// cost is charged at.
func changedParams(space *config.Space, a, b []bool) int {
	selected := func(sel []bool, members []int) int {
		for _, i := range members {
			if i < len(sel) && sel[i] {
				return i
			}
		}
		return -1
	}
	changed := 0
	for _, members := range space.Groups() {
		if selected(a, members) != selected(b, members) {
			changed++
		}
	}
	return changed
}
