package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/workload"
)

var updateGoldens = flag.Bool("update", false, "rewrite golden files")

// replayErrorBoundPct is the conformance bound: the modeled schedule
// cost and the replayed (actually reshaped) run must agree within this
// percentage. The per-phase models predict each phase's cycles from its
// own profile, and the replay executes the very intervals those
// profiles summarize, so the two figures track closely — the residual
// is boundary effects (cold caches and window state after a reshape)
// that the model does not see.
const replayErrorBoundPct = 2.0

func tuneMixReplay(t *testing.T, online bool) *core.Report {
	t.Helper()
	sess, _ := newCountedSession(t)
	rep, err := sess.Tune(context.Background(), core.Request{
		App:    "mix",
		Scale:  workload.Tiny,
		Space:  config.DcacheGeometrySpace(),
		Phases: &core.PhaseOptions{IntervalInstructions: 20_000},
		Replay: true,
		Online: online,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReplayConformanceGolden is the conformance suite's anchor: replay
// the mix benchmark's per-phase schedule, require the modeled and
// replayed whole-run cycles to agree within replayErrorBoundPct, and
// pin the full replay block against a golden so any drift in segment
// accounting, switch pricing or the error figure is a visible diff.
// Regenerate with go test ./internal/core -run TestReplayConformanceGolden -update.
func TestReplayConformanceGolden(t *testing.T) {
	rep := tuneMixReplay(t, false)
	if rep.Replay == nil {
		t.Fatal("Replay block missing from report")
	}
	if rep.Replay.Sampled {
		t.Fatal("tiny mix replay must run to completion")
	}
	if rep.Replay.ExitCode != 0 {
		t.Fatalf("replayed mix exited %d", rep.Replay.ExitCode)
	}
	if math.Abs(rep.Replay.ErrorPct) > replayErrorBoundPct {
		t.Errorf("modeled-vs-replayed error %.3f%% exceeds the %.1f%% conformance bound",
			rep.Replay.ErrorPct, replayErrorBoundPct)
	}
	if rep.Replay.ActualCycles != rep.Replay.SimulatedCycles+rep.Replay.SwitchCostCycles {
		t.Error("actual cycles must be simulated cycles plus switch overhead")
	}
	if len(rep.Replay.Segments) != len(rep.Phases.Trace.Segments) {
		t.Errorf("replay produced %d segments for a %d-segment schedule",
			len(rep.Replay.Segments), len(rep.Phases.Trace.Segments))
	}

	got, err := json.MarshalIndent(rep.Replay, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "replay_mix_tiny_dcache.golden")
	if *updateGoldens {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("replay block drifted from golden %s (regenerate with -update):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestOnlineScheduleDifferential is the online-vs-schedule differential:
// with stable phases the closed-loop run must pick the schedule's
// configuration everywhere except the one-interval reaction lag at each
// config-changing boundary — so divergences are bounded by the
// schedule's switch count, counted, and always present in the wire
// document (never silent).
func TestOnlineScheduleDifferential(t *testing.T) {
	rep := tuneMixReplay(t, true)
	if rep.Online == nil {
		t.Fatal("Online block missing from report")
	}
	if rep.Replay == nil {
		t.Fatal("Replay block missing from report")
	}

	// Architectural equivalence: adaptation reshapes the platform, never
	// the program — both modes finish the same computation.
	if rep.Online.Checksum != rep.Replay.Checksum || rep.Online.ExitCode != rep.Replay.ExitCode {
		t.Errorf("online run computed checksum %d exit %d, replay %d exit %d",
			rep.Online.Checksum, rep.Online.ExitCode, rep.Replay.Checksum, rep.Replay.ExitCode)
	}

	// The trace's own intervals classify back to their phases (the
	// stable-phase property, tested in internal/phase), so the only
	// divergence the lagged controller can make is the first interval
	// after each boundary whose configuration actually changed.
	maxLag := 0
	for _, e := range rep.Phases.Schedule {
		if e.Switch {
			maxLag++
		}
	}
	if rep.Online.Divergences > maxLag {
		t.Errorf("online run diverged on %d intervals; stable phases allow at most %d (one reaction-lag interval per config switch)",
			rep.Online.Divergences, maxLag)
	}
	if rep.Online.Unclassified != 0 {
		t.Errorf("%d intervals of the trace's own program failed to classify", rep.Online.Unclassified)
	}
	if rep.Online.Switches > maxLag {
		t.Errorf("online run switched %d times, schedule needs %d", rep.Online.Switches, maxLag)
	}

	// Never silent: the wire document always carries the divergence
	// count, zero or not.
	doc, err := json.Marshal(rep.Online)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(doc, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"divergences", "unclassified"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("online block omits %q from the wire document", key)
		}
	}
}

// TestReplayDecisionHalfOnly is the cache-exclusion acceptance test:
// replay and online are decision-half flags, so turning them on for an
// already-tuned request must run its extra simulations outside the
// measurement provider — zero new provider measurements, a model-layer
// hit rather than a rebuild, and a byte-identical Phases block.
func TestReplayDecisionHalfOnly(t *testing.T) {
	sess, sim := newCountedSession(t)
	req := core.Request{
		App:    "mix",
		Scale:  workload.Tiny,
		Space:  config.DcacheGeometrySpace(),
		Phases: &core.PhaseOptions{IntervalInstructions: 20_000},
	}
	plain, err := sess.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sims := sim.calls.Load()

	req.Replay = true
	req.Online = true
	replayed, err := sess.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.calls.Load() - sims; d != 0 {
		t.Errorf("replay+online request ran %d simulations through the measurement provider, want 0", d)
	}
	if st := sess.ModelStats(); st.Builds != 1 || st.Hits != 1 {
		t.Errorf("replay request rebuilt the model set: %+v", st)
	}
	if replayed.Replay == nil || replayed.Online == nil {
		t.Fatal("replay/online blocks missing")
	}

	a, err := json.Marshal(plain.Phases)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(replayed.Phases)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("replay flags changed the Phases block — they must be decision-half only")
	}
	if !reflect.DeepEqual(plain.Recommendation, replayed.Recommendation) {
		t.Error("replay flags changed the whole-program recommendation")
	}
}

// TestReplayRequiresPhases: the flags are meaningless without a phase
// schedule to replay and are rejected at request resolution.
func TestReplayRequiresPhases(t *testing.T) {
	sess, _ := newCountedSession(t)
	for _, req := range []core.Request{
		{App: "mix", Scale: workload.Tiny, Replay: true},
		{App: "mix", Scale: workload.Tiny, Online: true},
	} {
		if _, err := sess.Tune(context.Background(), req); err == nil {
			t.Errorf("request %+v accepted without Phases", req)
		}
	}
}
