package core

import (
	"context"
	"encoding/json"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/measure"
	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
	"liquidarch/internal/power"
	"liquidarch/internal/progs"
)

// Phase-aware tuning: the paper tunes one configuration per application;
// this mode tunes one per detected execution phase and decides — under
// an explicit reconfiguration-cost model — whether switching
// configurations at phase boundaries beats the single whole-program
// recommendation.
//
// The measurement cost is the same as a whole-program model build: every
// single-change configuration is simulated once with interval profiling
// on, and each run's per-interval deltas are summed per phase (the
// partition aligns across configurations because interval boundaries are
// instruction counts). One set of runs therefore feeds the whole-program
// model and every per-phase model, and the runs share the measurement
// provider's cache/store keyed by (program, timing config, interval).

// DefaultIntervalInstructions is the profiling interval length used when
// a caller does not choose one: fine enough to split the benchmark
// kernels' phases at every workload scale, coarse enough that the
// per-interval snapshots stay negligible next to the simulation.
const DefaultIntervalInstructions = 50_000

// DefaultSwitchPenaltyCycles prices one runtime reconfiguration. 25 000
// cycles is 1 ms at the platform's 25 MHz clock — the order of an FPGA
// partial reconfiguration.
const DefaultSwitchPenaltyCycles = 25_000

// PhaseOptions configures phase-aware tuning. Zero values select the
// defaults.
type PhaseOptions struct {
	// IntervalInstructions is the profiling interval length.
	IntervalInstructions uint64 `json:"interval_instructions,omitempty"`
	// SwitchPenaltyCycles is the cycle cost charged per configuration
	// switch in the per-phase schedule.
	SwitchPenaltyCycles uint64 `json:"switch_penalty_cycles,omitempty"`
	// Threshold overrides the phase-detection clustering threshold
	// (phase.DefaultThreshold) when > 0.
	Threshold float64 `json:"threshold,omitempty"`
}

// normalized fills in the option defaults.
func (o PhaseOptions) normalized() PhaseOptions {
	if o.IntervalInstructions == 0 {
		o.IntervalInstructions = DefaultIntervalInstructions
	}
	if o.SwitchPenaltyCycles == 0 {
		o.SwitchPenaltyCycles = DefaultSwitchPenaltyCycles
	}
	return o
}

// PhaseRecommendation is one phase's solved model.
type PhaseRecommendation struct {
	// Phase is the phase ID of the trace.
	Phase int `json:"phase"`
	// Intervals and Instructions describe the phase's share of the run.
	Intervals    int    `json:"intervals"`
	Instructions uint64 `json:"instructions"`
	// BaseCycles is the phase's cost on the base configuration.
	BaseCycles uint64 `json:"base_cycles"`
	// Recommendation is the phase's solved BINLP outcome; its Predicted
	// runtime is the phase's modeled cost under its own configuration.
	Recommendation RecommendationReport `json:"recommendation"`
}

// ScheduleEntry is one segment of the per-phase reconfiguration
// schedule.
type ScheduleEntry struct {
	// Phase, Start and End mirror the trace segment.
	Phase int `json:"phase"`
	Start int `json:"start"`
	End   int `json:"end"`
	// Config is the configuration the segment runs under.
	Config string `json:"config"`
	// Switch is true when entering this segment requires a
	// reconfiguration (its config differs from the previous segment's).
	Switch bool `json:"switch,omitempty"`
}

// PhaseReport is the serialized outcome of a phase-aware tuning run —
// the phase-mode analogue of TuneReport, shared by `autoarch -phases
// -json` and the autoarchd daemon's phase jobs.
type PhaseReport struct {
	// App and Scale identify the workload; SpaceVars and Weights the
	// decision problem.
	App       string  `json:"app"`
	Scale     string  `json:"scale"`
	SpaceVars int     `json:"space_vars"`
	Weights   Weights `json:"weights"`
	// IntervalInstructions and SwitchPenaltyCycles echo the options.
	IntervalInstructions uint64 `json:"interval_instructions"`
	SwitchPenaltyCycles  uint64 `json:"switch_penalty_cycles"`

	// Base is the base configuration's whole-run cost.
	Base CostPoint `json:"base"`
	// Trace is the detected phase structure.
	Trace *phase.Trace `json:"trace"`
	// WholeProgram is the ordinary single-configuration recommendation,
	// built from the same measurements.
	WholeProgram RecommendationReport `json:"whole_program"`
	// Phases holds one solved model per detected phase.
	Phases []PhaseRecommendation `json:"phases"`

	// Schedule is the per-phase plan over the trace's segments; Switches
	// counts its mid-run reconfigurations (entries whose config differs
	// from their predecessor's).
	Schedule []ScheduleEntry `json:"schedule"`
	Switches int             `json:"switches"`

	// PerPhaseCycles is the schedule's modeled whole-run cost: each
	// phase under its own configuration plus SwitchPenaltyCycles per
	// switch. WholeProgramCycles is the single recommendation's modeled
	// cost. PerPhaseWins reports the decision; SavingsPct the margin
	// (negative when the whole-program configuration wins).
	PerPhaseCycles     float64 `json:"per_phase_predicted_cycles"`
	WholeProgramCycles float64 `json:"whole_program_predicted_cycles"`
	PerPhaseWins       bool    `json:"per_phase_wins"`
	SavingsPct         float64 `json:"savings_pct"`
}

// MarshalIndent renders the report as indented JSON with a trailing
// newline — the exact byte stream the CLI and the daemon emit.
func (r *PhaseReport) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// phaseObservation is one configuration's measured cost, resolved per
// model: index 0 is the whole program, index 1+p is phase p.
type phaseObservation struct {
	cycles []uint64
	energy []power.Estimate
	res    fpga.Resources
}

// resolveObservation folds one interval-profiled run into per-model
// costs under trace — the one place the whole-program/per-phase index
// convention and the per-phase energy model live.
func resolveObservation(rep *platform.RunReport, res fpga.Resources, trace *phase.Trace) phaseObservation {
	obs := phaseObservation{
		cycles: make([]uint64, 1+trace.Phases),
		energy: make([]power.Estimate, 1+trace.Phases),
		res:    res,
	}
	obs.cycles[0] = rep.Cycles()
	obs.energy[0] = power.Model(rep.Stats, rep.ICache, rep.DCache, res)
	for _, p := range trace.Profiles(rep.Intervals) {
		obs.cycles[1+p.Phase] = p.Cycles
		obs.energy[1+p.Phase] = power.Model(p.Stats, p.ICache, p.DCache, res)
	}
	return obs
}

// observePhases measures cfg once with interval profiling and resolves
// the report into whole-program and per-phase costs under trace.
func (t *Tuner) observePhases(ctx context.Context, b *progs.Benchmark, cfg config.Config, interval uint64, trace *phase.Trace) (phaseObservation, error) {
	prog, err := b.Assemble(t.Scale)
	if err != nil {
		return phaseObservation{}, err
	}
	res, err := fpga.Synthesize(cfg)
	if err != nil {
		return phaseObservation{}, err
	}
	opts := platform.Options{
		SampleInstructions:   t.SampleInstructions,
		IntervalInstructions: interval,
	}
	rep, err := t.provider().Measure(ctx, prog, cfg, opts)
	if err != nil {
		return phaseObservation{}, err
	}
	if !rep.Sampled && rep.ExitCode != 0 {
		return phaseObservation{}, fmt.Errorf("core: %s exited with code %d", b.Name, rep.ExitCode)
	}
	return resolveObservation(rep, res, trace), nil
}

// buildPhaseModels measures every decision variable once (interval
// profiled, companion-paired exactly like BuildModel) and assembles
// 1+trace.Phases models over the shared observations: models[0] is the
// whole-program model, models[1+p] phase p's.
func (t *Tuner) buildPhaseModels(ctx context.Context, b *progs.Benchmark, interval uint64, trace *phase.Trace, base phaseObservation) ([]*Model, error) {
	space := t.space()
	baseCfg := config.Default()
	vars := space.Vars()
	obs := make([]phaseObservation, len(vars))

	ordinary, deferredVars, err := planSpace(space)
	if err != nil {
		return nil, err
	}

	measureVars := func(indices []int, cfgFor func(config.Var) config.Config) error {
		return measure.ForEach(ctx, len(indices), t.Workers, func(k int) error {
			i := indices[k]
			o, err := t.observePhases(ctx, b, cfgFor(vars[i]), interval, trace)
			if err != nil {
				return fmt.Errorf("core: measuring %s: %w", vars[i].Name, err)
			}
			obs[i] = o
			return nil
		})
	}

	if err := measureVars(ordinary, func(v config.Var) config.Config { return v.Apply(baseCfg) }); err != nil {
		return nil, err
	}

	// Replacement-policy variables: measured on top of their companion's
	// configuration, attributed against the companion's observation.
	byName := make(map[string]int, len(vars))
	for i, v := range vars {
		byName[v.Name] = i
	}
	var phase2 []int
	for _, d := range deferredVars {
		phase2 = append(phase2, d.index)
	}
	if err := measureVars(phase2, func(v config.Var) config.Config {
		companion, _ := companionFor(v)
		compVar, _ := space.ByName(companion)
		return v.Apply(compVar.Apply(baseCfg))
	}); err != nil {
		return nil, err
	}

	refFor := func(i int) (phaseObservation, error) {
		if companion, ok := companionFor(vars[i]); ok {
			ci, found := byName[companion]
			if !found || obs[ci].cycles == nil {
				return phaseObservation{}, fmt.Errorf("core: companion %s not measured", companion)
			}
			return obs[ci], nil
		}
		return base, nil
	}

	models := make([]*Model, 1+trace.Phases)
	for m := range models {
		entries := make([]Entry, len(vars))
		for i, v := range vars {
			ref, err := refFor(i)
			if err != nil {
				return nil, err
			}
			o := obs[i]
			e := &entries[i]
			e.Var = v
			e.Cycles = o.cycles[m]
			e.Resources = o.res
			e.Energy = o.energy[m]
			e.Rho = 100 * (float64(o.cycles[m]) - float64(ref.cycles[m])) / float64(ref.cycles[m])
			e.Lambda = o.res.LUTPercent() - ref.res.LUTPercent()
			e.Beta = o.res.BRAMPercent() - ref.res.BRAMPercent()
			e.Epsilon = power.DeltaPercent(o.energy[m], ref.energy[m])
		}
		models[m] = &Model{
			App:           b.Name,
			Scale:         t.Scale,
			Space:         space,
			BaseCycles:    base.cycles[m],
			BaseResources: base.res,
			BaseEnergy:    base.energy[m],
			Entries:       entries,
		}
	}
	return models, nil
}

// TunePhases runs phase-aware tuning end to end: profile the base run in
// intervals, detect phases, build one model per phase (plus the
// whole-program model) from one interval-profiled run per configuration,
// solve each, and weigh the per-phase schedule — switch penalties
// included — against the single whole-program recommendation.
func (t *Tuner) TunePhases(ctx context.Context, b *progs.Benchmark, w Weights, opts PhaseOptions) (*PhaseReport, error) {
	opts = opts.normalized()
	space := t.space()

	// Base run: the interval profile phases are detected on.
	prog, err := b.Assemble(t.Scale)
	if err != nil {
		return nil, err
	}
	baseRes, err := fpga.Synthesize(config.Default())
	if err != nil {
		return nil, err
	}
	runOpts := platform.Options{
		SampleInstructions:   t.SampleInstructions,
		IntervalInstructions: opts.IntervalInstructions,
	}
	baseRep, err := t.provider().Measure(ctx, prog, config.Default(), runOpts)
	if err != nil {
		return nil, fmt.Errorf("core: base measurement: %w", err)
	}
	if !baseRep.Sampled && baseRep.ExitCode != 0 {
		return nil, fmt.Errorf("core: %s exited with code %d", b.Name, baseRep.ExitCode)
	}
	trace := phase.Detect(baseRep.Intervals, opts.IntervalInstructions, phase.Options{Threshold: opts.Threshold})
	base := resolveObservation(baseRep, baseRes, trace)
	baseProfiles := trace.Profiles(baseRep.Intervals)

	models, err := t.buildPhaseModels(ctx, b, opts.IntervalInstructions, trace, base)
	if err != nil {
		return nil, err
	}

	wholeRec, err := t.RecommendFromModel(models[0], w)
	if err != nil {
		return nil, err
	}
	report := &PhaseReport{
		App:                  b.Name,
		Scale:                t.Scale.String(),
		SpaceVars:            space.Len(),
		Weights:              w,
		IntervalInstructions: opts.IntervalInstructions,
		SwitchPenaltyCycles:  opts.SwitchPenaltyCycles,
		Base: CostPoint{
			Cycles:  base.cycles[0],
			Seconds: float64(base.cycles[0]) / 25e6,
			LUTPct:  baseRes.LUTPercent(),
			BRAMPct: baseRes.BRAMPercent(),
		},
		Trace:        trace,
		WholeProgram: recommendationReport(wholeRec),
	}

	var perPhase float64
	phaseConfigs := make([]string, trace.Phases)
	for p := 0; p < trace.Phases; p++ {
		rec, err := t.RecommendFromModel(models[1+p], w)
		if err != nil {
			return nil, fmt.Errorf("core: solving phase %d: %w", p, err)
		}
		prof := baseProfiles[p]
		report.Phases = append(report.Phases, PhaseRecommendation{
			Phase:          p,
			Intervals:      prof.Intervals,
			Instructions:   prof.Instructions,
			BaseCycles:     prof.Cycles,
			Recommendation: recommendationReport(rec),
		})
		phaseConfigs[p] = rec.Config.String()
		perPhase += rec.Predicted.RuntimeCycles
	}

	prevCfg := ""
	for i, seg := range trace.Segments {
		cfgStr := phaseConfigs[seg.Phase]
		sw := i > 0 && cfgStr != prevCfg
		if sw {
			report.Switches++
		}
		report.Schedule = append(report.Schedule, ScheduleEntry{
			Phase:  seg.Phase,
			Start:  seg.Start,
			End:    seg.End,
			Config: cfgStr,
			Switch: sw,
		})
		prevCfg = cfgStr
	}

	report.PerPhaseCycles = perPhase + float64(report.Switches)*float64(opts.SwitchPenaltyCycles)
	report.WholeProgramCycles = wholeRec.Predicted.RuntimeCycles
	report.PerPhaseWins = report.PerPhaseCycles < report.WholeProgramCycles
	if report.WholeProgramCycles > 0 {
		report.SavingsPct = 100 * (report.WholeProgramCycles - report.PerPhaseCycles) / report.WholeProgramCycles
	}
	return report, nil
}

// recommendationReport serializes a Recommendation (shared with
// NewTuneReport's inline construction).
func recommendationReport(rec *Recommendation) RecommendationReport {
	return RecommendationReport{
		Changes:     append([]string{}, rec.Changes...),
		Config:      rec.Config.String(),
		Predicted:   rec.Predicted,
		Objective:   rec.Objective,
		SolverNodes: rec.SolverNodes,
		Proven:      rec.Proven,
	}
}
