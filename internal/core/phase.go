package core

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/measure"
	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
	"liquidarch/internal/power"
	"liquidarch/internal/progs"
)

// Phase-aware tuning: the paper tunes one configuration per application;
// this mode tunes one per detected execution phase and decides — under
// an explicit reconfiguration-cost model — whether switching
// configurations at phase boundaries beats the single whole-program
// recommendation.
//
// The measurement cost is the same as a whole-program model build: every
// single-change configuration is simulated once with interval profiling
// on, and each run's per-interval deltas are summed per phase (the
// partition aligns across configurations because interval boundaries are
// instruction counts). One set of runs therefore feeds the whole-program
// model and every per-phase model, and the runs share the measurement
// provider's cache/store keyed by (program, timing config, interval).
// The built models are weight-independent and live in the session's
// shared model layer (session.go); the decision half — per-phase solves,
// the schedule and its per-transition switch costs — runs per request.

// DefaultIntervalInstructions is the profiling interval length used when
// a caller does not choose one: fine enough to split the benchmark
// kernels' phases at every workload scale, coarse enough that the
// per-interval snapshots stay negligible next to the simulation.
const DefaultIntervalInstructions = 50_000

// DefaultSwitchPenaltyCycles prices a full runtime reconfiguration —
// every parameter group of the configuration rewritten. 25 000 cycles
// is 1 ms at the platform's 25 MHz clock, the order of a full FPGA
// partial-reconfiguration pass. A schedule transition rewriting only k
// of the configuration's config.ParameterGroups() groups is charged the
// proportional share k/G of this penalty, so small reshapes (a lone
// dcache line-size flip) are priced well under the full millisecond.
const DefaultSwitchPenaltyCycles = 25_000

// PhaseOptions configures phase-aware tuning. Zero values select the
// defaults.
type PhaseOptions struct {
	// IntervalInstructions is the profiling interval length.
	IntervalInstructions uint64 `json:"interval_instructions,omitempty"`
	// SwitchPenaltyCycles is the cycle cost of a full reconfiguration;
	// each schedule transition is charged the share of it proportional
	// to how many configuration parameters it actually changes.
	SwitchPenaltyCycles uint64 `json:"switch_penalty_cycles,omitempty"`
	// Threshold overrides the phase-detection clustering threshold
	// (phase.DefaultThreshold) when > 0.
	Threshold float64 `json:"threshold,omitempty"`
}

// normalized fills in the option defaults.
func (o PhaseOptions) normalized() PhaseOptions {
	if o.IntervalInstructions == 0 {
		o.IntervalInstructions = DefaultIntervalInstructions
	}
	if o.SwitchPenaltyCycles == 0 {
		o.SwitchPenaltyCycles = DefaultSwitchPenaltyCycles
	}
	return o
}

// threshold resolves the effective detection threshold (for model-cache
// keying; phase.Detect applies the same default).
func (o PhaseOptions) threshold() float64 {
	if o.Threshold > 0 {
		return o.Threshold
	}
	return phase.DefaultThreshold
}

// phaseObservation is one configuration's measured cost, resolved per
// model: index 0 is the whole program, index 1+p is phase p.
type phaseObservation struct {
	cycles []uint64
	energy []power.Estimate
	res    fpga.Resources
}

// resolveObservation folds one interval-profiled run into per-model
// costs under trace — the one place the whole-program/per-phase index
// convention and the per-phase energy model live.
func resolveObservation(rep *platform.RunReport, res fpga.Resources, trace *phase.Trace) phaseObservation {
	obs := phaseObservation{
		cycles: make([]uint64, 1+trace.Phases),
		energy: make([]power.Estimate, 1+trace.Phases),
		res:    res,
	}
	obs.cycles[0] = rep.Cycles()
	obs.energy[0] = power.Model(rep.Stats, rep.ICache, rep.DCache, res)
	for _, p := range trace.Profiles(rep.Intervals) {
		obs.cycles[1+p.Phase] = p.Cycles
		obs.energy[1+p.Phase] = power.Model(p.Stats, p.ICache, p.DCache, res)
	}
	return obs
}

// observePhases measures cfg once with interval profiling and resolves
// the report into whole-program and per-phase costs under trace.
func (t *Tuner) observePhases(ctx context.Context, b *progs.Benchmark, cfg config.Config, interval uint64, trace *phase.Trace) (phaseObservation, error) {
	prog, err := b.Assemble(t.Scale)
	if err != nil {
		return phaseObservation{}, err
	}
	res, err := fpga.Synthesize(cfg)
	if err != nil {
		return phaseObservation{}, err
	}
	opts := platform.Options{
		SampleInstructions:   t.SampleInstructions,
		IntervalInstructions: interval,
		IntraRunWorkers:      t.IntraRunWorkers,
	}
	rep, err := t.provider().Measure(ctx, prog, cfg, opts)
	if err != nil {
		return phaseObservation{}, err
	}
	if !rep.Sampled && rep.ExitCode != 0 {
		return phaseObservation{}, fmt.Errorf("core: %s exited with code %d", b.Name, rep.ExitCode)
	}
	return resolveObservation(rep, res, trace), nil
}

// buildPhaseModels measures every decision variable once (interval
// profiled, companion-paired exactly like BuildModel) and assembles
// 1+trace.Phases models over the shared observations: models[0] is the
// whole-program model, models[1+p] phase p's.
func (t *Tuner) buildPhaseModels(ctx context.Context, b *progs.Benchmark, interval uint64, trace *phase.Trace, base phaseObservation) ([]*Model, error) {
	space := t.space()
	baseCfg := config.Default()
	vars := space.Vars()
	obs := make([]phaseObservation, len(vars))

	ordinary, deferredVars, err := planSpace(space)
	if err != nil {
		return nil, err
	}

	measureVars := func(indices []int, cfgFor func(config.Var) config.Config) error {
		return measure.ForEach(ctx, len(indices), t.Workers, func(k int) error {
			i := indices[k]
			o, err := t.observePhases(ctx, b, cfgFor(vars[i]), interval, trace)
			if err != nil {
				return fmt.Errorf("core: measuring %s: %w", vars[i].Name, err)
			}
			obs[i] = o
			return nil
		})
	}

	if err := measureVars(ordinary, func(v config.Var) config.Config { return v.Apply(baseCfg) }); err != nil {
		return nil, err
	}

	// Replacement-policy variables: measured on top of their companion's
	// configuration, attributed against the companion's observation.
	byName := make(map[string]int, len(vars))
	for i, v := range vars {
		byName[v.Name] = i
	}
	var phase2 []int
	for _, d := range deferredVars {
		phase2 = append(phase2, d.index)
	}
	if err := measureVars(phase2, func(v config.Var) config.Config {
		companion, _ := companionFor(v)
		compVar, _ := space.ByName(companion)
		return v.Apply(compVar.Apply(baseCfg))
	}); err != nil {
		return nil, err
	}

	refFor := func(i int) (phaseObservation, error) {
		if companion, ok := companionFor(vars[i]); ok {
			ci, found := byName[companion]
			if !found || obs[ci].cycles == nil {
				return phaseObservation{}, fmt.Errorf("core: companion %s not measured", companion)
			}
			return obs[ci], nil
		}
		return base, nil
	}

	models := make([]*Model, 1+trace.Phases)
	for m := range models {
		entries := make([]Entry, len(vars))
		for i, v := range vars {
			ref, err := refFor(i)
			if err != nil {
				return nil, err
			}
			o := obs[i]
			e := &entries[i]
			e.Var = v
			e.Cycles = o.cycles[m]
			e.Resources = o.res
			e.Energy = o.energy[m]
			e.Rho = 100 * (float64(o.cycles[m]) - float64(ref.cycles[m])) / float64(ref.cycles[m])
			e.Lambda = o.res.LUTPercent() - ref.res.LUTPercent()
			e.Beta = o.res.BRAMPercent() - ref.res.BRAMPercent()
			e.Epsilon = power.DeltaPercent(o.energy[m], ref.energy[m])
		}
		models[m] = &Model{
			App:           b.Name,
			Scale:         t.Scale,
			Space:         space,
			BaseCycles:    base.cycles[m],
			BaseResources: base.res,
			BaseEnergy:    base.energy[m],
			Entries:       entries,
		}
	}
	return models, nil
}

// TunePhases runs phase-aware tuning end to end through a one-shot
// Session carrying the tuner's configuration.
//
// Deprecated: build a Session once and call Tune with Request.Phases
// set — repeated runs then share one model build through the session's
// model layer.
func (t *Tuner) TunePhases(ctx context.Context, b *progs.Benchmark, w Weights, opts PhaseOptions) (*PhaseReport, error) {
	s := NewSession(SessionOptions{
		Provider:      t.provider(),
		Workers:       t.Workers,
		SolverOptions: t.SolverOptions,
	})
	return s.Tune(ctx, Request{
		App:                b.Name,
		Scale:              t.Scale,
		Space:              t.Space,
		Weights:            w,
		SampleInstructions: t.SampleInstructions,
		Phases:             &opts,
	})
}

// recommendationReport serializes a Recommendation (shared with
// NewTuneReport's construction).
func recommendationReport(rec *Recommendation) RecommendationReport {
	return RecommendationReport{
		Changes:     append([]string{}, rec.Changes...),
		Config:      rec.Config.String(),
		Predicted:   rec.Predicted,
		Objective:   rec.Objective,
		SolverNodes: rec.SolverNodes,
		Proven:      rec.Proven,
	}
}
