package core_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.FullSpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "arith.model.json")
	if err := core.SaveModel(m, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.App != m.App || loaded.Scale != m.Scale {
		t.Errorf("identity lost: %s/%s", loaded.App, loaded.Scale)
	}
	if loaded.BaseCycles != m.BaseCycles || loaded.BaseResources != m.BaseResources {
		t.Errorf("base measurements lost")
	}
	if loaded.BaseEnergy != m.BaseEnergy {
		t.Errorf("base energy lost")
	}
	if loaded.Space.Len() != m.Space.Len() {
		t.Fatalf("space size %d, want %d", loaded.Space.Len(), m.Space.Len())
	}
	for i := range m.Entries {
		a, b := m.Entries[i], loaded.Entries[i]
		if a.Var.Name != b.Var.Name || a.Cycles != b.Cycles || a.Rho != b.Rho ||
			a.Lambda != b.Lambda || a.Beta != b.Beta || a.Resources != b.Resources ||
			a.Energy != b.Energy || a.Epsilon != b.Epsilon {
			t.Fatalf("entry %d differs:\n %+v\n %+v", i, a, b)
		}
	}
}

// TestLoadedModelSolvesIdentically: recommendations from a reloaded model
// must match the original exactly.
func TestLoadedModelSolvesIdentically(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.FullSpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "blastn"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "blastn.model.json")
	if err := core.SaveModel(m, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []core.Weights{core.RuntimeWeights(), core.ResourceWeights(), core.EnergyWeights()} {
		r1, err := tuner.RecommendFromModel(m, w)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := tuner.RecommendFromModel(loaded, w)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Config != r2.Config {
			t.Errorf("weights %+v: loaded model recommends %v, original %v",
				w, r2.Config.DiffBase(), r1.Config.DiffBase())
		}
	}
}

func TestSubspaceModelRoundTrips(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub.model.json")
	if err := core.SaveModel(m, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Space.Len() != 8 {
		t.Errorf("subspace lost: %d vars", loaded.Space.Len())
	}
}

func TestLoadModelErrors(t *testing.T) {
	t.Parallel()
	if _, err := core.LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(bad); err == nil {
		t.Error("malformed JSON should error")
	}
	unknownVar := filepath.Join(t.TempDir(), "unk.json")
	if err := os.WriteFile(unknownVar, []byte(`{"app":"x","scale":"tiny","entries":[{"var":"warpdrive=on"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(unknownVar); err == nil {
		t.Error("unknown variable should error")
	}
	badScale := filepath.Join(t.TempDir(), "scale.json")
	if err := os.WriteFile(badScale, []byte(`{"app":"x","scale":"galactic","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(badScale); err == nil {
		t.Error("unknown scale should error")
	}
}
