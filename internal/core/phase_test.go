package core

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// countingProvider counts Measure calls through to the shared default
// cache stack.
type countingProvider struct {
	inner measure.Provider
	calls atomic.Int64
}

func (c *countingProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	c.calls.Add(1)
	return c.inner.Measure(ctx, prog, cfg, opts)
}

// TestTunePhasesReport checks the internal consistency of a phase-aware
// tuning run: phases tile the run, the per-phase base cycles sum to the
// whole-program base, the schedule covers every segment, and the
// decision arithmetic matches its inputs.
func TestTunePhasesReport(t *testing.T) {
	b, _ := progs.ByName("blastn")
	counter := &countingProvider{inner: measure.NewCache(measure.Simulator{}, 512)}
	tuner := &Tuner{Space: config.FullSpace(), Scale: workload.Tiny, Provider: counter}
	opts := PhaseOptions{IntervalInstructions: 20_000, SwitchPenaltyCycles: 10_000}
	rep, err := tuner.TunePhases(context.Background(), b, RuntimeWeights(), opts)
	if err != nil {
		t.Fatal(err)
	}

	ph := rep.Phases
	if ph == nil || ph.Trace == nil || ph.Trace.Phases == 0 {
		t.Fatal("no phases detected")
	}
	if len(ph.Recommendations) != ph.Trace.Phases {
		t.Fatalf("%d phase recommendations for %d phases", len(ph.Recommendations), ph.Trace.Phases)
	}
	var phaseBase uint64
	for _, p := range ph.Recommendations {
		phaseBase += p.BaseCycles
		if len(p.Recommendation.Config) == 0 {
			t.Errorf("phase %d has no config rendering", p.Phase)
		}
		if !p.Recommendation.Proven {
			t.Errorf("phase %d solve not proven", p.Phase)
		}
	}
	if phaseBase != rep.Base.Cycles {
		t.Errorf("phase base cycles sum to %d, whole run is %d", phaseBase, rep.Base.Cycles)
	}
	if len(ph.Schedule) != len(ph.Trace.Segments) {
		t.Errorf("schedule has %d entries for %d segments", len(ph.Schedule), len(ph.Trace.Segments))
	}
	switches := 0
	var switchCostSum uint64
	for i, e := range ph.Schedule {
		if e.Switch {
			switches++
			switchCostSum += e.SwitchCostCycles
			if i == 0 {
				t.Error("first segment cannot be a switch")
			}
			if e.ChangedVars <= 0 {
				t.Errorf("switch entry %d changes no parameters", i)
			}
			if want := switchCost(opts.SwitchPenaltyCycles, e.ChangedVars); e.SwitchCostCycles != want {
				t.Errorf("switch entry %d costs %d cycles for %d changed parameters, want %d",
					i, e.SwitchCostCycles, e.ChangedVars, want)
			}
		}
		if i > 0 && (e.Config != ph.Schedule[i-1].Config) != e.Switch {
			t.Errorf("schedule entry %d switch flag inconsistent", i)
		}
	}
	if switches != ph.Switches {
		t.Errorf("schedule says %d switches, report says %d", switches, ph.Switches)
	}
	if switchCostSum != ph.SwitchCostCycles {
		t.Errorf("schedule switch costs sum to %d, report says %d", switchCostSum, ph.SwitchCostCycles)
	}
	var perPhase float64
	for _, p := range ph.Recommendations {
		perPhase += p.Recommendation.Predicted.RuntimeCycles
	}
	perPhase += float64(ph.SwitchCostCycles)
	if perPhase != ph.PerPhaseCycles {
		t.Errorf("per-phase cycles %f, want %f", ph.PerPhaseCycles, perPhase)
	}
	if ph.PerPhaseWins != (ph.PerPhaseCycles < ph.WholeProgramCycles) {
		t.Error("decision flag contradicts the cycle comparison")
	}

	// Measurement economy: one interval-profiled run per configuration —
	// the base plus one per decision variable — feeds the whole-program
	// model and every per-phase model alike.
	want := int64(1 + config.FullSpace().Len())
	if got := counter.calls.Load(); got != want {
		t.Errorf("provider saw %d measurements, want %d", got, want)
	}
}

// TestTunePhasesWholeProgramMatchesPlainTuning: interval profiling must
// not perturb the simulation, so the phase run's whole-program
// recommendation equals the ordinary Recommend flow's.
func TestTunePhasesWholeProgramMatchesPlainTuning(t *testing.T) {
	b, _ := progs.ByName("arith")
	tuner := NewTuner(workload.Tiny)
	w := RuntimeWeights()
	rep, err := tuner.TunePhases(context.Background(), b, w, PhaseOptions{IntervalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	plainRec, _, err := tuner.Recommend(context.Background(), b, w)
	if err != nil {
		t.Fatal(err)
	}
	plain := recommendationReport(plainRec)
	got, _ := json.Marshal(rep.Recommendation)
	want, _ := json.Marshal(plain)
	if string(got) != string(want) {
		t.Errorf("whole-program recommendation diverged:\n%s\nvs plain tuning:\n%s", got, want)
	}
}

// TestTunePhasesDeterministic: the full report — trace, per-phase
// solves, schedule — is byte-reproducible.
func TestTunePhasesDeterministic(t *testing.T) {
	b, _ := progs.ByName("blastn")
	run := func() []byte {
		tuner := NewTuner(workload.Tiny)
		rep, err := tuner.TunePhases(context.Background(), b, RuntimeWeights(), PhaseOptions{IntervalInstructions: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, bb := run(), run()
	if string(a) != string(bb) {
		t.Error("phase report not byte-reproducible")
	}
}

// TestMixPerPhaseWins: the phase-structured mix benchmark is the
// workload per-phase tuning exists for — its scan and probe phases want
// opposite dcache line sizes, so the per-phase schedule must beat the
// whole-program recommendation even after paying the switch penalties.
func TestMixPerPhaseWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b, _ := progs.ByName("mix")
	tuner := NewTuner(workload.Small)
	rep, err := tuner.TunePhases(context.Background(), b, RuntimeWeights(), PhaseOptions{IntervalInstructions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	ph := rep.Phases
	if ph.Trace.Phases < 2 {
		t.Fatalf("mix should show multiple phases, detected %d", ph.Trace.Phases)
	}
	if ph.Switches == 0 {
		t.Error("the per-phase schedule should reconfigure at least once")
	}
	if !ph.PerPhaseWins {
		t.Errorf("per-phase schedule (%.0f cycles incl. %d switches) should beat whole-program (%.0f cycles)",
			ph.PerPhaseCycles, ph.Switches, ph.WholeProgramCycles)
	}
}

// TestTunePhasesCancellation: a cancelled context aborts the build with
// the context's error.
func TestTunePhasesCancellation(t *testing.T) {
	b, _ := progs.ByName("blastn")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tuner := NewTuner(workload.Tiny)
	if _, err := tuner.TunePhases(ctx, b, RuntimeWeights(), PhaseOptions{}); err == nil {
		t.Fatal("cancelled TunePhases should fail")
	}
}
