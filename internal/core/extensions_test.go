package core_test

import (
	"context"
	"math"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
)

// TestEnergyDimensionPopulated: every model entry carries an energy
// estimate and a finite epsilon.
func TestEnergyDimensionPopulated(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "blastn"))
	if err != nil {
		t.Fatal(err)
	}
	if m.BaseEnergy.TotalJ() <= 0 {
		t.Fatal("base energy missing")
	}
	for _, e := range m.Entries {
		if e.Energy.TotalJ() <= 0 {
			t.Errorf("%s: energy missing", e.Var.Name)
		}
		if math.IsNaN(e.Epsilon) || math.IsInf(e.Epsilon, 0) {
			t.Errorf("%s: epsilon = %f", e.Var.Name, e.Epsilon)
		}
	}
}

// TestEnergyWeightsReduceEnergy: under the energy-dominant weighting, the
// validated recommendation must not consume more energy than the base.
func TestEnergyWeightsReduceEnergy(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.FullSpace())
	b := mustBenchmark(t, "blastn")
	rec, m, err := tuner.Recommend(context.Background(), b, core.EnergyWeights())
	if err != nil {
		t.Fatal(err)
	}
	val, err := tuner.Validate(context.Background(), b, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	if val.Energy.TotalJ() > m.BaseEnergy.TotalJ() {
		t.Errorf("energy weighting increased energy: %v vs base %v", val.Energy, m.BaseEnergy)
	}
	if val.EnergyPct > 0 {
		t.Errorf("energy delta = %+.2f%%, want <= 0", val.EnergyPct)
	}
}

// TestZeroW3ReproducesPaperObjective: with W3=0 the formulation must be
// identical to the two-dimensional paper objective.
func TestZeroW3ReproducesPaperObjective(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}
	p2 := m.Formulate(core.Weights{W1: 100, W2: 1})
	p3 := m.Formulate(core.Weights{W1: 100, W2: 1, W3: 0})
	for i := range p2.Cost {
		if p2.Cost[i] != p3.Cost[i] {
			t.Fatalf("cost[%d] differs with W3=0: %f vs %f", i, p2.Cost[i], p3.Cost[i])
		}
	}
}

// TestSampledModelAgreesWithFull: the runtime-sampling extension must pick
// the same configuration as full measurement when the sample covers the
// workload's steady state.
func TestSampledModelAgreesWithFull(t *testing.T) {
	t.Parallel()
	b := mustBenchmark(t, "blastn")

	full := tinyTuner(config.DcacheGeometrySpace())
	fm, err := full.BuildModel(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	fullRec, err := full.RecommendFromModel(fm, core.RuntimeOnlyWeights())
	if err != nil {
		t.Fatal(err)
	}

	sampled := tinyTuner(config.DcacheGeometrySpace())
	sampled.SampleInstructions = 100_000 // roughly half the tiny run
	sm, err := sampled.BuildModel(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	sampledRec, err := sampled.RecommendFromModel(sm, core.RuntimeOnlyWeights())
	if err != nil {
		t.Fatal(err)
	}

	if sampledRec.Config != fullRec.Config {
		t.Errorf("sampled recommendation %v != full %v",
			sampledRec.Config.DiffBase(), fullRec.Config.DiffBase())
	}
	// Sampled rho estimates should be close to the full-run values.
	for i := range fm.Entries {
		f, s := fm.Entries[i].Rho, sm.Entries[i].Rho
		if math.Abs(f-s) > 3.0 {
			t.Errorf("%s: sampled rho %.2f vs full %.2f", fm.Entries[i].Var.Name, s, f)
		}
	}
}

// TestSamplingIsCheaper: a truncated model build must execute fewer cycles
// in total (observable through lower measured base cycles).
func TestSamplingIsCheaper(t *testing.T) {
	t.Parallel()
	b := mustBenchmark(t, "drr")
	full := tinyTuner(config.DcacheGeometrySpace())
	fm, err := full.BuildModel(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	sampled := tinyTuner(config.DcacheGeometrySpace())
	sampled.SampleInstructions = 20_000
	sm, err := sampled.BuildModel(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if sm.BaseCycles >= fm.BaseCycles {
		t.Errorf("sampled base run (%d cycles) should be shorter than full (%d)",
			sm.BaseCycles, fm.BaseCycles)
	}
}
