// Package core implements the paper's contribution: automatic
// application-specific reconfiguration of the soft-core processor
// microarchitecture.
//
// The technique (paper Sections 3-4):
//
//  1. Start from the base (out-of-the-box) configuration; measure its
//     application runtime (cycle counter) and chip cost (synthesis).
//  2. Perturb one parameter value at a time — 52 binary decision
//     variables — and measure each single-change configuration. Cost is
//     linear in the number of parameter values instead of exponential.
//  3. Express the percentage deltas as a constrained Binary Integer
//     Nonlinear Program: minimize Σ w1·ρᵢxᵢ + w2·(λᵢ+βᵢ)xᵢ subject to
//     at-most-one groups, LEON's LRR/LRU validity couplings, and the
//     device resource constraints, with the cache BRAM constraint in the
//     paper's nonlinear sets×setsize product form.
//  4. Solve; decode the assignment into the recommended configuration;
//     optionally validate with an actual build + run.
package core

import (
	"fmt"
	"sort"

	"liquidarch/internal/binlp"
	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/power"
	"liquidarch/internal/workload"
)

// Entry is the measured cost of one decision variable: the percentage
// deltas of the single-change configuration against the base.
type Entry struct {
	// Var is the decision variable.
	Var config.Var
	// Cycles is the measured runtime of the single-change configuration.
	// For replacement-policy variables (invalid stand-alone on a 1-way
	// base cache) it is the companion-pair measurement; see BuildModel.
	Cycles uint64
	// Resources is the synthesized resource usage of the configuration.
	Resources fpga.Resources
	// Rho is the runtime delta over base, in percent (ρᵢ).
	Rho float64
	// Lambda is the LUT delta over base, in integer percentage points (λᵢ).
	Lambda int
	// Beta is the BRAM delta over base, in integer percentage points (βᵢ).
	Beta int
	// Energy is the estimated energy of the configuration's run.
	Energy power.Estimate
	// Epsilon is the energy delta over base, in percent (εᵢ) — the
	// extension dimension the paper lists as future work.
	Epsilon float64
}

// Model is the approximate cost model of Section 3: per-variable measured
// deltas, assumed independent.
type Model struct {
	// App names the application the model was built for.
	App string
	// Scale is the workload scale used for the runtime measurements.
	Scale workload.Scale
	// Space is the decision-variable space (full paper space or a
	// restricted sub-space).
	Space *config.Space
	// BaseCycles is the measured runtime of the base configuration.
	BaseCycles uint64
	// BaseResources is the synthesized base resource usage.
	BaseResources fpga.Resources
	// BaseEnergy is the estimated energy of the base run.
	BaseEnergy power.Estimate
	// Entries holds one measurement per decision variable, in space
	// order.
	Entries []Entry
}

// Weights are the objective weights of Section 4.1, extended with the
// energy dimension of the paper's future work.
type Weights struct {
	// W1 scales the runtime cost (ρ).
	W1 float64 `json:"w1"`
	// W2 scales the chip cost (λ+β).
	W2 float64 `json:"w2"`
	// W3 scales the energy cost (ε); zero reproduces the paper's
	// two-dimensional objective exactly.
	W3 float64 `json:"w3,omitempty"`
}

// RuntimeWeights are the paper's Section 6.1 setting: optimize application
// performance over chip resources.
func RuntimeWeights() Weights { return Weights{W1: 100, W2: 1} }

// ResourceWeights are the paper's Section 6.2 setting: optimize chip
// resources over performance.
func ResourceWeights() Weights { return Weights{W1: 1, W2: 100} }

// RuntimeOnlyWeights are the Section 5 dcache-study setting (w2 = 0).
func RuntimeOnlyWeights() Weights { return Weights{W1: 100, W2: 0} }

// EnergyWeights optimize energy over runtime and resources — the
// future-work extension.
func EnergyWeights() Weights { return Weights{W1: 1, W2: 1, W3: 100} }

// groupIndex returns, for each variable position in the space, its group.
func groupIndices(space *config.Space) map[config.Group][]int {
	return space.Groups()
}

// Formulate builds the Section 4 BINLP from the model's measured deltas.
func (m *Model) Formulate(w Weights) *binlp.Problem {
	n := m.Space.Len()
	p := &binlp.Problem{N: n, Cost: make([]float64, n)}
	for i, e := range m.Entries {
		p.Cost[i] = w.W1*e.Rho + w.W2*float64(e.Lambda+e.Beta) + w.W3*e.Epsilon
	}

	// Group constraints in Group-value order: map iteration would vary
	// the constraint order per solve, and with it the solver's branch
	// order and node count — the same problem must always produce the
	// same solve, byte for byte.
	groups := groupIndices(m.Space)
	keys := make([]config.Group, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, g := range keys {
		if members := groups[g]; len(members) > 1 {
			p.Groups = append(p.Groups, members)
		}
	}

	byName := func(name string) (int, bool) {
		for i, v := range m.Space.Vars() {
			if v.Name == name {
				return i, true
			}
		}
		return 0, false
	}

	// LEON validity couplings (paper Section 4.2): LRR only with exactly
	// 2 sets, LRU only with a multi-way cache.
	addCoupling := func(lrr, lru, sets2, sets3, sets4 string) {
		if i, ok := byName(lrr); ok {
			c := &binlp.Constraint{Name: lrr + " requires 2 sets", Bound: 0}
			c.Linear.Add(i, 1)
			if j, ok := byName(sets2); ok {
				c.Linear.Add(j, -1)
			}
			p.Constraints = append(p.Constraints, c)
		}
		if i, ok := byName(lru); ok {
			c := &binlp.Constraint{Name: lru + " requires multi-way", Bound: 0}
			c.Linear.Add(i, 1)
			for _, s := range []string{sets2, sets3, sets4} {
				if j, ok := byName(s); ok {
					c.Linear.Add(j, -1)
				}
			}
			p.Constraints = append(p.Constraints, c)
		}
	}
	addCoupling("icachreplace=LRR", "icachreplace=LRU", "icachsets=2", "icachsets=3", "icachsets=4")
	addCoupling("dcachreplace=LRR", "dcachreplace=LRU", "dcachsets=2", "dcachsets=3", "dcachsets=4")

	// Device resource constraints (Section 4.2). L and B are the percent
	// headroom left by the base configuration. The BRAM constraint uses
	// the paper's nonlinear form — cache cost = (1 + x_sets2 + 2·x_sets3
	// + 3·x_sets4) × (Σ setsize deltas) — while the LUT constraint stays
	// linear (the paper's simplification; LUT variation is minimal).
	remainingLUT := float64(100 - m.BaseResources.LUTPercent())
	remainingBRAM := float64(100 - m.BaseResources.BRAMPercent())

	lut := &binlp.Constraint{Name: "device LUTs (linear)", Bound: remainingLUT}
	for i, e := range m.Entries {
		if e.Lambda != 0 {
			lut.Linear.Add(i, float64(e.Lambda))
		}
	}
	p.Constraints = append(p.Constraints, lut)

	bram := &binlp.Constraint{Name: "device BRAM (nonlinear)", Bound: remainingBRAM}
	m.addCacheCost(bram, func(e Entry) float64 { return float64(e.Beta) })
	p.Constraints = append(p.Constraints, bram)

	return p
}

// addCacheCost fills a constraint with the paper's nonlinear cache cost
// form for the given resource delta, plus linear terms for every other
// variable.
func (m *Model) addCacheCost(c *binlp.Constraint, delta func(Entry) float64) {
	vars := m.Space.Vars()
	setsFactor := func(group config.Group) binlp.LinearForm {
		f := binlp.LinearForm{Coeffs: map[int]float64{}, Const: 1}
		for i, v := range vars {
			if v.Group != group {
				continue
			}
			// Weight: sets=2 -> +1, sets=3 -> +2, sets=4 -> +3.
			var w float64
			switch v.Name[len(v.Name)-1] {
			case '2':
				w = 1
			case '3':
				w = 2
			case '4':
				w = 3
			}
			f.Coeffs[i] = w
		}
		return f
	}
	sizeTerm := func(group config.Group) binlp.LinearForm {
		f := binlp.LinearForm{Coeffs: map[int]float64{}}
		for i, v := range vars {
			if v.Group == group {
				f.Coeffs[i] = delta(m.Entries[i])
			}
		}
		return f
	}

	iSets, iSize := setsFactor(config.GroupICacheSets), sizeTerm(config.GroupICacheSetSize)
	dSets, dSize := setsFactor(config.GroupDCacheSets), sizeTerm(config.GroupDCacheSetSize)
	if len(iSize.Coeffs) > 0 {
		c.Products = append(c.Products, binlp.ProductTerm{A: iSets, B: iSize})
	}
	if len(dSize.Coeffs) > 0 {
		c.Products = append(c.Products, binlp.ProductTerm{A: dSets, B: dSize})
	}

	for i, v := range vars {
		switch v.Group {
		case config.GroupICacheSetSize, config.GroupDCacheSetSize:
			// Covered by the product terms.
		default:
			if d := delta(m.Entries[i]); d != 0 {
				c.Linear.Add(i, d)
			}
		}
	}
}

// Prediction is the optimizer's cost approximation for a selection — the
// paper's "Cost approximations by the optimizer" rows, in both the linear
// and nonlinear variants it compares.
type Prediction struct {
	// RuntimeCycles is the predicted runtime (base × (1 + Σρᵢ/100)).
	RuntimeCycles float64 `json:"runtime_cycles"`
	// RuntimePct is the predicted runtime delta in percent.
	RuntimePct float64 `json:"runtime_pct"`
	// LUTPctLinear / BRAMPctLinear sum the per-variable deltas.
	LUTPctLinear  int `json:"lut_pct_linear"`
	BRAMPctLinear int `json:"bram_pct_linear"`
	// LUTPctNonlinear / BRAMPctNonlinear use the sets×setsize product
	// form for the cache terms.
	LUTPctNonlinear  int `json:"lut_pct_nonlinear"`
	BRAMPctNonlinear int `json:"bram_pct_nonlinear"`
	// EnergyPct is the predicted energy delta in percent (Σ εᵢ).
	EnergyPct float64 `json:"energy_pct"`
}

// Predict computes the model's cost approximation for a selection vector
// (in space order).
func (m *Model) Predict(sel []bool) Prediction {
	var rho, eps float64
	var lutLin, bramLin int
	for i, on := range sel {
		if !on {
			continue
		}
		rho += m.Entries[i].Rho
		eps += m.Entries[i].Epsilon
		lutLin += m.Entries[i].Lambda
		bramLin += m.Entries[i].Beta
	}

	nonlinear := func(delta func(Entry) float64) float64 {
		c := &binlp.Constraint{}
		m.addCacheCost(c, delta)
		return c.Eval(sel)
	}
	lutNl := nonlinear(func(e Entry) float64 { return float64(e.Lambda) })
	bramNl := nonlinear(func(e Entry) float64 { return float64(e.Beta) })

	return Prediction{
		RuntimeCycles:    float64(m.BaseCycles) * (1 + rho/100),
		RuntimePct:       rho,
		LUTPctLinear:     m.BaseResources.LUTPercent() + lutLin,
		BRAMPctLinear:    m.BaseResources.BRAMPercent() + bramLin,
		LUTPctNonlinear:  m.BaseResources.LUTPercent() + int(lutNl),
		BRAMPctNonlinear: m.BaseResources.BRAMPercent() + int(bramNl),
		EnergyPct:        eps,
	}
}

// EntryByName finds a model entry by variable name.
func (m *Model) EntryByName(name string) (Entry, bool) {
	for _, e := range m.Entries {
		if e.Var.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

func (m *Model) String() string {
	return fmt.Sprintf("model %s/%s: base %d cycles, %v, %d variables",
		m.App, m.Scale, m.BaseCycles, m.BaseResources, len(m.Entries))
}
