package core

import (
	"context"
	"fmt"

	"liquidarch/internal/binlp"
	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/power"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Tuner is the measurement-and-solve engine behind the unified
// pipeline: BuildModel, RecommendFromModel and Validate are the
// building blocks Session.Tune composes. Constructing a Tuner directly
// still works, but new code should describe the run as a core.Request
// and call Session.Tune — requests then share the session's model
// layer and progress surface.
type Tuner struct {
	// Space is the decision-variable space; nil means the full 52-variable
	// paper space.
	Space *config.Space
	// Scale selects the workload size (default Small).
	Scale workload.Scale
	// Workers bounds the parallel measurement runs (default NumCPU).
	Workers int
	// IntraRunWorkers, when nonzero, overrides the process-wide worker
	// bound for checkpointed parallel interval replay inside each
	// measurement run (platform.Options.IntraRunWorkers). The session's
	// auto planner sets it together with Workers so sweep-level and
	// intra-run parallelism split the host instead of oversubscribing it.
	IntraRunWorkers int
	// Provider supplies the measurements; nil means the process-wide
	// shared bounded cache over the simulator (measure.Default()). A
	// serving system injects its own stack here so concurrent tuning jobs
	// share one cache.
	Provider measure.Provider
	// SolverOptions tunes the BINLP solver.
	SolverOptions binlp.Options
	// SampleInstructions, when nonzero, truncates every measurement run
	// after that many instructions (the paper's future-work "runtime
	// sampling" for long applications). Because the instruction stream is
	// configuration-independent, equal-length prefixes stay directly
	// comparable; accuracy is limited only by phase behaviour beyond the
	// sample.
	SampleInstructions uint64
}

// NewTuner returns a tuner over the full paper space at the given scale.
func NewTuner(scale workload.Scale) *Tuner {
	return &Tuner{Space: config.FullSpace(), Scale: scale}
}

func (t *Tuner) space() *config.Space {
	if t.Space == nil {
		return config.FullSpace()
	}
	return t.Space
}

func (t *Tuner) provider() measure.Provider {
	if t.Provider != nil {
		return t.Provider
	}
	return measure.Default()
}

// measurement is one build-and-run observation.
type measurement struct {
	cycles uint64
	res    fpga.Resources
	energy power.Estimate
}

// measure runs the application once on cfg and synthesizes it. The
// assembled program is memoized per (benchmark, scale) by package progs,
// and the simulation goes through the tuner's measurement provider (by
// default the process-wide shared bounded cache), so the ~52 single-change
// jobs of BuildModel, the figure harnesses and validation all share
// identical (program, timing-config) runs.
func (t *Tuner) measure(ctx context.Context, b *progs.Benchmark, cfg config.Config) (measurement, error) {
	prog, err := b.Assemble(t.Scale)
	if err != nil {
		return measurement{}, err
	}
	res, err := fpga.Synthesize(cfg)
	if err != nil {
		return measurement{}, err
	}
	opts := platform.Options{
		SampleInstructions: t.SampleInstructions,
		IntraRunWorkers:    t.IntraRunWorkers,
	}
	rep, err := t.provider().Measure(ctx, prog, cfg, opts)
	if err != nil {
		return measurement{}, err
	}
	if !rep.Sampled && rep.ExitCode != 0 {
		return measurement{}, fmt.Errorf("core: %s exited with code %d", b.Name, rep.ExitCode)
	}
	return measurement{
		cycles: rep.Cycles(),
		res:    res,
		energy: power.Model(rep.Stats, rep.ICache, rep.DCache, res),
	}, nil
}

// companionFor returns, for a replacement-policy variable that is invalid
// stand-alone on the 1-way base cache, the minimal companion change (the
// matching sets=2 variable) it must be paired with for measurement, or
// false for ordinary variables.
func companionFor(v config.Var) (string, bool) {
	switch v.Name {
	case "icachreplace=LRR", "icachreplace=LRU":
		return "icachsets=2", true
	case "dcachreplace=LRR", "dcachreplace=LRU":
		return "dcachsets=2", true
	}
	return "", false
}

// deferredVar is a variable whose measurement rides on a companion
// configuration (companionFor) and is attributed against the
// companion's own measurement.
type deferredVar struct {
	index     int
	companion string
}

// planSpace partitions a space's variables into the ordinary
// single-change measurements and the companion-paired deferred ones,
// validating that every required companion is present. Shared by
// BuildModel and the per-phase model builder so the pairing rules live
// in one place.
func planSpace(space *config.Space) (ordinary []int, deferred []deferredVar, err error) {
	for i, v := range space.Vars() {
		if companion, ok := companionFor(v); ok {
			if _, exists := space.ByName(companion); !exists {
				return nil, nil, fmt.Errorf("core: variable %s needs companion %s, absent from the space", v.Name, companion)
			}
			deferred = append(deferred, deferredVar{index: i, companion: companion})
			continue
		}
		ordinary = append(ordinary, i)
	}
	return ordinary, deferred, nil
}

// BuildModel performs the paper's Section 3 procedure: measure the base,
// then every single-change configuration (and, for the replacement-policy
// variables that LEON forbids on a 1-way cache, the minimal companion
// pair sets=2 + policy, attributing the difference over the sets=2
// measurement). Measurements run in parallel on the shared worker pool;
// results are deterministic. Cancelling ctx aborts the build promptly
// (between measurement runs) with the context's error.
func (t *Tuner) BuildModel(ctx context.Context, b *progs.Benchmark) (*Model, error) {
	space := t.space()
	baseCfg := config.Default()

	baseMeas, err := t.measure(ctx, b, baseCfg)
	if err != nil {
		return nil, fmt.Errorf("core: base measurement: %w", err)
	}

	type job struct {
		index int
		cfg   config.Config
		// ref holds the values the deltas are computed against (base, or
		// the companion's measurement).
		ref measurement
	}

	vars := space.Vars()
	entries := make([]Entry, len(vars))

	// Phase 1: ordinary variables (companion-paired ones are deferred).
	ordinary, deferredVars, err := planSpace(space)
	if err != nil {
		return nil, err
	}
	var jobs []job
	for _, i := range ordinary {
		jobs = append(jobs, job{index: i, cfg: vars[i].Apply(baseCfg)})
	}

	runJobs := func(js []job) error {
		return measure.ForEach(ctx, len(js), t.Workers, func(i int) error {
			j := js[i]
			meas, err := t.measure(ctx, b, j.cfg)
			if err != nil {
				return fmt.Errorf("core: measuring %s: %w", vars[j.index].Name, err)
			}
			e := &entries[j.index]
			e.Var = vars[j.index]
			e.Cycles = meas.cycles
			e.Resources = meas.res
			e.Energy = meas.energy
			e.Rho = 100 * (float64(meas.cycles) - float64(j.ref.cycles)) / float64(j.ref.cycles)
			e.Lambda = meas.res.LUTPercent() - j.ref.res.LUTPercent()
			e.Beta = meas.res.BRAMPercent() - j.ref.res.BRAMPercent()
			e.Epsilon = power.DeltaPercent(meas.energy, j.ref.energy)
			return nil
		})
	}

	for i := range jobs {
		jobs[i].ref = baseMeas
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	// Phase 2: replacement-policy variables measured against their
	// companion's (already measured) configuration.
	var phase2 []job
	for _, d := range deferredVars {
		v := vars[d.index]
		compVar, _ := space.ByName(d.companion)
		var compEntry *Entry
		for k := range entries {
			if entries[k].Var.Name == d.companion {
				compEntry = &entries[k]
				break
			}
		}
		if compEntry == nil || compEntry.Cycles == 0 {
			return nil, fmt.Errorf("core: companion %s not measured", d.companion)
		}
		cfg := compVar.Apply(baseCfg)
		cfg = v.Apply(cfg)
		phase2 = append(phase2, job{
			index: d.index,
			cfg:   cfg,
			ref: measurement{
				cycles: compEntry.Cycles,
				res:    compEntry.Resources,
				energy: compEntry.Energy,
			},
		})
	}
	if err := runJobs(phase2); err != nil {
		return nil, err
	}

	return &Model{
		App:           b.Name,
		Scale:         t.Scale,
		Space:         space,
		BaseCycles:    baseMeas.cycles,
		BaseResources: baseMeas.res,
		BaseEnergy:    baseMeas.energy,
		Entries:       entries,
	}, nil
}

// Recommendation is the tuner's output for one application and weighting.
type Recommendation struct {
	// App names the application.
	App string
	// Weights are the objective weights used.
	Weights Weights
	// Selection is the solver's assignment, in space order.
	Selection []bool
	// Changes lists the selected parameter changes.
	Changes []string
	// Config is the recommended configuration.
	Config config.Config
	// Predicted is the optimizer's cost approximation.
	Predicted Prediction
	// Objective is the solved objective value.
	Objective float64
	// SolverNodes and Proven report solver effort and optimality proof.
	SolverNodes int
	Proven      bool
}

// Recommend runs the full flow: build the model, formulate, solve, decode.
//
// Deprecated: build a Session and call Tune — repeated runs then share
// one model build through the session's model layer.
func (t *Tuner) Recommend(ctx context.Context, b *progs.Benchmark, w Weights) (*Recommendation, *Model, error) {
	model, err := t.BuildModel(ctx, b)
	if err != nil {
		return nil, nil, err
	}
	rec, err := t.RecommendFromModel(model, w)
	if err != nil {
		return nil, nil, err
	}
	return rec, model, nil
}

// RecommendFromModel solves an already-built model under the given
// weights (models are reused across weightings, as the paper does).
func (t *Tuner) RecommendFromModel(m *Model, w Weights) (*Recommendation, error) {
	problem := m.Formulate(w)
	sol, err := binlp.Solve(problem, t.SolverOptions)
	if err != nil {
		return nil, fmt.Errorf("core: solving: %w", err)
	}
	cfg, err := m.Space.Decode(sol.X)
	if err != nil {
		return nil, fmt.Errorf("core: decoding solution: %w", err)
	}
	var changes []string
	for i, on := range sol.X {
		if on {
			changes = append(changes, m.Space.Vars()[i].Name)
		}
	}
	return &Recommendation{
		App:         m.App,
		Weights:     w,
		Selection:   sol.X,
		Changes:     changes,
		Config:      cfg,
		Predicted:   m.Predict(sol.X),
		Objective:   sol.Objective,
		SolverNodes: sol.Nodes,
		Proven:      sol.Proven,
	}, nil
}

// Validation is the paper's "actual synthesis" row: the recommended
// configuration actually built and run.
type Validation struct {
	Cycles     uint64
	Resources  fpga.Resources
	Energy     power.Estimate
	RuntimePct float64 // delta over base, percent
	EnergyPct  float64 // delta over base, percent
}

// Validate builds and runs the recommendation for real.
func (t *Tuner) Validate(ctx context.Context, b *progs.Benchmark, m *Model, rec *Recommendation) (*Validation, error) {
	meas, err := t.measure(ctx, b, rec.Config)
	if err != nil {
		return nil, fmt.Errorf("core: validating: %w", err)
	}
	return &Validation{
		Cycles:     meas.cycles,
		Resources:  meas.res,
		Energy:     meas.energy,
		RuntimePct: 100 * (float64(meas.cycles) - float64(m.BaseCycles)) / float64(m.BaseCycles),
		EnergyPct:  power.DeltaPercent(meas.energy, m.BaseEnergy),
	}, nil
}
