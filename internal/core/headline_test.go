package core_test

import (
	"context"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// TestPaperHeadlineResults is the end-to-end regression net for the whole
// reproduction at the default experiment scale: it asserts the qualitative
// claims of the paper's Section 6.1 that EXPERIMENTS.md reports, so any
// substrate change that breaks the shape of Figure 5 fails here.
func TestPaperHeadlineResults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()

	type outcome struct {
		rec *core.Recommendation
		m   *core.Model
		val *core.Validation
	}
	results := map[string]outcome{}
	tuner := core.NewTuner(workload.Small)
	for _, app := range []string{"blastn", "drr", "frag", "arith"} {
		b, _ := progs.ByName(app)
		rec, m, err := tuner.Recommend(context.Background(), b, core.RuntimeWeights())
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		val, err := tuner.Validate(context.Background(), b, m, rec)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		results[app] = outcome{rec: rec, m: m, val: val}
	}

	gains := map[string]float64{}
	for app, o := range results {
		gains[app] = -o.val.RuntimePct
	}

	// Section 6.1: all four applications gain; the paper's band is
	// 6.15-19.39%, ours must stay in single-to-low-double digits.
	for app, g := range gains {
		if g < 3 || g > 35 {
			t.Errorf("%s gain %.2f%% outside the plausible band [3,35]", app, g)
		}
	}
	// DRR is the biggest winner; Arith the smallest (paper ordering).
	if gains["drr"] <= gains["blastn"] || gains["drr"] <= gains["arith"] {
		t.Errorf("DRR should win: %v", gains)
	}
	if gains["arith"] >= gains["blastn"] {
		t.Errorf("Arith should gain least among compute+memory apps: %v", gains)
	}

	// Figure 5 selections: m32x32 everywhere; ICC hold and fast jump off
	// everywhere; only Arith keeps the divider; memory apps grow the
	// dcache while Arith shrinks it.
	for app, o := range results {
		cfg := o.rec.Config
		if cfg.IU.Multiplier != config.Mul32x32 {
			t.Errorf("%s: multiplier %v, paper selects m32x32", app, cfg.IU.Multiplier)
		}
		if cfg.IU.ICCHold || cfg.IU.FastJump {
			t.Errorf("%s: icchold=%t fastjump=%t, paper disables both", app, cfg.IU.ICCHold, cfg.IU.FastJump)
		}
		wantDivider := config.DivNone
		if app == "arith" {
			wantDivider = config.DivRadix2
		}
		if cfg.IU.Divider != wantDivider {
			t.Errorf("%s: divider %v, want %v", app, cfg.IU.Divider, wantDivider)
		}
	}
	for _, app := range []string{"blastn", "drr", "frag"} {
		if total := results[app].rec.Config.DCache.TotalKB(); total < 16 {
			t.Errorf("%s: dcache %d KB, memory-bound apps should grow it", app, total)
		}
	}
	if total := results["arith"].rec.Config.DCache.TotalKB(); total > 4 {
		t.Errorf("arith: dcache %d KB, should shrink to save BRAM", total)
	}

	// Every recommendation fits the device and the optimizer's runtime
	// estimate is optimistic-or-exact (the paper's overestimation
	// direction).
	for app, o := range results {
		if !o.val.Resources.FitsDevice() {
			t.Errorf("%s: recommendation does not fit: %v", app, o.val.Resources)
		}
		predictedGain := -o.rec.Predicted.RuntimePct
		if predictedGain+0.01 < gains[app] {
			t.Errorf("%s: predicted gain %.2f%% below actual %.2f%% (paper never underestimates)",
				app, predictedGain, gains[app])
		}
	}
}
