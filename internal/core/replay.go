package core

import (
	"context"
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
)

// Schedule replay and online adaptation — the decision half's closing
// of the loop (DESIGN.md §19). Both modes run one extra simulation per
// request through platform.ReplaySchedule/ReplayOnline, entirely
// outside the measurement provider: they reshape the configuration
// mid-run, which no cached measurement describes, and their outputs are
// conformance figures, not model inputs. Request.Replay and
// Request.Online therefore never participate in modelKey or
// measure.Key — a tuned session's caches are byte-identical with or
// without them.

// replayInputs bundles what both modes need from a finished phase run.
type replayInputs struct {
	trace *phase.Trace
	recs  []*Recommendation
	space *config.Space
	popts PhaseOptions
	// modeled is the schedule's predicted whole-run cost
	// (PhaseBlock.PerPhaseCycles), the figure the replay is judged
	// against.
	modeled float64
	opts    platform.Options
}

func gatherReplayInputs(rep *Report, req Request, popts PhaseOptions) (*replayInputs, error) {
	if rep.Phases == nil || rep.Artifacts == nil || len(rep.Artifacts.PhaseRecommendations) == 0 {
		return nil, fmt.Errorf("core: replay requires a completed phase run")
	}
	return &replayInputs{
		trace:   rep.Phases.Trace,
		recs:    rep.Artifacts.PhaseRecommendations,
		space:   rep.Artifacts.Model.Space,
		popts:   popts,
		modeled: rep.Phases.PerPhaseCycles,
		opts: platform.Options{
			SampleInstructions:   req.SampleInstructions,
			IntervalInstructions: popts.IntervalInstructions,
		},
	}, nil
}

// attachReplay executes the precomputed per-phase schedule for real and
// attaches the conformance block to the report.
func attachReplay(ctx context.Context, rep *Report, b *progs.Benchmark, req Request, popts PhaseOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	in, err := gatherReplayInputs(rep, req, popts)
	if err != nil {
		return err
	}
	prog, err := b.Assemble(req.Scale)
	if err != nil {
		return err
	}
	steps := make([]platform.ReplayStep, len(in.trace.Segments))
	for i, seg := range in.trace.Segments {
		steps[i] = platform.ReplayStep{
			Config:    in.recs[seg.Phase].Config,
			Intervals: seg.End - seg.Start + 1,
		}
	}
	steps[len(steps)-1].Intervals = -1 // the trace's final segment runs to completion
	rr, err := platform.ReplaySchedule(prog, steps, in.opts)
	if err != nil {
		return err
	}
	if !rr.Sampled && rr.ExitCode != 0 {
		return fmt.Errorf("core: replayed %s exited with code %d", b.Name, rr.ExitCode)
	}
	// The replay produces one segment per schedule step (interval
	// boundaries are instruction counts, so the partition matches the
	// trace's by construction); phases are read off the trace segments.
	phaseOf := func(segIdx int) int {
		if segIdx < len(in.trace.Segments) {
			return in.trace.Segments[segIdx].Phase
		}
		return in.trace.Segments[len(in.trace.Segments)-1].Phase
	}
	rep.Replay = buildReplayBlock(rr, in, phaseOf)
	return nil
}

// attachOnline runs the closed-loop mode — live classification against
// the trace's representatives, no schedule — and attaches its block,
// including the divergence count against the precomputed schedule.
func attachOnline(ctx context.Context, rep *Report, b *progs.Benchmark, req Request, popts PhaseOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	in, err := gatherReplayInputs(rep, req, popts)
	if err != nil {
		return err
	}
	prog, err := b.Assemble(req.Scale)
	if err != nil {
		return err
	}
	cls, err := in.trace.NewClassifier()
	if err != nil {
		return err
	}
	// The run opens under the trace's first phase (known before any
	// interval completes); thereafter the classification of interval i
	// picks the configuration for interval i+1 — a last-value predictor
	// with one interval of reaction lag, the standard online phase
	// assumption that the current behaviour persists.
	first := in.trace.Segments[0].Phase
	chosen := []int{first} // phase whose config interval i ran under
	unclassified := 0
	cur := first
	decide := func(i int, iv platform.Interval) config.Config {
		p := cls.Classify(iv.Signature)
		if p < 0 {
			unclassified++
			p = cur // novel behaviour: hold the current configuration
		}
		cur = p
		chosen = append(chosen, p)
		return in.recs[p].Config
	}
	rr, err := platform.ReplayOnline(prog, in.recs[first].Config, decide, in.opts)
	if err != nil {
		return err
	}
	if !rr.Sampled && rr.ExitCode != 0 {
		return fmt.Errorf("core: online run of %s exited with code %d", b.Name, rr.ExitCode)
	}
	divergences := 0
	for i := 0; i < len(chosen) && i < len(in.trace.Assignments); i++ {
		if in.recs[chosen[i]].Config != in.recs[in.trace.Assignments[i]].Config {
			divergences++
		}
	}
	block := buildReplayBlockSegments(rr, in, func(seg platform.ReplaySegment) int {
		if seg.Start < len(chosen) {
			return chosen[seg.Start]
		}
		return chosen[len(chosen)-1]
	})
	rep.Online = &OnlineBlock{
		ReplayBlock:  *block,
		Divergences:  divergences,
		Unclassified: unclassified,
	}
	return nil
}

// buildReplayBlock assembles the report block from a platform replay,
// reading each segment's phase off its index.
func buildReplayBlock(rr *platform.ReplayReport, in *replayInputs, phaseOf func(int) int) *ReplayBlock {
	return buildReplayBlockSegments(rr, in, func(seg platform.ReplaySegment) int {
		return phaseOf(seg.Index)
	})
}

// buildReplayBlockSegments assembles the report block, charging each
// reconfiguration boundary the same partial-reconfiguration price the
// modeled schedule uses: SwitchPenaltyCycles scaled by the parameters
// the transition actually changes.
func buildReplayBlockSegments(rr *platform.ReplayReport, in *replayInputs, phaseFor func(platform.ReplaySegment) int) *ReplayBlock {
	block := &ReplayBlock{
		IntervalInstructions: rr.IntervalInstructions,
		SimulatedCycles:      rr.Stats.Cycles,
		ModeledCycles:        in.modeled,
		ExitCode:             rr.ExitCode,
		Checksum:             rr.Checksum,
		Sampled:              rr.Sampled,
	}
	prevPhase := -1
	for _, seg := range rr.Segments {
		p := phaseFor(seg)
		entry := ReplaySegmentReport{
			Segment:      seg.Index,
			Phase:        p,
			Start:        seg.Start,
			End:          seg.End,
			Config:       seg.Config.String(),
			Instructions: seg.Instructions,
			Cycles:       seg.Stats.Cycles,
		}
		if seg.Switched && prevPhase >= 0 {
			changed := changedParams(in.space, in.recs[prevPhase].Selection, in.recs[p].Selection)
			entry.Switch = true
			entry.ChangedVars = changed
			entry.SwitchCostCycles = switchCost(in.popts.SwitchPenaltyCycles, changed)
			block.Switches++
			block.SwitchCostCycles += entry.SwitchCostCycles
		}
		block.Segments = append(block.Segments, entry)
		prevPhase = p
	}
	block.ActualCycles = block.SimulatedCycles + block.SwitchCostCycles
	if block.ActualCycles > 0 {
		block.ErrorPct = 100 * (block.ModeledCycles - float64(block.ActualCycles)) / float64(block.ActualCycles)
	}
	return block
}
