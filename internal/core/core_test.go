package core_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/exhaustive"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func tinyTuner(space *config.Space) *core.Tuner {
	return &core.Tuner{Space: space, Scale: workload.Tiny}
}

func mustBenchmark(t *testing.T, name string) *progs.Benchmark {
	t.Helper()
	b, ok := progs.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	return b
}

func TestBuildModelDcacheSubspace(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 8 {
		t.Fatalf("entries = %d, want 8", len(m.Entries))
	}
	if m.BaseCycles == 0 {
		t.Fatal("base cycles missing")
	}
	// Arith is not data intensive: every dcache geometry change must have
	// rho == 0 (paper Figure 4: "No effect").
	for _, e := range m.Entries {
		if e.Rho != 0 {
			t.Errorf("%s: rho = %f, arith should be dcache-insensitive", e.Var.Name, e.Rho)
		}
	}
	// Larger set sizes must cost BRAM; 32KB costs the most.
	e32, ok := m.EntryByName("dcachsetsz=32")
	if !ok {
		t.Fatal("dcachsetsz=32 entry missing")
	}
	if e32.Beta <= 0 {
		t.Errorf("32KB dcache should cost BRAM, beta = %d", e32.Beta)
	}
	e1, _ := m.EntryByName("dcachsetsz=1")
	if e1.Beta >= 0 {
		t.Errorf("1KB dcache should save BRAM, beta = %d", e1.Beta)
	}
}

func TestBuildModelMeasuresReplacementViaCompanion(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.FullSpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 52 {
		t.Fatalf("entries = %d, want 52", len(m.Entries))
	}
	for _, name := range []string{"icachreplace=LRR", "icachreplace=LRU", "dcachreplace=LRR", "dcachreplace=LRU"} {
		e, ok := m.EntryByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if e.Cycles == 0 {
			t.Errorf("%s not measured", name)
		}
		// Arith is cache-insensitive, so the policy delta must be 0.
		if e.Rho != 0 {
			t.Errorf("%s: rho = %f on arith", name, e.Rho)
		}
	}
	// Every entry must be populated.
	for _, e := range m.Entries {
		if e.Var.Name == "" || e.Cycles == 0 {
			t.Errorf("unpopulated entry: %+v", e)
		}
	}
}

func TestFormulateObjectiveAndGroups(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}
	w := core.Weights{W1: 100, W2: 1}
	p := m.Formulate(w)
	if p.N != 8 {
		t.Fatalf("problem has %d vars", p.N)
	}
	for i, e := range m.Entries {
		want := w.W1*e.Rho + w.W2*float64(e.Lambda+e.Beta)
		if math.Abs(p.Cost[i]-want) > 1e-9 {
			t.Errorf("cost[%d] = %f, want %f", i, p.Cost[i], want)
		}
	}
	if len(p.Groups) != 2 {
		t.Errorf("groups = %d, want 2 (sets, setsize)", len(p.Groups))
	}
	// Device constraints present.
	var names []string
	for _, c := range p.Constraints {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ";")
	if !strings.Contains(joined, "LUT") || !strings.Contains(joined, "BRAM") {
		t.Errorf("constraints missing: %v", names)
	}
}

func TestFormulateFullSpaceCouplings(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.FullSpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "arith"))
	if err != nil {
		t.Fatal(err)
	}
	p := m.Formulate(core.RuntimeWeights())
	var couplings int
	for _, c := range p.Constraints {
		if strings.Contains(c.Name, "requires") {
			couplings++
		}
	}
	if couplings != 4 {
		t.Errorf("coupling constraints = %d, want 4 (LRR/LRU x icache/dcache)", couplings)
	}
}

// TestRecommendationIsValidAndBeatsBase: whatever the solver picks must
// decode to a valid configuration, fit the device, and (validated by an
// actual run) not be slower than base under runtime weighting.
func TestRecommendationIsValidAndBeatsBase(t *testing.T) {
	t.Parallel()
	for _, app := range []string{"blastn", "arith"} {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			tuner := tinyTuner(config.FullSpace())
			b := mustBenchmark(t, app)
			rec, m, err := tuner.Recommend(context.Background(), b, core.RuntimeWeights())
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Config.Validate(); err != nil {
				t.Fatalf("recommended config invalid: %v", err)
			}
			if !rec.Proven {
				t.Error("52-variable instance should be proven optimal")
			}
			val, err := tuner.Validate(context.Background(), b, m, rec)
			if err != nil {
				t.Fatal(err)
			}
			if !val.Resources.FitsDevice() {
				t.Errorf("recommendation does not fit the device: %v", val.Resources)
			}
			if val.Cycles > m.BaseCycles {
				t.Errorf("runtime-weighted recommendation slower than base: %d vs %d", val.Cycles, m.BaseCycles)
			}
		})
	}
}

// TestResourceWeightingSavesResources mirrors Section 6.2: with w2
// dominant the recommendation must not use more chip resources than base.
func TestResourceWeightingSavesResources(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.FullSpace())
	b := mustBenchmark(t, "arith")
	rec, m, err := tuner.Recommend(context.Background(), b, core.ResourceWeights())
	if err != nil {
		t.Fatal(err)
	}
	val, err := tuner.Validate(context.Background(), b, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	if val.Resources.BRAMPercent() > m.BaseResources.BRAMPercent() {
		t.Errorf("resource weighting grew BRAM: %d%% > %d%%",
			val.Resources.BRAMPercent(), m.BaseResources.BRAMPercent())
	}
	if val.Resources.LUTPercent() > m.BaseResources.LUTPercent() {
		t.Errorf("resource weighting grew LUTs: %d%% > %d%%",
			val.Resources.LUTPercent(), m.BaseResources.LUTPercent())
	}
}

// TestSection5NearOptimality is the paper's Section 5 experiment as a
// test: on the dcache sets×setsize sub-space, the optimizer's runtime
// (w2=0) selection must be within 0.5% of the exhaustive optimum.
func TestSection5NearOptimality(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	for _, app := range []string{"blastn", "drr", "arith"} {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			b := mustBenchmark(t, app)
			tuner := tinyTuner(config.DcacheGeometrySpace())
			rec, m, err := tuner.Recommend(context.Background(), b, core.RuntimeOnlyWeights())
			if err != nil {
				t.Fatal(err)
			}
			val, err := tuner.Validate(context.Background(), b, m, rec)
			if err != nil {
				t.Fatal(err)
			}
			results, err := exhaustive.DcacheGeometry(context.Background(), b, workload.Tiny, 0)
			if err != nil {
				t.Fatal(err)
			}
			best, err := exhaustive.BestByRuntime(results)
			if err != nil {
				t.Fatal(err)
			}
			gap := 100 * (float64(val.Cycles) - float64(best.Cycles)) / float64(best.Cycles)
			if gap > 0.5 {
				t.Errorf("optimizer %d cycles vs exhaustive %d (gap %.3f%%); paper reports <=0.02%%",
					val.Cycles, best.Cycles, gap)
			}
		})
	}
}

func TestWeightsPresets(t *testing.T) {
	if w := core.RuntimeWeights(); w.W1 != 100 || w.W2 != 1 {
		t.Errorf("runtime weights = %+v", w)
	}
	if w := core.ResourceWeights(); w.W1 != 1 || w.W2 != 100 {
		t.Errorf("resource weights = %+v", w)
	}
	if w := core.RuntimeOnlyWeights(); w.W1 != 100 || w.W2 != 0 {
		t.Errorf("runtime-only weights = %+v", w)
	}
}

func TestPredictLinearVsNonlinear(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "blastn"))
	if err != nil {
		t.Fatal(err)
	}
	// Select sets=2 and setsize=16: the nonlinear form must predict more
	// BRAM than the linear sum (the product counts the second way's 16KB).
	sel := make([]bool, m.Space.Len())
	for i, v := range m.Space.Vars() {
		if v.Name == "dcachsets=2" || v.Name == "dcachsetsz=16" {
			sel[i] = true
		}
	}
	pred := m.Predict(sel)
	if pred.BRAMPctNonlinear <= pred.BRAMPctLinear {
		t.Errorf("nonlinear BRAM %d%% should exceed linear %d%% for 2x16",
			pred.BRAMPctNonlinear, pred.BRAMPctLinear)
	}
}

func TestRecommendFromModelReuse(t *testing.T) {
	t.Parallel()
	tuner := tinyTuner(config.DcacheGeometrySpace())
	m, err := tuner.BuildModel(context.Background(), mustBenchmark(t, "blastn"))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := tuner.RecommendFromModel(m, core.RuntimeOnlyWeights())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tuner.RecommendFromModel(m, core.ResourceWeights())
	if err != nil {
		t.Fatal(err)
	}
	// Different weightings over the same model should generally differ;
	// at minimum both must decode to valid configurations.
	if err := r1.Config.Validate(); err != nil {
		t.Error(err)
	}
	if err := r2.Config.Validate(); err != nil {
		t.Error(err)
	}
}
