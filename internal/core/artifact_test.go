package core_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/workload"
)

// artifactFiles lists the model artifacts resident in dir's store.
func artifactFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("v%d", core.ModelSetVersion), "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestModelArtifactRestart is the durable-tier acceptance test at the
// session level: a second session — fresh model layer, as after a
// process restart — over the same artifact directory and the same
// measurement cache must serve the same request with zero model builds
// and zero simulations.
func TestModelArtifactRestart(t *testing.T) {
	dir := t.TempDir()
	ms, err := core.NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sim := &countedSimulator{}
	cache := measure.NewCache(sim, 512)
	req := core.Request{App: "arith", Scale: workload.Tiny, Space: config.DcacheGeometrySpace()}

	first := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	repA, err := first.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.ModelStats(); st.Builds != 1 || st.Spills != 1 || st.DiskMisses != 1 {
		t.Fatalf("first session stats %+v, want 1 build / 1 spill / 1 disk miss", st)
	}
	if files := artifactFiles(t, dir); len(files) != 1 {
		t.Fatalf("artifact files after spill: %v", files)
	}
	sims := sim.calls.Load()

	second := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	repB, err := second.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.calls.Load() - sims; d != 0 {
		t.Errorf("restarted session ran %d new simulations, want 0", d)
	}
	if st := second.ModelStats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Errorf("restarted session stats %+v, want 0 builds / 1 disk hit", st)
	}
	if repA.Base != repB.Base {
		t.Error("artifact-loaded model must yield the same base cost point")
	}
	if repA.Recommendation.Config != repB.Recommendation.Config {
		t.Error("artifact-loaded model must yield the same recommendation")
	}
}

// TestModelArtifactRestartPhases: the artifact round-trips a phase model
// set — models, trace and base profiles — well enough that the restarted
// session's phase report matches the original's.
func TestModelArtifactRestartPhases(t *testing.T) {
	dir := t.TempDir()
	ms, err := core.NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sim := &countedSimulator{}
	cache := measure.NewCache(sim, 512)
	req := core.Request{
		App:    "arith",
		Scale:  workload.Tiny,
		Space:  config.DcacheGeometrySpace(),
		Phases: &core.PhaseOptions{IntervalInstructions: 10_000},
	}

	first := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	repA, err := first.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sims := sim.calls.Load()

	second := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	repB, err := second.Tune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.calls.Load() - sims; d != 0 {
		t.Errorf("restarted phase session ran %d new simulations, want 0", d)
	}
	if st := second.ModelStats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Errorf("restarted phase session stats %+v, want 0 builds / 1 disk hit", st)
	}
	if repB.Phases == nil {
		t.Fatal("restarted session lost the phases block")
	}
	if repA.Phases.Trace.Phases != repB.Phases.Trace.Phases ||
		repA.Phases.PerPhaseCycles != repB.Phases.PerPhaseCycles ||
		repA.Phases.WholeProgramCycles != repB.Phases.WholeProgramCycles {
		t.Errorf("phase report drifted across the artifact round trip:\n%+v\n%+v",
			repA.Phases, repB.Phases)
	}
}

// TestModelArtifactCorruptReadsAsMiss: a corrupt artifact is removed on
// sight, the session rebuilds, and the next spill replaces it.
func TestModelArtifactCorruptReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	ms, err := core.NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := measure.NewCache(&countedSimulator{}, 512)
	req := core.Request{App: "arith", Scale: workload.Tiny, Space: config.DcacheGeometrySpace()}

	first := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	if _, err := first.Tune(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	files := artifactFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("artifact files: %v", files)
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	second := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	if _, err := second.Tune(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// The disk counters live on the shared store, so they accumulate the
	// first session's initial miss and spill too.
	st := second.ModelStats()
	if st.Builds != 1 || st.DiskHits != 0 || st.DiskMisses != 2 || st.Spills != 2 {
		t.Errorf("corrupt artifact stats %+v, want 1 build / 0 disk hits / 2 disk misses / 2 spills", st)
	}
	// The rebuild's spill replaced the corrupt artifact with a loadable one.
	third := core.NewSession(core.SessionOptions{Provider: cache, ModelStore: ms})
	if _, err := third.Tune(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := third.ModelStats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Errorf("replacement artifact stats %+v, want 0 builds / 1 disk hit", st)
	}
}

// failingProvider errors on every measurement.
type failingProvider struct{}

func (failingProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	return nil, errors.New("injected measurement failure")
}

// TestModelArtifactFailedBuildNotSpilled: a failed build must leave no
// artifact behind — whatever lands on disk always describes a completed
// build.
func TestModelArtifactFailedBuildNotSpilled(t *testing.T) {
	dir := t.TempDir()
	ms, err := core.NewModelStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession(core.SessionOptions{Provider: failingProvider{}, ModelStore: ms})
	_, err = sess.Tune(context.Background(), core.Request{
		App: "arith", Scale: workload.Tiny, Space: config.DcacheGeometrySpace(),
	})
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("tune error = %v, want the injected failure", err)
	}
	if files := artifactFiles(t, dir); len(files) != 0 {
		t.Errorf("failed build spilled artifacts: %v", files)
	}
	if st := sess.ModelStats(); st.Spills != 0 {
		t.Errorf("failed build counted %d spills", st.Spills)
	}
}

// TestModelArtifactWritesSetManifest: spilling through a session wired
// to a measurement store records the build's measurement set, and the
// manifest names only resident entries.
func TestModelArtifactWritesSetManifest(t *testing.T) {
	modelDir, cacheDir := t.TempDir(), t.TempDir()
	ms, err := core.NewModelStore(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := measure.NewStore(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cache := measure.NewCache(measure.NewPersistent(&countedSimulator{}, store), 512)
	sess := core.NewSession(core.SessionOptions{
		Provider:     cache,
		ModelStore:   ms,
		MeasureStore: store,
	})
	if _, err := sess.Tune(context.Background(), core.Request{
		App: "arith", Scale: workload.Tiny, Space: config.DcacheGeometrySpace(),
	}); err != nil {
		t.Fatal(err)
	}
	manifests, err := filepath.Glob(filepath.Join(cacheDir, "v1", "*.set"))
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != 1 {
		t.Fatalf("set manifests: %v, want exactly one", manifests)
	}
	data, err := os.ReadFile(manifests[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every named member must be resident: the manifest is written after
	// the entries it names.
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(strings.Trim(strings.TrimSpace(line), `",`))
		if !strings.HasSuffix(line, ".json") {
			continue
		}
		if _, err := os.Stat(filepath.Join(cacheDir, "v1", line)); err != nil {
			t.Errorf("manifest names non-resident entry %s: %v", line, err)
		}
	}
}
