package core

import (
	"encoding/json"
	"fmt"
	"os"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/power"
	"liquidarch/internal/workload"
)

// On real hardware a model costs 53 builds at ~30 minutes each, so being
// able to persist and reload one matters to a practitioner. Models
// serialize to JSON with variables identified by name; loading re-binds
// them against the full paper space.

type entryJSON struct {
	Var      string  `json:"var"`
	Cycles   uint64  `json:"cycles"`
	LUTs     int     `json:"luts"`
	BRAM     int     `json:"bram"`
	Rho      float64 `json:"rho"`
	Lambda   int     `json:"lambda"`
	Beta     int     `json:"beta"`
	DynamicJ float64 `json:"dynamic_j"`
	StaticJ  float64 `json:"static_j"`
	Epsilon  float64 `json:"epsilon"`
}

type modelJSON struct {
	App          string      `json:"app"`
	Scale        string      `json:"scale"`
	BaseCycles   uint64      `json:"base_cycles"`
	BaseLUTs     int         `json:"base_luts"`
	BaseBRAM     int         `json:"base_bram"`
	BaseDynamicJ float64     `json:"base_dynamic_j"`
	BaseStaticJ  float64     `json:"base_static_j"`
	Entries      []entryJSON `json:"entries"`
}

// MarshalJSON serializes the model with variables identified by name.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		App:          m.App,
		Scale:        m.Scale.String(),
		BaseCycles:   m.BaseCycles,
		BaseLUTs:     m.BaseResources.LUTs,
		BaseBRAM:     m.BaseResources.BRAM,
		BaseDynamicJ: m.BaseEnergy.DynamicJ,
		BaseStaticJ:  m.BaseEnergy.StaticJ,
	}
	for _, e := range m.Entries {
		out.Entries = append(out.Entries, entryJSON{
			Var:      e.Var.Name,
			Cycles:   e.Cycles,
			LUTs:     e.Resources.LUTs,
			BRAM:     e.Resources.BRAM,
			Rho:      e.Rho,
			Lambda:   e.Lambda,
			Beta:     e.Beta,
			DynamicJ: e.Energy.DynamicJ,
			StaticJ:  e.Energy.StaticJ,
			Epsilon:  e.Epsilon,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON rebuilds the model, re-binding variables by name against
// the full paper space (restricted sub-space models load too, since their
// variables are a subset by construction).
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: parsing model: %w", err)
	}
	scale, ok := workload.ParseScale(in.Scale)
	if !ok {
		return fmt.Errorf("core: unknown scale %q in model", in.Scale)
	}
	full := config.FullSpace()
	var names []string
	for _, e := range in.Entries {
		names = append(names, e.Var)
	}
	space, err := config.SpaceFromNames(names)
	if err != nil {
		return fmt.Errorf("core: rebinding model: %w", err)
	}

	m.App = in.App
	m.Scale = scale
	m.Space = space
	m.BaseCycles = in.BaseCycles
	m.BaseResources = fpga.Resources{LUTs: in.BaseLUTs, BRAM: in.BaseBRAM}
	m.BaseEnergy = power.Estimate{DynamicJ: in.BaseDynamicJ, StaticJ: in.BaseStaticJ}
	m.Entries = m.Entries[:0]
	for _, e := range in.Entries {
		v, ok := full.ByName(e.Var)
		if !ok {
			return fmt.Errorf("core: model variable %q unknown", e.Var)
		}
		m.Entries = append(m.Entries, Entry{
			Var:       v,
			Cycles:    e.Cycles,
			Resources: fpga.Resources{LUTs: e.LUTs, BRAM: e.BRAM},
			Rho:       e.Rho,
			Lambda:    e.Lambda,
			Beta:      e.Beta,
			Energy:    power.Estimate{DynamicJ: e.DynamicJ, StaticJ: e.StaticJ},
			Epsilon:   e.Epsilon,
		})
	}
	return nil
}

// SaveModel writes the model to a JSON file.
func SaveModel(m *Model, path string) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model back from a JSON file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	m := &Model{}
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return m, nil
}
