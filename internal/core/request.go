package core

import (
	"fmt"

	"liquidarch/internal/config"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Request is the one description of a tuning run, shared by every
// surface: the autoarch CLI's flags, the autoarchd daemon's JobRequest,
// the experiment harnesses and the examples all map onto it and hand it
// to Session.Tune. The zero value of every optional field selects the
// documented default, so a Request can be built field-by-field from any
// wire format without translation tables.
type Request struct {
	// App names the benchmark to tune (progs registry: blastn, drr,
	// frag, arith, mix).
	App string
	// Scale selects the workload size (default Small — the zero value).
	Scale workload.Scale
	// Space is the decision-variable space; nil means the full
	// 52-variable paper space.
	Space *config.Space
	// Weights are the objective weights; the zero value — including an
	// explicitly all-zero weighting, whose objective would score every
	// configuration 0 — selects the paper's runtime weighting
	// (w1=100, w2=1).
	Weights Weights
	// SampleInstructions, when nonzero, truncates every measurement run
	// after that many instructions.
	SampleInstructions uint64
	// Workers bounds this request's parallel measurement runs; 0 uses
	// the session's default.
	Workers int

	// IncludeModel embeds the full perturbation model in the report's
	// wire document (the in-memory model is always available through
	// Report.Artifacts).
	IncludeModel bool
	// SkipValidation skips the "actual synthesis" run of the
	// recommendation; Report.Validation is then nil. Phase-aware runs
	// never validate.
	SkipValidation bool

	// Model, when set, is a pre-built perturbation model (core.LoadModel)
	// to solve instead of measuring; the model's own space overrides
	// Space. Incompatible with Phases.
	Model *Model

	// Phases switches the run to phase-aware tuning: the report gains
	// the Phases block — one recommendation per detected execution phase
	// plus the reconfiguration-schedule decision. The pointee's zero
	// values select the phase defaults.
	Phases *PhaseOptions

	// Replay, valid only with Phases, replays the per-phase schedule for
	// real: one extra simulation reshapes the platform configuration at
	// every schedule boundary, and the report gains the Replay block
	// with the actual per-segment cycles and the modeled-vs-replayed
	// conformance error. Like the execution-tuning knobs, Replay is a
	// decision-half flag: it never touches the measurement provider, so
	// cached measurements and the shared model layer are byte-identical
	// with or without it.
	Replay bool
	// Online, valid only with Phases, additionally runs the closed-loop
	// mode: the platform classifies each live interval's block-signature
	// vector against the trace's phase representatives and switches
	// configuration without the precomputed schedule. The report gains
	// the Online block, including how often the adaptive run diverged
	// from the schedule. Decision-half only, like Replay.
	Online bool

	// Observer, when set, receives per-measurement progress.
	Observer Observer
}

// Observer receives tuning progress: done of total expected
// measurements have completed — cache and store hits included, which is
// why a warm session's progress jumps straight to total. Callbacks may
// arrive concurrently from the measuring goroutines.
type Observer interface {
	TuneProgress(done, total int)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(done, total int)

// TuneProgress implements Observer.
func (f ObserverFunc) TuneProgress(done, total int) { f(done, total) }

// resolve validates the request into its tuning inputs, applying the
// documented defaults.
func (r Request) resolve() (*progs.Benchmark, *config.Space, Weights, error) {
	b, ok := progs.ByName(r.App)
	if !ok {
		return nil, nil, Weights{}, fmt.Errorf("core: unknown app %q", r.App)
	}
	space := r.Space
	if r.Model != nil {
		if r.Phases != nil {
			return nil, nil, Weights{}, fmt.Errorf("core: a pre-built model cannot drive phase-aware tuning (phase runs build one model per phase)")
		}
		space = r.Model.Space
	}
	if space == nil {
		space = config.FullSpace()
	}
	if (r.Replay || r.Online) && r.Phases == nil {
		return nil, nil, Weights{}, fmt.Errorf("core: replay and online modes require phase-aware tuning (set Phases)")
	}
	w := r.Weights
	if w == (Weights{}) {
		w = RuntimeWeights()
	}
	return b, space, w, nil
}
