package core

import "encoding/json"

// TuneReport is the one serialization of a complete tuning run — model
// summary, chosen configuration and validation — shared by the autoarch
// CLI (-json) and the autoarchd daemon's job results, so scripts consume
// the same document no matter which surface ran the tuning.
type TuneReport struct {
	// App and Scale identify the workload.
	App   string `json:"app"`
	Scale string `json:"scale"`
	// SpaceVars is the decision-space size (52 for the full paper space).
	SpaceVars int `json:"space_vars"`
	// Weights are the objective weights the solver ran under.
	Weights Weights `json:"weights"`

	// Base is the unmodified LEON2 configuration's measured cost.
	Base CostPoint `json:"base"`

	// Recommendation is the solver's output.
	Recommendation RecommendationReport `json:"recommendation"`

	// Validation is the recommended configuration actually built and run
	// (the paper's "actual synthesis" row).
	Validation CostPoint `json:"validation"`

	// Model, when requested, lists every measured perturbation.
	Model *Model `json:"model,omitempty"`
}

// CostPoint is one configuration's measured cost in the report.
type CostPoint struct {
	Cycles  uint64  `json:"cycles"`
	Seconds float64 `json:"seconds"`
	LUTPct  int     `json:"lut_pct"`
	BRAMPct int     `json:"bram_pct"`
	// RuntimePct and EnergyPct are deltas over the base (zero for the
	// base itself).
	RuntimePct float64 `json:"runtime_pct,omitempty"`
	EnergyPct  float64 `json:"energy_pct,omitempty"`
}

// RecommendationReport is the serialized solver outcome.
type RecommendationReport struct {
	// Changes lists the selected parameter changes in space order; empty
	// means "keep the base configuration".
	Changes []string `json:"changes"`
	// Config is the canonical rendering of the recommended configuration.
	Config string `json:"config"`
	// Predicted is the optimizer's cost approximation.
	Predicted Prediction `json:"predicted"`
	// Objective, SolverNodes and Proven report the solve itself.
	Objective   float64 `json:"objective"`
	SolverNodes int     `json:"solver_nodes"`
	Proven      bool    `json:"proven"`
}

// NewTuneReport assembles the shared document from a tuning run's pieces.
// val may be nil (validation skipped); includeModel controls whether the
// full perturbation model is embedded.
func NewTuneReport(m *Model, rec *Recommendation, val *Validation, includeModel bool) *TuneReport {
	r := &TuneReport{
		App:       m.App,
		Scale:     m.Scale.String(),
		SpaceVars: m.Space.Len(),
		Weights:   rec.Weights,
		Base: CostPoint{
			Cycles:  m.BaseCycles,
			Seconds: float64(m.BaseCycles) / 25e6,
			LUTPct:  m.BaseResources.LUTPercent(),
			BRAMPct: m.BaseResources.BRAMPercent(),
		},
		Recommendation: recommendationReport(rec),
	}
	if val != nil {
		r.Validation = CostPoint{
			Cycles:     val.Cycles,
			Seconds:    float64(val.Cycles) / 25e6,
			LUTPct:     val.Resources.LUTPercent(),
			BRAMPct:    val.Resources.BRAMPercent(),
			RuntimePct: val.RuntimePct,
			EnergyPct:  val.EnergyPct,
		}
	}
	if includeModel {
		r.Model = m
	}
	return r
}

// MarshalIndent renders the report as indented JSON with a trailing
// newline, the exact byte stream both the CLI and the daemon emit.
func (r *TuneReport) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
