package core

import (
	"encoding/json"

	"liquidarch/internal/fpga"
	"liquidarch/internal/phase"
)

// Report is the one serialization of a complete tuning run, shared by
// every surface — the autoarch CLI (-json), the autoarchd daemon's job
// results, the experiment harnesses and the examples — so scripts
// consume the same document no matter which surface ran the tuning.
//
// The document has one shape: identity (app, scale, space, weights),
// the base configuration's measured cost, the solver's recommendation,
// and the optional validation and model blocks. A phase-aware run adds
// the "phases" block — trace, per-phase recommendations and the
// reconfiguration-schedule decision — and omits validation (phase runs
// compare modeled schedules, they do not re-validate). For plain runs
// the bytes are exactly the pre-unification TuneReport document.
type Report struct {
	// App and Scale identify the workload.
	App   string `json:"app"`
	Scale string `json:"scale"`
	// SpaceVars is the decision-space size (52 for the full paper space).
	SpaceVars int `json:"space_vars"`
	// Weights are the objective weights the solver ran under.
	Weights Weights `json:"weights"`

	// Base is the unmodified LEON2 configuration's measured cost.
	Base CostPoint `json:"base"`

	// Recommendation is the solver's output — for phase-aware runs, the
	// whole-program recommendation the schedule is weighed against.
	Recommendation RecommendationReport `json:"recommendation"`

	// Validation is the recommended configuration actually built and run
	// (the paper's "actual synthesis" row); nil when skipped and for
	// phase-aware runs.
	Validation *CostPoint `json:"validation,omitempty"`

	// Model, when requested, lists every measured perturbation.
	Model *Model `json:"model,omitempty"`

	// Phases is present iff phase-aware tuning was requested.
	Phases *PhaseBlock `json:"phases,omitempty"`

	// Replay is present iff schedule replay was requested
	// (Request.Replay): the per-phase schedule executed for real, with
	// the modeled-vs-replayed conformance error.
	Replay *ReplayBlock `json:"replay,omitempty"`

	// Online is present iff closed-loop adaptation was requested
	// (Request.Online): a replay driven by live signature
	// classification instead of the precomputed schedule.
	Online *OnlineBlock `json:"online,omitempty"`

	// Artifacts carries the in-memory objects behind the document —
	// typed configurations, the full model, the raw solver outcomes —
	// for library consumers; it never serializes.
	Artifacts *Artifacts `json:"-"`
}

// Artifacts are the in-memory products of a tuning run, attached to the
// Report for programmatic consumers (the experiment harnesses, the
// examples) that need more than the wire document: decoded
// configurations, resource structs, the model even when it is not
// embedded in the JSON.
type Artifacts struct {
	// Model is the whole-program perturbation model (always populated,
	// unlike Report.Model which is opt-in for the wire).
	Model *Model
	// Recommendation and Validation are the raw solver outcome and
	// validation measurement (Validation nil when skipped).
	Recommendation *Recommendation
	Validation     *Validation
	// PhaseModels and PhaseRecommendations hold, for phase-aware runs,
	// one model and one solved outcome per detected phase.
	PhaseModels          []*Model
	PhaseRecommendations []*Recommendation
}

// PhaseBlock is the phase-aware portion of a Report: the detected
// structure, one recommendation per phase, and the schedule decision
// against the whole-program recommendation.
type PhaseBlock struct {
	// IntervalInstructions is the profiling interval length;
	// SwitchPenaltyCycles the cycle cost of a full reconfiguration, of
	// which each transition is charged its proportional share.
	IntervalInstructions uint64 `json:"interval_instructions"`
	SwitchPenaltyCycles  uint64 `json:"switch_penalty_cycles"`

	// Trace is the detected phase structure.
	Trace *phase.Trace `json:"trace"`
	// Recommendations holds one solved model per detected phase.
	Recommendations []PhaseRecommendation `json:"recommendations"`

	// Schedule is the per-phase plan over the trace's segments.
	// Switches counts its mid-run reconfigurations (entries whose config
	// differs from their predecessor's); SwitchCostCycles is their total
	// modeled cost — each transition charged SwitchPenaltyCycles per
	// configuration parameter it actually changes.
	Schedule         []ScheduleEntry `json:"schedule"`
	Switches         int             `json:"switches"`
	SwitchCostCycles uint64          `json:"switch_cost_cycles"`

	// PerPhaseCycles is the schedule's modeled whole-run cost: each
	// phase under its own configuration plus SwitchCostCycles.
	// WholeProgramCycles is the single recommendation's modeled cost.
	// PerPhaseWins reports the decision; SavingsPct the margin (negative
	// when the whole-program configuration wins).
	PerPhaseCycles     float64 `json:"per_phase_predicted_cycles"`
	WholeProgramCycles float64 `json:"whole_program_predicted_cycles"`
	PerPhaseWins       bool    `json:"per_phase_wins"`
	SavingsPct         float64 `json:"savings_pct"`
}

// CostPoint is one configuration's measured cost in the report.
type CostPoint struct {
	Cycles  uint64  `json:"cycles"`
	Seconds float64 `json:"seconds"`
	LUTPct  int     `json:"lut_pct"`
	BRAMPct int     `json:"bram_pct"`
	// RuntimePct and EnergyPct are deltas over the base (zero for the
	// base itself).
	RuntimePct float64 `json:"runtime_pct,omitempty"`
	EnergyPct  float64 `json:"energy_pct,omitempty"`
}

// RecommendationReport is the serialized solver outcome.
type RecommendationReport struct {
	// Changes lists the selected parameter changes in space order; empty
	// means "keep the base configuration".
	Changes []string `json:"changes"`
	// Config is the canonical rendering of the recommended configuration.
	Config string `json:"config"`
	// Predicted is the optimizer's cost approximation.
	Predicted Prediction `json:"predicted"`
	// Objective, SolverNodes and Proven report the solve itself.
	Objective   float64 `json:"objective"`
	SolverNodes int     `json:"solver_nodes"`
	Proven      bool    `json:"proven"`
}

// PhaseRecommendation is one phase's solved model.
type PhaseRecommendation struct {
	// Phase is the phase ID of the trace.
	Phase int `json:"phase"`
	// Intervals and Instructions describe the phase's share of the run.
	Intervals    int    `json:"intervals"`
	Instructions uint64 `json:"instructions"`
	// BaseCycles is the phase's cost on the base configuration.
	BaseCycles uint64 `json:"base_cycles"`
	// Recommendation is the phase's solved BINLP outcome; its Predicted
	// runtime is the phase's modeled cost under its own configuration.
	Recommendation RecommendationReport `json:"recommendation"`
}

// ScheduleEntry is one segment of the per-phase reconfiguration
// schedule.
type ScheduleEntry struct {
	// Phase, Start and End mirror the trace segment.
	Phase int `json:"phase"`
	Start int `json:"start"`
	End   int `json:"end"`
	// Config is the configuration the segment runs under.
	Config string `json:"config"`
	// Switch is true when entering this segment requires a
	// reconfiguration (its config differs from the previous segment's).
	// ChangedVars counts the configuration parameters that actually
	// change at the boundary, and SwitchCostCycles the transition's
	// modeled cost: the run's SwitchPenaltyCycles (a full reshape)
	// scaled by ChangedVars over the configuration's parameter-group
	// count — a partial reconfiguration rewriting less fabric costs
	// proportionally less.
	Switch           bool   `json:"switch,omitempty"`
	ChangedVars      int    `json:"changed_vars,omitempty"`
	SwitchCostCycles uint64 `json:"switch_cost_cycles,omitempty"`
}

// ReplayBlock is the schedule-replay portion of a Report: the
// per-phase schedule executed as one real simulation that reshapes the
// configuration at each boundary, and the conformance figure comparing
// that actual cost against the model's prediction.
type ReplayBlock struct {
	// IntervalInstructions is the boundary grid the replay ran at (the
	// trace's profiling interval length).
	IntervalInstructions uint64 `json:"interval_instructions"`
	// Segments are the executed stretches in order, each with its actual
	// simulated cost and the switch accounting at its entry boundary.
	Segments []ReplaySegmentReport `json:"segments"`
	// Switches counts the mid-run reconfigurations performed;
	// SwitchCostCycles their total modeled cost under the same
	// partial-reconfiguration pricing the schedule uses.
	Switches         int    `json:"switches"`
	SwitchCostCycles uint64 `json:"switch_cost_cycles"`
	// SimulatedCycles is the replay's raw simulated cost; ActualCycles
	// adds the modeled switch cost — the number the prediction is
	// judged against.
	SimulatedCycles uint64 `json:"simulated_cycles"`
	ActualCycles    uint64 `json:"actual_cycles"`
	// ModeledCycles is the phase block's predicted schedule cost
	// (per-phase predictions plus switch cost); ErrorPct the
	// modeled-vs-replayed conformance error, signed:
	// 100*(modeled-actual)/actual.
	ModeledCycles float64 `json:"modeled_cycles"`
	ErrorPct      float64 `json:"error_pct"`
	// ExitCode and Checksum are the replayed program's architectural
	// results — identical to any single-configuration run's, which the
	// replay verifies by construction. Sampled records a truncated run.
	ExitCode uint32 `json:"exit_code"`
	Checksum uint32 `json:"checksum"`
	Sampled  bool   `json:"sampled,omitempty"`
}

// ReplaySegmentReport is one executed stretch of a replay.
type ReplaySegmentReport struct {
	// Segment indexes the stretch; Phase is the phase whose
	// configuration it ran under (the classifier's pick, for online
	// runs); Start and End its interval span, inclusive.
	Segment int `json:"segment"`
	Phase   int `json:"phase"`
	Start   int `json:"start"`
	End     int `json:"end"`
	// Config is the configuration the stretch ran under.
	Config string `json:"config"`
	// Instructions and Cycles are the stretch's actual simulated cost.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// Switch marks a reconfiguration at the stretch's entry;
	// ChangedVars and SwitchCostCycles mirror ScheduleEntry's
	// accounting.
	Switch           bool   `json:"switch,omitempty"`
	ChangedVars      int    `json:"changed_vars,omitempty"`
	SwitchCostCycles uint64 `json:"switch_cost_cycles,omitempty"`
}

// OnlineBlock is the closed-loop portion of a Report: a replay whose
// configuration choices came from live signature classification
// instead of the precomputed schedule.
type OnlineBlock struct {
	ReplayBlock
	// Divergences counts the intervals the online run executed under a
	// configuration differing from the precomputed schedule's choice
	// for that interval — zero when every phase is stable enough to
	// classify back to itself. Unclassified counts the boundary
	// decisions where no representative lay within the acceptance
	// bound (the run then keeps its current configuration).
	Divergences  int `json:"divergences"`
	Unclassified int `json:"unclassified"`
}

// TuneReport is the pre-unification name of the plain-run document.
//
// Deprecated: use Report. The serialization is unchanged.
type TuneReport = Report

// PhaseReport is the pre-unification name of the phase-run document;
// the phase data now lives under Report.Phases.
//
// Deprecated: use Report.
type PhaseReport = Report

// NewTuneReport assembles the shared document from a tuning run's pieces.
// val may be nil (validation skipped); includeModel controls whether the
// full perturbation model is embedded.
//
// Deprecated: Session.Tune returns the assembled *Report directly.
func NewTuneReport(m *Model, rec *Recommendation, val *Validation, includeModel bool) *TuneReport {
	r := &Report{
		App:            m.App,
		Scale:          m.Scale.String(),
		SpaceVars:      m.Space.Len(),
		Weights:        rec.Weights,
		Base:           baseCostPoint(m.BaseCycles, m.BaseResources),
		Recommendation: recommendationReport(rec),
		Artifacts:      &Artifacts{Model: m, Recommendation: rec, Validation: val},
	}
	if val != nil {
		r.Validation = &CostPoint{
			Cycles:     val.Cycles,
			Seconds:    float64(val.Cycles) / 25e6,
			LUTPct:     val.Resources.LUTPercent(),
			BRAMPct:    val.Resources.BRAMPercent(),
			RuntimePct: val.RuntimePct,
			EnergyPct:  val.EnergyPct,
		}
	}
	if includeModel {
		r.Model = m
	}
	return r
}

// baseCostPoint renders a base measurement as a report cost point.
func baseCostPoint(cycles uint64, res fpga.Resources) CostPoint {
	return CostPoint{
		Cycles:  cycles,
		Seconds: float64(cycles) / 25e6,
		LUTPct:  res.LUTPercent(),
		BRAMPct: res.BRAMPercent(),
	}
}

// MarshalIndent renders the report as indented JSON with a trailing
// newline, the exact byte stream both the CLI and the daemon emit.
func (r *Report) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
