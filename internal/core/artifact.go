package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"liquidarch/internal/fpga"
	"liquidarch/internal/phase"
)

// Durable model tier: a built model set — the product of the ~52
// measurements — promoted to an addressable on-disk artifact, so a
// restarted process or a sibling replica skips not only the simulations
// (the measurement store's job) but the 52 store reads and the rebuild
// itself. The format extends core.SaveModel's per-model JSON: one
// document per model set, keyed by the same fingerprint tuple as the
// in-memory model layer (program SHA-256, space fingerprint, scale,
// sample, interval, threshold), with the models serialized exactly as
// SaveModel writes them (variables by name, re-bound on load).
//
// Miss semantics mirror measure.Store: a corrupt, version-mismatched or
// key-mismatched artifact reads as a miss and is removed on sight
// (read-repair); failed builds are never spilled, so an artifact always
// describes a completed build. Writes are temp-file + rename, so
// replicas sharing a directory never observe a partial artifact.

// ModelSetVersion is the on-disk model-artifact format version.
// Artifacts live under dir/v<version>/; bumping it orphans (but does not
// delete) artifacts written by older code. v2 added the trace's
// per-phase representative signatures (phase.Trace.Representatives),
// which online adaptation classifies against — v1 phase artifacts lack
// them and must re-detect, so they read as misses.
const ModelSetVersion = 2

// ModelStore is the durable model tier: one JSON artifact per built
// model set under dir/v<version>/, named by the set's key hash. It is
// safe for concurrent use within a process and for sharing a directory
// across replicas.
type ModelStore struct {
	dir string

	hits   atomic.Uint64 // model sets answered from disk
	misses atomic.Uint64 // lookups that fell through to a build
	spills atomic.Uint64 // completed builds written to disk
}

// NewModelStore opens (creating if needed) a model-artifact store rooted
// at dir.
func NewModelStore(dir string) (*ModelStore, error) {
	s := &ModelStore{dir: dir}
	if err := os.MkdirAll(s.versionDir(), 0o755); err != nil {
		return nil, fmt.Errorf("core: opening model store: %w", err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *ModelStore) Dir() string { return s.dir }

func (s *ModelStore) versionDir() string {
	return filepath.Join(s.dir, fmt.Sprintf("v%d", ModelSetVersion))
}

// artifactID is the durable identity of a model set: the hex SHA-256
// over the modelKey's fields. It names both the artifact file and the
// measurement store's set manifest (measure.Store.SaveSet), so the two
// tiers cross-reference by construction.
func (k modelKey) artifactID() string {
	h := sha256.New()
	fmt.Fprintf(h, "prog=%s\nspace=%s\nscale=%s\nsample=%d\ninterval=%d\nthreshold=%g\n",
		k.prog, k.space, k.scale, k.sample, k.interval, k.threshold)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *ModelStore) path(key modelKey) string {
	return filepath.Join(s.versionDir(), key.artifactID()+".json")
}

// modelSetJSON is the serialized model-set artifact. The key fields are
// stored alongside the payload so a load can verify the artifact really
// answers the requested key (a foreign or hash-colliding file reads as
// corrupt). Models reuse Model's own JSON form; phase artifacts carry
// the detection trace and the base run's per-phase profiles, which is
// everything phaseReport consumes beyond the models themselves.
type modelSetJSON struct {
	Version      int               `json:"version"`
	App          string            `json:"app,omitempty"`
	Prog         string            `json:"prog"`
	Space        string            `json:"space"`
	Scale        string            `json:"scale"`
	Sample       uint64            `json:"sample,omitempty"`
	Interval     uint64            `json:"interval,omitempty"`
	Threshold    float64           `json:"threshold,omitempty"`
	BaseLUTs     int               `json:"base_luts"`
	BaseBRAM     int               `json:"base_bram"`
	Models       []json.RawMessage `json:"models"`
	Trace        *phase.Trace      `json:"trace,omitempty"`
	BaseProfiles []phase.Profile   `json:"base_profiles,omitempty"`
}

// matches reports whether the artifact's stored key fields equal the
// requested key's.
func (a *modelSetJSON) matches(key modelKey) bool {
	return a.Prog == key.prog && a.Space == key.space &&
		a.Scale == key.scale.String() && a.Sample == key.sample &&
		a.Interval == key.interval && a.Threshold == key.threshold
}

// load returns the model set stored for key, or ok=false on a miss. A
// corrupt, version-mismatched or key-mismatched artifact is removed on
// sight (read-repair) and reads as a miss — the caller rebuilds and the
// next spill replaces it.
func (s *ModelStore) load(key modelKey) (*modelSet, bool) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	set, err := decodeModelSet(data, key)
	if err != nil {
		_ = os.Remove(path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return set, true
}

// decodeModelSet parses and validates one artifact against key.
func decodeModelSet(data []byte, key modelKey) (*modelSet, error) {
	var in modelSetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: parsing model artifact: %w", err)
	}
	if in.Version != ModelSetVersion {
		return nil, fmt.Errorf("core: model artifact is format v%d, want v%d", in.Version, ModelSetVersion)
	}
	if !in.matches(key) {
		return nil, fmt.Errorf("core: model artifact does not answer its key")
	}
	if len(in.Models) == 0 {
		return nil, fmt.Errorf("core: model artifact holds no models")
	}
	if in.Trace != nil {
		// A phase artifact must be internally consistent: one model per
		// phase beyond the whole-program one, one base profile per phase,
		// one representative signature per phase (the online classifier's
		// references).
		if len(in.Models) != 1+in.Trace.Phases || len(in.BaseProfiles) != in.Trace.Phases {
			return nil, fmt.Errorf("core: phase model artifact is inconsistent")
		}
		if len(in.Trace.Representatives) != in.Trace.Phases {
			return nil, fmt.Errorf("core: phase model artifact lacks phase representatives")
		}
	} else if len(in.Models) != 1 {
		return nil, fmt.Errorf("core: plain model artifact holds %d models", len(in.Models))
	}
	set := &modelSet{
		baseRes:      fpga.Resources{LUTs: in.BaseLUTs, BRAM: in.BaseBRAM},
		trace:        in.Trace,
		baseProfiles: in.BaseProfiles,
	}
	for i, raw := range in.Models {
		m := &Model{}
		if err := m.UnmarshalJSON(raw); err != nil {
			return nil, fmt.Errorf("core: model %d of artifact: %w", i, err)
		}
		set.models = append(set.models, m)
	}
	return set, nil
}

// save spills one completed build for key. Only callers holding a
// successfully built set may call it, so an artifact on disk always
// describes a finished build.
func (s *ModelStore) save(key modelKey, set *modelSet) error {
	out := modelSetJSON{
		Version:      ModelSetVersion,
		App:          set.models[0].App,
		Prog:         key.prog,
		Space:        key.space,
		Scale:        key.scale.String(),
		Sample:       key.sample,
		Interval:     key.interval,
		Threshold:    key.threshold,
		BaseLUTs:     set.baseRes.LUTs,
		BaseBRAM:     set.baseRes.BRAM,
		Trace:        set.trace,
		BaseProfiles: set.baseProfiles,
	}
	for _, m := range set.models {
		raw, err := m.MarshalJSON()
		if err != nil {
			return fmt.Errorf("core: encoding model artifact: %w", err)
		}
		out.Models = append(out.Models, raw)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding model artifact: %w", err)
	}
	if err := writeFileAtomic(s.path(key), data); err != nil {
		return err
	}
	s.spills.Add(1)
	return nil
}

// writeFileAtomic writes data to path via temp file + rename, so
// concurrent readers (and sibling replicas) never observe a partial
// artifact.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("core: writing %s: %w", filepath.Base(path), err)
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing %s: %w", filepath.Base(path), werr)
	}
	return nil
}
