package measure

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Auto parallelism split: a measurement sweep has two levers — how many
// runs execute concurrently (the ForEach worker count) and how many
// workers each interval-profiled run may spend on checkpointed parallel
// replay (platform.Options.IntraRunWorkers). Splitting GOMAXPROCS
// between them statically either starves the sweep on wide fan-outs or
// oversubscribes the host on narrow ones. AutoPlan measures the host's
// effective CPU parallelism once per process (a one-shot calibration —
// hyperthread-shared cores and cgroup throttling both make NumCPU an
// overestimate) and splits it: sweep-level concurrency first (it scales
// embarrassingly), intra-run replay with whatever remains.

// Plan is one parallelism split for a measurement sweep.
type Plan struct {
	// SweepWorkers bounds the concurrently executing runs (the ForEach
	// worker count).
	SweepWorkers int
	// IntraRunWorkers bounds each run's checkpointed parallel interval
	// replay; 1 means serial runs (all parallelism spent at sweep level).
	IntraRunWorkers int
}

// PlannerStats is a point-in-time snapshot of the process-wide planner.
type PlannerStats struct {
	// Calibrations counts the one-shot probes run (0 before the first
	// AutoPlan, 1 after — the result is cached per process).
	Calibrations uint64 `json:"calibrations"`
	// GOMAXPROCS is the scheduler's processor bound; EffectiveParallelism
	// the calibrated usable parallelism (<= GOMAXPROCS; 0 until the first
	// calibration).
	GOMAXPROCS           int `json:"gomaxprocs"`
	EffectiveParallelism int `json:"effective_parallelism"`
	// Plans counts AutoPlan calls; the Last* fields echo the most recent
	// split handed out.
	Plans               uint64 `json:"plans"`
	LastSweepWorkers    int    `json:"last_sweep_workers,omitempty"`
	LastIntraRunWorkers int    `json:"last_intra_run_workers,omitempty"`
}

var (
	calibrateOnce sync.Once
	calibratedPar atomic.Int64

	planCalibrations atomic.Uint64
	planCount        atomic.Uint64
	planLastSweep    atomic.Int64
	planLastIntra    atomic.Int64
)

// probeIterations sizes one calibration work unit: a few milliseconds of
// pure-CPU xorshift, long enough to dominate goroutine startup, short
// enough that the once-per-process calibration is invisible next to a
// single simulation.
const probeIterations = 1 << 22

// probeSink defeats dead-code elimination of the probe loop.
var probeSink atomic.Uint64

func probeWork() {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < probeIterations; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	probeSink.Add(x)
}

// probe runs par concurrent work units and returns the wall time.
func probe(par int) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probeWork()
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// effectiveParallelism returns the host's calibrated usable parallelism,
// measuring it on first use: n units of work run n-way concurrent
// against one unit serial — perfect scaling gives speedup n, shared
// hyperthreads or a throttled cgroup give less. Cached per process.
func effectiveParallelism() int {
	calibrateOnce.Do(func() {
		planCalibrations.Add(1)
		n := runtime.GOMAXPROCS(0)
		if n <= 1 {
			calibratedPar.Store(1)
			return
		}
		probeWork() // warm the scheduler and clock up, untimed
		t1 := probe(1)
		tn := probe(n)
		p := n
		if tn > 0 {
			p = int(float64(n)*t1.Seconds()/tn.Seconds() + 0.5)
		}
		if p < 1 {
			p = 1
		}
		if p > n {
			p = n
		}
		calibratedPar.Store(int64(p))
	})
	return int(calibratedPar.Load())
}

// AutoPlan picks the parallelism split for a sweep of width runs:
// sweep-level workers get min(width, P) of the calibrated effective
// parallelism P (concurrent runs scale embarrassingly and share
// nothing), and each run's intra-run replay gets the P/SweepWorkers
// that remain — >1 only when the sweep is too narrow to fill the host
// by itself.
func AutoPlan(width int) Plan {
	if width < 1 {
		width = 1
	}
	p := effectiveParallelism()
	sweep := p
	if sweep > width {
		sweep = width
	}
	if sweep < 1 {
		sweep = 1
	}
	intra := p / sweep
	if intra < 1 {
		intra = 1
	}
	planCount.Add(1)
	planLastSweep.Store(int64(sweep))
	planLastIntra.Store(int64(intra))
	return Plan{SweepWorkers: sweep, IntraRunWorkers: intra}
}

// PlannerSnapshot assembles the planner's current counters.
func PlannerSnapshot() PlannerStats {
	return PlannerStats{
		Calibrations:         planCalibrations.Load(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		EffectiveParallelism: int(calibratedPar.Load()),
		Plans:                planCount.Load(),
		LastSweepWorkers:     int(planLastSweep.Load()),
		LastIntraRunWorkers:  int(planLastIntra.Load()),
	}
}
