package measure

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
)

// fakeProvider returns synthetic reports and counts how many requests
// reach it; an optional gate blocks in-flight measurements so tests can
// hold a flight open.
type fakeProvider struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, Measure blocks until it closes
	err   error
}

func (f *fakeProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	n := f.calls.Add(1)
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return &platform.RunReport{
		Config: cfg,
		Stats:  profiler.Stats{Cycles: uint64(1000 + n), Instructions: 500},
	}, nil
}

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testProgram assembles a distinct tiny program per index (the different
// immediate gives each a different image, hence a different fingerprint).
func testProgram(t *testing.T, i int) *asm.Program {
	t.Helper()
	return mustAssemble(t, fmt.Sprintf("  clr %%o0\n  mov %d, %%o1\n  halt\n", i+1))
}

func cfgWithSetKB(kb int) config.Config {
	c := config.Default()
	c.DCache.SetSizeKB = kb
	return c
}

func TestCacheHitMissCounters(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{}
	c := NewCache(inner, 8)
	prog := testProgram(t, 0)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Measure(ctx, prog, config.Default(), platform.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss 2 hits", st)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner measured %d times, want 1", got)
	}
	if st.Entries != 1 || st.Capacity != 8 {
		t.Fatalf("entries/capacity = %d/%d", st.Entries, st.Capacity)
	}
}

func TestCacheTimingKeySharing(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{}
	c := NewCache(inner, 8)
	prog := testProgram(t, 0)
	ctx := context.Background()

	base := config.Default()
	fastread := config.Default()
	fastread.DCache.FastRead = true // cycle-neutral: same timing key

	if _, err := c.Measure(ctx, prog, base, platform.Options{}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Measure(ctx, prog, fastread, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("timing-equivalent configs measured %d times, want 1", got)
	}
	// The report must carry the caller's configuration, not the cached one.
	if !rep.Config.DCache.FastRead {
		t.Error("cached report did not stamp the caller's configuration")
	}
}

func TestCacheEvictionOrderIsLRU(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{}
	c := NewCache(inner, 2)
	ctx := context.Background()
	prog := testProgram(t, 0)
	cfgA, cfgB, cfgC := cfgWithSetKB(1), cfgWithSetKB(2), cfgWithSetKB(8)

	measure := func(cfg config.Config) {
		t.Helper()
		if _, err := c.Measure(ctx, prog, cfg, platform.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	measure(cfgA) // cache: [A]
	measure(cfgB) // cache: [B A]
	measure(cfgA) // touch A => [A B]
	measure(cfgC) // evicts B (LRU) => [C A]

	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	calls := inner.calls.Load()
	measure(cfgA) // must still be resident
	if inner.calls.Load() != calls {
		t.Error("A was evicted; LRU should have evicted B")
	}
	measure(cfgB) // must have been evicted -> re-measures
	if inner.calls.Load() != calls+1 {
		t.Error("B still resident; LRU eviction order wrong")
	}
}

func TestCacheBoundedUnderSweepLargerThanCap(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{}
	const capacity = 4
	c := NewCache(inner, capacity)
	ctx := context.Background()
	prog := testProgram(t, 0)

	// A "sweep" of 32 distinct configurations through a 4-entry cache.
	kbs := []int{1, 2, 4, 8, 16, 32}
	n := 0
	for _, kb := range kbs {
		for sets := 1; sets <= 4; sets++ {
			cfg := config.Default()
			cfg.DCache.SetSizeKB = kb
			cfg.DCache.Sets = sets
			if _, err := c.Measure(ctx, prog, cfg, platform.Options{}); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	st := c.Stats()
	if st.Entries > capacity {
		t.Fatalf("cache holds %d entries, cap %d", st.Entries, capacity)
	}
	if want := uint64(n - capacity); st.Evictions != want {
		t.Fatalf("evictions = %d, want %d", st.Evictions, want)
	}
}

func TestCacheSingleflight(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{gate: make(chan struct{})}
	c := NewCache(inner, 8)
	prog := testProgram(t, 0)
	ctx := context.Background()

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	reps := make([]*platform.RunReport, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = c.Measure(ctx, prog, config.Default(), platform.Options{})
		}(i)
	}
	// Let the callers pile up on the single flight, then release it.
	for inner.calls.Load() == 0 {
		runtime.Gosched()
	}
	close(inner.gate)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if reps[i].Cycles() != reps[0].Cycles() {
			t.Fatalf("caller %d saw different report", i)
		}
		if reps[i] == reps[0] && i != 0 {
			t.Fatal("callers share a report pointer; each must get a copy")
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner measured %d times under %d concurrent callers, want 1", got, callers)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss %d hits", st, callers-1)
	}
}

func TestCacheDoesNotMemoizeErrors(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{err: errors.New("boom")}
	c := NewCache(inner, 8)
	prog := testProgram(t, 0)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.Measure(ctx, prog, config.Default(), platform.Options{}); err == nil {
			t.Fatal("expected error")
		}
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("failed measurement retried %d times, want 2 (no error memoization)", got)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed entries left resident: %+v", st)
	}
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	prog := testProgram(t, 0)
	cfg := cfgWithSetKB(8)
	ctx := context.Background()

	// First process: measure through a persistent provider over a real
	// simulator, spilling to disk.
	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewPersistent(Simulator{}, store1)
	rep1, err := p1.Measure(ctx, prog, cfg, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store1.Len() != 1 {
		t.Fatalf("store holds %d entries after one measurement", store1.Len())
	}

	// "Restarted" process: a fresh Store over the same directory must
	// answer from disk without touching the inner provider.
	inner := &fakeProvider{}
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPersistent(inner, store2)
	rep2, err := p2.Measure(ctx, prog, cfg, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 0 {
		t.Fatal("restarted provider re-measured instead of loading from disk")
	}
	if rep1.Cycles() != rep2.Cycles() || rep1.Checksum != rep2.Checksum ||
		rep1.Stats != rep2.Stats || rep1.ICache != rep2.ICache || rep1.DCache != rep2.DCache {
		t.Fatalf("round-trip changed the report:\nsaved  %+v\nloaded %+v", rep1, rep2)
	}
	if rep2.Config != cfg {
		t.Error("loaded report does not carry the request's configuration")
	}
}

func TestStoreDistinguishesPrograms(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPersistent(&fakeProvider{}, store)
	ctx := context.Background()
	if _, err := p.Measure(ctx, testProgram(t, 1), config.Default(), platform.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Measure(ctx, testProgram(t, 2), config.Default(), platform.Options{}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("distinct programs share a store entry: %d entries", store.Len())
	}
}

func TestForEachRunsAllAndStopsOnError(t *testing.T) {
	t.Parallel()
	var ran atomic.Int64
	err := ForEach(context.Background(), 100, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil || ran.Load() != 100 {
		t.Fatalf("err=%v ran=%d", err, ran.Load())
	}

	ran.Store(0)
	boom := errors.New("boom")
	err = ForEach(context.Background(), 1000, 2, func(i int) error {
		if ran.Add(1) == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() == 1000 {
		t.Error("ForEach dispatched everything despite an early error")
	}
}

func TestForEachHonoursCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 50, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran under a cancelled context", ran.Load())
	}
}

// TestCacheWaiterSurvivesOwnerCancellation: a waiter joining another
// caller's flight must not inherit that owner's context cancellation —
// it retries with its own live context and gets a result.
func TestCacheWaiterSurvivesOwnerCancellation(t *testing.T) {
	t.Parallel()
	inner := &fakeProvider{gate: make(chan struct{})}
	c := NewCache(inner, 8)
	prog := testProgram(t, 0)

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := c.Measure(ownerCtx, prog, config.Default(), platform.Options{})
		ownerErr <- err
	}()
	for inner.calls.Load() == 0 {
		runtime.Gosched()
	}

	waiterErr := make(chan error, 1)
	var waiterRep *platform.RunReport
	go func() {
		rep, err := c.Measure(context.Background(), prog, config.Default(), platform.Options{})
		waiterRep = rep
		waiterErr <- err
	}()
	for c.Stats().Hits == 0 { // waiter has joined the owner's flight
		runtime.Gosched()
	}

	cancelOwner()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	// The waiter must retry as the new flight owner; release its run.
	for inner.calls.Load() < 2 {
		runtime.Gosched()
	}
	close(inner.gate)
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter err = %v, want success despite owner cancellation", err)
	}
	if waiterRep == nil {
		t.Fatal("waiter got no report")
	}
}
