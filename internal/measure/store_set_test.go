package measure

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// setManifestPath returns the manifest file SaveSet(id, ...) writes.
func setManifestPath(store *Store, id string) string {
	return filepath.Join(store.versionDir(), id+".set")
}

func entrySize(t *testing.T, store *Store, key Key) int64 {
	t.Helper()
	info, err := os.Stat(store.path(key))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestStoreGCSetCohesion: the byte sweep evicts a whole complete cold
// set before splitting a warmer one — even when the warmer set holds
// the oldest individual files, the case where plain per-entry LRU would
// shave a set another replica is about to replay.
func TestStoreGCSetCohesion(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := saveN(t, store, 8)
	setA, setB := keys[:4], keys[4:]
	if err := store.SaveSet("aaaa", setA); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("bbbb", setB); err != nil {
		t.Fatal(err)
	}
	// Set A: uniformly 3 hours cold. Set B: three members 4 hours cold
	// but one loaded an hour ago — B's unit heat is 1h, so B is the
	// warmer set despite owning the three oldest files on disk.
	for _, k := range setA {
		age(t, store, k, 3*time.Hour)
	}
	for _, k := range setB[:3] {
		age(t, store, k, 4*time.Hour)
	}
	age(t, store, setB[3], 1*time.Hour)

	size := entrySize(t, store, keys[0])
	res := store.GC(GCPolicy{MaxBytes: 5 * size})
	if res.Removed != 4 || res.RemovedSets != 1 {
		t.Fatalf("GC removed %d entries / %d sets, want the 4-entry set A and its manifest (result %+v)",
			res.Removed, res.RemovedSets, res)
	}
	for _, k := range setA {
		if _, ok := store.Load(k); ok {
			t.Error("cold set A member survived the sweep")
		}
	}
	for _, k := range setB {
		if _, ok := store.Load(k); !ok {
			t.Error("warm set B was split by the sweep")
		}
	}
	if _, err := os.Stat(setManifestPath(store, "aaaa")); !os.IsNotExist(err) {
		t.Error("evicted set A left its manifest behind")
	}
	if _, err := os.Stat(setManifestPath(store, "bbbb")); err != nil {
		t.Error("surviving set B lost its manifest")
	}
}

// TestStoreGCSetAgeIsUnitHeat: one recently used member keeps its whole
// set alive through an age sweep; once every member is cold the set goes
// as one unit, manifest included.
func TestStoreGCSetAgeIsUnitHeat(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := saveN(t, store, 3)
	if err := store.SaveSet("cccc", keys); err != nil {
		t.Fatal(err)
	}
	age(t, store, keys[0], 3*time.Hour)
	age(t, store, keys[1], 3*time.Hour)
	// keys[2] stays fresh: the unit's heat.
	if res := store.GC(GCPolicy{MaxAge: time.Hour}); res.Removed != 0 {
		t.Fatalf("age sweep removed %d members of a set with a fresh member", res.Removed)
	}

	age(t, store, keys[2], 2*time.Hour)
	res := store.GC(GCPolicy{MaxAge: time.Hour})
	if res.Removed != 3 || res.RemovedSets != 1 {
		t.Fatalf("cold set: removed %d entries / %d sets, want 3 / 1", res.Removed, res.RemovedSets)
	}
	if store.Len() != 0 {
		t.Errorf("store holds %d entries after whole-set age eviction", store.Len())
	}
}

// TestStoreGCStaleSetManifest: a manifest naming a missing entry is
// already broken — the sweep collects it (like a stale claim) and the
// survivors revert to loose entries; corrupt manifests go the same way.
func TestStoreGCStaleSetManifest(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := saveN(t, store, 3)
	if err := store.SaveSet("dddd", keys); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(store.path(keys[0])); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(setManifestPath(store, "junk"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	res := store.GC(GCPolicy{})
	if res.RemovedSets != 2 {
		t.Fatalf("GC removed %d set manifests, want the stale one and the corrupt one", res.RemovedSets)
	}
	if res.Removed != 0 {
		t.Fatalf("manifest housekeeping removed %d entries, want 0", res.Removed)
	}
	for _, k := range keys[1:] {
		if _, ok := store.Load(k); !ok {
			t.Error("survivor of a broken set was collected")
		}
	}
	if _, err := os.Stat(setManifestPath(store, "dddd")); !os.IsNotExist(err) {
		t.Error("stale manifest survived the sweep")
	}
	if _, err := os.Stat(setManifestPath(store, "junk")); !os.IsNotExist(err) {
		t.Error("corrupt manifest survived the sweep")
	}
}

// TestStoreGCMergedSets: manifests sharing a member merge into one
// eviction unit — the byte sweep takes or leaves them together.
func TestStoreGCMergedSets(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := saveN(t, store, 5)
	// Two sets overlapping on keys[2], plus a loose fresh entry keys[4].
	if err := store.SaveSet("eeee", keys[:3]); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("ffff", keys[2:4]); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:4] {
		age(t, store, k, 2*time.Hour)
	}

	size := entrySize(t, store, keys[0])
	// Bound of 2 entries: the merged 4-entry unit must go whole; the
	// fresh loose entry survives.
	res := store.GC(GCPolicy{MaxBytes: 2 * size})
	if res.Removed != 4 || res.RemovedSets != 2 {
		t.Fatalf("merged unit: removed %d entries / %d sets, want 4 / 2 (result %+v)",
			res.Removed, res.RemovedSets, res)
	}
	if _, ok := store.Load(keys[4]); !ok {
		t.Error("loose fresh entry lost with the merged unit")
	}
}
