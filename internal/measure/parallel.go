package measure

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers concurrent
// goroutines, stopping the dispatch of new work at the first error or
// context cancellation and returning the first error observed (in-flight
// work drains before it returns). workers <= 0 uses NumCPU.
//
// This is the one worker pool shared by every measurement fan-out — the
// model builder's ~52 single-change jobs, the exhaustive sweeps, the
// daemon's per-job measurement parallelism — replacing the per-package
// sem/WaitGroup copies.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	sem := make(chan struct{}, max(workers, 1))
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			setErr(err)
			break
		}
		if failed() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				setErr(err)
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
