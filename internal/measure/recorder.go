package measure

import (
	"context"
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

// KeyRecorder wraps a provider and records the distinct measurement keys
// of every successful Measure that flows through it — cache and store
// hits included, since the layers below answering a request does not
// change which entries the request depends on. The core session wraps a
// model build's provider in one so the spilled model set can name its
// cohesive measurement set (Store.SaveSet) without the measurement stack
// knowing anything about model builds.
type KeyRecorder struct {
	inner Provider

	mu   sync.Mutex
	keys []Key
	seen map[Key]bool
}

// NewKeyRecorder wraps inner.
func NewKeyRecorder(inner Provider) *KeyRecorder {
	return &KeyRecorder{inner: inner, seen: make(map[Key]bool)}
}

// Measure implements Provider.
func (r *KeyRecorder) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	rep, err := r.inner.Measure(ctx, prog, cfg, opts)
	if err == nil && opts.TraceWriter == nil {
		key := KeyFor(prog, cfg, opts)
		r.mu.Lock()
		if !r.seen[key] {
			r.seen[key] = true
			r.keys = append(r.keys, key)
		}
		r.mu.Unlock()
	}
	return rep, err
}

// Keys returns the distinct recorded keys in first-measurement order.
func (r *KeyRecorder) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Key(nil), r.keys...)
}
