package measure

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
)

// StoreVersion is the on-disk format version. It is part of every entry
// and of the directory layout; bumping it orphans (but does not delete)
// entries written by older code, the same stance core/persist.go takes
// for models.
const StoreVersion = 1

// Store is a versioned on-disk spill of measurement reports: one JSON
// file per key under dir/v<version>/, named by a stable content hash of
// (program fingerprint, timing configuration, run options). Unlike the
// in-memory Cache it survives process restarts, which is what turns a
// ~52-measurement model build into a pure disk replay on the second run —
// the serving analogue of core.SaveModel/LoadModel.
type Store struct {
	dir string

	mu  sync.Mutex
	fps map[*asm.Program]string // memoized program fingerprints
}

// NewStore opens (creating if needed) a report store rooted at dir.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir, fps: make(map[*asm.Program]string)}
	if err := os.MkdirAll(s.versionDir(), 0o755); err != nil {
		return nil, fmt.Errorf("measure: opening store: %w", err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) versionDir() string {
	return filepath.Join(s.dir, fmt.Sprintf("v%d", StoreVersion))
}

// fingerprint returns the stable identity of an assembled program: a
// SHA-256 over its load images and entry point. Memoized per pointer —
// package progs hands out one pointer per (benchmark, scale), so the hash
// is computed once per workload.
func (s *Store) fingerprint(p *asm.Program) string {
	s.mu.Lock()
	if fp, ok := s.fps[p]; ok {
		s.mu.Unlock()
		return fp
	}
	s.mu.Unlock()

	h := sha256.New()
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], p.TextBase)
	h.Write(word[:])
	for _, w := range p.Text {
		binary.BigEndian.PutUint32(word[:], w)
		h.Write(word[:])
	}
	binary.BigEndian.PutUint32(word[:], p.DataBase)
	h.Write(word[:])
	h.Write(p.Data)
	binary.BigEndian.PutUint32(word[:], p.Entry)
	h.Write(word[:])
	fp := hex.EncodeToString(h.Sum(nil))

	s.mu.Lock()
	s.fps[p] = fp
	s.mu.Unlock()
	return fp
}

// path maps a key to its file. The hash input uses the configuration's
// canonical String() of the timing key, so the identity survives process
// restarts (pointer-based Key identity does not).
func (s *Store) path(key Key) string {
	h := sha256.New()
	fmt.Fprintf(h, "prog=%s\ncfg=%s\nram=%d\nmaxi=%d\nsample=%d\n",
		s.fingerprint(key.Prog), key.Cfg.String(), key.RAM, key.MaxI, key.Sample)
	return filepath.Join(s.versionDir(), hex.EncodeToString(h.Sum(nil))+".json")
}

// storedReport is the serialized form of a RunReport. The configuration
// is stored as its canonical diff-from-base strings purely for human
// inspection; loads stamp the caller's configuration in, as the cache
// layers do.
type storedReport struct {
	Version  int            `json:"version"`
	Config   []string       `json:"config"`
	Stats    profiler.Stats `json:"stats"`
	ICache   cache.Stats    `json:"icache"`
	DCache   cache.Stats    `json:"dcache"`
	ExitCode uint32         `json:"exit_code"`
	Checksum uint32         `json:"checksum"`
	Console  string         `json:"console,omitempty"`
	Sampled  bool           `json:"sampled,omitempty"`
}

// Load returns the stored report for key, or ok=false when absent (or
// unreadable — a corrupt entry is treated as a miss, never an error).
func (s *Store) Load(key Key) (*platform.RunReport, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var in storedReport
	if err := json.Unmarshal(data, &in); err != nil || in.Version != StoreVersion {
		return nil, false
	}
	return &platform.RunReport{
		Config:   key.Cfg,
		Stats:    in.Stats,
		ICache:   in.ICache,
		DCache:   in.DCache,
		ExitCode: in.ExitCode,
		Checksum: in.Checksum,
		Console:  in.Console,
		Sampled:  in.Sampled,
	}, true
}

// Save writes the report for key. Writes go through a temp file + rename
// so concurrent readers never observe a partial entry.
func (s *Store) Save(key Key, rep *platform.RunReport) error {
	out := storedReport{
		Version:  StoreVersion,
		Config:   key.Cfg.DiffBase(),
		Stats:    rep.Stats,
		ICache:   rep.ICache,
		DCache:   rep.DCache,
		ExitCode: rep.ExitCode,
		Checksum: rep.Checksum,
		Console:  rep.Console,
		Sampled:  rep.Sampled,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("measure: encoding report: %w", err)
	}
	path := s.path(key)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("measure: saving report: %w", err)
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("measure: saving report: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("measure: saving report: %w", err)
	}
	return nil
}

// Len counts the resident entries (current version only).
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.versionDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// Persistent is a provider that spills every successful measurement to a
// Store and answers future requests from disk. Layer it under a Cache:
// the Cache bounds memory and singleflights, the Store makes results
// survive restarts.
type Persistent struct {
	inner Provider
	store *Store
}

// NewPersistent wraps inner with the on-disk store.
func NewPersistent(inner Provider, store *Store) *Persistent {
	return &Persistent{inner: inner, store: store}
}

// Measure implements Provider. Traced runs bypass the store.
func (p *Persistent) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if opts.TraceWriter != nil {
		return p.inner.Measure(ctx, prog, cfg, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := KeyFor(prog, cfg, opts)
	if rep, ok := p.store.Load(key); ok {
		rep.Config = cfg
		return rep, nil
	}
	rep, err := p.inner.Measure(ctx, prog, cfg, opts)
	if err != nil {
		return nil, err
	}
	// Spill best-effort: a full disk must not fail the measurement.
	_ = p.store.Save(key, rep)
	return rep, nil
}
