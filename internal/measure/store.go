package measure

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/config"
	"liquidarch/internal/obs"
	"liquidarch/internal/platform"
	"liquidarch/internal/profiler"
)

// StoreVersion is the on-disk format version. It is part of every entry
// and of the directory layout; bumping it orphans (but does not delete)
// entries written by older code, the same stance core/persist.go takes
// for models.
const StoreVersion = 1

// manifestName is the store-version handshake file at the store root.
// Replicas sharing one directory agree on the format through it: a
// replica refuses to open a store whose manifest names a newer version
// than it understands, so an old binary never garbage-collects (or
// misreads) a fleet's upgraded store out from under the new replicas.
const manifestName = "store.json"

// manifest is the serialized handshake document.
type manifest struct {
	StoreVersion int `json:"store_version"`
}

// Store is a versioned on-disk spill of measurement reports: one JSON
// file per key under dir/v<version>/, named by a stable content hash of
// (program fingerprint, timing configuration, run options). Unlike the
// in-memory Cache it survives process restarts, which is what turns a
// ~52-measurement model build into a pure disk replay on the second run —
// the serving analogue of core.SaveModel/LoadModel.
//
// A Store is safe for concurrent use within a process and for concurrent
// sharing across processes (multi-replica deployments mounting one
// directory): writes are temp-file + rename so readers never observe a
// partial entry, loads touch the entry's mtime so the GC sweep is
// LRU-ordered, and corrupt entries are repaired (removed) on read rather
// than wedging any replica.
type Store struct {
	dir string

	loads      atomic.Uint64 // successful disk hits
	saves      atomic.Uint64
	repaired   atomic.Uint64 // corrupt entries removed on read
	gcRuns     atomic.Uint64
	gcFiles    atomic.Uint64
	gcBytes    atomic.Uint64
	leaseWins  atomic.Uint64 // claims acquired (this replica measures)
	leaseWaits atomic.Uint64 // waits resolved by another replica's spill

	// Cached resident-footprint walk for Stats: a metrics scrape on an
	// idle store must not turn into a per-file stat storm on a large
	// shared directory. The cache is busted by local activity (loads,
	// saves, repairs, sweeps — any of which may signal a changed
	// footprint) and expires after statsWalkInterval regardless, so
	// other replicas' writes surface too.
	statsMu       sync.Mutex
	statsAt       time.Time
	statsActivity uint64
	statsEnts     int
	statsBytes    int64
}

// NewStore opens (creating if needed) a report store rooted at dir,
// performing the store-version handshake against any existing manifest.
// The handshake runs before the version directory is created, so
// refusing a newer fleet's store leaves it untouched.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("measure: opening store: %w", err)
	}
	if err := s.handshake(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(s.versionDir(), 0o755); err != nil {
		return nil, fmt.Errorf("measure: opening store: %w", err)
	}
	return s, nil
}

// handshake validates (and if needed writes) the root manifest. A
// missing or corrupt manifest is replaced; a manifest from a newer
// format is a hard error — that directory now belongs to newer replicas.
func (s *Store) handshake() error {
	path := filepath.Join(s.dir, manifestName)
	var m manifest
	data, err := os.ReadFile(path)
	if err == nil && json.Unmarshal(data, &m) == nil {
		if m.StoreVersion > StoreVersion {
			return fmt.Errorf("measure: store %s is format v%d, this binary understands v%d — refusing to share it",
				s.dir, m.StoreVersion, StoreVersion)
		}
		if m.StoreVersion == StoreVersion {
			return nil
		}
	}
	// Absent, corrupt, or older: claim the directory for the current
	// format. Racing replicas write byte-identical content, so the
	// last rename winning is harmless.
	out, err := json.Marshal(manifest{StoreVersion: StoreVersion})
	if err != nil {
		return fmt.Errorf("measure: writing store manifest: %w", err)
	}
	return s.writeAtomic(path, append(out, '\n'))
}

// writeAtomic writes data to path via temp file + rename.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("measure: writing %s: %w", filepath.Base(path), err)
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("measure: writing %s: %w", filepath.Base(path), werr)
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) versionDir() string {
	return filepath.Join(s.dir, fmt.Sprintf("v%d", StoreVersion))
}

// path maps a key to its file. The hash input uses the configuration's
// canonical String() of the timing key, so the identity survives process
// restarts (pointer-based Key identity does not). The interval length is
// appended only when set, so every pre-interval-profiling key keeps the
// hash (and the on-disk entry) it had before the field existed.
func (s *Store) path(key Key) string {
	h := sha256.New()
	fmt.Fprintf(h, "prog=%s\ncfg=%s\nram=%d\nmaxi=%d\nsample=%d\n",
		Fingerprint(key.Prog), key.Cfg.String(), key.RAM, key.MaxI, key.Sample)
	if key.Interval > 0 {
		fmt.Fprintf(h, "interval=%d\n", key.Interval)
	}
	return filepath.Join(s.versionDir(), hex.EncodeToString(h.Sum(nil))+".json")
}

// storedReport is the serialized form of a RunReport. The configuration
// is stored as its canonical diff-from-base strings purely for human
// inspection; loads stamp the caller's configuration in, as the cache
// layers do.
type storedReport struct {
	Version   int                 `json:"version"`
	Config    []string            `json:"config"`
	Stats     profiler.Stats      `json:"stats"`
	ICache    cache.Stats         `json:"icache"`
	DCache    cache.Stats         `json:"dcache"`
	ExitCode  uint32              `json:"exit_code"`
	Checksum  uint32              `json:"checksum"`
	Console   string              `json:"console,omitempty"`
	Sampled   bool                `json:"sampled,omitempty"`
	Intervals []platform.Interval `json:"intervals,omitempty"`
}

// Load returns the stored report for key, or ok=false when absent (or
// unreadable — a corrupt entry is treated as a miss, never an error).
//
// Two multi-replica behaviours live here. Read-repair: a corrupt or
// format-mismatched entry is removed on sight, so the next writer
// replaces it and other replicas stop tripping over it (writes are
// atomic renames, so corruption only arises from torn crashes or
// foreign files — a removal lost to a racing re-save costs one
// re-measure, never correctness). LRU touch: a successful load bumps
// the entry's mtime, so the GC sweep evicts cold entries first even
// when the heat comes from a different replica.
func (s *Store) Load(key Key) (*platform.RunReport, bool) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var in storedReport
	if err := json.Unmarshal(data, &in); err != nil || in.Version != StoreVersion {
		if os.Remove(path) == nil {
			s.repaired.Add(1)
		}
		return nil, false
	}
	s.loads.Add(1)
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return &platform.RunReport{
		Config:    key.Cfg,
		Stats:     in.Stats,
		ICache:    in.ICache,
		DCache:    in.DCache,
		ExitCode:  in.ExitCode,
		Checksum:  in.Checksum,
		Console:   in.Console,
		Sampled:   in.Sampled,
		Intervals: in.Intervals,
	}, true
}

// Save writes the report for key. Writes go through a temp file + rename
// so concurrent readers never observe a partial entry.
func (s *Store) Save(key Key, rep *platform.RunReport) error {
	out := storedReport{
		Version:   StoreVersion,
		Config:    key.Cfg.DiffBase(),
		Stats:     rep.Stats,
		ICache:    rep.ICache,
		DCache:    rep.DCache,
		ExitCode:  rep.ExitCode,
		Checksum:  rep.Checksum,
		Console:   rep.Console,
		Sampled:   rep.Sampled,
		Intervals: rep.Intervals,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("measure: encoding report: %w", err)
	}
	if err := s.writeAtomic(s.path(key), data); err != nil {
		return err
	}
	s.saves.Add(1)
	return nil
}

// setManifest marks a group of entries as one cohesive measurement set:
// the ~52 single-change runs behind one model build. The GC sweep treats
// a complete set as a single eviction unit (see GC), so a restarted
// replica replaying a spilled model's measurements finds either all of
// them or none — never a split set that forces a partial rebuild.
type setManifest struct {
	Version int `json:"version"`
	// Entries are the member entry file names (base names, .json
	// included), sorted.
	Entries []string `json:"entries"`
}

// SaveSet records that the entries for keys form one cohesive set,
// written as <id>.set beside the entries (id must be path-safe — the
// callers use a hex fingerprint). Saving an empty set is a no-op.
// Best-effort like entry spills: a lost manifest only costs the set its
// eviction cohesion, never correctness.
func (s *Store) SaveSet(id string, keys []Key) error {
	if len(keys) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(keys))
	names := make([]string, 0, len(keys))
	for _, k := range keys {
		name := filepath.Base(s.path(k))
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	data, err := json.MarshalIndent(setManifest{Version: StoreVersion, Entries: names}, "", "  ")
	if err != nil {
		return fmt.Errorf("measure: encoding set manifest: %w", err)
	}
	return s.writeAtomic(filepath.Join(s.versionDir(), id+".set"), data)
}

// Measurement claim lease (cross-replica singleflight, best effort).
//
// Within one process the Cache's flights guarantee each key is simulated
// once; across replicas sharing a directory, two processes missing the
// same key would both simulate and race the (atomic, therefore harmless
// but wasteful) final rename. The claim file dedupes that: before
// simulating, a replica tries to create <entry>.claim with O_EXCL; the
// winner simulates, spills, and removes the claim, while losers poll for
// the winner's entry. Everything is advisory — a crashed winner's claim
// expires after its TTL (stamped inside the file), losers then fall back
// to simulating locally, and a lost claim file never affects
// correctness, only duplicate work.

// claimPollInterval is how often a waiting replica re-checks for the
// claim winner's spilled entry.
const claimPollInterval = 25 * time.Millisecond

// claimPath returns the claim-file path guarding key's entry.
func (s *Store) claimPath(key Key) string {
	return strings.TrimSuffix(s.path(key), ".json") + ".claim"
}

// TryClaim attempts to become the measuring replica for key. It reports
// true when this replica holds the claim (or when the store is too
// broken to coordinate — then measuring locally is the safe default)
// and false when another replica's unexpired claim stands.
//
// The claim appears atomically with its content: the expiry is written
// to a temp file that is then hard-linked to the claim path (link fails
// when the target exists, preserving the create-exclusive semantics),
// so a contending replica never reads a half-written claim and breaks
// it as corrupt.
func (s *Store) TryClaim(key Key, ttl time.Duration) bool {
	path := s.claimPath(key)
	for attempt := 0; attempt < 2; attempt++ {
		tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-claim-*")
		if err != nil {
			return true // unwritable store: coordinate nothing, just measure
		}
		fmt.Fprintf(tmp, "%d\n", time.Now().Add(ttl).UnixNano())
		tmp.Close()
		lerr := os.Link(tmp.Name(), path)
		os.Remove(tmp.Name())
		if lerr == nil {
			s.leaseWins.Add(1)
			return true
		}
		if !os.IsExist(lerr) {
			return true // filesystem without hard links etc.: just measure
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // winner released between our link and read; retry
			}
			return false
		}
		expiry, perr := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
		if perr != nil {
			// Unparsable claim: break it only once its mtime says it is
			// not a just-created file on a filesystem with lagging
			// visibility.
			if info, serr := os.Stat(path); serr == nil && time.Since(info.ModTime()) < ttl {
				return false
			}
			_ = os.Remove(path)
			continue
		}
		if time.Now().UnixNano() > expiry {
			// Expired claim (crashed winner): break it and retry. Racing
			// breakers are fine — at worst two replicas both measure,
			// the pre-lease behaviour.
			_ = os.Remove(path)
			continue
		}
		return false
	}
	return true // repeated stale claims: stop coordinating, measure
}

// ReleaseClaim removes this replica's claim on key.
func (s *Store) ReleaseClaim(key Key) {
	_ = os.Remove(s.claimPath(key))
}

// WaitForEntry polls for the claim winner's spilled entry for key,
// returning it as soon as it lands. It gives up — returning ok=false, so
// the caller simulates locally — when the claim disappears without an
// entry (the winner failed), when ttl elapses (the winner hung), or when
// ctx is cancelled.
func (s *Store) WaitForEntry(ctx context.Context, key Key, ttl time.Duration) (*platform.RunReport, bool) {
	deadline := time.Now().Add(ttl)
	ticker := time.NewTicker(claimPollInterval)
	defer ticker.Stop()
	for {
		if rep, ok := s.Load(key); ok {
			s.leaseWaits.Add(1)
			return rep, true
		}
		if _, err := os.Stat(s.claimPath(key)); os.IsNotExist(err) {
			// Claim gone, entry absent: the winner gave up (failed run,
			// full disk). One last look closes the release-then-check
			// window, then measure locally.
			if rep, ok := s.Load(key); ok {
				s.leaseWaits.Add(1)
				return rep, true
			}
			return nil, false
		}
		if time.Now().After(deadline) {
			return nil, false
		}
		select {
		case <-ctx.Done():
			return nil, false
		case <-ticker.C:
		}
	}
}

// Len counts the resident entries (current version only).
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.versionDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// GCPolicy bounds the on-disk store. Zero values disable that bound, so
// the zero policy is a no-op sweep.
type GCPolicy struct {
	// MaxBytes caps the total size of resident entries; the sweep
	// removes least-recently-used (oldest-mtime) entries until the
	// store fits.
	MaxBytes int64
	// MaxAge drops entries not loaded or written within the window.
	MaxAge time.Duration
}

// Enabled reports whether the policy bounds anything.
func (p GCPolicy) Enabled() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// GCResult summarizes one sweep.
type GCResult struct {
	// Removed counts the entries deleted, RemovedBytes their size.
	Removed      int
	RemovedBytes int64
	// RemovedSets counts the set manifests deleted — with their evicted
	// set, or on their own when stale or corrupt.
	RemovedSets int
	// Entries and Bytes describe what remains.
	Entries int
	Bytes   int64
}

// gcEntry is one stat'ed store file under consideration.
type gcEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// GC sweeps the current-version directory to within the policy: first by
// age, then LRU-by-mtime down to the byte bound. Loads bump mtimes, so
// mtime order is recency-of-use order — an LRU shared with every replica
// mounting the directory, with no lock and no index file. The sweep
// tolerates concurrent writers and concurrent sweeps: files that vanish
// mid-sweep are skipped, and a just-rewritten entry at worst gets
// removed once and re-measured once. Stale temp files (crashed writers)
// older than an hour are collected too.
//
// Set cohesion: entries named by a set manifest (SaveSet) are evicted as
// one unit whose heat is its newest member's mtime — both bounds remove
// whole complete cold sets before touching a warmer one, so the byte
// sweep never shaves the oldest few entries off a set another replica is
// about to replay (a split set silently costs a whole model rebuild, the
// most expensive miss the store can cause). Manifests sharing a member
// merge into one unit; entries in no manifest are single-entry units,
// giving loose entries exactly the pre-set LRU behaviour. A manifest
// whose members are not all resident is stale — its set is already
// broken — and is collected like an expired claim, its survivors
// reverting to loose; corrupt manifests are removed on sight.
func (s *Store) GC(policy GCPolicy) GCResult {
	s.gcRuns.Add(1)
	now := time.Now()
	// Root-level housekeeping: crashed manifest-rewrite temp files, and
	// v<k> trees orphaned by a StoreVersion bump. Old trees are removed
	// only under an age bound and only once quiescent for MaxAge: the
	// handshake refuses *new* old-version replicas, but one that opened
	// the directory before an upgrade may still be alive — while it
	// keeps hitting disk, its loads and saves keep the old tree's
	// mtimes fresh. Best-effort, not a lease: an old replica idle past
	// MaxAge can lose its tree and pays with re-simulation, never
	// correctness.
	if rootEntries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range rootEntries {
			if e.IsDir() {
				if name, ok := strings.CutPrefix(e.Name(), "v"); ok {
					if k, err := strconv.Atoi(name); err == nil && k < StoreVersion &&
						policy.MaxAge > 0 {
						path := filepath.Join(s.dir, e.Name())
						if now.Sub(newestMtime(path)) > policy.MaxAge {
							_ = os.RemoveAll(path)
						}
					}
				}
				continue
			}
			if !strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			if info, err := e.Info(); err == nil && now.Sub(info.ModTime()) > time.Hour {
				_ = os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	dir := s.versionDir()
	names, err := os.ReadDir(dir)
	if err != nil {
		return GCResult{}
	}
	var res GCResult
	entries := make(map[string]gcEntry) // resident entries by base name
	type setFile struct {
		path    string
		members []string
	}
	var sets []setFile
	for _, e := range names {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // vanished under us
		}
		path := filepath.Join(dir, e.Name())
		if strings.HasPrefix(e.Name(), ".tmp-") {
			if now.Sub(info.ModTime()) > time.Hour {
				_ = os.Remove(path)
			}
			continue
		}
		if strings.HasSuffix(e.Name(), ".claim") {
			// Collect leftover claims of crashed replicas honouring the
			// expiry stamped inside the file — a live claim under a long
			// -store-lease TTL must survive the sweep. TryClaim also
			// breaks expired claims on contact; this handles keys never
			// contended again. Unparsable claims fall back to an hour of
			// mtime age.
			if data, rerr := os.ReadFile(path); rerr == nil {
				if expiry, perr := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64); perr == nil {
					if now.UnixNano() > expiry {
						_ = os.Remove(path)
					}
					continue
				}
			}
			if now.Sub(info.ModTime()) > time.Hour {
				_ = os.Remove(path)
			}
			continue
		}
		if strings.HasSuffix(e.Name(), ".set") {
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				continue // vanished under us
			}
			var m setManifest
			if json.Unmarshal(data, &m) != nil || m.Version != StoreVersion || len(m.Entries) == 0 {
				if os.Remove(path) == nil {
					res.RemovedSets++
				}
				continue
			}
			sets = append(sets, setFile{path: path, members: m.Entries})
			continue
		}
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		entries[e.Name()] = gcEntry{path: path, size: info.Size(), mtime: info.ModTime()}
	}

	// Stale manifests: a member already gone (crashed spill, racing
	// sweep, read-repair) means the set is broken — drop the manifest,
	// its survivors revert to loose entries.
	intact := sets[:0]
	for _, sf := range sets {
		complete := true
		for _, m := range sf.members {
			if _, ok := entries[m]; !ok {
				complete = false
				break
			}
		}
		if !complete {
			if os.Remove(sf.path) == nil {
				res.RemovedSets++
			}
			continue
		}
		intact = append(intact, sf)
	}
	sets = intact

	// Union-find over entry names merges manifests that share a member
	// into one eviction unit; untouched entries stay their own unit.
	parent := make(map[string]string, len(entries))
	for name := range entries {
		parent[name] = name
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, sf := range sets {
		r := find(sf.members[0])
		for _, m := range sf.members[1:] {
			parent[find(m)] = r
		}
	}

	type gcUnit struct {
		members   []gcEntry
		manifests []string
		size      int64
		heat      time.Time // newest member mtime
	}
	units := make(map[string]*gcUnit)
	for name, ge := range entries {
		r := find(name)
		u := units[r]
		if u == nil {
			u = &gcUnit{}
			units[r] = u
		}
		u.members = append(u.members, ge)
		u.size += ge.size
		if ge.mtime.After(u.heat) {
			u.heat = ge.mtime
		}
	}
	for _, sf := range sets {
		u := units[find(sf.members[0])]
		u.manifests = append(u.manifests, sf.path)
	}

	// stuck tracks entries we failed to remove (permissions on a shared
	// dir): still resident, kept on the books so the metrics don't lie.
	var stuck []gcEntry
	removeUnit := func(u *gcUnit) (freed int64) {
		for _, ge := range u.members {
			rerr := os.Remove(ge.path)
			if rerr == nil {
				res.Removed++
				res.RemovedBytes += ge.size
				freed += ge.size
			} else if os.IsNotExist(rerr) {
				freed += ge.size // a racing sweep got it: off the books either way
			} else {
				stuck = append(stuck, ge)
			}
		}
		for _, mp := range u.manifests {
			if os.Remove(mp) == nil {
				res.RemovedSets++
			}
		}
		return freed
	}

	var live []*gcUnit
	var total int64
	for _, u := range units {
		if policy.MaxAge > 0 && now.Sub(u.heat) > policy.MaxAge {
			removeUnit(u)
			continue
		}
		live = append(live, u)
		total += u.size
	}
	if policy.MaxBytes > 0 && total > policy.MaxBytes {
		sort.Slice(live, func(a, b int) bool { return live[a].heat.Before(live[b].heat) })
		i := 0
		for ; i < len(live) && total > policy.MaxBytes; i++ {
			total -= removeUnit(live[i])
		}
		live = live[i:]
	}
	for _, u := range live {
		for _, ge := range u.members {
			res.Entries++
			res.Bytes += ge.size
		}
	}
	for _, ge := range stuck {
		res.Entries++
		res.Bytes += ge.size
	}
	s.gcFiles.Add(uint64(res.Removed))
	s.gcBytes.Add(uint64(res.RemovedBytes))
	s.noteFootprint(s.loads.Load()+s.saves.Load()+s.repaired.Load()+s.gcRuns.Load(),
		res.Entries, res.Bytes)
	return res
}

// newestMtime returns the freshest modification time in dir (the dir
// itself or any immediate entry) — the "is anyone still using this
// tree" probe behind old-version reclamation.
func newestMtime(dir string) time.Time {
	var newest time.Time
	if info, err := os.Stat(dir); err == nil {
		newest = info.ModTime()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return newest
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.ModTime().After(newest) {
			newest = info.ModTime()
		}
	}
	return newest
}

// StoreStats is a point-in-time snapshot of a Store's counters plus its
// resident footprint. Entries and bytes come from a directory walk (so
// they reflect other replicas' writes too), refreshed at most every
// statsWalkInterval and by every GC sweep — a monitoring system
// scraping /v1/metrics does not trigger a per-file stat storm on a
// large shared directory.
type StoreStats struct {
	Dir            string `json:"dir"`
	Version        int    `json:"version"`
	Entries        int    `json:"entries"`
	Bytes          int64  `json:"bytes"`
	Loads          uint64 `json:"loads"`
	Saves          uint64 `json:"saves"`
	Repaired       uint64 `json:"repaired"`
	GCRuns         uint64 `json:"gc_runs"`
	GCRemoved      uint64 `json:"gc_removed"`
	GCRemovedBytes uint64 `json:"gc_removed_bytes"`
	// LeaseWins counts measurement claims this replica acquired,
	// LeaseWaits the measurements it received from another replica's
	// spill instead of simulating.
	LeaseWins  uint64 `json:"lease_wins,omitempty"`
	LeaseWaits uint64 `json:"lease_waits,omitempty"`
}

// statsWalkInterval bounds how often Stats re-walks the directory.
const statsWalkInterval = 5 * time.Second

// Stats assembles the current snapshot.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Dir:            s.dir,
		Version:        StoreVersion,
		Loads:          s.loads.Load(),
		Saves:          s.saves.Load(),
		Repaired:       s.repaired.Load(),
		GCRuns:         s.gcRuns.Load(),
		GCRemoved:      s.gcFiles.Load(),
		GCRemovedBytes: s.gcBytes.Load(),
		LeaseWins:      s.leaseWins.Load(),
		LeaseWaits:     s.leaseWaits.Load(),
	}
	activity := st.Loads + st.Saves + st.Repaired + st.GCRuns
	s.statsMu.Lock()
	if !s.statsAt.IsZero() && activity == s.statsActivity &&
		time.Since(s.statsAt) < statsWalkInterval {
		st.Entries, st.Bytes = s.statsEnts, s.statsBytes
		s.statsMu.Unlock()
		return st
	}
	s.statsMu.Unlock()

	var ents int
	var bytes int64
	if entries, err := os.ReadDir(s.versionDir()); err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			if info, err := e.Info(); err == nil {
				ents++
				bytes += info.Size()
			}
		}
	}
	s.noteFootprint(activity, ents, bytes)
	st.Entries, st.Bytes = ents, bytes
	return st
}

// noteFootprint refreshes the cached resident footprint (Stats walks
// and GC sweeps both feed it), stamping the local-activity level the
// figures correspond to.
func (s *Store) noteFootprint(activity uint64, ents int, bytes int64) {
	s.statsMu.Lock()
	s.statsAt = time.Now()
	s.statsActivity = activity
	s.statsEnts = ents
	s.statsBytes = bytes
	s.statsMu.Unlock()
}

// Persistent is a provider that spills every successful measurement to a
// Store and answers future requests from disk. Layer it under a Cache:
// the Cache bounds memory and singleflights, the Store makes results
// survive restarts.
type Persistent struct {
	inner Provider
	store *Store

	gcPolicy GCPolicy
	gcEvery  uint64
	saven    atomic.Uint64 // saves since the last sweep

	leaseTTL time.Duration
}

// NewPersistent wraps inner with the on-disk store.
func NewPersistent(inner Provider, store *Store) *Persistent {
	return &Persistent{inner: inner, store: store}
}

// DefaultGCEvery is how many spills elapse between GC sweeps when
// EnableGC does not say otherwise. A sweep is one readdir + stats, so
// amortizing over a few dozen writes keeps it invisible next to even a
// single simulation.
const DefaultGCEvery = 64

// EnableGC makes the provider sweep its store to within policy after
// every `every` spills (<= 0 means DefaultGCEvery), and once immediately
// so a long-dormant oversized directory is bounded at startup. Returns
// the receiver for chaining.
func (p *Persistent) EnableGC(policy GCPolicy, every int) *Persistent {
	if every <= 0 {
		every = DefaultGCEvery
	}
	p.gcPolicy = policy
	p.gcEvery = uint64(every)
	if policy.Enabled() {
		p.store.GC(policy)
	}
	return p
}

// Store exposes the underlying store (for metrics and manual sweeps).
func (p *Persistent) Store() *Store { return p.store }

// EnableLease turns on the cross-replica measurement claim lease: before
// simulating a key missing from the store, the provider claims it with a
// TTL-stamped claim file, so a replica racing another's in-flight
// simulation of the same key waits for the winner's spill instead of
// duplicating the work. A claim whose holder crashed or hung expires
// after ttl and waiters fall back to simulating locally — the lease only
// ever saves work, never blocks progress. Returns the receiver for
// chaining.
func (p *Persistent) EnableLease(ttl time.Duration) *Persistent {
	p.leaseTTL = ttl
	return p
}

// Measure implements Provider. Traced runs bypass the store. The
// enclosing measurement span (opened by the Cache above) is annotated
// with the store outcome ("store": hit/miss) and, when the claim lease
// is on, the lease outcome ("lease": win — this replica measured under
// a claim; wait — another replica's spill answered).
func (p *Persistent) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if opts.TraceWriter != nil {
		return p.inner.Measure(ctx, prog, cfg, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	span := obs.Current(ctx)
	key := KeyFor(prog, cfg, opts)
	if rep, ok := p.store.Load(key); ok {
		span.Set(obs.String("store", "hit"))
		rep.Config = cfg
		return rep, nil
	}
	span.Set(obs.String("store", "miss"))
	if p.leaseTTL > 0 {
		if p.store.TryClaim(key, p.leaseTTL) {
			span.Set(obs.String("lease", "win"))
			defer p.store.ReleaseClaim(key)
		} else {
			// Another replica is measuring this key: wait for its spill.
			if rep, ok := p.store.WaitForEntry(ctx, key, p.leaseTTL); ok {
				span.Set(obs.String("lease", "wait"))
				rep.Config = cfg
				return rep, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Lease expired or the winner failed: measure locally,
			// unclaimed (the broken claim is the winner's to clean; ours
			// would race a slow winner's release).
			span.Set(obs.String("lease", "expired"))
		}
	}
	rep, err := p.inner.Measure(ctx, prog, cfg, opts)
	if err != nil {
		return nil, err
	}
	// Spill best-effort: a full disk must not fail the measurement.
	_ = p.store.Save(key, rep)
	if p.gcPolicy.Enabled() && p.saven.Add(1)%p.gcEvery == 0 {
		p.store.GC(p.gcPolicy)
	}
	return rep, nil
}
