package measure

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

// saveN spills n distinct fake measurements through store and returns
// their keys in save order.
func saveN(t *testing.T, store *Store, n int) []Key {
	t.Helper()
	p := NewPersistent(&fakeProvider{}, store)
	ctx := context.Background()
	keys := make([]Key, 0, n)
	for i := 0; i < n; i++ {
		prog := testProgram(t, i)
		if _, err := p.Measure(ctx, prog, config.Default(), platform.Options{}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, KeyFor(prog, config.Default(), platform.Options{}))
	}
	return keys
}

// age rewinds an entry's mtime by d.
func age(t *testing.T, store *Store, key Key, d time.Duration) {
	t.Helper()
	then := time.Now().Add(-d)
	if err := os.Chtimes(store.path(key), then, then); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGCByAge(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := saveN(t, store, 4)
	age(t, store, keys[0], 3*time.Hour)
	age(t, store, keys[1], 2*time.Hour)

	res := store.GC(GCPolicy{MaxAge: time.Hour})
	if res.Removed != 2 {
		t.Fatalf("GC removed %d entries, want the 2 aged ones", res.Removed)
	}
	if res.Entries != 2 || store.Len() != 2 {
		t.Fatalf("GC left %d entries (Len %d), want 2", res.Entries, store.Len())
	}
	for _, k := range keys[:2] {
		if _, ok := store.Load(k); ok {
			t.Error("aged entry still loadable after GC")
		}
	}
	for _, k := range keys[2:] {
		if _, ok := store.Load(k); !ok {
			t.Error("fresh entry lost to an age-only GC")
		}
	}
}

func TestStoreGCByBytesEvictsLRU(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := saveN(t, store, 6)
	// Stamp a strict mtime order: keys[0] coldest … keys[5] hottest.
	for i, k := range keys {
		age(t, store, k, time.Duration(len(keys)-i)*time.Minute)
	}
	// A load makes the coldest entry the hottest — the LRU touch.
	if _, ok := store.Load(keys[0]); !ok {
		t.Fatal("entry vanished")
	}

	// Bound to roughly half the footprint.
	full := store.Stats().Bytes
	res := store.GC(GCPolicy{MaxBytes: full / 2})
	if res.Bytes > full/2 {
		t.Fatalf("GC left %d bytes, bound %d", res.Bytes, full/2)
	}
	if res.Removed == 0 {
		t.Fatal("GC under a halved byte bound removed nothing")
	}
	// The touched entry must have survived; the coldest untouched ones
	// must be the casualties.
	if _, ok := store.Load(keys[0]); !ok {
		t.Error("recently loaded entry was evicted before colder ones")
	}
	if _, ok := store.Load(keys[1]); ok {
		t.Error("coldest untouched entry survived a byte-bound sweep")
	}
}

func TestStoreGCRemovesStaleTmp(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(store.versionDir(), ".tmp-crashed")
	fresh := filepath.Join(store.versionDir(), ".tmp-inflight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	then := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, then, then); err != nil {
		t.Fatal(err)
	}
	store.GC(GCPolicy{MaxAge: 24 * time.Hour})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("in-flight temp file was collected")
	}
}

// TestStoreGCRacingConcurrentWriter sweeps continuously while another
// goroutine writes: the multi-replica scenario where one daemon GCs the
// shared directory mid-spill of another. Nothing may error or wedge, and
// the final quiesced sweep must land within the bound.
func TestStoreGCRacingConcurrentWriter(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writerStore, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sweeperStore, err := NewStore(dir) // a second replica's handle
	if err != nil {
		t.Fatal(err)
	}

	const n = 40
	progs := make([]*asm.Program, n)
	for i := range progs {
		progs[i] = testProgram(t, i)
	}
	writer := NewPersistent(&fakeProvider{}, writerStore)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Disk errors would surface as zero survivors below; t.Fatal is
		// not legal off the test goroutine.
		for _, prog := range progs {
			_, _ = writer.Measure(context.Background(), prog, config.Default(), platform.Options{})
		}
	}()
	policy := GCPolicy{MaxBytes: 2048}
	for i := 0; i < 50; i++ {
		sweeperStore.GC(policy)
	}
	wg.Wait()

	res := sweeperStore.GC(policy)
	if res.Bytes > policy.MaxBytes {
		t.Fatalf("quiesced GC left %d bytes, bound %d", res.Bytes, policy.MaxBytes)
	}
	// Whatever survived must still load cleanly through the writer's
	// handle — the sweep may delete entries, never corrupt them.
	loaded := 0
	for i := 0; i < n; i++ {
		key := KeyFor(testProgram(t, i), config.Default(), platform.Options{})
		if _, ok := writerStore.Load(key); ok {
			loaded++
		}
	}
	if loaded == 0 {
		t.Error("no entry survived; the bound should keep several")
	}
}

func TestStoreGCReclaimsQuiescentOlderVersionTrees(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// Trees left behind by an older format — one quiescent, one still
	// being touched (a live pre-upgrade replica) — plus a non-store
	// directory that must be left alone.
	quiet := filepath.Join(dir, "v0")
	live := filepath.Join(dir, "v-1")
	foreign := filepath.Join(dir, "vault")
	for _, d := range []string{quiet, live, foreign} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "x.json"), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	then := time.Now().Add(-3 * time.Hour)
	for _, p := range []string{quiet, filepath.Join(quiet, "x.json"), live} {
		if err := os.Chtimes(p, then, then); err != nil {
			t.Fatal(err)
		}
	}
	// live's entry keeps a fresh mtime — someone is still writing it.

	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.GC(GCPolicy{MaxAge: time.Hour})
	if _, err := os.Stat(quiet); !os.IsNotExist(err) {
		t.Error("quiescent v0 tree survived GC")
	}
	if _, err := os.Stat(live); err != nil {
		t.Error("GC removed an old tree that is still in use")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Error("GC removed a directory that is not a store version tree")
	}
	if _, err := os.Stat(store.versionDir()); err != nil {
		t.Error("GC removed the current version tree")
	}
	// Without an age bound old trees are never touched.
	if err := os.MkdirAll(quiet, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(quiet, then, then); err != nil {
		t.Fatal(err)
	}
	store.GC(GCPolicy{MaxBytes: 1})
	if _, err := os.Stat(quiet); err != nil {
		t.Error("byte-only GC removed an old version tree")
	}
}

func TestStoreReadRepairRemovesCorruptEntry(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(testProgram(t, 0), config.Default(), platform.Options{})
	path := store.path(key)
	if err := os.WriteFile(path, []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); ok {
		t.Fatal("corrupt entry loaded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not repaired (removed) on read")
	}
	if got := store.Stats().Repaired; got != 1 {
		t.Errorf("repaired counter = %d, want 1", got)
	}
	// The slot must be writable again.
	p := NewPersistent(&fakeProvider{}, store)
	if _, err := p.Measure(context.Background(), testProgram(t, 0), config.Default(), platform.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); !ok {
		t.Error("repaired slot did not accept a fresh spill")
	}
}

func TestStoreVersionHandshake(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if _, err := NewStore(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("no manifest written: %v", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil || m.StoreVersion != StoreVersion {
		t.Fatalf("manifest %q, want store_version %d", data, StoreVersion)
	}

	// A newer fleet's directory is refused — without side effects: a
	// fresh directory holding only the newer manifest must not gain this
	// binary's version tree from the refused open.
	newerDir := t.TempDir()
	newer, _ := json.Marshal(manifest{StoreVersion: StoreVersion + 1})
	for _, d := range []string{dir, newerDir} {
		if err := os.WriteFile(filepath.Join(d, manifestName), newer, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewStore(dir); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("NewStore over a newer-version manifest: err = %v, want refusal", err)
	}
	if _, err := NewStore(newerDir); err == nil {
		t.Fatal("NewStore accepted a newer-version store")
	}
	if _, err := os.Stat(filepath.Join(newerDir, fmt.Sprintf("v%d", StoreVersion))); !os.IsNotExist(err) {
		t.Error("refused open still created this binary's version tree")
	}

	// A corrupt manifest is rewritten, not fatal.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir); err != nil {
		t.Fatalf("NewStore over a corrupt manifest: %v", err)
	}
	data, _ = os.ReadFile(filepath.Join(dir, manifestName))
	if err := json.Unmarshal(data, &m); err != nil || m.StoreVersion != StoreVersion {
		t.Errorf("corrupt manifest not rewritten: %q", data)
	}
}

func TestPersistentEnableGCBoundsTheStore(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	policy := GCPolicy{MaxBytes: 1500}
	p := NewPersistent(&fakeProvider{}, store).EnableGC(policy, 2)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := p.Measure(ctx, testProgram(t, i), config.Default(), platform.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// The last sweep ran at save 20; at most one un-swept save (~300 B)
	// can sit above the bound between sweeps.
	st := store.Stats()
	if st.Bytes > policy.MaxBytes+1024 {
		t.Fatalf("store at %d bytes despite periodic GC to %d", st.Bytes, policy.MaxBytes)
	}
	if st.GCRuns == 0 {
		t.Error("no GC runs recorded")
	}
}
