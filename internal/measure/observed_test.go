package measure

import (
	"context"
	"sync/atomic"
	"testing"

	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

// TestObservedHook: the hook fires once per successful measurement —
// including cache hits — and not on failures.
func TestObservedHook(t *testing.T) {
	inner := &fakeProvider{}
	cache := NewCache(inner, 8)
	var fired atomic.Int64
	obs := Observed{Inner: cache, OnMeasure: func() { fired.Add(1) }}
	prog := testProgram(t, 40)
	cfg := config.Default()

	for i := 0; i < 3; i++ {
		if _, err := obs.Measure(context.Background(), prog, cfg, platform.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fired.Load(); got != 3 {
		t.Errorf("hook fired %d times, want 3 (cache hits count)", got)
	}
	if inner.calls.Load() != 1 {
		t.Errorf("inner measured %d times, want 1", inner.calls.Load())
	}

	failing := Observed{Inner: &fakeProvider{err: context.DeadlineExceeded}, OnMeasure: func() { fired.Add(1) }}
	if _, err := failing.Measure(context.Background(), testProgram(t, 41), cfg, platform.Options{}); err == nil {
		t.Fatal("expected failure")
	}
	if got := fired.Load(); got != 3 {
		t.Errorf("hook fired on a failed measurement (count %d)", got)
	}
}

// TestKeyDistinguishesInterval: interval-profiled runs must not collide
// with plain runs of the same (program, configuration).
func TestKeyDistinguishesInterval(t *testing.T) {
	prog := testProgram(t, 42)
	cfg := config.Default()
	plain := KeyFor(prog, cfg, platform.Options{})
	ivl := KeyFor(prog, cfg, platform.Options{IntervalInstructions: 1000})
	if plain == ivl {
		t.Fatal("interval length must participate in the measurement key")
	}
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.path(plain) == s.path(ivl) {
		t.Fatal("interval length must participate in the store path")
	}
}
