// Package measure is the measurement-provider layer: the one service
// interface every consumer of simulated runs — the model builder, the
// exhaustive sweeps, the figure harnesses, the autoarchd daemon — obtains
// its (program, configuration) measurements through.
//
// The layer is a stack of providers:
//
//	Simulator            – executes the run on the platform (the leaf)
//	Persistent           – spills/loads reports via a versioned on-disk store
//	Cache                – bounded LRU with singleflight and eviction stats
//
// A caller composes the stack it needs; Default() is the process-wide
// stack (Cache over Simulator) that the library consumers share, so the
// ~52 single-change jobs of a model build, repeated sweeps and validation
// all reuse identical (program, timing-configuration) runs, exactly as
// the unbounded cache of DESIGN.md §10 did — but bounded, observable and
// cancellable.
//
// The on-disk Store is built for fleets as well as single processes
// (DESIGN.md §14): atomic writes, read-repair of corrupt entries, a
// store-version manifest handshake, and an LRU-by-mtime GC (GCPolicy)
// that bounds the spill by bytes and age, so several autoarchd replicas
// can safely share one directory.
package measure

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

// Provider is the measurement service: execute (or recall) one run of
// prog on cfg and return its report. Implementations must be safe for
// concurrent use and must honour ctx cancellation at least between runs.
type Provider interface {
	Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error)
}

// Simulator is the leaf provider: it runs the program on the simulated
// platform directly, drawing engines from the platform's pool.
type Simulator struct{}

// Measure executes the run. The context is checked up front — a single
// run at the harness scales is short, so per-run granularity is what
// makes long sweeps promptly cancellable.
func (Simulator) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return platform.RunWith(prog, cfg, opts)
}

// Key is the measurement identity: program, timing-relevant configuration
// and the run options that can change the outcome. Two measurements with
// equal keys produce bit-identical reports (the simulator is
// deterministic), which is what licenses both caching layers.
//
// Program identity is the *asm.Program pointer: progs.Benchmark memoizes
// Assemble per (benchmark, scale), so one pointer is one (application,
// workload scale). The configuration is reduced to its TimingKey — the
// parameters that cannot change simulated timing (dcache fast read/write,
// InferMultDiv) are normalised away, so e.g. the base run is shared with
// the fastread-only perturbation.
//
// The execution-tuning knobs (Options.SuperblockThreshold,
// Options.IntraRunWorkers) are deliberately NOT part of the key: the
// parity suites prove they cannot change a single reported counter, so a
// report cached under one tuning is valid under every other. Keying on
// them would split the cache (and the persistent store shared across a
// fleet) by a setting that only affects wall-clock speed.
type Key struct {
	Prog     *asm.Program
	Cfg      config.Config
	RAM      int
	MaxI     uint64
	Sample   uint64
	Interval uint64
}

// KeyFor derives the cache key for a run request. opts must describe a
// cacheable run (no trace writer).
func KeyFor(prog *asm.Program, cfg config.Config, opts platform.Options) Key {
	opts = opts.Normalized()
	return Key{
		Prog:     prog,
		Cfg:      cfg.TimingKey(),
		RAM:      opts.RAMBytes,
		MaxI:     opts.MaxInstructions,
		Sample:   opts.SampleInstructions,
		Interval: opts.IntervalInstructions,
	}
}

// Program-image fingerprints, memoized per pointer: package progs hands
// out one *asm.Program per (benchmark, scale), so each image is hashed
// once per process no matter how many stores, sessions or model caches
// ask for its identity.
var (
	fpMu sync.Mutex
	fps  = map[*asm.Program]string{}
)

// Fingerprint returns the stable identity of an assembled program: the
// hex SHA-256 over its load images and entry point. It is the program
// half of every durable measurement identity — the on-disk Store's entry
// names and the core session's model-cache keys both derive from it —
// so, unlike the pointer-based in-memory Key, it survives process
// restarts and is comparable across replicas.
func Fingerprint(p *asm.Program) string {
	fpMu.Lock()
	fp, ok := fps[p]
	fpMu.Unlock()
	if ok {
		return fp
	}

	h := sha256.New()
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], p.TextBase)
	h.Write(word[:])
	for _, w := range p.Text {
		binary.BigEndian.PutUint32(word[:], w)
		h.Write(word[:])
	}
	binary.BigEndian.PutUint32(word[:], p.DataBase)
	h.Write(word[:])
	h.Write(p.Data)
	binary.BigEndian.PutUint32(word[:], p.Entry)
	h.Write(word[:])
	fp = hex.EncodeToString(h.Sum(nil))

	fpMu.Lock()
	fps[p] = fp
	fpMu.Unlock()
	return fp
}

// Short config-hash attributes, memoized per timing key: the span of
// every measurement of one configuration carries the same identity, and
// a traced 52-config sweep hashes each timing key once.
var (
	chMu sync.Mutex
	chs  = map[config.Config]string{}
)

// ConfigHash returns a short stable identity of the configuration's
// timing key — the "config" attribute on measurement spans. Two
// configurations that simulate identically (equal TimingKeys) share one
// hash, mirroring the cache identity the span's outcome is attributed
// against.
func ConfigHash(cfg config.Config) string {
	key := cfg.TimingKey()
	chMu.Lock()
	h, ok := chs[key]
	chMu.Unlock()
	if ok {
		return h
	}
	sum := sha256.Sum256([]byte(key.String()))
	h = hex.EncodeToString(sum[:6])
	chMu.Lock()
	chs[key] = h
	chMu.Unlock()
	return h
}

// DefaultCacheEntries bounds the shared Default() cache. The full-space
// model builds, every figure and the Section 5 sweeps together touch a
// few hundred distinct keys per workload scale, so the default keeps a
// whole experiment suite resident while still bounding a long-lived
// server.
const DefaultCacheEntries = 4096

var defaultProvider = NewCache(Simulator{}, DefaultCacheEntries)

// Default returns the process-wide shared provider: a bounded cache over
// the simulator. Library consumers (core.Tuner, exhaustive.Sweep) fall
// back to it when no explicit provider is configured.
func Default() *Cache { return defaultProvider }

// Observed wraps a provider with a completion hook: OnMeasure fires
// after every successful Measure, whether it was simulated, loaded from
// disk or answered by a cache layer below. It is the progress surface
// the core session's Observer is built on — "k of N measurements done"
// without the measurement stack knowing anything about requests.
type Observed struct {
	Inner Provider
	// OnMeasure is invoked (possibly concurrently, from the measuring
	// goroutines) after each successful measurement. nil disables it.
	OnMeasure func()
}

// Measure implements Provider.
func (o Observed) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	rep, err := o.Inner.Measure(ctx, prog, cfg, opts)
	if err == nil && o.OnMeasure != nil {
		o.OnMeasure()
	}
	return rep, err
}
