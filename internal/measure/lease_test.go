package measure

import (
	"context"
	"testing"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/platform"
)

// leaseHarness builds two Persistent providers ("replicas") over one
// shared store directory: A's inner provider gates (a replica caught
// mid-simulation), B's answers immediately.
func leaseHarness(t *testing.T, ttl time.Duration) (a, b *Persistent, inA, inB *fakeProvider) {
	t.Helper()
	dir := t.TempDir()
	storeA, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inA = &fakeProvider{gate: make(chan struct{})}
	inB = &fakeProvider{}
	a = NewPersistent(inA, storeA).EnableLease(ttl)
	b = NewPersistent(inB, storeB).EnableLease(ttl)
	return a, b, inA, inB
}

// startBlocked launches a.Measure in a goroutine and waits until its
// inner provider has been entered (i.e. the claim is held).
func startBlocked(t *testing.T, a *Persistent, inA *fakeProvider, ctx context.Context, key Key) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := a.Measure(ctx, key.Prog, key.Cfg, platform.Options{})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for inA.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica A never started measuring")
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

// TestLeaseSecondReplicaWaits: with the lease on, the replica that loses
// the claim race waits for the winner's spill instead of simulating.
func TestLeaseSecondReplicaWaits(t *testing.T) {
	t.Parallel()
	a, b, inA, inB := leaseHarness(t, 30*time.Second)
	prog := testProgram(t, 0)
	key := KeyFor(prog, config.Default(), platform.Options{})

	aDone := startBlocked(t, a, inA, context.Background(), key)

	type res struct {
		rep *platform.RunReport
		err error
	}
	bDone := make(chan res, 1)
	go func() {
		rep, err := b.Measure(context.Background(), prog, config.Default(), platform.Options{})
		bDone <- res{rep, err}
	}()
	// B must be parked on A's claim, not simulating.
	time.Sleep(100 * time.Millisecond)
	if n := inB.calls.Load(); n != 0 {
		t.Fatalf("replica B simulated %d times while A held the claim", n)
	}
	close(inA.gate)
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-bDone:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.rep.Cycles() == 0 {
			t.Fatal("replica B got an empty report")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replica B never resolved")
	}
	if n := inB.calls.Load(); n != 0 {
		t.Errorf("replica B simulated %d times, want 0 (lease dedupe)", n)
	}
	if st := b.Store().Stats(); st.LeaseWaits == 0 {
		t.Error("store stats should count the lease wait")
	}
	if st := a.Store().Stats(); st.LeaseWins == 0 {
		t.Error("store stats should count A's lease win")
	}
}

// TestLeaseExpiryFallsBack: a claim whose holder hangs past the TTL must
// not wedge the waiter — it falls back to simulating locally.
func TestLeaseExpiryFallsBack(t *testing.T) {
	t.Parallel()
	a, b, inA, inB := leaseHarness(t, 150*time.Millisecond)
	prog := testProgram(t, 1)
	key := KeyFor(prog, config.Default(), platform.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aDone := startBlocked(t, a, inA, ctx, key)
	defer func() { cancel(); <-aDone }()

	rep, err := b.Measure(context.Background(), prog, config.Default(), platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles() == 0 {
		t.Fatal("empty report")
	}
	if n := inB.calls.Load(); n != 1 {
		t.Errorf("replica B simulated %d times, want 1 (expired-lease fallback)", n)
	}
}

// TestLeaseReleasedOnFailure: when the claim winner's measurement fails,
// the claim is released and the waiter recovers by simulating.
func TestLeaseReleasedOnFailure(t *testing.T) {
	t.Parallel()
	a, b, inA, inB := leaseHarness(t, 30*time.Second)
	inA.err = context.DeadlineExceeded // any failure
	prog := testProgram(t, 2)
	key := KeyFor(prog, config.Default(), platform.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	aDone := startBlocked(t, a, inA, ctx, key)
	cancel() // unblock A's gate via ctx; its measurement fails
	if err := <-aDone; err == nil {
		t.Fatal("replica A should have failed")
	}

	rep, err := b.Measure(context.Background(), prog, config.Default(), platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles() == 0 {
		t.Fatal("empty report")
	}
	if n := inB.calls.Load(); n != 1 {
		t.Errorf("replica B simulated %d times, want 1 (claim released on failure)", n)
	}
}

// TestClaimBrokenWhenStale: an expired claim left by a crashed replica is
// broken on contact rather than honoured for its full TTL.
func TestClaimBrokenWhenStale(t *testing.T) {
	t.Parallel()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := testProgram(t, 3)
	key := KeyFor(prog, config.Default(), platform.Options{})
	// Simulate a crashed holder: a claim whose expiry has already passed.
	if !store.TryClaim(key, -time.Second) {
		t.Fatal("initial claim failed")
	}
	inner := &fakeProvider{}
	p := NewPersistent(inner, store).EnableLease(time.Hour)
	start := time.Now()
	rep, err := p.Measure(context.Background(), prog, config.Default(), platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles() == 0 {
		t.Fatal("empty report")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stale claim stalled the measurement for %v", elapsed)
	}
	if n := inner.calls.Load(); n != 1 {
		t.Errorf("inner measured %d times, want 1", n)
	}
}
