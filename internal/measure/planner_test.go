package measure

import (
	"runtime"
	"testing"
)

// TestAutoPlanInvariants: whatever the calibration measures, the split
// must be sane — no lever below 1, sweep never wider than the work, and
// the product never oversubscribing the calibrated parallelism.
func TestAutoPlanInvariants(t *testing.T) {
	p := effectiveParallelism()
	if p < 1 || p > runtime.GOMAXPROCS(0) {
		t.Fatalf("effective parallelism %d outside [1, GOMAXPROCS=%d]", p, runtime.GOMAXPROCS(0))
	}
	for _, width := range []int{-1, 0, 1, 2, 3, 52, 53, 1000} {
		plan := AutoPlan(width)
		if plan.SweepWorkers < 1 || plan.IntraRunWorkers < 1 {
			t.Errorf("AutoPlan(%d) = %+v: levers below 1", width, plan)
		}
		if width >= 1 && plan.SweepWorkers > width {
			t.Errorf("AutoPlan(%d) = %+v: more sweep workers than runs", width, plan)
		}
		if plan.SweepWorkers*plan.IntraRunWorkers > max(p, 1) {
			t.Errorf("AutoPlan(%d) = %+v oversubscribes effective parallelism %d", width, plan, p)
		}
		// A sweep at least as wide as the host needs no intra-run split.
		if width >= p && plan.IntraRunWorkers != 1 {
			t.Errorf("AutoPlan(%d) = %+v: intra-run replay on a saturating sweep", width, plan)
		}
	}
}

// TestPlannerSnapshotCounters: the snapshot reflects the calibration
// (exactly one per process) and the plans handed out.
func TestPlannerSnapshotCounters(t *testing.T) {
	before := PlannerSnapshot().Plans
	plan := AutoPlan(52)
	st := PlannerSnapshot()
	if st.Calibrations != 1 {
		t.Errorf("calibrations = %d, want exactly 1 per process", st.Calibrations)
	}
	if st.Plans != before+1 {
		t.Errorf("plans = %d, want %d", st.Plans, before+1)
	}
	if st.LastSweepWorkers != plan.SweepWorkers || st.LastIntraRunWorkers != plan.IntraRunWorkers {
		t.Errorf("snapshot %+v does not echo the last plan %+v", st, plan)
	}
	if st.EffectiveParallelism < 1 || st.EffectiveParallelism > st.GOMAXPROCS {
		t.Errorf("snapshot parallelism %d outside [1, %d]", st.EffectiveParallelism, st.GOMAXPROCS)
	}
}
