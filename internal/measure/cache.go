package measure

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/obs"
	"liquidarch/internal/platform"
)

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Hits counts lookups satisfied by a resident (or in-flight) entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to consult the inner provider.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to stay within the capacity.
	Evictions uint64 `json:"evictions"`
	// Entries is the current resident entry count, Capacity the bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// cacheEntry is one memoized measurement. done is closed when the
// computation finishes; until then concurrent same-key callers wait on it
// (singleflight).
type cacheEntry struct {
	key  Key
	done chan struct{}
	rep  *platform.RunReport
	err  error
}

// Cache is a bounded, singleflighted LRU over any Provider. The first
// caller of a given key measures through the inner provider; concurrent
// callers of the same key wait for that one computation; later callers
// get a copy of the resident report. When the entry count exceeds the
// capacity, the least recently used entries are evicted, so a long-lived
// server's memory stays bounded no matter how many (program,
// configuration) pairs pass through.
//
// Failed measurements are not cached: an error (including a context
// cancellation observed by the measuring caller) is propagated to every
// waiter of that flight and the key is removed, so the next caller
// retries cleanly.
type Cache struct {
	inner Provider

	mu      sync.Mutex
	cap     int
	ll      *list.List            // front = most recently used
	entries map[Key]*list.Element // value: *cacheEntry
	hits    uint64
	misses  uint64
	evicted uint64
}

// NewCache wraps inner with a bounded LRU of at most capacity entries.
// capacity <= 0 falls back to DefaultCacheEntries.
func NewCache(inner Provider, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		inner:   inner,
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[Key]*list.Element),
	}
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}

// Measure implements Provider. Traced runs bypass the cache entirely —
// their purpose is the side effect, and their reports are not reusable.
//
// A waiter whose flight owner was cancelled retries with its own live
// context instead of inheriting the owner's context error: two jobs
// sharing a measurement must not fail together when only one of them is
// cancelled. Each retry either becomes the new flight owner or joins a
// fresher flight, so the loop terminates.
func (c *Cache) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if opts.TraceWriter != nil {
		return c.inner.Measure(ctx, prog, cfg, opts)
	}
	// One observability span per measurement, with the cache outcome
	// attributed (hit / wait / miss) and the store layers below
	// annotating theirs. When tracing is disabled span is nil and every
	// call on it is a zero-cost no-op.
	sctx, span := obs.Start(ctx, "measure")
	if span != nil {
		ctx = sctx
		span.Set(obs.String("config", ConfigHash(cfg)))
		defer span.End()
	}
	for {
		rep, err, retry := c.measureOnce(ctx, prog, cfg, opts, span)
		if retry && ctx.Err() == nil {
			continue
		}
		if span != nil {
			if err == nil {
				span.Set(
					obs.Int("instructions", int64(rep.Stats.Instructions)),
					obs.Int("cycles", int64(rep.Stats.Cycles)))
			} else {
				span.Set(obs.Bool("error", true))
			}
		}
		return rep, err
	}
}

// measureOnce performs one lookup-or-measure round, attributing the
// cache outcome onto span (hit: answered by a resident entry; wait:
// joined another caller's in-flight measurement; miss: this caller
// measured). retry is true when the caller waited on another caller's
// flight that failed with that owner's context error.
func (c *Cache) measureOnce(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options, span *obs.Span) (rep *platform.RunReport, err error, retry bool) {
	key := KeyFor(prog, cfg, opts)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.mu.Unlock()
		if span != nil {
			select {
			case <-ent.done:
				span.Set(obs.String("outcome", "hit"))
			default:
				span.Set(obs.String("outcome", "wait"))
			}
		}
		return c.wait(ctx, ent, cfg)
	}
	c.misses++
	ent := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = c.ll.PushFront(ent)
	c.evictLocked()
	c.mu.Unlock()
	span.Set(obs.String("outcome", "miss"))

	ent.rep, ent.err = c.inner.Measure(ctx, prog, cfg, opts)
	if ent.err != nil {
		// Do not memoize failures: drop the key so the next caller
		// retries (the entry may already have been evicted — fine).
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == ent {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	close(ent.done)
	if ent.err != nil {
		return nil, ent.err, false
	}
	return copyReport(ent.rep, cfg), nil, false
}

// wait blocks until the entry's flight completes (or ctx is cancelled)
// and hands out a copy of the report. A flight that failed with a
// context error is reported as retryable — the error belongs to the
// flight owner's context, not necessarily the waiter's.
func (c *Cache) wait(ctx context.Context, ent *cacheEntry, cfg config.Config) (*platform.RunReport, error, bool) {
	select {
	case <-ent.done:
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
	if ent.err != nil {
		retry := errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)
		return nil, ent.err, retry
	}
	return copyReport(ent.rep, cfg), nil, false
}

// evictLocked drops LRU-tail entries until the cache is within capacity.
// In-flight entries can be evicted too: their waiters hold the entry
// pointer directly and still get the result; only future callers re-measure.
func (c *Cache) evictLocked() {
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		if el == nil {
			return
		}
		ent := c.ll.Remove(el).(*cacheEntry)
		delete(c.entries, ent.key)
		c.evicted++
	}
}

// copyReport hands out a private copy with the caller's configuration
// stamped in (the cached run's config is the timing key's representative,
// not necessarily the caller's exact configuration).
func copyReport(rep *platform.RunReport, cfg config.Config) *platform.RunReport {
	out := *rep
	out.Config = cfg
	return &out
}
