package config

import (
	"strings"
	"testing"
)

func TestDefaultMatchesPaperFigure1(t *testing.T) {
	c := Default()
	if c.ICache.Sets != 1 || c.ICache.SetSizeKB != 4 || c.ICache.LineWords != 8 || c.ICache.Replacement != Random {
		t.Errorf("icache default mismatch: %+v", c.ICache)
	}
	if c.DCache.Sets != 1 || c.DCache.SetSizeKB != 4 || c.DCache.LineWords != 8 || c.DCache.Replacement != Random {
		t.Errorf("dcache default mismatch: %+v", c.DCache)
	}
	if c.DCache.FastRead || c.DCache.FastWrite {
		t.Errorf("fast read/write should default off: %+v", c.DCache)
	}
	iu := c.IU
	if !iu.FastJump || !iu.ICCHold || !iu.FastDecode {
		t.Errorf("fast jump / ICC hold / fast decode should default on: %+v", iu)
	}
	if iu.LoadDelay != 1 || iu.RegWindows != 8 || iu.Divider != DivRadix2 || iu.Multiplier != Mul16x16 {
		t.Errorf("IU defaults mismatch: %+v", iu)
	}
	if !c.Synth.InferMultDiv {
		t.Errorf("infer mult/div should default true")
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config should validate, got %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"sets-0", func(c *Config) { c.ICache.Sets = 0 }, "sets"},
		{"sets-5", func(c *Config) { c.DCache.Sets = 5 }, "sets"},
		{"setsize-3", func(c *Config) { c.ICache.SetSizeKB = 3 }, "set size"},
		{"setsize-128", func(c *Config) { c.DCache.SetSizeKB = 128 }, "set size"},
		{"line-6", func(c *Config) { c.ICache.LineWords = 6 }, "line size"},
		{"lrr-1way", func(c *Config) { c.DCache.Replacement = LRR }, "LRR"},
		{"lrr-3way", func(c *Config) { c.DCache.Sets = 3; c.DCache.Replacement = LRR }, "LRR"},
		{"lru-1way", func(c *Config) { c.ICache.Replacement = LRU }, "LRU"},
		{"icache-fastread", func(c *Config) { c.ICache.FastRead = true }, "data cache"},
		{"loaddelay-3", func(c *Config) { c.IU.LoadDelay = 3 }, "load delay"},
		{"windows-9", func(c *Config) { c.IU.RegWindows = 9 }, "windows"},
		{"windows-33", func(c *Config) { c.IU.RegWindows = 33 }, "windows"},
		{"mult-bad", func(c *Config) { c.IU.Multiplier = MultiplierOption(99) }, "multiplier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("expected validation error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsLegalPolicies(t *testing.T) {
	c := Default()
	c.DCache.Sets = 2
	c.DCache.Replacement = LRR
	if err := c.Validate(); err != nil {
		t.Errorf("2-way LRR should be valid: %v", err)
	}
	c.DCache.Sets = 4
	c.DCache.Replacement = LRU
	if err := c.Validate(); err != nil {
		t.Errorf("4-way LRU should be valid: %v", err)
	}
	c.IU.RegWindows = 16
	if err := c.Validate(); err != nil {
		t.Errorf("16 windows should be valid: %v", err)
	}
	c.IU.RegWindows = 32
	if err := c.Validate(); err != nil {
		t.Errorf("32 windows should be valid: %v", err)
	}
}

func TestDiffBaseEmptyForDefault(t *testing.T) {
	if d := Default().DiffBase(); len(d) != 0 {
		t.Errorf("default config should have no diff, got %v", d)
	}
}

func TestDiffBaseListsChanges(t *testing.T) {
	c := Default()
	c.DCache.SetSizeKB = 32
	c.IU.Multiplier = Mul32x32
	c.IU.ICCHold = false
	d := strings.Join(c.DiffBase(), " ")
	for _, want := range []string{"dcachsetsz=32", "multiplier=m32x32", "icchold=false"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff %q missing %q", d, want)
		}
	}
}

func TestSetRoundTripsDiffBase(t *testing.T) {
	// Every assignment DiffBase can produce must be accepted by Set.
	c := Default()
	c.ICache.Sets = 2
	c.ICache.SetSizeKB = 2
	c.ICache.LineWords = 4
	c.ICache.Replacement = LRU
	c.DCache.Sets = 4
	c.DCache.SetSizeKB = 16
	c.DCache.LineWords = 4
	c.DCache.Replacement = LRU
	c.DCache.FastRead = true
	c.DCache.FastWrite = true
	c.IU.FastJump = false
	c.IU.ICCHold = false
	c.IU.FastDecode = false
	c.IU.LoadDelay = 2
	c.IU.RegWindows = 24
	c.IU.Divider = DivNone
	c.IU.Multiplier = Mul32x16
	c.Synth.InferMultDiv = false

	rebuilt := Default()
	for _, assignment := range c.DiffBase() {
		if err := rebuilt.Set(assignment); err != nil {
			t.Fatalf("Set(%q): %v", assignment, err)
		}
	}
	if rebuilt != c {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", rebuilt, c)
	}
}

func TestSetRejectsUnknownAndMalformed(t *testing.T) {
	c := Default()
	if err := c.Set("nonsense=1"); err == nil {
		t.Error("unknown parameter should error")
	}
	if err := c.Set("dcachsetsz"); err == nil {
		t.Error("missing value should error")
	}
	if err := c.Set("dcachsetsz=abc"); err == nil {
		t.Error("non-integer should error")
	}
	if err := c.Set("multiplier=m64x64"); err == nil {
		t.Error("unknown multiplier should error")
	}
	if err := c.Set("divider=radix4"); err == nil {
		t.Error("unknown divider should error")
	}
	if err := c.Set("fastjump=maybe"); err == nil {
		t.Error("bad boolean should error")
	}
	if err := c.Set("dcachreplace=mru"); err == nil {
		t.Error("unknown replacement should error")
	}
}

func TestTotalKBAndLineBytes(t *testing.T) {
	c := CacheConfig{Sets: 2, SetSizeKB: 16, LineWords: 8}
	if c.TotalKB() != 32 {
		t.Errorf("TotalKB = %d, want 32", c.TotalKB())
	}
	if c.LineBytes() != 32 {
		t.Errorf("LineBytes = %d, want 32", c.LineBytes())
	}
}

func TestStringersCoverAllValues(t *testing.T) {
	for p := Random; p <= LRU; p++ {
		if s := p.String(); strings.Contains(s, "(") {
			t.Errorf("ReplacementPolicy(%d) has no name: %s", int(p), s)
		}
	}
	for m := MulNone; m <= Mul32x32; m++ {
		if s := m.String(); strings.Contains(s, "(") {
			t.Errorf("MultiplierOption(%d) has no name: %s", int(m), s)
		}
	}
	for d := DivNone; d <= DivRadix2; d++ {
		if s := d.String(); strings.Contains(s, "(") {
			t.Errorf("DividerOption(%d) has no name: %s", int(d), s)
		}
	}
	if ReplacementPolicy(9).String() == "" || MultiplierOption(9).String() == "" || DividerOption(9).String() == "" {
		t.Error("out-of-range stringers should still return text")
	}
}
