package config

import (
	"strings"
	"testing"
)

func TestFullSpaceHas52Variables(t *testing.T) {
	s := FullSpace()
	if s.Len() != 52 {
		t.Fatalf("full space has %d variables, paper formulation has 52", s.Len())
	}
	for i, v := range s.Vars() {
		if v.Index != i+1 {
			t.Errorf("var %d has index %d, want %d", i, v.Index, i+1)
		}
	}
}

// TestPaperIndexLayout pins the x1..x52 layout to the indices the paper's
// Section 4 enumerates explicitly.
func TestPaperIndexLayout(t *testing.T) {
	s := FullSpace()
	want := map[int]string{
		1:  "icachsets=2",
		3:  "icachsets=4",
		4:  "icachsetsz=1",
		8:  "icachsetsz=32",
		9:  "icachlinesz=4",
		10: "icachreplace=LRR",
		11: "icachreplace=LRU",
		12: "dcachsets=2",
		14: "dcachsets=4",
		15: "dcachsetsz=1",
		19: "dcachsetsz=32",
		20: "dcachlinesz=4",
		21: "dcachreplace=LRR",
		22: "dcachreplace=LRU",
		23: "fastjump=false",
		24: "icchold=false",
		25: "fastdecode=false",
		26: "loaddelay=2",
		27: "fastread=true",
		28: "divider=none",
		29: "infermultdiv=false",
		30: "registers=16",
		46: "registers=32",
		47: "multiplier=iter",
		51: "multiplier=m32x32",
		52: "fastwrite=true",
	}
	for idx, name := range want {
		v, ok := s.ByIndex(idx)
		if !ok {
			t.Errorf("x%d missing", idx)
			continue
		}
		if v.Name != name {
			t.Errorf("x%d = %s, want %s", idx, v.Name, name)
		}
	}
}

func TestEveryVarAppliesToValidConfig(t *testing.T) {
	s := FullSpace()
	base := Default()
	for _, v := range s.Vars() {
		c := v.Apply(base)
		// LRR/LRU variables are individually invalid on a 1-way base
		// cache; the solver's coupling constraints forbid selecting them
		// alone. Everything else must be valid stand-alone.
		switch v.Name {
		case "icachreplace=LRR", "icachreplace=LRU", "dcachreplace=LRR", "dcachreplace=LRU":
			if err := c.Validate(); err == nil {
				t.Errorf("%s alone on 1-way base unexpectedly valid", v.Name)
			}
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s produces invalid config: %v", v.Name, err)
		}
		if len(c.DiffBase()) != 1 {
			t.Errorf("%s should change exactly one parameter, changed %v", v.Name, c.DiffBase())
		}
	}
}

func TestVarApplyDoesNotMutateInput(t *testing.T) {
	s := FullSpace()
	base := Default()
	v, _ := s.ByIndex(19)
	_ = v.Apply(base)
	if base.DCache.SetSizeKB != 4 {
		t.Error("Apply mutated its input configuration")
	}
}

func TestGroupsPartitionTheSpace(t *testing.T) {
	s := FullSpace()
	groups := s.Groups()
	total := 0
	for _, members := range groups {
		total += len(members)
	}
	if total != s.Len() {
		t.Errorf("groups cover %d vars, want %d", total, s.Len())
	}
	sizes := map[Group]int{
		GroupICacheSets:        3,
		GroupICacheSetSize:     5,
		GroupICacheReplacement: 2,
		GroupDCacheSets:        3,
		GroupDCacheSetSize:     5,
		GroupDCacheReplacement: 2,
		GroupRegWindows:        17,
		GroupMultiplier:        5,
	}
	for g, want := range sizes {
		if got := len(groups[g]); got != want {
			t.Errorf("group %s has %d members, want %d", g, got, want)
		}
	}
}

func TestDecodeAppliesSelection(t *testing.T) {
	s := FullSpace()
	sel := make([]bool, s.Len())
	mark := func(name string) {
		for i, v := range s.Vars() {
			if v.Name == name {
				sel[i] = true
				return
			}
		}
		t.Fatalf("variable %s not found", name)
	}
	mark("dcachsets=2")
	mark("dcachsetsz=16")
	mark("dcachreplace=LRR")
	mark("multiplier=m32x32")
	c, err := s.Decode(sel)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c.DCache.Sets != 2 || c.DCache.SetSizeKB != 16 || c.DCache.Replacement != LRR || c.IU.Multiplier != Mul32x32 {
		t.Errorf("decoded config wrong: %v", c)
	}
}

func TestDecodeRejectsGroupViolation(t *testing.T) {
	s := FullSpace()
	sel := make([]bool, s.Len())
	sel[15-1] = true // dcachsetsz=1 (x15)
	sel[19-1] = true // dcachsetsz=32 (x19)
	if _, err := s.Decode(sel); err == nil {
		t.Error("two set-size selections in one group should error")
	}
}

func TestDecodeRejectsInvalidCombination(t *testing.T) {
	s := FullSpace()
	sel := make([]bool, s.Len())
	sel[21-1] = true // dcachreplace=LRR without multi-way
	if _, err := s.Decode(sel); err == nil {
		t.Error("LRR on 1-way cache should fail validation")
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	s := FullSpace()
	if _, err := s.Decode(make([]bool, 3)); err == nil {
		t.Error("wrong selection length should error")
	}
}

func TestDecodeEmptySelectionIsBase(t *testing.T) {
	s := FullSpace()
	c, err := s.Decode(make([]bool, s.Len()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c != Default() {
		t.Errorf("empty selection should decode to base, got %v", c)
	}
}

func TestDcacheGeometrySubspace(t *testing.T) {
	s := DcacheGeometrySpace()
	if s.Len() != 8 {
		t.Fatalf("dcache geometry space has %d vars, want 8 (3 sets + 5 sizes)", s.Len())
	}
	for _, v := range s.Vars() {
		if v.Group != GroupDCacheSets && v.Group != GroupDCacheSetSize {
			t.Errorf("unexpected var %s in dcache geometry space", v.Name)
		}
		if !strings.HasPrefix(v.Name, "dcachsets") {
			t.Errorf("unexpected var name %s", v.Name)
		}
	}
	// Paper indices preserved from the full space.
	if v, ok := s.ByIndex(19); !ok || v.Name != "dcachsetsz=32" {
		t.Errorf("x19 in subspace = %v, want dcachsetsz=32", v)
	}
}

func TestByNameAndByIndexMisses(t *testing.T) {
	s := FullSpace()
	if _, ok := s.ByName("nope"); ok {
		t.Error("ByName should miss for unknown name")
	}
	if _, ok := s.ByIndex(99); ok {
		t.Error("ByIndex should miss for unknown index")
	}
}

func TestExhaustiveCountMatchesFactorisation(t *testing.T) {
	// 4*7*2*3 icache × 4*7*2*3*2*2 dcache × 2*2*2*2*18*2*7 IU × 2 synth.
	want := uint64(168) * 672 * 4032 * 2
	if got := ExhaustiveCount(); got != want {
		t.Errorf("ExhaustiveCount = %d, want %d", got, want)
	}
	// The paper's 3,641,573,376 is exactly 4x the product of the Figure 1
	// value counts: two binary parameters in their count are not itemised
	// in the figure (see DESIGN.md §4).
	paper := uint64(3641573376)
	if got := ExhaustiveCount(); got*4 != paper {
		t.Errorf("reconstructed space %d: expected exactly paper/4 = %d", got, paper/4)
	}
}

func TestParameterValueCount(t *testing.T) {
	if got := ParameterValueCount(); got != 73 {
		t.Errorf("ParameterValueCount = %d, want 73 (reconstructed Figure 1)", got)
	}
}
