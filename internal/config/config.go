// Package config defines the reconfigurable LEON2 microarchitecture
// parameter space studied by Padmanabhan et al. (IPPS 2006): the processor
// configuration struct, the out-of-the-box defaults of the paper's Figure 1,
// validity rules, and the 52 binary decision variables x1..x52 used by the
// optimizer's Binary Integer Nonlinear Program.
package config

import (
	"fmt"
	"strings"
)

// ReplacementPolicy selects how a multi-way cache chooses a victim line.
type ReplacementPolicy int

const (
	// Random replacement picks a pseudo-random way (LEON's default).
	Random ReplacementPolicy = iota
	// LRR (least recently replaced) cycles through ways in replacement
	// order. LEON restricts LRR to 2-way caches.
	LRR
	// LRU evicts the least recently used way; valid for any multi-way
	// cache.
	LRU
)

func (p ReplacementPolicy) String() string {
	switch p {
	case Random:
		return "rnd"
	case LRR:
		return "LRR"
	case LRU:
		return "LRU"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// MultiplierOption selects the hardware integer multiplier implementation.
type MultiplierOption int

const (
	// MulNone omits the multiplier; UMUL/SMUL are emulated in software.
	MulNone MultiplierOption = iota
	// MulIterative is a small 1-bit-per-cycle sequential multiplier.
	MulIterative
	// Mul16x16 is the default 16x16 multiplier (4 passes for 32x32).
	Mul16x16
	// Mul16x16Pipe is the 16x16 multiplier with pipeline registers.
	Mul16x16Pipe
	// Mul32x8 performs a 32x32 multiply in four 32x8 steps.
	Mul32x8
	// Mul32x16 performs a 32x32 multiply in two 32x16 steps.
	Mul32x16
	// Mul32x32 is a full single-pass 32x32 multiplier.
	Mul32x32
)

func (m MultiplierOption) String() string {
	switch m {
	case MulNone:
		return "none"
	case MulIterative:
		return "iter"
	case Mul16x16:
		return "m16x16"
	case Mul16x16Pipe:
		return "m16x16p"
	case Mul32x8:
		return "m32x8"
	case Mul32x16:
		return "m32x16"
	case Mul32x32:
		return "m32x32"
	default:
		return fmt.Sprintf("MultiplierOption(%d)", int(m))
	}
}

// DividerOption selects the hardware integer divider implementation.
type DividerOption int

const (
	// DivNone omits the divider; UDIV/SDIV are emulated in software.
	DivNone DividerOption = iota
	// DivRadix2 is the default radix-2 (1-bit-per-cycle) divider.
	DivRadix2
)

func (d DividerOption) String() string {
	switch d {
	case DivNone:
		return "none"
	case DivRadix2:
		return "radix2"
	default:
		return fmt.Sprintf("DividerOption(%d)", int(d))
	}
}

// CacheConfig describes one of the two first-level caches. LEON expresses
// total capacity as Sets (associativity ways, 1-4) times SetSizeKB (the
// capacity of each way).
type CacheConfig struct {
	// Sets is the associativity: 1 to 4 ways.
	Sets int
	// SetSizeKB is the capacity of each way in kilobytes: 1,2,4,8,16,32,64.
	SetSizeKB int
	// LineWords is the cache line length in 32-bit words: 4 or 8.
	LineWords int
	// Replacement selects the victim policy for multi-way configurations.
	Replacement ReplacementPolicy
	// FastRead generates load data combinationally in the same cycle
	// (data cache only). Cycle-neutral at a fixed clock; costs LUTs.
	FastRead bool
	// FastWrite retires stores without an extra buffer cycle (data cache
	// only). Cycle-neutral at a fixed clock; costs LUTs.
	FastWrite bool
}

// TotalKB returns the total cache capacity in kilobytes.
func (c CacheConfig) TotalKB() int { return c.Sets * c.SetSizeKB }

// LineBytes returns the line length in bytes.
func (c CacheConfig) LineBytes() int { return c.LineWords * 4 }

// IUConfig describes the LEON2 integer unit options.
type IUConfig struct {
	// FastJump computes JMPL/CALL targets a stage early, saving one cycle
	// per register jump.
	FastJump bool
	// ICCHold inserts a conservative one-cycle interlock when a
	// conditional branch immediately follows the instruction that sets
	// the condition codes.
	ICCHold bool
	// FastDecode adds decode logic that removes a cycle from taken
	// control transfers.
	FastDecode bool
	// LoadDelay is the load-use interlock distance in cycles: 1 or 2.
	LoadDelay int
	// RegWindows is the number of SPARC register windows: 8 or 16..32.
	RegWindows int
	// Divider selects the hardware divider.
	Divider DividerOption
	// Multiplier selects the hardware multiplier.
	Multiplier MultiplierOption
}

// SynthConfig holds synthesis-tool options that affect resources only.
type SynthConfig struct {
	// InferMultDiv lets the synthesis tool infer multiplier/divider
	// macros instead of instantiating explicit ones.
	InferMultDiv bool
}

// Config is a complete microarchitecture configuration of the soft-core
// processor: the value assignment for every reconfigurable parameter in the
// paper's Figure 1.
type Config struct {
	ICache CacheConfig
	DCache CacheConfig
	IU     IUConfig
	Synth  SynthConfig
}

// Default returns the out-of-the-box LEON configuration — the paper's base
// configuration (Figure 1, "Default" column).
func Default() Config {
	return Config{
		ICache: CacheConfig{Sets: 1, SetSizeKB: 4, LineWords: 8, Replacement: Random},
		DCache: CacheConfig{Sets: 1, SetSizeKB: 4, LineWords: 8, Replacement: Random},
		IU: IUConfig{
			FastJump:   true,
			ICCHold:    true,
			FastDecode: true,
			LoadDelay:  1,
			RegWindows: 8,
			Divider:    DivRadix2,
			Multiplier: Mul16x16,
		},
		Synth: SynthConfig{InferMultDiv: true},
	}
}

var validSetSizes = map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true, 64: true}

func validateCache(name string, c CacheConfig, isData bool) error {
	if c.Sets < 1 || c.Sets > 4 {
		return fmt.Errorf("config: %s sets %d out of range 1-4", name, c.Sets)
	}
	if !validSetSizes[c.SetSizeKB] {
		return fmt.Errorf("config: %s set size %dKB not one of 1,2,4,8,16,32,64", name, c.SetSizeKB)
	}
	if c.LineWords != 4 && c.LineWords != 8 {
		return fmt.Errorf("config: %s line size %d words not 4 or 8", name, c.LineWords)
	}
	switch c.Replacement {
	case Random:
	case LRR:
		if c.Sets != 2 {
			return fmt.Errorf("config: %s LRR replacement requires exactly 2 sets, have %d", name, c.Sets)
		}
	case LRU:
		if c.Sets < 2 {
			return fmt.Errorf("config: %s LRU replacement requires a multi-way cache, have %d set", name, c.Sets)
		}
	default:
		return fmt.Errorf("config: %s unknown replacement policy %d", name, int(c.Replacement))
	}
	if !isData && (c.FastRead || c.FastWrite) {
		return fmt.Errorf("config: %s fast read/write apply to the data cache only", name)
	}
	return nil
}

// Validate reports whether the configuration satisfies every structural
// rule LEON imposes (ranges, replacement-vs-associativity couplings).
// It does not check device resource feasibility; see package fpga.
func (c Config) Validate() error {
	if err := validateCache("icache", c.ICache, false); err != nil {
		return err
	}
	if err := validateCache("dcache", c.DCache, true); err != nil {
		return err
	}
	iu := c.IU
	if iu.LoadDelay != 1 && iu.LoadDelay != 2 {
		return fmt.Errorf("config: load delay %d not 1 or 2", iu.LoadDelay)
	}
	if iu.RegWindows != 8 && (iu.RegWindows < 16 || iu.RegWindows > 32) {
		return fmt.Errorf("config: register windows %d not 8 or 16-32", iu.RegWindows)
	}
	if iu.Divider != DivNone && iu.Divider != DivRadix2 {
		return fmt.Errorf("config: unknown divider option %d", int(iu.Divider))
	}
	if iu.Multiplier < MulNone || iu.Multiplier > Mul32x32 {
		return fmt.Errorf("config: unknown multiplier option %d", int(iu.Multiplier))
	}
	return nil
}

// String renders the configuration compactly, one subsystem per segment.
func (c Config) String() string {
	return fmt.Sprintf("icache=%dx%dKB/l%d/%s dcache=%dx%dKB/l%d/%s/fr=%t/fw=%t iu=[fj=%t icc=%t fd=%t ld=%d win=%d div=%s mul=%s] infer=%t",
		c.ICache.Sets, c.ICache.SetSizeKB, c.ICache.LineWords, c.ICache.Replacement,
		c.DCache.Sets, c.DCache.SetSizeKB, c.DCache.LineWords, c.DCache.Replacement,
		c.DCache.FastRead, c.DCache.FastWrite,
		c.IU.FastJump, c.IU.ICCHold, c.IU.FastDecode, c.IU.LoadDelay, c.IU.RegWindows,
		c.IU.Divider, c.IU.Multiplier, c.Synth.InferMultDiv)
}

// TimingKey returns a copy of the configuration with every parameter that
// cannot affect simulated timing normalised to the base value: the data
// cache fast-read/fast-write options are cycle-neutral at a fixed clock
// (they cost LUTs only) and InferMultDiv is a synthesis-resource choice.
// Two configurations with equal TimingKeys produce bit-identical runs, so
// the measurement cache uses it as the simulation identity.
func (c Config) TimingKey() Config {
	base := Default()
	c.DCache.FastRead = base.DCache.FastRead
	c.DCache.FastWrite = base.DCache.FastWrite
	c.Synth.InferMultDiv = base.Synth.InferMultDiv
	return c
}

// DiffBase lists the parameters on which c differs from the base
// configuration, in the "param=value" notation the paper's result tables
// use. An empty slice means c is the base configuration.
func (c Config) DiffBase() []string {
	base := Default()
	var d []string
	add := func(cond bool, format string, args ...any) {
		if cond {
			d = append(d, fmt.Sprintf(format, args...))
		}
	}
	add(c.ICache.Sets != base.ICache.Sets, "icachsets=%d", c.ICache.Sets)
	add(c.ICache.SetSizeKB != base.ICache.SetSizeKB, "icachsetsz=%d", c.ICache.SetSizeKB)
	add(c.ICache.LineWords != base.ICache.LineWords, "icachlinesz=%d", c.ICache.LineWords)
	add(c.ICache.Replacement != base.ICache.Replacement, "icachreplace=%s", c.ICache.Replacement)
	add(c.DCache.Sets != base.DCache.Sets, "dcachsets=%d", c.DCache.Sets)
	add(c.DCache.SetSizeKB != base.DCache.SetSizeKB, "dcachsetsz=%d", c.DCache.SetSizeKB)
	add(c.DCache.LineWords != base.DCache.LineWords, "dcachlinesz=%d", c.DCache.LineWords)
	add(c.DCache.Replacement != base.DCache.Replacement, "dcachreplace=%s", c.DCache.Replacement)
	add(c.DCache.FastRead != base.DCache.FastRead, "fastread=%t", c.DCache.FastRead)
	add(c.DCache.FastWrite != base.DCache.FastWrite, "fastwrite=%t", c.DCache.FastWrite)
	add(c.IU.FastJump != base.IU.FastJump, "fastjump=%t", c.IU.FastJump)
	add(c.IU.ICCHold != base.IU.ICCHold, "icchold=%t", c.IU.ICCHold)
	add(c.IU.FastDecode != base.IU.FastDecode, "fastdecode=%t", c.IU.FastDecode)
	add(c.IU.LoadDelay != base.IU.LoadDelay, "loaddelay=%d", c.IU.LoadDelay)
	add(c.IU.RegWindows != base.IU.RegWindows, "registers=%d", c.IU.RegWindows)
	add(c.IU.Divider != base.IU.Divider, "divider=%s", c.IU.Divider)
	add(c.IU.Multiplier != base.IU.Multiplier, "multiplier=%s", c.IU.Multiplier)
	add(c.Synth.InferMultDiv != base.Synth.InferMultDiv, "infermultdiv=%t", c.Synth.InferMultDiv)
	return d
}

// Set assigns one parameter by its textual name (the names accepted are the
// ones DiffBase produces, e.g. "dcachsetsz=32" or "multiplier=m32x32").
// It allows CLI tools and tests to build configurations declaratively.
func (c *Config) Set(assignment string) error {
	name, value, ok := strings.Cut(assignment, "=")
	if !ok {
		return fmt.Errorf("config: assignment %q is not of the form param=value", assignment)
	}
	name = strings.TrimSpace(strings.ToLower(name))
	value = strings.TrimSpace(value)

	parseInt := func() (int, error) {
		var n int
		if _, err := fmt.Sscanf(value, "%d", &n); err != nil {
			return 0, fmt.Errorf("config: parameter %s needs an integer, got %q", name, value)
		}
		return n, nil
	}
	parseBool := func() (bool, error) {
		switch strings.ToLower(value) {
		case "true", "on", "enable", "enabled", "1":
			return true, nil
		case "false", "off", "disable", "disabled", "0":
			return false, nil
		}
		return false, fmt.Errorf("config: parameter %s needs a boolean, got %q", name, value)
	}
	parseRepl := func() (ReplacementPolicy, error) {
		switch strings.ToLower(value) {
		case "rnd", "random":
			return Random, nil
		case "lrr":
			return LRR, nil
		case "lru":
			return LRU, nil
		}
		return Random, fmt.Errorf("config: unknown replacement policy %q", value)
	}

	switch name {
	case "icachsets", "icache.sets":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.ICache.Sets = n
	case "icachsetsz", "icache.setsize":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.ICache.SetSizeKB = n
	case "icachlinesz", "icache.linesize":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.ICache.LineWords = n
	case "icachreplace", "icache.replacement":
		p, err := parseRepl()
		if err != nil {
			return err
		}
		c.ICache.Replacement = p
	case "dcachsets", "dcache.sets":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.DCache.Sets = n
	case "dcachsetsz", "dcache.setsize":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.DCache.SetSizeKB = n
	case "dcachlinesz", "dcache.linesize":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.DCache.LineWords = n
	case "dcachreplace", "dcache.replacement":
		p, err := parseRepl()
		if err != nil {
			return err
		}
		c.DCache.Replacement = p
	case "fastread", "dcache.fastread":
		b, err := parseBool()
		if err != nil {
			return err
		}
		c.DCache.FastRead = b
	case "fastwrite", "dcache.fastwrite":
		b, err := parseBool()
		if err != nil {
			return err
		}
		c.DCache.FastWrite = b
	case "fastjump", "iu.fastjump":
		b, err := parseBool()
		if err != nil {
			return err
		}
		c.IU.FastJump = b
	case "icchold", "iu.icchold":
		b, err := parseBool()
		if err != nil {
			return err
		}
		c.IU.ICCHold = b
	case "fastdecode", "iu.fastdecode":
		b, err := parseBool()
		if err != nil {
			return err
		}
		c.IU.FastDecode = b
	case "loaddelay", "iu.loaddelay":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.IU.LoadDelay = n
	case "registers", "regwindows", "iu.regwindows":
		n, err := parseInt()
		if err != nil {
			return err
		}
		c.IU.RegWindows = n
	case "divider", "iu.divider":
		switch strings.ToLower(value) {
		case "none":
			c.IU.Divider = DivNone
		case "radix2":
			c.IU.Divider = DivRadix2
		default:
			return fmt.Errorf("config: unknown divider %q", value)
		}
	case "multiplier", "iu.multiplier":
		switch strings.ToLower(value) {
		case "none":
			c.IU.Multiplier = MulNone
		case "iter", "iterative":
			c.IU.Multiplier = MulIterative
		case "m16x16", "16x16":
			c.IU.Multiplier = Mul16x16
		case "m16x16p", "m16x16pipe", "16x16p":
			c.IU.Multiplier = Mul16x16Pipe
		case "m32x8", "32x8":
			c.IU.Multiplier = Mul32x8
		case "m32x16", "32x16":
			c.IU.Multiplier = Mul32x16
		case "m32x32", "32x32":
			c.IU.Multiplier = Mul32x32
		default:
			return fmt.Errorf("config: unknown multiplier %q", value)
		}
	case "infermultdiv", "synth.infermultdiv":
		b, err := parseBool()
		if err != nil {
			return err
		}
		c.Synth.InferMultDiv = b
	default:
		return fmt.Errorf("config: unknown parameter %q", name)
	}
	return nil
}
