package config

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Group identifies a set of decision variables of which at most one may be
// selected (the paper's "parameter validity constraints"). Independent
// binary parameters form singleton groups.
type Group int

const (
	GroupICacheSets Group = iota
	GroupICacheSetSize
	GroupICacheLine
	GroupICacheReplacement
	GroupDCacheSets
	GroupDCacheSetSize
	GroupDCacheLine
	GroupDCacheReplacement
	GroupFastJump
	GroupICCHold
	GroupFastDecode
	GroupLoadDelay
	GroupFastRead
	GroupDivider
	GroupInferMultDiv
	GroupRegWindows
	GroupMultiplier
	GroupFastWrite
	numGroups
)

func (g Group) String() string {
	names := [...]string{
		"icache-sets", "icache-setsize", "icache-line", "icache-replacement",
		"dcache-sets", "dcache-setsize", "dcache-line", "dcache-replacement",
		"fastjump", "icchold", "fastdecode", "loaddelay", "fastread",
		"divider", "infermultdiv", "regwindows", "multiplier", "fastwrite",
	}
	if int(g) < len(names) {
		return names[g]
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Var is one binary decision variable: a single parameter-value change away
// from the base configuration. Index follows the paper's x1..x52 layout
// exactly (see DESIGN.md §4).
type Var struct {
	// Index is the 1-based variable index xi of the paper's formulation.
	Index int
	// Name is the human-readable change, e.g. "dcachsetsz=32".
	Name string
	// Group is the at-most-one group this variable belongs to.
	Group Group
	// apply mutates a configuration to include this change.
	apply func(*Config)
}

// Apply returns the base-plus-this-change configuration derived from c.
func (v Var) Apply(c Config) Config {
	v.apply(&c)
	return c
}

// Space is an ordered collection of decision variables with their group
// structure. The full paper space has 52 variables; restricted sub-spaces
// (Section 5's dcache study) carry a subset.
type Space struct {
	vars []Var
}

// Vars returns the decision variables in index order.
func (s *Space) Vars() []Var { return s.vars }

// Len returns the number of decision variables.
func (s *Space) Len() int { return len(s.vars) }

// ByIndex returns the variable with the given 1-based paper index.
func (s *Space) ByIndex(i int) (Var, bool) {
	for _, v := range s.vars {
		if v.Index == i {
			return v, true
		}
	}
	return Var{}, false
}

// ByName returns the variable with the given name.
func (s *Space) ByName(name string) (Var, bool) {
	for _, v := range s.vars {
		if v.Name == name {
			return v, true
		}
	}
	return Var{}, false
}

// Fingerprint returns the stable identity of the space: a hex SHA-256
// over its variable names and group memberships in index order. Two
// spaces with the same fingerprint measure the same single-change
// configurations and formulate the same constraints, which is what lets
// a model cache key on it across independently constructed Space values
// (FullSpace() allocates a fresh *Space per call).
func (s *Space) Fingerprint() string {
	h := sha256.New()
	for _, v := range s.vars {
		fmt.Fprintf(h, "%d:%s:%d\n", v.Index, v.Name, v.Group)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Groups returns, for each group present in the space, the indices (into
// Vars()) of its member variables, keyed by Group.
func (s *Space) Groups() map[Group][]int {
	m := make(map[Group][]int)
	for i, v := range s.vars {
		m[v.Group] = append(m[v.Group], i)
	}
	return m
}

// Decode converts a selection (one bool per variable, in Vars() order) into
// a concrete configuration, applying every selected change to the base.
// It errors if the selection violates a group constraint.
func (s *Space) Decode(selected []bool) (Config, error) {
	if len(selected) != len(s.vars) {
		return Config{}, fmt.Errorf("config: selection length %d, want %d", len(selected), len(s.vars))
	}
	perGroup := make(map[Group]string)
	c := Default()
	for i, on := range selected {
		if !on {
			continue
		}
		v := s.vars[i]
		if prev, dup := perGroup[v.Group]; dup {
			return Config{}, fmt.Errorf("config: selection picks both %s and %s from group %s", prev, v.Name, v.Group)
		}
		perGroup[v.Group] = v.Name
		v.apply(&c)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// FullSpace returns the complete 52-variable decision space of the paper's
// Section 4, in x1..x52 order.
func FullSpace() *Space {
	var vars []Var
	idx := 0
	add := func(name string, g Group, apply func(*Config)) {
		idx++
		vars = append(vars, Var{Index: idx, Name: name, Group: g, apply: apply})
	}

	// x1..x3: icache sets 2,3,4.
	for _, n := range []int{2, 3, 4} {
		n := n
		add(fmt.Sprintf("icachsets=%d", n), GroupICacheSets, func(c *Config) { c.ICache.Sets = n })
	}
	// x4..x8: icache set size 1,2,8,16,32 KB.
	for _, kb := range []int{1, 2, 8, 16, 32} {
		kb := kb
		add(fmt.Sprintf("icachsetsz=%d", kb), GroupICacheSetSize, func(c *Config) { c.ICache.SetSizeKB = kb })
	}
	// x9: icache line 4 words.
	add("icachlinesz=4", GroupICacheLine, func(c *Config) { c.ICache.LineWords = 4 })
	// x10,x11: icache replacement LRR, LRU.
	add("icachreplace=LRR", GroupICacheReplacement, func(c *Config) { c.ICache.Replacement = LRR })
	add("icachreplace=LRU", GroupICacheReplacement, func(c *Config) { c.ICache.Replacement = LRU })
	// x12..x14: dcache sets 2,3,4.
	for _, n := range []int{2, 3, 4} {
		n := n
		add(fmt.Sprintf("dcachsets=%d", n), GroupDCacheSets, func(c *Config) { c.DCache.Sets = n })
	}
	// x15..x19: dcache set size 1,2,8,16,32 KB.
	for _, kb := range []int{1, 2, 8, 16, 32} {
		kb := kb
		add(fmt.Sprintf("dcachsetsz=%d", kb), GroupDCacheSetSize, func(c *Config) { c.DCache.SetSizeKB = kb })
	}
	// x20: dcache line 4 words.
	add("dcachlinesz=4", GroupDCacheLine, func(c *Config) { c.DCache.LineWords = 4 })
	// x21,x22: dcache replacement LRR, LRU.
	add("dcachreplace=LRR", GroupDCacheReplacement, func(c *Config) { c.DCache.Replacement = LRR })
	add("dcachreplace=LRU", GroupDCacheReplacement, func(c *Config) { c.DCache.Replacement = LRU })
	// x23: fast jump off.
	add("fastjump=false", GroupFastJump, func(c *Config) { c.IU.FastJump = false })
	// x24: ICC hold off.
	add("icchold=false", GroupICCHold, func(c *Config) { c.IU.ICCHold = false })
	// x25: fast decode off.
	add("fastdecode=false", GroupFastDecode, func(c *Config) { c.IU.FastDecode = false })
	// x26: load delay 2.
	add("loaddelay=2", GroupLoadDelay, func(c *Config) { c.IU.LoadDelay = 2 })
	// x27: dcache fast read on.
	add("fastread=true", GroupFastRead, func(c *Config) { c.DCache.FastRead = true })
	// x28: divider none.
	add("divider=none", GroupDivider, func(c *Config) { c.IU.Divider = DivNone })
	// x29: infer mult/div false.
	add("infermultdiv=false", GroupInferMultDiv, func(c *Config) { c.Synth.InferMultDiv = false })
	// x30..x46: register windows 16..32.
	for n := 16; n <= 32; n++ {
		n := n
		add(fmt.Sprintf("registers=%d", n), GroupRegWindows, func(c *Config) { c.IU.RegWindows = n })
	}
	// x47..x51: multiplier alternatives.
	for _, m := range []MultiplierOption{MulIterative, Mul16x16Pipe, Mul32x8, Mul32x16, Mul32x32} {
		m := m
		add(fmt.Sprintf("multiplier=%s", m), GroupMultiplier, func(c *Config) { c.IU.Multiplier = m })
	}
	// x52: dcache fast write on.
	add("fastwrite=true", GroupFastWrite, func(c *Config) { c.DCache.FastWrite = true })

	return &Space{vars: vars}
}

// DcacheGeometrySpace returns the restricted sub-space of Section 5's
// near-optimality study: dcache number of sets (2,3,4) and set size
// (1,2,8,16,32 KB) only — 8 variables, 2 groups.
func DcacheGeometrySpace() *Space {
	full := FullSpace()
	var vars []Var
	for _, v := range full.vars {
		if v.Group == GroupDCacheSets || v.Group == GroupDCacheSetSize {
			vars = append(vars, v)
		}
	}
	return &Space{vars: vars}
}

// SpaceFromNames builds a sub-space containing the named variables of the
// full paper space, preserving full-space ordering of the names given.
// Used when re-binding persisted models.
func SpaceFromNames(names []string) (*Space, error) {
	full := FullSpace()
	var vars []Var
	for _, name := range names {
		v, ok := full.ByName(name)
		if !ok {
			return nil, fmt.Errorf("config: unknown variable %q", name)
		}
		vars = append(vars, v)
	}
	return &Space{vars: vars}, nil
}

// ParameterGroups returns the number of independently reconfigurable
// parameter groups in the full configuration (the at-most-one groups of
// the paper's Figure 1 space). A runtime reconfiguration rewriting k of
// these groups is a k/ParameterGroups() share of a full reshape — the
// proportion the phase schedule's switch-cost model charges.
func ParameterGroups() int { return int(numGroups) }

// ParameterValueCount returns the number of parameter values in the
// reconstructed Figure 1 space (the paper reports 79; our itemisation of
// Figure 1 yields 73 — see DESIGN.md §4).
func ParameterValueCount() int {
	icache := 4 + 7 + 2 + 3
	dcache := 4 + 7 + 2 + 3 + 2 + 2
	iu := 2 + 2 + 2 + 2 + 18 + 2 + 7
	synth := 2
	return icache + dcache + iu + synth
}

// ExhaustiveCount returns the number of distinct full-factorial
// configurations of the reconstructed Figure 1 space. The paper reports
// 3,641,573,376, exactly 4x this product (see DESIGN.md §4).
func ExhaustiveCount() uint64 {
	icache := uint64(4 * 7 * 2 * 3)
	dcache := uint64(4 * 7 * 2 * 3 * 2 * 2)
	iu := uint64(2 * 2 * 2 * 2 * 18 * 2 * 7)
	synth := uint64(2)
	return icache * dcache * iu * synth
}

// SpaceByName resolves the named decision space: "full" (or "") is the
// 52-variable paper space, "dcache" the Section 5 sub-space. It is the
// one name→space mapping shared by the autoarch CLI and the autoarchd
// daemon.
func SpaceByName(name string) (*Space, error) {
	switch name {
	case "", "full":
		return FullSpace(), nil
	case "dcache":
		return DcacheGeometrySpace(), nil
	}
	return nil, fmt.Errorf("config: unknown space %q (use full or dcache)", name)
}
