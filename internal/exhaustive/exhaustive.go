// Package exhaustive is the brute-force baseline of the paper's Section 5:
// enumerate a (restricted) configuration space outright, build and run
// every feasible member, and sort for the optimum. On the full space this
// is the 3.6-billion-configuration non-starter the paper argues against;
// on the dcache sets × set-size sub-space it is the ground truth the
// optimizer is judged near-optimal against.
package exhaustive

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Result is one enumerated configuration with its measured costs.
type Result struct {
	Config    config.Config
	Cycles    uint64
	Resources fpga.Resources
}

// Seconds converts the runtime to seconds at the platform clock.
func (r Result) Seconds() float64 { return float64(r.Cycles) / 25e6 }

// Sweep builds and runs every configuration in the list (skipping ones
// that do not fit the device) in parallel and returns results in input
// order. workers <= 0 uses NumCPU.
func Sweep(b *progs.Benchmark, scale workload.Scale, cfgs []config.Config, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	prog, err := b.Assemble(scale)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(cfgs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := fpga.Synthesize(cfg)
			if err == nil && !res.FitsDevice() {
				err = fmt.Errorf("exhaustive: %v does not fit the device", cfg.DiffBase())
			}
			var cycles uint64
			if err == nil {
				// The measurement cache shares these runs with the model
				// builder and across repeated sweeps.
				var rep *platform.RunReport
				rep, err = platform.CachedRun(prog, cfg)
				if err == nil {
					cycles = rep.Cycles()
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[i] = Result{Config: cfg, Cycles: cycles, Resources: res}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// DcacheGeometryConfigs enumerates the Section 5 sub-space: dcache sets
// 1-4 × set size {1,2,4,8,16,32} KB, keeping only configurations that fit
// the device (19 of 24, exactly the rows of the paper's Figure 2).
func DcacheGeometryConfigs() []config.Config {
	var out []config.Config
	for _, sets := range []int{1, 2, 3, 4} {
		for _, kb := range []int{1, 2, 4, 8, 16, 32} {
			cfg := config.Default()
			cfg.DCache.Sets = sets
			cfg.DCache.SetSizeKB = kb
			if fpga.Feasible(cfg) {
				out = append(out, cfg)
			}
		}
	}
	return out
}

// DcacheGeometry runs the full Section 5 exhaustive study for one
// benchmark.
func DcacheGeometry(b *progs.Benchmark, scale workload.Scale, workers int) ([]Result, error) {
	return Sweep(b, scale, DcacheGeometryConfigs(), workers)
}

// BestByRuntime returns the result a runtime-optimizing sort selects:
// minimum cycles, ties broken by BRAM, then LUTs, then fewer sets (the
// "simple sort" of Section 5).
func BestByRuntime(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("exhaustive: no results")
	}
	sorted := make([]Result, len(results))
	copy(sorted, results)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.Resources.BRAM != b.Resources.BRAM {
			return a.Resources.BRAM < b.Resources.BRAM
		}
		if a.Resources.LUTs != b.Resources.LUTs {
			return a.Resources.LUTs < b.Resources.LUTs
		}
		return a.Config.DCache.Sets < b.Config.DCache.Sets
	})
	return sorted[0], nil
}
