// Package exhaustive is the brute-force baseline of the paper's Section 5:
// enumerate a (restricted) configuration space outright, build and run
// every feasible member, and sort for the optimum. On the full space this
// is the 3.6-billion-configuration non-starter the paper argues against;
// on the dcache sets × set-size sub-space it is the ground truth the
// optimizer is judged near-optimal against.
package exhaustive

import (
	"context"
	"fmt"
	"sort"

	"liquidarch/internal/config"
	"liquidarch/internal/fpga"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Result is one enumerated configuration with its measured costs.
type Result struct {
	Config    config.Config
	Cycles    uint64
	Resources fpga.Resources
}

// Seconds converts the runtime to seconds at the platform clock.
func (r Result) Seconds() float64 { return float64(r.Cycles) / 25e6 }

// Sweep builds and runs every configuration in the list (skipping ones
// that do not fit the device) through the shared measurement provider and
// returns results in input order. Cancelling ctx aborts the sweep
// promptly. workers <= 0 uses NumCPU.
func Sweep(ctx context.Context, b *progs.Benchmark, scale workload.Scale, cfgs []config.Config, workers int) ([]Result, error) {
	return SweepWith(ctx, measure.Default(), b, scale, cfgs, workers)
}

// SweepWith is Sweep against an explicit measurement provider. The
// program is the benchmark's memoized assembly for the scale, so every
// sweep — including ones over caller-supplied custom spaces — shares the
// provider's memoized runs with the model builder and across repeats.
func SweepWith(ctx context.Context, p measure.Provider, b *progs.Benchmark, scale workload.Scale, cfgs []config.Config, workers int) ([]Result, error) {
	prog, err := b.Assemble(scale)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(cfgs))
	err = measure.ForEach(ctx, len(cfgs), workers, func(i int) error {
		cfg := cfgs[i]
		res, err := fpga.Synthesize(cfg)
		if err != nil {
			return err
		}
		if !res.FitsDevice() {
			return fmt.Errorf("exhaustive: %v does not fit the device", cfg.DiffBase())
		}
		rep, err := p.Measure(ctx, prog, cfg, platform.Options{})
		if err != nil {
			return err
		}
		results[i] = Result{Config: cfg, Cycles: rep.Cycles(), Resources: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// DcacheGeometryConfigs enumerates the Section 5 sub-space: dcache sets
// 1-4 × set size {1,2,4,8,16,32} KB, keeping only configurations that fit
// the device (19 of 24, exactly the rows of the paper's Figure 2).
func DcacheGeometryConfigs() []config.Config {
	var out []config.Config
	for _, sets := range []int{1, 2, 3, 4} {
		for _, kb := range []int{1, 2, 4, 8, 16, 32} {
			cfg := config.Default()
			cfg.DCache.Sets = sets
			cfg.DCache.SetSizeKB = kb
			if fpga.Feasible(cfg) {
				out = append(out, cfg)
			}
		}
	}
	return out
}

// DcacheGeometry runs the full Section 5 exhaustive study for one
// benchmark.
func DcacheGeometry(ctx context.Context, b *progs.Benchmark, scale workload.Scale, workers int) ([]Result, error) {
	return Sweep(ctx, b, scale, DcacheGeometryConfigs(), workers)
}

// BestByRuntime returns the result a runtime-optimizing sort selects:
// minimum cycles, ties broken by BRAM, then LUTs, then fewer sets (the
// "simple sort" of Section 5).
func BestByRuntime(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("exhaustive: no results")
	}
	sorted := make([]Result, len(results))
	copy(sorted, results)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.Resources.BRAM != b.Resources.BRAM {
			return a.Resources.BRAM < b.Resources.BRAM
		}
		if a.Resources.LUTs != b.Resources.LUTs {
			return a.Resources.LUTs < b.Resources.LUTs
		}
		return a.Config.DCache.Sets < b.Config.DCache.Sets
	})
	return sorted[0], nil
}
