package exhaustive

import (
	"context"
	"errors"
	"sync"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

func TestDcacheGeometryConfigsMatchPaperFeasibleSet(t *testing.T) {
	cfgs := DcacheGeometryConfigs()
	// The paper's Figure 2 lists exactly 19 feasible combinations.
	if len(cfgs) != 19 {
		t.Fatalf("feasible dcache geometries = %d, paper shows 19", len(cfgs))
	}
	// The infeasible five: 2x32, 3x16, 3x32, 4x16, 4x32.
	infeasible := map[[2]int]bool{
		{2, 32}: true, {3, 16}: true, {3, 32}: true, {4, 16}: true, {4, 32}: true,
	}
	for _, cfg := range cfgs {
		key := [2]int{cfg.DCache.Sets, cfg.DCache.SetSizeKB}
		if infeasible[key] {
			t.Errorf("%dx%dKB should not fit the device", key[0], key[1])
		}
	}
}

func TestSweepRunsAndOrders(t *testing.T) {
	b, _ := progs.ByName("arith")
	cfgs := []config.Config{config.Default(), config.Default()}
	cfgs[1].DCache.SetSizeKB = 8
	results, err := Sweep(context.Background(), b, workload.Tiny, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Config != cfgs[0] || results[1].Config != cfgs[1] {
		t.Error("results not in input order")
	}
	// Arith is dcache-insensitive: equal cycles.
	if results[0].Cycles != results[1].Cycles {
		t.Errorf("arith cycles differ: %d vs %d", results[0].Cycles, results[1].Cycles)
	}
	if results[0].Seconds() <= 0 {
		t.Error("seconds conversion broken")
	}
}

func TestSweepRejectsInfeasible(t *testing.T) {
	b, _ := progs.ByName("arith")
	cfg := config.Default()
	cfg.DCache.SetSizeKB = 64
	if _, err := Sweep(context.Background(), b, workload.Tiny, []config.Config{cfg}, 1); err == nil {
		t.Error("64KB dcache sweep should error (does not fit)")
	}
}

func TestBestByRuntimeTieBreaks(t *testing.T) {
	b, _ := progs.ByName("blastn")
	results, err := DcacheGeometry(context.Background(), b, workload.Tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestByRuntime(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Cycles < best.Cycles {
			t.Errorf("best %d cycles but %v has %d", best.Cycles, r.Config.DiffBase(), r.Cycles)
		}
		if r.Cycles == best.Cycles && r.Resources.BRAM < best.Resources.BRAM {
			t.Errorf("tie-break should prefer lower BRAM: best %d blocks, %v has %d",
				best.Resources.BRAM, r.Config.DiffBase(), r.Resources.BRAM)
		}
	}
}

func TestBestByRuntimeEmpty(t *testing.T) {
	if _, err := BestByRuntime(nil); err == nil {
		t.Error("empty results should error")
	}
}

// countingProvider counts measurements and optionally cancels the context
// after a threshold.
type countingProvider struct {
	inner  measure.Provider
	cancel context.CancelFunc
	after  int
	mu     sync.Mutex
	seen   int
}

func (p *countingProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	p.mu.Lock()
	p.seen++
	if p.cancel != nil && p.seen > p.after {
		p.cancel()
	}
	p.mu.Unlock()
	return p.inner.Measure(ctx, prog, cfg, opts)
}

func TestSweepAbortsOnCancelledContext(t *testing.T) {
	b, _ := progs.ByName("arith")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, b, workload.Tiny, DcacheGeometryConfigs(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSweepAbortsMidSweep(t *testing.T) {
	b, _ := progs.ByName("arith")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &countingProvider{inner: measure.NewCache(measure.Simulator{}, 64), cancel: cancel, after: 2}
	_, err := SweepWith(ctx, p, b, workload.Tiny, DcacheGeometryConfigs(), 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep cancelled mid-sweep: err = %v, want context.Canceled", err)
	}
	// With 1 worker and cancellation after the 2nd measurement, the 19
	// configurations must not all have been measured.
	if p.seen >= 19 {
		t.Fatalf("sweep measured %d configurations after cancellation", p.seen)
	}
}

// TestSweepSharesProviderMemoization is the regression test for the
// custom-space memoization bug: two sweeps over the same caller-supplied
// configurations must reuse the provider's runs, not re-simulate.
func TestSweepSharesProviderMemoization(t *testing.T) {
	b, _ := progs.ByName("arith")
	cfgs := []config.Config{config.Default(), config.Default()}
	cfgs[1].DCache.SetSizeKB = 8
	p := &countingProvider{inner: measure.NewCache(measure.Simulator{}, 64)}
	for i := 0; i < 2; i++ {
		if _, err := SweepWith(context.Background(), p, b, workload.Tiny, cfgs, 2); err != nil {
			t.Fatal(err)
		}
	}
	// 4 requests reached the provider, but the cache behind it must have
	// simulated each distinct configuration exactly once.
	stats := p.inner.(*measure.Cache).Stats()
	if stats.Misses != 2 || stats.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 2 misses and 2 hits", stats)
	}
}
