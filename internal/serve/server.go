// Package serve is the autoarchd tuning service: an HTTP/JSON surface
// over the paper's technique. Clients submit tuning jobs (application,
// workload scale, decision space, objective weights); a bounded worker
// scheduler runs them against one shared measurement provider, so
// concurrent jobs — and repeated jobs for the same application — reuse
// each other's simulated runs exactly as the figure harnesses do in
// process. Results are core.TuneReport documents, the same serialization
// `autoarch -json` prints.
//
// API (all JSON):
//
//	POST   /v1/jobs          submit a JobRequest, returns the queued JobStatus
//	GET    /v1/jobs          list every job's JobStatus
//	GET    /v1/jobs/{id}     one job's JobStatus (with result when done)
//	GET    /v1/jobs/{id}/stream  ndjson stream of JobStatus snapshots
//	                             until the job reaches a terminal state
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/metrics       cache, pool and scheduler counters
//	GET    /v1/healthz       liveness
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the concurrently running tuning jobs (default 2).
	// Each job additionally parallelizes its own measurements on the
	// shared pool, so a small number of job workers saturates the CPU.
	Workers int
	// QueueDepth bounds the submitted-but-not-started backlog (default
	// 256); past it, POST /v1/jobs returns 503.
	QueueDepth int
	// Provider is the shared measurement provider; nil builds a bounded
	// cache over the simulator with CacheEntries entries.
	Provider measure.Provider
	// CacheEntries sizes the default provider's cache (ignored when
	// Provider is set; <= 0 means measure.DefaultCacheEntries).
	CacheEntries int
}

// JobRequest is the POST /v1/jobs payload.
type JobRequest struct {
	// App is the benchmark to tune: blastn, drr, frag, arith.
	App string `json:"app"`
	// Scale is the workload scale (default "small").
	Scale string `json:"scale,omitempty"`
	// Space is the decision space: "full" (default) or "dcache".
	Space string `json:"space,omitempty"`
	// W1/W2/W3 are the objective weights (default: the paper's runtime
	// weighting w1=100, w2=1).
	W1 *float64 `json:"w1,omitempty"`
	W2 *float64 `json:"w2,omitempty"`
	W3 *float64 `json:"w3,omitempty"`
	// SampleInstructions optionally truncates each measurement run.
	SampleInstructions uint64 `json:"sample_instructions,omitempty"`
	// Workers bounds this job's measurement parallelism (0 = NumCPU).
	Workers int `json:"workers,omitempty"`
	// IncludeModel embeds the full perturbation model in the result.
	IncludeModel bool `json:"include_model,omitempty"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobStatus is the externally visible job record.
type JobStatus struct {
	ID       string           `json:"id"`
	State    string           `json:"state"`
	Request  JobRequest       `json:"request"`
	Error    string           `json:"error,omitempty"`
	Result   *core.TuneReport `json:"result,omitempty"`
	Created  time.Time        `json:"created"`
	Started  *time.Time       `json:"started,omitempty"`
	Finished *time.Time       `json:"finished,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	switch s.State {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// job is the internal record behind a JobStatus.
type job struct {
	mu       sync.Mutex
	status   JobStatus
	cancel   context.CancelFunc
	updated  chan struct{} // closed and replaced on every status change
	canceled bool
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.status
	return s
}

// mutate applies fn under the job lock and wakes every status watcher.
func (j *job) mutate(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()
}

// watch returns the channel that is closed at the next status change.
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.updated
}

// Server is the autoarchd daemon core: scheduler, job table and HTTP
// handlers. Construct with New, serve Handler(), Close on shutdown.
type Server struct {
	opts     Options
	provider measure.Provider
	cache    *measure.Cache // non-nil when the provider stack exposes one

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool
}

// New builds a server and starts its worker scheduler.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	provider := opts.Provider
	var cache *measure.Cache
	if provider == nil {
		cache = measure.NewCache(measure.Simulator{}, opts.CacheEntries)
		provider = cache
	} else if c, ok := provider.(*measure.Cache); ok {
		cache = c
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		provider: provider,
		cache:    cache,
		baseCtx:  ctx,
		stop:     stop,
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     make(map[string]*job),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the scheduler, cancelling any running jobs, and waits for
// the workers to drain. Submissions racing Close are rejected rather
// than risking a send on the closed queue.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	close(s.queue)
	s.wg.Wait()
}

// Cache returns the server's bounded cache, or nil when the injected
// provider hides it.
func (s *Server) Cache() *measure.Cache { return s.cache }

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// resolve validates a request into its tuning inputs.
func resolve(req JobRequest) (*progs.Benchmark, workload.Scale, *config.Space, core.Weights, error) {
	b, ok := progs.ByName(req.App)
	if !ok {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("unknown app %q", req.App)
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "small"
	}
	sc, ok := workload.ParseScale(scaleName)
	if !ok {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("unknown scale %q", req.Scale)
	}
	space, err := config.SpaceByName(req.Space)
	if err != nil {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("unknown space %q", req.Space)
	}
	w := core.Weights{W1: 100, W2: 1}
	if req.W1 != nil {
		w.W1 = *req.W1
	}
	if req.W2 != nil {
		w.W2 = *req.W2
	}
	if req.W3 != nil {
		w.W3 = *req.W3
	}
	return b, sc, space, w, nil
}

func (s *Server) runJob(j *job) {
	snap := j.snapshot()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.canceled {
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	now := time.Now()
	j.status.State = StateRunning
	j.status.Started = &now
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()

	report, err := s.tune(ctx, snap.Request)

	j.mutate(func(st *JobStatus) {
		now := time.Now()
		st.Finished = &now
		switch {
		case err == nil:
			st.State = StateDone
			st.Result = report
		case ctx.Err() != nil && s.baseCtx.Err() == nil:
			st.State = StateCancelled
			st.Error = context.Canceled.Error()
		default:
			st.State = StateFailed
			st.Error = err.Error()
		}
	})
}

// tune executes one job: the same BuildModel → solve → validate flow the
// autoarch CLI runs, against the server's shared provider.
func (s *Server) tune(ctx context.Context, req JobRequest) (*core.TuneReport, error) {
	b, sc, space, w, err := resolve(req)
	if err != nil {
		return nil, err
	}
	tuner := &core.Tuner{
		Space:              space,
		Scale:              sc,
		Workers:            req.Workers,
		Provider:           s.provider,
		SampleInstructions: req.SampleInstructions,
	}
	model, err := tuner.BuildModel(ctx, b)
	if err != nil {
		return nil, err
	}
	rec, err := tuner.RecommendFromModel(model, w)
	if err != nil {
		return nil, err
	}
	val, err := tuner.Validate(ctx, b, model, rec)
	if err != nil {
		return nil, err
	}
	return core.NewTuneReport(model, rec, val, req.IncludeModel), nil
}

// Submit enqueues a job (the programmatic form of POST /v1/jobs).
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	if _, _, _, _, err := resolve(req); err != nil {
		return JobStatus{}, &apiError{http.StatusBadRequest, err.Error()}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, &apiError{http.StatusServiceUnavailable, "server shutting down"}
	}
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	j := &job{
		status: JobStatus{
			ID:      id,
			State:   StateQueued,
			Request: req,
			Created: time.Now(),
		},
		updated: make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	// The enqueue happens under s.mu so it cannot race Close's
	// close(s.queue): Close flips s.closed under the same lock first.
	var full bool
	select {
	case s.queue <- j:
	default:
		full = true
	}
	s.mu.Unlock()

	if full {
		j.mutate(func(st *JobStatus) {
			st.State = StateFailed
			st.Error = "queue full"
		})
		return j.snapshot(), &apiError{http.StatusServiceUnavailable, "queue full"}
	}
	return j.snapshot(), nil
}

// Cancel cancels a job by id.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, &apiError{http.StatusNotFound, "no such job"}
	}
	j.mu.Lock()
	switch j.status.State {
	case StateQueued:
		j.canceled = true
		now := time.Now()
		j.status.State = StateCancelled
		j.status.Finished = &now
		close(j.updated)
		j.updated = make(chan struct{})
	case StateRunning:
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	return j.snapshot(), nil
}

// Job returns one job's status.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Metrics is the GET /v1/metrics document.
type Metrics struct {
	Cache *measure.CacheStats `json:"cache,omitempty"`
	Pool  platform.PoolStats  `json:"pool"`
	Jobs  map[string]int      `json:"jobs"`
}

// MetricsSnapshot assembles the current counters.
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		Pool: platform.PoolSnapshot(),
		Jobs: map[string]int{},
	}
	if s.cache != nil {
		st := s.cache.Stats()
		m.Cache = &st
	}
	for _, js := range s.Jobs() {
		m.Jobs[js.State]++
	}
	return m
}

// apiError carries an HTTP status with a message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if ae, ok := err.(*apiError); ok {
		code = ae.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &apiError{http.StatusBadRequest, "invalid request: " + err.Error()})
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, &apiError{http.StatusNotFound, "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.streamJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// streamJob writes newline-delimited JobStatus snapshots: one
// immediately, then one per state change, ending at a terminal state (or
// when the client goes away).
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, &apiError{http.StatusNotFound, "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		// Snapshot and watch channel must come from the same critical
		// section, or a state change between them would be missed.
		j.mu.Lock()
		st := j.status
		ch := j.updated
		j.mu.Unlock()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
