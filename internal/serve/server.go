// Package serve is the autoarchd tuning service: an HTTP/JSON surface
// over the paper's technique. Clients submit tuning jobs (application,
// workload scale, decision space, objective weights); a bounded worker
// scheduler maps each JobRequest onto a core.Request and runs it
// through one shared core.Session, so concurrent jobs — and repeated
// jobs for the same application — reuse each other's simulated runs
// through the session's measurement provider AND each other's model
// builds through its shared model layer (a job differing only in
// weights performs zero new simulations and zero model builds; see
// models.{hits,misses,builds} under /v1/metrics). Results are
// core.Report documents, the same serialization `autoarch -json`
// prints; phase jobs (JobRequest.Phases) return the same document with
// the phases block, the `autoarch -phases -json` output. Running jobs
// stream per-measurement progress ("k of N") through their ndjson
// status.
//
// The scheduler is built for a long-lived, multi-replica deployment
// (DESIGN.md §14): identical in-flight requests coalesce onto one
// execution (a flight) with every attached job streaming the same
// progress, terminal jobs are retained only up to a configured
// count/age, and the measurement store a fleet shares over one
// directory is swept by the measure layer's GC.
//
// API (all JSON):
//
//	POST   /v1/jobs          submit a JobRequest, returns the queued JobStatus
//	POST   /v1/batch         submit a BatchRequest (app × space × weighting
//	                         matrix); the expanded items run as ONE flight
//	                         through one session batch, so a weight sweep
//	                         performs one model build and N solves
//	GET    /v1/jobs          list every job's JobStatus
//	GET    /v1/jobs/{id}     one job's JobStatus (with result when done)
//	GET    /v1/jobs/{id}/stream  ndjson stream of JobStatus snapshots
//	                             until the job reaches a terminal state
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/trace/{id}    the job's completed (or so-far) span tree
//	GET    /v1/trace/{id}/stream  ndjson stream of spans as they complete
//	GET    /v1/metrics       cache, store, model-layer, pool, scheduler,
//	                         fabric and per-stage latency counters
//	GET    /v1/healthz       liveness
//
// With a fabric role configured (Options.Fabric / Options.Worker) the
// distributed-measurement endpoints join the surface:
//
//	POST   /v1/workers       worker heartbeat registration (coordinator)
//	GET    /v1/workers       the registered worker table (coordinator)
//	POST   /v1/measure       one measurement RPC (worker)
//
// Scheduling is a two-level priority queue: interactive jobs (the
// default class) always run before bulk ones, and each class is
// admitted under its own queue-depth limit. See DESIGN.md §21.
//
// Every flight runs under an obs.Tracer, so each job carries the full
// span tree of its pipeline — model source, each measurement's cache
// outcome, solver effort — and every completed span also feeds the
// process-wide per-stage latency histograms reported under
// /v1/metrics ("stages").
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"liquidarch/internal/config"
	"liquidarch/internal/core"
	"liquidarch/internal/cpu"
	"liquidarch/internal/fabric"
	"liquidarch/internal/measure"
	"liquidarch/internal/obs"
	"liquidarch/internal/phase"
	"liquidarch/internal/platform"
	"liquidarch/internal/progs"
	"liquidarch/internal/workload"
)

// DefaultRetainJobs bounds the terminal jobs kept in the table when
// Options.RetainJobs is zero. Terminal jobs exist only so clients can
// fetch results they already streamed; a long-lived daemon must not
// grow its table with every request it ever served.
const DefaultRetainJobs = 1024

// Options configures a Server.
type Options struct {
	// Workers bounds the concurrently running tuning jobs (default 2).
	// Each job additionally parallelizes its own measurements on the
	// shared pool, so a small number of job workers saturates the CPU.
	Workers int
	// QueueDepth bounds the submitted-but-not-started interactive
	// backlog (default 256); past it, POST /v1/jobs returns 503.
	QueueDepth int
	// BulkQueueDepth bounds the bulk-class backlog the same way
	// (default: QueueDepth). The two admission budgets are independent:
	// a bulk flood cannot starve interactive admissions.
	BulkQueueDepth int
	// Provider is the shared measurement provider; nil builds a bounded
	// cache over the simulator with CacheEntries entries.
	Provider measure.Provider
	// CacheEntries sizes the default provider's cache (ignored when
	// Provider is set; <= 0 means measure.DefaultCacheEntries).
	CacheEntries int
	// Store, when set, is reported under /v1/metrics. It does not alter
	// the provider stack — wire the store into Provider explicitly.
	Store *measure.Store
	// RetainJobs caps the terminal jobs kept in the table: beyond it the
	// oldest-finished are dropped. 0 means DefaultRetainJobs (so the
	// zero Options value retains sensibly; the smallest expressible cap
	// is 1), negative means unlimited. Queued and running jobs are never
	// dropped.
	RetainJobs int
	// JobTTL drops terminal jobs older than this (0 = no age bound).
	JobTTL time.Duration
	// ModelCacheEntries bounds the session's shared model layer
	// (<= 0 means core.DefaultModelCacheEntries).
	ModelCacheEntries int
	// SuperblockThreshold and IntraRunWorkers retune the process-wide
	// execution defaults (platform.SetDefaultTuning) when nonzero:
	// superblock compilation heat (negative disables) and the worker
	// bound for checkpointed parallel interval re-runs. Neither changes
	// any measured result — only how fast the daemon produces it.
	SuperblockThreshold int
	IntraRunWorkers     int
	// ModelStore, when set, is the durable model tier: completed model
	// sets spill there and model-cache misses try it before rebuilding,
	// so a restarted (or sibling) replica serves a previously modeled
	// application with zero simulations and zero model builds. When
	// Store is also set, each spill records its measurement set in the
	// store so the store's GC evicts the set cohesively.
	ModelStore *core.ModelStore
	// AutoWorkers makes jobs that do not pin a worker count split the
	// host's measured effective parallelism between sweep-level
	// concurrency and intra-run interval replay (measure.AutoPlan)
	// instead of using the static defaults.
	AutoWorkers bool
	// SlowJobThreshold, when positive, logs a warning for every flight
	// whose wall-clock execution exceeds it, with the top stages of its
	// trace — so a degraded deployment names the stage that degraded
	// (cold measurement sweeps vs. a slow disk tier vs. solver blowup)
	// without anyone fetching a trace.
	SlowJobThreshold time.Duration
	// Logf receives the server's diagnostics (currently the slow-job
	// warnings); nil means the standard library logger.
	Logf func(format string, args ...any)
	// Fabric, when set, makes this server a measurement-fabric
	// coordinator: POST/GET /v1/workers serve worker registration, and
	// the fabric's dispatch counters and worker table appear under
	// /v1/metrics. The Remote itself must also be wired into Provider
	// (below the cache) for jobs to actually dispatch remotely.
	Fabric *fabric.Remote
	// Worker, when set, makes this server a measurement-fabric worker:
	// POST /v1/measure serves measurement RPCs through it, and its
	// serve counters appear under /v1/metrics.
	Worker *fabric.Worker
}

// retain resolves the configured terminal-job cap (-1 = unlimited).
func (o Options) retain() int {
	switch {
	case o.RetainJobs == 0:
		return DefaultRetainJobs
	case o.RetainJobs < 0:
		return -1
	}
	return o.RetainJobs
}

// JobRequest is the POST /v1/jobs payload.
type JobRequest struct {
	// App is the benchmark to tune: blastn, drr, frag, arith, mix.
	App string `json:"app"`
	// Scale is the workload scale (default "small").
	Scale string `json:"scale,omitempty"`
	// Space is the decision space: "full" (default) or "dcache".
	Space string `json:"space,omitempty"`
	// W1/W2/W3 are the objective weights (default: the paper's runtime
	// weighting w1=100, w2=1). An explicitly all-zero weighting — a
	// degenerate objective that scores every configuration 0 — is
	// treated as unspecified and gets the same default.
	W1 *float64 `json:"w1,omitempty"`
	W2 *float64 `json:"w2,omitempty"`
	W3 *float64 `json:"w3,omitempty"`
	// SampleInstructions optionally truncates each measurement run.
	SampleInstructions uint64 `json:"sample_instructions,omitempty"`
	// Workers bounds this job's measurement parallelism (0 = NumCPU).
	Workers int `json:"workers,omitempty"`
	// IncludeModel embeds the full perturbation model in the result.
	IncludeModel bool `json:"include_model,omitempty"`
	// Class is the scheduling class: "interactive" (default) or "bulk".
	// Interactive flights are always run before bulk ones, and each
	// class is admitted under its own queue-depth limit.
	Class string `json:"class,omitempty"`

	// Phases switches the job to phase-aware tuning: the result
	// (JobStatus.PhaseResult) is the core.Report with the phases block —
	// per-phase recommendations plus the switch-cost decision against
	// the whole-program configuration.
	Phases bool `json:"phases,omitempty"`
	// IntervalInstructions is the phase-profiling interval length
	// (0 = core.DefaultIntervalInstructions); phase jobs only.
	IntervalInstructions uint64 `json:"interval_instructions,omitempty"`
	// SwitchPenaltyCycles prices a full mid-run reconfiguration, of
	// which each switch is charged its changed-parameter share
	// (0 = core.DefaultSwitchPenaltyCycles); phase jobs only.
	SwitchPenaltyCycles uint64 `json:"switch_penalty_cycles,omitempty"`
	// PhaseThreshold overrides the phase-detection clustering threshold
	// (0 = phase.DefaultThreshold); phase jobs only.
	PhaseThreshold float64 `json:"phase_threshold,omitempty"`
	// Replay additionally replays the per-phase schedule for real — the
	// result gains the replay block with per-segment actual cycles and
	// the modeled-vs-replayed error; phase jobs only.
	Replay bool `json:"replay,omitempty"`
	// Online additionally runs the closed-loop mode: live classification
	// of each interval's signature picks the configuration with no
	// precomputed schedule, and the result's online block reports how
	// often the adaptive run diverged from it; phase jobs only.
	Online bool `json:"online,omitempty"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// MeasureProgress is the per-measurement progress of a running job: Done
// of Total measurements (base + one per decision variable, plus the
// validation run for plain jobs) have completed — cache and store hits
// included, which is why a warm daemon's progress jumps straight to
// Total. Streamed through the job's ndjson status on every step.
type MeasureProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobStatus is the externally visible job record.
type JobStatus struct {
	ID      string     `json:"id"`
	State   string     `json:"state"`
	Request JobRequest `json:"request"`
	Error   string     `json:"error,omitempty"`
	// Result is a plain job's outcome; PhaseResult a phase job's;
	// Results a batch job's — one report per expanded item, in item
	// order.
	Result      *core.TuneReport   `json:"result,omitempty"`
	PhaseResult *core.PhaseReport  `json:"phase_result,omitempty"`
	Results     []*core.TuneReport `json:"results,omitempty"`
	// Progress tracks the running flight's completed measurements.
	Progress *MeasureProgress `json:"progress,omitempty"`
	Created  time.Time        `json:"created"`
	Started  *time.Time       `json:"started,omitempty"`
	Finished *time.Time       `json:"finished,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	switch s.State {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// job is the internal record behind a JobStatus.
type job struct {
	flight *flight // the execution this job rides; guarded by Server.mu

	// trace is the tracer of the flight this job rode, kept past the
	// flight itself so GET /v1/trace/{id} serves a finished job's span
	// tree for as long as retention keeps the job. Set once at attach
	// (under Server.mu), immutable after.
	trace *obs.Tracer

	mu      sync.Mutex
	status  JobStatus
	updated chan struct{} // closed and replaced on every status change
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.status
	return s
}

// mutate applies fn under the job lock and wakes every status watcher.
func (j *job) mutate(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()
}

// watch returns the channel that is closed at the next status change.
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.updated
}

// flight is one shared execution of identical JobRequests: the job-layer
// singleflight, mirroring measure.Cache's measurement-layer one. The
// first submitter creates the flight and its request is the one
// executed; identical submissions arriving before it finishes attach to
// it instead of queueing a second execution, and every attached job's
// status tracks the flight. Cancelling a job only detaches it — the
// execution itself is cancelled when its last job detaches.
type flight struct {
	key    string
	req    JobRequest
	ctx    context.Context
	cancel context.CancelFunc
	tracer *obs.Tracer
	// batch, when non-nil, makes this a batch flight: the expanded
	// items, executed sequentially through one session TuneBatch so
	// items differing only in weights share one model build. req is
	// then the batch template (its class schedules the flight).
	batch []JobRequest

	// Guarded by Server.mu.
	jobs      []*job // attached (not individually cancelled) jobs
	started   bool
	startedAt time.Time
}

// detachLocked removes j; the caller holds Server.mu. Reports whether
// the flight is now empty (and should be cancelled by the caller).
func (f *flight) detachLocked(j *job) bool {
	for i, other := range f.jobs {
		if other == j {
			f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
			break
		}
	}
	return len(f.jobs) == 0
}

// Server is the autoarchd daemon core: scheduler, job table and HTTP
// handlers. Construct with New, serve Handler(), Close on shutdown.
type Server struct {
	opts     Options
	provider measure.Provider
	cache    *measure.Cache // non-nil when the provider stack exposes one
	session  *core.Session  // the unified tuning pipeline every job runs through
	stages   *obs.Stages    // per-stage latency histograms across every flight
	logf     func(format string, args ...any)

	baseCtx context.Context
	stop    context.CancelFunc
	queue   *flightQueue
	wg      sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order, pruned by retention
	flights   map[string]*flight
	seq       int
	submitted uint64
	deduped   uint64
	dropped   uint64
	batches   uint64
	closed    bool
}

// New builds a server and starts its worker scheduler.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.BulkQueueDepth <= 0 {
		opts.BulkQueueDepth = opts.QueueDepth
	}
	if opts.SuperblockThreshold != 0 || opts.IntraRunWorkers != 0 {
		sb := opts.SuperblockThreshold
		if sb == 0 {
			sb = cpu.DefaultSuperblockThreshold
		}
		platform.SetDefaultTuning(sb, opts.IntraRunWorkers)
	}
	provider := opts.Provider
	var cache *measure.Cache
	if provider == nil {
		cache = measure.NewCache(measure.Simulator{}, opts.CacheEntries)
		provider = cache
	} else if c, ok := provider.(*measure.Cache); ok {
		cache = c
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		provider: provider,
		cache:    cache,
		stages:   obs.NewStages(),
		logf:     logf,
		session: core.NewSession(core.SessionOptions{
			Provider:          provider,
			ModelCacheEntries: opts.ModelCacheEntries,
			ModelStore:        opts.ModelStore,
			MeasureStore:      opts.Store,
			AutoWorkers:       opts.AutoWorkers,
		}),
		baseCtx: ctx,
		stop:    stop,
		queue:   newFlightQueue(opts.QueueDepth, opts.BulkQueueDepth),
		jobs:    make(map[string]*job),
		flights: make(map[string]*flight),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.JobTTL > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s
}

// janitor sweeps TTL-expired terminal jobs on an idle server (the sweep
// also runs on every submission and listing, but age-based retention
// must not depend on traffic to make progress).
func (s *Server) janitor() {
	defer s.wg.Done()
	interval := s.opts.JobTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepJobsLocked(time.Now())
			s.mu.Unlock()
		}
	}
}

// Close stops the scheduler, cancelling any running jobs, and waits for
// the workers to drain. Submissions racing Close are rejected rather
// than risking a send on the closed queue.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.queue.close()
	s.wg.Wait()
}

// Cache returns the server's bounded cache, or nil when the injected
// provider hides it.
func (s *Server) Cache() *measure.Cache { return s.cache }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		f, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runFlight(f)
	}
}

// resolve validates a request into its tuning inputs.
func resolve(req JobRequest) (*progs.Benchmark, workload.Scale, *config.Space, core.Weights, error) {
	b, ok := progs.ByName(req.App)
	if !ok {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("unknown app %q", req.App)
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "small"
	}
	sc, ok := workload.ParseScale(scaleName)
	if !ok {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("unknown scale %q", req.Scale)
	}
	space, err := config.SpaceByName(req.Space)
	if err != nil {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("unknown space %q", req.Space)
	}
	w := core.Weights{W1: 100, W2: 1}
	if req.W1 != nil {
		w.W1 = *req.W1
	}
	if req.W2 != nil {
		w.W2 = *req.W2
	}
	if req.W3 != nil {
		w.W3 = *req.W3
	}
	if (req.Replay || req.Online) && !req.Phases {
		return nil, 0, nil, core.Weights{}, fmt.Errorf("replay and online require phases")
	}
	if _, err := normalizeClass(req.Class); err != nil {
		return nil, 0, nil, core.Weights{}, err
	}
	return b, sc, space, w, nil
}

// normalizeClass resolves a request's scheduling class ("" means
// interactive).
func normalizeClass(c string) (string, error) {
	switch c {
	case "", ClassInteractive:
		return ClassInteractive, nil
	case ClassBulk:
		return ClassBulk, nil
	}
	return "", fmt.Errorf("unknown class %q", c)
}

// dedupKey canonicalizes the result-determining fields of a resolved
// request: two requests with equal keys are guaranteed the same
// TuneReport (the simulator and solver are deterministic), which is what
// licenses coalescing them onto one flight. Workers is deliberately
// excluded — it only tunes the flight's internal parallelism (the first
// submitter's value wins); everything else participates.
func dedupKey(req JobRequest, app string, sc workload.Scale, w core.Weights) string {
	space := req.Space
	if space == "" {
		space = "full"
	}
	key := fmt.Sprintf("app=%s scale=%s space=%s w1=%g w2=%g w3=%g sample=%d model=%t",
		app, sc, space, w.W1, w.W2, w.W3, req.SampleInstructions, req.IncludeModel)
	if req.Phases {
		// Phase jobs answer a different question, with their own knobs —
		// normalized first, so a request spelling a default explicitly
		// coalesces with one omitting it.
		interval := req.IntervalInstructions
		if interval == 0 {
			interval = core.DefaultIntervalInstructions
		}
		penalty := req.SwitchPenaltyCycles
		if penalty == 0 {
			penalty = core.DefaultSwitchPenaltyCycles
		}
		threshold := req.PhaseThreshold
		if threshold <= 0 {
			threshold = phase.DefaultThreshold
		}
		key += fmt.Sprintf(" phases interval=%d penalty=%d threshold=%g replay=%t online=%t",
			interval, penalty, threshold, req.Replay, req.Online)
	}
	if req.Class == ClassBulk {
		// Same result either way, but a bulk and an interactive job must
		// not share a flight: the dedup winner's class would schedule the
		// loser's work at the wrong priority.
		key += " class=bulk"
	}
	return key
}

// runFlight executes one flight and broadcasts its outcome to every job
// still attached. Jobs that detached (individual cancellations) already
// reached their terminal state and are not touched.
func (s *Server) runFlight(f *flight) {
	s.mu.Lock()
	if len(f.jobs) == 0 {
		// Every submitter cancelled before a worker got here; Cancel
		// already unmapped the flight.
		s.mu.Unlock()
		f.cancel()
		return
	}
	now := time.Now()
	f.started = true
	f.startedAt = now
	running := append([]*job(nil), f.jobs...)
	s.mu.Unlock()
	for _, j := range running {
		j.mutate(func(st *JobStatus) {
			if st.Terminal() {
				// Cancelled between the passenger snapshot and this
				// broadcast; it must not be revived into "running".
				return
			}
			st.State = StateRunning
			st.Started = &now
		})
	}

	// Per-measurement progress: every completed measurement (simulated,
	// cache-answered, or satisfied wholesale by a model-layer hit) is
	// broadcast to every attached job's ndjson stream through the
	// session's one observer surface.
	observer := core.ObserverFunc(func(done, total int) {
		s.mu.Lock()
		watchers := append([]*job(nil), f.jobs...)
		s.mu.Unlock()
		for _, j := range watchers {
			j.mutate(func(st *JobStatus) {
				if st.Terminal() {
					return
				}
				// Concurrent measurements broadcast concurrently; only
				// ever move the counter forward so the stream's Done is
				// monotonic.
				if st.Progress == nil || done > st.Progress.Done {
					st.Progress = &MeasureProgress{Done: done, Total: total}
				}
			})
		}
	})

	var report *core.Report
	var results []*core.Report
	var err error
	if f.batch != nil {
		results, err = s.tuneBatch(obs.WithTracer(f.ctx, f.tracer), f.batch, observer)
	} else {
		report, err = s.tune(obs.WithTracer(f.ctx, f.tracer), f.req, observer)
	}
	f.tracer.Finish()
	if elapsed := time.Since(now); s.opts.SlowJobThreshold > 0 && elapsed > s.opts.SlowJobThreshold {
		s.logSlowFlight(f, elapsed)
	}

	// Delete-then-broadcast under the table lock: once the flight is out
	// of the map no new submission can attach, so the snapshot below is
	// the complete passenger list. The delete is conditional — a
	// cancel-all may have unmapped this flight already and a fresh
	// flight may own the key now.
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	attached := append([]*job(nil), f.jobs...)
	s.mu.Unlock()
	f.cancel()

	for _, j := range attached {
		j.mutate(func(st *JobStatus) {
			if st.Terminal() {
				// A cancellation raced the broadcast; the client already
				// saw the job end — leave it be.
				return
			}
			now := time.Now()
			st.Finished = &now
			switch {
			case err == nil:
				st.State = StateDone
				switch {
				case f.batch != nil:
					st.Results = results
				case f.req.Phases:
					st.PhaseResult = report
				default:
					st.Result = report
				}
			case f.ctx.Err() != nil && s.baseCtx.Err() == nil:
				st.State = StateCancelled
				st.Error = context.Canceled.Error()
			default:
				st.State = StateFailed
				st.Error = err.Error()
			}
		})
	}
}

// coreRequest maps the wire JobRequest onto the unified core.Request —
// the only translation between the daemon's v1 format and the library.
func coreRequest(req JobRequest) (core.Request, error) {
	b, sc, space, w, err := resolve(req)
	if err != nil {
		return core.Request{}, err
	}
	creq := core.Request{
		App:                b.Name,
		Scale:              sc,
		Space:              space,
		Weights:            w,
		SampleInstructions: req.SampleInstructions,
		Workers:            req.Workers,
		IncludeModel:       req.IncludeModel,
	}
	if req.Phases {
		creq.Phases = &core.PhaseOptions{
			IntervalInstructions: req.IntervalInstructions,
			SwitchPenaltyCycles:  req.SwitchPenaltyCycles,
			Threshold:            req.PhaseThreshold,
		}
		creq.Replay = req.Replay
		creq.Online = req.Online
	}
	return creq, nil
}

// tune executes one job through the shared session: the same
// Request→Report pipeline the autoarch CLI and the library consumers
// run, with the flight's observer attached for progress streaming.
func (s *Server) tune(ctx context.Context, req JobRequest, observer core.Observer) (*core.Report, error) {
	creq, err := coreRequest(req)
	if err != nil {
		return nil, err
	}
	creq.Observer = observer
	return s.session.Tune(ctx, creq)
}

// tuneBatch executes a batch flight's expanded items through one
// session TuneBatch call: items differing only in weights share one
// model build through the session's model layer, so the flight's
// metrics show one build and N solves. Progress aggregates every item's
// completed measurements (model-layer hits jump an item's share at
// once); the total grows as items start, since an item's measurement
// count is known only when it runs.
func (s *Server) tuneBatch(ctx context.Context, items []JobRequest, observer core.Observer) ([]*core.Report, error) {
	creqs := make([]core.Request, len(items))
	for i, item := range items {
		creq, err := coreRequest(item)
		if err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		creqs[i] = creq
	}
	var mu sync.Mutex
	done := make([]int, len(items))
	total := make([]int, len(items))
	for i := range creqs {
		creqs[i].Observer = core.ObserverFunc(func(d, t int) {
			mu.Lock()
			done[i], total[i] = d, t
			var sd, st int
			for j := range done {
				sd += done[j]
				st += total[j]
			}
			mu.Unlock()
			if observer != nil {
				observer.TuneProgress(sd, st)
			}
		})
	}
	return s.session.TuneBatch(ctx, creqs)
}

// logSlowFlight emits the slow-job warning: the flight's wall time and
// the top stages of its trace by total duration, so the log line alone
// says where the time went.
func (s *Server) logSlowFlight(f *flight, elapsed time.Duration) {
	line := fmt.Sprintf("slow job: app=%s phases=%t took %s (threshold %s)",
		f.req.App, f.req.Phases, elapsed.Round(time.Millisecond), s.opts.SlowJobThreshold)
	totals := f.tracer.Snapshot().StageTotals()
	for i, t := range totals {
		if i == 3 {
			break
		}
		line += fmt.Sprintf("; %s %s ×%d", t.Name, t.Duration.Round(time.Millisecond), t.Count)
	}
	s.logf("%s", line)
}

// Submit enqueues a job (the programmatic form of POST /v1/jobs). An
// identical in-flight request coalesces: the new job attaches to the
// existing flight instead of queueing a second execution, so both
// clients observe the same progress and receive the same result.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	b, sc, _, w, err := resolve(req)
	if err != nil {
		return JobStatus{}, &apiError{http.StatusBadRequest, err.Error()}
	}
	return s.submit(req, dedupKey(req, b.Name, sc, w), nil)
}

// submit creates the job record and either attaches it to the key's
// in-flight execution or admits a new flight (carrying batch items when
// batch is non-nil) to the priority queue.
func (s *Server) submit(req JobRequest, key string, batch []JobRequest) (JobStatus, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, &apiError{http.StatusServiceUnavailable, "server shutting down"}
	}
	s.seq++
	s.submitted++
	if batch != nil {
		s.batches++
	}
	id := fmt.Sprintf("job-%d", s.seq)
	j := &job{
		status: JobStatus{
			ID:      id,
			State:   StateQueued,
			Request: req,
			Created: time.Now(),
		},
		updated: make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.sweepJobsLocked(time.Now())

	if f, ok := s.flights[key]; ok {
		// Dedup: ride the existing execution.
		s.deduped++
		j.flight = f
		j.trace = f.tracer
		f.jobs = append(f.jobs, j)
		if f.started {
			started := f.startedAt
			j.status.State = StateRunning
			j.status.Started = &started
		}
		s.mu.Unlock()
		return j.snapshot(), nil
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	f := &flight{
		key: key, req: req, ctx: ctx, cancel: cancel, jobs: []*job{j}, batch: batch,
		// Every flight is traced: the spans feed the process-wide stage
		// histograms either way, and the per-flight cost (a few dozen
		// spans per job) is noise next to a single simulated run.
		tracer: obs.NewTracer(obs.TracerOptions{Stages: s.stages}),
	}
	j.flight = f
	j.trace = f.tracer
	s.flights[key] = f
	// The admission happens under s.mu so it cannot race Close's
	// queue.close(): Close flips s.closed under the same lock first.
	class, _ := normalizeClass(req.Class)
	full := !s.queue.push(f, class)
	if full {
		delete(s.flights, key)
	}
	s.mu.Unlock()

	if full {
		cancel()
		j.mutate(func(st *JobStatus) {
			if st.Terminal() {
				// The job was already listed and cancelled in the window
				// since s.mu was released; don't overwrite that.
				return
			}
			now := time.Now()
			st.State = StateFailed
			st.Error = "queue full"
			st.Finished = &now
		})
		return j.snapshot(), &apiError{http.StatusServiceUnavailable, "queue full"}
	}
	return j.snapshot(), nil
}

// Cancel cancels a job by id. A job sharing a flight with others only
// detaches — the execution continues for the remaining passengers, and
// is itself cancelled when the last one leaves.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, &apiError{http.StatusNotFound, "no such job"}
	}
	var emptied *flight
	j.mu.Lock()
	switch j.status.State {
	case StateQueued, StateRunning:
		if f := j.flight; f != nil && f.detachLocked(j) {
			emptied = f
			// Unmap eagerly: a dying flight must not pick up fresh
			// passengers between now and its worker observing the
			// cancellation.
			if s.flights[f.key] == f {
				delete(s.flights, f.key)
			}
		}
		now := time.Now()
		j.status.State = StateCancelled
		j.status.Finished = &now
		close(j.updated)
		j.updated = make(chan struct{})
	}
	j.mu.Unlock()
	s.mu.Unlock()
	if emptied != nil {
		// Last passenger gone: stop the execution (a queued flight is
		// skipped by its worker, a running one is interrupted).
		emptied.cancel()
	}
	return j.snapshot(), nil
}

// sweepJobsLocked enforces retention: terminal jobs beyond the age bound
// (JobTTL) or count bound (RetainJobs, oldest-finished first) are
// dropped from the table. Queued and running jobs are never dropped —
// retention can not cancel work, only forget finished work. Caller
// holds s.mu.
func (s *Server) sweepJobsLocked(now time.Time) {
	retain := s.opts.retain()
	ttl := s.opts.JobTTL
	// Fast path: with no age bound and the whole table under the count
	// bound, nothing can be over either limit — don't walk ~retain jobs
	// (each a mutex + status copy) under s.mu on every submit/scrape.
	if ttl <= 0 && (retain < 0 || len(s.order) <= retain) {
		return
	}

	type terminal struct {
		id       string
		finished time.Time
	}
	var terminals []terminal
	for _, id := range s.order {
		j := s.jobs[id]
		st := j.snapshot()
		if !st.Terminal() {
			continue
		}
		fin := st.Created
		if st.Finished != nil {
			fin = *st.Finished
		}
		terminals = append(terminals, terminal{id, fin})
	}

	drop := make(map[string]bool)
	if ttl > 0 {
		for _, t := range terminals {
			if now.Sub(t.finished) > ttl {
				drop[t.id] = true
			}
		}
	}
	if retain >= 0 {
		kept := len(terminals) - len(drop)
		if kept > retain {
			// Oldest-finished first among the not-yet-dropped.
			sort.Slice(terminals, func(a, b int) bool {
				return terminals[a].finished.Before(terminals[b].finished)
			})
			for _, t := range terminals {
				if kept <= retain {
					break
				}
				if !drop[t.id] {
					drop[t.id] = true
					kept--
				}
			}
		}
	}
	if len(drop) == 0 {
		return
	}
	order := s.order[:0]
	for _, id := range s.order {
		if drop[id] {
			delete(s.jobs, id)
			s.dropped++
			continue
		}
		order = append(order, id)
	}
	s.order = order
}

// Job returns one job's status.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Jobs returns every job's status in submission order (after a
// retention sweep, so the listing is also what is actually retained).
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepJobsLocked(time.Now())
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// SchedulerStats are the job-layer counters of /v1/metrics.
type SchedulerStats struct {
	// Submitted counts every accepted POST /v1/jobs.
	Submitted uint64 `json:"submitted"`
	// Deduped counts submissions that attached to an existing flight
	// instead of executing (the job-layer singleflight hits).
	Deduped uint64 `json:"deduped"`
	// Dropped counts terminal jobs forgotten by retention.
	Dropped uint64 `json:"dropped"`
	// Batches counts accepted POST /v1/batch submissions.
	Batches uint64 `json:"batches"`
	// Flights is the current number of distinct in-flight executions.
	Flights int `json:"flights"`
	// InteractiveQueued and BulkQueued are the current per-class
	// backlogs of the two-level priority queue; InteractiveDepth and
	// BulkDepth their admission limits (past them, submission answers
	// 503).
	InteractiveQueued int `json:"interactive_queued"`
	BulkQueued        int `json:"bulk_queued"`
	InteractiveDepth  int `json:"interactive_depth"`
	BulkDepth         int `json:"bulk_depth"`
	// Retain and TTLSeconds echo the active retention policy.
	Retain     int     `json:"retain"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// FabricMetrics is the fabric section of /v1/metrics: the remote
// dispatch counters and worker table on a coordinator, the RPC serve
// counters on a worker. Absent entirely on a daemon with no fabric
// role.
type FabricMetrics struct {
	Remote  *fabric.RemoteStats `json:"remote,omitempty"`
	Worker  *fabric.WorkerStats `json:"worker,omitempty"`
	Workers []fabric.WorkerInfo `json:"workers,omitempty"`
}

// Metrics is the GET /v1/metrics document. Models reports the session's
// shared model layer: models.hits/misses/builds say how often a job's
// model came from an earlier build — a warm daemon serving many
// weightings of one application shows builds frozen while hits grow.
// With a durable model tier (-model-dir), models.disk_hits/disk_misses/
// spills track the artifact traffic: a restarted replica serving a
// previously modeled application shows disk_hits growing while builds
// stays frozen at zero.
type Metrics struct {
	Cache  *measure.CacheStats   `json:"cache,omitempty"`
	Store  *measure.StoreStats   `json:"store,omitempty"`
	Models *core.ModelCacheStats `json:"models,omitempty"`
	// Planner reports the auto parallelism planner (present only when
	// Options.AutoWorkers is on).
	Planner   *measure.PlannerStats `json:"planner,omitempty"`
	Pool      platform.PoolStats    `json:"pool"`
	Jobs      map[string]int        `json:"jobs"`
	Scheduler SchedulerStats        `json:"scheduler"`
	// Tuning aggregates the execution-tuning activity: superblock
	// compiles/hits/deopts across every simulated run, and how many
	// interval-profiled runs replayed as parallel segments (with the
	// concurrency the fan-outs actually achieved).
	Tuning platform.TuningCounters `json:"tuning"`
	// Stages is the per-stage latency aggregation over every traced
	// flight: count, total and p50/p95/p99 per pipeline stage name
	// ("tune", "model", "measure", "solve", ...).
	Stages map[string]obs.StageStats `json:"stages,omitempty"`
	// Fabric reports the distributed measurement fabric (coordinator
	// dispatch counters, worker table, worker RPC counters) when this
	// daemon plays either fabric role.
	Fabric *FabricMetrics `json:"fabric,omitempty"`
}

// MetricsSnapshot assembles the current counters.
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		Pool:   platform.PoolSnapshot(),
		Jobs:   map[string]int{},
		Tuning: platform.Counters(),
		Stages: s.stages.Snapshot(),
	}
	models := s.session.ModelStats()
	m.Models = &models
	if s.cache != nil {
		st := s.cache.Stats()
		m.Cache = &st
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		m.Store = &st
	}
	if s.opts.AutoWorkers {
		st := measure.PlannerSnapshot()
		m.Planner = &st
	}
	if s.opts.Fabric != nil || s.opts.Worker != nil {
		fm := &FabricMetrics{}
		if s.opts.Fabric != nil {
			st := s.opts.Fabric.Stats()
			fm.Remote = &st
			fm.Workers = s.opts.Fabric.Registry().Snapshot()
		}
		if s.opts.Worker != nil {
			st := s.opts.Worker.Stats()
			fm.Worker = &st
		}
		m.Fabric = fm
	}
	for _, js := range s.Jobs() {
		m.Jobs[js.State]++
	}
	qi, qb := s.queue.lens()
	s.mu.Lock()
	m.Scheduler = SchedulerStats{
		Submitted:         s.submitted,
		Deduped:           s.deduped,
		Dropped:           s.dropped,
		Batches:           s.batches,
		Flights:           len(s.flights),
		InteractiveQueued: qi,
		BulkQueued:        qb,
		InteractiveDepth:  s.opts.QueueDepth,
		BulkDepth:         s.opts.BulkQueueDepth,
		Retain:            s.opts.retain(),
	}
	if s.opts.JobTTL > 0 {
		m.Scheduler.TTLSeconds = s.opts.JobTTL.Seconds()
	}
	s.mu.Unlock()
	return m
}

// apiError carries an HTTP status with a message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if ae, ok := err.(*apiError); ok {
		code = ae.code
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &apiError{http.StatusBadRequest, "invalid request: " + err.Error()})
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, &apiError{http.StatusNotFound, "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.streamJob)
	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := s.Trace(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("GET /v1/trace/{id}/stream", s.streamTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &apiError{http.StatusBadRequest, "invalid request: " + err.Error()})
			return
		}
		st, err := s.SubmitBatch(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	if s.opts.Fabric != nil {
		mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
			var reg fabric.Registration
			if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
				writeErr(w, &apiError{http.StatusBadRequest, "invalid registration: " + err.Error()})
				return
			}
			if err := s.opts.Fabric.Registry().Register(reg); err != nil {
				writeErr(w, &apiError{http.StatusBadRequest, err.Error()})
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
		mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.opts.Fabric.Registry().Snapshot())
		})
	}
	if s.opts.Worker != nil {
		mux.Handle("POST /v1/measure", s.opts.Worker)
	}
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// TraceDoc is the GET /v1/trace/{id} document: the job's span forest
// (normally a single "tune" root with the stage spans beneath it). A
// trace with Complete false belongs to a still-running job and shows
// the spans ended so far.
type TraceDoc struct {
	Job      string          `json:"job"`
	State    string          `json:"state"`
	Started  time.Time       `json:"started"`
	Complete bool            `json:"complete"`
	Dropped  uint64          `json:"dropped,omitempty"`
	Spans    []*obs.SpanNode `json:"spans"`
}

// Trace returns one job's span tree (the programmatic form of
// GET /v1/trace/{id}).
func (s *Server) Trace(id string) (TraceDoc, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return TraceDoc{}, &apiError{http.StatusNotFound, "no such job"}
	}
	if j.trace == nil {
		// The job never reached a flight with a tracer (failed submission).
		return TraceDoc{}, &apiError{http.StatusNotFound, "no trace for job"}
	}
	tr := j.trace.Snapshot()
	return TraceDoc{
		Job:      id,
		State:    j.snapshot().State,
		Started:  tr.Started,
		Complete: tr.Complete,
		Dropped:  tr.Dropped,
		Spans:    tr.Tree(),
	}, nil
}

// streamTrace writes newline-delimited SpanRecords: every span already
// completed, then each new one as it ends, until the trace finishes (or
// the client goes away). A live pipeline shows its measurement spans
// arriving in real time.
func (s *Server) streamTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok || j.trace == nil {
		writeErr(w, &apiError{http.StatusNotFound, "no such job"})
		return
	}
	ch, cancel := j.trace.Subscribe(64)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case rec, open := <-ch:
			if !open {
				return
			}
			if err := enc.Encode(rec); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// streamJob writes newline-delimited JobStatus snapshots: one
// immediately, then one per state change, ending at a terminal state (or
// when the client goes away).
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, &apiError{http.StatusNotFound, "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		// Snapshot and watch channel must come from the same critical
		// section, or a state change between them would be missed.
		j.mu.Lock()
		st := j.status
		ch := j.updated
		j.mu.Unlock()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
