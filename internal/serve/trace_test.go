package serve_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/obs"
	"liquidarch/internal/serve"
)

// walkSpans visits every node of a span forest depth-first.
func walkSpans(nodes []*obs.SpanNode, visit func(*obs.SpanNode)) {
	for _, n := range nodes {
		visit(n)
		walkSpans(n.Children, visit)
	}
}

// TestTraceEndpoint is the observability acceptance test: a finished
// job's GET /v1/trace/{id} must return a complete span tree rooted at
// "tune", with a cache-outcome attribute on every measurement span and
// a source attribute on the model span.
func TestTraceEndpoint(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	st = waitDone(t, ts, st.ID)
	if st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/trace/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace: status %d", resp.StatusCode)
	}
	var doc serve.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Complete {
		t.Error("trace of a done job not marked complete")
	}
	if doc.Dropped != 0 {
		t.Errorf("trace dropped %d spans", doc.Dropped)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "tune" {
		t.Fatalf("trace roots = %v, want single tune root", len(doc.Spans))
	}

	var measures, model, solve int
	walkSpans(doc.Spans, func(n *obs.SpanNode) {
		switch n.Name {
		case "measure":
			measures++
			a, ok := n.Attr("outcome")
			if !ok {
				t.Errorf("measure span %d has no outcome attribute", n.ID)
			} else if a.Str != "hit" && a.Str != "wait" && a.Str != "miss" {
				t.Errorf("measure span %d outcome = %q", n.ID, a.Str)
			}
			if _, ok := n.Attr("config"); !ok {
				t.Errorf("measure span %d has no config attribute", n.ID)
			}
		case "model":
			model++
			if a, ok := n.Attr("source"); !ok || a.Str != "build" {
				t.Errorf("model span source = %v, want build", a.Str)
			}
		case "solve":
			solve++
		}
	})
	// A dcache-space tune measures the base, one run per variable and
	// the validation run.
	if measures < 3 {
		t.Errorf("trace has %d measure spans, want several", measures)
	}
	if model != 1 || solve != 1 {
		t.Errorf("trace has %d model / %d solve spans, want 1 each", model, solve)
	}

	// A second identical job shares the model layer: its trace must say
	// so instead of claiming a fresh build.
	st2 := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	st2 = waitDone(t, ts, st2.ID)
	if st2.State != serve.StateDone {
		t.Fatalf("second job state = %s, error = %s", st2.State, st2.Error)
	}
	doc2 := getTrace(t, ts, st2.ID)
	found := false
	walkSpans(doc2.Spans, func(n *obs.SpanNode) {
		if n.Name != "model" {
			return
		}
		found = true
		if a, ok := n.Attr("source"); !ok || a.Str != "shared" {
			t.Errorf("warm model span source = %v, want shared", a.Str)
		}
	})
	if !found {
		t.Error("warm trace has no model span")
	}
}

func getTrace(t *testing.T, ts *httptest.Server, id string) serve.TraceDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s: status %d", id, resp.StatusCode)
	}
	var doc serve.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestTraceStream reads the ndjson span stream of a job end to end: the
// stream must deliver every span of the pipeline and terminate when the
// trace finishes.
func TestTraceStream(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t)

	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	resp, err := http.Get(ts.URL + "/v1/trace/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/{id}/stream: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("stream content type = %q", got)
	}

	names := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		names[rec.Name]++
	}
	// The stream ends because the trace finished, not because the job
	// table forgot the job — the scanner returning is the assertion that
	// the server closed the stream.
	if names["tune"] != 1 {
		t.Errorf("stream delivered %d tune spans, want 1", names["tune"])
	}
	if names["measure"] == 0 {
		t.Error("stream delivered no measure spans")
	}

	if st := waitDone(t, ts, st.ID); st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}
}

// TestSlowJobLog exercises the slow-flight warning: with a tiny
// threshold every job is slow, and the log line must name the job's
// slowest stages.
func TestSlowJobLog(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var lines []string
	s := serve.New(serve.Options{
		Workers:          1,
		CacheEntries:     64,
		SlowJobThreshold: time.Nanosecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	if st = waitDone(t, ts, st.ID); st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}

	// The warning is logged before the job's terminal broadcast, so it
	// is visible once the job is done.
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-job warnings = %d (%q), want 1", len(lines), lines)
	}
	line := lines[0]
	for _, want := range []string{"slow job", "app=arith", "model", "measure"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-job line %q missing %q", line, want)
		}
	}
}

// TestMetricsStages checks that traced flights feed the per-stage
// latency aggregation under /v1/metrics.
func TestMetricsStages(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t)

	st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"})
	if st = waitDone(t, ts, st.ID); st.State != serve.StateDone {
		t.Fatalf("job state = %s, error = %s", st.State, st.Error)
	}

	m := s.MetricsSnapshot()
	for _, stage := range []string{"tune", "model", "measure", "solve"} {
		ss, ok := m.Stages[stage]
		if !ok {
			t.Errorf("metrics stages missing %q (have %v)", stage, m.Stages)
			continue
		}
		if ss.Count == 0 || ss.P50Ms < 0 || ss.MaxMs < ss.MinMs {
			t.Errorf("stage %q stats implausible: %+v", stage, ss)
		}
	}
	if m.Stages["measure"].Count <= m.Stages["tune"].Count {
		t.Errorf("measure count %d not above tune count %d",
			m.Stages["measure"].Count, m.Stages["tune"].Count)
	}
}

// TestMetricsFieldsSerialized walks the Metrics document by reflection
// and fails when any exported field of a liquidarch struct lacks an
// explicit json tag — the guard that a freshly added counter cannot
// silently fall out of (or into inconsistent casing in) the /v1/metrics
// serialization.
func TestMetricsFieldsSerialized(t *testing.T) {
	t.Parallel()
	seen := map[reflect.Type]bool{}
	var check func(typ reflect.Type, path string)
	check = func(typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			check(typ.Elem(), path)
		case reflect.Struct:
		default:
			return
		}
		if typ.Kind() != reflect.Struct || !strings.Contains(typ.PkgPath(), "liquidarch") || seen[typ] {
			return
		}
		seen[typ] = true
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			where := path + "." + f.Name
			if _, ok := f.Tag.Lookup("json"); !ok {
				t.Errorf("%s (%s) has no json tag — it would serialize under its Go name", where, typ)
			}
			check(f.Type, where)
		}
	}
	check(reflect.TypeOf(serve.Metrics{}), "Metrics")
	if len(seen) < 5 {
		t.Fatalf("walked only %d struct types — the reflection walk is broken", len(seen))
	}
	// The fabric section hangs off Metrics through pointers the walk must
	// chase: require its stats structs were actually visited.
	fabricSeen := false
	for typ := range seen {
		if strings.Contains(typ.PkgPath(), "internal/fabric") {
			fabricSeen = true
			break
		}
	}
	if !fabricSeen {
		t.Fatal("reflection walk never reached the fabric metrics structs")
	}
}
