package serve_test

import (
	"net/http/httptest"
	"testing"

	"liquidarch/internal/core"
	"liquidarch/internal/measure"
	"liquidarch/internal/serve"
)

// TestRestartReplaysModelArtifact is the durable-model-tier acceptance
// test: a daemon restarted on its -cache-dir and -model-dir serves a
// previously modeled application with zero simulations AND zero model
// builds — the model set comes back as one artifact read instead of ~52
// store reads plus a rebuild. It extends TestTwoReplicasShareOneStore
// one tier up: the store alone already removes the simulations; the
// model artifact also removes the rebuild.
func TestRestartReplaysModelArtifact(t *testing.T) {
	t.Parallel()
	cacheDir, modelDir := t.TempDir(), t.TempDir()
	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}

	type incarnation struct {
		counting *countingProvider
		server   *serve.Server
		ts       *httptest.Server
	}
	boot := func() incarnation {
		store, err := measure.NewStore(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		models, err := core.NewModelStore(modelDir)
		if err != nil {
			t.Fatal(err)
		}
		counting := &countingProvider{inner: measure.Simulator{}}
		s := serve.New(serve.Options{
			Workers:    1,
			Provider:   measure.NewCache(measure.NewPersistent(counting, store), 256),
			Store:      store,
			ModelStore: models,
		})
		return incarnation{counting, s, httptest.NewServer(s.Handler())}
	}

	// First incarnation does the work and spills both tiers…
	a := boot()
	sa := waitDone(t, a.ts, postJob(t, a.ts, req).ID)
	if sa.State != serve.StateDone {
		t.Fatalf("first incarnation: %s %q", sa.State, sa.Error)
	}
	if a.counting.calls.Load() == 0 {
		t.Fatal("first incarnation ran no simulations")
	}
	ma := metricsOf(t, a.ts)
	if ma.Models == nil || ma.Models.Builds != 1 || ma.Models.Spills != 1 {
		t.Fatalf("first incarnation model metrics %+v, want 1 build / 1 spill", ma.Models)
	}
	// …and shuts down, as a restart would.
	a.ts.Close()
	a.server.Close()

	// The restarted incarnation replays everything from disk.
	b := boot()
	defer func() {
		b.ts.Close()
		b.server.Close()
	}()
	sb := waitDone(t, b.ts, postJob(t, b.ts, req).ID)
	if sb.State != serve.StateDone {
		t.Fatalf("restarted incarnation: %s %q", sb.State, sb.Error)
	}
	if n := b.counting.calls.Load(); n != 0 {
		t.Errorf("restarted incarnation ran %d simulations, want 0", n)
	}
	mb := metricsOf(t, b.ts)
	if mb.Models == nil {
		t.Fatal("restarted incarnation metrics missing model stats")
	}
	if mb.Models.Builds != 0 {
		t.Errorf("restarted incarnation built %d models, want 0", mb.Models.Builds)
	}
	if mb.Models.DiskHits < 1 {
		t.Errorf("restarted incarnation disk hits = %d, want >= 1", mb.Models.DiskHits)
	}
	if sa.Result.Recommendation.Config != sb.Result.Recommendation.Config {
		t.Errorf("incarnations disagree:\n%s\nvs\n%s",
			sa.Result.Recommendation.Config, sb.Result.Recommendation.Config)
	}
	if sa.Result.Base.Cycles != sb.Result.Base.Cycles {
		t.Errorf("incarnations disagree on base cycles: %d vs %d",
			sa.Result.Base.Cycles, sb.Result.Base.Cycles)
	}
}
