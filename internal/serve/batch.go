package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// MaxBatchItems caps one batch's expanded item count: a batch is one
// flight executing its items sequentially, so an unbounded matrix
// would hold a scheduler worker for its whole duration while looking
// like a single queued job to admission control.
const MaxBatchItems = 64

// Weighting is one objective weighting of a batch's weight sweep.
type Weighting struct {
	W1 float64 `json:"w1"`
	W2 float64 `json:"w2"`
	W3 float64 `json:"w3,omitempty"`
}

// BatchRequest is the POST /v1/batch payload: a JobRequest template
// plus the axes of a sweep matrix. The expanded items are the cross
// product Apps × Spaces × Weightings, each axis defaulting to the
// template's own value, and all items run through ONE flight and one
// session batch — so a weight sweep of one application performs one
// model build and N solves (models.builds under /v1/metrics stays at
// 1). The template's Class schedules the whole batch; sweeps usually
// want "bulk" so interactive jobs admitted later still run first.
type BatchRequest struct {
	JobRequest
	// Apps sweeps the application axis (empty: the template's App).
	Apps []string `json:"apps,omitempty"`
	// Spaces sweeps the decision-space axis (empty: the template's
	// Space).
	Spaces []string `json:"spaces,omitempty"`
	// Weightings sweeps the objective-weight axis (empty: the
	// template's W1/W2/W3).
	Weightings []Weighting `json:"weightings,omitempty"`
}

// expand materializes the batch's items in deterministic order (apps
// outermost, weightings innermost — consecutive items differ only in
// weights, the exact pattern the model layer answers with one build).
func (r BatchRequest) expand() ([]JobRequest, error) {
	apps := r.Apps
	if len(apps) == 0 {
		apps = []string{r.App}
	}
	spaces := r.Spaces
	if len(spaces) == 0 {
		spaces = []string{r.Space}
	}
	n := len(apps) * len(spaces) * max(1, len(r.Weightings))
	if n > MaxBatchItems {
		return nil, fmt.Errorf("batch expands to %d items, limit is %d", n, MaxBatchItems)
	}
	items := make([]JobRequest, 0, n)
	for _, app := range apps {
		for _, space := range spaces {
			item := r.JobRequest
			item.App = app
			item.Space = space
			if len(r.Weightings) == 0 {
				items = append(items, item)
				continue
			}
			for _, wt := range r.Weightings {
				wt := wt
				it := item
				it.W1, it.W2, it.W3 = &wt.W1, &wt.W2, &wt.W3
				items = append(items, it)
			}
		}
	}
	return items, nil
}

// SubmitBatch enqueues a batch job (the programmatic form of
// POST /v1/batch): every expanded item is validated up front, the whole
// matrix becomes one flight, and identical in-flight batches coalesce
// exactly like identical jobs do.
func (s *Server) SubmitBatch(req BatchRequest) (JobStatus, error) {
	items, err := req.expand()
	if err != nil {
		return JobStatus{}, &apiError{http.StatusBadRequest, err.Error()}
	}
	keys := make([]string, len(items))
	for i, item := range items {
		b, sc, _, w, err := resolve(item)
		if err != nil {
			return JobStatus{}, &apiError{http.StatusBadRequest,
				fmt.Sprintf("batch item %d: %v", i, err)}
		}
		keys[i] = dedupKey(item, b.Name, sc, w)
	}
	class, _ := normalizeClass(req.Class)
	key := fmt.Sprintf("batch class=%s [%s]", class, strings.Join(keys, " | "))
	return s.submit(req.JobRequest, key, items)
}
