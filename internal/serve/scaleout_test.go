package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/config"
	"liquidarch/internal/measure"
	"liquidarch/internal/platform"
	"liquidarch/internal/serve"
)

// countingProvider counts the measurements that reach the real
// simulator — the "simulations actually run" observable the dedup and
// replica tests assert on.
type countingProvider struct {
	inner measure.Provider
	calls atomic.Int64
}

func (c *countingProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	c.calls.Add(1)
	return c.inner.Measure(ctx, prog, cfg, opts)
}

// gatedProvider blocks every measurement until the gate closes (or the
// measurement's context dies), so a test can hold a flight open while it
// submits duplicates or cancels passengers.
type gatedProvider struct {
	inner measure.Provider
	gate  chan struct{}
}

func (g *gatedProvider) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Measure(ctx, prog, cfg, opts)
}

// firstProgGate blocks measurements of the first program it ever sees
// (and only that program): it pins one job in the running state while
// jobs for other applications flow freely.
type firstProgGate struct {
	inner measure.Provider
	gate  chan struct{}
	prog  atomic.Pointer[asm.Program]
}

func (g *firstProgGate) Measure(ctx context.Context, prog *asm.Program, cfg config.Config, opts platform.Options) (*platform.RunReport, error) {
	if g.prog.CompareAndSwap(nil, prog) || g.prog.Load() == prog {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Measure(ctx, prog, cfg, opts)
}

func metricsOf(t *testing.T, ts *httptest.Server) serve.Metrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDedupIdenticalJobsShareOneFlight submits the same request twice
// while the first execution is held open: the second must attach to the
// first's flight, both must finish with identical results, and the
// daemon must record exactly one dedup hit.
func TestDedupIdenticalJobsShareOneFlight(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	s := serve.New(serve.Options{
		Workers:  1,
		Provider: measure.NewCache(&gatedProvider{inner: measure.Simulator{}, gate: gate}, 256),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}
	a := postJob(t, ts, req)
	b := postJob(t, ts, req)
	if m := metricsOf(t, ts); m.Scheduler.Deduped != 1 || m.Scheduler.Flights != 1 {
		t.Fatalf("while gated: deduped %d flights %d, want 1 and 1",
			m.Scheduler.Deduped, m.Scheduler.Flights)
	}
	close(gate)

	sa := waitDone(t, ts, a.ID)
	sb := waitDone(t, ts, b.ID)
	if sa.State != serve.StateDone || sb.State != serve.StateDone {
		t.Fatalf("states %s/%s, errors %q/%q", sa.State, sb.State, sa.Error, sb.Error)
	}
	if sa.Result.Recommendation.Config != sb.Result.Recommendation.Config {
		t.Errorf("deduped jobs disagree:\n%s\nvs\n%s",
			sa.Result.Recommendation.Config, sb.Result.Recommendation.Config)
	}
	// One flight means one start instant shared by both passengers.
	if sa.Started == nil || sb.Started == nil || !sa.Started.Equal(*sb.Started) {
		t.Errorf("deduped jobs have different start times: %v vs %v", sa.Started, sb.Started)
	}
	m := metricsOf(t, ts)
	if m.Scheduler.Deduped != 1 {
		t.Errorf("deduped counter = %d, want 1", m.Scheduler.Deduped)
	}
	if m.Scheduler.Submitted != 2 {
		t.Errorf("submitted counter = %d, want 2", m.Scheduler.Submitted)
	}
}

// TestDedupStreamsBothClients verifies both passengers of one flight can
// stream the shared progress to a terminal state.
func TestDedupStreamsBothClients(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	s := serve.New(serve.Options{
		Workers:  1,
		Provider: measure.NewCache(&gatedProvider{inner: measure.Simulator{}, gate: gate}, 256),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}
	a := postJob(t, ts, req)
	b := postJob(t, ts, req)
	close(gate)

	for _, id := range []string{a.ID, b.ID} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		var last serve.JobStatus
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				t.Fatalf("bad stream line for %s: %v", id, err)
			}
		}
		resp.Body.Close()
		if last.State != serve.StateDone || last.Result == nil {
			t.Fatalf("stream for %s ended %s (result %v)", id, last.State, last.Result != nil)
		}
	}
}

// TestDedupCancelOneOtherCompletes is the cancellation contract: one
// passenger leaving must not take the flight down.
func TestDedupCancelOneOtherCompletes(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	s := serve.New(serve.Options{
		Workers:  1,
		Provider: measure.NewCache(&gatedProvider{inner: measure.Simulator{}, gate: gate}, 256),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}
	a := postJob(t, ts, req)
	b := postJob(t, ts, req)

	st := cancelJob(t, ts, a.ID)
	if st.State != serve.StateCancelled {
		t.Fatalf("cancelled job state %s", st.State)
	}
	close(gate)
	sb := waitDone(t, ts, b.ID)
	if sb.State != serve.StateDone || sb.Result == nil {
		t.Fatalf("surviving passenger: %s %q", sb.State, sb.Error)
	}
	// The cancelled job must stay cancelled even though its flight
	// completed.
	sa := getJob(t, ts, a.ID)
	if sa.State == serve.StateDone {
		t.Error("cancelled job was resurrected by the flight's completion")
	}
}

// TestDedupCancelAllStopsExecution cancels every passenger of a held
// flight: the execution must stop without a single simulation reaching
// the simulator, and a fresh identical submission must start a new
// flight rather than attach to the dying one.
func TestDedupCancelAllStopsExecution(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	counting := &countingProvider{inner: measure.Simulator{}}
	s := serve.New(serve.Options{
		Workers:  1,
		Provider: measure.NewCache(&gatedProvider{inner: counting, gate: gate}, 256),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}
	a := postJob(t, ts, req)
	b := postJob(t, ts, req)
	cancelJob(t, ts, a.ID)
	cancelJob(t, ts, b.ID)

	// The flight is unmapped the moment its last passenger leaves.
	if m := metricsOf(t, ts); m.Scheduler.Flights != 0 {
		t.Errorf("flights = %d right after cancel-all, want 0", m.Scheduler.Flights)
	}

	sa, sb := getJob(t, ts, a.ID), getJob(t, ts, b.ID)
	if sa.State != serve.StateCancelled || sb.State != serve.StateCancelled {
		t.Fatalf("states %s/%s, want cancelled/cancelled", sa.State, sb.State)
	}
	if n := counting.calls.Load(); n != 0 {
		t.Errorf("cancelled flight still ran %d simulations", n)
	}

	// A new identical request must get a fresh, live flight.
	close(gate)
	c := postJob(t, ts, req)
	if sc := waitDone(t, ts, c.ID); sc.State != serve.StateDone {
		t.Fatalf("post-cancel resubmission: %s %q", sc.State, sc.Error)
	}
	m := metricsOf(t, ts)
	if m.Jobs[serve.StateCancelled] != 2 {
		t.Errorf("cancelled job count = %d, want 2", m.Jobs[serve.StateCancelled])
	}
}

// TestRetentionDropsOldTerminalJobs bounds the job table by count and
// verifies the dropped counter.
func TestRetentionDropsOldTerminalJobs(t *testing.T) {
	t.Parallel()
	s := serve.New(serve.Options{Workers: 1, CacheEntries: 256, RetainJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Five distinct requests (different weights → different dedup keys);
	// the shared measurement cache keeps reruns cheap.
	for i := 0; i < 5; i++ {
		w2 := float64(i + 1)
		st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache", W2: &w2})
		if got := waitDone(t, ts, st.ID); got.State != serve.StateDone {
			t.Fatalf("job %d: %s %q", i, got.State, got.Error)
		}
	}

	jobs := s.Jobs()
	if len(jobs) > 2 {
		t.Fatalf("job table holds %d jobs, retention bound 2", len(jobs))
	}
	m := metricsOf(t, ts)
	if m.Scheduler.Dropped < 3 {
		t.Errorf("dropped counter = %d, want >= 3", m.Scheduler.Dropped)
	}
	// The survivors must be the newest submissions.
	for _, j := range jobs {
		if j.Request.W2 == nil || *j.Request.W2 < 4 {
			t.Errorf("retention kept an old job (%+v) over a newer one", j.Request)
		}
	}
}

// TestRetentionNeverDropsLiveJobs pins one job in the running state
// under the tightest possible retention: the running job must survive
// every sweep while terminal churn around it is dropped, then complete.
func TestRetentionNeverDropsLiveJobs(t *testing.T) {
	t.Parallel()
	gate := &firstProgGate{inner: measure.Simulator{}, gate: make(chan struct{})}
	s := serve.New(serve.Options{
		Workers:    2,
		Provider:   measure.NewCache(gate, 256),
		RetainJobs: 1,
		JobTTL:     time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// The pinned job: its program is the first the gate sees, so its
	// measurements block until release. Wait for the pin to take hold
	// before submitting churn (whose programs then pass freely).
	slow := postJob(t, ts, serve.JobRequest{App: "blastn", Scale: "tiny"})
	deadline := time.Now().Add(30 * time.Second)
	for gate.prog.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("pinned job never reached the provider")
		}
		time.Sleep(time.Millisecond)
	}

	// Churn terminal jobs past the pinned one.
	for i := 0; i < 3; i++ {
		w2 := float64(i + 1)
		st := postJob(t, ts, serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache", W2: &w2})
		waitDone(t, ts, st.ID)
		time.Sleep(5 * time.Millisecond) // let the TTL lapse between churns
	}
	s.Jobs() // force a sweep with the TTL long expired

	st := getJob(t, ts, slow.ID)
	if st.ID == "" {
		t.Fatal("running job was dropped by retention")
	}
	if st.State != serve.StateRunning {
		t.Fatalf("pinned job state %s, want running (error %q)", st.State, st.Error)
	}
	close(gate.gate)
	if got := waitDone(t, ts, slow.ID); got.State != serve.StateDone {
		t.Fatalf("pinned job: %s %q", got.State, got.Error)
	}
}

// TestTwoReplicasShareOneStore is the scale-out acceptance test: two
// daemons mounting one -cache-dir serve the same JobRequest with exactly
// one set of simulations between them, return identical recommendations,
// and both the job tables and the shared store end up within their
// configured retention/GC bounds.
func TestTwoReplicasShareOneStore(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	req := serve.JobRequest{App: "arith", Scale: "tiny", Space: "dcache"}
	gc := measure.GCPolicy{MaxBytes: 1 << 20, MaxAge: 24 * time.Hour}

	type replica struct {
		counting *countingProvider
		store    *measure.Store
		server   *serve.Server
		ts       *httptest.Server
	}
	newReplica := func() replica {
		store, err := measure.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		counting := &countingProvider{inner: measure.Simulator{}}
		persistent := measure.NewPersistent(counting, store).EnableGC(gc, 8)
		s := serve.New(serve.Options{
			Workers:    1,
			Provider:   measure.NewCache(persistent, 256),
			Store:      store,
			RetainJobs: 4,
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		return replica{counting, store, s, ts}
	}

	a, b := newReplica(), newReplica()

	// Replica A does the work…
	sa := waitDone(t, a.ts, postJob(t, a.ts, req).ID)
	if sa.State != serve.StateDone {
		t.Fatalf("replica A: %s %q", sa.State, sa.Error)
	}
	simulations := a.counting.calls.Load()
	if simulations == 0 {
		t.Fatal("replica A ran no simulations")
	}

	// …and replica B replays it from the shared directory.
	sb := waitDone(t, b.ts, postJob(t, b.ts, req).ID)
	if sb.State != serve.StateDone {
		t.Fatalf("replica B: %s %q", sb.State, sb.Error)
	}
	if n := b.counting.calls.Load(); n != 0 {
		t.Errorf("replica B ran %d simulations, want 0 (shared store replay)", n)
	}
	if sa.Result.Recommendation.Config != sb.Result.Recommendation.Config {
		t.Errorf("replicas disagree:\n%s\nvs\n%s",
			sa.Result.Recommendation.Config, sb.Result.Recommendation.Config)
	}
	if sa.Result.Base.Cycles != sb.Result.Base.Cycles {
		t.Errorf("replicas disagree on base cycles: %d vs %d",
			sa.Result.Base.Cycles, sb.Result.Base.Cycles)
	}

	// Bounds: each table within retention, the shared store within GC.
	for name, r := range map[string]replica{"A": a, "B": b} {
		if n := len(r.server.Jobs()); n > 4 {
			t.Errorf("replica %s retains %d jobs, bound 4", name, n)
		}
	}
	res := a.store.GC(gc)
	if res.Bytes > gc.MaxBytes {
		t.Errorf("shared store at %d bytes, bound %d", res.Bytes, gc.MaxBytes)
	}
	// The store metrics surface on both replicas' /v1/metrics.
	for name, r := range map[string]replica{"A": a, "B": b} {
		m := metricsOf(t, r.ts)
		if m.Store == nil {
			t.Fatalf("replica %s metrics missing store stats", name)
		}
		if m.Store.Entries == 0 {
			t.Errorf("replica %s store stats report an empty store", name)
		}
	}
}
